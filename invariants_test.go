package oovec

// Cross-machine invariants: metamorphic properties that must hold across
// the configuration space, checked on reduced-size versions of the paper's
// benchmarks. These complement the per-module unit tests by pinning the
// relationships the experiments depend on.

import (
	"testing"

	"oovec/internal/tgen"
)

// invTrace returns a reduced-size benchmark trace.
func invTrace(t *testing.T, name string, insns int) *Trace {
	t.Helper()
	p, ok := tgen.PresetByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	p.Insns = insns
	return tgen.Generate(p)
}

// invBenchmarks is a representative subset: long vectors, short vectors
// with a recurrence, spill-heavy huge blocks, scalar-heavy.
var invBenchmarks = []string{"swm256", "trfd", "bdna", "tomcatv"}

func TestInvariantIdealBoundsEverything(t *testing.T) {
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		ideal := IdealCycles(tr)
		ref := RunReference(tr, DefaultReferenceConfig())
		if ref.Cycles < ideal {
			t.Errorf("%s: REF %d below IDEAL %d", name, ref.Cycles, ideal)
		}
		for _, regs := range []int{9, 16, 64} {
			cfg := DefaultOOOVAConfig()
			cfg.PhysVRegs = regs
			ooo := RunOOOVA(tr, cfg).Stats
			if ooo.Cycles < ideal {
				t.Errorf("%s/%d regs: OOOVA %d below IDEAL %d", name, regs, ooo.Cycles, ideal)
			}
		}
	}
}

func TestInvariantOOOVANeverSlowerThanRef(t *testing.T) {
	// Not a theorem in general, but it must hold on every benchmark at the
	// paper's configurations — it is the paper's headline.
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		ref := RunReference(tr, DefaultReferenceConfig())
		ooo := RunOOOVA(tr, DefaultOOOVAConfig()).Stats
		if ooo.Cycles > ref.Cycles {
			t.Errorf("%s: OOOVA %d slower than REF %d", name, ooo.Cycles, ref.Cycles)
		}
	}
}

func TestInvariantTrafficIdenticalAcrossMachines(t *testing.T) {
	// Without load elimination, both machines move exactly the same
	// elements over the address bus: traffic is a program property.
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		ref := RunReference(tr, DefaultReferenceConfig())
		ooo := RunOOOVA(tr, DefaultOOOVAConfig()).Stats
		if ref.MemRequests != ooo.MemRequests {
			t.Errorf("%s: traffic differs REF %d vs OOOVA %d",
				name, ref.MemRequests, ooo.MemRequests)
		}
	}
}

func TestInvariantLatencyMonotonicity(t *testing.T) {
	// Execution time never decreases when memory slows down.
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		var prevRef, prevOOO int64
		for _, lat := range []int64{1, 20, 50, 100} {
			refCfg := DefaultReferenceConfig()
			refCfg.MemLatency = lat
			ref := RunReference(tr, refCfg)
			oooCfg := DefaultOOOVAConfig()
			oooCfg.MemLatency = lat
			ooo := RunOOOVA(tr, oooCfg).Stats
			if ref.Cycles < prevRef {
				t.Errorf("%s: REF cycles decreased at latency %d", name, lat)
			}
			if ooo.Cycles < prevOOO {
				t.Errorf("%s: OOOVA cycles decreased at latency %d", name, lat)
			}
			prevRef, prevOOO = ref.Cycles, ooo.Cycles
		}
	}
}

func TestInvariantRegisterMonotonicity(t *testing.T) {
	// More physical registers never hurt (small slack for bus-packing
	// noise from different placement orders).
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		var prev int64 = 1 << 62
		for _, regs := range []int{9, 12, 16, 32, 64} {
			cfg := DefaultOOOVAConfig()
			cfg.PhysVRegs = regs
			c := RunOOOVA(tr, cfg).Stats.Cycles
			if float64(c) > 1.01*float64(prev) {
				t.Errorf("%s: %d regs (%d cycles) slower than fewer regs (%d)",
					name, regs, c, prev)
			}
			if c < prev {
				prev = c
			}
		}
	}
}

func TestInvariantLateNeverFasterThanEarly(t *testing.T) {
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		early := DefaultOOOVAConfig()
		late := early
		late.Commit = CommitLate
		ce := RunOOOVA(tr, early).Stats.Cycles
		cl := RunOOOVA(tr, late).Stats.Cycles
		if float64(cl) < 0.995*float64(ce) {
			t.Errorf("%s: late commit (%d) beat early commit (%d)", name, cl, ce)
		}
	}
}

func TestInvariantEliminationNeverAddsTraffic(t *testing.T) {
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		base := DefaultOOOVAConfig()
		base.PhysVRegs = 32
		base.Commit = CommitLate
		baseRun := RunOOOVA(tr, base).Stats
		for _, mode := range []ElimMode{ElimSLE, ElimSLEVLE} {
			cfg := base
			cfg.LoadElim = mode
			run := RunOOOVA(tr, cfg).Stats
			if run.MemRequests > baseRun.MemRequests {
				t.Errorf("%s/%v: elimination increased traffic %d > %d",
					name, mode, run.MemRequests, baseRun.MemRequests)
			}
			if run.MemRequests+run.EliminatedRequests != baseRun.MemRequests {
				t.Errorf("%s/%v: traffic accounting broken: %d + %d != %d",
					name, mode, run.MemRequests, run.EliminatedRequests, baseRun.MemRequests)
			}
		}
	}
}

func TestInvariantStateAccountingExact(t *testing.T) {
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		ref := RunReference(tr, DefaultReferenceConfig())
		ooo := RunOOOVA(tr, DefaultOOOVAConfig()).Stats
		for _, st := range []*RunStats{ref, ooo} {
			if st.States.Total() != st.Cycles {
				t.Errorf("%s/%s: state breakdown %d != cycles %d",
					name, st.Machine, st.States.Total(), st.Cycles)
			}
			if st.States.MemIdleCycles()+st.MemPortBusy != st.Cycles {
				t.Errorf("%s/%s: port accounting inconsistent", name, st.Machine)
			}
		}
	}
}

func TestInvariantQueueDepthNeverHurtsMuch(t *testing.T) {
	for _, name := range invBenchmarks {
		tr := invTrace(t, name, 6000)
		c16 := RunOOOVA(tr, DefaultOOOVAConfig()).Stats.Cycles
		cfg := DefaultOOOVAConfig()
		cfg.QueueSlots = 128
		c128 := RunOOOVA(tr, cfg).Stats.Cycles
		if float64(c128) > 1.01*float64(c16) {
			t.Errorf("%s: queue 128 (%d) slower than queue 16 (%d)", name, c128, c16)
		}
	}
}

func TestInvariantElisionSubsetOfTraffic(t *testing.T) {
	for _, name := range []string{"bdna", "trfd"} {
		tr := invTrace(t, name, 6000)
		base := DefaultOOOVAConfig()
		base.PhysVRegs = 32
		baseRun := RunOOOVA(tr, base).Stats
		cfg := base
		cfg.ElideDeadSpillStores = true
		run := RunOOOVA(tr, cfg).Stats
		if run.MemRequests+run.ElidedRequests != baseRun.MemRequests {
			t.Errorf("%s: elision accounting broken: %d + %d != %d",
				name, run.MemRequests, run.ElidedRequests, baseRun.MemRequests)
		}
	}
}
