package oovec

// TestEmitBench writes a machine-readable performance snapshot (BENCH_9.json)
// for CI to archive: ns/op, allocs/op and B/op of the OOOVA and REF
// simulators on a fixed trace, the cold-vs-warm latency of a small sweep
// grid through the content-addressed result cache, a service-level load
// section (a seeded burst schedule driven cold and warm against an
// in-process ovserve by the ovload harness), and — on multicore runners —
// the serial-vs-parallel experiment-suite speedup. Gated on the BENCH_OUT
// environment variable so ordinary `go test ./...` runs skip it:
//
//	BENCH_OUT=BENCH_9.json go test -run TestEmitBench .
//
// CI diffs each snapshot against the previous run's via `ovload -compare`
// and fails on >20% regressions in the tracked fields (simulator ns/op,
// load p99) — the perf trajectory is owned by the pipeline, not by whoever
// remembers to run benchmarks.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"oovec/internal/experiments"
	"oovec/internal/load"
	"oovec/internal/server"
	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
)

// benchRecord is one measured operation in the emitted snapshot.
type benchRecord struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// benchSweep is the cold/warm sweep comparison: the same grid served once
// by simulation and once from the result cache.
type benchSweep struct {
	Points int     `json:"points"`
	ColdMs float64 `json:"cold_ms"`
	WarmMs float64 `json:"warm_ms"`
}

// benchLoad is the service-level section: one seeded burst schedule driven
// twice against a fresh in-process ovserve — cold (every key simulates)
// and warm (every key cached).
type benchLoad struct {
	Requests int          `json:"requests"`
	Cold     *load.Report `json:"cold"`
	Warm     *load.Report `json:"warm"`
}

// benchParallel is the engine fan-out section, present only on multicore
// runners: the same Fig5+Fig9 workload timed serial and one-worker-per-core.
type benchParallel struct {
	Cores      int     `json:"cores"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// benchSnapshot is the BENCH_9.json schema. Load and Parallel are pointers
// so older snapshots (and single-core emits) stay comparable — the
// trajectory gate skips absent sections.
type benchSnapshot struct {
	Insns      int            `json:"insns"`
	Benchmarks []benchRecord  `json:"benchmarks"`
	Sweep      benchSweep     `json:"sweep"`
	Load       *benchLoad     `json:"load,omitempty"`
	Parallel   *benchParallel `json:"parallel,omitempty"`
}

// benchLoadSpec is the seeded schedule of the load section — small enough
// to finish in seconds, mixed enough to touch /v1/sim, /v1/sweep and
// /v1/jobs.
func benchLoadSpec() load.Spec {
	return load.Spec{
		Mode: load.ModeBurst, Seed: 42,
		Begin: 2, Target: 12, Step: 10, SlotMs: 1000,
		Bench: []string{"swm256", "hydro2d"},
		Regs:  []int{12, 16, 32}, Lats: []int64{1, 50},
		Insns: 2000, SweepPct: 20, JobPct: 20, RefPct: 25,
	}
}

// emitLoadSection boots an in-process ovserve and drives the seeded
// schedule cold and warm.
func emitLoadSection(t *testing.T) *benchLoad {
	t.Helper()
	s := server.New(server.Opts{Workers: 0, JobWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.JobsClose()
	}()

	sched, err := load.Synthesize(benchLoadSpec())
	if err != nil {
		t.Fatal(err)
	}
	run := func() *load.Report {
		rep, err := load.Drive(context.Background(), sched, load.DriveOpts{
			BaseURL: ts.URL, Client: ts.Client(),
			Loop: load.LoopClosed, Conns: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold := run()
	warm := run()
	if warm.Server != nil && warm.Server.Sims != 0 {
		t.Fatalf("warm replay in the bench emit caused %d sims, want 0", warm.Server.Sims)
	}
	return &benchLoad{Requests: len(sched.Reqs), Cold: cold, Warm: warm}
}

// emitParallelSection times the Fig5+Fig9 workload serial vs
// one-worker-per-core. Single-core runners (the dev container) skip it —
// the section is absent rather than misleading.
func emitParallelSection() *benchParallel {
	if runtime.GOMAXPROCS(0) <= 1 {
		return nil
	}
	serial, parallel := suiteSpeedup()
	return &benchParallel{
		Cores:      runtime.GOMAXPROCS(0),
		SerialMs:   float64(serial) / float64(time.Millisecond),
		ParallelMs: float64(parallel) / float64(time.Millisecond),
		Speedup:    float64(serial) / float64(parallel),
	}
}

// suiteSpeedup runs the BenchmarkSuiteSerial/BenchmarkSuiteParallel
// workload once each and returns the wall clocks.
func suiteSpeedup() (serial, parallel time.Duration) {
	run := func(parallelism int) time.Duration {
		start := time.Now()
		s := NewSuite(SuiteOpts{Insns: benchInsns, Parallelism: parallelism})
		if len(experiments.Fig5(s).Names) == 0 || len(experiments.Fig9(s).Names) == 0 {
			panic("empty suite result")
		}
		return time.Since(start)
	}
	return run(1), run(0)
}

func TestEmitBench(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set; set it to a path to emit the benchmark snapshot")
	}

	p, ok := tgen.PresetByName("swm256")
	if !ok {
		t.Fatal("no swm256 preset")
	}
	p.Insns = benchInsns
	tr := tgen.Generate(p)

	record := func(name string, r testing.BenchmarkResult) benchRecord {
		return benchRecord{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	snap := benchSnapshot{Insns: benchInsns}

	// Steady-state simulator throughput: a reusable machine, reset per run,
	// the way sweep workers and the server machine pools drive it.
	oooM := NewOOOVAMachine(DefaultOOOVAConfig())
	snap.Benchmarks = append(snap.Benchmarks, record("ooova/swm256",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				oooM.Run(tr)
			}
		})))
	refM := NewReferenceMachine(DefaultReferenceConfig())
	snap.Benchmarks = append(snap.Benchmarks, record("ref/swm256",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				refM.Run(tr)
			}
		})))

	// Cold vs warm sweep: identical grids, the second served entirely from
	// the result cache. The ratio is the headline the cache earns its keep
	// by; the snapshot records both absolute latencies.
	cache := simcache.NewResults(1024, nil)
	grid := func() int {
		pts, err := sweep.OOOGridOpts(tr, DefaultOOOVAConfig(),
			[]int{12, 16, 32}, []int64{1, 50}, sweep.Opts{
				Workers: 1, Cache: cache, TraceKey: simcache.PresetKey(p),
			})
		if err != nil {
			t.Fatal(err)
		}
		return len(pts)
	}
	start := time.Now()
	n := grid()
	cold := time.Since(start)
	start = time.Now()
	if n2 := grid(); n2 != n {
		t.Fatalf("warm grid returned %d points, cold %d", n2, n)
	}
	warm := time.Since(start)
	snap.Sweep = benchSweep{
		Points: n,
		ColdMs: float64(cold) / float64(time.Millisecond),
		WarmMs: float64(warm) / float64(time.Millisecond),
	}

	snap.Load = emitLoadSection(t)
	snap.Parallel = emitParallelSection()

	b, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestParallelSuiteSpeedup is the multicore gate: on a runner with
// GOMAXPROCS > 1 the one-worker-per-core suite must beat the serial suite
// by a real margin. The full ≥4x ROADMAP target needs ≥4 free cores and a
// quiet machine; the gate asserts a conservative floor and records the
// actual ratio in the log (and, via TestEmitBench, in the BENCH snapshot)
// so the trajectory is visible without being flaky.
func TestParallelSuiteSpeedup(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	if cores <= 1 {
		t.Skipf("GOMAXPROCS=%d: parallel speedup needs a multicore runner", cores)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	serial, parallel := suiteSpeedup()
	speedup := float64(serial) / float64(parallel)
	t.Logf("suite speedup on %d cores: serial %v, parallel %v, %.2fx", cores, serial, parallel, speedup)
	if speedup < 1.5 {
		t.Fatalf("parallel suite speedup %.2fx on %d cores, want >= 1.5x", speedup, cores)
	}
}
