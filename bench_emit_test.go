package oovec

// TestEmitBench writes a machine-readable performance snapshot (BENCH_8.json)
// for CI to archive: ns/op, allocs/op and B/op of the OOOVA and REF
// simulators on a fixed trace, plus the cold-vs-warm latency of a small
// sweep grid through the content-addressed result cache. Gated on the
// BENCH_OUT environment variable so ordinary `go test ./...` runs skip it:
//
//	BENCH_OUT=BENCH_8.json go test -run TestEmitBench .

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
)

// benchRecord is one measured operation in the emitted snapshot.
type benchRecord struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// benchSweep is the cold/warm sweep comparison: the same grid served once
// by simulation and once from the result cache.
type benchSweep struct {
	Points int     `json:"points"`
	ColdMs float64 `json:"cold_ms"`
	WarmMs float64 `json:"warm_ms"`
}

// benchSnapshot is the BENCH_8.json schema.
type benchSnapshot struct {
	Insns      int           `json:"insns"`
	Benchmarks []benchRecord `json:"benchmarks"`
	Sweep      benchSweep    `json:"sweep"`
}

func TestEmitBench(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set; set it to a path to emit the benchmark snapshot")
	}

	p, ok := tgen.PresetByName("swm256")
	if !ok {
		t.Fatal("no swm256 preset")
	}
	p.Insns = benchInsns
	tr := tgen.Generate(p)

	record := func(name string, r testing.BenchmarkResult) benchRecord {
		return benchRecord{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	snap := benchSnapshot{Insns: benchInsns}

	// Steady-state simulator throughput: a reusable machine, reset per run,
	// the way sweep workers and the server machine pools drive it.
	oooM := NewOOOVAMachine(DefaultOOOVAConfig())
	snap.Benchmarks = append(snap.Benchmarks, record("ooova/swm256",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				oooM.Run(tr)
			}
		})))
	refM := NewReferenceMachine(DefaultReferenceConfig())
	snap.Benchmarks = append(snap.Benchmarks, record("ref/swm256",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				refM.Run(tr)
			}
		})))

	// Cold vs warm sweep: identical grids, the second served entirely from
	// the result cache. The ratio is the headline the cache earns its keep
	// by; the snapshot records both absolute latencies.
	cache := simcache.NewResults(1024, nil)
	grid := func() int {
		pts, err := sweep.OOOGridOpts(tr, DefaultOOOVAConfig(),
			[]int{12, 16, 32}, []int64{1, 50}, sweep.Opts{
				Workers: 1, Cache: cache, TraceKey: simcache.PresetKey(p),
			})
		if err != nil {
			t.Fatal(err)
		}
		return len(pts)
	}
	start := time.Now()
	n := grid()
	cold := time.Since(start)
	start = time.Now()
	if n2 := grid(); n2 != n {
		t.Fatalf("warm grid returned %d points, cold %d", n2, n)
	}
	warm := time.Since(start)
	snap.Sweep = benchSweep{
		Points: n,
		ColdMs: float64(cold) / float64(time.Millisecond),
		WarmMs: float64(warm) / float64(time.Millisecond),
	}

	b, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
