package oovec

// The reproduction regression test: asserts the paper's headline result
// shapes (EXPERIMENTS.md) on mid-size traces, so refactoring the simulators
// or the generator cannot silently break the reproduction. Skipped under
// -short (it runs the full benchmark set through both machines).

import (
	"testing"

	"oovec/internal/experiments"
)

func reproSuite() *Suite {
	return NewSuite(SuiteOpts{Insns: 12000})
}

func TestReproductionFig5SpeedupBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-set reproduction check")
	}
	res := experiments.Fig5(reproSuite())
	// Paper: 1.24–1.72 at 16 registers. Allow a generous band around it.
	for _, name := range res.Names {
		s := res.Speedup16[name][16]
		if s < 1.15 || s > 2.1 {
			t.Errorf("%s: speedup at 16 regs = %.2f outside [1.15, 2.1]", name, s)
		}
		// Diminishing returns past 16 registers.
		if gain := res.Speedup16[name][64] - s; gain > 0.25 {
			t.Errorf("%s: 16->64 regs gain %.2f too large", name, gain)
		}
		// 9 registers clearly worse than 16.
		if res.Speedup16[name][9] >= s {
			t.Errorf("%s: 9 regs not worse than 16", name)
		}
	}
}

func TestReproductionFig6TwoExceptions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-set reproduction check")
	}
	res := experiments.Fig6(reproSuite())
	// Paper: "for all but two of the benchmarks, the memory port is idle
	// less than 20% of the time".
	under := 0
	for _, name := range res.Names {
		if res.OOOIdle[name] < 20 {
			under++
		}
		if res.OOOIdle[name] >= res.RefIdle[name] {
			t.Errorf("%s: OOOVA idle not below REF", name)
		}
	}
	if under < 8 {
		t.Errorf("only %d of 10 programs under 20%% idle (paper: all but two)", under)
	}
}

func TestReproductionFig8Tolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-set reproduction check")
	}
	res := experiments.Fig8(reproSuite())
	// Paper: OOOVA flat to 100 cycles for most programs; trfd/dyfesm carry
	// a memory recurrence and may rise.
	flat := 0
	for _, name := range res.Names {
		if res.Degradation(name) < 0.08 {
			flat++
		}
	}
	if flat < 7 {
		t.Errorf("only %d of 10 programs tolerate latency (<8%% degradation)", flat)
	}
}

func TestReproductionFig9Outliers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-set reproduction check")
	}
	res := experiments.Fig9(reproSuite())
	// trfd and dyfesm must be the late-commit outliers (paper: 41%/47%).
	worstOther := 0.0
	for _, name := range res.Names {
		if name == "trfd" || name == "dyfesm" {
			continue
		}
		if d := res.Degradation16(name); d > worstOther {
			worstOther = d
		}
	}
	if res.Degradation16("trfd") <= worstOther {
		t.Errorf("trfd late cost %.2f not an outlier (worst other: %.2f)",
			res.Degradation16("trfd"), worstOther)
	}
}

func TestReproductionFig12Band(t *testing.T) {
	if testing.Short() {
		t.Skip("full-set reproduction check")
	}
	res := experiments.Fig12(reproSuite())
	// Paper: 32-reg SLE+VLE speedups typically 1.10–1.20, outliers higher.
	for _, name := range res.Names {
		s := res.Speedup[name][32]
		if s < 1.0 || s > 2.3 {
			t.Errorf("%s: SLE+VLE speedup %.3f outside [1.0, 2.3]", name, s)
		}
		if res.EliminatedLoads[name][32] == 0 {
			t.Errorf("%s: no eliminations", name)
		}
	}
	if res.Speedup["trfd"][32] < 1.2 {
		t.Errorf("trfd SLE+VLE %.3f should be a large outlier", res.Speedup["trfd"][32])
	}
}

func TestReproductionFig13Band(t *testing.T) {
	if testing.Short() {
		t.Skip("full-set reproduction check")
	}
	res := experiments.Fig13(reproSuite())
	// Paper: typical traffic reduction 15–20%, outliers to 40%.
	for _, name := range res.Names {
		r := res.SLEVLE[name]
		if r < 1.03 || r > 1.6 {
			t.Errorf("%s: SLE+VLE traffic ratio %.3f outside [1.03, 1.6]", name, r)
		}
	}
}
