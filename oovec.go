// Package oovec is a library reproduction of "Out-of-Order Vector
// Architectures" (Roger Espasa, Mateo Valero, James E. Smith; MICRO-30,
// 1997): cycle-level simulators for an in-order Convex C3400-class vector
// machine (the paper's reference architecture) and for the OOOVA — the
// out-of-order, register-renaming vector architecture the paper proposes —
// together with a synthetic benchmark generator mirroring the paper's ten
// Perfect Club / Specfp92 traces and drivers that regenerate every table
// and figure of the evaluation.
//
// # Quick start
//
//	tr, _ := oovec.GenerateBenchmark("swm256")
//	ref := oovec.RunReference(tr, oovec.DefaultReferenceConfig())
//	ooo := oovec.RunOOOVA(tr, oovec.DefaultOOOVAConfig())
//	fmt.Printf("speedup: %.2f\n", oovec.Speedup(ref, ooo.Stats))
//
// Custom kernels are written with a TraceBuilder:
//
//	b := oovec.NewTraceBuilder("daxpy")
//	b.SetVL(64, oovec.A(0))
//	b.VLoad(oovec.V(0), 0x10000)
//	b.Vector(oovec.OpVSMul, oovec.V(1), oovec.V(0), oovec.S(0))
//	...
//	tr := b.Build()
//
// The paper's experiments are exposed through an experiment Suite. The
// suite fans its independent simulations across a worker pool
// (SuiteOpts.Parallelism: 0 = one worker per core, 1 = serial) with
// byte-identical output for every worker count:
//
//	s := oovec.NewSuite(oovec.SuiteOpts{})
//	out, _ := oovec.RunExperiment(s, "fig5")
//	fmt.Print(out)
//
// Beyond the library, the repository ships CLIs (cmd/ovbench, ovsweep,
// ovsim, ovtrace) and a simulation-as-a-service daemon (cmd/ovserve). See
// docs/ARCHITECTURE.md for the package map and pooling/caching data flow,
// and docs/API.md for the ovserve HTTP API.
package oovec

import (
	"fmt"
	"io"

	"oovec/internal/experiments"
	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/rob"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

// ---------------------------------------------------------------- ISA

// Register and instruction types of the simulated ISA.
type (
	// Reg names an architectural register.
	Reg = isa.Reg
	// RegClass names a register file (address, scalar, vector, mask); it
	// keys the rename tables a fault-injection result exposes.
	RegClass = isa.RegClass
	// Op is an operation code.
	Op = isa.Op
	// Instruction is one dynamic instruction.
	Instruction = isa.Instruction
)

// Register constructors.
var (
	// A returns the n-th scalar address register.
	A = isa.A
	// S returns the n-th scalar data register.
	S = isa.S
	// V returns the n-th vector register.
	V = isa.V
	// VM returns the vector mask register.
	VM = isa.VM
)

// MaxVL is the architectural maximum vector length (128 elements).
const MaxVL = isa.MaxVL

// Commonly used opcodes (the full set lives in the internal isa package;
// these cover the public builder API's needs).
const (
	OpVAdd   = isa.OpVAdd
	OpVMul   = isa.OpVMul
	OpVDiv   = isa.OpVDiv
	OpVSqrt  = isa.OpVSqrt
	OpVLogic = isa.OpVLogic
	OpVShift = isa.OpVShift
	OpVCmp   = isa.OpVCmp
	OpVMerge = isa.OpVMerge
	OpVSMul  = isa.OpVSMul
	OpVSAdd  = isa.OpVSAdd
	OpAAdd   = isa.OpAAdd
	OpAMul   = isa.OpAMul
	OpSAdd   = isa.OpSAdd
	OpSMul   = isa.OpSMul
	OpSDiv   = isa.OpSDiv
	OpSLoad  = isa.OpSLoad
	OpSStore = isa.OpSStore
	OpALoad  = isa.OpALoad
	OpAStore = isa.OpAStore
)

// ---------------------------------------------------------------- traces

// Trace is a dynamic instruction trace.
type Trace = trace.Trace

// TraceBuilder constructs traces programmatically.
type TraceBuilder = trace.Builder

// TraceStats are per-trace statistics (Table 2 / Table 3 columns).
type TraceStats = trace.Stats

// NewTraceBuilder returns a builder for a custom kernel trace.
func NewTraceBuilder(name string) *TraceBuilder { return trace.NewBuilder(name) }

// WriteTrace and ReadTrace (de)serialise traces in the compact binary
// format.
var (
	WriteTrace = trace.Write
	ReadTrace  = trace.Read
)

// TraceLimits bound what ReadTraceLimited will decode from untrusted input.
type TraceLimits = trace.Limits

// ReadTraceLimited deserialises a trace with explicit decode bounds (the
// ovserve upload path uses this; ReadTrace applies generous defaults).
func ReadTraceLimited(r io.Reader, lim TraceLimits) (*Trace, error) {
	return trace.ReadLimited(r, lim)
}

// TraceDigest returns the content hash of a trace's canonical binary form —
// the content address the ovserve result cache keys uploaded traces by.
func TraceDigest(t *Trace) string { return trace.Digest(t) }

// ---------------------------------------------------------------- benchmarks

// BenchmarkPreset describes one synthetic benchmark.
type BenchmarkPreset = tgen.Preset

// Benchmarks returns the ten benchmark names in the paper's Table 2 order.
func Benchmarks() []string { return tgen.Names() }

// BenchmarkPresetByName returns the preset for a benchmark name.
func BenchmarkPresetByName(name string) (BenchmarkPreset, bool) {
	return tgen.PresetByName(name)
}

// GenerateBenchmark generates the synthetic trace for one of the paper's
// ten benchmarks.
func GenerateBenchmark(name string) (*Trace, error) {
	p, ok := tgen.PresetByName(name)
	if !ok {
		return nil, fmt.Errorf("oovec: unknown benchmark %q (have %v)", name, tgen.Names())
	}
	return tgen.Generate(p), nil
}

// GeneratePreset generates a trace from a (possibly customised) preset.
func GeneratePreset(p BenchmarkPreset) *Trace { return tgen.Generate(p) }

// ---------------------------------------------------------------- machines

// ReferenceConfig parameterises the in-order reference machine.
type ReferenceConfig = refsim.Config

// OOOVAConfig parameterises the out-of-order machine.
type OOOVAConfig = ooosim.Config

// OOOVAResult is the result of an OOOVA run (stats plus rename state).
type OOOVAResult = ooosim.Result

// FaultResult describes a §5 precise-trap experiment.
type FaultResult = ooosim.FaultResult

// RunStats are the measurements of one simulation run.
type RunStats = metrics.RunStats

// StateBreakdown is the (FU2, FU1, MEM) occupancy histogram of Figures 3/7.
type StateBreakdown = metrics.Breakdown

// StallBreakdown attributes a run's stall cycles to their causes (ROB
// full, queue full per class, no free physical register per class, vector
// register-file port conflicts, memory bus busy). Part of RunStats.
type StallBreakdown = metrics.StallBreakdown

// OccupancyHist is a fixed-bucket histogram of one structure's occupancy,
// sampled once per instruction at decode. Part of RunStats.
type OccupancyHist = metrics.OccHist

// OccupancyStats groups the per-structure occupancy histograms (ROB and
// the four instruction queues).
type OccupancyStats = metrics.Occupancy

// StateBreakdownName renders state index s (0..7) in the paper's tuple
// notation, e.g. "<FU2,FU1,MEM>".
func StateBreakdownName(s int) string { return metrics.State(s).String() }

// CommitPolicy selects the early (§2.2) or late (§5) commit model.
type CommitPolicy = rob.Policy

// Commit policies.
const (
	CommitEarly = rob.PolicyEarly
	CommitLate  = rob.PolicyLate
)

// ElimMode selects the §6 dynamic load elimination configuration.
type ElimMode = ooosim.ElimMode

// Load-elimination modes.
const (
	ElimNone   = ooosim.ElimNone
	ElimSLE    = ooosim.ElimSLE
	ElimSLEVLE = ooosim.ElimSLEVLE
)

// DefaultReferenceConfig returns the paper's reference configuration
// (50-cycle memory).
func DefaultReferenceConfig() ReferenceConfig { return refsim.DefaultConfig() }

// DefaultOOOVAConfig returns the paper's headline OOOVA configuration
// (16 physical vector registers, 16-slot queues, 64-entry ROB, 4-wide
// commit, 50-cycle memory, early commit).
func DefaultOOOVAConfig() OOOVAConfig { return ooosim.DefaultConfig() }

// RunReference simulates a trace on the in-order reference machine.
func RunReference(t *Trace, cfg ReferenceConfig) *RunStats {
	return refsim.Run(t, cfg)
}

// RunOOOVA simulates a trace on the out-of-order renaming machine.
func RunOOOVA(t *Trace, cfg OOOVAConfig) *OOOVAResult {
	return ooosim.Run(t, cfg)
}

// OOOVAMachine is a reusable OOOVA simulator instance: Reset restores the
// power-on state without reallocating, amortising construction across many
// runs (hot sweep loops, worker pools). Machines for previously seen
// structural shapes are retained, so sweeping register counts rebuilds
// each shape once. Not safe for concurrent use; give each worker its own.
type OOOVAMachine = ooosim.Machine

// NewOOOVAMachine builds a reusable machine for the configuration.
func NewOOOVAMachine(cfg OOOVAConfig) *OOOVAMachine { return ooosim.NewMachine(cfg) }

// ReferenceMachine is a reusable reference-simulator instance, the REF
// counterpart of OOOVAMachine. Not safe for concurrent use; give each
// worker its own.
type ReferenceMachine = refsim.Machine

// NewReferenceMachine builds a reusable reference machine.
func NewReferenceMachine(cfg ReferenceConfig) *ReferenceMachine { return refsim.NewMachine(cfg) }

// RunOOOVAWithFault simulates with a precise exception injected at the
// given instruction index and returns the recovered precise state (§5).
func RunOOOVAWithFault(t *Trace, cfg OOOVAConfig, faultIdx int) (*FaultResult, error) {
	return ooosim.RunWithFault(t, cfg, faultIdx)
}

// ---------------------------------------------------------------- metrics

// Speedup returns base.Cycles / run.Cycles.
func Speedup(base, run *RunStats) float64 { return metrics.Speedup(base, run) }

// TrafficReduction returns base requests / run requests (Figure 13).
func TrafficReduction(base, run *RunStats) float64 {
	return metrics.TrafficReduction(base, run)
}

// IdealCycles returns the paper's IDEAL lower bound for a trace: the work
// of the most heavily used vector unit with all dependences removed.
func IdealCycles(t *Trace) int64 { return metrics.IdealCycles(t) }

// IdealSpeedup returns the IDEAL speedup line of Figures 5/8/9.
func IdealSpeedup(refCycles int64, t *Trace) float64 {
	return metrics.IdealSpeedup(refCycles, t)
}

// ---------------------------------------------------------------- experiments

// Suite caches traces and runs across experiments.
type Suite = experiments.Suite

// SuiteOpts configures a Suite.
type SuiteOpts = experiments.Opts

// NewSuite builds an experiment suite.
func NewSuite(opts SuiteOpts) *Suite { return experiments.NewSuite(opts) }

// Experiments lists the regenerable tables and figures.
func Experiments() []string {
	return append([]string(nil), experiments.AllExperiments...)
}

// RunExperiment regenerates one table or figure by name ("table2", "fig5",
// ...) and returns its rendered text.
func RunExperiment(s *Suite, name string) (string, error) {
	return experiments.Run(s, name)
}

// PlotExperiment renders a text chart of one figure ("fig3".."fig13").
// Tables have no chart form and return an error.
func PlotExperiment(s *Suite, name string) (string, error) {
	return experiments.Plot(s, name)
}
