module oovec

go 1.24
