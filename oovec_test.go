package oovec

import (
	"bytes"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tr, err := GenerateBenchmark("flo52")
	if err != nil {
		t.Fatal(err)
	}
	ref := RunReference(tr, DefaultReferenceConfig())
	ooo := RunOOOVA(tr, DefaultOOOVAConfig())
	if sp := Speedup(ref, ooo.Stats); sp <= 1.0 {
		t.Errorf("speedup = %.2f, want > 1", sp)
	}
	if ideal := IdealSpeedup(ref.Cycles, tr); ideal <= Speedup(ref, ooo.Stats) {
		t.Errorf("IDEAL %.2f not above measured", ideal)
	}
}

func TestFacadeUnknownBenchmark(t *testing.T) {
	if _, err := GenerateBenchmark("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadeBenchmarkList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 10 {
		t.Fatalf("benchmarks = %d, want 10", len(names))
	}
	if _, ok := BenchmarkPresetByName(names[0]); !ok {
		t.Error("preset lookup failed")
	}
}

func TestFacadeTraceBuilderAndIO(t *testing.T) {
	b := NewTraceBuilder("kernel")
	b.SetVL(64, A(0))
	b.VLoad(V(0), 0x10000)
	b.Vector(OpVSMul, V(1), V(0), S(0))
	b.VStore(V(1), 0x20000)
	tr := b.Build()
	if tr.Len() != 4 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Error("round trip lost instructions")
	}
}

func TestFacadeLoadElimination(t *testing.T) {
	b := NewTraceBuilder("spill")
	b.SetVL(64, A(0))
	b.Vector(OpVAdd, V(1), V(0), V(2))
	b.SpillStore(V(1), 0x900000)
	b.SpillLoad(V(3), 0x900000)
	tr := b.Build()
	cfg := DefaultOOOVAConfig()
	cfg.Commit = CommitLate
	cfg.LoadElim = ElimSLEVLE
	res := RunOOOVA(tr, cfg)
	if res.Stats.EliminatedLoads != 1 {
		t.Errorf("eliminated = %d, want 1", res.Stats.EliminatedLoads)
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	tr, _ := GenerateBenchmark("flo52")
	cfg := DefaultOOOVAConfig()
	cfg.Commit = CommitLate
	res, err := RunOOOVAWithFault(tr, cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.InFlight < 1 {
		t.Error("no in-flight instructions rolled back")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 13 {
		t.Errorf("experiments = %d, want 13", len(Experiments()))
	}
	s := NewSuite(SuiteOpts{Insns: 2000, Names: []string{"tomcatv"}})
	out, err := RunExperiment(s, "fig6")
	if err != nil || len(out) == 0 {
		t.Errorf("fig6: %v (%d bytes)", err, len(out))
	}
}

func TestFacadeCustomPreset(t *testing.T) {
	p, _ := BenchmarkPresetByName("trfd")
	p.Insns = 2000
	tr := GeneratePreset(p)
	if tr.Len() < 1000 {
		t.Errorf("custom preset trace too small: %d", tr.Len())
	}
}
