// Command ovserve serves the simulators over HTTP — simulation as a
// service. Single runs and sweep grid points are content-address cached (a
// repeated identical request performs zero new simulations); design-space
// sweeps fan across the in-process worker pool and stream NDJSON.
//
// Usage:
//
//	ovserve                       # listen on :8787
//	ovserve -addr 127.0.0.1:9000 -j 8 -v
//	ovserve -auth-token $TOKEN -timeout 2m -max-inflight 32
//
//	curl localhost:8787/healthz
//	curl -X POST localhost:8787/v1/sim -d '{"bench":"swm256","config":{"vregs":32}}'
//	curl -X POST localhost:8787/v1/sweep -d '{"bench":["trfd"],"lats":[1,50,100]}'
//	curl -X POST localhost:8787/v1/jobs -d '{"sim":{"bench":"bdna","insns":1000000}}'
//	curl localhost:8787/metrics
//
// Long simulations run asynchronously through /v1/jobs: submission returns
// a job id immediately, progress is polled, DELETE cancels within one
// abort-check interval, and runs checkpoint through -cache-dir — a killed
// or restarted daemon resumes them from the last checkpoint instead of
// instruction zero. Interactive /v1/sim traffic preempts running jobs
// (checkpoint-and-park), so batch work never sits in front of a quick
// question.
//
// Production hardening (see docs/API.md): -auth-token (or the OVSERVE_TOKEN
// environment variable) requires a bearer token on every route but
// /healthz; -timeout bounds each request, observed between sweep grid
// points; -max-inflight bounds concurrently executing simulation requests,
// refusing the excess with 429 + Retry-After. SIGINT/SIGTERM drain
// gracefully: in-flight requests finish, new ones get 503 + Retry-After,
// running jobs checkpoint. -warm-bytes pre-loads MRU results into memory
// at startup; -scrub-interval re-validates stored entry CRCs in the
// background, quarantining silent corruption.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oovec/internal/cli"
	"oovec/internal/server"
	"oovec/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8787", "listen address")
		cacheN    = flag.Int("cache", 4096, "result cache capacity (entries)")
		maxUpload = flag.Int64("max-upload", 32<<20, "maximum request body size in bytes (bounds trace uploads)")
		maxInsns  = flag.Int("max-insns", 0, "maximum instruction count accepted in uploaded traces (0 = default limit)")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		timeout   = flag.Duration("timeout", 0, "per-request deadline; sweeps observe it between grid points (0 = none)")
		authToken = flag.String("auth-token", "", "require 'Authorization: Bearer <token>' on every route but /healthz (default $OVSERVE_TOKEN)")
		inflight  = flag.Int("max-inflight", 0, "maximum concurrently executing simulation requests; excess gets 429 (0 = unlimited)")
		jobWork   = flag.Int("job-workers", 1, "async job (/v1/jobs) worker pool size")
		jobQueue  = flag.Int("job-queue", 16, "async job queue bound; submissions beyond it are shed with 503")
		warmBytes = flag.Int64("warm-bytes", 0, "pre-load up to this many bytes of most-recently-used results from -cache-dir into memory at startup (0 = off)")
		scrubbery = flag.Duration("scrub-interval", 0, "background store integrity scrub cadence; corrupt entries are quarantined (0 = off)")
		logReqs   = flag.Bool("log-requests", false, "emit one structured JSON log line per request on stderr")
		slowReq   = flag.Duration("slow-request", 0, "log requests at or beyond this duration at WARN with slow=true (0 = never; implies -log-requests)")
		traceSmpl = flag.Int("trace-sample", 1, "record a span timeline for 1 in N requests on /v1/traces (0 = tracing off; a sampled W3C traceparent always records)")
		traceBuf  = flag.Int("trace-buffer", 256, "how many recent traces the in-process buffer retains (the slowest are always kept)")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	cacheF := cli.RegisterCache(flag.CommandLine)
	flag.Parse()
	if *authToken == "" {
		*authToken = os.Getenv("OVSERVE_TOKEN")
	}

	// The durable result store (-cache-dir) is what survives restarts: a
	// relaunched daemon pointed at the same directory serves previously
	// computed results with zero new simulations.
	st, err := cacheF.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovserve:", err)
		os.Exit(1)
	}

	// The structured request log: one JSON line per finished request with
	// the request id, route, status and duration — plus the operational
	// breadcrumbs (job cancellations, sweep aborts). -slow-request flags
	// outliers at WARN.
	var logger *slog.Logger
	if *logReqs || *slowReq > 0 {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	srv := server.New(server.Opts{
		Workers:        common.Jobs,
		CacheEntries:   *cacheN,
		MaxUploadBytes: *maxUpload,
		TraceLimits:    trace.Limits{MaxInsns: *maxInsns},
		Timeout:        *timeout,
		AuthToken:      *authToken,
		MaxInflight:    *inflight,
		Store:          st,
		JobWorkers:     *jobWork,
		JobQueue:       *jobQueue,
		Log:            logger,
		SlowRequest:    *slowReq,
		TraceSample:    *traceSmpl,
		TraceBuffer:    *traceBuf,
	})
	common.Announce("ovserve")
	if common.Verbose && *authToken != "" {
		fmt.Fprintln(os.Stderr, "ovserve: bearer-token auth enabled (/healthz exempt)")
	}
	if common.Verbose && st != nil {
		fmt.Fprintf(os.Stderr, "ovserve: durable result store at %s (%d byte bound)\n", st.Dir(), st.MaxBytes())
	}
	// Warm start: repopulate the memory tier from the store's MRU entries
	// so the first repeated requests after a restart are memory hits.
	if n := srv.WarmStart(*warmBytes); n > 0 && common.Verbose {
		fmt.Fprintf(os.Stderr, "ovserve: warm start pre-loaded %d results\n", n)
	}
	// The background integrity scrubber re-validates store entry CRCs on
	// idle time, quarantining silent corruption before a request pays for
	// its discovery.
	stopScrub := func() {}
	if st != nil {
		stopScrub = st.StartScrubber(*scrubbery)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ovserve: listening on %s (%d sweep workers)\n", *addr, srv.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	// closeStore flushes write-behind saves so results computed before the
	// exit are durable — the restart-warm guarantee. The job layer must be
	// closed first (Drain does it; this is the belt for the error paths):
	// canceled jobs persist their checkpoints through the still-open store.
	closeStore := func() {
		stopScrub()
		srv.JobsClose()
		if st != nil {
			st.Close()
		}
	}
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeStore()
			fmt.Fprintln(os.Stderr, "ovserve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ovserve: %s, draining (up to %s)\n", sig, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ovserve: drain:", err)
		}
		closeStore()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ovserve: shutdown:", err)
			os.Exit(1)
		}
	}
}
