// Command ovserve serves the simulators over HTTP — simulation as a
// service. Single runs and sweep grid points are content-address cached (a
// repeated identical request performs zero new simulations); design-space
// sweeps fan across the in-process worker pool and stream NDJSON.
//
// Usage:
//
//	ovserve                       # listen on :8787
//	ovserve -addr 127.0.0.1:9000 -j 8 -v
//	ovserve -auth-token $TOKEN -timeout 2m -max-inflight 32
//
//	curl localhost:8787/healthz
//	curl -X POST localhost:8787/v1/sim -d '{"bench":"swm256","config":{"vregs":32}}'
//	curl -X POST localhost:8787/v1/sweep -d '{"bench":["trfd"],"lats":[1,50,100]}'
//	curl localhost:8787/metrics
//
// Production hardening (see docs/API.md): -auth-token (or the OVSERVE_TOKEN
// environment variable) requires a bearer token on every route but
// /healthz; -timeout bounds each request, observed between sweep grid
// points; -max-inflight bounds concurrently executing simulation requests,
// refusing the excess with 429 + Retry-After. SIGINT/SIGTERM drain
// gracefully: in-flight requests finish, new ones get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oovec/internal/cli"
	"oovec/internal/server"
	"oovec/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8787", "listen address")
		cacheN    = flag.Int("cache", 4096, "result cache capacity (entries)")
		maxUpload = flag.Int64("max-upload", 32<<20, "maximum request body size in bytes (bounds trace uploads)")
		maxInsns  = flag.Int("max-insns", 0, "maximum instruction count accepted in uploaded traces (0 = default limit)")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		timeout   = flag.Duration("timeout", 0, "per-request deadline; sweeps observe it between grid points (0 = none)")
		authToken = flag.String("auth-token", "", "require 'Authorization: Bearer <token>' on every route but /healthz (default $OVSERVE_TOKEN)")
		inflight  = flag.Int("max-inflight", 0, "maximum concurrently executing simulation requests; excess gets 429 (0 = unlimited)")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	cacheF := cli.RegisterCache(flag.CommandLine)
	flag.Parse()
	if *authToken == "" {
		*authToken = os.Getenv("OVSERVE_TOKEN")
	}

	// The durable result store (-cache-dir) is what survives restarts: a
	// relaunched daemon pointed at the same directory serves previously
	// computed results with zero new simulations.
	st, err := cacheF.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovserve:", err)
		os.Exit(1)
	}

	srv := server.New(server.Opts{
		Workers:        common.Jobs,
		CacheEntries:   *cacheN,
		MaxUploadBytes: *maxUpload,
		TraceLimits:    trace.Limits{MaxInsns: *maxInsns},
		Timeout:        *timeout,
		AuthToken:      *authToken,
		MaxInflight:    *inflight,
		Store:          st,
	})
	common.Announce("ovserve")
	if common.Verbose && *authToken != "" {
		fmt.Fprintln(os.Stderr, "ovserve: bearer-token auth enabled (/healthz exempt)")
	}
	if common.Verbose && st != nil {
		fmt.Fprintf(os.Stderr, "ovserve: durable result store at %s (%d byte bound)\n", st.Dir(), st.MaxBytes())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ovserve: listening on %s (%d sweep workers)\n", *addr, srv.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	// closeStore flushes write-behind saves so results computed before the
	// exit are durable — the restart-warm guarantee.
	closeStore := func() {
		if st != nil {
			st.Close()
		}
	}
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeStore()
			fmt.Fprintln(os.Stderr, "ovserve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ovserve: %s, draining (up to %s)\n", sig, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ovserve: drain:", err)
		}
		closeStore()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ovserve: shutdown:", err)
			os.Exit(1)
		}
	}
}
