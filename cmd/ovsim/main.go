// Command ovsim runs one benchmark on one machine configuration and prints
// the measurements.
//
// Usage:
//
//	ovsim -bench swm256 -machine ooo -vregs 16 -latency 50
//	ovsim -bench trfd -machine ooo -commit late -elim sle+vle
//	ovsim -bench hydro2d -machine ref -latency 100
//	ovsim -trace kernel.ovtr -machine ooo
//	ovsim -bench swm256 -stalls               # stall-cause attribution
//	ovsim -bench swm256 -pipetrace out.kanata # Kanata/Konata pipeline trace
package main

import (
	"flag"
	"fmt"
	"os"

	"oovec"
	"oovec/internal/cli"
	"oovec/internal/engine"
	"oovec/internal/probe"
	"oovec/internal/viz"
)

func main() {
	var (
		bench   = flag.String("bench", "swm256", "benchmark name (see ovtrace -list)")
		traceF  = flag.String("trace", "", "run a serialised trace file instead of a benchmark")
		machine = flag.String("machine", "ooo", "machine: ref | ooo")
		vregs   = flag.Int("vregs", 16, "physical vector registers (OOOVA)")
		queues  = flag.Int("queues", 16, "instruction queue slots (OOOVA)")
		latency = flag.Int64("latency", 50, "main-memory latency in cycles")
		commit  = flag.String("commit", "early", "commit policy: early | late (OOOVA)")
		elim    = flag.String("elim", "none", "load elimination: none | sle | sle+vle (OOOVA)")
		insns   = flag.Int("insns", 0, "override benchmark instruction budget")
		stalls  = flag.Bool("stalls", false, "print stall-cause attribution and occupancy histograms")
		ptrace  = flag.String("pipetrace", "", "write a Kanata/Konata pipeline trace of the run to this file")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	flag.Parse()
	common.Announce("ovsim")

	tr, err := loadTrace(*bench, *traceF, *insns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovsim:", err)
		os.Exit(1)
	}

	// The pipeline trace sink observes the run without changing its
	// measurements; the Kanata file is flushed after the run completes.
	var kan *probe.Kanata
	var kanFile *os.File
	if *ptrace != "" {
		kanFile, err = os.Create(*ptrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ovsim:", err)
			os.Exit(1)
		}
		kan = probe.NewKanata(kanFile)
	}

	switch *machine {
	case "ref":
		cfg := oovec.DefaultReferenceConfig()
		cfg.MemLatency = *latency
		if kan != nil {
			cfg.Sink = kan
		}
		st := oovec.RunReference(tr, cfg)
		printStats(st)
		if *stalls {
			printStalls(st)
		}
	case "ooo":
		cfg := oovec.DefaultOOOVAConfig()
		cfg.PhysVRegs = *vregs
		cfg.QueueSlots = *queues
		cfg.MemLatency = *latency
		if kan != nil {
			cfg.Sink = kan
		}
		if cfg.Commit, err = cli.ParseCommit(*commit); err != nil {
			fmt.Fprintln(os.Stderr, "ovsim:", err)
			os.Exit(1)
		}
		if cfg.LoadElim, err = cli.ParseElim(*elim); err != nil {
			fmt.Fprintln(os.Stderr, "ovsim:", err)
			os.Exit(1)
		}
		// The OOOVA run and the reference comparison run are independent;
		// fan them across the worker pool.
		var res *oovec.OOOVAResult
		var ref *oovec.RunStats
		engine.Map(common.Jobs, 2, func(i int) {
			if i == 0 {
				res = oovec.RunOOOVA(tr, cfg)
			} else {
				refCfg := oovec.DefaultReferenceConfig()
				refCfg.MemLatency = *latency
				ref = oovec.RunReference(tr, refCfg)
			}
		})
		printStats(res.Stats)
		fmt.Printf("%-28s %.3f\n", "speedup over REF:", oovec.Speedup(ref, res.Stats))
		fmt.Printf("%-28s %.3f\n", "IDEAL speedup bound:", oovec.IdealSpeedup(ref.Cycles, tr))
		if *stalls {
			printStalls(res.Stats)
		}
	default:
		fmt.Fprintf(os.Stderr, "ovsim: unknown machine %q (ref | ooo)\n", *machine)
		os.Exit(1)
	}

	if kan != nil {
		if err := kan.Flush(); err == nil {
			err = kanFile.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ovsim: pipetrace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ovsim: pipeline trace written to %s\n", *ptrace)
	}
}

func loadTrace(bench, traceFile string, insns int) (*oovec.Trace, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return oovec.ReadTrace(f)
	}
	if insns > 0 {
		p, ok := oovec.BenchmarkPresetByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		p.Insns = insns
		return oovec.GeneratePreset(p), nil
	}
	return oovec.GenerateBenchmark(bench)
}

func printStats(st *oovec.RunStats) {
	fmt.Printf("%-28s %s\n", "machine:", st.Machine)
	fmt.Printf("%-28s %s\n", "program:", st.Program)
	fmt.Printf("%-28s %d\n", "instructions:", st.Instructions)
	fmt.Printf("%-28s %d\n", "cycles:", st.Cycles)
	fmt.Printf("%-28s %d\n", "memory requests:", st.MemRequests)
	fmt.Printf("%-28s %.1f%%\n", "memory port idle:", st.MemPortIdlePct())
	fmt.Printf("%-28s %d\n", "port conflict cycles:", st.VRegPortConflictCycles)
	if st.Mispredicts > 0 {
		fmt.Printf("%-28s %d\n", "mispredictions:", st.Mispredicts)
	}
	if st.EliminatedLoads > 0 {
		fmt.Printf("%-28s %d (%d requests)\n", "eliminated loads:",
			st.EliminatedLoads, st.EliminatedRequests)
	}
	fmt.Println("state breakdown:")
	for s := 0; s < len(st.States); s++ {
		if st.States[s] == 0 {
			continue
		}
		pct := 100 * float64(st.States[s]) / float64(st.Cycles)
		fmt.Printf("  %-16s %10d  (%.1f%%)\n", stateName(s), st.States[s], pct)
	}
}

func stateName(s int) string {
	return oovec.StateBreakdownName(s)
}

// printStalls renders the decode-stall attribution and the structure
// occupancy histograms (-stalls). The REF machine models no decode window,
// so for it only the memory-bus row is ever non-zero and the occupancy
// histograms are empty (skipped).
func printStalls(st *oovec.RunStats) {
	fmt.Print(viz.HBar("stall cycles by cause:", []viz.BarRow{
		{Label: "rob-full", Value: float64(st.Stalls.ROBFull)},
		{Label: "iq-full", Value: float64(st.Stalls.IQFull())},
		{Label: "no-phys-reg", Value: float64(st.Stalls.NoPhysReg())},
		{Label: "port-conflict", Value: float64(st.Stalls.PortConflict)},
		{Label: "mem-bus-busy", Value: float64(st.Stalls.MemBusBusy)},
	}, 40))
	for _, h := range []struct {
		name string
		hist *oovec.OccupancyHist
	}{
		{"ROB", &st.Occupancy.ROB},
		{"IQ (address)", &st.Occupancy.IQA},
		{"IQ (scalar)", &st.Occupancy.IQS},
		{"IQ (vector)", &st.Occupancy.IQV},
		{"IQ (memory)", &st.Occupancy.IQM},
	} {
		if h.hist.Samples() == 0 {
			continue
		}
		counts := make([]int64, len(h.hist.Counts))
		copy(counts, h.hist.Counts[:])
		fmt.Print(viz.Occupancy(
			fmt.Sprintf("%s occupancy (fraction of %d):", h.name, h.hist.Cap), counts, 40))
	}
}
