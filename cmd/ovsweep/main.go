// Command ovsweep runs parameter grids over the simulators and writes the
// raw measurements as CSV for downstream plotting.
//
// Grid points run through the same content-addressed result cache as the
// ovserve daemon (internal/simcache), so duplicate points — overlapping
// grids, repeated benchmarks, machine "both" sharing a REF latitude — are
// simulated once per process. With -cache-dir the cache gains a durable
// disk tier (internal/store): repeated sweeps across process invocations
// simulate only their delta, and the directory is shared with ovbench and
// ovserve. SIGINT/SIGTERM cancel the grid between simulations and exit
// non-zero without writing a truncated CSV — but completed points are
// flushed to the store first, so an interrupted sweep still warms the
// next run.
//
// Usage:
//
//	ovsweep -bench swm256,trfd -regs 9,16,32,64 -lats 1,50,100 -o sweep.csv
//	ovsweep -bench bdna -machine ref -lats 1,20,70,100
//	ovsweep -bench swm256 -cache-dir ~/.cache/oovec   # warm across runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"oovec/internal/cli"
	"oovec/internal/isa"
	"oovec/internal/ooosim"
	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
)

func main() {
	var (
		bench   = flag.String("bench", "swm256", "comma-separated benchmark names")
		machine = flag.String("machine", "ooo", "machine: ref | ooo | both")
		regsF   = flag.String("regs", "9,12,16,32,64", "comma-separated physical vector register counts (OOOVA)")
		latsF   = flag.String("lats", "1,50,100", "comma-separated memory latencies")
		commit  = flag.String("commit", "early", "commit policy: early | late (OOOVA)")
		elim    = flag.String("elim", "none", "load elimination: none | sle | sle+vle (OOOVA)")
		insns   = flag.Int("insns", 0, "instruction budget override")
		out     = flag.String("o", "", "output CSV path (default stdout)")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	cacheF := cli.RegisterCache(flag.CommandLine)
	flag.Parse()
	common.Announce("ovsweep")

	// Validate the machine selection up front: a typo used to fall through
	// both grid `if`s and silently produce a header-only CSV with exit 0.
	switch *machine {
	case "ref", "ooo", "both":
	default:
		fatal(fmt.Errorf("unknown machine %q (ref | ooo | both)", *machine))
	}

	regs, err := parseInts(*regsF)
	if err != nil {
		fatal(err)
	}
	if *machine != "ref" { // -regs only drives the OOOVA grids
		for _, r := range regs {
			if r <= 0 {
				fatal(fmt.Errorf("-regs values must be positive, got %d", r))
			}
			if r <= isa.NumLogicalV {
				fatal(fmt.Errorf("-regs %d: the OOOVA needs more than %d physical vector registers (one per architectural register plus at least one for renaming)", r, isa.NumLogicalV))
			}
		}
	}
	lats64, err := parseInt64s(*latsF)
	if err != nil {
		fatal(err)
	}
	for _, l := range lats64 {
		if l <= 0 {
			fatal(fmt.Errorf("-lats values must be positive, got %d", l))
		}
	}

	base := ooosim.DefaultConfig()
	if base.Commit, err = cli.ParseCommit(*commit); err != nil {
		fatal(err)
	}
	if base.LoadElim, err = cli.ParseElim(*elim); err != nil {
		fatal(err)
	}

	// Grid points go through the same content-addressed result cache the
	// ovserve daemon uses (keyed by resolved config + trace content), so
	// overlapping grids in one invocation only simulate distinct points —
	// and with -cache-dir, across invocations too: the in-memory tier
	// fronts the durable store, and a repeated sweep in a fresh process
	// runs only its delta. The signal context stops the grid between
	// points on Ctrl-C.
	ctx, stop := cli.SignalContext()
	defer stop()
	st, err := cacheF.Open()
	if err != nil {
		fatal(err)
	}
	// flushStore makes completed rows durable before any exit — including
	// the SIGINT path, so an interrupted sweep still warms the next run.
	flushStore := func() {
		if st != nil {
			st.Close()
		}
	}
	var disk simcache.ResultStore
	if st != nil {
		disk = st
	}
	var sims atomic.Int64
	opts := sweep.Opts{
		Workers: common.Jobs,
		Cache:   simcache.NewResults(4096, disk),
		Ctx:     ctx,
		OnSim:   func() { sims.Add(1) },
	}

	var pts []sweep.Point
	for _, name := range strings.Split(*bench, ",") {
		p, ok := tgen.PresetByName(strings.TrimSpace(name))
		if !ok {
			flushStore()
			fatal(fmt.Errorf("unknown benchmark %q", name))
		}
		if *insns > 0 {
			p.Insns = *insns
		}
		// The shared trace cache means repeated runs in one process (and the
		// ovserve daemon) generate each (preset, insns) trace once.
		tr := simcache.GenerateTrace(p)
		opts.TraceKey = simcache.PresetKey(p)
		if *machine == "ref" || *machine == "both" {
			grid, err := sweep.RefGridOpts(tr, lats64, opts)
			if err != nil {
				flushStore()
				fatal(fmt.Errorf("sweep interrupted: %w", err))
			}
			pts = append(pts, grid...)
		}
		if *machine == "ooo" || *machine == "both" {
			grid, err := sweep.OOOGridOpts(tr, base, regs, lats64, opts)
			if err != nil {
				flushStore()
				fatal(fmt.Errorf("sweep interrupted: %w", err))
			}
			pts = append(pts, grid...)
		}
	}
	flushStore()
	if common.Verbose {
		fmt.Fprintf(os.Stderr, "ovsweep: %d grid points, %d simulations run (%d served from cache)\n",
			len(pts), sims.Load(), int64(len(pts))-sims.Load())
	}

	if *out == "" {
		if err := sweep.WriteCSV(os.Stdout, pts); err != nil {
			fatal(err)
		}
		return
	}
	// cli.WriteFile reports Sync/Close errors: a full disk must not leave
	// a silently truncated CSV behind an exit 0.
	err = cli.WriteFile(*out, func(w io.Writer) error {
		return sweep.WriteCSV(w, pts)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d points to %s\n", len(pts), *out)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	vs, err := parseInts(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovsweep:", err)
	os.Exit(1)
}
