// Command ovsweep runs parameter grids over the simulators and writes the
// raw measurements as CSV for downstream plotting.
//
// Usage:
//
//	ovsweep -bench swm256,trfd -regs 9,16,32,64 -lats 1,50,100 -o sweep.csv
//	ovsweep -bench bdna -machine ref -lats 1,20,70,100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"oovec/internal/cli"
	"oovec/internal/isa"
	"oovec/internal/ooosim"
	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
)

func main() {
	var (
		bench   = flag.String("bench", "swm256", "comma-separated benchmark names")
		machine = flag.String("machine", "ooo", "machine: ref | ooo | both")
		regsF   = flag.String("regs", "9,12,16,32,64", "comma-separated physical vector register counts (OOOVA)")
		latsF   = flag.String("lats", "1,50,100", "comma-separated memory latencies")
		commit  = flag.String("commit", "early", "commit policy: early | late (OOOVA)")
		elim    = flag.String("elim", "none", "load elimination: none | sle | sle+vle (OOOVA)")
		insns   = flag.Int("insns", 0, "instruction budget override")
		out     = flag.String("o", "", "output CSV path (default stdout)")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	flag.Parse()
	common.Announce("ovsweep")

	// Validate the machine selection up front: a typo used to fall through
	// both grid `if`s and silently produce a header-only CSV with exit 0.
	switch *machine {
	case "ref", "ooo", "both":
	default:
		fatal(fmt.Errorf("unknown machine %q (ref | ooo | both)", *machine))
	}

	regs, err := parseInts(*regsF)
	if err != nil {
		fatal(err)
	}
	if *machine != "ref" { // -regs only drives the OOOVA grids
		for _, r := range regs {
			if r <= 0 {
				fatal(fmt.Errorf("-regs values must be positive, got %d", r))
			}
			if r <= isa.NumLogicalV {
				fatal(fmt.Errorf("-regs %d: the OOOVA needs more than %d physical vector registers (one per architectural register plus at least one for renaming)", r, isa.NumLogicalV))
			}
		}
	}
	lats64, err := parseInt64s(*latsF)
	if err != nil {
		fatal(err)
	}
	for _, l := range lats64 {
		if l <= 0 {
			fatal(fmt.Errorf("-lats values must be positive, got %d", l))
		}
	}

	base := ooosim.DefaultConfig()
	if base.Commit, err = cli.ParseCommit(*commit); err != nil {
		fatal(err)
	}
	if base.LoadElim, err = cli.ParseElim(*elim); err != nil {
		fatal(err)
	}

	var pts []sweep.Point
	for _, name := range strings.Split(*bench, ",") {
		p, ok := tgen.PresetByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", name))
		}
		if *insns > 0 {
			p.Insns = *insns
		}
		// The shared trace cache means repeated runs in one process (and the
		// ovserve daemon) generate each (preset, insns) trace once.
		tr := simcache.GenerateTrace(p)
		if *machine == "ref" || *machine == "both" {
			pts = append(pts, sweep.RefGridWorkers(tr, lats64, common.Jobs)...)
		}
		if *machine == "ooo" || *machine == "both" {
			pts = append(pts, sweep.OOOGridWorkers(tr, base, regs, lats64, common.Jobs)...)
		}
	}

	if *out == "" {
		if err := sweep.WriteCSV(os.Stdout, pts); err != nil {
			fatal(err)
		}
		return
	}
	// cli.WriteFile reports Sync/Close errors: a full disk must not leave
	// a silently truncated CSV behind an exit 0.
	err = cli.WriteFile(*out, func(w io.Writer) error {
		return sweep.WriteCSV(w, pts)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d points to %s\n", len(pts), *out)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	vs, err := parseInts(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovsweep:", err)
	os.Exit(1)
}
