// Command ovlint runs the project's static-analysis suite (internal/analysis)
// over the whole module: determinism, hotpath, snapshotcomplete, gobsafe and
// ctxabort. It is a tier-1 CI gate: any diagnostic fails the build.
//
// Usage:
//
//	ovlint [-C dir] [-only name,name] [-list]
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oovec/internal/analysis"
)

func main() {
	var (
		dir  = flag.String("C", ".", "directory inside the module to lint (the module root is found by ascending to go.mod)")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ovlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ovlint: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ovlint: %v\n", err)
		os.Exit(2)
	}
	diags := prog.Run(analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ovlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
