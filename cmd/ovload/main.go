// Command ovload is the load harness for ovserve: it synthesizes a
// deterministic, seeded request schedule (vhive-style normal / sweep /
// burst RPS shapes over the preset + config grid), fires it at a live
// daemon in closed- or open-loop mode mixing /v1/sim, streamed /v1/sweep
// and async /v1/jobs traffic, and reports p50/p95/p99 latency, throughput,
// shed and error counts, the cache hit ratio, and sims/sec scraped from
// /metrics before and after the run.
//
// Usage:
//
//	ovload -mode burst -seed 42 -schedule-out burst.ovls -out report.json
//	ovload -schedule burst.ovls -loop closed -conns 16      # replay a file
//	ovload -url '' -schedule-out s.ovls                     # synthesize only
//	ovload -compare BENCH_prev.json -against BENCH_9.json   # trajectory gate
//
// Same seed + same shape flags → byte-identical schedule file, so a
// schedule written once is a reproducible benchmark: replaying it against
// a warm server must produce identical request-count and hit-ratio
// aggregates, and CI holds it to that (see docs/LOADTEST.md).
//
// In -compare mode ovload diffs two BENCH snapshots and exits 1 when a
// tracked metric (simulator ns/op, load p99) regressed beyond -regress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"oovec/internal/cli"
	"oovec/internal/load"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8787", "ovserve base URL; empty synthesizes the schedule without driving it (requires -schedule-out)")
		token   = flag.String("token", "", "bearer token sent on every request (default $OVSERVE_TOKEN)")
		mode    = flag.String("mode", "normal", "RPS shape: normal (staircase), sweep (up then down), burst (baseline + spikes)")
		seed    = flag.Int64("seed", 1, "synthesis seed; same seed + shape flags = byte-identical schedule")
		begin   = flag.Int("begin", 2, "starting RPS")
		target  = flag.Int("target", 10, "peak RPS (burst spike height)")
		step    = flag.Int("step", 2, "RPS increment per slot")
		slot    = flag.Duration("slot", 500*time.Millisecond, "duration of one RPS slot")
		bench   = flag.String("bench", "swm256", "comma-separated benchmark presets requests draw from")
		regs    = flag.String("regs", "12,16,32", "comma-separated register counts of the config grid")
		lats    = flag.String("lats", "1,50", "comma-separated memory latencies of the config grid")
		insns   = flag.Int("insns", 2000, "instruction budget per request")
		sweepP  = flag.Int("sweep-pct", 10, "percent of requests that are streamed /v1/sweep grids")
		jobP    = flag.Int("job-pct", 10, "percent of requests that are async /v1/jobs submissions")
		refP    = flag.Int("ref-pct", 25, "percent of sims that run the reference machine")
		loop    = flag.String("loop", "open", "driver discipline: open (fire on schedule) or closed (fire on completion)")
		conns   = flag.Int("conns", 8, "closed-loop worker count")
		reqTO   = flag.Duration("req-timeout", 60*time.Second, "per-request timeout")
		jobWait = flag.Duration("job-wait", 60*time.Second, "how long to poll a submitted job toward a terminal state")
		schedIn = flag.String("schedule", "", "replay this schedule file instead of synthesizing")
		schedTo = flag.String("schedule-out", "", "write the synthesized schedule file here")
		out     = flag.String("out", "", "write the report JSON here (default stdout)")
		noScr   = flag.Bool("no-scrape", false, "skip the /metrics scrape (no server section in the report)")

		compare = flag.String("compare", "", "previous BENCH snapshot: compare mode, diffs -against and exits 1 on regression")
		against = flag.String("against", "", "current BENCH snapshot for -compare")
		regress = flag.Float64("regress", 0.20, "tolerated regression fraction in -compare mode (0.20 = fail beyond +20%)")
	)
	flag.Parse()
	if *token == "" {
		*token = os.Getenv("OVSERVE_TOKEN")
	}

	if *compare != "" || *against != "" {
		os.Exit(runCompare(*compare, *against, *regress))
	}

	sched, err := resolveSchedule(*schedIn, load.Spec{
		Mode: load.Mode(*mode), Seed: *seed,
		Begin: *begin, Target: *target, Step: *step,
		SlotMs: int(*slot / time.Millisecond),
		Bench:  splitList(*bench), Insns: *insns,
		SweepPct: *sweepP, JobPct: *jobP, RefPct: *refP,
	}, *regs, *lats)
	if err != nil {
		fatal(err)
	}
	if *schedTo != "" {
		if err := sched.WriteFile(*schedTo); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ovload: wrote %d-request schedule to %s\n", len(sched.Reqs), *schedTo)
	}
	if *url == "" {
		if *schedTo == "" {
			fatal(fmt.Errorf("empty -url synthesizes only: -schedule-out is required"))
		}
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	rep, err := load.Drive(ctx, sched, load.DriveOpts{
		BaseURL:    load.BaseURLOf(*url),
		Token:      *token,
		Loop:       *loop,
		Conns:      *conns,
		Timeout:    *reqTO,
		JobWait:    *jobWait,
		SkipScrape: *noScr,
	})
	if err != nil {
		fatal(err)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"ovload: %d requests in %.1fs — %d ok, %d shed, %d errors, p99 %.1fms\n",
		rep.Requests, rep.WallMs/1000, rep.OK, rep.Shed, rep.Errors, rep.Latency.P99Ms)
}

// resolveSchedule loads a replay file or synthesizes from the flag spec.
func resolveSchedule(path string, spec load.Spec, regs, lats string) (*load.Schedule, error) {
	if path != "" {
		return load.ReadFile(path)
	}
	var err error
	if spec.Regs, err = parseInts(regs); err != nil {
		return nil, fmt.Errorf("-regs: %w", err)
	}
	if spec.Lats, err = parseInt64s(lats); err != nil {
		return nil, fmt.Errorf("-lats: %w", err)
	}
	return load.Synthesize(spec)
}

// runCompare is the trajectory gate: 0 clean, 1 regression, 2 usage/load
// error.
func runCompare(prevPath, curPath string, tol float64) int {
	if prevPath == "" || curPath == "" {
		fmt.Fprintln(os.Stderr, "ovload: -compare and -against must both be set")
		return 2
	}
	prev, err := os.ReadFile(prevPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovload:", err)
		return 2
	}
	cur, err := os.ReadFile(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovload:", err)
		return 2
	}
	regs, compared, err := load.Compare(prev, cur, tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovload:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "ovload: compared %d tracked metrics (tolerance +%.0f%%)\n",
		compared, tol*100)
	if len(regs) == 0 {
		fmt.Fprintln(os.Stderr, "ovload: no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "ovload: REGRESSION", r.String())
	}
	// The one-line verdict a CI log reader sees first: how much of the
	// tracked surface regressed, and the single worst offender with its
	// before/after values.
	worst := regs[0]
	for _, r := range regs[1:] {
		if r.Ratio > worst.Ratio {
			worst = r
		}
	}
	fmt.Fprintf(os.Stderr,
		"ovload: FAIL — %d of %d tracked metrics regressed beyond +%.0f%%; worst: %s (%.1f -> %.1f, +%.0f%%)\n",
		len(regs), compared, tol*100,
		worst.Field, worst.Previous, worst.Current, (worst.Ratio-1)*100)
	return 1
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovload:", err)
	os.Exit(1)
}
