// Command ovbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ovbench                 # all experiments, full-size traces
//	ovbench -exp fig5       # one experiment
//	ovbench -insns 10000    # smaller traces (faster, noisier)
//	ovbench -out results/   # also write one text file per experiment
//	ovbench -cache-dir ~/.cache/oovec   # reuse results across invocations
//
// With -cache-dir, every simulation result is persisted to the durable
// content-addressed store shared with ovsweep and ovserve: a repeated
// ovbench run (or one whose grid overlaps an earlier sweep) simulates
// only the points never measured before.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oovec"
	"oovec/internal/cli"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run (empty = all): "+strings.Join(oovec.Experiments(), ", "))
		insns = flag.Int("insns", 0, "per-benchmark instruction budget override")
		names = flag.String("bench", "", "comma-separated benchmark subset (empty = all ten)")
		out   = flag.String("out", "", "directory to write per-experiment text files")
		plot  = flag.Bool("plot", false, "render text charts instead of tables (figures only)")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	cacheF := cli.RegisterCache(flag.CommandLine)
	flag.Parse()
	common.Announce("ovbench")

	st, err := cacheF.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovbench:", err)
		os.Exit(1)
	}
	// fail flushes write-behind store saves before exiting, so even a run
	// that dies partway leaves its completed simulations warm on disk.
	fail := func(err error) {
		if st != nil {
			st.Close()
		}
		fmt.Fprintln(os.Stderr, "ovbench:", err)
		os.Exit(1)
	}
	opts := oovec.SuiteOpts{Insns: *insns, Parallelism: common.Jobs}
	if st != nil {
		opts.Store = st
	}
	if *names != "" {
		opts.Names = strings.Split(*names, ",")
	}
	suite := oovec.NewSuite(opts)

	list := oovec.Experiments()
	if *exp != "" {
		list = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}
	for _, name := range list {
		start := time.Now()
		var text string
		var err error
		if *plot {
			text, err = oovec.PlotExperiment(suite, name)
			if err != nil && *exp == "" {
				continue // tables have no chart form; skip in -plot all mode
			}
		} else {
			text, err = oovec.RunExperiment(suite, name)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, time.Since(start).Seconds(), text)
		if *out != "" {
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fail(err)
			}
		}
	}
	// Flush write-behind saves so the next invocation starts warm.
	if st != nil {
		st.Close()
	}
}
