// Command ovtrace generates, inspects and converts benchmark traces.
//
// Usage:
//
//	ovtrace -list                        # list the ten benchmarks
//	ovtrace -bench trfd -stats           # Table 2/3 statistics of one trace
//	ovtrace -bench trfd -o trfd.ovtr     # serialise a trace
//	ovtrace -bench trfd,bdna -o out/ -j 2  # several benchmarks, generated in parallel
//	ovtrace -i trfd.ovtr -stats          # statistics of a trace file
//	ovtrace -bench swm256 -dump -n 40    # disassemble the first 40 instructions
//
// With a comma-separated -bench list, generation fans across -j workers and
// -o names a directory receiving one <name>.ovtr per benchmark; output
// order follows the list regardless of worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"oovec"
	"oovec/internal/cli"
	"oovec/internal/engine"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list benchmark presets")
		bench = flag.String("bench", "", "benchmark(s) to generate (comma-separated)")
		in    = flag.String("i", "", "read a serialised trace file")
		out   = flag.String("o", "", "write the trace to a file (a directory with several benchmarks)")
		stats = flag.Bool("stats", false, "print Table 2/3 statistics")
		dump  = flag.Bool("dump", false, "disassemble instructions")
		n     = flag.Int("n", 32, "instructions to dump")
		insns = flag.Int("insns", 0, "instruction budget override")
	)
	common := cli.RegisterCommon(flag.CommandLine)
	flag.Parse()
	common.Announce("ovtrace")

	if *list {
		fmt.Printf("%-8s %-8s %10s %10s %6s %7s  features\n",
			"name", "suite", "scalar(M)", "vector(M)", "avgVL", "spill%")
		for _, name := range oovec.Benchmarks() {
			p, _ := oovec.BenchmarkPresetByName(name)
			feat := ""
			if p.InterIterDep {
				feat += " inter-iter-dep"
			}
			if p.HugeBasicBlocks {
				feat += " huge-blocks"
			}
			if p.GatherFrac > 0 {
				feat += " gathers"
			}
			fmt.Printf("%-8s %-8s %10.1f %10.1f %6d %7.0f %s\n",
				name, p.Suite, p.PaperScalarM, p.PaperVectorM, p.AvgVL,
				p.SpillTrafficPct, feat)
		}
		return
	}

	traces, err := load(*bench, *in, *insns, common.Jobs)
	if err != nil {
		fatal(err)
	}

	multi := len(traces) > 1
	for _, tr := range traces {
		if *stats {
			s := tr.ComputeStats()
			fmt.Printf("%-24s %s (%s)\n", "program:", tr.Name, tr.Suite)
			fmt.Printf("%-24s %d\n", "instructions:", tr.Len())
			fmt.Printf("%-24s %d\n", "scalar instructions:", s.ScalarInsns)
			fmt.Printf("%-24s %d\n", "vector instructions:", s.VectorInsns)
			fmt.Printf("%-24s %d\n", "vector operations:", s.VectorOps)
			fmt.Printf("%-24s %.1f%%\n", "vectorization:", s.PctVectorization())
			fmt.Printf("%-24s %.1f\n", "average vector length:", s.AvgVL())
			fmt.Printf("%-24s %d / %d\n", "load/store elements:", s.LoadOps, s.StoreOps)
			fmt.Printf("%-24s %d / %d\n", "spill load/store:", s.SpillLoadOps, s.SpillStoreOps)
			fmt.Printf("%-24s %.1f%%\n", "spill traffic:", s.SpillTrafficPct())
			fmt.Printf("%-24s %d\n", "branches:", s.Branches)
			if multi {
				fmt.Println()
			}
		}

		if *dump {
			limit := *n
			if limit > tr.Len() {
				limit = tr.Len()
			}
			for i := 0; i < limit; i++ {
				fmt.Printf("%6d  %s\n", i, tr.At(i).String())
			}
		}

		if *out != "" {
			path := *out
			if multi {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				path = filepath.Join(*out, tr.Name+".ovtr")
			}
			// cli.WriteFile reports Sync/Close errors: a full disk must not
			// leave a silently truncated trace behind an exit 0.
			err := cli.WriteFile(path, func(w io.Writer) error {
				return oovec.WriteTrace(w, tr)
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d instructions)\n", path, tr.Len())
		}
	}
}

// load resolves the input traces: a trace file, or one or more generated
// benchmarks. Several benchmarks generate in parallel across -j workers,
// returned in list order so downstream output is deterministic.
func load(bench, in string, insns, jobs int) ([]*oovec.Trace, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := oovec.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		return []*oovec.Trace{tr}, nil
	case bench != "":
		names := strings.Split(bench, ",")
		presets := make([]oovec.BenchmarkPreset, len(names))
		for i, name := range names {
			p, ok := oovec.BenchmarkPresetByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q", strings.TrimSpace(name))
			}
			if insns > 0 {
				p.Insns = insns
			}
			presets[i] = p
		}
		traces := make([]*oovec.Trace, len(presets))
		engine.Map(jobs, len(presets), func(i int) {
			traces[i] = oovec.GeneratePreset(presets[i])
		})
		return traces, nil
	}
	return nil, fmt.Errorf("nothing to do: pass -list, -bench or -i (see -help)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovtrace:", err)
	os.Exit(1)
}
