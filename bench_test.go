package oovec

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (Tables 1-3, Figures 3-9 and 11-13), each reporting its
// headline quantity as a custom metric, plus ablation benchmarks for the
// design decisions called out in DESIGN.md and raw simulator-throughput
// benchmarks.
//
// Benchmarks run on reduced traces (benchInsns instructions per program) so
// `go test -bench=.` completes quickly; `cmd/ovbench` regenerates the
// full-scale tables.

import (
	"testing"

	"oovec/internal/experiments"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/rob"
	"oovec/internal/tgen"
)

// benchInsns is the per-program trace size used by the table/figure
// benchmarks.
const benchInsns = 8000

func benchSuite() *Suite {
	return NewSuite(SuiteOpts{Insns: benchInsns})
}

func BenchmarkTable1Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2OperationCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Table2(s)
		var minVect float64 = 100
		for _, row := range res.Rows {
			if row.PctVect < minVect {
				minVect = row.PctVect
			}
		}
		b.ReportMetric(minVect, "min-%vect")
	}
}

func BenchmarkTable3SpillCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Table3(s)
		for _, row := range res.Rows {
			if row.Name == "bdna" {
				b.ReportMetric(row.SpillTrafficPct, "bdna-spill-%")
			}
		}
	}
}

func BenchmarkFig3StateBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOpts{Insns: benchInsns, Names: []string{"hydro2d", "dyfesm"}})
		res := experiments.Fig3(s)
		// Headline: fraction of fully-idle cycles at latency 100 (dyfesm).
		bd := res.Breakdown["dyfesm"][100]
		b.ReportMetric(100*float64(bd.Idle())/float64(bd.Total()), "dyfesm-idle-%")
	}
}

func BenchmarkFig4PortIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig4(s)
		var max float64
		for _, name := range res.Names {
			if v := res.IdlePct[name][70]; v > max {
				max = v
			}
		}
		b.ReportMetric(max, "max-idle-%-lat70")
	}
}

func BenchmarkFig5Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig5(s)
		lo, hi := 100.0, 0.0
		for _, name := range res.Names {
			v := res.Speedup16[name][16]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		b.ReportMetric(lo, "min-speedup-16regs")
		b.ReportMetric(hi, "max-speedup-16regs")
	}
}

func BenchmarkFig6PortIdleCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig6(s)
		under20 := 0
		for _, name := range res.Names {
			if res.OOOIdle[name] < 20 {
				under20++
			}
		}
		// Paper: "for all but two of the benchmarks, the memory port is
		// idle less than 20% of the time".
		b.ReportMetric(float64(under20), "programs-under-20%-idle")
	}
}

func BenchmarkFig7StateCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig7(s)
		var worst float64
		for _, name := range res.Names {
			frac := 100 * float64(res.OOO[name].Idle()) / float64(res.OOO[name].Total())
			if frac > worst {
				worst = frac
			}
		}
		b.ReportMetric(worst, "max-OOO-fullidle-%")
	}
}

func BenchmarkFig8LatencyTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig8(s)
		var worst float64
		for _, name := range res.Names {
			if d := res.Degradation(name); d > worst {
				worst = d
			}
		}
		b.ReportMetric(100*worst, "max-degr-%-lat1to100")
	}
}

func BenchmarkFig9CommitModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig9(s)
		b.ReportMetric(100*res.Degradation16("trfd"), "trfd-late-cost-%")
		b.ReportMetric(100*res.Degradation16("swm256"), "swm256-late-cost-%")
	}
}

func BenchmarkFig11SLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig11(s)
		b.ReportMetric(res.Speedup["trfd"][32], "trfd-SLE-speedup")
	}
}

func BenchmarkFig12SLEVLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig12(s)
		var sum float64
		for _, name := range res.Names {
			sum += res.Speedup[name][32]
		}
		b.ReportMetric(sum/float64(len(res.Names)), "mean-SLE+VLE-speedup-32regs")
	}
}

func BenchmarkFig13Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := experiments.Fig13(s)
		var sum float64
		for _, name := range res.Names {
			sum += 100 * (1 - 1/res.SLEVLE[name])
		}
		b.ReportMetric(sum/float64(len(res.Names)), "mean-traffic-cut-%")
	}
}

// ---------------------------------------------------------------- ablations

// ablationTrace is a memory-intensive benchmark for the ablation studies.
func ablationTrace() *Trace {
	p, _ := tgen.PresetByName("bdna")
	p.Insns = benchInsns
	return tgen.Generate(p)
}

func BenchmarkAblationLoadChaining(b *testing.B) {
	// trfd: its loop-carried recurrence has a load feeding a compute chain,
	// so load→FU chaining shortens the one path out-of-order issue cannot
	// hide. bdna-style independent codes see ~nothing — out-of-order issue
	// subsumes load chaining there.
	p, _ := tgen.PresetByName("trfd")
	p.Insns = benchInsns
	tr := tgen.Generate(p)
	for i := 0; i < b.N; i++ {
		base := ooosim.DefaultConfig()
		chained := base
		chained.ChainLoads = true
		c0 := ooosim.Run(tr, base).Stats.Cycles
		c1 := ooosim.Run(tr, chained).Stats.Cycles
		// How much would chaining loads into FUs have bought on top of
		// out-of-order issue? (The paper keeps loads unchained.)
		b.ReportMetric(float64(c0)/float64(c1), "speedup-if-loads-chained")
	}
}

func BenchmarkAblationStoreTags(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		cfg := ooosim.DefaultConfig()
		cfg.Commit = rob.PolicyLate
		cfg.LoadElim = ooosim.ElimSLEVLE
		with := ooosim.Run(tr, cfg).Stats
		cfg.NoStoreTags = true
		without := ooosim.Run(tr, cfg).Stats
		b.ReportMetric(float64(with.EliminatedLoads), "elim-with-store-tags")
		b.ReportMetric(float64(without.EliminatedLoads), "elim-without-store-tags")
	}
}

func BenchmarkAblationInvalidation(b *testing.B) {
	// Sum across programs with non-unit strides, where stores partially
	// overlap tagged regions: the conservative policy (kill on any overlap)
	// forgoes the eliminations the unsafe exact-match policy would keep.
	var traces []*Trace
	for _, name := range []string{"arc2d", "nasa7", "bdna"} {
		p, _ := tgen.PresetByName(name)
		p.Insns = benchInsns
		traces = append(traces, tgen.Generate(p))
	}
	for i := 0; i < b.N; i++ {
		var extra int64
		for _, tr := range traces {
			cfg := ooosim.DefaultConfig()
			cfg.Commit = rob.PolicyLate
			cfg.LoadElim = ooosim.ElimSLEVLE
			conservative := ooosim.Run(tr, cfg).Stats
			cfg.ExactInvalidation = true
			unsafe := ooosim.Run(tr, cfg).Stats
			extra += unsafe.EliminatedLoads - conservative.EliminatedLoads
		}
		// The (incorrect) extra eliminations exact-only invalidation keeps.
		b.ReportMetric(float64(extra), "unsafe-extra-eliminations")
	}
}

func BenchmarkAblationPorts(b *testing.B) {
	// swm256: long vectors with deep cross-iteration overlap — the workload
	// where renamed registers land on conflicting banks most often.
	p, _ := tgen.PresetByName("swm256")
	p.Insns = benchInsns
	tr := tgen.Generate(p)
	for i := 0; i < b.N; i++ {
		flat := ooosim.DefaultConfig()
		banked := flat
		banked.BankedPorts = true
		cf := ooosim.Run(tr, flat).Stats.Cycles
		cb := ooosim.Run(tr, banked).Stats.Cycles
		// §2.2: "The original banking scheme of the register file can not
		// be kept because renaming shuffles all the compiler scheduled
		// read/write ports". The slowdown quantifies it.
		b.ReportMetric(float64(cb)/float64(cf), "banked-ports-slowdown")
	}
}

// BenchmarkExtensionSpillStoreElision measures the paper's §6 future-work
// idea ("relaxing compatibility could lead to removing some spill stores"):
// dead-spill-store elision on the spill-heaviest benchmark.
func BenchmarkExtensionSpillStoreElision(b *testing.B) {
	tr := ablationTrace() // bdna: 69% spill traffic
	for i := 0; i < b.N; i++ {
		base := ooosim.DefaultConfig()
		base.PhysVRegs = 32
		baseRun := ooosim.Run(tr, base).Stats
		cfg := base
		cfg.ElideDeadSpillStores = true
		run := ooosim.Run(tr, cfg).Stats
		b.ReportMetric(float64(run.ElidedStores), "elided-stores")
		b.ReportMetric(float64(baseRun.MemRequests)/float64(run.MemRequests), "traffic-reduction")
	}
}

// ---------------------------------------------------------------- engine

// suiteWork drives a representative slice of the experiment workload: two
// register-sweep figures (150 distinct OOOVA runs + 10 REF runs — Fig5 and
// Fig9 share their early-commit grid through the suite's run cache).
func suiteWork(b *testing.B, parallelism int) {
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOpts{Insns: benchInsns, Parallelism: parallelism})
		res := experiments.Fig5(s)
		res9 := experiments.Fig9(s)
		if len(res.Names) == 0 || len(res9.Names) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkSuiteSerial is the single-worker baseline for the experiment
// engine; compare with BenchmarkSuiteParallel for the fan-out speedup.
func BenchmarkSuiteSerial(b *testing.B) { suiteWork(b, 1) }

// BenchmarkSuiteParallel runs the same workload with one worker per core.
// Output is byte-identical to serial (see experiments.TestParallelOutputIdentical).
func BenchmarkSuiteParallel(b *testing.B) { suiteWork(b, 0) }

// ---------------------------------------------------------------- raw speed

func BenchmarkSimulatorRefThroughput(b *testing.B) {
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = 20000
	tr := tgen.Generate(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refsim.Run(tr, refsim.DefaultConfig())
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsns/s")
}

// BenchmarkSimulatorRefReuse measures the steady-state throughput and
// bytes/op of a reused reference Machine; compare with
// BenchmarkSimulatorRefThroughput for the per-run construction cost.
func BenchmarkSimulatorRefReuse(b *testing.B) {
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = 20000
	tr := tgen.Generate(p)
	m := refsim.NewMachine(refsim.DefaultConfig())
	m.Run(tr) // reach steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(tr)
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsns/s")
}

func BenchmarkSimulatorOOOThroughput(b *testing.B) {
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = 20000
	tr := tgen.Generate(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ooosim.Run(tr, ooosim.DefaultConfig())
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsns/s")
}

// BenchmarkSimulatorOOOReuse measures the steady-state throughput and
// bytes/op of a reused Machine (explicit Reset instead of per-run
// construction) — the pooled path the experiment drivers and sweep grids
// run on.
func BenchmarkSimulatorOOOReuse(b *testing.B) {
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = 20000
	tr := tgen.Generate(p)
	m := ooosim.NewMachine(ooosim.DefaultConfig())
	m.Run(tr) // reach steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(tr)
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsns/s")
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := tgen.PresetByName("swm256")
	p.Insns = 20000
	for i := 0; i < b.N; i++ {
		tgen.Generate(p)
	}
}
