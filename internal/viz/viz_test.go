package viz

import (
	"strings"
	"testing"
)

func TestHBarScalesToMax(t *testing.T) {
	out := HBar("idle", []BarRow{
		{Label: "swm256", Value: 50},
		{Label: "trfd", Value: 25},
	}, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "idle" {
		t.Errorf("title line = %q", lines[0])
	}
	full := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	if full != 40 {
		t.Errorf("max bar = %d chars, want 40", full)
	}
	if half != 20 {
		t.Errorf("half bar = %d chars, want 20", half)
	}
	if !strings.Contains(lines[1], "50.00") {
		t.Error("value annotation missing")
	}
}

func TestHBarZeroValues(t *testing.T) {
	out := HBar("", []BarRow{{Label: "a", Value: 0}, {Label: "b", Value: 0}}, 20)
	if strings.Contains(out, "#") {
		t.Error("zero values should draw no bars")
	}
}

func TestGroupedAlignsSeries(t *testing.T) {
	out := Grouped("fig6", []string{"swm256", "trfd"}, []Series{
		{Name: "REF", Values: []float64{50, 53}},
		{Name: "OOOVA", Values: []float64{8, 33}},
	}, 30)
	if !strings.Contains(out, "REF") || !strings.Contains(out, "OOOVA") {
		t.Error("series names missing")
	}
	// Each label contributes two bar rows.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+4 {
		t.Errorf("lines = %d, want 5", len(lines))
	}
	// Different glyphs per series.
	if strings.Count(out, "#") == 0 || strings.Count(out, "o") == 0 {
		t.Error("expected distinct glyphs for the two series")
	}
}

func TestGroupedShortSeriesTolerated(t *testing.T) {
	out := Grouped("", []string{"a", "b"}, []Series{
		{Name: "s", Values: []float64{1}}, // missing second value
	}, 10)
	if !strings.Contains(out, "b") {
		t.Error("label with missing value dropped")
	}
}

func TestLinesContainsLegendAndAxis(t *testing.T) {
	out := Lines("fig5", []float64{9, 16, 32, 64}, []Series{
		{Name: "early", Values: []float64{1.2, 1.8, 1.9, 1.9}},
		{Name: "late", Values: []float64{0.7, 1.6, 1.8, 1.8}},
	}, 40, 10)
	if !strings.Contains(out, "legend:") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "early") || !strings.Contains(out, "late") {
		t.Error("series names missing from legend")
	}
	if !strings.Contains(out, "+----") {
		t.Error("x axis missing")
	}
	// Highest value appears near the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "1.90") {
		t.Errorf("top scale = %q, want 1.90", lines[1])
	}
}

func TestLinesFlatSeries(t *testing.T) {
	// Constant series must not divide by zero.
	out := Lines("", []float64{1, 2}, []Series{{Name: "c", Values: []float64{5, 5}}}, 20, 5)
	if !strings.Contains(out, "c") {
		t.Error("flat series lost")
	}
}

func TestLinesSinglePoint(t *testing.T) {
	out := Lines("", []float64{10}, []Series{{Name: "p", Values: []float64{3}}}, 20, 5)
	if !strings.Contains(out, "#") {
		t.Error("single point not plotted")
	}
}

func TestStackedProportions(t *testing.T) {
	out := Stacked("fig7", []string{"ref", "ooo"},
		[]string{"idle", "busy"},
		[][]float64{{75, 25}, {25, 75}}, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	bar := func(line string) string {
		return line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	}
	// ref row: 30 idle glyphs + 10 busy glyphs.
	if got := strings.Count(bar(lines[1]), "#"); got != 30 {
		t.Errorf("ref idle share = %d chars, want 30", got)
	}
	if got := strings.Count(bar(lines[2]), "o"); got != 30 {
		t.Errorf("ooo busy share = %d chars, want 30", got)
	}
	if !strings.Contains(lines[len(lines)-1], "idle") {
		t.Error("legend missing")
	}
}

func TestStackedRoundingNeverOverflows(t *testing.T) {
	// Many tiny parts whose rounded widths could exceed the bar.
	parts := make([]string, 8)
	vals := make([]float64, 8)
	for i := range parts {
		parts[i] = "p"
		vals[i] = 1
	}
	out := Stacked("", []string{"x"}, parts, [][]float64{vals}, 21)
	line := strings.Split(out, "\n")[0]
	inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	if len(inner) != 21 {
		t.Errorf("bar width = %d, want exactly 21", len(inner))
	}
}

func TestDefaultWidths(t *testing.T) {
	if !strings.Contains(HBar("t", []BarRow{{Label: "a", Value: 1}}, 0), "#") {
		t.Error("default width broken")
	}
	if len(Lines("t", []float64{0, 1}, []Series{{Name: "s", Values: []float64{0, 1}}}, 0, 0)) == 0 {
		t.Error("default line dims broken")
	}
}
