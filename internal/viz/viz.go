// Package viz renders text charts for the experiment results: horizontal
// bar charts (Figures 4, 6, 11–13), grouped bars, multi-series line charts
// (Figures 5, 8, 9) and stacked composition bars (Figures 3, 7). Pure
// text, deterministic, no dependencies — suitable for terminals, logs and
// golden tests.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series.
type Series struct {
	// Name labels the series in legends.
	Name string
	// Values are the data points (aligned with the chart's labels or xs).
	Values []float64
	// Glyph is the character used to draw the series (optional; picked
	// from a default palette when zero).
	Glyph rune
}

var defaultGlyphs = []rune{'#', 'o', '+', 'x', '*', '@', '%', '~'}

func glyphFor(s Series, i int) rune {
	if s.Glyph != 0 {
		return s.Glyph
	}
	return defaultGlyphs[i%len(defaultGlyphs)]
}

// BarRow is one labelled value of a bar chart.
type BarRow struct {
	Label string
	Value float64
}

// HBar renders a horizontal bar chart. Bars are scaled to `width`
// characters at the maximum value.
func HBar(title string, rows []BarRow, width int) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for _, r := range rows {
		n := 0
		if max > 0 {
			n = int(math.Round(r.Value / max * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%-*s %8.2f\n", labelW, r.Label, width,
			strings.Repeat("#", n), r.Value)
	}
	return b.String()
}

// Occupancy renders a structure-occupancy histogram whose n buckets
// uniformly cover [0, capacity]: bucket i is labelled with its fraction
// i/(n-1) of capacity and drawn as a bar of its sample count. The counts
// come straight from a metrics.OccHist — the per-instruction ROB and
// instruction-queue occupancy samples of a simulation run.
func Occupancy(title string, counts []int64, width int) string {
	rows := make([]BarRow, len(counts))
	den := len(counts) - 1
	if den < 1 {
		den = 1
	}
	for i, c := range counts {
		rows[i] = BarRow{Label: fmt.Sprintf("%d/%d", i, den), Value: float64(c)}
	}
	return HBar(title, rows, width)
}

// Grouped renders one bar per (label, series) pair, grouping series under
// each label — the Figure 6 "REF vs OOOVA" layout.
func Grouped(title string, labels []string, series []Series, width int) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for li, l := range labels {
		for si, s := range series {
			v := 0.0
			if li < len(s.Values) {
				v = s.Values[li]
			}
			n := 0
			if max > 0 {
				n = int(math.Round(v / max * float64(width)))
			}
			lbl := ""
			if si == 0 {
				lbl = l
			}
			fmt.Fprintf(&b, "%-*s %-*s |%-*s %8.2f\n", labelW, lbl, nameW, s.Name,
				width, strings.Repeat(string(glyphFor(s, si)), n), v)
		}
	}
	return b.String()
}

// Lines renders series over shared x positions on a w×h character grid,
// with a y-axis scale and a legend — the Figure 5/8/9 curve layout.
func Lines(title string, xs []float64, series []Series, w, h int) string {
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	xlo, xhi := xs[0], xs[len(xs)-1]
	if xhi == xlo {
		xhi = xlo + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	plot := func(x, y float64, g rune) {
		c := int(math.Round((x - xlo) / (xhi - xlo) * float64(w-1)))
		r := int(math.Round((hi - y) / (hi - lo) * float64(h-1)))
		if c >= 0 && c < w && r >= 0 && r < h {
			grid[r][c] = g
		}
	}
	for si, s := range series {
		g := glyphFor(s, si)
		// Linear interpolation between consecutive points for continuity.
		for i := 0; i+1 < len(xs) && i+1 < len(s.Values); i++ {
			steps := w / max(1, len(xs)-1)
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				plot(xs[i]+f*(xs[i+1]-xs[i]), s.Values[i]+f*(s.Values[i+1]-s.Values[i]), g)
			}
		}
		if len(s.Values) == 1 {
			plot(xs[0], s.Values[0], g)
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for r := 0; r < h; r++ {
		y := hi - (hi-lo)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", y, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-*g%*g\n", "", w/2, xlo, w-w/2, xhi)
	b.WriteString("legend:")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c=%s", glyphFor(s, si), s.Name)
	}
	b.WriteString("\n")
	return b.String()
}

// Stacked renders one composition bar per label: each part occupies a share
// of the bar proportional to its value — the Figure 3/7 stacked-state
// layout. parts names the components; data[label][part] are the values.
func Stacked(title string, labels []string, parts []string, data [][]float64, width int) string {
	if width <= 0 {
		width = 60
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for li, l := range labels {
		var total float64
		for _, v := range data[li] {
			total += v
		}
		fmt.Fprintf(&b, "%-*s |", labelW, l)
		used := 0
		for pi, v := range data[li] {
			n := 0
			if total > 0 {
				n = int(math.Round(v / total * float64(width)))
			}
			if used+n > width {
				n = width - used
			}
			b.WriteString(strings.Repeat(string(defaultGlyphs[pi%len(defaultGlyphs)]), n))
			used += n
		}
		b.WriteString(strings.Repeat(" ", width-used))
		fmt.Fprintf(&b, "| total %.0f\n", total)
	}
	b.WriteString("legend:")
	for pi, p := range parts {
		fmt.Fprintf(&b, "  %c=%s", defaultGlyphs[pi%len(defaultGlyphs)], p)
	}
	b.WriteString("\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
