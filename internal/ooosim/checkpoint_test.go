package ooosim

import (
	"context"
	"reflect"
	"testing"

	"oovec/internal/rob"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

func checkpointTestTrace(t *testing.T, name string, insns int) *trace.Trace {
	t.Helper()
	p, ok := tgen.PresetByName(name)
	if !ok {
		t.Fatalf("no preset %q", name)
	}
	p.Insns = insns
	return tgen.Generate(p)
}

func checkpointConfigs() map[string]Config {
	late := DefaultConfig()
	late.Commit = rob.PolicyLate
	elim := DefaultConfig()
	elim.LoadElim = ElimSLEVLE
	banked := DefaultConfig()
	banked.BankedPorts = true
	elide := DefaultConfig()
	elide.LoadElim = ElimSLEVLE
	elide.ElideDeadSpillStores = true
	records := DefaultConfig()
	records.CollectRecords = true
	return map[string]Config{
		"default": DefaultConfig(),
		"late":    late,
		"elim":    elim,
		"banked":  banked,
		"elide":   elide,
		"records": records,
	}
}

// TestRunCheckpointedMatchesRun asserts that the checkpointable run path
// with no cancellation and no resume is observationally identical to Run.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	tr := checkpointTestTrace(t, "hydro2d", 3000)
	for name, cfg := range checkpointConfigs() {
		want := Run(tr, cfg).Stats
		got, ck, err := NewMachine(cfg).RunCheckpointed(tr, RunOpts{Ctx: context.Background()})
		if err != nil || ck != nil {
			t.Fatalf("%s: unexpected (ck=%v, err=%v)", name, ck != nil, err)
		}
		if !reflect.DeepEqual(got.Stats, want) {
			t.Errorf("%s: RunCheckpointed stats differ from Run\ngot:  %+v\nwant: %+v",
				name, got.Stats, want)
		}
	}
}

// TestCheckpointResumeDeterminism cancels a run every few hundred
// instructions, serialises the checkpoint through gob, restores it into a
// brand-new machine and continues — repeatedly, until the trace finishes —
// and asserts the final measurements are identical to an uninterrupted run.
// This is the correctness contract the kill-and-resume server flow depends
// on: a checkpoint captures ALL deterministic machine state.
func TestCheckpointResumeDeterminism(t *testing.T) {
	tr := checkpointTestTrace(t, "bdna", 4000)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	const every = 700

	for name, cfg := range checkpointConfigs() {
		want := Run(tr, cfg)

		var ck *Checkpoint
		var got *Result
		segments := 0
		for {
			// A fresh machine per segment proves the checkpoint carries the
			// state, not the machine instance.
			mm := NewMachine(cfg)
			var err error
			var stop *Checkpoint
			got, stop, err = mm.RunCheckpointed(tr, RunOpts{
				Ctx: canceled, CheckEvery: every, Resume: ck,
			})
			if stop == nil {
				if err != nil {
					t.Fatalf("%s: completed segment returned error %v", name, err)
				}
				break
			}
			if err == nil {
				t.Fatalf("%s: canceled segment returned nil error", name)
			}
			if stop.NextInsn <= segments*every {
				t.Fatalf("%s: segment %d made no progress (stopped at %d)",
					name, segments, stop.NextInsn)
			}
			// Round-trip through the wire format, as the store does.
			b, err := stop.Encode()
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			ck, err = DecodeCheckpoint(b)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			segments++
			if segments > tr.Len()/every+2 {
				t.Fatalf("%s: too many segments (%d), resume not progressing", name, segments)
			}
		}
		if segments < 2 {
			t.Fatalf("%s: only %d segments, test exercised no resume", name, segments)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Errorf("%s: resumed stats differ from uninterrupted run\ngot:  %+v\nwant: %+v",
				name, got.Stats, want.Stats)
		}
		if cfg.CollectRecords && !reflect.DeepEqual(got.Records, want.Records) {
			t.Errorf("%s: resumed records differ from uninterrupted run", name)
		}
	}
}

// TestPeriodicCheckpointResume runs uninterrupted while collecting periodic
// checkpoints, then resumes from each one on a fresh machine and asserts
// every resumed result matches — the crash-recovery path, where the last
// periodic checkpoint (not a cancellation checkpoint) is all that survives.
func TestPeriodicCheckpointResume(t *testing.T) {
	tr := checkpointTestTrace(t, "trfd", 3000)
	cfg := DefaultConfig()
	cfg.LoadElim = ElimSLEVLE
	want := Run(tr, cfg).Stats

	var cks []*Checkpoint
	res, _, err := NewMachine(cfg).RunCheckpointed(tr, RunOpts{
		CheckpointEvery: 800,
		OnCheckpoint: func(ck *Checkpoint) {
			b, err := ck.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, err := DecodeCheckpoint(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			cks = append(cks, dec)
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(res.Stats, want) {
		t.Fatalf("checkpointing run differs from plain run")
	}
	if len(cks) < 3 {
		t.Fatalf("expected >= 3 periodic checkpoints, got %d", len(cks))
	}
	for _, ck := range cks {
		got, _, err := NewMachine(cfg).RunCheckpointed(tr, RunOpts{Resume: ck})
		if err != nil {
			t.Fatalf("resume from %d: %v", ck.NextInsn, err)
		}
		if !reflect.DeepEqual(got.Stats, want) {
			t.Errorf("resume from instruction %d: stats differ from uninterrupted run", ck.NextInsn)
		}
	}
}

// TestCheckpointConfigMismatch asserts restore fails loudly rather than
// silently corrupting a run when the machine shape does not match.
func TestCheckpointConfigMismatch(t *testing.T) {
	tr := checkpointTestTrace(t, "trfd", 2000)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	_, ck, err := NewMachine(DefaultConfig()).RunCheckpointed(tr, RunOpts{Ctx: canceled, CheckEvery: 500})
	if ck == nil || err == nil {
		t.Fatalf("expected a cancellation checkpoint")
	}
	big := DefaultConfig()
	big.PhysVRegs = 32
	if _, _, err := NewMachine(big).RunCheckpointed(tr, RunOpts{Resume: ck}); err == nil {
		t.Errorf("resume under a different register-file size succeeded; want error")
	}
	banked := DefaultConfig()
	banked.BankedPorts = true
	if _, _, err := NewMachine(banked).RunCheckpointed(tr, RunOpts{Resume: ck}); err == nil {
		t.Errorf("resume under a different port organisation succeeded; want error")
	}
	short := *tr
	short.Insns = short.Insns[:1000]
	if _, _, err := NewMachine(DefaultConfig()).RunCheckpointed(&short, RunOpts{Resume: ck}); err == nil {
		t.Errorf("resume on a different trace succeeded; want error")
	}
}
