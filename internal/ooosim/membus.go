package ooosim

import (
	"oovec/internal/sched"
)

// memScheduler arbitrates the single shared address bus among memory
// instructions in *ready order* rather than program order.
//
// The simulator processes the trace in program order, but a store whose data
// arrives late must not reserve bus cycles that a younger, already-ready
// load could use: the real machine's memory queue issues whichever
// disambiguated instruction is ready first. Loads are placed immediately
// (their consumers need completion times at once); stores are held pending
// and placed lazily — whenever a load with a later ready time is placed,
// when a conflicting (overlapping) access needs the store's bus occupancy,
// when precise-trap commit needs its completion, or at the end of the run.
// Pending stores are always placed in ready order, which is exactly the
// oldest-ready-first arbitration of the hardware.
type memScheduler struct {
	bus *sched.Gap

	pend []pendStore

	entries [memScanWindow]memEntry
	n       int
	scanWin int //ovlint:config structural size, fixed at construction

	requests  int64
	conflicts int64
	lastEnd   int64
}

// memScanWindow bounds the disambiguation scan, mirroring the queue's
// bounded capacity. Accesses further apart are serialised by the bus anyway.
const memScanWindow = 256

type pendStore struct {
	ready    int64
	occ      int64 // bus occupancy (startup + one slot per element)
	req      int64 // element requests (counted at placement for elidables)
	entry    int   // index into the entries ring (absolute)
	placed   bool
	elidable bool // spill store awaiting possible dead-store elision
	canceled bool // elided: never issues requests
}

// memEntry is the disambiguation record of one memory access.
type memEntry struct {
	rstart, rend uint64
	isStore      bool
	busEnd       int64
	pendIdx      int // >= 0 while the store is still pending
}

func newMemScheduler(queueSlots int) *memScheduler {
	w := queueSlots
	if w > memScanWindow {
		w = memScanWindow
	}
	if w <= 0 {
		w = 16
	}
	return &memScheduler{bus: sched.NewGap(), scanWin: w}
}

// reserve sizes the bus interval list and the pending-store list so
// steady-state appends never reallocate; the bounds derive from the
// trace's memory-instruction and store counts.
func (s *memScheduler) reserve(busIv, stores int) {
	s.bus.Reserve(busIv)
	if cap(s.pend) < stores {
		grown := make([]pendStore, len(s.pend), stores)
		copy(grown, s.pend)
		s.pend = grown
	}
}

// reset restores the empty-scheduler state, reusing the pending-store
// storage.
func (s *memScheduler) reset() {
	s.bus.Reset()
	s.pend = s.pend[:0]
	s.n = 0
	s.requests, s.conflicts, s.lastEnd = 0, 0, 0
}

// note tracks the latest bus activity for end-of-run accounting.
func (s *memScheduler) note(end int64) {
	if end > s.lastEnd {
		s.lastEnd = end
	}
}

// flush places every pending store whose ready time is at or before
// threshold, in ready order (ties by age). Elidable spill stores are NOT
// flushed here: they wait in the store buffer for possible dead-store
// elision and are placed only on overlap demand or at end of run.
func (s *memScheduler) flush(threshold int64) {
	for {
		best := -1
		for i := range s.pend {
			p := &s.pend[i]
			if p.placed || p.canceled || p.elidable || p.ready > threshold {
				continue
			}
			if best < 0 || p.ready < s.pend[best].ready {
				best = i
			}
		}
		if best < 0 {
			return
		}
		s.place(best)
	}
}

// place books the bus for pending store i.
func (s *memScheduler) place(i int) {
	p := &s.pend[i]
	if p.placed || p.canceled {
		return
	}
	start := s.bus.Allocate(p.ready, p.occ)
	p.placed = true
	s.requests += p.req
	if p.entry >= s.n-memScanWindow {
		// The disambiguation ring may have reused the slot; only a live
		// entry is updated.
		e := &s.entries[p.entry%memScanWindow]
		e.busEnd = start + p.occ
		e.pendIdx = -1
	}
	s.note(start + p.occ)
}

// conflictConstraint returns the earliest cycle an access over [rstart,
// rend] may issue, given earlier overlapping accesses (at least one of the
// pair being a store). Pending overlapping stores are forced to place.
func (s *memScheduler) conflictConstraint(rstart, rend uint64, isStore bool) int64 {
	var at int64
	lo := s.n - s.scanWin
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < s.n; i++ {
		e := &s.entries[i%memScanWindow]
		if !(isStore || e.isStore) {
			continue
		}
		if !(e.rstart <= rend && rstart <= e.rend) {
			continue
		}
		if e.pendIdx >= 0 && !s.pend[e.pendIdx].placed {
			// The older conflicting store must issue first; place every
			// store ready up to it, then it, preserving ready order.
			// (Elidable stores skip the flush, so place them directly —
			// an overlapping access proves the spilled value is live.)
			idx := e.pendIdx
			s.flush(s.pend[idx].ready)
			s.place(idx)
		}
		if e.busEnd > at {
			at = e.busEnd
		}
	}
	if at > 0 {
		s.conflicts++
	}
	return at
}

// record appends a disambiguation entry and returns its absolute index.
func (s *memScheduler) record(rstart, rend uint64, isStore bool, busEnd int64, pendIdx int) int {
	s.entries[s.n%memScanWindow] = memEntry{
		rstart: rstart, rend: rend, isStore: isStore, busEnd: busEnd, pendIdx: pendIdx,
	}
	s.n++
	return s.n - 1
}

// placeLoad books the bus for a load that is ready at `ready`: pending
// stores that became ready earlier issue first, then the load takes the
// earliest hole. occ is the bus occupancy (startup plus one slot per
// element); req is the number of element requests issued.
func (s *memScheduler) placeLoad(ready, occ, req int64, rstart, rend uint64) (busStart int64) {
	s.flush(ready)
	busStart = s.bus.Allocate(ready, occ)
	s.requests += req
	s.record(rstart, rend, false, busStart+occ, -1)
	s.note(busStart + occ)
	return busStart
}

// deferStore records a store whose bus occupancy will be placed lazily. It
// is used under the early-commit policy, where nothing needs the store's
// exact completion cycle immediately. Requests are counted at placement.
func (s *memScheduler) deferStore(ready, occ, req int64, rstart, rend uint64) {
	entry := s.record(rstart, rend, true, 0, len(s.pend))
	s.pend = append(s.pend, pendStore{ready: ready, occ: occ, req: req, entry: entry})
}

// deferElidableStore records a spill store held in the store buffer for
// possible dead-store elision (the paper's §6 "relaxing compatibility"
// future-work idea). It returns a handle for tryCancel.
func (s *memScheduler) deferElidableStore(ready, occ, req int64, rstart, rend uint64) int {
	entry := s.record(rstart, rend, true, 0, len(s.pend))
	s.pend = append(s.pend, pendStore{ready: ready, occ: occ, req: req,
		entry: entry, elidable: true})
	return len(s.pend) - 1
}

// tryCancel elides a pending spill store if it has not yet issued any
// requests. It returns the elided request count and whether the elision
// succeeded.
func (s *memScheduler) tryCancel(pendIdx int) (int64, bool) {
	if pendIdx < 0 || pendIdx >= len(s.pend) {
		return 0, false
	}
	p := &s.pend[pendIdx]
	if p.placed || p.canceled {
		return 0, false
	}
	p.canceled = true
	if p.entry >= s.n-memScanWindow {
		// Neutralise the disambiguation entry: a dead store orders nothing.
		e := &s.entries[p.entry%memScanWindow]
		e.rstart, e.rend = 1, 0 // empty range: overlaps nothing
		e.busEnd = 0
		e.pendIdx = -1
	}
	return p.req, true
}

// placeStoreNow books the bus for a store immediately (late commit needs
// the completion cycle for the commit calculation). Ready-order placement
// of earlier pending stores is preserved.
func (s *memScheduler) placeStoreNow(ready, occ, req int64, rstart, rend uint64) (busStart int64) {
	s.flush(ready)
	busStart = s.bus.Allocate(ready, occ)
	s.requests += req
	s.record(rstart, rend, true, busStart+occ, -1)
	s.note(busStart + occ)
	return busStart
}

// recordEliminated registers an eliminated load for disambiguation
// bookkeeping without any bus traffic.
func (s *memScheduler) recordEliminated(rstart, rend uint64, at int64) {
	s.record(rstart, rend, false, at, -1)
}

// finishAll places any still-pending stores (including surviving elidable
// ones — a spill never overwritten must still reach memory) and returns the
// cycle the last bus activity ends.
func (s *memScheduler) finishAll() int64 {
	s.flush(int64(1) << 62)
	for i := range s.pend {
		s.place(i)
	}
	return s.lastEnd
}
