package ooosim

import (
	"bytes"
	"context"
	"encoding/gob"
	"io"
	"reflect"
	"strings"
	"testing"

	"oovec/internal/isa"
	"oovec/internal/probe"
	"oovec/internal/trace"
)

// encodeStats canonicalises a RunStats for byte comparison.
func encodeStats(t *testing.T, st any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProbeDoesNotPerturbResults is the observation-only contract: a run
// with any sink attached produces RunStats byte-identical to the same run
// with no sink. The stall and occupancy aggregates are accumulated
// unconditionally, so the sink can only watch.
func TestProbeDoesNotPerturbResults(t *testing.T) {
	tr := checkpointTestTrace(t, "hydro2d", 3000)
	for name, cfg := range checkpointConfigs() {
		off := encodeStats(t, Run(tr, cfg).Stats)

		counting := cfg
		counting.Sink = &probe.Counter{}
		if got := encodeStats(t, Run(tr, counting).Stats); !bytes.Equal(got, off) {
			t.Errorf("%s: Counter sink perturbed RunStats", name)
		}

		tracing := cfg
		tracing.Sink = probe.NewKanata(io.Discard)
		if got := encodeStats(t, Run(tr, tracing).Stats); !bytes.Equal(got, off) {
			t.Errorf("%s: Kanata sink perturbed RunStats", name)
		}
	}
}

// TestProbeByteIdentityAcrossResume runs probe-on through the cancel /
// serialise / restore cycle and compares against an uninterrupted probe-off
// run: checkpoints must neither carry sink state nor lose stall/occupancy
// aggregates.
func TestProbeByteIdentityAcrossResume(t *testing.T) {
	tr := checkpointTestTrace(t, "bdna", 4000)
	cfg := DefaultConfig()
	want := encodeStats(t, Run(tr, cfg).Stats)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	probed := cfg
	probed.Sink = &probe.Counter{}
	var ck *Checkpoint
	var got *Result
	segments := 0
	for {
		var stop *Checkpoint
		var err error
		got, stop, err = NewMachine(probed).RunCheckpointed(tr, RunOpts{
			Ctx: canceled, CheckEvery: 700, Resume: ck,
		})
		if stop == nil {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		b, err := stop.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if ck, err = DecodeCheckpoint(b); err != nil {
			t.Fatal(err)
		}
		if segments++; segments > tr.Len()/700+2 {
			t.Fatal("resume not progressing")
		}
	}
	if segments < 2 {
		t.Fatalf("only %d segments, no resume exercised", segments)
	}
	if !bytes.Equal(encodeStats(t, got.Stats), want) {
		t.Error("probe-on resumed RunStats differ from probe-off uninterrupted run")
	}
}

// TestStallAttributionAccounts ties the new attribution to the aggregate
// counters that predate it: the legacy DecodeStall* fields must equal their
// breakdown counterparts, and a register-starved configuration must show
// its pressure in the vector no-phys-reg bucket.
func TestStallAttributionAccounts(t *testing.T) {
	tr := checkpointTestTrace(t, "swm256", 3000)
	cfg := DefaultConfig()
	cfg.PhysVRegs = 9 // minimum legal: heavy renaming pressure
	st := Run(tr, cfg).Stats
	if st.DecodeStallRegs != st.Stalls.NoPhysReg() {
		t.Errorf("DecodeStallRegs %d != Stalls.NoPhysReg %d", st.DecodeStallRegs, st.Stalls.NoPhysReg())
	}
	if st.DecodeStallQueue != st.Stalls.IQFull() {
		t.Errorf("DecodeStallQueue %d != Stalls.IQFull %d", st.DecodeStallQueue, st.Stalls.IQFull())
	}
	if st.DecodeStallROB != st.Stalls.ROBFull {
		t.Errorf("DecodeStallROB %d != Stalls.ROBFull %d", st.DecodeStallROB, st.Stalls.ROBFull)
	}
	if st.Stalls.PortConflict != st.VRegPortConflictCycles {
		t.Errorf("Stalls.PortConflict %d != VRegPortConflictCycles %d",
			st.Stalls.PortConflict, st.VRegPortConflictCycles)
	}
	if st.Stalls.NoPhysV == 0 {
		t.Error("9 physical vector registers produced zero vector no-phys-reg stalls")
	}
	if st.Occupancy.ROB.Samples() != int64(tr.Len()) {
		t.Errorf("ROB occupancy samples %d != trace length %d",
			st.Occupancy.ROB.Samples(), tr.Len())
	}
}

// TestProbeStallCyclesMatchStats asserts the sink hears exactly the stall
// cycles the stats record: the Counter's per-cause totals must equal the
// breakdown's accumulated fields (PortConflict is derived at finish and
// deliberately not reported through the sink).
func TestProbeStallCyclesMatchStats(t *testing.T) {
	tr := checkpointTestTrace(t, "swm256", 3000)
	cfg := DefaultConfig()
	cfg.PhysVRegs = 9
	var c probe.Counter
	cfg.Sink = &c
	st := Run(tr, cfg).Stats
	if c.Insns != int64(tr.Len()) {
		t.Errorf("sink saw %d instructions, trace has %d", c.Insns, tr.Len())
	}
	checks := []struct {
		cause probe.Cause
		want  int64
	}{
		{probe.CauseROBFull, st.Stalls.ROBFull},
		{probe.CauseIQFull, st.Stalls.IQFull()},
		{probe.CauseNoPhysReg, st.Stalls.NoPhysReg()},
		{probe.CauseMemBusBusy, st.Stalls.MemBusBusy},
		{probe.CausePortConflict, 0},
	}
	for _, ch := range checks {
		if got := c.StallCycles[ch.cause]; got != ch.want {
			t.Errorf("sink %v cycles = %d, stats say %d", ch.cause, got, ch.want)
		}
	}
}

// TestKanataTraceFromRun pins the pipeline trace of a tiny deterministic
// kernel end to end: builder → simulator → Kanata rendering. The golden
// form locks both the event timings and the format, so either drifting
// fails loudly.
func TestKanataTraceFromRun(t *testing.T) {
	b := trace.NewBuilder("tiny")
	b.SetVL(8, isa.A(0))
	b.VLoad(isa.V(0), 0x10000)
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(0))
	tr := b.Build()

	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.MemLatency = 1
	cfg.Sink = probe.NewKanata(&sb)
	res1 := Run(tr, cfg)
	if err := cfg.Sink.(*probe.Kanata).Flush(); err != nil {
		t.Fatal(err)
	}

	// Determinism of the rendered trace itself.
	var sb2 strings.Builder
	cfg2 := cfg
	cfg2.Sink = probe.NewKanata(&sb2)
	res2 := Run(tr, cfg2)
	if err := cfg2.Sink.(*probe.Kanata).Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("identical runs rendered different Kanata traces")
	}
	if !reflect.DeepEqual(res1.Stats, res2.Stats) {
		t.Fatal("identical runs produced different stats")
	}

	got := sb.String()
	if !strings.HasPrefix(got, "Kanata\t0004\n") {
		t.Fatalf("missing header:\n%s", got)
	}
	// Every instruction appears with a full lifecycle: inserted, staged
	// through F/D/X, ended and retired.
	for _, want := range []string{
		"I\t0\t0\t0", "I\t1\t1\t0", "I\t2\t2\t0",
		"L\t1\t0\t1: v.ld", "L\t2\t0\t2: v.add",
		"S\t1\t0\tF", "S\t1\t0\tD", "S\t1\t0\tX",
		"S\t2\t0\tF", "S\t2\t0\tD", "S\t2\t0\tX",
		"E\t1\t0\tX", "E\t2\t0\tX",
		"R\t0\t0\t0", "R\t1\t1\t0", "R\t2\t2\t0",
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("trace lacks %q:\n%s", want, got)
		}
	}
}
