package ooosim

import (
	"reflect"
	"testing"

	"oovec/internal/rob"
	"oovec/internal/tgen"
)

// TestMachineReuseMatchesFreshRuns runs several (benchmark, config) pairs
// through one reused Machine and asserts every measurement matches a fresh
// one-shot Run — the correctness contract of Reset.
func TestMachineReuseMatchesFreshRuns(t *testing.T) {
	late := DefaultConfig()
	late.Commit = rob.PolicyLate
	elim := late
	elim.LoadElim = ElimSLEVLE
	big := DefaultConfig()
	big.PhysVRegs = 32 // different shape: forces a rebuild path
	configs := []Config{DefaultConfig(), late, elim, big, DefaultConfig()}

	var mm *Machine
	for _, name := range []string{"swm256", "trfd", "bdna"} {
		p, _ := tgen.PresetByName(name)
		p.Insns = 2000
		tr := tgen.Generate(p)
		for ci, cfg := range configs {
			want := Run(tr, cfg).Stats
			if mm == nil {
				mm = NewMachine(cfg)
			} else {
				mm.Reset(cfg)
			}
			got := mm.Run(tr).Stats
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s config %d: reused machine stats differ\ngot:  %+v\nwant: %+v",
					name, ci, got, want)
			}
			// Back-to-back Run on a dirty machine must self-reset.
			if again := mm.Run(tr).Stats; !reflect.DeepEqual(again, want) {
				t.Errorf("%s config %d: second reused run differs", name, ci)
			}
		}
	}
}

// TestMachineReuseWithRecords checks record collection across reuse: the
// records slice must be rebuilt per run, not accumulated.
func TestMachineReuseWithRecords(t *testing.T) {
	p, _ := tgen.PresetByName("trfd")
	p.Insns = 500
	tr := tgen.Generate(p)
	cfg := DefaultConfig()
	cfg.CollectRecords = true

	mm := NewMachine(cfg)
	r1 := mm.Run(tr)
	if len(r1.Records) != tr.Len() {
		t.Fatalf("first run: %d records, want %d", len(r1.Records), tr.Len())
	}
	r2 := mm.Run(tr)
	if len(r2.Records) != tr.Len() {
		t.Fatalf("second run: %d records, want %d (records must not accumulate)",
			len(r2.Records), tr.Len())
	}
}
