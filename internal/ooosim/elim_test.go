package ooosim

import (
	"testing"

	"oovec/internal/isa"
	"oovec/internal/probe"
	"oovec/internal/rob"
	"oovec/internal/trace"
)

// spillTrace builds a spill-heavy loop: compute, spill-store the result,
// later reload it from the same slot and use it again — the §6 scenario.
func spillTrace(iters int) *trace.Trace {
	b := trace.NewBuilder("spilly")
	b.SetVL(64, isa.A(0))
	for i := 0; i < iters; i++ {
		slot := uint64(0x900000 + (i%4)*0x1000)
		b.VLoad(isa.V(0), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
		b.SpillStore(isa.V(1), slot)
		b.Vector(isa.OpVMul, isa.V(1), isa.V(0), isa.V(3)) // clobbers v1
		b.SpillLoad(isa.V(4), slot)                        // reload: redundant
		b.Vector(isa.OpVAdd, isa.V(5), isa.V(4), isa.V(1))
		b.VStore(isa.V(5), uint64(0x200000+i*0x1000))
	}
	return b.Build()
}

func elimCfg(mode ElimMode, vregs int) Config {
	c := DefaultConfig()
	c.PhysVRegs = vregs
	c.Commit = rob.PolicyLate // the paper's §6 baseline is the late-commit OOOVA
	c.LoadElim = mode
	return c
}

func TestVLEEliminatesSpillReloads(t *testing.T) {
	tr := spillTrace(20)
	res := Run(tr, elimCfg(ElimSLEVLE, 32))
	if res.Stats.EliminatedLoads == 0 {
		t.Fatal("no loads eliminated on spill-heavy code")
	}
	// Every reload (one per iteration) should be eliminated.
	if res.Stats.EliminatedLoads < 18 {
		t.Errorf("eliminated %d of 20 reloads", res.Stats.EliminatedLoads)
	}
	if res.Stats.EliminatedRequests < 18*64 {
		t.Errorf("eliminated requests = %d", res.Stats.EliminatedRequests)
	}
}

func TestVLESpeedsUpSpillCode(t *testing.T) {
	tr := spillTrace(20)
	base := Run(tr, elimCfg(ElimNone, 32)).Stats
	vle := Run(tr, elimCfg(ElimSLEVLE, 32)).Stats
	if vle.Cycles >= base.Cycles {
		t.Errorf("SLE+VLE (%d cycles) not faster than base (%d)", vle.Cycles, base.Cycles)
	}
}

func TestVLEReducesTraffic(t *testing.T) {
	tr := spillTrace(20)
	base := Run(tr, elimCfg(ElimNone, 32)).Stats
	vle := Run(tr, elimCfg(ElimSLEVLE, 32)).Stats
	if vle.MemRequests >= base.MemRequests {
		t.Errorf("traffic not reduced: %d vs %d", vle.MemRequests, base.MemRequests)
	}
	// ~1 of 7 memory ops per iteration eliminated (the reload): expect a
	// meaningful reduction ratio.
	ratio := float64(base.MemRequests) / float64(vle.MemRequests)
	if ratio < 1.15 {
		t.Errorf("traffic reduction ratio = %.3f, want >= 1.15", ratio)
	}
	// Spill stores are NOT eliminated (binary compatibility).
	if vle.MemRequests < base.MemRequests/2 {
		t.Errorf("too much traffic removed (%d of %d): stores must remain",
			vle.MemRequests, base.MemRequests)
	}
}

func TestInterveningStoreInvalidatesTag(t *testing.T) {
	// A store overlapping the spill slot between the spill and the reload
	// must kill the tag: the reload is NOT redundant any more.
	b := trace.NewBuilder("clobber")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x900000)
	b.Vector(isa.OpVMul, isa.V(3), isa.V(0), isa.V(2))
	b.VStore(isa.V(3), 0x900100) // overlaps [0x900000,0x9001ff]
	b.SpillLoad(isa.V(4), 0x900000)
	tr := b.Build()
	res := Run(tr, elimCfg(ElimSLEVLE, 32))
	if res.Stats.EliminatedLoads != 0 {
		t.Errorf("eliminated %d loads; the clobbered reload must execute",
			res.Stats.EliminatedLoads)
	}
}

func TestDifferentStrideDoesNotMatch(t *testing.T) {
	// Same base address but different stride: the 6-tuple differs, no match.
	b := trace.NewBuilder("stride")
	b.SetVL(32, isa.A(0))
	b.VLoad(isa.V(1), 0x50000) // stride 8
	b.SetVS(16, isa.A(1))
	b.VLoad(isa.V(2), 0x50000) // stride 16: not the same data layout
	tr := b.Build()
	res := Run(tr, elimCfg(ElimSLEVLE, 32))
	if res.Stats.EliminatedLoads != 0 {
		t.Error("stride-mismatched load must not be eliminated")
	}
}

func TestRepeatedLoadEliminated(t *testing.T) {
	// Two identical loads with no intervening store: the second is
	// redundant ("limited registers also cause repeated loads from the
	// same memory location").
	b := trace.NewBuilder("repload")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(1), 0x50000)
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(1), isa.V(3))
	b.VLoad(isa.V(1), 0x50000) // same address, same VL/VS
	tr := b.Build()
	res := Run(tr, elimCfg(ElimSLEVLE, 32))
	if res.Stats.EliminatedLoads != 1 {
		t.Errorf("eliminated = %d, want 1", res.Stats.EliminatedLoads)
	}
}

func TestSLEOnlyEliminatesScalars(t *testing.T) {
	b := trace.NewBuilder("sle")
	b.SetVL(64, isa.A(0))
	// Scalar spill pair.
	b.Scalar(isa.OpSAdd, isa.S(1), isa.S(0), isa.S(2))
	b.ScalarSpillStore(isa.S(1), 0x908000)
	b.ScalarSpillLoad(isa.S(3), 0x908000)
	// Vector spill pair.
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x910000)
	b.SpillLoad(isa.V(4), 0x910000)
	tr := b.Build()

	sle := Run(tr, elimCfg(ElimSLE, 32)).Stats
	if sle.EliminatedLoads != 1 {
		t.Errorf("SLE eliminated %d, want 1 (scalar only)", sle.EliminatedLoads)
	}
	both := Run(tr, elimCfg(ElimSLEVLE, 32)).Stats
	if both.EliminatedLoads != 2 {
		t.Errorf("SLE+VLE eliminated %d, want 2", both.EliminatedLoads)
	}
}

func TestScalarCopyDoesNotChangeRenameTable(t *testing.T) {
	// §6.1: scalar elimination copies the value; vector elimination renames.
	b := trace.NewBuilder("copy")
	b.Scalar(isa.OpSAdd, isa.S(1), isa.S(0), isa.S(2))
	b.ScalarSpillStore(isa.S(1), 0x908000)
	b.ScalarSpillLoad(isa.S(3), 0x908000)
	tr := b.Build()
	res := Run(tr, elimCfg(ElimSLE, 32))
	// s1 and s3 must map to different physical registers (copy, not alias).
	tb := res.Tables[isa.RegS]
	if tb.Lookup(1) == tb.Lookup(3) {
		t.Error("scalar elimination must not alias the rename table")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVectorEliminationAliasesRenameTable(t *testing.T) {
	b := trace.NewBuilder("alias")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x910000)
	b.SpillLoad(isa.V(4), 0x910000)
	tr := b.Build()
	res := Run(tr, elimCfg(ElimSLEVLE, 32))
	tb := res.Tables[isa.RegV]
	if tb.Lookup(1) != tb.Lookup(4) {
		t.Error("eliminated vector load must alias v4 to v1's physical register")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestGatherScatterNeverTaggedOrEliminated(t *testing.T) {
	b := trace.NewBuilder("gather")
	b.SetVL(32, isa.A(0))
	b.Gather(isa.V(1), isa.V(0), 0x70000)
	b.Gather(isa.V(2), isa.V(0), 0x70000)
	tr := b.Build()
	res := Run(tr, elimCfg(ElimSLEVLE, 32))
	if res.Stats.EliminatedLoads != 0 {
		t.Error("indexed accesses must never be eliminated")
	}
}

func TestEliminationNearZeroTime(t *testing.T) {
	// "a load for spilled data is executed in nearly zero time": the
	// dependent consumer of an eliminated reload starts far earlier than
	// with the load executed.
	b := trace.NewBuilder("zerotime")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x910000)
	b.SpillLoad(isa.V(4), 0x910000)
	b.Vector(isa.OpVMul, isa.V(5), isa.V(4), isa.V(2))
	tr := b.Build()

	probeIssue := func(cfg Config) int64 {
		var mulIssue int64
		cfg.Sink = probe.InsnFunc(func(e probe.Event) {
			if e.Index == 4 {
				mulIssue = e.Issue
			}
		})
		Run(tr, cfg)
		return mulIssue
	}
	base := probeIssue(elimCfg(ElimNone, 32))
	vle := probeIssue(elimCfg(ElimSLEVLE, 32))
	if vle >= base {
		t.Errorf("consumer of eliminated load issued at %d, not earlier than base %d", vle, base)
	}
}

func TestMorePhysRegsCacheMoreSpills(t *testing.T) {
	// Fig 12: elimination benefits from more physical registers ("it can
	// cache more data inside the vector register file"). Use many distinct
	// spill slots so a small file keeps evicting tags.
	b := trace.NewBuilder("manyslots")
	b.SetVL(64, isa.A(0))
	const slots = 24
	for i := 0; i < slots; i++ {
		b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
		b.SpillStore(isa.V(1), uint64(0x900000+i*0x1000))
	}
	for i := 0; i < slots; i++ {
		b.SpillLoad(isa.V(3), uint64(0x900000+i*0x1000))
		b.Vector(isa.OpVAdd, isa.V(4), isa.V(3), isa.V(2))
	}
	tr := b.Build()
	e16 := Run(tr, elimCfg(ElimSLEVLE, 16)).Stats.EliminatedLoads
	e64 := Run(tr, elimCfg(ElimSLEVLE, 64)).Stats.EliminatedLoads
	if e64 <= e16 {
		t.Errorf("eliminations: 64 regs %d <= 16 regs %d", e64, e16)
	}
}

// rollbackTrace builds a renaming-heavy loop for the §5 fault experiments.
func rollbackTrace(iters int) *trace.Trace {
	b := trace.NewBuilder("rollback")
	b.SetVL(64, isa.A(0))
	for i := 0; i < iters; i++ {
		b.VLoad(isa.V(i%8), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVAdd, isa.V((i+1)%8), isa.V(i%8), isa.V((i+2)%8))
	}
	return b.Build()
}

func TestPreciseTrapRollback(t *testing.T) {
	// §5: a fault at instruction k recovers exactly the architectural
	// mapping produced by instructions 0..k-1.
	tr := rollbackTrace(30)
	cfg := DefaultConfig()
	cfg.Commit = rob.PolicyLate
	faultAt := 41 // a vload in the middle of the loop

	res, err := RunWithFault(tr, cfg, faultAt)
	if err != nil {
		t.Fatal(err)
	}
	if res.InFlight < 1 {
		t.Errorf("in-flight = %d, want >= 1", res.InFlight)
	}

	// Reference: run only the pre-fault prefix and compare final mappings.
	pre := &trace.Trace{Name: "prefix", Insns: tr.Insns[:faultAt]}
	want := Run(pre, cfg)
	for class, tb := range res.Tables {
		for l := 0; l < class.NumLogical(); l++ {
			if got, exp := tb.Lookup(l), want.Tables[class].Lookup(l); got != exp {
				t.Errorf("%v%d maps to %d after rollback, want %d", class, l, got, exp)
			}
		}
	}
	if res.DetectCycle <= 0 || res.PreciseCycle <= 0 {
		t.Errorf("timing fields not populated: detect=%d precise=%d",
			res.DetectCycle, res.PreciseCycle)
	}
}

func TestPreciseTrapRollbackAtFirstInstruction(t *testing.T) {
	tr := rollbackTrace(5)
	cfg := DefaultConfig()
	cfg.Commit = rob.PolicyLate
	res, err := RunWithFault(tr, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rollback to the initial identity mapping.
	for class, tb := range res.Tables {
		for l := 0; l < class.NumLogical(); l++ {
			if tb.Lookup(l) != l {
				t.Errorf("%v%d maps to %d, want identity", class, l, tb.Lookup(l))
			}
		}
	}
}

func TestRunWithFaultRejectsBadIndex(t *testing.T) {
	tr := rollbackTrace(2)
	if _, err := RunWithFault(tr, DefaultConfig(), -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := RunWithFault(tr, DefaultConfig(), tr.Len()); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestRollbackWithEliminatedLoads(t *testing.T) {
	// Rollback must also undo AliasTo renames (refcounted registers).
	tr := spillTrace(8)
	cfg := elimCfg(ElimSLEVLE, 32)
	faultAt := 20
	res, err := RunWithFault(tr, cfg, faultAt)
	if err != nil {
		t.Fatal(err)
	}
	pre := &trace.Trace{Name: "prefix", Insns: tr.Insns[:faultAt]}
	want := Run(pre, cfg)
	tb := res.Tables[isa.RegV]
	for l := 0; l < 8; l++ {
		if got, exp := tb.Lookup(l), want.Tables[isa.RegV].Lookup(l); got != exp {
			t.Errorf("v%d maps to %d after rollback, want %d", l, got, exp)
		}
	}
}

func TestVLEDeterminism(t *testing.T) {
	tr := spillTrace(15)
	a := Run(tr, elimCfg(ElimSLEVLE, 32)).Stats
	c := Run(tr, elimCfg(ElimSLEVLE, 32)).Stats
	if a.Cycles != c.Cycles || a.EliminatedLoads != c.EliminatedLoads ||
		a.MemRequests != c.MemRequests {
		t.Error("SLE+VLE run nondeterministic")
	}
}
