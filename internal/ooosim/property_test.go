package ooosim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oovec/internal/isa"
	"oovec/internal/probe"
	"oovec/internal/refsim"
	"oovec/internal/rob"
	"oovec/internal/trace"
)

func TestMaskRenamingThroughVCmpVMerge(t *testing.T) {
	// VCmp writes the mask; VMerge reads it. With 8 physical mask
	// registers, chains of compares rename without stalling on the single
	// architectural mask.
	b := trace.NewBuilder("mask")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 10; i++ {
		b.Vector(isa.OpVCmp, isa.VM(), isa.V(i%8), isa.V((i+1)%8))
		b.Vector(isa.OpVMerge, isa.V((i+2)%8), isa.V(i%8), isa.V((i+1)%8))
	}
	tr := b.Build()
	res := Run(tr, cfgN(16))
	if err := res.Tables[isa.RegM].CheckInvariants(); err != nil {
		t.Error(err)
	}
	if res.Stats.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// The merges chain on the compares: total far below full serialisation
	// (20 × (startup+VL+lat) ≈ 1560).
	if res.Stats.Cycles > 1500 {
		t.Errorf("masked chain = %d cycles; mask renaming/chaining broken", res.Stats.Cycles)
	}
}

func TestVReduceDeliversScalar(t *testing.T) {
	b := trace.NewBuilder("reduce")
	b.SetVL(64, isa.A(0))
	b.Raw(isa.Instruction{Op: isa.OpVReduce, Dst: isa.S(3), Src1: isa.V(1), VL: 64})
	b.Scalar(isa.OpSAdd, isa.S(4), isa.S(3), isa.S(0)) // consumes the reduction
	tr := b.Build()
	var addIssue int64
	cfg := cfgN(16)
	cfg.Sink = probe.InsnFunc(func(e probe.Event) {
		if e.Index == 2 {
			addIssue = e.Issue
		}
	})
	Run(tr, cfg)
	// The consumer waits for the full reduction (startup + lat + VL).
	if addIssue < 64 {
		t.Errorf("reduction consumer issued at %d, before the reduction completes", addIssue)
	}
}

func TestMaskedOpsOnRefMachine(t *testing.T) {
	b := trace.NewBuilder("maskref")
	b.SetVL(32, isa.A(0))
	b.Vector(isa.OpVCmp, isa.VM(), isa.V(0), isa.V(1))
	b.Vector(isa.OpVMerge, isa.V(4), isa.V(2), isa.V(3))
	tr := b.Build()
	st := refsim.Run(tr, refsim.DefaultConfig())
	if st.Cycles <= 0 {
		t.Fatal("REF did not execute masked ops")
	}
	// The merge reads the mask: it must start after the compare's chain
	// point, i.e. the run is longer than one instruction's span.
	single := refsim.Run(func() *trace.Trace {
		b := trace.NewBuilder("one")
		b.SetVL(32, isa.A(0))
		b.Vector(isa.OpVCmp, isa.VM(), isa.V(0), isa.V(1))
		return b.Build()
	}(), refsim.DefaultConfig())
	if st.Cycles <= single.Cycles {
		t.Error("merge did not serialise behind the mask-writing compare")
	}
}

// randomKernel builds a random but structurally valid trace mixing every
// instruction category.
func randomKernel(r *rand.Rand, n int) *trace.Trace {
	b := trace.NewBuilder("prop")
	b.SetVL(1+r.Intn(isa.MaxVL), isa.A(0))
	for i := 0; i < n; i++ {
		switch r.Intn(12) {
		case 0:
			b.SetVL(1+r.Intn(isa.MaxVL), isa.A(r.Intn(8)))
		case 1:
			b.VLoad(isa.V(r.Intn(8)), uint64(0x10000+r.Intn(1<<20)))
		case 2:
			b.VStore(isa.V(r.Intn(8)), uint64(0x10000+r.Intn(1<<20)))
		case 3:
			b.Vector(isa.OpVAdd, isa.V(r.Intn(8)), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
		case 4:
			b.Vector(isa.OpVMul, isa.V(r.Intn(8)), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
		case 5:
			b.Vector(isa.OpVDiv, isa.V(r.Intn(8)), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
		case 6:
			b.Scalar(isa.OpAAdd, isa.A(r.Intn(8)), isa.A(r.Intn(8)), isa.A(r.Intn(8)))
		case 7:
			b.ScalarLoad(isa.OpSLoad, isa.S(r.Intn(8)), uint64(r.Intn(1<<16)))
		case 8:
			b.Branch(uint64(0x100+r.Intn(64)*4), r.Intn(2) == 0)
		case 9:
			b.SpillStore(isa.V(r.Intn(8)), uint64(0x900000+r.Intn(16)*0x400))
		case 10:
			b.SpillLoad(isa.V(r.Intn(8)), uint64(0x900000+r.Intn(16)*0x400))
		case 11:
			b.Vector(isa.OpVCmp, isa.VM(), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
			b.Vector(isa.OpVMerge, isa.V(r.Intn(8)), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
		}
	}
	return b.Build()
}

// randomConfig draws a structurally valid OOOVA configuration.
func randomConfig(r *rand.Rand) Config {
	cfg := DefaultConfig()
	cfg.PhysVRegs = 9 + r.Intn(56)
	cfg.QueueSlots = []int{8, 16, 32, 128}[r.Intn(4)]
	cfg.ROBSize = []int{16, 64, 128}[r.Intn(3)]
	cfg.MemLatency = int64(1 + r.Intn(100))
	if r.Intn(2) == 0 {
		cfg.Commit = rob.PolicyLate
	}
	cfg.LoadElim = ElimMode(r.Intn(3))
	if r.Intn(4) == 0 && cfg.Commit == rob.PolicyEarly {
		cfg.ElideDeadSpillStores = true
	}
	return cfg
}

func TestPropertyRandomTracesRandomConfigs(t *testing.T) {
	// Sanity across the configuration space: simulation terminates, state
	// accounting is exact, rename invariants hold, results deterministic.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomKernel(r, 150+r.Intn(300))
		cfg := randomConfig(r)
		res1 := Run(tr, cfg)
		res2 := Run(tr, cfg)
		st := res1.Stats
		if st.Cycles <= 0 {
			t.Logf("seed %d: no cycles", seed)
			return false
		}
		if st.States.Total() != st.Cycles {
			t.Logf("seed %d: state accounting %d != %d", seed, st.States.Total(), st.Cycles)
			return false
		}
		if st.States.MemIdleCycles()+st.MemPortBusy != st.Cycles {
			t.Logf("seed %d: port accounting broken", seed)
			return false
		}
		if st.Cycles != res2.Stats.Cycles || st.MemRequests != res2.Stats.MemRequests {
			t.Logf("seed %d: nondeterministic", seed)
			return false
		}
		for class, tb := range res1.Tables {
			if err := tb.CheckInvariants(); err != nil {
				t.Logf("seed %d: %v invariants: %v", seed, class, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRefRandomTraces(t *testing.T) {
	// The reference machine on the same random traces: terminates,
	// accounts exactly, deterministic, and never beats the bus bound.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomKernel(r, 150+r.Intn(300))
		cfg := refsim.DefaultConfig()
		cfg.MemLatency = int64(1 + r.Intn(100))
		a := refsim.Run(tr, cfg)
		c := refsim.Run(tr, cfg)
		if a.Cycles != c.Cycles {
			return false
		}
		if a.States.Total() != a.Cycles {
			return false
		}
		return a.Cycles >= a.MemPortBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOOONeverBeatsBusBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomKernel(r, 200)
		st := Run(tr, randomConfig(r)).Stats
		return st.Cycles >= st.MemPortBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
