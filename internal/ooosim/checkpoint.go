package ooosim

// Mid-run checkpointing: a Checkpoint serialises the complete deterministic
// machine state at an instruction boundary, so a preempted or killed run can
// resume from where it stopped — in this process or another — and produce
// output byte-identical to an uninterrupted run. RunCheckpointed adds the
// cheap cancellation checks (every CheckEvery instructions) and periodic
// checkpoint callbacks the ovserve job layer is built on.
//
// The simulator is trace-driven: all state is the timing/rename machinery,
// so a checkpoint is the component snapshots (package sched, iq, rob,
// bpred, rename, vregfile) plus the machine's own scalars. Scratch buffers
// and configuration are deliberately excluded — a checkpoint is only
// restored into a machine already reset to the identical configuration
// (the job layer guarantees this by keying checkpoints on the same
// canonical-config hash as results).

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"oovec/internal/bpred"
	"oovec/internal/iq"
	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/rename"
	"oovec/internal/rob"
	"oovec/internal/sched"
	"oovec/internal/trace"
	"oovec/internal/vregfile"
)

// DefaultCheckEvery is the abort-check granularity of RunCheckpointed: the
// context is polled once per this many instructions, bounding cancellation
// latency to the time those instructions take (microseconds) while keeping
// the per-instruction overhead of an uncancelled run unmeasurable.
const DefaultCheckEvery = 2048

// PendStoreState is the exported form of one pending (lazily placed) store.
type PendStoreState struct {
	Ready, Occ, Req            int64
	Entry                      int
	Placed, Elidable, Canceled bool
}

// MemSchedEntryState is the exported form of one bus disambiguation record.
type MemSchedEntryState struct {
	RStart, REnd uint64
	IsStore      bool
	BusEnd       int64
	PendIdx      int
}

// MemSchedState is the serialisable state of the memory/bus scheduler.
// Entries holds the full disambiguation ring, indexed exactly as the
// scheduler indexes it (slot i%len(Entries) of access i).
type MemSchedState struct {
	Bus     sched.GapState
	Pend    []PendStoreState
	Entries []MemSchedEntryState
	N       int

	Requests, Conflicts, LastEnd int64
}

// snapshot captures the scheduler state (deep copy).
func (s *memScheduler) snapshot() MemSchedState {
	st := MemSchedState{
		Bus:       s.bus.Snapshot(),
		Pend:      make([]PendStoreState, len(s.pend)),
		Entries:   make([]MemSchedEntryState, memScanWindow),
		N:         s.n,
		Requests:  s.requests,
		Conflicts: s.conflicts,
		LastEnd:   s.lastEnd,
	}
	for i := range s.pend {
		p := &s.pend[i]
		st.Pend[i] = PendStoreState{Ready: p.ready, Occ: p.occ, Req: p.req,
			Entry: p.entry, Placed: p.placed, Elidable: p.elidable, Canceled: p.canceled}
	}
	for i := range s.entries {
		e := &s.entries[i]
		st.Entries[i] = MemSchedEntryState{RStart: e.rstart, REnd: e.rend,
			IsStore: e.isStore, BusEnd: e.busEnd, PendIdx: e.pendIdx}
	}
	return st
}

// restore replaces the scheduler state with st, keeping the scan-window
// capacity (configuration, not state).
func (s *memScheduler) restore(st MemSchedState) {
	s.bus.Restore(st.Bus)
	s.pend = s.pend[:0]
	for _, p := range st.Pend {
		s.pend = append(s.pend, pendStore{ready: p.Ready, occ: p.Occ, req: p.Req,
			entry: p.Entry, placed: p.Placed, elidable: p.Elidable, canceled: p.Canceled})
	}
	for i := range s.entries {
		s.entries[i] = memEntry{}
	}
	for i, e := range st.Entries {
		if i >= memScanWindow {
			break
		}
		s.entries[i] = memEntry{rstart: e.RStart, rend: e.REnd,
			isStore: e.IsStore, busEnd: e.BusEnd, pendIdx: e.PendIdx}
	}
	s.n = st.N
	s.requests, s.conflicts, s.lastEnd = st.Requests, st.Conflicts, st.LastEnd
}

// Checkpoint is the complete deterministic state of an OOOVA simulation at
// an instruction boundary: instructions [0, NextInsn) have been simulated.
// It contains only exported value fields, so encoding/gob round-trips it.
type Checkpoint struct {
	// NextInsn is the index of the first instruction not yet simulated.
	NextInsn int
	// TraceLen is the length of the trace the checkpoint was taken on, as a
	// guard against resuming on the wrong trace.
	TraceLen int

	Tables              [isa.NumRegClasses]rename.TableState
	AReady, SReady      []int64
	VTiming, MTiming    []vregfile.Timing
	VTags, STags, ATags rename.TagFileState

	// Banked selects which port-file state is populated, mirroring
	// Config.BankedPorts.
	Banked      bool
	FlatPorts   vregfile.FlatFileState
	BankedPorts vregfile.BankedFileState

	FU1, FU2 sched.GapState
	MSched   MemSchedState

	AQ, SQ, VQ iq.QueueState
	MQ         iq.MemQueueState
	ROB        rob.State
	Pred       bpred.State

	PrevFetch, NextFetchMin, PrevDecode, LastVLReady, LastCycle int64

	EliminatedLoads, EliminatedRequests int64
	ElidedStores, ElidedRequests        int64
	Stalls                              metrics.StallBreakdown
	Occ                                 metrics.Occupancy

	SuppressFrom int
	SpillPend    map[[2]uint64]int
	Records      []rename.Record
}

// Encode serialises the checkpoint with encoding/gob.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserialises a checkpoint produced by Encode.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// snapshot captures the full machine state at instruction boundary nextInsn.
func (m *machine) snapshot(nextInsn, traceLen int) *Checkpoint {
	ck := &Checkpoint{
		NextInsn: nextInsn,
		TraceLen: traceLen,

		AReady:  append([]int64(nil), m.aReady...),
		SReady:  append([]int64(nil), m.sReady...),
		VTiming: append([]vregfile.Timing(nil), m.vTiming...),
		MTiming: append([]vregfile.Timing(nil), m.mTiming...),
		VTags:   m.vTags.Snapshot(),
		STags:   m.sTags.Snapshot(),
		ATags:   m.aTags.Snapshot(),

		FU1:    m.fu1.Snapshot(),
		FU2:    m.fu2.Snapshot(),
		MSched: m.msched.snapshot(),

		AQ:   m.aQ.Snapshot(),
		SQ:   m.sQ.Snapshot(),
		VQ:   m.vQ.Snapshot(),
		MQ:   m.mQ.Snapshot(),
		ROB:  m.rob.Snapshot(),
		Pred: m.pred.Snapshot(),

		PrevFetch:    m.prevFetch,
		NextFetchMin: m.nextFetchMin,
		PrevDecode:   m.prevDecode,
		LastVLReady:  m.lastVLReady,
		LastCycle:    m.lastCycle,

		EliminatedLoads:    m.eliminatedLoads,
		EliminatedRequests: m.eliminatedRequests,
		ElidedStores:       m.elidedStores,
		ElidedRequests:     m.elidedRequests,
		Stalls:             m.stalls,
		Occ:                m.occ,

		SuppressFrom: m.suppressFrom,
	}
	for class, tb := range m.tables {
		if tb != nil {
			ck.Tables[class] = tb.Snapshot()
		}
	}
	switch p := m.ports.(type) {
	case *vregfile.FlatFile:
		ck.FlatPorts = p.Snapshot()
	case *vregfile.BankedFile:
		ck.Banked = true
		ck.BankedPorts = p.Snapshot()
	}
	if m.spillPend != nil {
		ck.SpillPend = make(map[[2]uint64]int, len(m.spillPend))
		for k, v := range m.spillPend {
			ck.SpillPend[k] = v
		}
	}
	if len(m.records) > 0 {
		ck.Records = append([]rename.Record(nil), m.records...)
	}
	return ck
}

// restore replaces the machine state with ck. The machine must already be
// reset to the configuration the checkpoint was taken under; structural
// mismatches are reported as errors rather than silently corrupting the run.
func (m *machine) restore(ck *Checkpoint) error {
	if ck.Banked != m.cfg.BankedPorts {
		return fmt.Errorf("ooosim: checkpoint port organisation mismatch (banked=%v, cfg banked=%v)",
			ck.Banked, m.cfg.BankedPorts)
	}
	if len(ck.AReady) != len(m.aReady) || len(ck.SReady) != len(m.sReady) ||
		len(ck.VTiming) != len(m.vTiming) || len(ck.MTiming) != len(m.mTiming) {
		return fmt.Errorf("ooosim: checkpoint register-file sizes (%d/%d/%d/%d) do not match configuration (%d/%d/%d/%d)",
			len(ck.AReady), len(ck.SReady), len(ck.VTiming), len(ck.MTiming),
			len(m.aReady), len(m.sReady), len(m.vTiming), len(m.mTiming))
	}
	for class, tb := range m.tables {
		if tb == nil {
			continue
		}
		st := ck.Tables[class]
		if len(st.Mapping) != tb.NumLogical || len(st.Refcnt) != tb.NumPhysical {
			return fmt.Errorf("ooosim: checkpoint rename table %v sized %d/%d, configuration wants %d/%d",
				isa.RegClass(class), len(st.Mapping), len(st.Refcnt), tb.NumLogical, tb.NumPhysical)
		}
		tb.Restore(st)
	}
	copy(m.aReady, ck.AReady)
	copy(m.sReady, ck.SReady)
	copy(m.vTiming, ck.VTiming)
	copy(m.mTiming, ck.MTiming)
	m.vTags.Restore(ck.VTags)
	m.sTags.Restore(ck.STags)
	m.aTags.Restore(ck.ATags)
	switch p := m.ports.(type) {
	case *vregfile.FlatFile:
		p.Restore(ck.FlatPorts)
	case *vregfile.BankedFile:
		p.Restore(ck.BankedPorts)
	}
	m.fu1.Restore(ck.FU1)
	m.fu2.Restore(ck.FU2)
	m.msched.restore(ck.MSched)
	m.aQ.Restore(ck.AQ)
	m.sQ.Restore(ck.SQ)
	m.vQ.Restore(ck.VQ)
	m.mQ.Restore(ck.MQ)
	m.rob.Restore(ck.ROB)
	m.pred.Restore(ck.Pred)

	m.prevFetch = ck.PrevFetch
	m.nextFetchMin = ck.NextFetchMin
	m.prevDecode = ck.PrevDecode
	m.lastVLReady = ck.LastVLReady
	m.lastCycle = ck.LastCycle

	m.eliminatedLoads = ck.EliminatedLoads
	m.eliminatedRequests = ck.EliminatedRequests
	m.elidedStores = ck.ElidedStores
	m.elidedRequests = ck.ElidedRequests
	m.stalls = ck.Stalls
	m.occ = ck.Occ

	m.suppressFrom = ck.SuppressFrom
	if ck.SpillPend != nil {
		if m.spillPend == nil {
			m.spillPend = make(map[[2]uint64]int, len(ck.SpillPend))
		} else {
			clear(m.spillPend)
		}
		for k, v := range ck.SpillPend {
			m.spillPend[k] = v
		}
	}
	m.records = append(m.records[:0], ck.Records...)
	return nil
}

// RunOpts configures a cancellable, checkpointable run. The zero value
// behaves exactly like Machine.Run.
type RunOpts struct {
	// Ctx, when non-nil, cancels the run mid-trace: RunCheckpointed polls it
	// every CheckEvery instructions and, on cancellation, returns a
	// checkpoint of the current instruction boundary along with ctx's error.
	Ctx context.Context
	// CheckEvery is the abort-check/progress granularity in instructions
	// (<= 0 selects DefaultCheckEvery).
	CheckEvery int
	// CheckpointEvery, when > 0, invokes OnCheckpoint at every multiple of
	// this many instructions, so a killed (not just canceled) process loses
	// at most this much progress.
	CheckpointEvery int
	// OnCheckpoint receives the periodic checkpoints. Called synchronously
	// on the simulating goroutine; the checkpoint shares no state with the
	// machine and may be retained or serialised freely.
	OnCheckpoint func(*Checkpoint)
	// OnProgress, when non-nil, is called with the number of instructions
	// simulated so far, at CheckEvery granularity.
	OnProgress func(done int)
	// Resume, when non-nil, restores this checkpoint instead of starting
	// from instruction zero. It must have been taken under the same
	// configuration and trace.
	Resume *Checkpoint
}

// RunCheckpointed simulates the trace like Run, with cooperative
// cancellation and checkpointing. On completion it returns (result, nil,
// nil). On cancellation it returns (nil, checkpoint, ctx error): the
// checkpoint captures the exact boundary the run stopped at, so a later
// RunCheckpointed with Resume set continues — on this machine or any other
// machine reset to the same configuration — and its final result is
// byte-identical to an uninterrupted run's.
func (mm *Machine) RunCheckpointed(t *trace.Trace, opts RunOpts) (*Result, *Checkpoint, error) {
	if mm.dirty {
		mm.Reset(mm.m.cfg)
	}
	mm.dirty = true
	m := mm.m
	start := 0
	if opts.Resume != nil {
		if opts.Resume.TraceLen != t.Len() {
			return nil, nil, fmt.Errorf("ooosim: checkpoint is for a %d-instruction trace, got %d",
				opts.Resume.TraceLen, t.Len())
		}
		if err := m.restore(opts.Resume); err != nil {
			return nil, nil, err
		}
		start = opts.Resume.NextInsn
	}
	m.reserveFor(t)
	if m.cfg.CollectRecords && cap(m.records) < t.Len() {
		grown := make([]rename.Record, len(m.records), t.Len())
		copy(grown, m.records)
		m.records = grown
	}
	check := opts.CheckEvery
	if check <= 0 {
		check = DefaultCheckEvery
	}
	for i := start; i < t.Len(); i++ {
		if i > start && i%check == 0 {
			if opts.OnProgress != nil {
				opts.OnProgress(i)
			}
			if opts.Ctx != nil {
				if err := opts.Ctx.Err(); err != nil {
					return nil, m.snapshot(i, t.Len()), err
				}
			}
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil &&
			i > start && i%opts.CheckpointEvery == 0 {
			opts.OnCheckpoint(m.snapshot(i, t.Len()))
		}
		m.step(i, &t.Insns[i])
	}
	return m.finish(t), nil, nil
}
