package ooosim

import (
	"testing"

	"oovec/internal/isa"
	"oovec/internal/probe"
	"oovec/internal/refsim"
	"oovec/internal/rob"
	"oovec/internal/trace"
)

func cfgN(vregs int) Config {
	c := DefaultConfig()
	c.PhysVRegs = vregs
	return c
}

// independentLoads builds a trace of n independent vector loads to distinct
// addresses, each into a different architectural register.
func independentLoads(n, vlen int) *trace.Trace {
	b := trace.NewBuilder("loads")
	b.SetVL(vlen, isa.A(0))
	for i := 0; i < n; i++ {
		b.VLoad(isa.V(i%8), uint64(0x10000+i*0x10000))
	}
	return b.Build()
}

func TestRenamingRemovesWAWStalls(t *testing.T) {
	// Two loads writing the same architectural register: the reference
	// machine serialises on WAW; the OOOVA renames and pipelines them.
	b := trace.NewBuilder("waw")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(2), 0x1000)
	b.VLoad(isa.V(2), 0x9000)
	tr := b.Build()

	ref := refsim.Run(tr, refsim.DefaultConfig())
	ooo := Run(tr, cfgN(16)).Stats
	if ooo.Cycles >= ref.Cycles {
		t.Errorf("OOOVA %d cycles >= REF %d on WAW-bound code", ooo.Cycles, ref.Cycles)
	}
	// The two loads should overlap on the bus: back-to-back occupancy
	// (2 × (startup 8 + VL 64)) plus one latency, not two.
	if ooo.Cycles > 72+72+50+15 {
		t.Errorf("OOOVA cycles = %d; loads did not pipeline", ooo.Cycles)
	}
}

func TestLoadsSlipAheadOfComputation(t *testing.T) {
	// A dependent compute chain followed by an independent load: the load
	// should issue while the chain is still executing, hiding its latency.
	b := trace.NewBuilder("slip")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(0), 0x1000)
	b.Vector(isa.OpVMul, isa.V(1), isa.V(0), isa.V(2)) // waits for the load
	b.Vector(isa.OpVMul, isa.V(3), isa.V(1), isa.V(2)) // chain
	b.VLoad(isa.V(4), 0x20000)                         // independent
	tr := b.Build()

	var busStarts []int64
	cfg := cfgN(16)
	cfg.Sink = probe.InsnFunc(func(e probe.Event) {
		if e.Index == 1 || e.Index == 4 {
			busStarts = append(busStarts, e.Issue)
		}
	})
	Run(tr, cfg)
	if len(busStarts) != 2 {
		t.Fatalf("probe captured %d entries", len(busStarts))
	}
	// The second load must issue just behind the first on the bus
	// (one occupancy of startup 8 + VL 64 later), not after the multiply
	// chain (~150+ cycles).
	if busStarts[1] > busStarts[0]+80 {
		t.Errorf("independent load issued at %d (first at %d): did not slip ahead",
			busStarts[1], busStarts[0])
	}
}

func TestOOOVABeatsRefEvenAtLatencyOne(t *testing.T) {
	// §4.3: "even at a memory latency of 1 cycle the OOOVA machine
	// typically obtains speedups over the reference machine".
	b := trace.NewBuilder("lat1")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 40; i++ {
		r := i % 4 * 2
		b.VLoad(isa.V(r), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVMul, isa.V(r+1), isa.V(r), isa.V((r+2)%8))
		b.VStore(isa.V(r+1), uint64(0x200000+i*0x1000))
	}
	tr := b.Build()
	refCfg := refsim.DefaultConfig()
	refCfg.MemLatency = 1
	oooCfg := cfgN(16)
	oooCfg.MemLatency = 1
	ref := refsim.Run(tr, refCfg)
	ooo := Run(tr, oooCfg).Stats
	if ooo.Cycles >= ref.Cycles {
		t.Errorf("OOOVA %d >= REF %d at latency 1", ooo.Cycles, ref.Cycles)
	}
}

func TestLatencyToleranceFlatness(t *testing.T) {
	// §4.3: OOOVA tolerates latencies up to 100 cycles with small
	// degradation on long-vector codes.
	tr := independentLoads(60, 128)
	run := func(lat int64) int64 {
		c := cfgN(16)
		c.MemLatency = lat
		return Run(tr, c).Stats.Cycles
	}
	c1, c100 := run(1), run(100)
	degr := float64(c100-c1) / float64(c1)
	if degr > 0.10 {
		t.Errorf("latency 1→100 degradation = %.1f%%, want small (<10%%)", degr*100)
	}
}

func TestMorePhysRegsHelpUpTo16(t *testing.T) {
	// Fig 5 shape: 9 → 16 registers improves clearly.
	b := trace.NewBuilder("regs")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 60; i++ {
		r := i % 4 * 2
		b.VLoad(isa.V(r), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVAdd, isa.V(r+1), isa.V(r), isa.V((r+3)%8))
		b.VStore(isa.V(r+1), uint64(0x400000+i*0x1000))
	}
	tr := b.Build()
	c9 := Run(tr, cfgN(9)).Stats.Cycles
	c16 := Run(tr, cfgN(16)).Stats.Cycles
	c64 := Run(tr, cfgN(64)).Stats.Cycles
	if c16 >= c9 {
		t.Errorf("16 regs (%d) not faster than 9 regs (%d)", c16, c9)
	}
	if c64 > c16 {
		t.Errorf("64 regs (%d) slower than 16 (%d)", c64, c16)
	}
	// Diminishing returns: 16→64 gain much smaller than 9→16 gain.
	gain916 := float64(c9-c16) / float64(c9)
	gain1664 := float64(c16-c64) / float64(c16)
	if gain1664 > gain916 {
		t.Errorf("gain 16→64 (%.3f) exceeds gain 9→16 (%.3f)", gain1664, gain916)
	}
}

func TestMemPortIdleDropsVsRef(t *testing.T) {
	// Fig 6: the OOOVA more than halves memory-port idle time.
	b := trace.NewBuilder("portidle")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 50; i++ {
		r := i % 4 * 2
		b.VLoad(isa.V(r), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVMul, isa.V(r+1), isa.V(r), isa.V((r+2)%8))
		b.VStore(isa.V(r+1), uint64(0x300000+i*0x1000))
	}
	tr := b.Build()
	ref := refsim.Run(tr, refsim.DefaultConfig())
	ooo := Run(tr, cfgN(16)).Stats
	if ooo.MemPortIdlePct() >= ref.MemPortIdlePct() {
		t.Errorf("OOOVA idle %.1f%% >= REF idle %.1f%%",
			ooo.MemPortIdlePct(), ref.MemPortIdlePct())
	}
}

func TestLateCommitCostsPerformance(t *testing.T) {
	// §5: late commit (precise traps) costs some performance.
	b := trace.NewBuilder("late")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 40; i++ {
		r := i % 4 * 2
		b.VLoad(isa.V(r), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVAdd, isa.V(r+1), isa.V(r), isa.V((r+3)%8))
		b.VStore(isa.V(r+1), uint64(0x500000+i*0x1000))
	}
	tr := b.Build()
	early := cfgN(16)
	late := cfgN(16)
	late.Commit = rob.PolicyLate
	ce := Run(tr, early).Stats.Cycles
	cl := Run(tr, late).Stats.Cycles
	if cl < ce {
		t.Errorf("late commit (%d) faster than early (%d)", cl, ce)
	}
}

func TestLateCommitHurtsLoadStoreDependences(t *testing.T) {
	// §5: trfd/dyfesm degrade severely under late commit because the last
	// store of iteration i feeds the first load of iteration i+1 at the
	// same address.
	mk := func() *trace.Trace {
		b := trace.NewBuilder("trfd-like")
		b.SetVL(16, isa.A(0))
		for i := 0; i < 30; i++ {
			b.VLoad(isa.V(0), 0x8000) // same address as the previous store
			b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(4))
			b.Vector(isa.OpVAdd, isa.V(3), isa.V(2), isa.V(5))
			b.VStore(isa.V(3), 0x8000)
		}
		return b.Build()
	}
	tr := mk()
	early := cfgN(16)
	late := cfgN(16)
	late.Commit = rob.PolicyLate
	ce := Run(tr, early).Stats.Cycles
	cl := Run(tr, late).Stats.Cycles
	slowdown := float64(cl)/float64(ce) - 1
	if slowdown < 0.08 {
		t.Errorf("late-commit slowdown on store→load dependence = %.1f%%, want substantial",
			slowdown*100)
	}
}

func TestDisambiguationBlocksRAW(t *testing.T) {
	// A store followed by an overlapping load: the load must not issue its
	// requests before the store.
	b := trace.NewBuilder("raw")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(2), isa.V(3))
	b.VStore(isa.V(1), 0x8000)
	b.VLoad(isa.V(4), 0x8000)
	tr := b.Build()
	var storeBus, loadBus int64
	cfg := cfgN(16)
	cfg.Sink = probe.InsnFunc(func(e probe.Event) {
		switch e.Index {
		case 2:
			storeBus = e.Issue
		case 3:
			loadBus = e.Issue
		}
	})
	Run(tr, cfg)
	if loadBus < storeBus+64 {
		t.Errorf("overlapping load issued at %d before store finished its requests (%d+64)",
			loadBus, storeBus)
	}
}

func TestDisjointLoadPassesStore(t *testing.T) {
	// A store with unready data followed by a disjoint load: the load
	// issues first (out-of-order memory issue).
	b := trace.NewBuilder("pass")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(0), 0x100000)                        // slow producer
	b.Vector(isa.OpVMul, isa.V(1), isa.V(0), isa.V(2)) // waits on load
	b.VStore(isa.V(1), 0x8000)                         // data ready late
	b.VLoad(isa.V(4), 0x40000)                         // disjoint, independent
	tr := b.Build()
	var storeBus, loadBus int64
	cfg := cfgN(16)
	cfg.Sink = probe.InsnFunc(func(e probe.Event) {
		switch e.Index {
		case 3:
			storeBus = e.Issue
		case 4:
			loadBus = e.Issue
		}
	})
	Run(tr, cfg)
	if loadBus >= storeBus {
		t.Errorf("disjoint load (bus %d) failed to pass the blocked store (bus %d)",
			loadBus, storeBus)
	}
}

func TestQueueDepthMattersLittle(t *testing.T) {
	// Fig 5: OOOVA-128 barely improves over OOOVA-16.
	tr := independentLoads(80, 64)
	c16 := Run(tr, cfgN(16)).Stats.Cycles
	cfg128 := cfgN(16)
	cfg128.QueueSlots = 128
	c128 := Run(tr, cfg128).Stats.Cycles
	if c128 > c16 {
		t.Errorf("deeper queues slowed execution: %d vs %d", c128, c16)
	}
	if gain := float64(c16-c128) / float64(c16); gain > 0.15 {
		t.Errorf("queue 16→128 gain %.1f%% unexpectedly large", gain*100)
	}
}

func TestCommitWidthAndROBBound(t *testing.T) {
	// A long scalar stream is bounded below by ROB drain at the commit
	// width and by the 1-per-cycle decode.
	b := trace.NewBuilder("scalars")
	for i := 0; i < 500; i++ {
		b.Scalar(isa.OpAAdd, isa.A(i%8), isa.A((i+1)%8), isa.A((i+2)%8))
	}
	tr := b.Build()
	st := Run(tr, cfgN(16)).Stats
	if st.Cycles < 500 {
		t.Errorf("cycles = %d < instruction count: decode is 1/cycle", st.Cycles)
	}
}

func TestBranchMispredictBubbles(t *testing.T) {
	// Alternating-direction branches defeat the 2-bit counters; the run
	// with noisy branches must be slower than with steady ones.
	mk := func(alternating bool) *trace.Trace {
		b := trace.NewBuilder("br")
		for i := 0; i < 200; i++ {
			b.Scalar(isa.OpAAdd, isa.A(0), isa.A(1), isa.A(2))
			taken := true
			if alternating {
				taken = i%2 == 0
			}
			b.SetPC(0x100)
			b.Branch(0x40, taken)
			b.SetPC(uint64(0x200 + i*8))
		}
		return b.Build()
	}
	steady := Run(mk(false), cfgN(16)).Stats
	noisy := Run(mk(true), cfgN(16)).Stats
	if noisy.Cycles <= steady.Cycles {
		t.Errorf("alternating branches (%d cycles) not slower than steady (%d)",
			noisy.Cycles, steady.Cycles)
	}
	if noisy.Mispredicts <= steady.Mispredicts {
		t.Errorf("mispredicts: noisy %d <= steady %d", noisy.Mispredicts, steady.Mispredicts)
	}
}

func TestStateAccountingConsistent(t *testing.T) {
	tr := independentLoads(30, 64)
	st := Run(tr, cfgN(16)).Stats
	if st.States.Total() != st.Cycles {
		t.Errorf("state total %d != cycles %d", st.States.Total(), st.Cycles)
	}
	if st.States.MemIdleCycles()+st.MemPortBusy != st.Cycles {
		t.Errorf("mem idle %d + busy %d != cycles %d",
			st.States.MemIdleCycles(), st.MemPortBusy, st.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	b := trace.NewBuilder("det")
	b.SetVL(48, isa.A(0))
	for i := 0; i < 60; i++ {
		b.VLoad(isa.V(i%8), uint64(0x10000+i*0x800))
		b.Vector(isa.OpVMul, isa.V((i+1)%8), isa.V(i%8), isa.V((i+3)%8))
		if i%5 == 0 {
			b.VStore(isa.V((i+1)%8), uint64(0x600000+i*0x800))
		}
	}
	tr := b.Build()
	a := Run(tr, cfgN(12)).Stats
	c := Run(tr, cfgN(12)).Stats
	if a.Cycles != c.Cycles || a.States != c.States || a.MemRequests != c.MemRequests {
		t.Error("nondeterministic simulation")
	}
}

func TestRenameTablesStayConsistent(t *testing.T) {
	tr := independentLoads(100, 32)
	res := Run(tr, cfgN(10))
	for _, tb := range res.Tables {
		if err := tb.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.PhysVRegs != 16 || c.QueueSlots != 16 || c.ROBSize != 64 ||
		c.CommitWidth != 4 || c.MemLatency != 50 {
		t.Errorf("defaults = %+v", c)
	}
	if DefaultConfig().Name() != "OOOVA" {
		t.Errorf("name = %q", DefaultConfig().Name())
	}
	le := DefaultConfig()
	le.LoadElim = ElimSLEVLE
	if le.Name() != "OOOVA+SLE+VLE" {
		t.Errorf("name = %q", le.Name())
	}
}
