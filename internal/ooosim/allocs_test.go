//go:build !race

// The allocation regression guards live behind !race because the race
// detector instruments allocations and would trip the bounds.

package ooosim

import (
	"runtime"
	"testing"

	"oovec/internal/refsim"
	"oovec/internal/tgen"
)

// allocsTrace is a mixed scalar/vector workload of 8000 instructions.
func allocsTrace() *tgen.Preset {
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = 8000
	return &p
}

// TestRunAllocationBound guards the zero-allocation hot path: a full
// OOOVA run over 8000 instructions must stay within a small constant
// allocation budget (machine construction plus amortised interval-list
// growth) — i.e. no per-instruction allocations. The seed simulator spent
// roughly two allocations per instruction here.
func TestRunAllocationBound(t *testing.T) {
	tr := tgen.Generate(*allocsTrace())
	cfg := DefaultConfig()
	Run(tr, cfg) // warm up any lazy runtime state

	const bound = 400 // ~0.05 allocs/insn; the seed needed ~2/insn
	avg := testing.AllocsPerRun(5, func() {
		Run(tr, cfg)
	})
	if avg > bound {
		t.Errorf("ooosim.Run allocated %.0f times for %d insns, want <= %d",
			avg, tr.Len(), bound)
	}
}

// TestRefRunAllocationBound is the same guard for the reference simulator.
func TestRefRunAllocationBound(t *testing.T) {
	tr := tgen.Generate(*allocsTrace())
	cfg := refsim.DefaultConfig()
	refsim.Run(tr, cfg)

	const bound = 200
	avg := testing.AllocsPerRun(5, func() {
		refsim.Run(tr, cfg)
	})
	if avg > bound {
		t.Errorf("refsim.Run allocated %.0f times for %d insns, want <= %d",
			avg, tr.Len(), bound)
	}
}

// TestMachineReuseAllocationBound guards the Reset path: a reused machine
// must allocate almost nothing beyond the interval bookkeeping.
func TestMachineReuseAllocationBound(t *testing.T) {
	tr := tgen.Generate(*allocsTrace())
	cfg := DefaultConfig()
	mm := NewMachine(cfg)
	mm.Run(tr)

	const bound = 300
	avg := testing.AllocsPerRun(5, func() {
		mm.Run(tr)
	})
	if avg > bound {
		t.Errorf("reused Machine.Run allocated %.0f times for %d insns, want <= %d",
			avg, tr.Len(), bound)
	}
}

// bytesPerRun measures the average heap bytes allocated per call of fn.
// TotalAlloc is cumulative (GC never decreases it), so the delta is exact
// for a single-goroutine measurement.
func bytesPerRun(runs int, fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
}

// TestMachineReuseBytesBound guards the bytes/op of the pooled path the
// experiment drivers and sweep grids run on. A fresh-machine OOOVA run
// costs ~2 MB (machine construction, allocator interval lists, breakdown
// edges); a reused machine with trace-sized preallocation must stay under
// a small constant so the regression cannot silently return.
func TestMachineReuseBytesBound(t *testing.T) {
	tr := tgen.Generate(*allocsTrace())
	mm := NewMachine(DefaultConfig())
	mm.Run(tr) // reach steady state: reserve + first-run growth

	const bound = 64 << 10 // 64 KiB; steady state measures ~1 KiB
	per := bytesPerRun(5, func() { mm.Run(tr) })
	if per > bound {
		t.Errorf("reused Machine.Run allocated %d B/run for %d insns, want <= %d",
			per, tr.Len(), bound)
	}
}

// TestRefMachineReuseBytesBound is the same guard for the reference
// simulator's pooled path.
func TestRefMachineReuseBytesBound(t *testing.T) {
	tr := tgen.Generate(*allocsTrace())
	mm := refsim.NewMachine(refsim.DefaultConfig())
	mm.Run(tr)

	const bound = 64 << 10
	per := bytesPerRun(5, func() { mm.Run(tr) })
	if per > bound {
		t.Errorf("reused refsim Machine.Run allocated %d B/run for %d insns, want <= %d",
			per, tr.Len(), bound)
	}
}
