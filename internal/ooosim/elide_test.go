package ooosim

import (
	"testing"

	"oovec/internal/isa"
	"oovec/internal/rob"
	"oovec/internal/trace"
)

func elideCfg() Config {
	c := DefaultConfig()
	c.PhysVRegs = 32
	c.ElideDeadSpillStores = true
	return c
}

func TestDeadSpillStoreElided(t *testing.T) {
	// Two spill stores to the same slot with no intervening reader: the
	// first is dead and must never issue requests.
	b := trace.NewBuilder("dead")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x900000)
	b.Vector(isa.OpVMul, isa.V(3), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(3), 0x900000) // overwrites the dead spill
	tr := b.Build()

	st := Run(tr, elideCfg()).Stats
	if st.ElidedStores != 1 {
		t.Errorf("elided = %d, want 1", st.ElidedStores)
	}
	if st.ElidedRequests != 64 {
		t.Errorf("elided requests = %d, want 64", st.ElidedRequests)
	}
	base := Run(tr, cfgN(32)).Stats
	if st.MemRequests != base.MemRequests-64 {
		t.Errorf("traffic = %d, want %d", st.MemRequests, base.MemRequests-64)
	}
}

func TestLiveSpillStoreNotElided(t *testing.T) {
	// A reload consumes the spill before the overwrite: the store is live.
	b := trace.NewBuilder("live")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x900000)
	b.SpillLoad(isa.V(4), 0x900000) // reader: forces the store to issue
	b.Vector(isa.OpVMul, isa.V(3), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(3), 0x900000)
	tr := b.Build()
	st := Run(tr, elideCfg()).Stats
	if st.ElidedStores != 0 {
		t.Errorf("elided = %d, want 0 (spill was read)", st.ElidedStores)
	}
}

func TestPartialOverlapDoesNotElide(t *testing.T) {
	// A store to a different (partially overlapping) range must not count
	// as an overwrite of the slot.
	b := trace.NewBuilder("partial")
	b.SetVL(64, isa.A(0))
	b.SpillStore(isa.V(1), 0x900000)
	b.SetVL(16, isa.A(1))
	b.SpillStore(isa.V(2), 0x900040) // different extent: no exact-slot kill
	tr := b.Build()
	st := Run(tr, elideCfg()).Stats
	if st.ElidedStores != 0 {
		t.Errorf("elided = %d, want 0 (ranges differ)", st.ElidedStores)
	}
}

func TestNonSpillStoresNeverElided(t *testing.T) {
	b := trace.NewBuilder("plain")
	b.SetVL(64, isa.A(0))
	b.VStore(isa.V(1), 0x200000)
	b.VStore(isa.V(2), 0x200000) // same address, but not spill code
	tr := b.Build()
	st := Run(tr, elideCfg()).Stats
	if st.ElidedStores != 0 {
		t.Errorf("elided = %d, want 0 (not spill code)", st.ElidedStores)
	}
}

func TestElisionDisabledByDefault(t *testing.T) {
	b := trace.NewBuilder("off")
	b.SetVL(64, isa.A(0))
	b.SpillStore(isa.V(1), 0x900000)
	b.SpillStore(isa.V(2), 0x900000)
	tr := b.Build()
	st := Run(tr, cfgN(32)).Stats
	if st.ElidedStores != 0 {
		t.Error("elision active without the flag")
	}
}

func TestElisionInactiveUnderLateCommit(t *testing.T) {
	b := trace.NewBuilder("late")
	b.SetVL(64, isa.A(0))
	b.SpillStore(isa.V(1), 0x900000)
	b.SpillStore(isa.V(2), 0x900000)
	tr := b.Build()
	cfg := elideCfg()
	cfg.Commit = rob.PolicyLate
	st := Run(tr, cfg).Stats
	if st.ElidedStores != 0 {
		t.Error("late commit executes stores at the ROB head; nothing to elide")
	}
}

func TestElisionOnSpillHeavyLoop(t *testing.T) {
	// A loop that re-spills the same slots every iteration without reading
	// them back until the end: most spill stores are dead.
	b := trace.NewBuilder("loop")
	b.SetVL(64, isa.A(0))
	const slots = 4
	for i := 0; i < 24; i++ {
		b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
		b.SpillStore(isa.V(1), uint64(0x900000+(i%slots)*0x2000))
	}
	for s := 0; s < slots; s++ {
		b.SpillLoad(isa.V(3), uint64(0x900000+s*0x2000))
		b.VStore(isa.V(3), uint64(0x200000+s*0x2000))
	}
	tr := b.Build()
	base := Run(tr, cfgN(32)).Stats
	el := Run(tr, elideCfg()).Stats
	// 24 spill stores, 4 slots, the last write per slot is live: 20 dead.
	if el.ElidedStores != 20 {
		t.Errorf("elided = %d, want 20", el.ElidedStores)
	}
	if el.MemRequests >= base.MemRequests {
		t.Error("elision did not reduce traffic")
	}
	// The win is traffic (the paper frames traffic reduction as a
	// multiprocessor-level benefit); cycles on an unloaded bus may move a
	// few percent either way from placement-order differences.
	if float64(el.Cycles) > 1.03*float64(base.Cycles) {
		t.Errorf("elision slowed execution significantly: %d vs %d", el.Cycles, base.Cycles)
	}
}

func TestElisionDeterministic(t *testing.T) {
	tr := spillTrace(12)
	cfg := elideCfg()
	a := Run(tr, cfg).Stats
	b := Run(tr, cfg).Stats
	if a.Cycles != b.Cycles || a.ElidedStores != b.ElidedStores {
		t.Error("nondeterministic elision")
	}
}

func TestElisionComposesWithVLE(t *testing.T) {
	// Elision removes dead spill stores; VLE removes the redundant reloads.
	tr := spillTrace(12)
	cfg := elideCfg()
	cfg.LoadElim = ElimSLEVLE
	// VLE requires renaming at the dependence stage; combine with early
	// commit elision.
	cfg.Commit = rob.PolicyEarly
	st := Run(tr, cfg).Stats
	if st.EliminatedLoads == 0 {
		t.Error("VLE inactive alongside elision")
	}
	base := cfgN(32)
	baseSt := Run(tr, base).Stats
	if st.MemRequests >= baseSt.MemRequests {
		t.Error("combined optimisations did not reduce traffic")
	}
}
