package ooosim

import "sync"

// MachinePool recycles Machines across concurrent borrowers — the checkout/
// checkin primitive the ovserve request handlers use so a long-lived server
// amortises machine construction across requests the way the experiment
// drivers amortise it across a grid. Individual Machines are still
// single-goroutine objects; the pool only hands each one to one borrower at
// a time. The zero value is ready to use.
type MachinePool struct {
	p sync.Pool
}

// Get checks out a machine reset to cfg, building one if the pool is empty.
// Return it with Put when the run is finished.
func (mp *MachinePool) Get(cfg Config) *Machine {
	if m, ok := mp.p.Get().(*Machine); ok {
		m.Reset(cfg)
		return m
	}
	return NewMachine(cfg)
}

// Put checks a machine back in for a later Get to reuse.
func (mp *MachinePool) Put(m *Machine) {
	if m != nil {
		mp.p.Put(m)
	}
}
