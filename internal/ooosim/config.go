// Package ooosim simulates the OOOVA — the dynamic, out-of-order, register-
// renaming vector architecture that is the paper's central proposal (§2.2),
// including the precise-trap commit model of §5 and the dynamic load
// elimination technique of §6.
//
// Pipeline structure (paper Figures 1, 2 and 10):
//
//	Fetch → Decode/Rename → {A queue, S queue, V queue, M queue} → units
//
// Instructions flow in order through Fetch and Decode/Rename, where four
// mapping tables (A, S, V, mask) translate architectural registers into
// physical registers and a reorder-buffer slot is allocated. The A, S and V
// queues issue out of order as operands become ready. Memory instructions
// traverse the M queue's three in-order stages (Issue/RF, Range,
// Dependence) and then issue memory requests out of order, subject to
// range-based dynamic memory disambiguation.
//
// Under dynamic load elimination (§6.2), all instructions that use a vector
// register are renamed at the Dependence stage instead of at decode, so
// they all pass in order through the memory front pipeline; loads whose
// memory tag exactly matches a physical register's tag are eliminated with
// a rename-table update.
package ooosim

import (
	"oovec/internal/probe"
	"oovec/internal/rob"
)

// ElimMode selects the §6 dynamic load elimination configuration.
type ElimMode uint8

const (
	// ElimNone disables load elimination (the plain OOOVA).
	ElimNone ElimMode = iota
	// ElimSLE eliminates scalar loads only (the paper's "SLE").
	ElimSLE
	// ElimSLEVLE eliminates scalar and vector loads ("SLE+VLE").
	ElimSLEVLE
)

// String names the mode as the paper does.
func (m ElimMode) String() string {
	switch m {
	case ElimSLE:
		return "SLE"
	case ElimSLEVLE:
		return "SLE+VLE"
	}
	return "none"
}

// Config parameterises the OOOVA.
type Config struct {
	// PhysVRegs is the number of physical vector registers (paper sweeps
	// 9–64; 16 is the headline configuration).
	PhysVRegs int
	// PhysARegs and PhysSRegs are the scalar physical register file sizes
	// (64 each in the paper).
	PhysARegs int
	PhysSRegs int
	// PhysMRegs is the mask physical register file size (8 in the paper).
	PhysMRegs int
	// QueueSlots is the instruction queue depth (16, or 128 for OOOVA-128).
	QueueSlots int
	// ROBSize is the reorder buffer capacity (64).
	ROBSize int
	// CommitWidth is the maximum commits per cycle (4).
	CommitWidth int
	// MemLatency is the main-memory latency in cycles (default 50).
	MemLatency int64
	// ScalarMemLatency is the latency of scalar references, which hit the
	// scalar data cache that machines of this class carried (default 6).
	ScalarMemLatency int64
	// Commit selects the early (§2.2) or late (§5, precise traps) policy.
	Commit rob.Policy
	// LoadElim selects the §6 configuration.
	LoadElim ElimMode
	// MispredictPenalty is the front-end refill bubble after a control
	// misprediction (cycles). Default 3 (fetch + decode + redirect).
	MispredictPenalty int64
	// CollectRecords, when true, retains the reorder-buffer rename records
	// so precise-trap rollback can be demonstrated (costs memory).
	CollectRecords bool

	// Ablation switches (all default off; used by the ablation benchmarks
	// to probe the design decisions DESIGN.md calls out).

	// ChainLoads lets memory loads chain into functional units, which
	// neither the C3400 nor the paper's OOOVA supports. Ablation: how much
	// of the OOOVA's advantage would load chaining have provided?
	ChainLoads bool
	// NoStoreTags disables tagging the stored register on stores (§6.1).
	// Without store tags, spill store → reload pairs cannot match, which
	// removes most of the dynamic load elimination benefit.
	NoStoreTags bool
	// BankedPorts runs the OOOVA with the reference machine's banked
	// register-file ports (pairs of physical registers sharing 2 read +
	// 1 write port) instead of the paper's dedicated per-register ports.
	// Ablation: renaming shuffles the compiler's port scheduling, so
	// banking induces heavy conflicts — the reason §2.2 changed the ports.
	BankedPorts bool
	// ExactInvalidation makes stores invalidate only exactly-matching tags
	// instead of all overlapping tags. UNSAFE — partial overwrites leave
	// stale tags that would return wrong data in a real machine; the
	// ablation measures how many additional (incorrect) eliminations the
	// conservative policy forgoes.
	ExactInvalidation bool
	// ElideDeadSpillStores enables the paper's §6 future-work idea
	// ("relaxing compatibility could lead to removing some spill stores"):
	// a spill store held in the store buffer is elided when a later spill
	// store overwrites exactly the same slot before any overlapping access
	// consumed it. Relaxes strict binary compatibility (the memory image
	// no longer reflects every spill); effective under early commit only —
	// late commit executes stores at the ROB head, before the overwrite
	// arrives.
	ElideDeadSpillStores bool
	// Sink, when non-nil, receives per-instruction pipeline lifecycle
	// events and stall-cause notifications (package probe). Observation
	// only: attaching a sink never changes the run's RunStats — everything
	// it is told is accumulated into the stats regardless.
	Sink probe.Sink
}

// DefaultConfig returns the paper's headline OOOVA configuration: 16
// physical vector registers, 16-slot queues, 64-entry ROB, 4-wide commit,
// 50-cycle memory, early commit.
func DefaultConfig() Config {
	return Config{
		PhysVRegs:         16,
		PhysARegs:         64,
		PhysSRegs:         64,
		PhysMRegs:         8,
		QueueSlots:        16,
		ROBSize:           64,
		CommitWidth:       4,
		MemLatency:        50,
		ScalarMemLatency:  6,
		Commit:            rob.PolicyEarly,
		LoadElim:          ElimNone,
		MispredictPenalty: 3,
	}
}

// WithDefaults returns the configuration with every zero field filled with
// the paper's value — exactly what the simulator runs with. Callers that
// record configurations (the sweep CSV writer) use it so reported
// parameters cannot drift from the simulated ones.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills zero fields with the paper's values.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PhysVRegs == 0 {
		c.PhysVRegs = d.PhysVRegs
	}
	if c.PhysARegs == 0 {
		c.PhysARegs = d.PhysARegs
	}
	if c.PhysSRegs == 0 {
		c.PhysSRegs = d.PhysSRegs
	}
	if c.PhysMRegs == 0 {
		c.PhysMRegs = d.PhysMRegs
	}
	if c.QueueSlots == 0 {
		c.QueueSlots = d.QueueSlots
	}
	if c.ROBSize == 0 {
		c.ROBSize = d.ROBSize
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.MemLatency == 0 {
		c.MemLatency = d.MemLatency
	}
	if c.ScalarMemLatency == 0 {
		c.ScalarMemLatency = d.ScalarMemLatency
	}
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = d.MispredictPenalty
	}
	return c
}

// Name renders a short configuration label, e.g. "OOOVA-16/early".
func (c Config) Name() string {
	label := "OOOVA"
	if c.LoadElim != ElimNone {
		label += "+" + c.LoadElim.String()
	}
	return label
}
