package ooosim

import (
	"fmt"

	"oovec/internal/bpred"
	"oovec/internal/iq"
	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/probe"
	"oovec/internal/rename"
	"oovec/internal/rob"
	"oovec/internal/sched"
	"oovec/internal/trace"
	"oovec/internal/vregfile"
)

// portFile is the vector register file port model: the paper's dedicated
// per-register ports (vregfile.FlatFile), or — for the ablation showing why
// the paper abandoned it — the reference machine's banked organisation.
type portFile interface {
	Acquire(reads []int, write int, earliest, dur int64) int64
	Peek(reads []int, write int, earliest int64) int64
	ConflictCycles() int64
	Reset()
}

// Result bundles the measurements of one OOOVA run with the optional
// reorder-buffer rename records (for precise-trap rollback demos).
type Result struct {
	Stats *metrics.RunStats
	// Records holds one rename record per instruction when
	// Config.CollectRecords is set (index-aligned with the trace).
	Records []rename.Record
	// Tables exposes the final rename tables (for rollback demos/tests).
	Tables map[isa.RegClass]*rename.Table
}

// Run simulates the trace on the OOOVA and returns its measurements.
func Run(t *trace.Trace, cfg Config) *Result {
	m := newMachine(cfg)
	return m.run(t)
}

// Machine is a reusable OOOVA simulator instance. Unlike the one-shot Run,
// a Machine amortises its internal state (rename tables, queues, allocator
// storage) across runs: Reset restores the power-on state without
// reallocating when the configuration's structural sizes are unchanged.
// Machines for up to maxCachedShapes previously seen shapes are retained,
// so a worker sweeping a register-count grid rebuilds each shape once, not
// once per grid point.
//
// A Machine is not safe for concurrent use; give each worker its own.
type Machine struct {
	m     *machine
	dirty bool
	// shapes retires machines by structural shape when Reset switches
	// configuration, so revisiting a shape reuses its storage.
	shapes map[machineShape]*machine
}

// maxCachedShapes bounds the retired-machine cache: each retired machine
// holds megabytes of state, and a caller resetting across an unbounded
// structural sweep must not accumulate them all. The repo's grids visit at
// most ten shapes; beyond the cap, uncached shapes simply rebuild.
const maxCachedShapes = 16

// machineShape is the comparable key of a configuration's structural sizes
// — exactly the fields sameShape compares.
type machineShape struct {
	physV, physA, physS, physM      int
	queueSlots, robSize, commitWide int
	banked                          bool
}

// shapeOf extracts the structural shape of a resolved configuration.
func shapeOf(cfg Config) machineShape {
	return machineShape{
		physV: cfg.PhysVRegs, physA: cfg.PhysARegs,
		physS: cfg.PhysSRegs, physM: cfg.PhysMRegs,
		queueSlots: cfg.QueueSlots, robSize: cfg.ROBSize,
		commitWide: cfg.CommitWidth, banked: cfg.BankedPorts,
	}
}

// NewMachine builds a reusable machine for the configuration.
func NewMachine(cfg Config) *Machine {
	return &Machine{m: newMachine(cfg)}
}

// Run simulates the trace, resetting the machine first if it has already
// run. The returned Result's Tables and Records alias machine state and are
// invalidated by the next Run or Reset; callers that retain them (the
// precise-trap demos) should use the package-level Run instead.
//
//ovlint:hotpath the reusable-machine run path is the sweep inner loop and must stay allocation-free
func (mm *Machine) Run(t *trace.Trace) *Result {
	if mm.dirty {
		mm.Reset(mm.m.cfg)
	}
	mm.dirty = true
	mm.m.reserveFor(t)
	return mm.m.run(t)
}

// Reset restores the power-on state under a (possibly different)
// configuration. State is reused when cfg keeps the same structural sizes
// (register files, queues, ROB, port organisation); otherwise the current
// machine is retired to the shape cache and the new shape's machine is
// revived from it — or built once, on first encounter.
//
//ovlint:coldpath shape changes rebuild storage once per shape, amortised over the sweep
func (mm *Machine) Reset(cfg Config) {
	cfg = cfg.WithDefaults()
	if mm.m.sameShape(cfg) {
		mm.m.reset(cfg)
	} else {
		if mm.shapes == nil {
			mm.shapes = make(map[machineShape]*machine)
		}
		if len(mm.shapes) < maxCachedShapes {
			mm.shapes[shapeOf(mm.m.cfg)] = mm.m
		}
		if prev, ok := mm.shapes[shapeOf(cfg)]; ok {
			prev.reset(cfg)
			mm.m = prev
		} else {
			mm.m = newMachine(cfg)
		}
	}
	mm.dirty = false
}

// run executes the whole trace and assembles the result.
func (m *machine) run(t *trace.Trace) *Result {
	if m.cfg.CollectRecords && cap(m.records) < t.Len() {
		m.records = make([]rename.Record, 0, t.Len()) //ovlint:allow hotpath record collection is a precise-trap debug mode, off in sweeps; growth is once per trace length
	}
	for i := range t.Insns {
		m.step(i, &t.Insns[i])
	}
	return m.finish(t)
}

// reserveFor sizes the big growable buffers from the trace so a reused
// machine's steady-state run never grows them: an instruction books at
// most one interval on its issue queue's port allocator, a vector
// instruction at most one interval on each FU allocator, a memory
// instruction one bus interval and one slot per memory-front stage, and a
// store at most one pending-store record. Called on the Machine (reuse)
// path only — a one-shot Run grows organically instead of paying the
// upper bound.
//
//ovlint:coldpath one reservation pass per run, amortised over the whole trace
func (m *machine) reserveFor(t *trace.Trace) {
	nA, nS, nV, nMem, nStores := 0, 0, 0, 0, 0
	for i := range t.Insns {
		switch op := t.Insns[i].Op; op.ExecUnit() {
		case isa.UnitA, isa.UnitCtl:
			nA++
		case isa.UnitS:
			nS++
		case isa.UnitV:
			nV++
		case isa.UnitMem:
			nMem++
			if op.IsStore() {
				nStores++
			}
		}
	}
	m.aQ.Reserve(nA + 1)
	m.sQ.Reserve(nS + 1)
	m.vQ.Reserve(nV + 1)
	nFront := nMem
	if m.cfg.LoadElim == ElimSLEVLE {
		// §6.2: every vector-register user advances through the memory
		// front pipeline, not just memory instructions.
		nFront += nV
	}
	m.mQ.Reserve(nFront + 1)
	m.fu1.Reserve(nV + 1)
	m.fu2.Reserve(nV + 1)
	m.msched.reserve(nMem+1, nStores+1)
}

// machine is the OOOVA simulation state.
type machine struct {
	cfg Config //ovlint:config a checkpoint is only restored into a machine already reset to the identical configuration

	// tables is indexed by register class (RegNone unused); a flat array
	// replaces a map lookup on every rename and operand lookup.
	tables [isa.NumRegClasses]*rename.Table

	// Physical register value-availability timing.
	aReady  []int64
	sReady  []int64
	vTiming []vregfile.Timing
	mTiming []vregfile.Timing

	// Memory tags (§6), indexed by physical register.
	vTags, sTags, aTags *rename.TagFile

	ports  portFile
	fu1    *sched.Gap
	fu2    *sched.Gap
	msched *memScheduler

	aQ, sQ, vQ *iq.Queue
	mQ         *iq.MemQueue
	rob        *rob.ROB
	pred       *bpred.Predictor

	readX, writeX int64 //ovlint:config crossbar latencies, fixed by the ISA at construction

	prevFetch    int64
	nextFetchMin int64
	prevDecode   int64
	lastVLReady  int64
	lastCycle    int64

	eliminatedLoads    int64
	eliminatedRequests int64
	elidedStores       int64
	elidedRequests     int64
	spillPend          map[[2]uint64]int

	// stalls and occ accumulate the per-cause stall attribution and the
	// per-structure occupancy histograms. Always on (cheap, deterministic,
	// allocation-free), so a run's stats never depend on whether a probe
	// sink was attached.
	stalls metrics.StallBreakdown
	occ    metrics.Occupancy

	// suppressFrom, when >= 0, marks the first instruction of a squashed
	// window (fault injection): those instructions never commit, so their
	// old physical registers are never released.
	suppressFrom int

	records []rename.Record

	// Per-instruction scratch buffers. Keeping them on the (heap-allocated)
	// machine rather than on step's stack keeps the hot path free of
	// escape-analysis allocations when the slices cross interface calls.
	srcBuf   [4]srcOp   //ovlint:config per-instruction scratch, dead between steps
	vReadBuf [4]int     //ovlint:config per-instruction scratch, dead between steps
	portBuf  [1]int     //ovlint:config per-instruction scratch, dead between steps
	regBuf   [4]isa.Reg //ovlint:config per-instruction scratch, dead between steps

	// bdScratch is the reusable state-breakdown edge buffer; without it,
	// finish allocates two edges per busy interval on every run.
	bdScratch metrics.Scratch //ovlint:config per-run scratch, rebuilt from the interval lists by finish
}

// srcOp is a resolved source operand (class + physical register).
type srcOp struct {
	class isa.RegClass
	phys  int
}

// newPortFile selects the register-file port model.
func newPortFile(cfg Config) portFile {
	if cfg.BankedPorts {
		return vregfile.NewBankedFile(cfg.PhysVRegs)
	}
	return vregfile.NewFlatFile(cfg.PhysVRegs)
}

func newMachine(cfg Config) *machine {
	cfg = cfg.WithDefaults()
	m := &machine{
		cfg:     cfg,
		aReady:  make([]int64, cfg.PhysARegs),
		sReady:  make([]int64, cfg.PhysSRegs),
		vTiming: make([]vregfile.Timing, cfg.PhysVRegs),
		mTiming: make([]vregfile.Timing, cfg.PhysMRegs),
		vTags:   rename.NewTagFile(cfg.PhysVRegs),
		sTags:   rename.NewTagFile(cfg.PhysSRegs),
		aTags:   rename.NewTagFile(cfg.PhysARegs),
		ports:   newPortFile(cfg),
		fu1:     sched.NewGap(),
		fu2:     sched.NewGap(),
		msched:  newMemScheduler(cfg.QueueSlots),
		aQ:      iq.NewQueue(cfg.QueueSlots),
		sQ:      iq.NewQueue(cfg.QueueSlots),
		vQ:      iq.NewQueue(cfg.QueueSlots),
		mQ:      iq.NewMemQueue(cfg.QueueSlots),
		rob:     rob.New(cfg.ROBSize, cfg.CommitWidth),
		pred:    bpred.New(),
		readX:   int64(isa.ReadXbar(isa.MachineOOO)),
		writeX:  int64(isa.WriteXbar(isa.MachineOOO)),

		prevFetch:    -1,
		prevDecode:   -1,
		suppressFrom: -1,
	}
	m.tables[isa.RegA] = rename.MustNewTable(isa.RegA, cfg.PhysARegs)
	m.tables[isa.RegS] = rename.MustNewTable(isa.RegS, cfg.PhysSRegs)
	m.tables[isa.RegV] = rename.MustNewTable(isa.RegV, cfg.PhysVRegs)
	m.tables[isa.RegM] = rename.MustNewTable(isa.RegM, cfg.PhysMRegs)
	if cfg.ElideDeadSpillStores {
		m.spillPend = make(map[[2]uint64]int)
	}
	return m
}

// sameShape reports whether cfg keeps every structural size of the current
// configuration, so reset can reuse the allocated state.
func (m *machine) sameShape(cfg Config) bool {
	c := &m.cfg
	return cfg.PhysVRegs == c.PhysVRegs && cfg.PhysARegs == c.PhysARegs &&
		cfg.PhysSRegs == c.PhysSRegs && cfg.PhysMRegs == c.PhysMRegs &&
		cfg.QueueSlots == c.QueueSlots && cfg.ROBSize == c.ROBSize &&
		cfg.CommitWidth == c.CommitWidth && cfg.BankedPorts == c.BankedPorts
}

// reset restores the power-on state in place; cfg must satisfy sameShape.
//
//ovlint:coldpath once per run, amortised over the whole trace
func (m *machine) reset(cfg Config) {
	m.cfg = cfg
	for _, tb := range m.tables {
		if tb != nil {
			tb.Reset()
		}
	}
	for i := range m.aReady {
		m.aReady[i] = 0
	}
	for i := range m.sReady {
		m.sReady[i] = 0
	}
	for i := range m.vTiming {
		m.vTiming[i] = vregfile.Timing{}
	}
	for i := range m.mTiming {
		m.mTiming[i] = vregfile.Timing{}
	}
	m.vTags.Reset()
	m.sTags.Reset()
	m.aTags.Reset()
	m.ports.Reset()
	m.fu1.Reset()
	m.fu2.Reset()
	m.msched.reset()
	m.aQ.Reset()
	m.sQ.Reset()
	m.vQ.Reset()
	m.mQ.Reset()
	m.rob.Reset()
	m.pred.Reset()

	m.prevFetch, m.prevDecode = -1, -1
	m.nextFetchMin, m.lastVLReady, m.lastCycle = 0, 0, 0
	m.eliminatedLoads, m.eliminatedRequests = 0, 0
	m.elidedStores, m.elidedRequests = 0, 0
	m.stalls = metrics.StallBreakdown{}
	m.occ = metrics.Occupancy{}
	m.suppressFrom = -1
	m.records = m.records[:0]
	if cfg.ElideDeadSpillStores {
		if m.spillPend == nil {
			m.spillPend = make(map[[2]uint64]int)
		} else {
			clear(m.spillPend)
		}
	}
}

// tableMap exposes the class-indexed tables in the public map form.
func (m *machine) tableMap() map[isa.RegClass]*rename.Table {
	tm := make(map[isa.RegClass]*rename.Table, 4)
	for class, tb := range m.tables {
		if tb != nil {
			tm[isa.RegClass(class)] = tb
		}
	}
	return tm
}

func (m *machine) note(c int64) {
	if c > m.lastCycle {
		m.lastCycle = c
	}
}

// usesVReg reports whether the instruction reads or writes a vector
// register (the §6.2 criterion for renaming at the Dependence stage).
func usesVReg(in *isa.Instruction) bool {
	return in.Dst.Class == isa.RegV || in.Src1.Class == isa.RegV ||
		in.Src2.Class == isa.RegV
}

// scalarPhysReady returns the readiness of a scalar/mask physical register.
func (m *machine) scalarReadyFor(class isa.RegClass, phys int) int64 {
	switch class {
	case isa.RegA:
		return m.aReady[phys]
	case isa.RegS:
		return m.sReady[phys]
	}
	return 0
}

// allocDst renames the destination register, returning the rename record
// and the cycle the new physical register is available.
func (m *machine) allocDst(in *isa.Instruction) (rename.Record, int64) {
	tb := m.tables[in.Dst.Class]
	np, op, rdy, ok := tb.Allocate(int(in.Dst.Idx))
	if !ok {
		// Guaranteed impossible for numPhysical > numLogical: every prior
		// allocation's matching release has already been recorded.
		panic(fmt.Sprintf("ooosim: %v free list empty", in.Dst.Class)) //ovlint:allow hotpath panic path, unreachable in a valid run
	}
	return rename.Record{
		Class:     in.Dst.Class,
		Logical:   int(in.Dst.Idx),
		OldPhys:   op,
		NewPhys:   np,
		HasRename: true,
	}, rdy
}

// step processes one dynamic instruction through the full pipeline.
//
//ovlint:hotpath runs once per dynamic instruction; any allocation here multiplies by trace length
func (m *machine) step(idx int, in *isa.Instruction) {
	cfg := &m.cfg
	vl := int64(in.EffVL())
	elim := cfg.LoadElim

	// ---------------- Fetch ----------------
	fetch := m.prevFetch + 1
	if m.nextFetchMin > fetch {
		fetch = m.nextFetchMin
	}
	m.prevFetch = fetch

	// ---------------- Decode / Rename ----------------
	dec := fetch + 1
	if m.prevDecode+1 > dec {
		dec = m.prevDecode + 1
	}
	if c := m.rob.AdmitConstraint(); c > dec {
		m.stalls.ROBFull += c - dec
		if s := cfg.Sink; s != nil {
			s.Stall(probe.CauseROBFull, c-dec)
		}
		dec = c
	}
	var qAdmit int64
	var qFull *int64
	switch in.Op.ExecUnit() {
	case isa.UnitA, isa.UnitCtl:
		qAdmit, qFull = m.aQ.AdmitConstraint(), &m.stalls.IQFullA
	case isa.UnitS:
		qAdmit, qFull = m.sQ.AdmitConstraint(), &m.stalls.IQFullS
	case isa.UnitV:
		qAdmit, qFull = m.vQ.AdmitConstraint(), &m.stalls.IQFullV
	case isa.UnitMem:
		qAdmit, qFull = m.mQ.AdmitConstraint(), &m.stalls.IQFullM
	}
	if qAdmit > dec {
		*qFull += qAdmit - dec
		if s := cfg.Sink; s != nil {
			s.Stall(probe.CauseIQFull, qAdmit-dec)
		}
		dec = qAdmit
	}

	// §6.2: with vector load elimination, instructions touching vector
	// registers are renamed at the Dependence stage of the memory pipeline,
	// not at decode.
	vleDefer := elim == ElimSLEVLE && usesVReg(in)

	// Look up source physical registers before any destination rename (a
	// source naming the same architectural register reads the old mapping).
	srcs := m.srcBuf[:0]
	for _, r := range in.Reads(m.regBuf[:]) {
		srcs = append(srcs, srcOp{r.Class, m.tables[r.Class].Lookup(int(r.Idx))})
	}

	// Destination rename (deferred for vector-register users under VLE).
	var rec rename.Record
	var dstReadyAt int64
	writesReg := in.WritesReg()
	deferredAlloc := vleDefer && writesReg && in.Dst.Class == isa.RegV
	if writesReg && !deferredAlloc {
		rec, dstReadyAt = m.allocDst(in)
		if dstReadyAt > dec && !vleDefer {
			m.noteNoPhys(in.Dst.Class, dstReadyAt-dec)
			dec = dstReadyAt
		}
	}
	m.prevDecode = dec

	// Occupancy sampling: how full the reorder buffer and the target issue
	// queue were at the cycle this instruction cleared decode.
	m.occ.ROB.Observe(m.rob.Occupied(dec), cfg.ROBSize)
	switch in.Op.ExecUnit() {
	case isa.UnitA, isa.UnitCtl:
		m.occ.IQA.Observe(m.aQ.Occupied(dec), cfg.QueueSlots)
	case isa.UnitS:
		m.occ.IQS.Observe(m.sQ.Occupied(dec), cfg.QueueSlots)
	case isa.UnitV:
		m.occ.IQV.Observe(m.vQ.Occupied(dec), cfg.QueueSlots)
	case isa.UnitMem:
		m.occ.IQM.Observe(m.mQ.Occupied(dec), cfg.QueueSlots)
	}

	var issue, execStart, complete int64
	switch in.Op.ExecUnit() {
	case isa.UnitA, isa.UnitS:
		ready := dec + 1
		for _, s := range srcs {
			if r := m.scalarReadyFor(s.class, s.phys); r > ready {
				ready = r
			}
		}
		if dstReadyAt > ready {
			ready = dstReadyAt
		}
		q := m.aQ
		if in.Op.ExecUnit() == isa.UnitS {
			q = m.sQ
		}
		issue = q.Issue(dec+1, ready)
		lat := int64(isa.ExecLatency(in.Op))
		done := issue + lat
		if writesReg {
			switch in.Dst.Class {
			case isa.RegA:
				m.aReady[rec.NewPhys] = done
				if elim != ElimNone {
					m.aTags.Invalidate(rec.NewPhys)
				}
			case isa.RegS:
				m.sReady[rec.NewPhys] = done
				if elim != ElimNone {
					m.sTags.Invalidate(rec.NewPhys)
				}
			}
		}
		if in.Op == isa.OpSetVL || in.Op == isa.OpSetVS {
			m.lastVLReady = done
		}
		execStart, complete = issue, done

	case isa.UnitCtl:
		issue = m.aQ.Issue(dec+1, dec+1)
		resolve := issue + 1
		var mis bool
		switch in.Op {
		case isa.OpBranch:
			mis = m.pred.ResolveBranch(in.PC, in.Taken, in.Addr)
		case isa.OpJump:
			mis = m.pred.ResolveJump(in.PC, in.Addr)
		case isa.OpCall:
			mis = m.pred.Call(in.PC, in.Addr)
		case isa.OpReturn:
			mis = m.pred.Return(in.Addr)
		}
		if mis {
			m.nextFetchMin = resolve + cfg.MispredictPenalty
		}
		execStart, complete = issue, resolve

	case isa.UnitV:
		issue, execStart, complete = m.execVector(in, dec, vl, vleDefer, &rec)

	case isa.UnitMem:
		issue, execStart, complete = m.execMem(in, dec, vl, vleDefer, &rec)

	default: // nop
		issue, execStart, complete = dec+1, dec+1, dec+2
	}

	// ---------------- Commit ----------------
	readyC := complete
	if cfg.Commit == rob.PolicyEarly {
		readyC = execStart
	}
	commit := m.rob.Commit(readyC)
	if rec.HasRename && !(m.suppressFrom >= 0 && idx >= m.suppressFrom) {
		m.tables[rec.Class].Release(rec.OldPhys, commit)
	}
	if cfg.CollectRecords {
		m.records = append(m.records, rec)
	}
	m.note(complete)
	m.note(commit)

	if s := cfg.Sink; s != nil {
		s.Insn(probe.Event{
			Index: idx, Op: in.Op,
			Fetch: fetch, Decode: dec, Issue: issue,
			Exec: execStart, Complete: complete, Commit: commit,
		})
	}
}

// noteNoPhys charges free-list-empty stall cycles to the destination class.
//
//ovlint:hotpath called on the decode path when the free list is the constraint
func (m *machine) noteNoPhys(class isa.RegClass, cycles int64) {
	switch class {
	case isa.RegA:
		m.stalls.NoPhysA += cycles
	case isa.RegS:
		m.stalls.NoPhysS += cycles
	case isa.RegV:
		m.stalls.NoPhysV += cycles
	case isa.RegM:
		m.stalls.NoPhysM += cycles
	}
	if s := m.cfg.Sink; s != nil {
		s.Stall(probe.CauseNoPhysReg, cycles)
	}
}

// execVector handles vector computation instructions.
func (m *machine) execVector(in *isa.Instruction, dec, vl int64, vleDefer bool, rec *rename.Record) (issue, execStart, complete int64) {
	cfg := &m.cfg
	enterQ := dec + 1
	if vleDefer {
		// All vector-register users flow in order through the memory
		// pipeline's three stages and rename at the Dependence stage.
		depT := m.mQ.Advance(dec + 1)
		enterQ = depT + 1
	}
	var dstReadyAt int64
	if vleDefer && in.WritesReg() && in.Dst.Class == isa.RegV {
		*rec, dstReadyAt = m.allocDst(in)
	}

	ready := enterQ
	if m.lastVLReady > ready {
		ready = m.lastVLReady
	}
	if dstReadyAt > ready {
		ready = dstReadyAt
	}
	vReads := m.vReadBuf[:0]
	for _, r := range in.Reads(m.regBuf[:]) {
		switch r.Class {
		case isa.RegV:
			p := m.tables[isa.RegV].Lookup(int(r.Idx))
			vReads = append(vReads, p)
			tm := m.vTiming[p]
			if cfg.ChainLoads {
				tm.FromMem = false // ablation: pretend loads chain
			}
			if t := tm.ReadyFor(true); t > ready {
				ready = t
			}
		case isa.RegA, isa.RegS:
			p := m.tables[r.Class].Lookup(int(r.Idx))
			if t := m.scalarReadyFor(r.Class, p); t > ready {
				ready = t
			}
		case isa.RegM:
			p := m.tables[isa.RegM].Lookup(0)
			if t := m.mTiming[p].ReadyFor(true); t > ready {
				ready = t
			}
		}
	}
	issue = m.vQ.Issue(enterQ, ready)

	// Coordinate the functional unit and the register-file ports on a
	// common start cycle. Unit occupancy includes the vector startup dead
	// time.
	occ := vl + int64(isa.VectorStartup)
	vWrite := -1
	if in.Dst.Class == isa.RegV {
		vWrite = rec.NewPhys
	}
	start := issue + m.readX
	var fu *sched.Gap
	for {
		if in.Op.NeedsFU2() {
			fu = m.fu2
		} else if m.fu1.Peek(start, occ) <= m.fu2.Peek(start, occ) {
			fu = m.fu1
		} else {
			fu = m.fu2
		}
		s2 := fu.Peek(start, occ)
		if p := m.ports.Peek(vReads, vWrite, s2); p > s2 {
			start = p
			continue
		}
		start = s2
		break
	}
	fu.Allocate(start, occ)
	m.ports.Acquire(vReads, vWrite, start, occ)

	lat := int64(isa.ExecLatency(in.Op)) + int64(isa.VectorStartup)
	tm := vregfile.Timing{
		ChainStart: start + lat + m.writeX,
		Complete:   start + lat + m.writeX + vl - 1,
	}
	switch in.Dst.Class {
	case isa.RegV:
		m.vTiming[rec.NewPhys] = tm
		if cfg.LoadElim != ElimNone {
			m.vTags.Invalidate(rec.NewPhys)
		}
	case isa.RegM:
		m.mTiming[rec.NewPhys] = tm
	case isa.RegS:
		m.sReady[rec.NewPhys] = tm.Complete
		if cfg.LoadElim != ElimNone {
			m.sTags.Invalidate(rec.NewPhys)
		}
	}
	return issue, start, tm.Complete
}

// execMem handles all memory instructions, including the §6 elimination.
func (m *machine) execMem(in *isa.Instruction, dec, vl int64, vleDefer bool, rec *rename.Record) (issue, execStart, complete int64) {
	cfg := &m.cfg
	elim := cfg.LoadElim
	depT := m.mQ.Advance(dec + 1)
	rstart, rend := in.MemRange()
	isStore := in.Op.IsStore()
	isVector := in.Op.IsVector()
	taggable := in.Op != isa.OpVGather && in.Op != isa.OpVScatter
	occ := vl // bus occupancy: startup dead time + one request per element
	if isVector {
		occ += int64(isa.VectorStartup)
	}

	tag := rename.Tag{Start: rstart, End: rend, VL: uint16(vl), VS: in.VS,
		Sz: isa.ElemBytes, Valid: true}
	if !isVector {
		tag.VL, tag.VS = 1, 0
	}

	// ---- Vector load elimination (§6.1) ----
	if in.Op == isa.OpVLoad && elim == ElimSLEVLE {
		if match := m.vTags.FindExact(tag); match >= 0 {
			old := m.tables[isa.RegV].AliasTo(int(in.Dst.Idx), match)
			*rec = rename.Record{Class: isa.RegV, Logical: int(in.Dst.Idx),
				OldPhys: old, NewPhys: match, HasRename: true}
			m.eliminatedLoads++
			m.eliminatedRequests += vl
			// The load completes in "the time it takes to do the rename".
			m.msched.recordEliminated(rstart, rend, depT)
			m.mQ.Admit(depT)
			return depT, depT, depT + 1
		}
	}
	// ---- Scalar load elimination (SLE) ----
	if !isVector && in.Op.IsLoad() && elim != ElimNone {
		tf := m.sTags
		if in.Dst.Class == isa.RegA {
			tf = m.aTags
		}
		if match := tf.FindExact(tag); match >= 0 {
			// The value is copied register-to-register; the rename table is
			// not affected (§6.1). Completion is the copy latency.
			srcReady := m.scalarReadyFor(in.Dst.Class, match)
			done := depT + 1
			if srcReady > done {
				done = srcReady
			}
			if in.Dst.Class == isa.RegA {
				m.aReady[rec.NewPhys] = done
				m.aTags.Set(rec.NewPhys, tag)
			} else {
				m.sReady[rec.NewPhys] = done
				m.sTags.Set(rec.NewPhys, tag)
			}
			m.eliminatedLoads++
			m.eliminatedRequests++
			m.msched.recordEliminated(rstart, rend, depT)
			m.mQ.Admit(depT)
			return depT, depT, done
		}
	}

	// ---- Normal memory access ----
	// Deferred vector rename (§6.2) for non-eliminated vector ops.
	var dstReadyAt int64
	if vleDefer && in.WritesReg() && in.Dst.Class == isa.RegV {
		*rec, dstReadyAt = m.allocDst(in)
	}

	ready := depT
	if dstReadyAt > ready {
		ready = dstReadyAt
	}
	// Vector references execute under the architected VL/VS.
	if isVector && m.lastVLReady > ready {
		ready = m.lastVLReady
	}
	// Store data / gather-scatter index operands.
	for _, r := range in.Reads(m.regBuf[:]) {
		switch r.Class {
		case isa.RegV:
			p := m.tables[isa.RegV].Lookup(int(r.Idx))
			// Stores chain from functional units (data streamed as produced).
			if t := m.vTiming[p].ReadyFor(isStore); t > ready {
				ready = t
			}
			if isStore {
				// Reading the data register occupies its read port.
				m.portBuf[0] = p
				ready = m.ports.Acquire(m.portBuf[:], -1, ready, vl)
			}
		case isa.RegA, isa.RegS:
			p := m.tables[r.Class].Lookup(int(r.Idx))
			if t := m.scalarReadyFor(r.Class, p); t > ready {
				ready = t
			}
		}
	}
	// Dead-spill-store elision (§6 future work) kills an exact-slot
	// predecessor BEFORE disambiguation, so the dying store is not forced
	// onto the bus by this store's own conflict scan.
	elide := cfg.ElideDeadSpillStores && cfg.Commit != rob.PolicyLate &&
		isStore && in.Spill && taggable
	if elide {
		if old, ok := m.spillPend[[2]uint64{rstart, rend}]; ok {
			if req, elided := m.msched.tryCancel(old); elided {
				m.elidedStores++
				m.elidedRequests += req
			}
		}
	}
	// Dynamic memory disambiguation (Dependence stage outcome).
	if c := m.msched.conflictConstraint(rstart, rend, isStore); c > ready {
		ready = c
	}
	// §5: with late commit, stores execute only at the head of the reorder
	// buffer.
	if isStore && cfg.Commit == rob.PolicyLate {
		if c := m.rob.LastCommit(); c > ready {
			ready = c
		}
	}

	if in.Op.IsLoad() {
		busStart := m.msched.placeLoad(ready, occ, vl, rstart, rend)
		m.noteBusWait(busStart - ready)
		m.mQ.Admit(busStart)
		if isVector {
			dataAt := busStart + int64(isa.VectorStartup) + cfg.MemLatency
			wStart := m.ports.Acquire(nil, rec.NewPhys, dataAt, vl)
			tm := vregfile.Timing{
				ChainStart: wStart + m.writeX,
				Complete:   wStart + m.writeX + vl - 1,
				FromMem:    true,
			}
			m.vTiming[rec.NewPhys] = tm
			if elim != ElimNone {
				if taggable {
					m.vTags.Set(rec.NewPhys, tag)
				} else {
					m.vTags.Invalidate(rec.NewPhys)
				}
			}
			return busStart, busStart, tm.Complete
		}
		done := busStart + cfg.ScalarMemLatency + 1
		if in.Dst.Class == isa.RegA {
			m.aReady[rec.NewPhys] = done
			if elim != ElimNone {
				m.aTags.Set(rec.NewPhys, tag)
			}
		} else {
			m.sReady[rec.NewPhys] = done
			if elim != ElimNone {
				m.sTags.Set(rec.NewPhys, tag)
			}
		}
		return busStart, busStart, done
	}

	// Stores: "do not result in observed latency". Under early commit the
	// bus slot is placed lazily in ready order (see memScheduler). Under
	// late commit the store reaches the head of the reorder buffer, hands
	// its data to the store unit, and commits; the requests then stream
	// out (the slot is placed at once so younger conflicting accesses see
	// the real bus occupancy).
	var busStart, storeDone int64
	if cfg.Commit == rob.PolicyLate {
		busStart = m.msched.placeStoreNow(ready, occ, vl, rstart, rend)
		m.noteBusWait(busStart - ready)
		storeDone = ready
	} else if elide {
		// Hold the spill in the store buffer; if a later spill overwrites
		// exactly this slot first, the buffered store dies without ever
		// issuing requests.
		m.spillPend[[2]uint64{rstart, rend}] = m.msched.deferElidableStore(ready, occ, vl, rstart, rend)
		busStart = ready
		storeDone = ready + occ
	} else {
		m.msched.deferStore(ready, occ, vl, rstart, rend)
		busStart = ready
		storeDone = ready + occ
	}
	m.mQ.Admit(busStart)
	if elim != ElimNone {
		// Tag the stored register (it mirrors the stored-to memory) and
		// conservatively invalidate every overlapping tag elsewhere.
		ownV, ownS, ownA := -1, -1, -1
		if data := in.Src1; data.Class != isa.RegNone && !cfg.NoStoreTags {
			p := m.tables[data.Class].Lookup(int(data.Idx))
			if taggable {
				switch data.Class {
				case isa.RegV:
					m.vTags.Set(p, tag)
					ownV = p
				case isa.RegS:
					m.sTags.Set(p, tag)
					ownS = p
				case isa.RegA:
					m.aTags.Set(p, tag)
					ownA = p
				}
			}
		}
		if cfg.ExactInvalidation {
			// Unsafe ablation: only kill tags covering exactly this range.
			m.vTags.InvalidateExact(rstart, rend, ownV)
			m.sTags.InvalidateExact(rstart, rend, ownS)
			m.aTags.InvalidateExact(rstart, rend, ownA)
		} else {
			m.vTags.InvalidateOverlap(rstart, rend, ownV)
			m.sTags.InvalidateOverlap(rstart, rend, ownS)
			m.aTags.InvalidateOverlap(rstart, rend, ownA)
		}
	}
	return busStart, busStart, storeDone
}

// noteBusWait charges cycles a ready memory access waited for the address
// bus.
//
//ovlint:hotpath called once per placed memory access
func (m *machine) noteBusWait(cycles int64) {
	if cycles <= 0 {
		return
	}
	m.stalls.MemBusBusy += cycles
	if s := m.cfg.Sink; s != nil {
		s.Stall(probe.CauseMemBusBusy, cycles)
	}
}

// finish assembles the run statistics.
//
//ovlint:coldpath once per run, amortised over the whole trace
func (m *machine) finish(t *trace.Trace) *Result {
	m.note(m.msched.finishAll())
	total := m.lastCycle + 1
	st := &metrics.RunStats{
		Machine:                m.cfg.Name(),
		Program:                t.Name,
		Cycles:                 total,
		Instructions:           int64(t.Len()),
		MemPortBusy:            m.msched.bus.BusyCycles(),
		MemRequests:            m.msched.requests,
		VRegPortConflictCycles: m.ports.ConflictCycles(),
		Mispredicts:            m.pred.Mispredictions(),
		EliminatedLoads:        m.eliminatedLoads,
		EliminatedRequests:     m.eliminatedRequests,
		ElidedStores:           m.elidedStores,
		ElidedRequests:         m.elidedRequests,
		DecodeStallRegs:        m.stalls.NoPhysReg(),
		DecodeStallQueue:       m.stalls.IQFull(),
		DecodeStallROB:         m.stalls.ROBFull,
		Stalls:                 m.stalls,
		Occupancy:              m.occ,
	}
	// PortConflict is derived from the port file at end of run (it is part
	// of the port state, so it is not accumulated — and not checkpointed —
	// separately).
	st.Stalls.PortConflict = st.VRegPortConflictCycles
	st.States = m.bdScratch.StateBreakdown(m.fu2.Intervals(), m.fu1.Intervals(),
		m.msched.bus.Intervals(), total)
	return &Result{Stats: st, Records: m.records, Tables: m.tableMap()}
}
