package ooosim

import (
	"testing"

	"oovec/internal/isa"
)

// TestRollbackCorruptionErrorDeterministic is the regression test for the
// defect the determinism analyzer caught in RunWithFault: the post-rollback
// invariant check used to range over the map form of the rename tables, so
// with more than one corrupt table the reported class changed from run to
// run with Go's randomised map iteration order. The check now scans the
// class-indexed array and must always blame the same (lowest) class.
func TestRollbackCorruptionErrorDeterministic(t *testing.T) {
	first := ""
	for i := 0; i < 50; i++ {
		m := newMachine(DefaultConfig().withDefaults())
		// Corrupt two classes: dropping a live mapping's last reference
		// pushes the register onto the free list while it is still mapped,
		// which CheckInvariants rejects.
		for _, class := range []isa.RegClass{isa.RegA, isa.RegV} {
			tb := m.tables[class]
			tb.Release(tb.Lookup(0), 0)
		}
		err := m.checkTables()
		if err == nil {
			t.Fatal("corrupt rename tables not detected")
		}
		if first == "" {
			first = err.Error()
			continue
		}
		if err.Error() != first {
			t.Fatalf("corruption error depends on iteration order:\n  run 0: %s\n  run %d: %s", first, i, err)
		}
	}
}
