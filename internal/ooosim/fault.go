package ooosim

import (
	"fmt"

	"oovec/internal/isa"
	"oovec/internal/probe"
	"oovec/internal/rename"
	"oovec/internal/trace"
)

// faultSink records the decode/issue cycles RunWithFault needs while
// forwarding every event to the caller's sink, if any.
type faultSink struct {
	inner    probe.Sink
	decodes  []int64
	faultIdx int
	detect   int64
}

// Insn implements probe.Sink.
func (p *faultSink) Insn(e probe.Event) {
	p.decodes = append(p.decodes, e.Decode)
	if e.Index == p.faultIdx {
		p.detect = e.Issue
	}
	if p.inner != nil {
		p.inner.Insn(e)
	}
}

// Stall implements probe.Sink.
func (p *faultSink) Stall(c probe.Cause, cycles int64) {
	if p.inner != nil {
		p.inner.Stall(c, cycles)
	}
}

// FaultResult describes a precise-trap experiment (§5): a fault injected at
// one instruction, the in-flight younger instructions squashed, and the
// rename state rolled back to the precise architectural state at the fault.
type FaultResult struct {
	// FaultIndex is the trace index of the faulting instruction.
	FaultIndex int
	// InFlight is the number of instructions (the faulting one included)
	// that had entered the pipeline when the fault was detected and were
	// rolled back.
	InFlight int
	// DetectCycle is the cycle the fault was detected (the faulting
	// instruction's execution).
	DetectCycle int64
	// PreciseCycle is the cycle at which the precise state was recovered
	// (all older instructions committed).
	PreciseCycle int64
	// Tables is the rename state after rollback: the precise architectural
	// mapping at the faulting instruction.
	Tables map[isa.RegClass]*rename.Table
}

// RunWithFault simulates the trace under cfg with a page-fault (or any
// precise exception) injected at instruction faultIdx. Older instructions
// commit normally; the faulting instruction and every younger instruction
// that had entered the pipeline are squashed and their renames undone using
// the reorder-buffer records, exactly as §5 describes. The returned tables
// hold the recovered precise mapping.
//
// Precise traps require the late-commit model; RunWithFault forces it.
func RunWithFault(t *trace.Trace, cfg Config, faultIdx int) (*FaultResult, error) {
	if faultIdx < 0 || faultIdx >= t.Len() {
		return nil, fmt.Errorf("ooosim: fault index %d out of range [0,%d)", faultIdx, t.Len())
	}
	cfg = cfg.withDefaults()
	cfg.CollectRecords = true

	m := newMachine(cfg)
	m.suppressFrom = faultIdx

	sink := &faultSink{inner: cfg.Sink, decodes: make([]int64, 0, t.Len()), faultIdx: faultIdx}
	m.cfg.Sink = sink

	// Process the faulting instruction, then every younger instruction that
	// would have entered the pipeline before the fault was detected —
	// bounded by the reorder buffer capacity (nothing past a full ROB can
	// have been renamed) and by free-register exhaustion (a decode stalled
	// on an empty free list never enters the pipeline, because squashed
	// instructions release nothing).
	last := faultIdx
	var preciseAt int64
	for i := 0; i < t.Len(); i++ {
		in := &t.Insns[i]
		if i == faultIdx {
			preciseAt = m.rob.LastCommit()
		}
		if i > faultIdx {
			if i >= faultIdx+cfg.ROBSize || sink.decodes[i-1] > sink.detect {
				break
			}
			if in.WritesReg() && m.tables[in.Dst.Class].FreeCount() == 0 {
				break
			}
		}
		m.step(i, in)
		last = i
	}

	inflight := last - faultIdx + 1
	tables := m.tableMap()
	rename.Rollback(tables, m.records[faultIdx:last+1])

	if err := m.checkTables(); err != nil {
		return nil, err
	}
	return &FaultResult{
		FaultIndex:   faultIdx,
		InFlight:     inflight,
		DetectCycle:  sink.detect,
		PreciseCycle: preciseAt,
		Tables:       tables,
	}, nil
}

// checkTables verifies every rename table's invariants after a rollback.
// It scans the class-indexed array, not the map form: with several corrupt
// tables the reported class must not depend on map iteration order.
func (m *machine) checkTables() error {
	for class, tb := range m.tables {
		if tb == nil {
			continue
		}
		if err := tb.CheckInvariants(); err != nil {
			return fmt.Errorf("ooosim: post-rollback state of %v corrupt: %w", isa.RegClass(class), err)
		}
	}
	return nil
}
