package rob

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommitInOrder(t *testing.T) {
	r := New(64, 4)
	c1 := r.Commit(100)
	c2 := r.Commit(50) // ready earlier, but must not commit before c1
	if c1 != 101 {
		t.Errorf("c1 = %d, want 101", c1)
	}
	if c2 < c1 {
		t.Errorf("c2 = %d before c1 = %d", c2, c1)
	}
}

func TestCommitWidthFourPerCycle(t *testing.T) {
	r := New(64, 4)
	// Five instructions all ready at cycle 9: commits at 10,10,10,10,11.
	var commits []int64
	for i := 0; i < 5; i++ {
		commits = append(commits, r.Commit(9))
	}
	for i := 0; i < 4; i++ {
		if commits[i] != 10 {
			t.Errorf("commit[%d] = %d, want 10", i, commits[i])
		}
	}
	if commits[4] != 11 {
		t.Errorf("commit[4] = %d, want 11 (width 4)", commits[4])
	}
}

func TestAdmitConstraintWhenFull(t *testing.T) {
	r := New(4, 4)
	if r.AdmitConstraint() != 0 {
		t.Error("empty ROB must admit at once")
	}
	for i := 0; i < 4; i++ {
		r.Commit(int64(100 + i))
	}
	// ROB of 4 is full; the next admission waits for the first commit (101).
	if got := r.AdmitConstraint(); got != 101 {
		t.Errorf("AdmitConstraint = %d, want 101", got)
	}
}

func TestLastCommitTracksHead(t *testing.T) {
	r := New(64, 4)
	r.Commit(10)
	r.Commit(20)
	if r.LastCommit() != 21 {
		t.Errorf("LastCommit = %d, want 21", r.LastCommit())
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	r := New(0, 0)
	if r.Size() != 64 {
		t.Errorf("default size = %d, want 64", r.Size())
	}
	if DefaultSize != 64 || DefaultWidth != 4 {
		t.Error("paper constants changed")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyEarly.String() != "early" || PolicyLate.String() != "late" {
		t.Error("policy names wrong")
	}
}

func TestPropertyCommitsMonotonicAndWidthBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(4)
		r := New(64, width)
		var commits []int64
		ready := int64(0)
		for i := 0; i < 300; i++ {
			ready += int64(rng.Intn(3))
			commits = append(commits, r.Commit(ready))
		}
		perCycle := map[int64]int{}
		for i, c := range commits {
			if i > 0 && c < commits[i-1] {
				return false // out of order
			}
			perCycle[c]++
			if perCycle[c] > width {
				return false // width exceeded
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommitAfterReady(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(8, 2)
		ready := int64(0)
		for i := 0; i < 200; i++ {
			ready += int64(rng.Intn(4))
			if c := r.Commit(ready); c <= ready {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
