package rob

import "oovec/internal/sched"

// State is the serialisable mid-run state of a ROB (see package sched on
// checkpointing). Size and width are capacity parameters, not state.
type State struct {
	Window sched.RingWindowState
	Recent []int64
	RI     int
	Filled int
	Last   int64
}

// Snapshot captures the ROB state (deep copy).
func (r *ROB) Snapshot() State {
	return State{
		Window: r.window.Snapshot(),
		Recent: append([]int64(nil), r.recent...),
		RI:     r.ri,
		Filled: r.filled,
		Last:   r.last,
	}
}

// Restore replaces the ROB state with st.
func (r *ROB) Restore(st State) {
	r.window.Restore(st.Window)
	if len(r.recent) != len(st.Recent) {
		r.recent = make([]int64, len(st.Recent))
	}
	copy(r.recent, st.Recent)
	r.ri, r.filled, r.last = st.RI, st.Filled, st.Last
}
