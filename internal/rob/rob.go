// Package rob models the OOOVA reorder buffer's timing behaviour: a
// 64-entry FIFO that instructions enter at decode and leave at commit, in
// strict program order, with up to four commits per cycle (§2.2).
//
// Two commit policies exist (§2.2 "Commit Strategy" and §5):
//
//   - Early: a reorder-buffer slot is marked ready to commit when the
//     instruction *begins* execution; physical registers are released as
//     soon as the slot reaches the head. Fast, but imprecise on exceptions.
//
//   - Late: a slot is ready only when the instruction has *fully
//     completed*; additionally, stores execute only at the head of the
//     buffer. This recovers precise architectural state at any instruction
//     boundary, enabling precise traps and virtual memory.
//
// The functional contents of ROB entries (the rename records used for
// rollback) live in package rename; this package computes commit cycles.
package rob

import "oovec/internal/sched"

// Paper parameters.
const (
	// DefaultSize is the paper's reorder buffer capacity.
	DefaultSize = 64
	// DefaultWidth is the paper's maximum commits per cycle.
	DefaultWidth = 4
)

// Policy selects the commit strategy.
type Policy uint8

const (
	// PolicyEarly releases state when execution begins (§2.2).
	PolicyEarly Policy = iota
	// PolicyLate commits only after completion and holds stores to the
	// head of the buffer (§5, precise traps).
	PolicyLate
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyLate {
		return "late"
	}
	return "early"
}

// ROB computes commit times for an in-order, width-limited commit stage.
type ROB struct {
	size   int //ovlint:config structural size, fixed at construction
	width  int //ovlint:config structural size, fixed at construction
	window *sched.RingWindow
	recent []int64 // ring buffer of the last `width` commit times
	ri     int
	filled int
	last   int64
}

// New returns a ROB with the given capacity and commit width.
func New(size, width int) *ROB {
	if size <= 0 {
		size = DefaultSize
	}
	if width <= 0 {
		width = DefaultWidth
	}
	return &ROB{
		size:   size,
		width:  width,
		window: sched.NewRingWindow(size),
		recent: make([]int64, width),
	}
}

// AdmitConstraint returns the earliest cycle a new instruction may be
// allocated a slot: immediately if the buffer has spare capacity, otherwise
// the commit cycle of the oldest in-flight instruction.
func (r *ROB) AdmitConstraint() int64 { return r.window.FreeAt() }

// Commit records the next instruction's commit given the cycle it becomes
// ready to commit, enforcing program order and the commit width, and books
// its slot occupancy. It returns the commit cycle.
//
//ovlint:hotpath called once per dynamic instruction
func (r *ROB) Commit(ready int64) int64 {
	c := ready + 1 // committing takes a cycle after readiness
	if c < r.last {
		c = r.last // program order: never commit before an older instruction
	}
	if r.filled >= r.width {
		// At most `width` commits per cycle: the instruction `width` back
		// must have committed strictly earlier.
		if min := r.recent[r.ri] + 1; c < min {
			c = min
		}
	}
	r.recent[r.ri] = c
	r.ri = (r.ri + 1) % r.width
	if r.filled < r.width {
		r.filled++
	}
	r.last = c
	r.window.Admit(c)
	return c
}

// LastCommit returns the most recent commit cycle (the cycle at which the
// previous instruction left the buffer — i.e. when the next one reaches the
// head).
func (r *ROB) LastCommit() int64 { return r.last }

// Size returns the capacity.
func (r *ROB) Size() int { return r.size }

// Occupied returns the number of buffer slots held at the given cycle.
func (r *ROB) Occupied(now int64) int { return r.window.Occupied(now) }

// Reset empties the buffer for reuse, keeping its capacity and width.
func (r *ROB) Reset() {
	r.window.Reset()
	for i := range r.recent {
		r.recent[i] = 0
	}
	r.ri, r.filled = 0, 0
	r.last = 0
}
