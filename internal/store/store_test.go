package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"oovec/internal/metrics"
)

// testStats builds a distinctive RunStats so decode errors and torn reads
// cannot masquerade as the right answer.
func testStats(seed int64) *metrics.RunStats {
	st := &metrics.RunStats{
		Machine:      "OOOVA",
		Program:      "swm256",
		Cycles:       1_000_000 + seed,
		MemPortBusy:  777 + seed,
		MemRequests:  888 + seed,
		Instructions: 8000,
		Mispredicts:  3,
	}
	for i := range st.States {
		st.States[i] = seed*10 + int64(i)
	}
	return st
}

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// saveSync persists one entry and waits for it to reach disk.
func saveSync(t *testing.T, s *Store, key string, st *metrics.RunStats) {
	t.Helper()
	s.Save(context.Background(), key, st)
	s.Flush()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	want := testStats(1)
	saveSync(t, s, "a1b2c3", want)

	got, ok := s.Load(context.Background(), "a1b2c3")
	if !ok {
		t.Fatal("Load missed a saved entry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the result:\ngot  %+v\nwant %+v", got, want)
	}
	if got == want {
		t.Fatal("Load returned the saved pointer; entries must decode fresh")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Writes != 1 || st.Files != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 write, 1 file, bytes > 0", st)
	}
}

func TestLoadMissOnEmptyStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if _, ok := s.Load(context.Background(), "deadbeef"); ok {
		t.Fatal("empty store reported a hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestRestartSeesEntries is the point of the package: a second store handle
// on the same directory (a restarted process) serves the first one's
// entries.
func TestRestartSeesEntries(t *testing.T) {
	dir := t.TempDir()
	want := testStats(7)
	s1 := mustOpen(t, dir, 0)
	saveSync(t, s1, "cafe01", want)
	s1.Close()

	s2 := mustOpen(t, dir, 0)
	got, ok := s2.Load(context.Background(), "cafe01")
	if !ok {
		t.Fatal("restarted store missed a persisted entry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restarted store returned different metrics")
	}
	if st := s2.Stats(); st.Files != 1 || st.Bytes <= 0 {
		t.Fatalf("restart scan found %d files / %d bytes, want 1 / > 0", st.Files, st.Bytes)
	}
}

// TestCorruptEntriesAreMissesNeverResults is the corruption-robustness
// table: every damaged form of an entry file must load as a miss, be
// quarantined (deleted), and never decode into a result or a panic.
func TestCorruptEntriesAreMissesNeverResults(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"zero-length", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:headerSize/2] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bit flip in payload", func(b []byte) []byte {
			b[headerSize+2] ^= 0x40
			return b
		}},
		{"bit flip in header length", func(b []byte) []byte {
			b[9] ^= 0x01
			return b
		}},
		{"wrong magic", func(b []byte) []byte {
			copy(b[0:4], "NOPE")
			return b
		}},
		{"wrong epoch", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[4:8], FormatEpoch+1)
			return b
		}},
		{"trailing garbage", func(b []byte) []byte {
			return append(b, 0xaa, 0xbb)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), 0)
			key := "feedf00d"
			saveSync(t, s, key, testStats(3))
			path := s.path(key)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}

			if got, ok := s.Load(context.Background(), key); ok {
				t.Fatalf("corrupt entry served as a result: %+v", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry was not quarantined (file still present)")
			}
			st := s.Stats()
			if st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if st.Files != 0 {
				t.Errorf("file accounting = %d after quarantine, want 0", st.Files)
			}
			// The slot is reusable: a fresh save fills it again.
			saveSync(t, s, key, testStats(4))
			if got, ok := s.Load(context.Background(), key); !ok || !reflect.DeepEqual(got, testStats(4)) {
				t.Error("slot unusable after quarantine")
			}
		})
	}
}

// TestGCKeepsStoreWithinBudget drives sustained inserts through a small
// byte budget and asserts the bound holds on disk, oldest entries go first,
// and the freshest entry survives.
func TestGCKeepsStoreWithinBudget(t *testing.T) {
	dir := t.TempDir()
	// Size the budget from a real entry so the test tracks encoding changes.
	probe := mustOpen(t, t.TempDir(), 0)
	saveSync(t, probe, "aa00", testStats(0))
	entrySize := probe.Stats().Bytes
	probe.Close()

	budget := entrySize * 5
	s := mustOpen(t, dir, budget)
	const inserts = 40
	var lastKey string
	for i := 0; i < inserts; i++ {
		lastKey = fmt.Sprintf("%08x", i)
		s.Save(context.Background(), lastKey, testStats(int64(i)))
	}
	s.Flush()

	var onDisk int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return nil
	})
	if onDisk > budget {
		t.Errorf("store holds %d bytes on disk, budget is %d", onDisk, budget)
	}
	st := s.Stats()
	if st.Bytes > budget {
		t.Errorf("accounted bytes %d exceed budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Error("sustained inserts over budget evicted nothing")
	}
	if _, ok := s.Load(context.Background(), lastKey); !ok {
		t.Error("the most recently written entry was evicted")
	}
}

// TestRestartRespectsExistingBytes: the Open scan counts pre-existing
// entries, so the bound holds across restarts too.
func TestRestartRespectsExistingBytes(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	for i := 0; i < 10; i++ {
		s1.Save(context.Background(), fmt.Sprintf("%08x", i), testStats(int64(i)))
	}
	s1.Flush()
	before := s1.Stats().Bytes
	s1.Close()

	s2 := mustOpen(t, dir, before/2)
	if got := s2.Stats().Bytes; got != before {
		t.Fatalf("restart scan counted %d bytes, want %d", got, before)
	}
	// One more insert must trigger GC down to the (smaller) budget.
	saveSync(t, s2, "ffffffff", testStats(99))
	if got := s2.Stats().Bytes; got > before/2 {
		t.Errorf("store holds %d bytes after restart GC, budget is %d", got, before/2)
	}
}

// TestOpenRemovesStaleTempFiles: staging files from a crashed writer never
// become entries and are cleaned up.
func TestOpenRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(shard, tmpPrefix+"12345")
	if err := os.WriteFile(stale, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 0)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("Open left a stale temp file behind")
	}
	if st := s.Stats(); st.Files != 0 || st.Bytes != 0 {
		t.Errorf("temp file was counted as an entry: %+v", st)
	}
}

// TestConcurrentWritersNeverTornRead is the cross-process concurrency
// guard, run under -race in CI: two store handles on one directory (two
// processes' worth of writers) hammer the same key while readers load it
// continuously. Every successful Load must decode the complete entry —
// the CRC plus atomic rename make a torn read impossible.
func TestConcurrentWritersNeverTornRead(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, 0)
	b := mustOpen(t, dir, 0)
	const key = "0123456789abcdef"
	want := testStats(42)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, h := range []*Store{a, b} {
		wg.Add(1)
		go func(h *Store) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Save(context.Background(), key, testStats(42))
				}
			}
		}(h)
	}
	tornOrWrong := make(chan string, 1)
	for _, h := range []*Store{a, b} {
		wg.Add(1)
		go func(h *Store) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if got, ok := h.Load(context.Background(), key); ok && !reflect.DeepEqual(got, want) {
						select {
						case tornOrWrong <- fmt.Sprintf("%+v", got):
						default:
						}
						return
					}
				}
			}
		}(h)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case got := <-tornOrWrong:
		t.Fatalf("a reader observed a torn or wrong entry: %s", got)
	default:
	}
	// And corruption was never (falsely) detected on a well-formed file.
	if ca, cb := a.Stats().Corrupt, b.Stats().Corrupt; ca != 0 || cb != 0 {
		t.Errorf("concurrent writes were misread as corruption (%d, %d quarantines)", ca, cb)
	}
}

// TestHostileKeysStayInsideDir: keys with separators or traversal attempts
// are hashed onto safe filenames, never interpreted as paths.
func TestHostileKeysStayInsideDir(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for _, key := range []string{"../../etc/passwd", "a/b/c", "", ".", "..", "k\x00v"} {
		saveSync(t, s, key, testStats(1))
		if _, ok := s.Load(context.Background(), key); !ok {
			t.Errorf("key %q did not round-trip", key)
		}
		path := s.path(key)
		rel, err := filepath.Rel(dir, path)
		if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
			t.Errorf("key %q mapped outside the store dir: %s", key, path)
		}
	}
}

// TestCloseFlushesPendingWrites: the ovsweep SIGINT contract — everything
// accepted by Save before Close is durable after Close returns.
func TestCloseFlushesPendingWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		s.Save(context.Background(), fmt.Sprintf("%08x", i), testStats(int64(i)))
	}
	s.Close()

	s2 := mustOpen(t, dir, 0)
	for i := 0; i < n; i++ {
		if _, ok := s2.Load(context.Background(), fmt.Sprintf("%08x", i)); !ok {
			t.Fatalf("entry %d accepted before Close was not durable", i)
		}
	}
	// Saves after Close are dropped, not crashed.
	s.Save(context.Background(), "after", testStats(1))
	if _, ok := s2.Load(context.Background(), "after"); ok {
		t.Error("Save after Close persisted an entry")
	}
}
