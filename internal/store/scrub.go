package store

// Background integrity scrubbing and warm-start key enumeration. Entries
// are CRC-validated on every read, but a store can hold results that go
// unread for weeks; silent media corruption in those files would only
// surface at the worst possible moment — a cache hit on a bit-flipped
// entry, caught at read time and paid for with a re-simulation during
// interactive traffic. The scrubber moves that discovery to idle time: it
// walks every entry and checkpoint blob, re-runs the same header+CRC
// validation the read path uses, and quarantines anything invalid so the
// re-simulation happens on a background schedule instead of a request path.

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"
)

// Scrub walks every entry and blob file once, validating the on-disk
// header and payload CRC, and quarantining (deleting and counting as
// Corrupt) any file that fails. It returns the number of files verified
// and the number quarantined. Scrub is safe to run concurrently with
// reads and writes: a file that disappears mid-walk (evicted, replaced)
// is simply skipped, and atomic renames mean a readable file is always
// either wholly old or wholly new.
func (s *Store) Scrub() (verified, quarantined int64) {
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		var wantMagic string
		switch {
		case strings.HasSuffix(d.Name(), entrySuffix):
			wantMagic = magic
		case strings.HasSuffix(d.Name(), blobSuffix):
			wantMagic = blobMagic
		default:
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil // vanished mid-walk: eviction or replacement won the race
		}
		if _, err := validateFile(b, wantMagic); err != nil {
			s.quarantine(context.Background(), path)
			quarantined++
			return nil
		}
		verified++
		s.scrubbed.Add(1)
		return nil
	})
	return verified, quarantined
}

// StartScrubber runs Scrub every interval on a background goroutine and
// returns a stop function that halts the scrubber and waits for any
// in-flight pass to finish. An interval <= 0 disables scrubbing; the
// returned stop function is still safe to call.
func (s *Store) StartScrubber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.Scrub()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// RecentKeys returns the keys of the most-recently-used result entries,
// newest first, stopping once their cumulative file size exceeds maxBytes
// (<= 0 returns nil). Reads refresh entry mtimes, so recency here is true
// access recency, not write order. The keys are the filename-safe forms —
// identical to the original keys for the hex result keys the simulators
// produce — and feed the warm-start pre-load that repopulates the memory
// tier after a restart.
func (s *Store) RecentKeys(maxBytes int64) []string {
	if maxBytes <= 0 {
		return nil
	}
	type entryFile struct {
		key   string
		size  int64
		mtime time.Time
	}
	var entries []entryFile
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), entrySuffix) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		key := strings.TrimSuffix(d.Name(), entrySuffix)
		entries = append(entries, entryFile{key, info.Size(), info.ModTime()})
		return nil
	})
	// Newest first; ties break on key for determinism under coarse mtimes.
	slices.SortFunc(entries, func(a, b entryFile) int {
		if a.mtime.After(b.mtime) {
			return -1
		}
		if a.mtime.Before(b.mtime) {
			return 1
		}
		return strings.Compare(a.key, b.key)
	})
	var keys []string
	var total int64
	for _, e := range entries {
		total += e.size
		if total > maxBytes {
			break
		}
		keys = append(keys, e.key)
	}
	return keys
}
