package store

// Checkpoint blobs: a second entry type sharing the store's directory,
// durability discipline (atomic temp+sync+rename, versioned header, CRC,
// quarantine-on-corruption) and byte budget, but holding opaque payloads —
// the serialised mid-run machine checkpoints of the preemptible job layer —
// rather than gob-encoded RunStats. Blob files use their own suffix and
// magic so the two kinds can never decode as each other, and blob writes
// are synchronous: a checkpoint is persisted exactly when the caller needs
// the durability guarantee (cancellation, preemption, shutdown), so there
// is nothing to batch behind.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"oovec/internal/span"
)

// blobSuffix names checkpoint blob files; blobMagic identifies them.
const (
	blobSuffix = ".ovb"
	blobMagic  = "OVCB"
)

// blobPath returns the blob file path for a key (same sharding as entries).
func (s *Store) blobPath(key string) string {
	fk := fileKey(key)
	return filepath.Join(s.dir, fk[:2], fk+blobSuffix)
}

// SaveBlob persists an opaque payload under key, synchronously and
// atomically. It returns an error (and counts a write error) when the blob
// could not be made durable; the store is otherwise unaffected. The
// context carries the trace span of the job being parked (a "store.write"
// child with kind=blob records the write); it never cancels the save.
func (s *Store) SaveBlob(ctx context.Context, key string, payload []byte) error {
	sp, _ := span.Start(ctx, "store.write")
	sp.SetAttr("key", key)
	sp.SetAttr("kind", "blob")
	sp.SetInt("bytes", int64(len(payload)))
	defer sp.End()
	b := encodeBlob(payload)
	path := s.blobPath(key)
	shardDir := filepath.Dir(path)
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: blob shard dir: %w", err)
	}
	f, err := os.CreateTemp(shardDir, tmpPrefix+"*")
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: blob staging: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		s.writeErrors.Add(1)
		return fmt.Errorf("store: blob write: %w", werr)
	}
	var oldSize int64
	replaced := false
	if info, err := os.Stat(path); err == nil {
		oldSize, replaced = info.Size(), true
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		s.writeErrors.Add(1)
		return fmt.Errorf("store: blob rename: %w", err)
	}
	s.bytes.Add(int64(len(b)) - oldSize)
	if !replaced {
		s.files.Add(1)
	}
	s.writesN.Add(1)
	s.maybeGC()
	return nil
}

// LoadBlob returns the payload stored under key, or (nil, false). Corrupt
// blobs are quarantined and reported as misses, exactly like result
// entries; a hit refreshes the file's mtime for the LRU GC. The context
// carries the trace span of the job being restored (a "store.read" child
// with kind=blob records the read).
func (s *Store) LoadBlob(ctx context.Context, key string) ([]byte, bool) {
	sp, ctx := span.Start(ctx, "store.read")
	sp.SetAttr("key", key)
	sp.SetAttr("kind", "blob")
	defer sp.End()
	path := s.blobPath(key)
	b, err := os.ReadFile(path)
	if err != nil {
		sp.SetAttr("hit", "false")
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeBlob(b)
	if err != nil {
		s.quarantine(ctx, path)
		sp.SetAttr("hit", "false")
		s.misses.Add(1)
		return nil, false
	}
	sp.SetAttr("hit", "true")
	now := time.Now()
	os.Chtimes(path, now, now)
	s.hits.Add(1)
	return payload, true
}

// DeleteBlob removes the blob stored under key, if any. Callers use it to
// retire a checkpoint once the run it belongs to has completed.
func (s *Store) DeleteBlob(key string) {
	path := s.blobPath(key)
	if info, err := os.Stat(path); err == nil {
		if os.Remove(path) == nil {
			s.bytes.Add(-info.Size())
			s.files.Add(-1)
		}
	}
}

// encodeBlob renders a blob file: the standard header (blob magic, epoch,
// payload length, CRC32-Castagnoli) followed by the payload verbatim.
func encodeBlob(payload []byte) []byte {
	b := make([]byte, headerSize+len(payload))
	copy(b[0:4], blobMagic)
	binary.BigEndian.PutUint32(b[4:8], FormatEpoch)
	binary.BigEndian.PutUint32(b[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[12:16], crc32.Checksum(payload, crcTable))
	copy(b[headerSize:], payload)
	return b
}

// decodeBlob validates a blob file and returns its payload.
func decodeBlob(b []byte) ([]byte, error) {
	return validateFile(b, blobMagic)
}

// validateFile checks the common header discipline (magic, epoch, length,
// CRC) and returns the payload bytes. It is the integrity check both entry
// decoding and the background scrubber run.
func validateFile(b []byte, wantMagic string) ([]byte, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("store: file too short (%d bytes)", len(b))
	}
	if !bytes.Equal(b[0:4], []byte(wantMagic)) {
		return nil, fmt.Errorf("store: bad magic %q, want %q", b[0:4], wantMagic)
	}
	if epoch := binary.BigEndian.Uint32(b[4:8]); epoch != FormatEpoch {
		return nil, fmt.Errorf("store: format epoch %d, want %d", epoch, FormatEpoch)
	}
	plen := binary.BigEndian.Uint32(b[8:12])
	if int(plen) != len(b)-headerSize {
		return nil, fmt.Errorf("store: payload length %d, have %d bytes", plen, len(b)-headerSize)
	}
	p := b[headerSize:]
	if got, want := crc32.Checksum(p, crcTable), binary.BigEndian.Uint32(b[12:16]); got != want {
		return nil, fmt.Errorf("store: payload CRC %08x, want %08x", got, want)
	}
	return p, nil
}
