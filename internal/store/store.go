// Package store is the durable tier of the simulation result cache: an
// on-disk, content-addressed store holding one file per result key. It is
// what survives a process restart — the in-memory tier (package simcache)
// dies with the process, so without this package every ovserve restart and
// every fresh ovsweep invocation re-simulates a design space it has already
// measured. With it, a restarted server serves previously computed
// (configuration, trace) points byte-identically with zero new simulations.
//
// Durability discipline:
//
//   - Writes are atomic: the entry is staged in a temp file in the final
//     shard directory, synced, then renamed into place. A reader — in this
//     process or another sharing the directory — sees either the complete
//     old entry, the complete new entry, or nothing; never a torn file.
//   - Every entry carries a versioned header (magic, format epoch, payload
//     length) and a CRC over the payload. A truncated, bit-flipped,
//     zero-length or wrong-epoch file degrades to a cache miss: it is
//     counted, quarantined (deleted), and the result is re-simulated.
//     Corruption can never crash the process or serve a wrong result.
//   - The store is bounded: once the entry files exceed the configured byte
//     budget, a GC pass evicts least-recently-used files (reads bump an
//     entry's mtime) until the store fits again.
//
// Saves are write-behind: Save enqueues and returns, a background writer
// persists, and Flush/Close drain the queue. Callers that must guarantee
// completed work reaches disk before exiting — ovserve's drain path,
// ovsweep's SIGINT path — call Close. If the queue backs up, Save degrades
// to a synchronous write rather than dropping entries or growing without
// bound.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oovec/internal/metrics"
	"oovec/internal/span"
)

// FormatEpoch versions the on-disk entry schema. Bump it whenever the
// payload encoding changes meaning — a field added to metrics.RunStats, a
// different serialisation — and every existing entry self-invalidates on
// its next read instead of silently decoding into the wrong shape.
const FormatEpoch = 2

// magic identifies an oovec result-store entry file.
const magic = "OVRS"

// headerSize is magic(4) + epoch(4) + payload length(4) + CRC32(4).
const headerSize = 16

// entrySuffix names completed entry files; tmpPrefix marks staging files
// that never survive an Open.
const (
	entrySuffix = ".ovr"
	tmpPrefix   = ".tmp-"
)

// maxQueue bounds the write-behind queue; beyond it Save writes
// synchronously (backpressure, not loss).
const maxQueue = 256

// crcTable is Castagnoli — hardware-accelerated on the platforms we serve
// from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	// Hits counts Loads served from a valid entry file.
	Hits int64 `json:"hits"`
	// Misses counts Loads that found no usable entry (including corrupt
	// ones, which are also counted in Corrupt).
	Misses int64 `json:"misses"`
	// Writes counts entries persisted; WriteErrors counts persist attempts
	// that failed (disk full, permissions) — the entry is simply not
	// durable, never fatal.
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// Corrupt counts entries quarantined on read: truncated, bit-flipped,
	// zero-length, wrong-magic or wrong-epoch files, each deleted so they
	// are paid for once.
	Corrupt int64 `json:"corrupt"`
	// Evictions counts entry files deleted by the size-bound GC.
	Evictions int64 `json:"evictions"`
	// Scrubbed counts files the background integrity scrubber has verified;
	// files it found invalid are quarantined and counted in Corrupt.
	Scrubbed int64 `json:"scrubbed"`
	// Bytes and Files size the store right now (entry and blob files).
	Bytes int64 `json:"bytes"`
	Files int64 `json:"files"`
}

// Store is a durable content-addressed result store rooted at one
// directory. Open constructs it; all methods are safe for concurrent use,
// and two Stores (in one process or several) may share a directory.
type Store struct {
	dir      string
	maxBytes int64

	hits        atomic.Int64
	misses      atomic.Int64
	writesN     atomic.Int64
	writeErrors atomic.Int64
	corrupt     atomic.Int64
	evictions   atomic.Int64
	scrubbed    atomic.Int64
	bytes       atomic.Int64
	files       atomic.Int64

	// The write-behind queue. cond guards queue/pending/closed; the writer
	// goroutine drains the queue, Flush and Close wait for pending to reach
	// zero. Broadcast (never Signal) because writer and flushers share the
	// cond.
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []writeReq
	pending int
	closed  bool

	// gcMu serialises GC passes; TryLock skips a pass when one is running.
	gcMu sync.Mutex
}

type writeReq struct {
	key string
	st  *metrics.RunStats
}

// Open roots a store at dir, creating it if needed. maxBytes bounds the
// total size of entry files (<= 0 = unbounded); the bound is enforced by a
// least-recently-used GC after writes. Leftover staging files from a
// previous crash are removed; existing entries are counted so the bound
// holds across restarts.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	s.cond = sync.NewCond(&s.mu)
	if err := s.scan(); err != nil {
		return nil, err
	}
	go s.writer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// MaxBytes returns the configured size bound (<= 0 = unbounded).
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// scan counts the entries already on disk and removes staging leftovers.
func (s *Store) scan() error {
	return filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			os.Remove(path) // a crash mid-write; the rename never happened
		case strings.HasSuffix(name, entrySuffix), strings.HasSuffix(name, blobSuffix):
			if info, err := d.Info(); err == nil {
				s.bytes.Add(info.Size())
				s.files.Add(1)
			}
		}
		return nil
	})
}

// fileKey maps a cache key onto a filename-safe form. Result keys are
// already short hex strings; anything else (future key schemes, hostile
// input) is hashed rather than trusted near the filesystem.
func fileKey(key string) string {
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') &&
			c != '-' && c != '_' {
			sum := sha256.Sum256([]byte(key))
			return hex.EncodeToString(sum[:16])
		}
	}
	if len(key) < 2 {
		sum := sha256.Sum256([]byte(key))
		return hex.EncodeToString(sum[:16])
	}
	return key
}

// path returns the entry file path for a key: two-character shard directory
// over the filename-safe key, so a large store does not pile every entry
// into one directory.
func (s *Store) path(key string) string {
	fk := fileKey(key)
	return filepath.Join(s.dir, fk[:2], fk+entrySuffix)
}

// Load returns the stored result for key, or (nil, false) on a miss. A
// file that fails any validation step — size, magic, epoch, length, CRC,
// decode — is quarantined (deleted) and reported as a miss; it can never
// surface as a wrong result. A hit refreshes the file's mtime, which is
// the recency signal the GC evicts by. The context carries the request's
// trace span (a "store.read" child records the read); it never cancels a
// load.
func (s *Store) Load(ctx context.Context, key string) (*metrics.RunStats, bool) {
	sp, ctx := span.Start(ctx, "store.read")
	sp.SetAttr("key", key)
	defer sp.End()
	path := s.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		sp.SetAttr("hit", "false")
		s.misses.Add(1)
		return nil, false
	}
	st, err := decodeEntry(b)
	if err != nil {
		s.quarantine(ctx, path)
		sp.SetAttr("hit", "false")
		s.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU touch
	s.hits.Add(1)
	sp.SetAttr("hit", "true")
	sp.SetInt("bytes", int64(len(b)))
	return st, true
}

// quarantine deletes an invalid entry file and adjusts the size accounting.
func (s *Store) quarantine(ctx context.Context, path string) {
	sp, _ := span.Start(ctx, "store.quarantine")
	sp.SetAttr("file", filepath.Base(path))
	defer sp.End()
	if info, err := os.Stat(path); err == nil {
		if os.Remove(path) == nil {
			s.bytes.Add(-info.Size())
			s.files.Add(-1)
		}
	}
	s.corrupt.Add(1)
}

// Save persists a result under key, asynchronously: it enqueues for the
// background writer and returns. Entries are immutable once published
// (content-addressed keys), so concurrent saves of one key are benign —
// both render identical bytes and the atomic rename makes last-writer-wins
// safe. When the queue is full, Save writes synchronously instead of
// dropping. After Close, Save is a no-op. The context carries the
// request's trace span (a "store.write" child records the hand-off, attr
// mode = queued, sync or dropped); it never cancels a save.
func (s *Store) Save(ctx context.Context, key string, st *metrics.RunStats) {
	if st == nil {
		return
	}
	sp, _ := span.Start(ctx, "store.write")
	sp.SetAttr("key", key)
	defer sp.End()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sp.SetAttr("mode", "dropped")
		return
	}
	if len(s.queue) >= maxQueue {
		s.pending++
		s.mu.Unlock()
		sp.SetAttr("mode", "sync")
		s.write(key, st)
		s.done()
		return
	}
	s.queue = append(s.queue, writeReq{key, st})
	s.pending++
	s.cond.Broadcast()
	s.mu.Unlock()
	sp.SetAttr("mode", "queued")
}

// Flush blocks until every Save accepted so far has reached disk (and any
// GC it triggered has finished).
func (s *Store) Flush() {
	s.mu.Lock()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close flushes pending writes and stops the background writer. Further
// Saves are dropped; Loads keep working (the files are still there).
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// writer is the background persistence goroutine: drain the queue, run the
// size GC after each write, wake flushers as work completes.
func (s *Store) writer() {
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.write(req.key, req.st)
		s.done()
		s.mu.Lock()
	}
}

// done retires one pending write and wakes Flush/Close waiters.
func (s *Store) done() {
	s.mu.Lock()
	s.pending--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// write persists one entry: encode, stage in a temp file in the shard
// directory, sync, rename into place, then enforce the size bound. Errors
// are counted, never fatal — a result that fails to persist is simply not
// durable.
func (s *Store) write(key string, st *metrics.RunStats) {
	b, err := encodeEntry(st)
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	path := s.path(key)
	shardDir := filepath.Dir(path)
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		s.writeErrors.Add(1)
		return
	}
	f, err := os.CreateTemp(shardDir, tmpPrefix+"*")
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		s.writeErrors.Add(1)
		return
	}
	// Size the displaced entry (if any) before the rename so the byte
	// accounting stays truthful when a key is overwritten.
	var oldSize int64
	replaced := false
	if info, err := os.Stat(path); err == nil {
		oldSize, replaced = info.Size(), true
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		s.writeErrors.Add(1)
		return
	}
	s.bytes.Add(int64(len(b)) - oldSize)
	if !replaced {
		s.files.Add(1)
	}
	s.writesN.Add(1)
	s.maybeGC()
}

// maybeGC enforces the byte budget: when the store exceeds it, entry files
// are deleted least-recently-used first (mtime order; Load refreshes
// mtimes) down to a low-water mark of 90% of the budget, so a store
// sitting at its bound amortises the directory walk over many writes
// instead of re-walking on every one. The walk also resynchronises the
// byte accounting, so processes sharing a directory converge on the real
// on-disk usage.
func (s *Store) maybeGC() {
	if s.maxBytes <= 0 || s.bytes.Load() <= s.maxBytes {
		return
	}
	if !s.gcMu.TryLock() {
		return // a pass is already running
	}
	defer s.gcMu.Unlock()

	// Snapshot the accounting before the walk: the correction below is
	// applied as a delta against this, so updates that land concurrently
	// (a synchronous Save's rename, a quarantine) are preserved instead of
	// erased by an absolute store. A concurrent update double-counted by
	// both the walk and the delta only overshoots — which triggers the
	// next GC pass early and self-corrects there — never loses bytes.
	beforeBytes := s.bytes.Load()
	beforeFiles := s.files.Load()

	type entryFile struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entryFile
	var total int64
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() ||
			(!strings.HasSuffix(d.Name(), entrySuffix) && !strings.HasSuffix(d.Name(), blobSuffix)) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, entryFile{path, info.Size(), info.ModTime()})
		total += info.Size()
		return nil
	})
	// Oldest first; ties break on path so the order is deterministic even
	// with coarse mtimes.
	slices.SortFunc(entries, func(a, b entryFile) int {
		if a.mtime.Before(b.mtime) {
			return -1
		}
		if a.mtime.After(b.mtime) {
			return 1
		}
		return strings.Compare(a.path, b.path)
	})
	lowWater := s.maxBytes - s.maxBytes/10
	files := int64(len(entries))
	for _, e := range entries {
		if total <= lowWater {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			files--
			s.evictions.Add(1)
		}
	}
	s.bytes.Add(total - beforeBytes)
	s.files.Add(files - beforeFiles)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writesN.Load(),
		WriteErrors: s.writeErrors.Load(),
		Corrupt:     s.corrupt.Load(),
		Evictions:   s.evictions.Load(),
		Scrubbed:    s.scrubbed.Load(),
		Bytes:       s.bytes.Load(),
		Files:       s.files.Load(),
	}
}

// encodeEntry renders one entry file: header (magic, epoch, payload length,
// CRC32-Castagnoli over the payload) followed by the gob-encoded RunStats.
func encodeEntry(st *metrics.RunStats) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return nil, err
	}
	p := payload.Bytes()
	b := make([]byte, headerSize+len(p))
	copy(b[0:4], magic)
	binary.BigEndian.PutUint32(b[4:8], FormatEpoch)
	binary.BigEndian.PutUint32(b[8:12], uint32(len(p)))
	binary.BigEndian.PutUint32(b[12:16], crc32.Checksum(p, crcTable))
	copy(b[headerSize:], p)
	return b, nil
}

// decodeEntry validates and decodes one entry file. Any deviation — short
// file, wrong magic, wrong epoch, length mismatch, CRC mismatch, gob
// failure — is an error the caller treats as a quarantinable miss.
func decodeEntry(b []byte) (*metrics.RunStats, error) {
	p, err := validateFile(b, magic)
	if err != nil {
		return nil, err
	}
	var st metrics.RunStats
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&st); err != nil {
		return nil, fmt.Errorf("store: decoding payload: %w", err)
	}
	return &st, nil
}
