package store

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"
)

func TestBlobRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	payload := []byte("checkpoint payload \x00\x01\x02 with binary bytes")
	if err := s.SaveBlob(context.Background(), "ck-a1b2c3", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadBlob(context.Background(), "ck-a1b2c3")
	if !ok {
		t.Fatal("LoadBlob missed a saved blob")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	if _, ok := s.LoadBlob(context.Background(), "never-saved"); ok {
		t.Fatal("LoadBlob hit an absent key")
	}

	// Overwrite keeps the accounting truthful: one file, newest payload.
	bigger := append(payload, payload...)
	if err := s.SaveBlob(context.Background(), "ck-a1b2c3", bigger); err != nil {
		t.Fatal(err)
	}
	got, _ = s.LoadBlob(context.Background(), "ck-a1b2c3")
	if !bytes.Equal(got, bigger) {
		t.Fatal("overwrite did not replace the payload")
	}
	if f := s.Stats().Files; f != 1 {
		t.Fatalf("files = %d after overwrite, want 1", f)
	}

	s.DeleteBlob("ck-a1b2c3")
	if _, ok := s.LoadBlob(context.Background(), "ck-a1b2c3"); ok {
		t.Fatal("LoadBlob hit a deleted blob")
	}
	st := s.Stats()
	if st.Files != 0 || st.Bytes != 0 {
		t.Fatalf("accounting after delete: files=%d bytes=%d, want 0/0", st.Files, st.Bytes)
	}
}

func TestBlobSurvivesReopenAndIsCounted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.SaveBlob(context.Background(), "ck-feed", []byte("persisted across restart")); err != nil {
		t.Fatal(err)
	}
	saveSync(t, s, "aa11", testStats(1))
	s.Close()

	s2 := mustOpen(t, dir, 0)
	if got, ok := s2.LoadBlob(context.Background(), "ck-feed"); !ok || string(got) != "persisted across restart" {
		t.Fatalf("blob did not survive reopen (ok=%v)", ok)
	}
	if f := s2.Stats().Files; f != 2 {
		t.Fatalf("reopened scan counted %d files, want 2 (entry + blob)", f)
	}
}

func TestBlobCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.SaveBlob(context.Background(), "ck-dead", []byte("soon to be bit-flipped")); err != nil {
		t.Fatal(err)
	}
	path := s.blobPath("ck-dead")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadBlob(context.Background(), "ck-dead"); ok {
		t.Fatal("LoadBlob returned a corrupt blob")
	}
	if s.Stats().Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", s.Stats().Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt blob was not quarantined")
	}
}

func TestEntryAndBlobDoNotDecodeAsEachOther(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	saveSync(t, s, "a1b2", testStats(7))
	if err := s.SaveBlob(context.Background(), "a1b2", []byte("blob under the same key")); err != nil {
		t.Fatal(err)
	}
	// Same key, two files, each readable only through its own API.
	if _, ok := s.Load(context.Background(), "a1b2"); !ok {
		t.Fatal("entry lost after blob save under same key")
	}
	if _, ok := s.LoadBlob(context.Background(), "a1b2"); !ok {
		t.Fatal("blob lost after entry save under same key")
	}
	// A blob renamed over an entry path must be rejected by magic, not
	// misdecoded.
	blobBytes, _ := os.ReadFile(s.blobPath("a1b2"))
	if err := os.WriteFile(s.path("a1b2"), blobBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(context.Background(), "a1b2"); ok {
		t.Fatal("entry Load accepted a blob file")
	}
}

func TestScrubVerifiesAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 4; i++ {
		saveSync(t, s, fmt.Sprintf("aa%02d", i), testStats(int64(i)))
	}
	if err := s.SaveBlob(context.Background(), "ck-aa00", []byte("a healthy checkpoint")); err != nil {
		t.Fatal(err)
	}

	verified, quarantined := s.Scrub()
	if verified != 5 || quarantined != 0 {
		t.Fatalf("clean scrub: verified=%d quarantined=%d, want 5/0", verified, quarantined)
	}

	// Flip one byte in an entry payload and truncate the blob.
	p := s.path("aa02")
	b, _ := os.ReadFile(p)
	b[len(b)-1] ^= 0x01
	os.WriteFile(p, b, 0o644)
	bp := s.blobPath("ck-aa00")
	bb, _ := os.ReadFile(bp)
	os.WriteFile(bp, bb[:headerSize+2], 0o644)

	verified, quarantined = s.Scrub()
	if verified != 3 || quarantined != 2 {
		t.Fatalf("dirty scrub: verified=%d quarantined=%d, want 3/2", verified, quarantined)
	}
	st := s.Stats()
	if st.Corrupt != 2 {
		t.Fatalf("corrupt = %d, want 2", st.Corrupt)
	}
	if st.Scrubbed != 8 {
		t.Fatalf("scrubbed = %d, want 8 (5 clean + 3 dirty-pass)", st.Scrubbed)
	}
	if st.Files != 3 {
		t.Fatalf("files = %d after quarantine, want 3", st.Files)
	}
	// The survivors still load.
	for _, k := range []string{"aa00", "aa01", "aa03"} {
		if _, ok := s.Load(context.Background(), k); !ok {
			t.Errorf("entry %s lost by scrub", k)
		}
	}
}

func TestStartScrubberRunsAndStops(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	saveSync(t, s, "aa00", testStats(1))
	stop := s.StartScrubber(5 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Scrubbed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scrubber never ran")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop2 := s.StartScrubber(0) // disabled interval: stop must still be safe
	stop2()
}

func TestRecentKeysMRUOrderAndBudget(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	var size int64
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("aa%02d", i)
		saveSync(t, s, key, testStats(int64(i)))
		// Spread mtimes so recency order is unambiguous even on coarse
		// filesystem timestamps: aa03 newest, aa00 oldest.
		mt := time.Now().Add(time.Duration(i-4) * time.Hour)
		os.Chtimes(s.path(key), mt, mt)
		if info, err := os.Stat(s.path(key)); err == nil {
			size = info.Size()
		}
	}
	if err := s.SaveBlob(context.Background(), "ck-aa00", []byte("blobs are not preloadable results")); err != nil {
		t.Fatal(err)
	}

	all := s.RecentKeys(size * 10)
	if want := []string{"aa03", "aa02", "aa01", "aa00"}; !slices.Equal(all, want) {
		t.Fatalf("RecentKeys = %v, want %v", all, want)
	}
	two := s.RecentKeys(size * 2)
	if want := []string{"aa03", "aa02"}; !slices.Equal(two, want) {
		t.Fatalf("RecentKeys(2 entries) = %v, want %v", two, want)
	}
	if got := s.RecentKeys(0); got != nil {
		t.Fatalf("RecentKeys(0) = %v, want nil", got)
	}
}

func TestRecentKeysRoundTripThroughLoad(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	want := testStats(42)
	saveSync(t, s, "deadbeef00", want)
	s.Close()

	s2 := mustOpen(t, dir, 0)
	keys := s2.RecentKeys(1 << 20)
	if len(keys) != 1 {
		t.Fatalf("RecentKeys = %v, want one key", keys)
	}
	if _, ok := s2.Load(context.Background(), keys[0]); !ok {
		t.Fatalf("key %q from RecentKeys does not Load", keys[0])
	}
	if filepath.Base(s2.path(keys[0])) != "deadbeef00"+entrySuffix {
		t.Fatalf("key %q does not map back to the original file", keys[0])
	}
}
