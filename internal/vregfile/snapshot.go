package vregfile

// Snapshot/Restore support for mid-run checkpointing (see package sched).

// BankedFileState is the serialisable state of a BankedFile.
type BankedFileState struct {
	ReadFree  [][ReadPortsPerBank]int64
	WriteFree []int64
	Conflicts int64
}

// Snapshot captures the banked file's port state (deep copy; the claims
// scratch is per-call and carries no state).
func (f *BankedFile) Snapshot() BankedFileState {
	return BankedFileState{
		ReadFree:  append([][ReadPortsPerBank]int64(nil), f.readFree...),
		WriteFree: append([]int64(nil), f.writeFree...),
		Conflicts: f.conflicts,
	}
}

// Restore replaces the banked file's port state with st.
func (f *BankedFile) Restore(st BankedFileState) {
	if len(f.readFree) != len(st.ReadFree) {
		f.readFree = make([][ReadPortsPerBank]int64, len(st.ReadFree))
	}
	copy(f.readFree, st.ReadFree)
	if len(f.writeFree) != len(st.WriteFree) {
		f.writeFree = make([]int64, len(st.WriteFree))
	}
	copy(f.writeFree, st.WriteFree)
	f.conflicts = st.Conflicts
}

// FlatFileState is the serialisable state of a FlatFile.
type FlatFileState struct {
	ReadFree  []int64
	WriteFree []int64
	Conflicts int64
}

// Snapshot captures the flat file's port state (deep copy).
func (f *FlatFile) Snapshot() FlatFileState {
	return FlatFileState{
		ReadFree:  append([]int64(nil), f.readFree...),
		WriteFree: append([]int64(nil), f.writeFree...),
		Conflicts: f.conflicts,
	}
}

// Restore replaces the flat file's port state with st.
func (f *FlatFile) Restore(st FlatFileState) {
	if len(f.readFree) != len(st.ReadFree) {
		f.readFree = make([]int64, len(st.ReadFree))
	}
	copy(f.readFree, st.ReadFree)
	if len(f.writeFree) != len(st.WriteFree) {
		f.writeFree = make([]int64, len(st.WriteFree))
	}
	copy(f.writeFree, st.WriteFree)
	f.conflicts = st.Conflicts
}
