package vregfile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBankedNoConflictDifferentBanks(t *testing.T) {
	f := NewBankedFile(8)
	// v0 (bank 0) read, v2 (bank 1) read, v4 (bank 2) write: all distinct banks.
	start := f.Acquire([]int{0, 2}, 4, 10, 64)
	if start != 10 {
		t.Errorf("start = %d, want 10 (no conflicts)", start)
	}
	if f.ConflictCycles() != 0 {
		t.Errorf("conflicts = %d, want 0", f.ConflictCycles())
	}
}

func TestBankedTwoReadsSameBankUseBothPorts(t *testing.T) {
	f := NewBankedFile(8)
	// v0 and v1 share bank 0, which has two read ports: no conflict.
	start := f.Acquire([]int{0, 1}, -1, 5, 32)
	if start != 5 {
		t.Errorf("start = %d, want 5", start)
	}
}

func TestBankedThirdReadConflicts(t *testing.T) {
	f := NewBankedFile(8)
	f.Acquire([]int{0}, -1, 0, 100) // occupies bank0 read port A until 100
	f.Acquire([]int{1}, -1, 0, 100) // occupies bank0 read port B until 100
	start := f.Acquire([]int{0}, -1, 0, 10)
	if start != 100 {
		t.Errorf("third bank-0 read start = %d, want 100", start)
	}
	if f.ConflictCycles() != 100 {
		t.Errorf("conflicts = %d, want 100", f.ConflictCycles())
	}
}

func TestBankedWritePortConflict(t *testing.T) {
	f := NewBankedFile(8)
	f.Acquire(nil, 0, 0, 50) // write v0: bank 0 write port busy until 50
	start := f.Acquire(nil, 1, 0, 10)
	if start != 50 {
		t.Errorf("write to same bank start = %d, want 50", start)
	}
	// A write to another bank is free.
	start = f.Acquire(nil, 2, 0, 10)
	if start != 0 {
		t.Errorf("write to other bank start = %d, want 0", start)
	}
}

func TestBankedReadAndWriteIndependentPorts(t *testing.T) {
	f := NewBankedFile(8)
	f.Acquire(nil, 0, 0, 50)                                 // write port of bank 0 busy
	if start := f.Acquire([]int{1}, -1, 0, 10); start != 0 { // read port free
		t.Errorf("read during write start = %d, want 0", start)
	}
}

func TestBankedReset(t *testing.T) {
	f := NewBankedFile(8)
	f.Acquire([]int{0, 1}, 2, 0, 100)
	f.Acquire([]int{0}, -1, 0, 10)
	f.Reset()
	if f.ConflictCycles() != 0 {
		t.Error("reset did not clear conflicts")
	}
	if start := f.Acquire([]int{0}, -1, 0, 10); start != 0 {
		t.Errorf("post-reset start = %d, want 0", start)
	}
}

func TestFlatDedicatedPorts(t *testing.T) {
	f := NewFlatFile(16)
	// Distinct registers: never conflict.
	if start := f.Acquire([]int{0, 1}, 2, 0, 64); start != 0 {
		t.Errorf("start = %d, want 0", start)
	}
	if start := f.Acquire([]int{3, 4}, 5, 0, 64); start != 0 {
		t.Errorf("disjoint start = %d, want 0", start)
	}
	if f.ConflictCycles() != 0 {
		t.Errorf("conflicts = %d", f.ConflictCycles())
	}
}

func TestFlatSameRegisterReadPortSerialises(t *testing.T) {
	f := NewFlatFile(16)
	f.Acquire([]int{7}, -1, 0, 64)
	start := f.Acquire([]int{7}, -1, 0, 64)
	if start != 64 {
		t.Errorf("second reader of same phys reg start = %d, want 64", start)
	}
	if f.ConflictCycles() != 64 {
		t.Errorf("conflicts = %d, want 64", f.ConflictCycles())
	}
}

func TestFlatWriteAfterWriteSamePort(t *testing.T) {
	f := NewFlatFile(16)
	f.Acquire(nil, 3, 0, 10)
	if start := f.Acquire(nil, 3, 0, 10); start != 10 {
		t.Errorf("WW same reg start = %d, want 10", start)
	}
}

func TestFlatGrow(t *testing.T) {
	f := NewFlatFile(4)
	f.Grow(10)
	if start := f.Acquire([]int{9}, -1, 0, 5); start != 0 {
		t.Errorf("grown reg start = %d", start)
	}
}

func TestTimingReadyFor(t *testing.T) {
	fu := Timing{ChainStart: 100, Complete: 163, FromMem: false}
	if got := fu.ReadyFor(true); got != 101 {
		t.Errorf("chainable FU value ready = %d, want 101", got)
	}
	if got := fu.ReadyFor(false); got != 163 {
		t.Errorf("non-chainable read of FU value ready = %d, want 163", got)
	}
	ld := Timing{ChainStart: 100, Complete: 163, FromMem: true}
	if got := ld.ReadyFor(true); got != 163 {
		t.Errorf("load value must not chain: ready = %d, want 163", got)
	}
}

func TestPropertyAcquireNeverBeforeEarliest(t *testing.T) {
	check := func(mk func() PortFile, maxReg int) func(int64) bool {
		return func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			f := mk()
			clock := int64(0)
			for i := 0; i < 300; i++ {
				earliest := clock + int64(r.Intn(3))
				nr := r.Intn(3)
				reads := make([]int, nr)
				for j := range reads {
					reads[j] = r.Intn(maxReg)
				}
				write := -1
				if r.Intn(2) == 0 {
					write = r.Intn(maxReg)
				}
				dur := int64(1 + r.Intn(128))
				start := f.Acquire(reads, write, earliest, dur)
				if start < earliest {
					return false
				}
				clock = earliest
			}
			return true
		}
	}
	if err := quick.Check(check(func() PortFile { return NewBankedFile(8) }, 8),
		&quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("banked: %v", err)
	}
	if err := quick.Check(check(func() PortFile { return NewFlatFile(64) }, 64),
		&quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("flat: %v", err)
	}
}

func TestPropertyFlatPortExclusivity(t *testing.T) {
	// For any sequence of acquisitions, intervals booked on the same
	// register's read port never overlap.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		file := NewFlatFile(8)
		type iv struct{ s, e int64 }
		perReg := map[int][]iv{}
		for i := 0; i < 200; i++ {
			reg := r.Intn(8)
			earliest := int64(r.Intn(50))
			dur := int64(1 + r.Intn(20))
			start := file.Acquire([]int{reg}, -1, earliest, dur)
			for _, prev := range perReg[reg] {
				if start < prev.e && prev.s < start+dur {
					return false
				}
			}
			perReg[reg] = append(perReg[reg], iv{start, start + dur})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
