// Package vregfile models vector register file port structures and the
// element-level timing used for chaining.
//
// Two port organisations appear in the paper:
//
//   - The reference C3400 file: the eight vector registers are grouped in
//     pairs ("banks"); each bank shares two read ports and one write port.
//     The Convex compiler scheduled code to avoid port conflicts; dynamic
//     execution can still hit them, and the simulator charges stalls.
//
//   - The OOOVA file: renaming shuffles compiler-scheduled port assignments,
//     so the paper gives every physical register one dedicated read port and
//     one dedicated write port. Conflicts then only arise when two in-flight
//     instructions want the *same* physical register's port simultaneously.
//
// Both organisations implement PortFile: given the registers an instruction
// reads and writes, its earliest possible issue cycle, and the number of
// cycles it will occupy the ports (its vector length), the file returns the
// earliest conflict-free start cycle and books the ports.
package vregfile

// PortFile is a vector register file port model.
type PortFile interface {
	// Acquire books one read port for every register in reads and the write
	// port for write (pass write < 0 for none) for dur consecutive cycles
	// starting no earlier than earliest. It returns the chosen start cycle.
	Acquire(reads []int, write int, earliest, dur int64) int64
	// ConflictCycles returns the cumulative number of cycles instructions
	// were delayed by port conflicts.
	ConflictCycles() int64
	// Reset clears all port state.
	Reset()
}

// RegsPerBank is the C3400 grouping: pairs of vector registers share ports.
const RegsPerBank = 2

// ReadPortsPerBank and WritePortsPerBank are the per-bank port counts.
const (
	ReadPortsPerBank  = 2
	WritePortsPerBank = 1
)

// BankedFile is the reference machine's register file organisation.
type BankedFile struct {
	readFree  [][ReadPortsPerBank]int64 // per bank, per port: next free cycle
	writeFree []int64                   // per bank: next free cycle
	conflicts int64

	// claims is plan's scratch space (an instruction reads at most four
	// registers); keeping it here keeps the per-instruction hot path
	// allocation-free.
	claims [4]portClaim //ovlint:config per-instruction scratch, dead between calls
}

// NewBankedFile returns a banked file for n vector registers (n must be a
// multiple of RegsPerBank).
func NewBankedFile(n int) *BankedFile {
	banks := (n + RegsPerBank - 1) / RegsPerBank
	return &BankedFile{
		readFree:  make([][ReadPortsPerBank]int64, banks),
		writeFree: make([]int64, banks),
	}
}

// portClaim identifies one read port of one bank.
type portClaim struct {
	bank, port int
}

// plan assigns each read to the least-busy available port of its bank and
// returns the earliest feasible start plus the number of port claims
// recorded in f.claims. With at most a handful of reads, a linear scan over
// the claims already made replaces a per-call map.
func (f *BankedFile) plan(reads []int, write int, earliest int64) (int64, int) {
	start := earliest
	n := 0
	for _, r := range reads {
		bank := r / RegsPerBank
		// Pick the unclaimed port with the earliest free time.
		best, bestFree := -1, int64(1)<<62
		for p := 0; p < ReadPortsPerBank; p++ {
			taken := false
			for i := 0; i < n; i++ {
				if f.claims[i].bank == bank && f.claims[i].port == p {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if f.readFree[bank][p] < bestFree {
				best, bestFree = p, f.readFree[bank][p]
			}
		}
		if best < 0 {
			// More than two reads from one bank in a single instruction
			// cannot happen with two-source instructions; be safe anyway.
			best, bestFree = 0, f.readFree[bank][0]
		}
		if n == len(f.claims) {
			// The ISA presents at most three reads per instruction; fail
			// loudly rather than silently under-book ports.
			panic("vregfile: more reads than claim slots")
		}
		f.claims[n] = portClaim{bank, best}
		n++
		if bestFree > start {
			start = bestFree
		}
	}
	if write >= 0 {
		bank := write / RegsPerBank
		if f.writeFree[bank] > start {
			start = f.writeFree[bank]
		}
	}
	return start, n
}

// Peek returns the start Acquire would choose, without booking.
//
//ovlint:hotpath probed once per vector operand set
func (f *BankedFile) Peek(reads []int, write int, earliest int64) int64 {
	start, _ := f.plan(reads, write, earliest)
	return start
}

// Acquire implements PortFile. Reads from the same bank compete for that
// bank's two read ports; the write competes for the bank's single write port.
//
//ovlint:hotpath called once per vector instruction through the portFile interface
func (f *BankedFile) Acquire(reads []int, write int, earliest, dur int64) int64 {
	if dur <= 0 {
		dur = 1
	}
	start, n := f.plan(reads, write, earliest)
	if start > earliest {
		f.conflicts += start - earliest
	}
	for _, c := range f.claims[:n] {
		f.readFree[c.bank][c.port] = start + dur
	}
	if write >= 0 {
		f.writeFree[write/RegsPerBank] = start + dur
	}
	return start
}

// ConflictCycles implements PortFile.
func (f *BankedFile) ConflictCycles() int64 { return f.conflicts }

// Reset implements PortFile.
func (f *BankedFile) Reset() {
	for i := range f.readFree {
		f.readFree[i] = [ReadPortsPerBank]int64{}
	}
	for i := range f.writeFree {
		f.writeFree[i] = 0
	}
	f.conflicts = 0
}

// FlatFile is the OOOVA organisation: every (physical) register has one
// dedicated read port and one dedicated write port.
type FlatFile struct {
	readFree  []int64
	writeFree []int64
	conflicts int64
}

// NewFlatFile returns a flat file for n physical registers.
func NewFlatFile(n int) *FlatFile {
	return &FlatFile{
		readFree:  make([]int64, n),
		writeFree: make([]int64, n),
	}
}

// Grow extends the file to accommodate at least n registers.
func (f *FlatFile) Grow(n int) {
	for len(f.readFree) < n {
		f.readFree = append(f.readFree, 0)
		f.writeFree = append(f.writeFree, 0)
	}
}

// Peek returns the start Acquire would choose, without booking the ports.
//
//ovlint:hotpath probed once per vector operand set
func (f *FlatFile) Peek(reads []int, write int, earliest int64) int64 {
	start := earliest
	for _, r := range reads {
		if f.readFree[r] > start {
			start = f.readFree[r]
		}
	}
	if write >= 0 && f.writeFree[write] > start {
		start = f.writeFree[write]
	}
	return start
}

// Acquire implements PortFile.
//
//ovlint:hotpath called once per vector instruction through the portFile interface
func (f *FlatFile) Acquire(reads []int, write int, earliest, dur int64) int64 {
	if dur <= 0 {
		dur = 1
	}
	start := f.Peek(reads, write, earliest)
	if start > earliest {
		f.conflicts += start - earliest
	}
	for _, r := range reads {
		f.readFree[r] = start + dur
	}
	if write >= 0 {
		f.writeFree[write] = start + dur
	}
	return start
}

// ConflictCycles implements PortFile.
func (f *FlatFile) ConflictCycles() int64 { return f.conflicts }

// Reset implements PortFile.
func (f *FlatFile) Reset() {
	for i := range f.readFree {
		f.readFree[i] = 0
		f.writeFree[i] = 0
	}
	f.conflicts = 0
}

// Timing records when a register's value becomes available, at element
// granularity, for chaining decisions.
type Timing struct {
	// ChainStart is the cycle the first element is written — the point a
	// chained consumer may begin reading.
	ChainStart int64
	// Complete is the cycle the last element is written.
	Complete int64
	// FromMem marks values produced by memory loads. Neither machine chains
	// loads into functional units: consumers of FromMem values wait for
	// Complete.
	FromMem bool
}

// ReadyFor returns the cycle at which a consumer may begin reading the value:
// ChainStart+1 if chaining is permitted (producer was a functional unit and
// the consumer is chainable), else Complete.
func (t Timing) ReadyFor(chainable bool) int64 {
	if chainable && !t.FromMem {
		return t.ChainStart + 1
	}
	return t.Complete
}
