package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBusSequentialReservations(t *testing.T) {
	var b AddressBus
	if got := b.Reserve(0, 4); got != 0 {
		t.Errorf("first reservation start = %d, want 0", got)
	}
	if got := b.Reserve(0, 4); got != 4 {
		t.Errorf("second reservation start = %d, want 4 (bus busy)", got)
	}
	if got := b.Reserve(100, 2); got != 100 {
		t.Errorf("late reservation start = %d, want 100", got)
	}
	if b.BusyCycles() != 10 {
		t.Errorf("busy = %d, want 10", b.BusyCycles())
	}
	if b.Requests() != 10 {
		t.Errorf("requests = %d, want 10", b.Requests())
	}
	if b.NextFree() != 102 {
		t.Errorf("nextFree = %d, want 102", b.NextFree())
	}
}

func TestBusZeroLengthReservation(t *testing.T) {
	var b AddressBus
	if got := b.Reserve(7, 0); got != 7 {
		t.Errorf("zero-length start = %d, want 7 (pass-through)", got)
	}
	if b.BusyCycles() != 0 || b.Requests() != 0 {
		t.Error("zero-length reservation must not consume bus")
	}
}

func TestBusReset(t *testing.T) {
	var b AddressBus
	b.Reserve(0, 10)
	b.Reset()
	if b.BusyCycles() != 0 || b.NextFree() != 0 || b.Requests() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestPropertyBusNeverOverlapsAndNeverReordersBackwards(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b AddressBus
		prevEnd := int64(0)
		var totBusy int64
		for i := 0; i < 200; i++ {
			earliest := prevEnd + int64(r.Intn(5)) - 2 // sometimes before prevEnd
			if earliest < 0 {
				earliest = 0
			}
			n := int64(1 + r.Intn(8))
			start := b.Reserve(earliest, n)
			if start < earliest {
				t.Logf("start %d before earliest %d", start, earliest)
				return false
			}
			if start < prevEnd {
				t.Logf("overlap: start %d < prev end %d", start, prevEnd)
				return false
			}
			prevEnd = start + n
			totBusy += n
		}
		return b.BusyCycles() == totBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1000, 0xdeadbeef)
	if got := m.ReadWord(0x1000); got != 0xdeadbeef {
		t.Errorf("ReadWord = %#x", got)
	}
	// Sub-word addresses alias the containing word.
	if got := m.ReadWord(0x1003); got != 0xdeadbeef {
		t.Errorf("unaligned ReadWord = %#x", got)
	}
	if got := m.ReadWord(0x2000); got != 0 {
		t.Errorf("unwritten word = %#x, want 0", got)
	}
}

func TestMemoryVectorStrided(t *testing.T) {
	m := NewMemory()
	vals := []uint64{1, 2, 3, 4}
	m.WriteVector(0x100, vals, 32)
	got := m.ReadVector(0x100, 4, 32)
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("elem %d = %d, want %d", i, got[i], vals[i])
		}
	}
	// The strided writes must not have touched intermediate words.
	if got := m.ReadWord(0x108); got != 0 {
		t.Errorf("gap word = %d, want 0", got)
	}
	if m.Footprint() != 4 {
		t.Errorf("footprint = %d, want 4", m.Footprint())
	}
}

func TestMemoryNegativeStride(t *testing.T) {
	m := NewMemory()
	m.WriteVector(0x200, []uint64{10, 20, 30}, -8)
	if m.ReadWord(0x200) != 10 || m.ReadWord(0x1f8) != 20 || m.ReadWord(0x1f0) != 30 {
		t.Error("negative-stride write laid out incorrectly")
	}
	got := m.ReadVector(0x200, 3, -8)
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("negative-stride read = %v", got)
	}
}

func TestPropertyMemoryLastWriteWins(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		shadow := map[uint64]uint64{}
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(64)) * 8
			v := r.Uint64()
			m.WriteWord(addr, v)
			shadow[addr] = v
		}
		for a, v := range shadow {
			if m.ReadWord(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfig(t *testing.T) {
	if DefaultConfig().Latency != 50 {
		t.Errorf("default latency = %d, want the paper's 50", DefaultConfig().Latency)
	}
}
