// Package mem models the memory system of both simulated machines and
// provides a functional (value-level) memory image.
//
// The paper's memory model (§2.2 "Machine Parameters"):
//
//   - a single address bus shared by all types of memory transactions
//     (scalar/vector, load/store), issuing at most one request per cycle;
//   - physically separate data busses for sending and receiving data;
//   - vector load instructions pay an initial latency and then receive one
//     datum from memory per cycle;
//   - vector store instructions do not result in observed latency;
//   - main-memory latency is a parameter (the paper uses 50 cycles as the
//     default and varies it between 1 and 100).
package mem

// DefaultLatency is the paper's default main-memory latency in cycles.
const DefaultLatency = 50

// Config carries the memory-system parameters.
type Config struct {
	// Latency is the main-memory access latency in cycles.
	Latency int64
}

// DefaultConfig returns the paper's default memory configuration.
func DefaultConfig() Config { return Config{Latency: DefaultLatency} }

// AddressBus models the single shared address port. Reservations are
// contiguous cycle intervals (one request per cycle); the bus tracks total
// busy cycles and total requests so the simulators can report the
// memory-port idle percentages of Figures 4 and 6 and the traffic counts of
// Figure 13 without per-cycle bookkeeping.
type AddressBus struct {
	nextFree int64
	busy     int64
	requests int64
}

// Reserve books n consecutive request slots starting no earlier than
// `earliest` and no earlier than the end of the previous reservation.
// It returns the cycle of the first slot.
func (b *AddressBus) Reserve(earliest, n int64) int64 {
	if n <= 0 {
		return earliest
	}
	start := earliest
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + n
	b.busy += n
	b.requests += n
	return start
}

// NextFree returns the first cycle at which the bus has no reservation.
func (b *AddressBus) NextFree() int64 { return b.nextFree }

// BusyCycles returns the total number of cycles the bus spent issuing
// requests.
func (b *AddressBus) BusyCycles() int64 { return b.busy }

// Requests returns the total number of requests (element transfers) issued.
func (b *AddressBus) Requests() int64 { return b.requests }

// Reset clears the bus state.
func (b *AddressBus) Reset() { *b = AddressBus{} }

// Memory is a sparse functional memory of 64-bit words. The simulators are
// timing simulators and do not need values, but the dynamic load elimination
// tests and the examples use Memory to check value-level correctness of the
// elimination (an eliminated load must observe exactly the bytes the memory
// holds).
type Memory struct {
	words map[uint64]uint64
}

// NewMemory returns an empty memory; unwritten words read as zero.
func NewMemory() *Memory {
	return &Memory{words: make(map[uint64]uint64)}
}

// align returns the word-aligned address containing addr.
func align(addr uint64) uint64 { return addr &^ 7 }

// ReadWord returns the 64-bit word containing addr.
func (m *Memory) ReadWord(addr uint64) uint64 {
	return m.words[align(addr)]
}

// WriteWord stores a 64-bit word at the word containing addr.
func (m *Memory) WriteWord(addr uint64, v uint64) {
	m.words[align(addr)] = v
}

// ReadVector reads n words starting at base with the given byte stride.
func (m *Memory) ReadVector(base uint64, n int, stride int64) []uint64 {
	out := make([]uint64, n)
	a := int64(base)
	for i := 0; i < n; i++ {
		out[i] = m.ReadWord(uint64(a))
		a += stride
	}
	return out
}

// WriteVector writes the given words starting at base with the given byte
// stride.
func (m *Memory) WriteVector(base uint64, vals []uint64, stride int64) {
	a := int64(base)
	for _, v := range vals {
		m.WriteWord(uint64(a), v)
		a += stride
	}
}

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return len(m.words) }
