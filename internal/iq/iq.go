// Package iq models the four instruction queues of the OOOVA (§2.2).
//
// The A, S and V queues are simple out-of-order issue windows: they "monitor
// the ready status of all instructions held in the queue slots and as soon
// as an instruction is ready, it is sent to the appropriate functional unit"
// — one instruction per queue per cycle.
//
// The M (memory) queue is different: instructions first proceed *in order*
// through a three-stage pipeline — Issue/RF, Range (computing the address
// range the instruction may touch) and Dependence (run-time memory
// disambiguation against previous instructions in the queue) — and only
// then may issue memory requests out of order.
package iq

import "oovec/internal/sched"

// DefaultSlots is the paper's queue capacity ("All instruction queues are
// set at 16 slots"); the OOOVA-128 configuration uses 128.
const DefaultSlots = 16

// Queue is an A/S/V-style out-of-order issue queue.
type Queue struct {
	window *sched.RingWindow
	slots  *sched.Gap

	issued int64
}

// NewQueue returns a queue with the given capacity.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultSlots
	}
	return &Queue{
		window: sched.NewRingWindow(capacity),
		slots:  sched.NewGap(),
	}
}

// AdmitConstraint returns the earliest cycle a new instruction can be
// admitted (decode stalls until the queue has a slot).
func (q *Queue) AdmitConstraint() int64 { return q.window.FreeAt() }

// Issue admits an instruction that enters the queue at `enter` and whose
// operands are ready at `ready`, books the 1-per-cycle issue port at the
// first free cycle at or after max(enter, ready), records the slot's
// occupancy, and returns the issue cycle.
//
//ovlint:hotpath called once per queued instruction
func (q *Queue) Issue(enter, ready int64) int64 {
	at := enter
	if ready > at {
		at = ready
	}
	t := q.slots.Allocate(at, 1)
	q.window.Admit(t)
	q.issued++
	return t
}

// Issued returns the number of instructions issued.
func (q *Queue) Issued() int64 { return q.issued }

// Occupied returns the number of queue slots held at the given cycle.
func (q *Queue) Occupied(now int64) int { return q.window.Occupied(now) }

// Reserve sizes the issue-port interval list for n bookings so
// steady-state appends never reallocate (each issued instruction books at
// most one interval).
func (q *Queue) Reserve(n int) { q.slots.Reserve(n) }

// Reset empties the queue for reuse, keeping its capacity.
func (q *Queue) Reset() {
	q.window.Reset()
	q.slots.Reset()
	q.issued = 0
}

// memEntry is the disambiguation record of one memory instruction.
type memEntry struct {
	start, end uint64
	isStore    bool
	busEnd     int64
}

// maxScan bounds the conflict scan. Entries further back have left the
// queue long ago; with the address bus serialising at one request per cycle
// their requests are necessarily far in the past.
const maxScan = 256

// MemQueue is the memory instruction queue with its in-order front pipeline
// and range-based disambiguation.
type MemQueue struct {
	window *sched.RingWindow
	// The three in-order front stages, each processing one instruction per
	// cycle.
	issueRF, rangeSt, depSt *sched.Monotonic

	entries [maxScan]memEntry
	n       int // total entries recorded
	scanWin int //ovlint:config structural size, fixed at construction

	conflicts int64
}

// NewMemQueue returns a memory queue with the given capacity.
func NewMemQueue(capacity int) *MemQueue {
	if capacity <= 0 {
		capacity = DefaultSlots
	}
	scan := capacity
	if scan > maxScan {
		scan = maxScan
	}
	return &MemQueue{
		window:  sched.NewRingWindow(capacity),
		issueRF: sched.NewMonotonic(),
		rangeSt: sched.NewMonotonic(),
		depSt:   sched.NewMonotonic(),
		scanWin: scan,
	}
}

// AdmitConstraint returns the earliest cycle a new memory instruction can be
// admitted to the queue.
func (q *MemQueue) AdmitConstraint() int64 { return q.window.FreeAt() }

// Reserve sizes the three front-stage interval lists for n advancing
// instructions (each books at most one interval per stage).
func (q *MemQueue) Reserve(n int) {
	q.issueRF.Reserve(n)
	q.rangeSt.Reserve(n)
	q.depSt.Reserve(n)
}

// Advance pushes an instruction entering the queue at `enter` through the
// three in-order front stages and returns the cycle it leaves the
// Dependence stage (after which it may issue out of order).
//
//ovlint:hotpath called once per memory instruction
func (q *MemQueue) Advance(enter int64) int64 {
	s1 := q.issueRF.Allocate(enter, 1)
	s2 := q.rangeSt.Allocate(s1+1, 1)
	s3 := q.depSt.Allocate(s2+1, 1)
	return s3 + 1
}

// ConflictConstraint performs the Dependence-stage check: it returns the
// earliest cycle this access (byte range [start, end], store flag) may
// issue, given the previous memory instructions in the queue. An access
// conflicts with an earlier one when their ranges overlap and at least one
// of the two is a store; the younger access must then wait until the older
// one has issued all its requests.
//
//ovlint:hotpath the scan runs once per memory instruction
func (q *MemQueue) ConflictConstraint(start, end uint64, isStore bool) int64 {
	var at int64
	lo := q.n - q.scanWin
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < q.n; i++ {
		e := &q.entries[i%maxScan]
		if !(isStore || e.isStore) {
			continue // load-load never conflicts
		}
		if e.start <= end && start <= e.end {
			if e.busEnd > at {
				at = e.busEnd
			}
		}
	}
	if at > 0 {
		q.conflicts++
	}
	return at
}

// Record registers an issued memory access for later disambiguation and
// books its queue slot (the slot frees when the instruction proceeds to
// issue requests, at busStart).
//
//ovlint:hotpath called once per memory instruction
func (q *MemQueue) Record(start, end uint64, isStore bool, busStart, busEnd int64) {
	q.entries[q.n%maxScan] = memEntry{start: start, end: end, isStore: isStore, busEnd: busEnd}
	q.n++
	q.window.Admit(busStart)
}

// Admit books a queue slot without a disambiguation record; callers that
// track disambiguation themselves use this to model slot occupancy only.
// The slot frees when the instruction leaves the queue (issues requests).
func (q *MemQueue) Admit(leaveAt int64) { q.window.Admit(leaveAt) }

// Occupied returns the number of queue slots held at the given cycle.
func (q *MemQueue) Occupied(now int64) int { return q.window.Occupied(now) }

// Conflicts returns the number of accesses delayed by disambiguation.
func (q *MemQueue) Conflicts() int64 { return q.conflicts }

// Reset empties the queue and its front pipeline for reuse.
func (q *MemQueue) Reset() {
	q.window.Reset()
	q.issueRF.Reset()
	q.rangeSt.Reset()
	q.depSt.Reset()
	q.n = 0
	q.conflicts = 0
}
