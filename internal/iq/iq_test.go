package iq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueIssuesOutOfOrder(t *testing.T) {
	q := NewQueue(16)
	// Older instruction ready late; younger ready early. The younger one
	// grabs the earlier issue slot (the Gap allocator backfills).
	older := q.Issue(0, 100)
	younger := q.Issue(1, 5)
	if older != 100 {
		t.Errorf("older issue = %d, want 100", older)
	}
	if younger != 5 {
		t.Errorf("younger issue = %d, want 5 (out-of-order issue)", younger)
	}
}

func TestQueueOnePerCycle(t *testing.T) {
	q := NewQueue(16)
	// Three instructions all ready at cycle 10: issue at 10, 11, 12.
	got := []int64{q.Issue(0, 10), q.Issue(0, 10), q.Issue(0, 10)}
	want := []int64{10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("issue[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if q.Issued() != 3 {
		t.Errorf("issued = %d", q.Issued())
	}
}

func TestQueueCapacityBlocksAdmission(t *testing.T) {
	q := NewQueue(2)
	q.Issue(0, 50) // occupies a slot until issue at 50
	q.Issue(0, 60)
	// Queue of 2 full; oldest leaves at its issue time 50.
	if got := q.AdmitConstraint(); got != 50 {
		t.Errorf("AdmitConstraint = %d, want 50", got)
	}
}

func TestQueueDefaultCapacity(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < DefaultSlots; i++ {
		q.Issue(int64(i), int64(1000+i))
	}
	if got := q.AdmitConstraint(); got != 1000 {
		t.Errorf("AdmitConstraint = %d, want 1000 (16-slot default)", got)
	}
}

func TestMemQueueFrontPipelineInOrder(t *testing.T) {
	q := NewMemQueue(16)
	// Two instructions entering back to back: the 3-stage pipe adds 3
	// cycles each, and stage occupancy is 1/cycle.
	d1 := q.Advance(0)
	d2 := q.Advance(1)
	if d1 != 3 {
		t.Errorf("first dependence-stage exit = %d, want 3", d1)
	}
	if d2 != 4 {
		t.Errorf("second dependence-stage exit = %d, want 4", d2)
	}
	// Even an instruction entering much later keeps stage order.
	d3 := q.Advance(2)
	if d3 != 5 {
		t.Errorf("third exit = %d, want 5", d3)
	}
}

func TestMemQueueConflictDetection(t *testing.T) {
	q := NewMemQueue(16)
	// A store to [100, 199] that will finish its requests at cycle 80.
	q.Record(100, 199, true, 40, 80)
	// An overlapping load must wait for the store's requests.
	if got := q.ConflictConstraint(150, 250, false); got != 80 {
		t.Errorf("RAW constraint = %d, want 80", got)
	}
	// A disjoint load sails through.
	if got := q.ConflictConstraint(300, 400, false); got != 0 {
		t.Errorf("disjoint constraint = %d, want 0", got)
	}
	if q.Conflicts() != 1 {
		t.Errorf("conflicts = %d, want 1", q.Conflicts())
	}
}

func TestMemQueueLoadLoadNeverConflicts(t *testing.T) {
	q := NewMemQueue(16)
	q.Record(100, 199, false, 40, 80) // a load
	if got := q.ConflictConstraint(100, 199, false); got != 0 {
		t.Errorf("load-load constraint = %d, want 0", got)
	}
	// But a store against an earlier load (WAR) does conflict.
	if got := q.ConflictConstraint(100, 199, true); got != 80 {
		t.Errorf("WAR constraint = %d, want 80", got)
	}
}

func TestMemQueueStoreStoreOrdered(t *testing.T) {
	q := NewMemQueue(16)
	q.Record(0x1000, 0x11ff, true, 10, 74)
	if got := q.ConflictConstraint(0x1100, 0x12ff, true); got != 74 {
		t.Errorf("WAW constraint = %d, want 74", got)
	}
}

func TestMemQueueMultipleConflictsTakeMax(t *testing.T) {
	q := NewMemQueue(16)
	q.Record(100, 199, true, 10, 50)
	q.Record(150, 249, true, 60, 120)
	if got := q.ConflictConstraint(180, 300, false); got != 120 {
		t.Errorf("constraint = %d, want max 120", got)
	}
}

func TestMemQueueCapacity(t *testing.T) {
	q := NewMemQueue(2)
	q.Record(0, 7, false, 30, 31)
	q.Record(8, 15, false, 40, 41)
	if got := q.AdmitConstraint(); got != 30 {
		t.Errorf("AdmitConstraint = %d, want 30 (oldest leaves at bus start)", got)
	}
}

func TestMemQueueScanWindowBounded(t *testing.T) {
	q := NewMemQueue(16)
	// Record far more entries than the scan window; old conflicting
	// entries fall out of the window.
	q.Record(0x5000, 0x50ff, true, 1, 999999) // would block forever if scanned
	for i := 0; i < maxScan; i++ {
		q.Record(uint64(i*0x1000), uint64(i*0x1000+7), false, int64(i), int64(i+1))
	}
	if got := q.ConflictConstraint(0x5000, 0x50ff, false); got == 999999 {
		t.Error("entry outside the scan window must not constrain")
	}
}

func TestPropertyQueueIssueRespectsReadiness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewQueue(1 + r.Intn(32))
		for i := 0; i < 200; i++ {
			enter := int64(r.Intn(100))
			ready := int64(r.Intn(300))
			at := q.Issue(enter, ready)
			if at < enter || at < ready {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyQueueNeverIssuesTwoPerCycle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewQueue(64)
		seen := map[int64]bool{}
		for i := 0; i < 300; i++ {
			at := q.Issue(0, int64(r.Intn(200)))
			if seen[at] {
				return false
			}
			seen[at] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMemQueueFrontStagesMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewMemQueue(16)
		prev := int64(-1)
		enter := int64(0)
		for i := 0; i < 200; i++ {
			enter += int64(r.Intn(3))
			out := q.Advance(enter)
			if out <= prev {
				return false // in-order pipeline must preserve order strictly
			}
			prev = out
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
