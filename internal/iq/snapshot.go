package iq

import "oovec/internal/sched"

// Snapshot/Restore support for mid-run checkpointing (see package sched).

// QueueState is the serialisable state of an A/S/V issue queue.
type QueueState struct {
	Window sched.RingWindowState
	Slots  sched.GapState
	Issued int64
}

// Snapshot captures the queue state (deep copy).
func (q *Queue) Snapshot() QueueState {
	return QueueState{
		Window: q.window.Snapshot(),
		Slots:  q.slots.Snapshot(),
		Issued: q.issued,
	}
}

// Restore replaces the queue state with st.
func (q *Queue) Restore(st QueueState) {
	q.window.Restore(st.Window)
	q.slots.Restore(st.Slots)
	q.issued = st.Issued
}

// MemEntryState is the exported form of one disambiguation record.
type MemEntryState struct {
	Start, End uint64
	IsStore    bool
	BusEnd     int64
}

// MemQueueState is the serialisable state of the memory queue. Entries
// holds the full disambiguation ring: slot i%len(Entries) of instruction i,
// exactly as the queue indexes it.
type MemQueueState struct {
	Window                  sched.RingWindowState
	IssueRF, RangeSt, DepSt sched.MonotonicState
	Entries                 []MemEntryState
	N                       int
	Conflicts               int64
}

// Snapshot captures the memory queue state (deep copy).
func (q *MemQueue) Snapshot() MemQueueState {
	st := MemQueueState{
		Window:    q.window.Snapshot(),
		IssueRF:   q.issueRF.Snapshot(),
		RangeSt:   q.rangeSt.Snapshot(),
		DepSt:     q.depSt.Snapshot(),
		Entries:   make([]MemEntryState, maxScan),
		N:         q.n,
		Conflicts: q.conflicts,
	}
	for i := range q.entries {
		e := &q.entries[i]
		st.Entries[i] = MemEntryState{Start: e.start, End: e.end, IsStore: e.isStore, BusEnd: e.busEnd}
	}
	return st
}

// Restore replaces the memory queue state with st. The scan window is a
// capacity parameter, not state, and is kept.
func (q *MemQueue) Restore(st MemQueueState) {
	q.window.Restore(st.Window)
	q.issueRF.Restore(st.IssueRF)
	q.rangeSt.Restore(st.RangeSt)
	q.depSt.Restore(st.DepSt)
	for i := range q.entries {
		q.entries[i] = memEntry{}
	}
	for i, e := range st.Entries {
		if i >= maxScan {
			break
		}
		q.entries[i] = memEntry{start: e.Start, end: e.End, isStore: e.IsStore, busEnd: e.BusEnd}
	}
	q.n = st.N
	q.conflicts = st.Conflicts
}
