package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("saturated-up counter = %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("saturated-down counter = %d, want 0", c)
	}
}

func TestCounterHysteresis(t *testing.T) {
	// From strongly-taken, one not-taken outcome must not flip the prediction.
	c := counter(3)
	c = c.update(false)
	if !c.taken() {
		t.Error("one not-taken from strong-taken should still predict taken")
	}
	c = c.update(false)
	if c.taken() {
		t.Error("two not-taken should flip the prediction")
	}
}

func TestLoopBranchLearnsQuickly(t *testing.T) {
	p := New()
	pc, target := uint64(0x100), uint64(0x40)
	// A loop back-edge: taken 20 times. First resolutions mispredict, then
	// the predictor locks on.
	mis := 0
	for i := 0; i < 20; i++ {
		if p.ResolveBranch(pc, true, target) {
			mis++
		}
	}
	if mis > 2 {
		t.Errorf("loop branch mispredicted %d times, want <=2", mis)
	}
	// Final iteration falls through: exactly one more misprediction.
	if !p.ResolveBranch(pc, false, target) {
		t.Error("loop exit should mispredict once")
	}
}

func TestBranchTargetChangeDetected(t *testing.T) {
	p := New()
	pc := uint64(0x200)
	p.ResolveBranch(pc, true, 0x40)
	p.ResolveBranch(pc, true, 0x40)
	// Same direction, new target: still a misprediction (BTB target stale).
	if !p.ResolveBranch(pc, true, 0x80) {
		t.Error("target change must mispredict")
	}
}

func TestJumpFirstSeenMispredicts(t *testing.T) {
	p := New()
	if !p.ResolveJump(0x300, 0x1000) {
		t.Error("first jump sighting should mispredict")
	}
	if p.ResolveJump(0x300, 0x1000) {
		t.Error("known jump should hit")
	}
}

func TestCallReturnPairs(t *testing.T) {
	p := New()
	p.Call(0x100, 0x2000)
	p.Call(0x2010, 0x3000)
	if p.Return(0x2014) {
		t.Error("matching return should predict correctly")
	}
	if p.Return(0x104) {
		t.Error("matching outer return should predict correctly")
	}
	if !p.Return(0x104) {
		t.Error("return with empty stack must mispredict")
	}
}

func TestReturnMismatchedAddress(t *testing.T) {
	p := New()
	p.Call(0x100, 0x2000)
	if !p.Return(0xdead) {
		t.Error("wrong return address must mispredict")
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	p := New()
	for i := 0; i < RASDepth+2; i++ {
		p.Call(uint64(0x1000+i*16), 0x9000)
	}
	// The most recent RASDepth calls should return correctly.
	for i := RASDepth + 1; i >= 2; i-- {
		if p.Return(uint64(0x1000+i*16) + 4) {
			t.Errorf("return %d should hit", i)
		}
	}
	// The two oldest were pushed out.
	if !p.Return(0x1000 + 1*16 + 4) {
		t.Error("overflowed entry should mispredict")
	}
}

func TestBTBAliasing(t *testing.T) {
	p := New()
	// Two branches mapping to the same BTB set (64 entries, pc>>2 % 64):
	// pcs differing by 64*4 bytes alias.
	a, b := uint64(0x100), uint64(0x100+BTBEntries*4)
	p.ResolveBranch(a, true, 0x40)
	p.ResolveBranch(a, true, 0x40)
	p.ResolveBranch(b, true, 0x80) // evicts a
	if !p.ResolveBranch(a, true, 0x40) {
		t.Error("aliased entry should have been evicted, causing a miss")
	}
}

func TestMissRateAccounting(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.ResolveBranch(0x100, true, 0x40)
	}
	if p.Lookups() != 10 {
		t.Errorf("lookups = %d, want 10", p.Lookups())
	}
	if p.MissRate() < 0 || p.MissRate() > 1 {
		t.Errorf("miss rate = %v out of range", p.MissRate())
	}
	if New().MissRate() != 0 {
		t.Error("empty predictor miss rate should be 0")
	}
}

func TestPropertyBiasedBranchesPredictWell(t *testing.T) {
	// For strongly biased branches, the 2-bit counter must achieve a low
	// steady-state miss rate regardless of the bias direction.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New()
		biasTaken := r.Intn(2) == 0
		pc := uint64(r.Intn(1024)) * 4
		target := uint64(0x40)
		mis := 0
		const n = 400
		for i := 0; i < n; i++ {
			taken := biasTaken
			if r.Intn(100) < 5 { // 5% contrarian outcomes
				taken = !taken
			}
			if p.ResolveBranch(pc, taken, target) {
				mis++
			}
		}
		// 5% noise can cost at most ~2 mispredictions each in a 2-bit
		// scheme; allow generous slack.
		return float64(mis)/n < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMispredictionsNeverExceedLookups(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New()
		for i := 0; i < 300; i++ {
			switch r.Intn(4) {
			case 0:
				p.ResolveBranch(uint64(r.Intn(512))*4, r.Intn(2) == 0, uint64(r.Intn(512))*4)
			case 1:
				p.ResolveJump(uint64(r.Intn(512))*4, uint64(r.Intn(512))*4)
			case 2:
				p.Call(uint64(r.Intn(512))*4, uint64(r.Intn(512))*4)
			case 3:
				p.Return(uint64(r.Intn(512)) * 4)
			}
		}
		return p.Mispredictions() <= p.Lookups()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
