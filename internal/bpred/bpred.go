// Package bpred implements the OOOVA front-end branch predictors described
// in §2.2 of the paper: a 64-entry branch target buffer in which each entry
// has a 2-bit saturating counter, plus an 8-deep return-address stack for
// call/return sequences.
package bpred

// Paper parameters.
const (
	// BTBEntries is the number of branch-target-buffer entries.
	BTBEntries = 64
	// RASDepth is the return-address-stack depth.
	RASDepth = 8
)

// counter is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	ctr    counter
}

// Predictor is the combined BTB + return stack. It is deterministic and
// allocation-free in steady state.
type Predictor struct {
	btb [BTBEntries]btbEntry
	ras [RASDepth]uint64
	top int // number of valid RAS entries

	lookups    int64
	mispredict int64
}

// New returns an empty predictor. Counters start at 1 (weakly not-taken).
func New() *Predictor {
	p := &Predictor{}
	for i := range p.btb {
		p.btb[i].ctr = 1
	}
	return p
}

func (p *Predictor) index(pc uint64) int { return int((pc >> 2) % BTBEntries) }

// PredictBranch consults the BTB for a conditional branch at pc and returns
// the predicted direction and target. Unknown branches predict not-taken.
func (p *Predictor) PredictBranch(pc uint64) (taken bool, target uint64) {
	e := &p.btb[p.index(pc)]
	if e.valid && e.tag == pc {
		return e.ctr.taken(), e.target
	}
	return false, 0
}

// ResolveBranch records the actual outcome of a conditional branch and
// reports whether the earlier prediction was wrong (counting the
// misprediction).
func (p *Predictor) ResolveBranch(pc uint64, taken bool, target uint64) (mispredicted bool) {
	p.lookups++
	predTaken, predTarget := p.PredictBranch(pc)
	mis := predTaken != taken || (taken && predTarget != target)
	e := &p.btb[p.index(pc)]
	if !e.valid || e.tag != pc {
		*e = btbEntry{valid: true, tag: pc, ctr: 1}
	}
	e.ctr = e.ctr.update(taken)
	if taken {
		e.target = target
	}
	if mis {
		p.mispredict++
	}
	return mis
}

// ResolveJump handles an unconditional jump: mispredicted only if the BTB
// did not know the target yet.
func (p *Predictor) ResolveJump(pc, target uint64) (mispredicted bool) {
	p.lookups++
	e := &p.btb[p.index(pc)]
	known := e.valid && e.tag == pc && e.target == target
	if !known {
		*e = btbEntry{valid: true, tag: pc, target: target, ctr: 3}
		p.mispredict++
		return true
	}
	return false
}

// Call pushes the return address (pc+4) on the return stack and resolves the
// call target like a jump.
func (p *Predictor) Call(pc, target uint64) (mispredicted bool) {
	if p.top < RASDepth {
		p.ras[p.top] = pc + 4
		p.top++
	} else {
		// Stack full: shift (oldest entry is lost), as real hardware does.
		copy(p.ras[:], p.ras[1:])
		p.ras[RASDepth-1] = pc + 4
	}
	return p.ResolveJump(pc, target)
}

// Return pops the return stack and reports a misprediction if the popped
// address does not match the actual return target (or the stack was empty).
func (p *Predictor) Return(actualTarget uint64) (mispredicted bool) {
	p.lookups++
	if p.top == 0 {
		p.mispredict++
		return true
	}
	p.top--
	if p.ras[p.top] != actualTarget {
		p.mispredict++
		return true
	}
	return false
}

// Lookups returns the number of control-flow resolutions performed.
func (p *Predictor) Lookups() int64 { return p.lookups }

// Mispredictions returns the number of mispredicted control transfers.
func (p *Predictor) Mispredictions() int64 { return p.mispredict }

// Reset restores the empty-predictor state (weakly not-taken counters,
// empty return stack) for machine reuse.
func (p *Predictor) Reset() {
	for i := range p.btb {
		p.btb[i] = btbEntry{ctr: 1}
	}
	p.top = 0
	p.lookups, p.mispredict = 0, 0
}

// MissRate returns the fraction of resolutions that mispredicted.
func (p *Predictor) MissRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.mispredict) / float64(p.lookups)
}
