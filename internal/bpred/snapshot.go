package bpred

// BTBEntryState is the exported form of one BTB entry.
type BTBEntryState struct {
	Valid       bool
	Tag, Target uint64
	Ctr         uint8
}

// State is the serialisable mid-run state of a Predictor (see package sched
// on checkpointing).
type State struct {
	BTB        [BTBEntries]BTBEntryState
	RAS        [RASDepth]uint64
	Top        int
	Lookups    int64
	Mispredict int64
}

// Snapshot captures the predictor state.
func (p *Predictor) Snapshot() State {
	st := State{RAS: p.ras, Top: p.top, Lookups: p.lookups, Mispredict: p.mispredict}
	for i, e := range p.btb {
		st.BTB[i] = BTBEntryState{Valid: e.valid, Tag: e.tag, Target: e.target, Ctr: uint8(e.ctr)}
	}
	return st
}

// Restore replaces the predictor state with st.
func (p *Predictor) Restore(st State) {
	for i, e := range st.BTB {
		p.btb[i] = btbEntry{valid: e.Valid, tag: e.Tag, target: e.Target, ctr: counter(e.Ctr)}
	}
	p.ras = st.RAS
	p.top = st.Top
	p.lookups, p.mispredict = st.Lookups, st.Mispredict
}
