// Package probe defines the simulator observability interface: a Sink
// receives per-instruction pipeline lifecycle events and per-cause stall
// notifications as the trace is simulated.
//
// Probes are strictly observational. Everything a sink is told is also
// accumulated into metrics.RunStats by the simulator itself (stall-cause
// counters, occupancy histograms), so attaching a sink never changes a
// run's result — the byte-identity tests in ooosim/refsim enforce this.
// The nil-sink path is allocation-free: the simulators guard every call
// with a nil check inside their //ovlint:hotpath step loops, and Event is
// a plain value struct.
package probe

import "oovec/internal/isa"

// Cause identifies the hardware resource a stall is attributed to.
type Cause uint8

const (
	// CauseROBFull: decode stalled waiting for a reorder-buffer slot.
	CauseROBFull Cause = iota
	// CauseIQFull: decode stalled waiting for an issue-queue slot.
	CauseIQFull
	// CauseNoPhysReg: decode stalled waiting for a free physical register
	// in the destination's class.
	CauseNoPhysReg
	// CausePortConflict: issue delayed by a register-file port conflict.
	CausePortConflict
	// CauseMemBusBusy: a ready memory access waited for the address bus.
	CauseMemBusBusy

	// NumCauses is the number of distinct causes.
	NumCauses
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseROBFull:
		return "rob-full"
	case CauseIQFull:
		return "iq-full"
	case CauseNoPhysReg:
		return "no-phys-reg"
	case CausePortConflict:
		return "port-conflict"
	case CauseMemBusBusy:
		return "mem-bus-busy"
	}
	return "unknown"
}

// Event is one instruction's pipeline lifecycle, in cycle numbers. Stages a
// machine does not model are -1: the in-order reference machine reports
// only Issue/Exec/Complete.
type Event struct {
	// Index is the dynamic instruction's trace index.
	Index int
	// Op is the instruction's opcode.
	Op isa.Op
	// Fetch, Decode, Issue, Exec, Complete and Commit are the cycles the
	// instruction passed each stage: fetched, decoded/renamed, issued from
	// its queue, began execution, produced its last result, and committed.
	Fetch    int64
	Decode   int64
	Issue    int64
	Exec     int64
	Complete int64
	Commit   int64
}

// Sink receives simulation events. Implementations must not retain pointers
// into simulator state (events are self-contained values) and must be fast:
// both methods are called from the per-instruction hot loop.
type Sink interface {
	// Insn reports one instruction's completed lifecycle, in trace order.
	Insn(e Event)
	// Stall reports stall cycles attributed to a cause, as they accrue.
	Stall(c Cause, cycles int64)
}

// InsnFunc adapts a function to a Sink that ignores stall events — the
// common shape for tests that only need lifecycle cycles.
type InsnFunc func(Event)

// Insn implements Sink.
func (f InsnFunc) Insn(e Event) { f(e) }

// Stall implements Sink as a no-op.
func (InsnFunc) Stall(Cause, int64) {}

// Counter is a Sink that tallies events — a ready-made probe for tests and
// tools that only need aggregate confirmation that events flowed.
type Counter struct {
	// Insns is the number of lifecycle events received.
	Insns int64
	// StallCycles accumulates reported stall cycles per cause.
	StallCycles [NumCauses]int64
}

// Insn implements Sink.
func (c *Counter) Insn(Event) { c.Insns++ }

// Stall implements Sink.
func (c *Counter) Stall(cause Cause, cycles int64) {
	if cause < NumCauses {
		c.StallCycles[cause] += cycles
	}
}
