package probe

import (
	"strings"
	"testing"

	"oovec/internal/isa"
)

func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseROBFull:      "rob-full",
		CauseIQFull:       "iq-full",
		CauseNoPhysReg:    "no-phys-reg",
		CausePortConflict: "port-conflict",
		CauseMemBusBusy:   "mem-bus-busy",
	}
	if len(want) != int(NumCauses) {
		t.Fatalf("test covers %d causes, taxonomy has %d", len(want), NumCauses)
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Cause(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestCounterSink(t *testing.T) {
	var c Counter
	c.Insn(Event{Index: 0, Op: isa.OpVAdd, Issue: 5})
	c.Insn(Event{Index: 1, Op: isa.OpVLoad, Issue: 9})
	c.Stall(CauseROBFull, 7)
	c.Stall(CauseROBFull, 3)
	c.Stall(CauseMemBusBusy, 11)
	if c.Insns != 2 {
		t.Errorf("Insns = %d, want 2", c.Insns)
	}
	if got := c.StallCycles[CauseROBFull]; got != 10 {
		t.Errorf("StallCycles[rob-full] = %d, want 10", got)
	}
	if got := c.StallCycles[CauseMemBusBusy]; got != 11 {
		t.Errorf("StallCycles[mem-bus-busy] = %d, want 11", got)
	}
	if got := c.StallCycles[CauseIQFull]; got != 0 {
		t.Errorf("StallCycles[iq-full] = %d, want 0", got)
	}
}

// TestKanataGolden pins the exact rendering of a hand-built event pair: one
// fully modeled OOOVA-style lifecycle and one REF-style lifecycle with no
// fetch/decode/commit stages. Every command type and the cycle-delta
// encoding appear.
func TestKanataGolden(t *testing.T) {
	var sb strings.Builder
	k := NewKanata(&sb)
	k.Insn(Event{Index: 0, Op: isa.OpVLoad, Fetch: 0, Decode: 1, Issue: 2, Exec: 2, Complete: 10, Commit: 11})
	k.Insn(Event{Index: 1, Op: isa.OpVAdd, Fetch: -1, Decode: -1, Issue: 3, Exec: 3, Complete: 12, Commit: -1})
	k.Stall(CauseROBFull, 4) // must not affect the trace
	if err := k.Flush(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"Kanata\t0004",
		"C=\t0",
		"I\t0\t0\t0",
		"L\t0\t0\t0: v.ld",
		"S\t0\t0\tF",
		"C\t1",
		"S\t0\t0\tD",
		"C\t1",
		"S\t0\t0\tX",
		"C\t1",
		"I\t1\t1\t0",
		"L\t1\t0\t1: v.add",
		"S\t1\t0\tX",
		"C\t7",
		"E\t0\t0\tX",
		"C\t1",
		"R\t0\t0\t0",
		"C\t1",
		"E\t1\t0\tX",
		"R\t1\t1\t0",
		"",
	}, "\n")
	if sb.String() != want {
		t.Errorf("Kanata trace mismatch\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestKanataEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewKanata(&sb).Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "Kanata\t0004\n" {
		t.Errorf("empty trace = %q, want header only", sb.String())
	}
}

func TestInsnFunc(t *testing.T) {
	var got []int
	var s Sink = InsnFunc(func(e Event) { got = append(got, e.Index) })
	s.Insn(Event{Index: 3})
	s.Insn(Event{Index: 7})
	s.Stall(CauseIQFull, 1) // no-op by contract
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("InsnFunc saw %v, want [3 7]", got)
	}
}
