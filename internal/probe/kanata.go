package probe

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Kanata is a Sink that records instruction lifecycles and renders them as
// a Kanata/Konata pipeline trace (the format the Konata visualiser reads:
// https://github.com/shioyadan/Konata). Events are buffered in memory and
// written on Flush, because the format interleaves commands in cycle order
// while the simulators deliver events in trace order.
//
// Stage mapping: F covers fetch→decode, D covers decode/rename→queue issue,
// X covers issue→completion; the R command marks the commit (or, on
// machines without a commit stage, completion) cycle. Stages a machine does
// not model (negative cycles in the Event) are omitted.
type Kanata struct {
	w      io.Writer
	events []Event
}

// NewKanata returns a Kanata sink writing to w on Flush.
func NewKanata(w io.Writer) *Kanata { return &Kanata{w: w} }

// Insn implements Sink.
func (k *Kanata) Insn(e Event) { k.events = append(k.events, e) }

// Stall implements Sink as a no-op: the trace shows stalls as stage length.
func (Kanata) Stall(Cause, int64) {}

// kcmd is one rendered trace command with the cycle it belongs to.
type kcmd struct {
	cycle int64
	text  string
}

// Flush renders the buffered events and writes the complete trace. The
// output is deterministic: commands are ordered by cycle, ties broken by
// trace order.
func (k *Kanata) Flush() error {
	cmds := make([]kcmd, 0, len(k.events)*6)
	for i := range k.events {
		e := &k.events[i]
		id := e.Index
		first := e.Fetch
		if first < 0 {
			first = e.Decode
		}
		if first < 0 {
			first = e.Issue
		}
		if first < 0 {
			first = 0
		}
		cmds = append(cmds,
			kcmd{first, fmt.Sprintf("I\t%d\t%d\t0", id, id)},
			kcmd{first, fmt.Sprintf("L\t%d\t0\t%d: %v", id, e.Index, e.Op)})
		if e.Fetch >= 0 {
			cmds = append(cmds, kcmd{e.Fetch, fmt.Sprintf("S\t%d\t0\tF", id)})
		}
		if e.Decode >= 0 {
			cmds = append(cmds, kcmd{e.Decode, fmt.Sprintf("S\t%d\t0\tD", id)})
		}
		if e.Issue >= 0 {
			cmds = append(cmds, kcmd{e.Issue, fmt.Sprintf("S\t%d\t0\tX", id)})
			end := e.Complete
			if end < e.Issue {
				end = e.Issue
			}
			cmds = append(cmds, kcmd{end, fmt.Sprintf("E\t%d\t0\tX", id)})
		}
		retire := e.Commit
		if retire < 0 {
			retire = e.Complete
		}
		if retire < first {
			retire = first
		}
		cmds = append(cmds, kcmd{retire, fmt.Sprintf("R\t%d\t%d\t0", id, id)})
	}
	sort.SliceStable(cmds, func(i, j int) bool { return cmds[i].cycle < cmds[j].cycle })

	bw := bufio.NewWriter(k.w)
	fmt.Fprintf(bw, "Kanata\t0004\n")
	var cur int64
	if len(cmds) > 0 {
		cur = cmds[0].cycle
		fmt.Fprintf(bw, "C=\t%d\n", cur)
	}
	for _, c := range cmds {
		if c.cycle > cur {
			fmt.Fprintf(bw, "C\t%d\n", c.cycle-cur)
			cur = c.cycle
		}
		bw.WriteString(c.text)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
