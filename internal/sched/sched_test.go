package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMonotonicSerialises(t *testing.T) {
	m := NewMonotonic()
	if got := m.Allocate(0, 10); got != 0 {
		t.Errorf("first = %d", got)
	}
	if got := m.Allocate(5, 10); got != 10 {
		t.Errorf("second = %d, want 10", got)
	}
	if got := m.Allocate(100, 5); got != 100 {
		t.Errorf("third = %d, want 100", got)
	}
	if m.BusyCycles() != 25 {
		t.Errorf("busy = %d", m.BusyCycles())
	}
	if m.NextFree() != 105 {
		t.Errorf("nextFree = %d", m.NextFree())
	}
}

func TestMonotonicMergesAdjacentIntervals(t *testing.T) {
	m := NewMonotonic()
	m.Allocate(0, 10)
	m.Allocate(0, 10) // lands at 10, adjacent
	ivs := m.Intervals()
	if len(ivs) != 1 || ivs[0] != (Interval{0, 20}) {
		t.Errorf("intervals = %v, want single [0,20)", ivs)
	}
}

func TestGapBackfills(t *testing.T) {
	g := NewGap()
	if got := g.Allocate(100, 10); got != 100 {
		t.Errorf("first = %d", got)
	}
	// A later request that is ready earlier fits before the booked interval.
	if got := g.Allocate(0, 50); got != 0 {
		t.Errorf("backfill = %d, want 0", got)
	}
	// Too big for the hole [50,100): goes after.
	if got := g.Allocate(0, 60); got != 110 {
		t.Errorf("oversized = %d, want 110", got)
	}
	// Exactly fits the hole [50,100).
	if got := g.Allocate(0, 50); got != 50 {
		t.Errorf("exact fit = %d, want 50", got)
	}
}

func TestGapRespectsEarliest(t *testing.T) {
	g := NewGap()
	g.Allocate(10, 10) // [10,20)
	if got := g.Allocate(5, 5); got != 5 {
		t.Errorf("hole before = %d, want 5", got)
	}
	if got := g.Allocate(12, 5); got != 20 {
		t.Errorf("mid-interval request = %d, want 20", got)
	}
}

func TestGapMerging(t *testing.T) {
	g := NewGap()
	g.Allocate(0, 10)  // [0,10)
	g.Allocate(20, 10) // [20,30)
	g.Allocate(10, 10) // exactly fills the hole: all three merge
	ivs := g.Intervals()
	if len(ivs) != 1 || ivs[0] != (Interval{0, 30}) {
		t.Errorf("intervals = %v, want single [0,30)", ivs)
	}
	if g.BusyCycles() != 30 {
		t.Errorf("busy = %d", g.BusyCycles())
	}
}

func TestGapZeroOrNegativeDur(t *testing.T) {
	g := NewGap()
	start := g.Allocate(5, 0) // clamps to 1
	if start != 5 {
		t.Errorf("start = %d", start)
	}
	if g.BusyCycles() != 1 {
		t.Errorf("busy = %d, want 1", g.BusyCycles())
	}
}

func TestPropertyGapIntervalsDisjointSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGap()
		var total int64
		for i := 0; i < 400; i++ {
			dur := int64(1 + r.Intn(16))
			g.Allocate(int64(r.Intn(2000)), dur)
			total += dur
		}
		ivs := g.Intervals()
		var sum int64
		for i, iv := range ivs {
			if iv.End <= iv.Start {
				return false
			}
			if i > 0 && ivs[i-1].End >= iv.Start {
				return false // overlapping or unmerged-adjacent
			}
			sum += iv.Len()
		}
		return sum == total && g.BusyCycles() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGapNeverBeforeEarliest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGap()
		for i := 0; i < 300; i++ {
			earliest := int64(r.Intn(1000))
			start := g.Allocate(earliest, int64(1+r.Intn(8)))
			if start < earliest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMonotonicEqualsGapWhenRequestsOrdered(t *testing.T) {
	// When each request's earliest time is at or past the previous
	// reservation's end, backfilling never helps, so both disciplines agree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, g := NewMonotonic(), NewGap()
		clock := int64(0)
		for i := 0; i < 200; i++ {
			clock += int64(r.Intn(5))
			dur := int64(1 + r.Intn(8))
			sm := m.Allocate(clock, dur)
			sg := g.Allocate(clock, dur)
			if sm != sg {
				return false
			}
			clock = sm + dur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRingWindowCapacity(t *testing.T) {
	w := NewRingWindow(2)
	if w.FreeAt() != 0 {
		t.Error("empty window should admit immediately")
	}
	w.Admit(100)
	if w.FreeAt() != 0 {
		t.Error("one of two slots used; should admit immediately")
	}
	w.Admit(50)
	if got := w.FreeAt(); got != 100 {
		t.Errorf("full window FreeAt = %d, want departure of oldest (100)", got)
	}
	w.Admit(200) // replaces oldest
	if got := w.FreeAt(); got != 50 {
		t.Errorf("FreeAt = %d, want 50", got)
	}
}

func TestRingWindowUnbounded(t *testing.T) {
	w := NewRingWindow(0)
	for i := 0; i < 100; i++ {
		w.Admit(int64(i))
	}
	if w.FreeAt() != 0 {
		t.Error("unbounded window must never block")
	}
}

func TestRingWindowReset(t *testing.T) {
	w := NewRingWindow(1)
	w.Admit(99)
	w.Reset()
	if w.FreeAt() != 0 {
		t.Error("reset window should admit immediately")
	}
}

func TestAllocatorInterfaceCompliance(t *testing.T) {
	var _ Allocator = NewMonotonic()
	var _ Allocator = NewGap()
	for _, a := range []Allocator{NewMonotonic(), NewGap()} {
		a.Allocate(0, 5)
		a.Reset()
		if a.BusyCycles() != 0 || len(a.Intervals()) != 0 {
			t.Errorf("%T: reset did not clear", a)
		}
	}
}
