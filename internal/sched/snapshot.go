package sched

// Snapshot/Restore support for checkpointing (ooosim/refsim checkpoints
// serialise the full allocator state mid-run and revive it, possibly in a
// different process, so a preempted simulation resumes instead of
// restarting). State types carry only exported fields so encoding/gob can
// round-trip them; Snapshot deep-copies the interval storage because the
// allocator keeps mutating it after the snapshot is taken.

// MonotonicState is the serialisable state of a Monotonic allocator.
type MonotonicState struct {
	NextFree int64
	Busy     int64
	IV       []Interval
}

// Snapshot captures the allocator state. The returned state shares nothing
// with the allocator.
func (m *Monotonic) Snapshot() MonotonicState {
	return MonotonicState{
		NextFree: m.nextFree,
		Busy:     m.busy,
		IV:       append([]Interval(nil), m.iv...),
	}
}

// Restore replaces the allocator state with st, reusing storage when it fits.
func (m *Monotonic) Restore(st MonotonicState) {
	m.nextFree, m.busy = st.NextFree, st.Busy
	m.iv = append(m.iv[:0], st.IV...)
}

// GapState is the serialisable state of a Gap allocator.
type GapState struct {
	IV   []Interval
	Busy int64
}

// Snapshot captures the allocator state (deep copy).
func (g *Gap) Snapshot() GapState {
	return GapState{IV: append([]Interval(nil), g.iv...), Busy: g.busy}
}

// Restore replaces the allocator state with st, reusing storage when it fits.
func (g *Gap) Restore(st GapState) {
	g.iv = append(g.iv[:0], st.IV...)
	g.busy = st.Busy
}

// RingWindowState is the serialisable state of a RingWindow.
type RingWindowState struct {
	Leave []int64
	N     int
	Next  int
	Count int
}

// Snapshot captures the window state (deep copy).
func (w *RingWindow) Snapshot() RingWindowState {
	return RingWindowState{
		Leave: append([]int64(nil), w.leave...),
		N:     w.n,
		Next:  w.next,
		Count: w.count,
	}
}

// Restore replaces the window state with st. The window's capacity follows
// the state (a checkpoint is only restored into a machine built from the
// same configuration, so in practice the capacity never changes).
func (w *RingWindow) Restore(st RingWindowState) {
	if len(w.leave) != len(st.Leave) {
		w.leave = make([]int64, len(st.Leave))
	}
	copy(w.leave, st.Leave)
	w.n, w.next, w.count = st.N, st.Next, st.Count
}
