// Package sched provides the cycle-interval resource allocators both
// simulators are built on.
//
// Every hardware resource with occupancy — a functional unit, the memory
// address bus, an issue port — is modelled as an allocator of cycle
// intervals. The simulators process the trace in program order and ask each
// resource for the earliest feasible interval subject to the instruction's
// readiness time. Two allocation disciplines exist:
//
//   - Monotonic: reservations never start before the end of the previous
//     reservation. This models in-order resources (the reference machine's
//     units, the shared address bus seen by an in-order memory unit).
//
//   - Gap: reservations may backfill earlier unused holes. This models
//     out-of-order issue: when a younger instruction is ready before an
//     older one, it may claim an earlier slot. Because the simulators
//     process instructions oldest-first, older instructions always get
//     first choice — exactly the oldest-ready-first heuristic of real
//     issue logic.
//
// Both allocators record their busy intervals so the metrics package can
// reconstruct exact per-cycle unit-state breakdowns (Figures 3 and 7)
// without per-cycle simulation.
package sched

// Interval is a half-open busy interval [Start, End).
type Interval struct {
	Start, End int64
}

// Len returns the interval length in cycles.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// Allocator is the shared interface of Monotonic and Gap.
type Allocator interface {
	// Allocate books dur consecutive cycles starting no earlier than
	// earliest and returns the start cycle.
	Allocate(earliest, dur int64) int64
	// BusyCycles returns the total booked cycles.
	BusyCycles() int64
	// Intervals returns the booked intervals, sorted and disjoint
	// (adjacent intervals are merged). The caller must not mutate it.
	Intervals() []Interval
	// Reset clears all bookings.
	Reset()
}

// Monotonic is an in-order allocator: each reservation starts at
// max(earliest, end of previous reservation).
type Monotonic struct {
	nextFree int64
	busy     int64
	iv       []Interval
}

// NewMonotonic returns an empty in-order allocator.
func NewMonotonic() *Monotonic { return &Monotonic{} }

// Allocate implements Allocator.
//
//ovlint:hotpath books one interval per instruction; steady-state appends stay within Reserve capacity
func (m *Monotonic) Allocate(earliest, dur int64) int64 {
	if dur <= 0 {
		dur = 1
	}
	start := earliest
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + dur
	m.busy += dur
	if n := len(m.iv); n > 0 && m.iv[n-1].End == start {
		m.iv[n-1].End = start + dur
	} else {
		m.iv = append(m.iv, Interval{start, start + dur})
	}
	return start
}

// NextFree returns the end of the last reservation.
func (m *Monotonic) NextFree() int64 { return m.nextFree }

// Reserve grows the interval storage to hold at least n intervals without
// further allocation. Simulators call it once per run with a bound derived
// from the trace length, so a reused allocator's steady state appends never
// reallocate.
func (m *Monotonic) Reserve(n int) { m.iv = reserve(m.iv, n) }

// BusyCycles implements Allocator.
func (m *Monotonic) BusyCycles() int64 { return m.busy }

// Intervals implements Allocator.
func (m *Monotonic) Intervals() []Interval { return m.iv }

// Reset implements Allocator. The interval storage is kept (and its
// contents overwritten by later bookings), so slices returned by Intervals
// before the Reset are invalidated.
func (m *Monotonic) Reset() {
	m.nextFree, m.busy = 0, 0
	m.iv = m.iv[:0]
}

// Gap is an out-of-order allocator that keeps a sorted, disjoint list of
// busy intervals and books the first hole large enough.
type Gap struct {
	iv   []Interval
	busy int64
}

// NewGap returns an empty gap allocator.
func NewGap() *Gap { return &Gap{} }

// Allocate implements Allocator: it finds the earliest hole of length dur
// starting at or after earliest and books it.
//
//ovlint:hotpath books one interval per instruction; steady-state appends stay within Reserve capacity
func (g *Gap) Allocate(earliest, dur int64) int64 {
	if dur <= 0 {
		dur = 1
	}
	g.busy += dur
	start, i := g.findHole(earliest, dur)
	g.insert(i, Interval{start, start + dur})
	return start
}

// Peek returns the start Allocate would choose, without booking.
//
//ovlint:hotpath probed several times per memory instruction
func (g *Gap) Peek(earliest, dur int64) int64 {
	if dur <= 0 {
		dur = 1
	}
	start, _ := g.findHole(earliest, dur)
	return start
}

// findHole locates the earliest hole of length dur at or after earliest and
// returns its start plus the insertion index.
func (g *Gap) findHole(earliest, dur int64) (int64, int) {
	// Binary search for the first interval ending after earliest.
	lo, hi := 0, len(g.iv)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.iv[mid].End <= earliest {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := earliest
	i := lo
	for i < len(g.iv) {
		if start+dur <= g.iv[i].Start {
			break // hole before interval i fits
		}
		if g.iv[i].End > start {
			start = g.iv[i].End
		}
		i++
	}
	return start, i
}

// insert places iv at position i, merging with neighbours when adjacent.
func (g *Gap) insert(i int, nv Interval) {
	// Merge with predecessor?
	if i > 0 && g.iv[i-1].End == nv.Start {
		g.iv[i-1].End = nv.End
		// Merge with successor too?
		if i < len(g.iv) && g.iv[i].Start == g.iv[i-1].End {
			g.iv[i-1].End = g.iv[i].End
			g.iv = append(g.iv[:i], g.iv[i+1:]...)
		}
		return
	}
	// Merge with successor?
	if i < len(g.iv) && g.iv[i].Start == nv.End {
		g.iv[i].Start = nv.Start
		return
	}
	g.iv = append(g.iv, Interval{})
	copy(g.iv[i+1:], g.iv[i:])
	g.iv[i] = nv
}

// Reserve grows the interval storage to hold at least n intervals without
// further allocation (see Monotonic.Reserve).
func (g *Gap) Reserve(n int) { g.iv = reserve(g.iv, n) }

// reserve returns iv with capacity >= n, preserving contents.
func reserve(iv []Interval, n int) []Interval {
	if cap(iv) >= n {
		return iv
	}
	grown := make([]Interval, len(iv), n)
	copy(grown, iv)
	return grown
}

// BusyCycles implements Allocator.
func (g *Gap) BusyCycles() int64 { return g.busy }

// Intervals implements Allocator.
func (g *Gap) Intervals() []Interval { return g.iv }

// Reset implements Allocator. The interval storage is kept (and its
// contents overwritten by later bookings), so slices returned by Intervals
// before the Reset are invalidated.
func (g *Gap) Reset() {
	g.iv = g.iv[:0]
	g.busy = 0
}

// RingWindow tracks the departure times of the last N occupants of a
// bounded structure (an issue queue, a reorder buffer). Entry i may only be
// admitted once occupant i-N has departed; FreeAt returns that constraint.
type RingWindow struct {
	leave []int64
	n     int
	next  int
	count int
}

// NewRingWindow returns a window of capacity n (n <= 0 means unbounded).
func NewRingWindow(n int) *RingWindow {
	if n <= 0 {
		return &RingWindow{}
	}
	return &RingWindow{leave: make([]int64, n), n: n}
}

// FreeAt returns the earliest cycle a new occupant may be admitted: 0 if the
// structure has spare capacity, otherwise the departure time of the oldest
// tracked occupant.
func (w *RingWindow) FreeAt() int64 {
	if w.n == 0 || w.count < w.n {
		return 0
	}
	return w.leave[w.next]
}

// Admit records a new occupant that will depart at the given cycle.
// Departure times must be recorded for every occupant; they need not be
// monotonic (out-of-order issue), but the capacity constraint uses admission
// order, matching a hardware structure freed in allocation order.
func (w *RingWindow) Admit(departAt int64) {
	if w.n == 0 {
		return
	}
	w.leave[w.next] = departAt
	w.next = (w.next + 1) % w.n
	if w.count < w.n {
		w.count++
	}
}

// Occupied returns the number of tracked occupants still resident at the
// given cycle: those admitted but not yet departed (leave time > now). The
// scan is linear over at most the window capacity (16–64 in every
// configuration), and unbounded windows report zero.
//
//ovlint:hotpath sampled once per instruction for occupancy histograms; a bounded scan with no allocation
func (w *RingWindow) Occupied(now int64) int {
	occ := 0
	for i := 0; i < w.count; i++ {
		if w.leave[i] > now {
			occ++
		}
	}
	return occ
}

// Reset clears the window.
func (w *RingWindow) Reset() {
	w.next, w.count = 0, 0
}
