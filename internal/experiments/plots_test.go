package experiments

import (
	"strings"
	"testing"
)

func TestPlotAllFigures(t *testing.T) {
	s := NewSuite(Opts{Insns: 3000, Names: []string{"flo52", "trfd"}})
	for _, name := range []string{"fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig11", "fig12", "fig13"} {
		out, err := Plot(s, name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: empty chart", name)
		}
		if !strings.Contains(out, "Figure") {
			t.Errorf("%s: missing title", name)
		}
	}
}

func TestPlotTablesRejected(t *testing.T) {
	s := NewSuite(Opts{Insns: 2000, Names: []string{"flo52"}})
	for _, name := range []string{"table1", "table2", "table3", "nonesuch"} {
		if _, err := Plot(s, name); err == nil {
			t.Errorf("%s: expected error (no chart form)", name)
		}
	}
}

func TestPlotFig5HasAllSeries(t *testing.T) {
	s := NewSuite(Opts{Insns: 3000, Names: []string{"flo52"}})
	out, err := Plot(s, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IDEAL", "OOOVA-16", "OOOVA-128", "legend:"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 chart missing %q", want)
		}
	}
}

func TestPlotFig7CoversBothMachines(t *testing.T) {
	s := NewSuite(Opts{Insns: 3000, Names: []string{"flo52"}})
	out, err := Plot(s, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flo52/REF") || !strings.Contains(out, "flo52/OOO") {
		t.Error("fig7 chart missing machine rows")
	}
}
