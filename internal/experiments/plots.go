package experiments

import (
	"fmt"
	"strings"

	"oovec/internal/metrics"
	"oovec/internal/ooosim"
	"oovec/internal/viz"
)

// Plot renders a text chart of one experiment (the figures that are charts
// in the paper; tables render as tables via Run). Returns an error for
// experiments with no chart form.
func Plot(s *Suite, name string) (string, error) {
	switch strings.ToLower(name) {
	case "fig3":
		return plotStates3(Fig3(s)), nil
	case "fig4":
		return plotFig4(Fig4(s)), nil
	case "fig5":
		return plotFig5(Fig5(s)), nil
	case "fig6":
		return plotFig6(Fig6(s)), nil
	case "fig7":
		return plotFig7(Fig7(s)), nil
	case "fig8":
		return plotFig8(Fig8(s)), nil
	case "fig9":
		return plotFig9(Fig9(s)), nil
	case "fig11":
		return plotElim(Fig11(s)), nil
	case "fig12":
		return plotElim(Fig12(s)), nil
	case "fig13":
		return plotFig13(Fig13(s)), nil
	}
	return "", fmt.Errorf("experiments: no chart form for %q", name)
}

// stateParts are the legend entries of the stacked state charts.
func stateParts() []string {
	parts := make([]string, metrics.NumStates)
	for st := metrics.State(0); st < metrics.NumStates; st++ {
		parts[st] = st.String()
	}
	return parts
}

func breakdownRow(b metrics.Breakdown) []float64 {
	row := make([]float64, metrics.NumStates)
	for st := 0; st < metrics.NumStates; st++ {
		row[st] = float64(b[st])
	}
	return row
}

func plotStates3(r *Fig3Result) string {
	var b strings.Builder
	for _, name := range r.Names {
		labels := make([]string, len(r.Latencies))
		data := make([][]float64, len(r.Latencies))
		for i, lat := range r.Latencies {
			labels[i] = fmt.Sprintf("lat=%d", lat)
			data[i] = breakdownRow(r.Breakdown[name][lat])
		}
		b.WriteString(viz.Stacked("Figure 3 — "+name+" (REF state breakdown)",
			labels, stateParts(), data, 60))
		b.WriteString("\n")
	}
	return b.String()
}

func plotFig4(r *Fig4Result) string {
	series := make([]viz.Series, len(r.Latencies))
	for i, lat := range r.Latencies {
		s := viz.Series{Name: fmt.Sprintf("lat=%d", lat)}
		for _, name := range r.Names {
			s.Values = append(s.Values, r.IdlePct[name][lat])
		}
		series[i] = s
	}
	return viz.Grouped("Figure 4 — memory port idle % (REF)", r.Names, series, 50)
}

func plotFig5(r *Fig5Result) string {
	var b strings.Builder
	xs := make([]float64, len(r.Regs))
	for i, v := range r.Regs {
		xs[i] = float64(v)
	}
	for _, name := range r.Names {
		ideal := make([]float64, len(r.Regs))
		s16 := make([]float64, len(r.Regs))
		s128 := make([]float64, len(r.Regs))
		for i, regs := range r.Regs {
			ideal[i] = r.Ideal[name]
			s16[i] = r.Speedup16[name][regs]
			s128[i] = r.Speedup128[name][regs]
		}
		b.WriteString(viz.Lines(
			fmt.Sprintf("Figure 5 — %s (speedup vs physical registers)", name), xs,
			[]viz.Series{
				{Name: "IDEAL", Values: ideal, Glyph: '-'},
				{Name: "OOOVA-16", Values: s16, Glyph: 'x'},
				{Name: "OOOVA-128", Values: s128, Glyph: 'o'},
			}, 56, 12))
		b.WriteString("\n")
	}
	return b.String()
}

func plotFig6(r *Fig6Result) string {
	ref := viz.Series{Name: "REF"}
	ooo := viz.Series{Name: "OOOVA"}
	for _, name := range r.Names {
		ref.Values = append(ref.Values, r.RefIdle[name])
		ooo.Values = append(ooo.Values, r.OOOIdle[name])
	}
	return viz.Grouped("Figure 6 — memory port idle % (latency 50, 16 regs)",
		r.Names, []viz.Series{ref, ooo}, 50)
}

func plotFig7(r *Fig7Result) string {
	labels := make([]string, 0, 2*len(r.Names))
	data := make([][]float64, 0, 2*len(r.Names))
	for _, name := range r.Names {
		labels = append(labels, name+"/REF", name+"/OOO")
		data = append(data, breakdownRow(r.Ref[name]), breakdownRow(r.OOO[name]))
	}
	return viz.Stacked("Figure 7 — execution-cycle breakdown", labels, stateParts(), data, 60)
}

func plotFig8(r *Fig8Result) string {
	var b strings.Builder
	xs := make([]float64, len(r.Latencies))
	for i, v := range r.Latencies {
		xs[i] = float64(v)
	}
	for _, name := range r.Names {
		ref := make([]float64, len(r.Latencies))
		ooo := make([]float64, len(r.Latencies))
		ideal := make([]float64, len(r.Latencies))
		for i, lat := range r.Latencies {
			ref[i] = float64(r.RefCycles[name][lat]) / 1000
			ooo[i] = float64(r.OOOCycles[name][lat]) / 1000
			ideal[i] = float64(r.Ideal[name]) / 1000
		}
		b.WriteString(viz.Lines(
			fmt.Sprintf("Figure 8 — %s (kilocycles vs memory latency)", name), xs,
			[]viz.Series{
				{Name: "REF", Values: ref, Glyph: '+'},
				{Name: "OOOVA-16", Values: ooo, Glyph: 'x'},
				{Name: "IDEAL", Values: ideal, Glyph: '-'},
			}, 56, 12))
		b.WriteString("\n")
	}
	return b.String()
}

func plotFig9(r *Fig9Result) string {
	var b strings.Builder
	xs := make([]float64, len(r.Regs))
	for i, v := range r.Regs {
		xs[i] = float64(v)
	}
	for _, name := range r.Names {
		early := make([]float64, len(r.Regs))
		late := make([]float64, len(r.Regs))
		ideal := make([]float64, len(r.Regs))
		for i, regs := range r.Regs {
			early[i] = r.Early[name][regs]
			late[i] = r.Late[name][regs]
			ideal[i] = r.Ideal[name]
		}
		b.WriteString(viz.Lines(
			fmt.Sprintf("Figure 9 — %s (early vs late commit)", name), xs,
			[]viz.Series{
				{Name: "IDEAL", Values: ideal, Glyph: '-'},
				{Name: "early", Values: early, Glyph: 'x'},
				{Name: "late", Values: late, Glyph: 'o'},
			}, 56, 12))
		b.WriteString("\n")
	}
	return b.String()
}

func plotElim(r *ElimResult) string {
	fig := "Figure 11 — SLE speedup"
	if r.Mode != ooosim.ElimSLE {
		fig = "Figure 12 — SLE+VLE speedup"
	}
	series := make([]viz.Series, len(r.Regs))
	for i, regs := range r.Regs {
		s := viz.Series{Name: fmt.Sprintf("%d regs", regs)}
		for _, name := range r.Names {
			s.Values = append(s.Values, r.Speedup[name][regs])
		}
		series[i] = s
	}
	return viz.Grouped(fig+" (over late-commit OOOVA)", r.Names, series, 40)
}

func plotFig13(r *Fig13Result) string {
	sle := viz.Series{Name: "SLE"}
	vle := viz.Series{Name: "SLE+VLE"}
	for _, name := range r.Names {
		sle.Values = append(sle.Values, r.SLE[name])
		vle.Values = append(vle.Values, r.SLEVLE[name])
	}
	return viz.Grouped("Figure 13 — traffic reduction ratio (32 regs)",
		r.Names, []viz.Series{sle, vle}, 40)
}
