package experiments

import (
	"reflect"
	"testing"

	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/rob"
)

// TestPooledMatchesFreshRuns compares the suite's pooled-machine results
// against fresh one-shot simulator runs for a cross-section of the grid
// points the drivers visit: every measurement a Render consumes must be
// byte-identical whether the machine was constructed for the run or revived
// by Reset.
func TestPooledMatchesFreshRuns(t *testing.T) {
	s := NewSuite(Opts{Insns: 1200, Parallelism: 2})
	names := []string{"swm256", "trfd", "bdna"}

	for _, name := range names {
		tr := s.Trace(name)
		for _, lat := range []int64{1, 50, 100} {
			cfg := refsim.DefaultConfig()
			cfg.MemLatency = lat
			want := refsim.Run(tr, cfg)
			if got := s.Ref(name, lat); !reflect.DeepEqual(got, want) {
				t.Errorf("%s lat=%d: pooled REF differs from fresh\ngot:  %+v\nwant: %+v",
					name, lat, got, want)
			}
		}
		for _, cfg := range oooSampleConfigs() {
			want := ooosim.Run(tr, cfg).Stats
			if got := s.OOO(name, cfg); !reflect.DeepEqual(got, want) {
				t.Errorf("%s cfg=%+v: pooled OOOVA differs from fresh\ngot:  %+v\nwant: %+v",
					name, cfg, got, want)
			}
		}
	}
}

// oooSampleConfigs covers the configuration axes the drivers sweep:
// register counts (shape changes), queue depth, commit policy, elimination.
func oooSampleConfigs() []ooosim.Config {
	base := ooosim.DefaultConfig()
	regs9 := base
	regs9.PhysVRegs = 9
	regs64 := base
	regs64.PhysVRegs = 64
	deepQ := base
	deepQ.QueueSlots = 128
	late := base
	late.Commit = rob.PolicyLate
	elim := late
	elim.LoadElim = ooosim.ElimSLEVLE
	return []ooosim.Config{base, regs9, regs64, deepQ, late, elim}
}

// TestAllDriversPooledVsSerialWorkers renders every experiment from two
// independent suites — forced-serial (one pooled worker) and one worker per
// grid point's natural parallelism — and asserts byte-identical output.
// Unlike TestParallelOutputIdentical this uses small distinct worker counts
// to stress machine reuse order inside each worker.
func TestAllDriversPooledVsSerialWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := NewSuite(Opts{Insns: 1000, Parallelism: 1})
	pooled := NewSuite(Opts{Insns: 1000, Parallelism: 3})
	for _, exp := range AllExperiments {
		want, err := Run(serial, exp)
		if err != nil {
			t.Fatalf("serial %s: %v", exp, err)
		}
		got, err := Run(pooled, exp)
		if err != nil {
			t.Fatalf("pooled %s: %v", exp, err)
		}
		if got != want {
			t.Errorf("%s: 3-worker pooled output differs from serial", exp)
		}
	}
}
