package experiments

import (
	"runtime"
	"testing"
)

// parallelInsns keeps the determinism sweep fast while still running every
// benchmark through both simulators.
const parallelInsns = 1500

// TestParallelOutputIdentical renders tables and figures with one worker
// and with one worker per core and asserts the output is byte-identical —
// the determinism contract of the parallel experiment engine.
func TestParallelOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Every parallelized driver: each has its own index math to cover.
	exps := []string{"table2", "table3", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig11", "fig12", "fig13"}

	serial := NewSuite(Opts{Insns: parallelInsns, Parallelism: 1})
	parallel := NewSuite(Opts{Insns: parallelInsns, Parallelism: runtime.GOMAXPROCS(0)})
	for _, exp := range exps {
		want, err := Run(serial, exp)
		if err != nil {
			t.Fatalf("serial %s: %v", exp, err)
		}
		got, err := Run(parallel, exp)
		if err != nil {
			t.Fatalf("parallel %s: %v", exp, err)
		}
		if got != want {
			t.Errorf("%s: parallel output differs from serial output\nserial:\n%s\nparallel:\n%s",
				exp, want, got)
		}
	}
}

// TestSuiteCachesAreConcurrencySafe hammers the trace and reference-run
// caches from the worker pool; run with -race this is the engine's
// synchronisation test.
func TestSuiteCachesAreConcurrencySafe(t *testing.T) {
	s := NewSuite(Opts{Insns: 800, Parallelism: 0})
	names := s.Names()
	s.parallel(4*len(names), func(w *Worker, k int) {
		name := names[k%len(names)]
		tr := w.Trace(name)
		if tr == nil || tr.Len() == 0 {
			t.Errorf("empty trace for %s", name)
		}
		st := w.Ref(name, 50)
		if st.Cycles <= 0 {
			t.Errorf("%s: non-positive cycles", name)
		}
	})
	// Every task for the same key must observe the same cached object.
	for _, name := range names {
		if s.Trace(name) != s.Trace(name) {
			t.Errorf("%s: trace cache returned different objects", name)
		}
		if s.Ref(name, 50) != s.Ref(name, 50) {
			t.Errorf("%s: ref cache returned different objects", name)
		}
	}
}

// TestWorkersResolution checks the -j semantics exposed through Opts.
func TestWorkersResolution(t *testing.T) {
	if got := NewSuite(Opts{Parallelism: 1}).Workers(); got != 1 {
		t.Errorf("Parallelism 1: Workers() = %d, want 1", got)
	}
	if got := NewSuite(Opts{}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism 0: Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
