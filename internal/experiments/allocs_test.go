//go:build !race

// The allocation regression guards live behind !race because the race
// detector instruments allocations and would trip the bounds.

package experiments

import (
	"runtime"
	"testing"
)

// TestPooledSuiteBytesBudget guards the bytes/op of a pooled suite run:
// the Fig5 grid drives 100 OOOVA and 10 REF simulations (10 benchmarks ×
// 5 register counts × 2 queue depths) through per-worker pooled machines.
// Before pooling, every simulation constructed a fresh ~2 MB machine; the
// pooled path builds machines once per (worker, shape) and reuses them, so
// the per-simulation average must stay far below one construction.
func TestPooledSuiteBytesBudget(t *testing.T) {
	const insns = 2000
	const sims = 110 // OOOVA grid points + REF baselines in Fig5

	run := func() {
		s := NewSuite(Opts{Insns: insns, Parallelism: 1})
		if res := Fig5(s); len(res.Names) == 0 {
			t.Fatal("empty result")
		}
	}
	run() // warm any lazy runtime state

	const runs = 3
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perSuite := (after.TotalAlloc - before.TotalAlloc) / runs
	perSim := perSuite / sims

	// Each suite builds one machine per shape and shares its traces through
	// the process-wide cache, so the budget is dominated by those one-time
	// costs spread over the grid; a fresh-machine-per-simulation regression
	// (~2 MB each) blows straight through it.
	const budget = 256 << 10 // 256 KiB per simulation
	if perSim > budget {
		t.Errorf("pooled suite run allocated %d B per simulation (%d B per suite), want <= %d",
			perSim, perSuite, budget)
	}
}

// TestCrossSuiteTraceCacheBytesBudget guards the cross-suite trace cache:
// with trace generation shared through simcache, a full-size Fig5 suite
// after the first allocates well below the 33.6 MB that the pre-cache
// implementation paid per run (~20 MB of which was per-suite trace
// regeneration).
func TestCrossSuiteTraceCacheBytesBudget(t *testing.T) {
	run := func() {
		// 8000 insns matches the setup of the measured 33.6 MB/run figure.
		s := NewSuite(Opts{Insns: 8000, Parallelism: 1})
		if res := Fig5(s); len(res.Names) == 0 {
			t.Fatal("empty result")
		}
	}
	run() // first run generates (or finds) the shared traces

	const runs = 2
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perSuite := (after.TotalAlloc - before.TotalAlloc) / runs

	// The pre-cache cost was 33.6 MB per suite; without per-suite trace
	// regeneration a warm run must stay clearly below it.
	t.Logf("warm Fig5 suite: %.1f MB per run", float64(perSuite)/(1<<20))
	const budget = 24 << 20
	if perSuite > budget {
		t.Errorf("warm Fig5 suite allocated %d B, want <= %d (pre-cache cost was ~33.6 MB)",
			perSuite, budget)
	}
}
