// Package experiments regenerates every table and figure of the paper's
// evaluation: Tables 1–3 and Figures 3–9, 11–13 (Figures 1, 2 and 10 are
// block diagrams — their content is the simulator structure itself).
//
// Each experiment has a driver returning a typed result with a Render
// method producing the paper-style text table. The drivers are used by
// cmd/ovbench, by the benchmark suite in the repository root, and by
// EXPERIMENTS.md generation.
//
// Every driver fans its independent (benchmark × configuration) simulations
// across a worker pool (package engine); Opts.Parallelism selects the worker
// count. Results are computed into index-addressed slots and assembled
// serially, so rendered output is byte-identical to a serial run for any
// worker count.
//
// Each pool worker owns a Worker carrying pooled, resettable simulator
// machines (ooosim.Machine, refsim.Machine) for the lifetime of one grid,
// so a driver's N simulations construct at most workers×shapes machines
// instead of N.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"oovec/internal/engine"
	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/rob"
	"oovec/internal/simcache"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

// Opts configures a Suite.
type Opts struct {
	// Insns overrides the per-benchmark dynamic instruction budget
	// (0 = tgen.DefaultInsns). Smaller values speed up sweeps.
	Insns int
	// Names restricts the benchmark set (nil = all ten).
	Names []string
	// Parallelism is the number of workers the drivers fan simulations
	// across: 0 selects one worker per core (GOMAXPROCS), 1 forces serial
	// execution. Output is byte-identical for every value.
	Parallelism int
	// Store, when non-nil, is the durable result store behind the suite's
	// run caches (ovbench -cache-dir): a run-cache miss probes the store
	// before simulating and publishes what it simulates. Entries use the
	// same simcache.ResultKey scheme as ovserve and ovsweep, so a suite
	// run warms CLI sweeps and the daemon — and a repeated ovbench across
	// process restarts re-simulates nothing.
	Store simcache.ResultStore
}

// Suite caches generated traces and reference runs across experiments.
// All methods are safe for concurrent use: each cache entry is generated
// exactly once (concurrent requesters block until it is ready) and traces
// are immutable once built. Traces live in the process-wide simcache, so
// every suite (and the ovserve daemon) sharing a (preset, insns) pair
// shares one generation.
type Suite struct {
	opts  Opts
	names []string

	mu      sync.Mutex
	refRuns map[refKey]*slot[*metrics.RunStats]
	oooRuns map[oooKey]*slot[*metrics.RunStats]

	// workers recycles Workers (and their pooled machines) for the
	// convenience methods Suite.Ref and Suite.OOO, which run outside a
	// grid's per-worker state.
	workers sync.Pool
}

type refKey struct {
	name    string
	latency int64
}

// oooKey identifies one OOOVA run. The configuration is keyed by its
// rendered form: Config holds an interface field (Sink), so it cannot be a map
// key itself, and rendering tracks future Config fields automatically.
type oooKey struct {
	name string
	cfg  string
}

// slot is a once-filled cache cell shared by the trace, reference-run and
// OOOVA-run caches.
type slot[T any] struct {
	once sync.Once
	val  T
	// panicVal records a fill panic so every waiter re-raises the true
	// cause instead of observing a zero value.
	panicVal any
}

// runOnce executes fn under the slot's once, recording and re-raising any
// panic for both the first caller and every later waiter.
func (s *slot[T]) runOnce(fn func() T) T {
	s.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				s.panicVal = r
				panic(r)
			}
		}()
		s.val = fn()
	})
	if s.panicVal != nil {
		panic(s.panicVal)
	}
	return s.val
}

// NewSuite builds a suite over the selected benchmarks.
func NewSuite(opts Opts) *Suite {
	names := opts.Names
	if len(names) == 0 {
		names = tgen.Names()
	}
	return &Suite{
		opts:    opts,
		names:   names,
		refRuns: make(map[refKey]*slot[*metrics.RunStats]),
		oooRuns: make(map[oooKey]*slot[*metrics.RunStats]),
	}
}

// Names returns the benchmark names in Table 2 order.
func (s *Suite) Names() []string { return s.names }

// Workers returns the resolved worker count the suite fans out across.
func (s *Suite) Workers() int { return engine.Workers(s.opts.Parallelism) }

// Worker carries the pooled simulator machines one pool worker drives a
// grid's simulations with. Machines are built lazily on first use and reset
// between runs, so an N-point grid constructs machines once per (worker,
// shape) instead of once per point. A Worker is not safe for concurrent
// use; the engine gives each goroutine its own.
type Worker struct {
	s   *Suite
	ooo *ooosim.Machine
	ref *refsim.Machine
}

// NewWorker returns a worker bound to the suite's caches.
func (s *Suite) NewWorker() *Worker { return &Worker{s: s} }

// parallel runs fn(w, i) for i in [0, n) across the suite's workers, each
// owning pooled machines for the lifetime of the call. Workers come from
// the suite's recycling pool and return to it once the grid has drained,
// so consecutive drivers (a full ovbench run calls twelve) reuse machines
// instead of rebuilding them per grid.
func (s *Suite) parallel(n int, fn func(w *Worker, i int)) {
	var mu sync.Mutex
	var borrowed []*Worker
	engine.MapWith(s.opts.Parallelism, n, func() *Worker {
		w := s.borrowWorker()
		mu.Lock()
		borrowed = append(borrowed, w)
		mu.Unlock()
		return w
	}, fn)
	// MapWith has returned: no goroutine holds a worker any more.
	for _, w := range borrowed {
		s.returnWorker(w)
	}
}

// runRef runs the reference machine on the worker's pooled instance.
func (w *Worker) runRef(tr *trace.Trace, cfg refsim.Config) *metrics.RunStats {
	if w.ref == nil {
		w.ref = refsim.NewMachine(cfg)
	} else {
		w.ref.Reset(cfg)
	}
	return w.ref.Run(tr)
}

// runOOO runs the OOOVA on the worker's pooled instance.
func (w *Worker) runOOO(tr *trace.Trace, cfg ooosim.Config) *ooosim.Result {
	if w.ooo == nil {
		w.ooo = ooosim.NewMachine(cfg)
	} else {
		w.ooo.Reset(cfg)
	}
	return w.ooo.Run(tr)
}

// Trace returns (generating and caching) the trace for a benchmark.
func (w *Worker) Trace(name string) *trace.Trace { return w.s.Trace(name) }

// Ref returns (running and caching) the reference result at the given
// memory latency, simulating on the worker's pooled machine on a miss.
func (w *Worker) Ref(name string, latency int64) *metrics.RunStats {
	s := w.s
	key := refKey{name, latency}
	s.mu.Lock()
	sl, ok := s.refRuns[key]
	if !ok {
		sl = &slot[*metrics.RunStats]{}
		s.refRuns[key] = sl
	}
	s.mu.Unlock()
	return sl.runOnce(func() *metrics.RunStats {
		cfg := refsim.DefaultConfig()
		cfg.MemLatency = latency
		return throughStore(s, simcache.RefConfigKey(cfg), name, func() *metrics.RunStats {
			return w.runRef(w.Trace(name), cfg)
		})
	})
}

// throughStore wraps one run-cache fill with the durable store: probe
// before simulating, publish after. The slot's once already guarantees a
// single filler per key in this process, so the store sees one writer. The
// key is the scheme every other surface uses (simcache keys.go), which is
// what lets ovbench, ovsweep and ovserve warm each other's stores.
func throughStore(s *Suite, canonicalCfg, bench string, run func() *metrics.RunStats) *metrics.RunStats {
	if s.opts.Store == nil {
		return run()
	}
	key := simcache.ResultKey(canonicalCfg, simcache.PresetKey(s.preset(bench)))
	if st, ok := s.opts.Store.Load(context.Background(), key); ok {
		return st
	}
	st := run()
	s.opts.Store.Save(context.Background(), key, st)
	return st
}

// OOO returns (running and caching) the OOOVA result for a configuration,
// simulating on the worker's pooled machine on a miss. Configurations
// carrying a probe Sink are not cacheable and run directly.
func (w *Worker) OOO(name string, cfg ooosim.Config) *metrics.RunStats {
	s := w.s
	if cfg.Sink != nil {
		return w.runOOO(s.Trace(name), cfg).Stats
	}
	// Key on the resolved configuration so zero fields and explicit
	// defaults share a cache entry.
	key := oooKey{name, fmt.Sprintf("%+v", cfg.WithDefaults())}
	s.mu.Lock()
	sl, ok := s.oooRuns[key]
	if !ok {
		sl = &slot[*metrics.RunStats]{}
		s.oooRuns[key] = sl
	}
	s.mu.Unlock()
	return sl.runOnce(func() *metrics.RunStats {
		return throughStore(s, simcache.OOOConfigKey(cfg), name, func() *metrics.RunStats {
			return w.runOOO(s.Trace(name), cfg).Stats
		})
	})
}

// borrowWorker takes a pooled worker for a one-off Suite.Ref / Suite.OOO
// call; returnWorker recycles it (and its machines).
func (s *Suite) borrowWorker() *Worker {
	if w, ok := s.workers.Get().(*Worker); ok {
		return w
	}
	return s.NewWorker()
}

func (s *Suite) returnWorker(w *Worker) { s.workers.Put(w) }

// Trace returns (generating and caching) the trace for a benchmark. The
// cache is the process-wide simcache trace cache: suites with the same
// instruction budget share one generation per benchmark, which removes the
// dominant allocation (~20 MB of a 33.6 MB full suite run) from every suite
// after the first.
func (s *Suite) Trace(name string) *trace.Trace {
	return simcache.GenerateTrace(s.preset(name))
}

// preset resolves a benchmark name to the preset this suite runs it at —
// also the trace's content key (simcache.PresetKey) for the result store.
func (s *Suite) preset(name string) tgen.Preset {
	p, ok := tgen.PresetByName(name)
	if !ok {
		panic("experiments: unknown benchmark " + name)
	}
	if s.opts.Insns > 0 {
		p.Insns = s.opts.Insns
	}
	return p
}

// Ref returns (running and caching) the reference machine result at the
// given memory latency, on a pooled worker borrowed for the call. Drivers
// inside a grid use Worker.Ref instead, keeping one worker per goroutine.
func (s *Suite) Ref(name string, latency int64) *metrics.RunStats {
	w := s.borrowWorker()
	defer s.returnWorker(w)
	return w.Ref(name, latency)
}

// OOO returns (running and caching) the OOOVA result for a configuration,
// on a pooled worker borrowed for the call. Several drivers revisit the
// same grid point — Fig5 and Fig9 share the early-commit register sweep,
// Fig11/Fig12 share their late-commit baselines — so identical simulations
// run exactly once per suite.
func (s *Suite) OOO(name string, cfg ooosim.Config) *metrics.RunStats {
	w := s.borrowWorker()
	defer s.returnWorker(w)
	return w.OOO(name, cfg)
}

// baseOOO returns the paper's headline OOOVA config at the given register
// count and latency.
func baseOOO(vregs int, latency int64) ooosim.Config {
	cfg := ooosim.DefaultConfig()
	cfg.PhysVRegs = vregs
	cfg.MemLatency = latency
	return cfg
}

// ---------------------------------------------------------------- Table 1

// Table1 renders the functional-unit latency table (a configuration table;
// it is verified by the isa package's tests rather than measured).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: functional unit latencies (cycles)\n")
	fmt.Fprintf(&b, "%-24s %6s %6s\n", "", "REF", "OOOVA")
	fmt.Fprintf(&b, "%-24s %6d %6d\n", "read RF + crossbar", isa.ReadXbar(isa.MachineRef), isa.ReadXbar(isa.MachineOOO))
	fmt.Fprintf(&b, "%-24s %6d %6d\n", "write crossbar", isa.WriteXbar(isa.MachineRef), isa.WriteXbar(isa.MachineOOO))
	fmt.Fprintf(&b, "%-24s %6d %6d\n", "vector startup", isa.VectorStartup, isa.VectorStartup)
	rows := []struct {
		label string
		op    isa.Op
	}{
		{"add/logic/shift (scalar)", isa.OpSAdd},
		{"add/logic/shift (vector)", isa.OpVAdd},
		{"mul (scalar)", isa.OpSMul},
		{"mul (vector)", isa.OpVMul},
		{"div/sqrt (scalar)", isa.OpSDiv},
		{"div/sqrt (vector)", isa.OpVDiv},
	}
	for _, r := range rows {
		l := isa.ExecLatency(r.op)
		fmt.Fprintf(&b, "%-24s %6d %6d\n", r.label, l, l)
	}
	b.WriteString("memory latency: configurable (default 50; swept 1..100)\n")
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one benchmark's operation counts.
type Table2Row struct {
	Name, Suite  string
	ScalarInsns  int64
	VectorInsns  int64
	VectorOps    int64
	PctVect      float64
	AvgVL        float64
	PaperScalarM float64
	PaperVectorM float64
	PaperAvgVL   int
}

// Table2Result holds the measured Table 2.
type Table2Result struct{ Rows []Table2Row }

// Table2 computes operation counts for every benchmark.
func Table2(s *Suite) *Table2Result {
	rows := make([]Table2Row, len(s.names))
	s.parallel(len(s.names), func(w *Worker, i int) {
		name := w.s.names[i]
		p, _ := tgen.PresetByName(name)
		st := w.Trace(name).ComputeStats()
		rows[i] = Table2Row{
			Name: name, Suite: p.Suite,
			ScalarInsns: st.ScalarInsns, VectorInsns: st.VectorInsns,
			VectorOps: st.VectorOps,
			PctVect:   st.PctVectorization(), AvgVL: st.AvgVL(),
			PaperScalarM: p.PaperScalarM, PaperVectorM: p.PaperVectorM,
			PaperAvgVL: p.AvgVL,
		}
	})
	return &Table2Result{Rows: rows}
}

// Render produces the paper-style table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: basic operation counts (synthetic traces, ~2000x scaled; paper values in parens)\n")
	fmt.Fprintf(&b, "%-8s %-8s %10s %10s %10s %7s %6s %18s\n",
		"program", "suite", "#scalar", "#vector", "#vec ops", "%vect", "avgVL", "paper S/V (M)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-8s %10d %10d %10d %7.1f %6.1f %9.1f/%-8.1f\n",
			row.Name, row.Suite, row.ScalarInsns, row.VectorInsns, row.VectorOps,
			row.PctVect, row.AvgVL, row.PaperScalarM, row.PaperVectorM)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one benchmark's spill traffic.
type Table3Row struct {
	Name                           string
	LoadOps, SpillLoadOps          int64
	StoreOps, SpillStoreOps        int64
	SpillTrafficPct, PaperSpillPct float64
}

// Table3Result holds the measured Table 3.
type Table3Result struct{ Rows []Table3Row }

// Table3 computes vector memory spill operations.
func Table3(s *Suite) *Table3Result {
	rows := make([]Table3Row, len(s.names))
	s.parallel(len(s.names), func(w *Worker, i int) {
		name := w.s.names[i]
		p, _ := tgen.PresetByName(name)
		st := w.Trace(name).ComputeStats()
		rows[i] = Table3Row{
			Name:    name,
			LoadOps: st.LoadOps, SpillLoadOps: st.SpillLoadOps,
			StoreOps: st.StoreOps, SpillStoreOps: st.SpillStoreOps,
			SpillTrafficPct: st.SpillTrafficPct(),
			PaperSpillPct:   p.SpillTrafficPct,
		}
	})
	return &Table3Result{Rows: rows}
}

// Render produces the paper-style table.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: memory spill operations (element counts)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %8s %8s\n",
		"program", "load", "spill-ld", "store", "spill-st", "spill%", "paper%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %10d %8.1f %8.1f\n",
			row.Name, row.LoadOps, row.SpillLoadOps, row.StoreOps, row.SpillStoreOps,
			row.SpillTrafficPct, row.PaperSpillPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 3

// Fig3Latencies are the memory latencies of Figure 3.
var Fig3Latencies = []int64{1, 20, 70, 100}

// Fig3Result holds per-benchmark, per-latency execution-state breakdowns of
// the reference machine.
type Fig3Result struct {
	Names     []string
	Latencies []int64
	// Breakdown[name][latency] is the 8-state cycle breakdown.
	Breakdown map[string]map[int64]metrics.Breakdown
}

// Fig3 computes the reference machine's execution-state breakdown.
func Fig3(s *Suite) *Fig3Result {
	res := &Fig3Result{
		Names:     s.names,
		Latencies: Fig3Latencies,
		Breakdown: map[string]map[int64]metrics.Breakdown{},
	}
	nl := len(Fig3Latencies)
	cells := make([]metrics.Breakdown, len(s.names)*nl)
	s.parallel(len(cells), func(w *Worker, k int) {
		name, lat := w.s.names[k/nl], Fig3Latencies[k%nl]
		cells[k] = w.Ref(name, lat).States
	})
	for ni, name := range s.names {
		res.Breakdown[name] = map[int64]metrics.Breakdown{}
		for li, lat := range Fig3Latencies {
			res.Breakdown[name][lat] = cells[ni*nl+li]
		}
	}
	return res
}

// Render produces one stacked-bar-equivalent table per benchmark.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: REF execution-state breakdown (kilocycles) vs memory latency\n")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "\n%s:\n%-16s", name, "state \\ latency")
		for _, lat := range r.Latencies {
			fmt.Fprintf(&b, "%10d", lat)
		}
		b.WriteString("\n")
		for st := metrics.State(0); st < metrics.NumStates; st++ {
			fmt.Fprintf(&b, "%-16s", st)
			for _, lat := range r.Latencies {
				fmt.Fprintf(&b, "%10.1f", float64(r.Breakdown[name][lat][st])/1000)
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%-16s", "total")
		for _, lat := range r.Latencies {
			fmt.Fprintf(&b, "%10.1f", float64(r.Breakdown[name][lat].Total())/1000)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4Result holds the REF memory-port idle percentages.
type Fig4Result struct {
	Names     []string
	Latencies []int64
	IdlePct   map[string]map[int64]float64
}

// Fig4 computes the percentage of cycles the memory port is idle on the
// reference machine for four latencies.
func Fig4(s *Suite) *Fig4Result {
	res := &Fig4Result{
		Names:     s.names,
		Latencies: Fig3Latencies,
		IdlePct:   map[string]map[int64]float64{},
	}
	nl := len(Fig3Latencies)
	cells := make([]float64, len(s.names)*nl)
	s.parallel(len(cells), func(w *Worker, k int) {
		name, lat := w.s.names[k/nl], Fig3Latencies[k%nl]
		cells[k] = w.Ref(name, lat).MemPortIdlePct()
	})
	for ni, name := range s.names {
		res.IdlePct[name] = map[int64]float64{}
		for li, lat := range Fig3Latencies {
			res.IdlePct[name][lat] = cells[ni*nl+li]
		}
	}
	return res
}

// Render produces the figure's table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: % cycles the memory port is idle (REF)\n")
	fmt.Fprintf(&b, "%-8s", "program")
	for _, lat := range r.Latencies {
		fmt.Fprintf(&b, "  lat=%-4d", lat)
	}
	b.WriteString("\n")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s", name)
		for _, lat := range r.Latencies {
			fmt.Fprintf(&b, "  %7.1f", r.IdlePct[name][lat])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Regs are the physical vector register counts swept in Figure 5.
var Fig5Regs = []int{9, 12, 16, 32, 64}

// Fig5Result holds OOOVA speedups over REF for register/queue sweeps.
type Fig5Result struct {
	Names []string
	Regs  []int
	// Speedup16 and Speedup128 index [name][#regs] for the 16- and
	// 128-slot queue configurations.
	Speedup16  map[string]map[int]float64
	Speedup128 map[string]map[int]float64
	Ideal      map[string]float64
}

// Fig5 computes the speedup of the OOOVA over the reference architecture
// for different numbers of vector physical registers (memory latency 50).
func Fig5(s *Suite) *Fig5Result {
	res := &Fig5Result{
		Names:      s.names,
		Regs:       Fig5Regs,
		Speedup16:  map[string]map[int]float64{},
		Speedup128: map[string]map[int]float64{},
		Ideal:      map[string]float64{},
	}
	nr := len(Fig5Regs)
	type cell struct{ s16, s128 float64 }
	cells := make([]cell, len(s.names)*nr)
	s.parallel(len(cells), func(w *Worker, k int) {
		name, regs := w.s.names[k/nr], Fig5Regs[k%nr]
		ref := w.Ref(name, 50)
		cfg := baseOOO(regs, 50)
		s16 := metrics.Speedup(ref, w.OOO(name, cfg))
		cfg.QueueSlots = 128
		s128 := metrics.Speedup(ref, w.OOO(name, cfg))
		cells[k] = cell{s16, s128}
	})
	for ni, name := range s.names {
		res.Speedup16[name] = map[int]float64{}
		res.Speedup128[name] = map[int]float64{}
		res.Ideal[name] = metrics.IdealSpeedup(s.Ref(name, 50).Cycles, s.Trace(name))
		for ri, regs := range Fig5Regs {
			res.Speedup16[name][regs] = cells[ni*nr+ri].s16
			res.Speedup128[name][regs] = cells[ni*nr+ri].s128
		}
	}
	return res
}

// Render produces the figure's table.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: OOOVA speedup over REF vs #physical vector registers (latency 50)\n")
	fmt.Fprintf(&b, "%-8s %-10s", "program", "queue")
	for _, regs := range r.Regs {
		fmt.Fprintf(&b, "  regs=%-3d", regs)
	}
	fmt.Fprintf(&b, "  %8s\n", "IDEAL")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s %-10s", name, "OOOVA-16")
		for _, regs := range r.Regs {
			fmt.Fprintf(&b, "  %8.2f", r.Speedup16[name][regs])
		}
		fmt.Fprintf(&b, "  %8.2f\n", r.Ideal[name])
		fmt.Fprintf(&b, "%-8s %-10s", "", "OOOVA-128")
		for _, regs := range r.Regs {
			fmt.Fprintf(&b, "  %8.2f", r.Speedup128[name][regs])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Result compares memory-port idle percentages between REF and OOOVA.
type Fig6Result struct {
	Names   []string
	RefIdle map[string]float64
	OOOIdle map[string]float64
}

// Fig6 computes the idle percentages (16 physical registers, latency 50).
func Fig6(s *Suite) *Fig6Result {
	res := &Fig6Result{Names: s.names,
		RefIdle: map[string]float64{}, OOOIdle: map[string]float64{}}
	type cell struct{ ref, ooo float64 }
	cells := make([]cell, len(s.names))
	s.parallel(len(cells), func(w *Worker, i int) {
		name := w.s.names[i]
		cells[i] = cell{
			w.Ref(name, 50).MemPortIdlePct(),
			w.OOO(name, baseOOO(16, 50)).MemPortIdlePct(),
		}
	})
	for i, name := range s.names {
		res.RefIdle[name] = cells[i].ref
		res.OOOIdle[name] = cells[i].ooo
	}
	return res
}

// Render produces the figure's table.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: % idle cycles of the memory port (latency 50, 16 physical vector registers)\n")
	fmt.Fprintf(&b, "%-8s %8s %8s\n", "program", "REF", "OOOVA")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s %8.1f %8.1f\n", name, r.RefIdle[name], r.OOOIdle[name])
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Result compares execution-state breakdowns between REF and OOOVA.
type Fig7Result struct {
	Names []string
	Ref   map[string]metrics.Breakdown
	OOO   map[string]metrics.Breakdown
}

// Fig7 computes both machines' state breakdowns (16 regs, latency 50).
func Fig7(s *Suite) *Fig7Result {
	res := &Fig7Result{Names: s.names,
		Ref: map[string]metrics.Breakdown{}, OOO: map[string]metrics.Breakdown{}}
	type cell struct{ ref, ooo metrics.Breakdown }
	cells := make([]cell, len(s.names))
	s.parallel(len(cells), func(w *Worker, i int) {
		name := w.s.names[i]
		cells[i] = cell{
			w.Ref(name, 50).States,
			w.OOO(name, baseOOO(16, 50)).States,
		}
	})
	for i, name := range s.names {
		res.Ref[name] = cells[i].ref
		res.OOO[name] = cells[i].ooo
	}
	return res
}

// Render produces the figure's table.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: execution-cycle breakdown, REF vs OOOVA (kilocycles; 16 regs, latency 50)\n")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "\n%s:\n%-16s %10s %10s\n", name, "state", "REF", "OOOVA")
		for st := metrics.State(0); st < metrics.NumStates; st++ {
			fmt.Fprintf(&b, "%-16s %10.1f %10.1f\n", st,
				float64(r.Ref[name][st])/1000, float64(r.OOO[name][st])/1000)
		}
		fmt.Fprintf(&b, "%-16s %10.1f %10.1f\n", "total",
			float64(r.Ref[name].Total())/1000, float64(r.OOO[name].Total())/1000)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 8

// Fig8Latencies are the latencies of Figure 8.
var Fig8Latencies = []int64{1, 50, 100}

// Fig8Result holds execution times across memory latencies.
type Fig8Result struct {
	Names     []string
	Latencies []int64
	RefCycles map[string]map[int64]int64
	OOOCycles map[string]map[int64]int64
	Ideal     map[string]int64
}

// Fig8 computes execution time vs memory latency for REF and OOOVA-16,
// plus the latency-independent IDEAL bound.
func Fig8(s *Suite) *Fig8Result {
	res := &Fig8Result{
		Names: s.names, Latencies: Fig8Latencies,
		RefCycles: map[string]map[int64]int64{},
		OOOCycles: map[string]map[int64]int64{},
		Ideal:     map[string]int64{},
	}
	nl := len(Fig8Latencies)
	type cell struct{ ref, ooo int64 }
	cells := make([]cell, len(s.names)*nl)
	s.parallel(len(cells), func(w *Worker, k int) {
		name, lat := w.s.names[k/nl], Fig8Latencies[k%nl]
		cells[k] = cell{
			w.Ref(name, lat).Cycles,
			w.OOO(name, baseOOO(16, lat)).Cycles,
		}
	})
	for ni, name := range s.names {
		res.RefCycles[name] = map[int64]int64{}
		res.OOOCycles[name] = map[int64]int64{}
		res.Ideal[name] = metrics.IdealCycles(s.Trace(name))
		for li, lat := range Fig8Latencies {
			res.RefCycles[name][lat] = cells[ni*nl+li].ref
			res.OOOCycles[name][lat] = cells[ni*nl+li].ooo
		}
	}
	return res
}

// Degradation returns the OOOVA's execution-time growth from latency 1 to
// latency 100 for a benchmark (the §4.3 tolerance metric).
func (r *Fig8Result) Degradation(name string) float64 {
	c1 := r.OOOCycles[name][1]
	c100 := r.OOOCycles[name][100]
	if c1 == 0 {
		return 0
	}
	return float64(c100-c1) / float64(c1)
}

// Render produces the figure's table.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: execution time (kilocycles) vs main-memory latency (16 physical vector registers)\n")
	fmt.Fprintf(&b, "%-8s %-8s", "program", "machine")
	for _, lat := range r.Latencies {
		fmt.Fprintf(&b, "  lat=%-6d", lat)
	}
	b.WriteString("\n")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s %-8s", name, "REF")
		for _, lat := range r.Latencies {
			fmt.Fprintf(&b, "  %9.1f", float64(r.RefCycles[name][lat])/1000)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-8s %-8s", "", "OOOVA")
		for _, lat := range r.Latencies {
			fmt.Fprintf(&b, "  %9.1f", float64(r.OOOCycles[name][lat])/1000)
		}
		fmt.Fprintf(&b, "   (1->100: +%.1f%%)\n", 100*r.Degradation(name))
		fmt.Fprintf(&b, "%-8s %-8s  %9.1f\n", "", "IDEAL", float64(r.Ideal[name])/1000)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Result compares early- vs late-commit speedups over REF.
type Fig9Result struct {
	Names []string
	Regs  []int
	Early map[string]map[int]float64
	Late  map[string]map[int]float64
	Ideal map[string]float64
}

// Fig9 computes the commit-model comparison (latency 50).
func Fig9(s *Suite) *Fig9Result {
	res := &Fig9Result{
		Names: s.names, Regs: Fig5Regs,
		Early: map[string]map[int]float64{},
		Late:  map[string]map[int]float64{},
		Ideal: map[string]float64{},
	}
	nr := len(Fig5Regs)
	type cell struct{ early, late float64 }
	cells := make([]cell, len(s.names)*nr)
	s.parallel(len(cells), func(w *Worker, k int) {
		name, regs := w.s.names[k/nr], Fig5Regs[k%nr]
		ref := w.Ref(name, 50)
		cfg := baseOOO(regs, 50)
		early := metrics.Speedup(ref, w.OOO(name, cfg))
		cfg.Commit = rob.PolicyLate
		late := metrics.Speedup(ref, w.OOO(name, cfg))
		cells[k] = cell{early, late}
	})
	for ni, name := range s.names {
		res.Early[name] = map[int]float64{}
		res.Late[name] = map[int]float64{}
		res.Ideal[name] = metrics.IdealSpeedup(s.Ref(name, 50).Cycles, s.Trace(name))
		for ri, regs := range Fig5Regs {
			res.Early[name][regs] = cells[ni*nr+ri].early
			res.Late[name][regs] = cells[ni*nr+ri].late
		}
	}
	return res
}

// Degradation16 returns the early→late performance degradation at 16
// registers (the §5 cost of precise traps).
func (r *Fig9Result) Degradation16(name string) float64 {
	e := r.Early[name][16]
	l := r.Late[name][16]
	if l == 0 {
		return 0
	}
	return e/l - 1
}

// Render produces the figure's table.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: OOOVA speedup over REF, early vs late commit (latency 50)\n")
	fmt.Fprintf(&b, "%-8s %-6s", "program", "model")
	for _, regs := range r.Regs {
		fmt.Fprintf(&b, "  regs=%-3d", regs)
	}
	fmt.Fprintf(&b, "  %8s\n", "IDEAL")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s %-6s", name, "early")
		for _, regs := range r.Regs {
			fmt.Fprintf(&b, "  %8.2f", r.Early[name][regs])
		}
		fmt.Fprintf(&b, "  %8.2f\n", r.Ideal[name])
		fmt.Fprintf(&b, "%-8s %-6s", "", "late")
		for _, regs := range r.Regs {
			fmt.Fprintf(&b, "  %8.2f", r.Late[name][regs])
		}
		fmt.Fprintf(&b, "   (cost at 16 regs: %.1f%%)\n", 100*r.Degradation16(name))
	}
	return b.String()
}

// -------------------------------------------------------- Figures 11 & 12

// ElimRegs are the register counts swept in Figures 11 and 12.
var ElimRegs = []int{16, 32, 64}

// ElimResult holds load-elimination speedups over the late-commit OOOVA.
type ElimResult struct {
	Mode  ooosim.ElimMode
	Names []string
	Regs  []int
	// Speedup[name][regs] over the same-regs late-commit baseline.
	Speedup map[string]map[int]float64
	// EliminatedLoads[name][regs] counts dynamically removed loads.
	EliminatedLoads map[string]map[int]int64
}

// elim computes Figure 11 (SLE) or Figure 12 (SLE+VLE): the speedup of the
// load-eliminating OOOVA over the baseline late-commit OOOVA. (§6.3: "As a
// baseline we use the late commit OOOVA described above, without dynamic
// load elimination.")
func elim(s *Suite, mode ooosim.ElimMode) *ElimResult {
	res := &ElimResult{
		Mode: mode, Names: s.names, Regs: ElimRegs,
		Speedup:         map[string]map[int]float64{},
		EliminatedLoads: map[string]map[int]int64{},
	}
	nr := len(ElimRegs)
	type cell struct {
		speedup float64
		elim    int64
	}
	cells := make([]cell, len(s.names)*nr)
	s.parallel(len(cells), func(w *Worker, k int) {
		name, regs := w.s.names[k/nr], ElimRegs[k%nr]
		base := baseOOO(regs, 50)
		base.Commit = rob.PolicyLate
		baseRun := w.OOO(name, base)
		cfg := base
		cfg.LoadElim = mode
		run := w.OOO(name, cfg)
		cells[k] = cell{metrics.Speedup(baseRun, run), run.EliminatedLoads}
	})
	for ni, name := range s.names {
		res.Speedup[name] = map[int]float64{}
		res.EliminatedLoads[name] = map[int]int64{}
		for ri, regs := range ElimRegs {
			res.Speedup[name][regs] = cells[ni*nr+ri].speedup
			res.EliminatedLoads[name][regs] = cells[ni*nr+ri].elim
		}
	}
	return res
}

// Fig11 computes the scalar-only load elimination (SLE) speedups.
func Fig11(s *Suite) *ElimResult { return elim(s, ooosim.ElimSLE) }

// Fig12 computes the scalar+vector load elimination (SLE+VLE) speedups.
func Fig12(s *Suite) *ElimResult { return elim(s, ooosim.ElimSLEVLE) }

// Render produces the figure's table.
func (r *ElimResult) Render() string {
	fig := "Figure 11 (SLE)"
	if r.Mode == ooosim.ElimSLEVLE {
		fig = "Figure 12 (SLE+VLE)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: speedup over the late-commit OOOVA\n", fig)
	fmt.Fprintf(&b, "%-8s", "program")
	for _, regs := range r.Regs {
		fmt.Fprintf(&b, "  regs=%-3d (elim)", regs)
	}
	b.WriteString("\n")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s", name)
		for _, regs := range r.Regs {
			fmt.Fprintf(&b, "  %8.3f %6d", r.Speedup[name][regs], r.EliminatedLoads[name][regs])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 13

// Fig13Result holds traffic-reduction ratios at 32 physical registers.
type Fig13Result struct {
	Names []string
	// SLE and SLEVLE map name -> baseline requests / configuration requests.
	SLE    map[string]float64
	SLEVLE map[string]float64
}

// Fig13 computes the total address-bus traffic reduction of the two
// load-elimination configurations (32 physical vector registers).
func Fig13(s *Suite) *Fig13Result {
	res := &Fig13Result{Names: s.names,
		SLE: map[string]float64{}, SLEVLE: map[string]float64{}}
	type cell struct{ sle, slevle float64 }
	cells := make([]cell, len(s.names))
	s.parallel(len(cells), func(w *Worker, i int) {
		name := w.s.names[i]
		base := baseOOO(32, 50)
		base.Commit = rob.PolicyLate
		baseRun := w.OOO(name, base)
		cfg := base
		cfg.LoadElim = ooosim.ElimSLE
		sle := metrics.TrafficReduction(baseRun, w.OOO(name, cfg))
		cfg.LoadElim = ooosim.ElimSLEVLE
		slevle := metrics.TrafficReduction(baseRun, w.OOO(name, cfg))
		cells[i] = cell{sle, slevle}
	})
	for i, name := range s.names {
		res.SLE[name] = cells[i].sle
		res.SLEVLE[name] = cells[i].slevle
	}
	return res
}

// Render produces the figure's table.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13: traffic reduction (baseline requests / configuration requests; 32 physical vector registers)\n")
	fmt.Fprintf(&b, "%-8s %8s %8s\n", "program", "SLE", "SLE+VLE")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%-8s %8.3f %8.3f\n", name, r.SLE[name], r.SLEVLE[name])
	}
	return b.String()
}

// ---------------------------------------------------------------- registry

// Experiment names accepted by Run.
var AllExperiments = []string{
	"table1", "table2", "table3",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig11", "fig12", "fig13",
}

// Run executes one experiment by name and returns its rendered output.
func Run(s *Suite, name string) (string, error) {
	switch strings.ToLower(name) {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(s).Render(), nil
	case "table3":
		return Table3(s).Render(), nil
	case "fig3":
		return Fig3(s).Render(), nil
	case "fig4":
		return Fig4(s).Render(), nil
	case "fig5":
		return Fig5(s).Render(), nil
	case "fig6":
		return Fig6(s).Render(), nil
	case "fig7":
		return Fig7(s).Render(), nil
	case "fig8":
		return Fig8(s).Render(), nil
	case "fig9":
		return Fig9(s).Render(), nil
	case "fig11":
		return Fig11(s).Render(), nil
	case "fig12":
		return Fig12(s).Render(), nil
	case "fig13":
		return Fig13(s).Render(), nil
	}
	sorted := append([]string(nil), AllExperiments...)
	sort.Strings(sorted)
	return "", fmt.Errorf("experiments: unknown experiment %q (have: %s)",
		name, strings.Join(sorted, ", "))
}
