package experiments

import (
	"strings"
	"testing"
)

// smallSuite keeps experiment tests fast: three representative benchmarks
// (long vectors, short vectors + dependence, spill-heavy) at reduced size.
func smallSuite() *Suite {
	return NewSuite(Opts{
		Insns: 8000,
		Names: []string{"swm256", "trfd", "bdna"},
	})
}

func TestTable1MentionsAllRows(t *testing.T) {
	out := Table1()
	for _, want := range []string{"read RF", "write crossbar", "vector startup",
		"mul", "div/sqrt", "memory latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2RowsAndVectorization(t *testing.T) {
	s := smallSuite()
	res := Table2(s)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PctVect < 70 {
			t.Errorf("%s: vectorization %.1f%% below the paper's 70%% floor", row.Name, row.PctVect)
		}
		if row.AvgVL <= 0 || row.VectorOps <= row.VectorInsns {
			t.Errorf("%s: implausible stats %+v", row.Name, row)
		}
	}
	if !strings.Contains(res.Render(), "swm256") {
		t.Error("render missing program name")
	}
}

func TestTable3SpillShapes(t *testing.T) {
	s := smallSuite()
	res := Table3(s)
	byName := map[string]Table3Row{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	if byName["bdna"].SpillTrafficPct <= byName["swm256"].SpillTrafficPct {
		t.Error("bdna must be the spill-traffic outlier")
	}
	if byName["bdna"].SpillTrafficPct < 55 {
		t.Errorf("bdna spill = %.1f%%, want >= 55%%", byName["bdna"].SpillTrafficPct)
	}
}

func TestFig3BreakdownSumsAndLatencyGrowth(t *testing.T) {
	s := smallSuite()
	res := Fig3(s)
	for _, name := range res.Names {
		t1 := res.Breakdown[name][1].Total()
		t100 := res.Breakdown[name][100].Total()
		if t100 <= t1 {
			t.Errorf("%s: REF not latency sensitive (%d -> %d)", name, t1, t100)
		}
	}
}

func TestFig4IdleRangesMatchPaper(t *testing.T) {
	s := smallSuite()
	res := Fig4(s)
	// Paper: at latency 70, port idle time ranges between 30%% and 65%%.
	for _, name := range res.Names {
		idle := res.IdlePct[name][70]
		if idle < 20 || idle > 75 {
			t.Errorf("%s: REF idle at lat 70 = %.1f%%, outside the paper's band", name, idle)
		}
	}
}

func TestFig5SpeedupShapes(t *testing.T) {
	s := smallSuite()
	res := Fig5(s)
	for _, name := range res.Names {
		s16 := res.Speedup16[name][16]
		if s16 < 1.15 {
			t.Errorf("%s: speedup at 16 regs = %.2f, want >= 1.15", name, s16)
		}
		if res.Speedup16[name][9] > s16+0.01 {
			t.Errorf("%s: 9 regs (%.2f) outperforms 16 regs (%.2f)",
				name, res.Speedup16[name][9], s16)
		}
		// IDEAL dominates every configuration.
		for _, regs := range res.Regs {
			if res.Speedup16[name][regs] > res.Ideal[name]+0.01 {
				t.Errorf("%s: speedup at %d regs exceeds IDEAL", name, regs)
			}
		}
		// Deeper queues change little (paper: "quite small").
		d := res.Speedup128[name][16] - s16
		if d < -0.1 || d > 0.35 {
			t.Errorf("%s: queue-128 delta %.2f implausible", name, d)
		}
	}
}

func TestFig6OOOCutsIdle(t *testing.T) {
	s := smallSuite()
	res := Fig6(s)
	for _, name := range res.Names {
		if res.OOOIdle[name] >= res.RefIdle[name] {
			t.Errorf("%s: OOOVA idle %.1f%% not below REF %.1f%%",
				name, res.OOOIdle[name], res.RefIdle[name])
		}
	}
}

func TestFig7IdleStateShrinks(t *testing.T) {
	s := smallSuite()
	res := Fig7(s)
	for _, name := range res.Names {
		refIdleFrac := float64(res.Ref[name].Idle()) / float64(res.Ref[name].Total())
		oooIdleFrac := float64(res.OOO[name].Idle()) / float64(res.OOO[name].Total())
		if oooIdleFrac >= refIdleFrac {
			t.Errorf("%s: < , , > state did not shrink (%.2f -> %.2f)",
				name, refIdleFrac, oooIdleFrac)
		}
	}
}

func TestFig8LatencyTolerance(t *testing.T) {
	s := smallSuite()
	res := Fig8(s)
	for _, name := range res.Names {
		// REF grows with latency.
		if res.RefCycles[name][100] <= res.RefCycles[name][1] {
			t.Errorf("%s: REF flat across latency", name)
		}
		// OOOVA grows far less than REF (tolerance).
		refGrowth := float64(res.RefCycles[name][100]) / float64(res.RefCycles[name][1])
		oooGrowth := float64(res.OOOCycles[name][100]) / float64(res.OOOCycles[name][1])
		if oooGrowth >= refGrowth {
			t.Errorf("%s: OOOVA growth %.2f not below REF growth %.2f",
				name, oooGrowth, refGrowth)
		}
		// IDEAL below both machines' cycle counts.
		if res.Ideal[name] > res.OOOCycles[name][1] {
			t.Errorf("%s: IDEAL above measured time", name)
		}
	}
}

func TestFig9LateCostsAndTrfdOutlier(t *testing.T) {
	s := smallSuite()
	res := Fig9(s)
	for _, name := range res.Names {
		for _, regs := range res.Regs {
			if res.Late[name][regs] > res.Early[name][regs]+0.02 {
				t.Errorf("%s: late commit faster than early at %d regs", name, regs)
			}
		}
	}
	// trfd (inter-iteration dependence) must degrade much more than swm256.
	if res.Degradation16("trfd") < res.Degradation16("swm256")+0.05 {
		t.Errorf("trfd late-commit cost %.2f not an outlier vs swm256 %.2f",
			res.Degradation16("trfd"), res.Degradation16("swm256"))
	}
}

func TestFig11SLEHelpsTrfdMost(t *testing.T) {
	s := smallSuite()
	res := Fig11(s)
	for _, name := range res.Names {
		if sp := res.Speedup[name][32]; sp < 0.97 {
			t.Errorf("%s: SLE slowdown %.3f", name, sp)
		}
	}
	// §6.3: under SLE, trfd/dyfesm achieve large speedups while all other
	// programs stay low.
	if res.Speedup["trfd"][32] <= res.Speedup["swm256"][32] {
		t.Errorf("SLE: trfd (%.3f) should beat swm256 (%.3f)",
			res.Speedup["trfd"][32], res.Speedup["swm256"][32])
	}
}

func TestFig12VLEEliminatesAndSpeedsUp(t *testing.T) {
	s := smallSuite()
	res := Fig12(s)
	for _, name := range res.Names {
		if res.EliminatedLoads[name][32] == 0 {
			t.Errorf("%s: no loads eliminated", name)
		}
		if sp := res.Speedup[name][32]; sp < 1.0 {
			t.Errorf("%s: SLE+VLE slowdown %.3f", name, sp)
		}
	}
	// bdna (69%% spill traffic) must see substantial elimination benefit.
	if res.Speedup["bdna"][32] < 1.05 {
		t.Errorf("bdna SLE+VLE speedup = %.3f, want >= 1.05", res.Speedup["bdna"][32])
	}
}

func TestFig13TrafficReduction(t *testing.T) {
	s := smallSuite()
	res := Fig13(s)
	for _, name := range res.Names {
		if res.SLEVLE[name] < res.SLE[name]-0.001 {
			t.Errorf("%s: SLE+VLE (%.3f) below SLE (%.3f)", name, res.SLEVLE[name], res.SLE[name])
		}
		if res.SLEVLE[name] < 1.0 {
			t.Errorf("%s: SLE+VLE increased traffic (%.3f)", name, res.SLEVLE[name])
		}
	}
	// bdna: huge spill share -> large traffic reduction.
	if res.SLEVLE["bdna"] < 1.10 {
		t.Errorf("bdna traffic reduction = %.3f, want >= 1.10", res.SLEVLE["bdna"])
	}
}

func TestRunRegistry(t *testing.T) {
	s := NewSuite(Opts{Insns: 3000, Names: []string{"flo52"}})
	for _, name := range AllExperiments {
		out, err := Run(s, name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
	if _, err := Run(s, "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSuiteCachesTraces(t *testing.T) {
	s := smallSuite()
	a := s.Trace("swm256")
	b := s.Trace("swm256")
	if a != b {
		t.Error("trace not cached")
	}
	r1 := s.Ref("swm256", 50)
	r2 := s.Ref("swm256", 50)
	if r1 != r2 {
		t.Error("reference run not cached")
	}
}

// TestTraceSharedAcrossSuites pins the cross-suite trace cache: two suites
// with the same instruction budget must share one generated trace, and a
// different budget must not.
func TestTraceSharedAcrossSuites(t *testing.T) {
	a := smallSuite().Trace("swm256")
	b := smallSuite().Trace("swm256")
	if a != b {
		t.Error("suites with identical budgets generated separate traces")
	}
	other := NewSuite(Opts{Insns: 9000, Names: []string{"swm256"}})
	if c := other.Trace("swm256"); c == a {
		t.Error("suites with different budgets shared a trace")
	}
}
