package experiments

import (
	"context"
	"reflect"
	"testing"

	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/simcache"
	"oovec/internal/store"
)

// TestSuiteDiskWarmAcrossProcesses is the ovbench -cache-dir contract: a
// suite backed by a warm store (a previous invocation's results) serves
// run-cache misses from disk instead of simulating, keyed by the same
// ResultKey scheme as ovserve and ovsweep.
func TestSuiteDiskWarmAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	const insns = 1000
	cfg := ooosim.DefaultConfig()
	cfg.PhysVRegs = 12

	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(Opts{Insns: insns, Parallelism: 1, Store: st1})
	wantRef := s1.Ref("swm256", 50)
	wantOOO := s1.OOO("swm256", cfg)
	st1.Close() // the CLI exit path: flush write-behind saves

	// "Second process": fresh suite, fresh run caches, same directory.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := NewSuite(Opts{Insns: insns, Parallelism: 1, Store: st2})
	gotRef := s2.Ref("swm256", 50)
	gotOOO := s2.OOO("swm256", cfg)

	if hits := st2.Stats().Hits; hits != 2 {
		t.Errorf("store served %d hits, want 2 (both runs must come from disk)", hits)
	}
	if !reflect.DeepEqual(gotRef, wantRef) {
		t.Error("disk-served REF result differs from the simulated one")
	}
	if !reflect.DeepEqual(gotOOO, wantOOO) {
		t.Error("disk-served OOOVA result differs from the simulated one")
	}

	// And the keys are the shared scheme: a sweep-style lookup of the same
	// (config, trace) must hit the entries this suite persisted.
	p := s2.preset("swm256")
	refCfg := refsim.DefaultConfig()
	refCfg.MemLatency = 50
	refKey := simcache.ResultKey(simcache.RefConfigKey(refCfg), simcache.PresetKey(p))
	if _, ok := st2.Load(context.Background(), refKey); !ok {
		t.Error("suite REF entry not addressable through the shared ResultKey scheme")
	}
	oooKey := simcache.ResultKey(simcache.OOOConfigKey(cfg), simcache.PresetKey(p))
	if _, ok := st2.Load(context.Background(), oooKey); !ok {
		t.Error("suite OOOVA entry not addressable through the shared ResultKey scheme")
	}
}
