package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"oovec/internal/ooosim"
	"oovec/internal/refsim"
)

// This file defines the one content-address scheme every simulation result
// in the system is keyed by. /v1/sim, each /v1/sweep grid point and the
// ovsweep CLI all derive their cache keys here, so a sweep that covers a
// configuration previously served as a single simulation (or vice versa)
// hits the same entry — there is no separate "sweep cache" to warm.

// OOOConfigKey renders the canonical cache-key component of an OOOVA
// configuration: the resolved (WithDefaults) form, so omitted fields and
// explicit paper defaults key identically. The probe Sink is excluded — it
// observes a run without changing its measurements, and formatting an
// interface value would print an address, poisoning the key.
func OOOConfigKey(cfg ooosim.Config) string {
	cfg = cfg.WithDefaults()
	cfg.Sink = nil
	return fmt.Sprintf("ooo:%+v", cfg)
}

// RefConfigKey renders the canonical cache-key component of a reference-
// machine configuration, resolved the same way as OOOConfigKey (and, like
// it, excluding the probe Sink).
func RefConfigKey(cfg refsim.Config) string {
	cfg = cfg.WithDefaults()
	cfg.Sink = nil
	return fmt.Sprintf("ref:%+v", cfg)
}

// ResultKey content-addresses one simulation: the canonical resolved
// configuration (which carries the machine kind as its prefix — see
// OOOConfigKey / RefConfigKey) plus the trace content key (PresetKey for
// generated benchmarks, "ovtr:" + trace.Digest for uploads).
func ResultKey(canonicalCfg, traceKey string) string {
	h := sha256.New()
	fmt.Fprintf(h, "sim\x00%s\x00%s", canonicalCfg, traceKey)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
