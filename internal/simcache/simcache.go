// Package simcache provides the bounded, sharded, content-addressed caches
// behind the ovserve daemon and the cross-suite trace cache: simulation
// results keyed by (canonical configuration, trace digest) and generated
// traces keyed by canonical preset.
//
// It also owns the result-key scheme itself (ResultKey, OOOConfigKey,
// RefConfigKey): /v1/sim, every /v1/sweep grid point and the ovsweep CLI
// all address results through these helpers, which is what lets a repeated
// sweep run zero new simulations and lets single runs and sweep points
// warm each other.
//
// The cache is a singleflight cache: concurrent Do calls for the same key
// run the fill function exactly once, with every other caller blocking until
// the value is ready. Values must be immutable once published (simulation
// results and generated traces are never mutated), because hits hand out the
// shared value without copying.
//
// Capacity is bounded per shard with LRU eviction, so a long-lived server
// sweeping a large design space cannot grow without limit; an evicted entry
// that is still referenced by an in-flight response stays valid (values are
// immutable), it just stops being findable.
package simcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount spreads keys over independently locked shards so concurrent
// request handlers do not serialise on one mutex.
const shardCount = 8

// Cache is a bounded, sharded, singleflight key/value cache. The zero value
// is not usable; construct with New.
type Cache[V any] struct {
	shards   [shardCount]shard[V]
	perShard int
	// size estimates a ready value's memory footprint for Stats.Bytes.
	// nil (plain New) reports zero bytes.
	size func(V) int

	hits      atomic.Int64
	misses    atomic.Int64
	dedups    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	lru     *list.List // front = most recently used; holds only ready entries
}

type entry[V any] struct {
	key   string
	ready chan struct{} // closed once val (or panicVal) is set
	val   V
	// panicVal records a fill panic so waiters re-raise the true cause;
	// the entry itself is removed from the map so later calls retry.
	panicVal any
	failed   bool
	elem     *list.Element // nil until ready, and again after eviction
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls served from a ready entry, including calls that
	// blocked on an in-flight fill (those are also counted in Dedups).
	Hits int64
	// Misses counts Do calls that ran their fill function.
	Misses int64
	// Dedups counts Do calls coalesced onto another caller's in-flight fill.
	Dedups int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Entries is the current number of cached (or in-flight) entries.
	Entries int
	// Bytes is the estimated memory held by ready entries. Only caches
	// built with NewSized report it; plain New caches report zero.
	Bytes int64
}

// New builds a cache bounded to roughly `capacity` ready entries (split
// across shards, at least one per shard). capacity <= 0 selects a small
// default.
func New[V any](capacity int) *Cache[V] {
	return NewSized[V](capacity, nil)
}

// NewSized is New with a value-footprint estimator: each ready entry adds
// size(v) to Stats.Bytes on publication and subtracts it on eviction, so
// /metrics can expose how much memory a tier actually holds, not just how
// many entries. size may be nil (bytes stay zero).
func NewSized[V any](capacity int, size func(V) int) *Cache[V] {
	if capacity <= 0 {
		capacity = 128
	}
	per := (capacity + shardCount - 1) / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache[V]{perShard: per, size: size}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V])
		c.shards[i].lru = list.New()
	}
	return c
}

// fnv32a hashes the key for shard selection.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[fnv32a(key)%shardCount]
}

// Get returns the value for key if it is ready, without filling. It never
// blocks on an in-flight fill.
func (c *Cache[V]) Get(key string) (V, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		select {
		case <-e.ready:
			sh.lru.MoveToFront(e.elem)
			sh.mu.Unlock()
			c.hits.Add(1)
			return e.val, true
		default:
		}
	}
	sh.mu.Unlock()
	var zero V
	return zero, false
}

// Do returns the value for key, running fill to produce it on a miss. The
// second result reports whether the value came from the cache: concurrent
// calls for the same key run fill exactly once — the filling caller gets
// (v, false) and every coalesced waiter gets (v, true).
//
// A panic inside fill is re-raised on the filling caller and on every
// waiter, and the key is forgotten so a later Do retries.
func (c *Cache[V]) Do(key string, fill func() V) (V, bool) {
	v, hit, _ := c.DoFlight(key, fill)
	return v, hit
}

// DoFlight is Do with the singleflight outcome made visible: waited
// reports that this call blocked behind another caller's in-flight fill
// (such calls are also counted in Stats.Dedups). Request tracing uses it
// to attribute coalesced-wait time to its own span.
func (c *Cache[V]) DoFlight(key string, fill func() V) (v V, hit, waited bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		waited := false
		select {
		case <-e.ready:
			sh.lru.MoveToFront(e.elem)
		default:
			waited = true
		}
		sh.mu.Unlock()
		if waited {
			c.dedups.Add(1)
			<-e.ready
		}
		if e.failed {
			panic(e.panicVal)
		}
		c.hits.Add(1)
		return e.val, true, waited
	}
	e := &entry[V]{key: key, ready: make(chan struct{})}
	sh.entries[key] = e
	sh.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		if r := recover(); r != nil {
			e.failed = true
			e.panicVal = r
			sh.mu.Lock()
			delete(sh.entries, key)
			sh.mu.Unlock()
			close(e.ready)
			panic(r)
		}
	}()
	e.val = fill()

	sh.mu.Lock()
	e.elem = sh.lru.PushFront(e)
	if c.size != nil {
		c.bytes.Add(int64(c.size(e.val)))
	}
	for sh.lru.Len() > c.perShard {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		old := back.Value.(*entry[V])
		old.elem = nil
		delete(sh.entries, old.key)
		if c.size != nil {
			c.bytes.Add(-int64(c.size(old.val)))
		}
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
	close(e.ready)
	return e.val, false, false
}

// Len returns the current number of entries (ready or in flight).
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Bytes:     c.bytes.Load(),
	}
}
