package simcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"oovec/internal/metrics"
)

// fakeStore is an in-memory ResultStore double recording tier traffic.
type fakeStore struct {
	mu      sync.Mutex
	entries map[string]*metrics.RunStats
	loads   atomic.Int64
	saves   atomic.Int64
}

func newFakeStore() *fakeStore {
	return &fakeStore{entries: map[string]*metrics.RunStats{}}
}

func (f *fakeStore) Load(_ context.Context, key string) (*metrics.RunStats, bool) {
	f.loads.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.entries[key]
	return st, ok
}

func (f *fakeStore) Save(_ context.Context, key string, st *metrics.RunStats) {
	f.saves.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries[key] = st
}

func resultsFixture(c int64) *metrics.RunStats {
	return &metrics.RunStats{Machine: "OOOVA", Program: "t", Cycles: c}
}

// TestResultsTierOrder: memory miss → disk probe → simulate, and both
// tiers are warmed by a fill.
func TestResultsTierOrder(t *testing.T) {
	disk := newFakeStore()
	r := NewResults(16, disk)
	fills := 0

	// Cold: both tiers miss, fill runs, both tiers warm.
	st, cached := r.Do("k", func() *metrics.RunStats { fills++; return resultsFixture(1) })
	if cached || st.Cycles != 1 || fills != 1 {
		t.Fatalf("cold Do = (%+v, %v), fills %d; want fresh fill", st, cached, fills)
	}
	if disk.saves.Load() != 1 {
		t.Fatalf("fill saved %d times to disk, want 1", disk.saves.Load())
	}

	// Warm memory: no disk probe at all.
	loadsBefore := disk.loads.Load()
	st, cached = r.Do("k", func() *metrics.RunStats { fills++; return nil })
	if !cached || st.Cycles != 1 || fills != 1 {
		t.Fatalf("memory-warm Do = (%+v, %v), fills %d", st, cached, fills)
	}
	if disk.loads.Load() != loadsBefore {
		t.Error("memory hit probed the disk tier")
	}
}

// TestResultsDiskHitCountsAsCached is the warm-restart contract: a fresh
// memory tier over a warm store serves results as cache hits — the fill
// (the simulation) must not run — and the hit is promoted into memory.
func TestResultsDiskHitCountsAsCached(t *testing.T) {
	disk := newFakeStore()
	disk.entries["k"] = resultsFixture(7)
	r := NewResults(16, disk) // a "restarted process": empty memory tier

	st, cached := r.Do("k", func() *metrics.RunStats {
		t.Fatal("disk hit ran the simulation fill")
		return nil
	})
	if !cached || st.Cycles != 7 {
		t.Fatalf("disk-warm Do = (%+v, %v), want (cycles 7, cached)", st, cached)
	}
	// Promoted: the next hit comes from memory.
	loads := disk.loads.Load()
	if _, cached := r.Do("k", func() *metrics.RunStats { return nil }); !cached {
		t.Fatal("promoted entry missed")
	}
	if disk.loads.Load() != loads {
		t.Error("second hit went back to disk; the entry was not promoted to memory")
	}
}

// TestResultsSingleWriterPerKey: concurrent Do calls for one key produce
// exactly one disk probe, one fill and one store write — the singleflight
// extends over the whole two-tier path.
func TestResultsSingleWriterPerKey(t *testing.T) {
	disk := newFakeStore()
	r := NewResults(16, disk)
	var fills atomic.Int64
	release := make(chan struct{})

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _ := r.Do("hot", func() *metrics.RunStats {
				fills.Add(1)
				<-release
				return resultsFixture(3)
			})
			if st.Cycles != 3 {
				t.Errorf("got cycles %d, want 3", st.Cycles)
			}
		}()
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
	if n := disk.loads.Load(); n != 1 {
		t.Errorf("disk probed %d times, want 1", n)
	}
	if n := disk.saves.Load(); n != 1 {
		t.Errorf("disk written %d times, want exactly one writer per key", n)
	}
}

// TestResultsNilDisk: a memory-only Results behaves exactly like the plain
// cache (the CLI default without -cache-dir).
func TestResultsNilDisk(t *testing.T) {
	r := NewResults(16, nil)
	fills := 0
	st, cached := r.Do("k", func() *metrics.RunStats { fills++; return resultsFixture(2) })
	if cached || st.Cycles != 2 {
		t.Fatalf("cold Do = (%+v, %v)", st, cached)
	}
	if _, cached := r.Do("k", func() *metrics.RunStats { fills++; return nil }); !cached || fills != 1 {
		t.Fatalf("warm Do missed (fills %d)", fills)
	}
}

// TestResultsMemoryEvictionFallsBackToDisk: an entry evicted from the
// bounded memory tier is still served from the store — as a cached result,
// with no new simulation.
func TestResultsMemoryEvictionFallsBackToDisk(t *testing.T) {
	disk := newFakeStore()
	r := NewResults(shardCount, disk) // one entry per shard
	var sims atomic.Int64
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		r.Do(keys[i], func() *metrics.RunStats { sims.Add(1); return resultsFixture(int64(i)) })
	}
	if r.MemStats().Evictions == 0 {
		t.Fatal("fixture did not evict; grow the key count")
	}
	before := sims.Load()
	for _, k := range keys {
		if _, cached := r.Do(k, func() *metrics.RunStats { sims.Add(1); return resultsFixture(0) }); !cached {
			t.Fatalf("key %q was a full miss despite the disk tier", k)
		}
	}
	if got := sims.Load(); got != before {
		t.Errorf("%d simulations re-ran for evicted entries backed by disk, want 0", got-before)
	}
}

// TestSizedCacheTracksBytes: NewSized accounts ready-entry bytes through
// insert and eviction.
func TestSizedCacheTracksBytes(t *testing.T) {
	c := NewSized(shardCount, func(v string) int { return len(v) })
	c.Do("a", func() string { return "xxxx" })
	if got := c.Stats().Bytes; got != 4 {
		t.Fatalf("bytes = %d after one 4-byte entry, want 4", got)
	}
	for i := 0; i < 64; i++ {
		c.Do(string(rune('b'+i)), func() string { return "yy" })
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("fixture did not evict")
	}
	// Whatever survives, the accounted bytes must equal the live entries'.
	var live int64
	for i := 0; i < 64; i++ {
		if v, ok := c.Get(string(rune('b' + i))); ok {
			live += int64(len(v))
		}
	}
	if v, ok := c.Get("a"); ok {
		live += int64(len(v))
	}
	if st.Bytes != live {
		t.Errorf("accounted bytes %d != live entry bytes %d", st.Bytes, live)
	}
	if c.Stats().Bytes > int64(shardCount*4) {
		t.Errorf("bytes %d not bounded by capacity", c.Stats().Bytes)
	}
}
