package simcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"oovec/internal/tgen"
)

func TestDoFillsOnceAndHits(t *testing.T) {
	c := New[int](16)
	calls := 0
	v, cached := c.Do("k", func() int { calls++; return 42 })
	if v != 42 || cached {
		t.Fatalf("first Do = (%d, %v), want (42, false)", v, cached)
	}
	v, cached = c.Do("k", func() int { calls++; return 0 })
	if v != 42 || !cached {
		t.Fatalf("second Do = (%d, %v), want (42, true)", v, cached)
	}
	if calls != 1 {
		t.Fatalf("fill ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestGetNeverFills(t *testing.T) {
	c := New[string](16)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	c.Do("k", func() string { return "v" })
	if v, ok := c.Get("k"); !ok || v != "v" {
		t.Fatalf("Get = (%q, %v), want (v, true)", v, ok)
	}
}

// TestSingleflightRace drives many goroutines at the same key and asserts
// the fill runs exactly once while everyone observes the same value. Run
// with -race, this is the cache-dedup guarantee the server relies on.
func TestSingleflightRace(t *testing.T) {
	c := New[int](16)
	var fills atomic.Int64
	release := make(chan struct{})

	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	hits := make([]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], hits[g] = c.Do("hot", func() int {
				fills.Add(1)
				<-release // hold the fill open so the others must coalesce
				return 7
			})
		}(g)
	}
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times under contention, want 1", n)
	}
	fillers := 0
	for g := 0; g < goroutines; g++ {
		if results[g] != 7 {
			t.Fatalf("goroutine %d got %d, want 7", g, results[g])
		}
		if !hits[g] {
			fillers++
		}
	}
	if fillers != 1 {
		t.Fatalf("%d goroutines reported cached=false, want exactly 1", fillers)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 8 = one entry per shard: a second distinct key landing in a
	// shard must evict the first.
	c := New[int](shardCount)
	const keys = 64
	for i := 0; i < keys; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() int { return i })
	}
	st := c.Stats()
	if st.Entries > shardCount {
		t.Fatalf("cache holds %d entries, bound is %d", st.Entries, shardCount)
	}
	if st.Evictions != keys-int64(st.Entries) {
		t.Fatalf("evictions = %d with %d entries, want %d", st.Evictions, st.Entries, keys-st.Entries)
	}
}

func TestFillPanicRetries(t *testing.T) {
	c := New[int](16)
	mustPanic := func() (r any) {
		defer func() { r = recover() }()
		c.Do("bad", func() int { panic("boom") })
		return nil
	}
	if r := mustPanic(); r != "boom" {
		t.Fatalf("Do re-raised %v, want boom", r)
	}
	// The failed key is forgotten: a later Do runs its fill.
	v, cached := c.Do("bad", func() int { return 9 })
	if v != 9 || cached {
		t.Fatalf("retry Do = (%d, %v), want (9, false)", v, cached)
	}
}

func TestGenerateTraceSharesAcrossCallers(t *testing.T) {
	p, ok := tgen.PresetByName("swm256")
	if !ok {
		t.Fatal("missing preset")
	}
	p.Insns = 500
	a := GenerateTrace(p)
	b, cached := GenerateTraceCached(p)
	if a != b {
		t.Fatal("same preset generated two distinct traces")
	}
	if !cached {
		t.Fatal("second generation was not a cache hit")
	}
	// A different budget is a different trace.
	p.Insns = 600
	if c := GenerateTrace(p); c == a {
		t.Fatal("different insn budgets shared a trace")
	}
}
