package simcache

import (
	"context"
	"time"
	"unsafe"

	"oovec/internal/metrics"
	"oovec/internal/span"
)

// This file is the two-tier result cache: the sharded in-memory LRU in
// front of an optional durable backing store (internal/store implements
// it). The memory tier dies with the process; the backing tier is what
// makes a restarted ovserve — or a fresh ovsweep invocation pointed at the
// same -cache-dir — serve previously computed results with zero new
// simulations.

// ResultStore is the durable tier behind a Results cache. internal/store
// provides the on-disk implementation; the interface lives here so simcache
// (and everything above it) never depends on the storage engine.
//
// Load returns the persisted result for a key, or false on a miss — and a
// miss is the only failure mode: a corrupt or unreadable entry must degrade
// to (nil, false), never an error or a wrong result. Save persists a result
// best-effort and may be asynchronous; implementations must tolerate
// concurrent Saves of the same key (results are content-addressed, so such
// saves carry identical measurements). Both must be safe for concurrent
// use. The context carries request-scoped observability (the active trace
// span) only — implementations must not let it cancel or fail a store
// operation, since a stored result must never depend on the fate of the
// request that happened to compute it.
type ResultStore interface {
	Load(ctx context.Context, key string) (*metrics.RunStats, bool)
	Save(ctx context.Context, key string, st *metrics.RunStats)
}

// Tier identifies where a Results.Do call was resolved: the in-memory LRU,
// the durable disk store, or an actual simulation. The String forms are the
// label values of the ovserve per-tier latency histograms.
type Tier uint8

const (
	TierMemory Tier = iota
	TierDisk
	TierSim
	NumTiers = 3
)

func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "simulate"
	}
}

// Results is the two-tier simulation result cache: memory miss → disk
// probe → simulate. The memory tier's singleflight covers the disk tier
// too, so for any key at most one goroutine probes the store or runs the
// fill — exactly one writer per key. Construct with NewResults.
type Results struct {
	mem  *Cache[*metrics.RunStats]
	disk ResultStore // nil = memory-only

	// observe, when non-nil, receives each Do call's resolution tier and
	// wall-clock duration. Install with SetObserver before serving traffic;
	// the field is not synchronised for later replacement.
	observe func(context.Context, Tier, time.Duration)
}

// SetObserver installs fn to be called once per Do with the request
// context (carrying the active trace span, if any — exemplar attachment
// reads the trace id from it), the tier that resolved the request, and the
// wall time the call took (including any time spent coalesced behind
// another caller's fill). Call before the cache starts serving concurrent
// traffic; fn must be safe for concurrent use.
func (r *Results) SetObserver(fn func(context.Context, Tier, time.Duration)) { r.observe = fn }

// NewResults builds a two-tier result cache: a memory LRU bounded to
// roughly `entries` (<= 0 selects a small default) in front of disk, which
// may be nil for a memory-only cache (the pre-persistence behaviour).
func NewResults(entries int, disk ResultStore) *Results {
	return &Results{mem: NewSized(entries, runStatsBytes), disk: disk}
}

// runStatsBytes estimates the memory footprint of one cached result for
// Stats.Bytes: the struct itself plus its string payloads.
func runStatsBytes(st *metrics.RunStats) int {
	if st == nil {
		return 0
	}
	return int(unsafe.Sizeof(*st)) + len(st.Machine) + len(st.Program)
}

// Do is DoCtx without request context: spans are not emitted and the
// observer sees an untraced context. It exists for callers outside a
// request path (CLI tools, warm-up) and to satisfy sweep.ResultCache.
func (r *Results) Do(key string, fill func() *metrics.RunStats) (*metrics.RunStats, bool) {
	return r.DoCtx(context.Background(), key, func(context.Context) *metrics.RunStats { return fill() })
}

// DoCtx returns the result for key. The lookup order is memory, then the
// backing store, then fill (the actual simulation); the second return
// reports whether the value came from either cache tier — callers count a
// simulation exactly when it is false. A fill's result is published to
// both tiers. Concurrent calls for one key coalesce: the memory tier's
// singleflight guarantees a single disk probe or simulation, and therefore
// a single store write, per key.
//
// When ctx carries a trace span, the resolution is recorded as a
// "cache.resolve" span (attrs key, tier, and waited on coalesced calls),
// with a "cache.promote" child covering the attempt to promote the key
// from the durable tier (attr hit), a back-dated "singleflight.wait" child
// on coalesced calls, and whatever spans the store and fill emit beneath
// it. fill receives a context descending from ctx so simulation spans nest
// correctly. Tracing is observation-only: the cached value is identical
// traced or untraced.
func (r *Results) DoCtx(ctx context.Context, key string, fill func(context.Context) *metrics.RunStats) (*metrics.RunStats, bool) {
	sp, ctx := span.Start(ctx, "cache.resolve")
	sp.SetAttr("key", key)
	var start time.Time
	if r.observe != nil || sp != nil {
		start = time.Now()
	}
	diskHit := false
	st, memHit, waited := r.mem.DoFlight(key, func() *metrics.RunStats {
		if r.disk != nil {
			psp, pctx := span.Start(ctx, "cache.promote")
			st, ok := r.disk.Load(pctx, key)
			if ok {
				psp.SetAttr("hit", "true")
				psp.End()
				diskHit = true
				return st
			}
			psp.SetAttr("hit", "false")
			psp.End()
		}
		st := fill(ctx)
		if r.disk != nil {
			r.disk.Save(ctx, key, st)
		}
		return st
	})
	if waited {
		// The wait began (at the latest) when this call found the key in
		// flight; back-date the span to cover the coalesced block.
		wsp, _ := span.StartAt(ctx, "singleflight.wait", start)
		wsp.End()
		sp.SetAttr("waited", "true")
	}
	// diskHit is only written by the filling goroutine (memHit false), and
	// only read here when memHit is false — same goroutine, no race.
	tier := TierMemory
	switch {
	case !memHit && diskHit:
		tier = TierDisk
	case !memHit:
		tier = TierSim
	}
	sp.SetAttr("tier", tier.String())
	sp.End()
	if r.observe != nil {
		r.observe(ctx, tier, time.Since(start))
	}
	return st, memHit || diskHit
}

// Get returns the value for key if the memory tier holds it ready, without
// probing the store or filling.
func (r *Results) Get(key string) (*metrics.RunStats, bool) { return r.mem.Get(key) }

// Preload pulls the given keys from the backing store into the memory tier
// and returns how many loaded. It is the warm-start path: after a restart
// the memory tier is empty while the store holds everything the previous
// process computed, so pre-loading the most-recently-used keys (see
// store.RecentKeys) lets the first interactive requests hit memory instead
// of each paying a disk probe. Keys already resident or absent from the
// store are skipped; Preload never simulates.
func (r *Results) Preload(keys []string) int {
	if r.disk == nil {
		return 0
	}
	loaded := 0
	for _, key := range keys {
		if _, ok := r.mem.Get(key); ok {
			continue
		}
		st, ok := r.disk.Load(context.Background(), key)
		if !ok {
			continue
		}
		r.mem.Do(key, func() *metrics.RunStats { return st })
		loaded++
	}
	return loaded
}

// MemStats snapshots the memory tier's counters. The disk tier keeps its
// own stats (see internal/store).
func (r *Results) MemStats() Stats { return r.mem.Stats() }
