package simcache

import (
	"time"
	"unsafe"

	"oovec/internal/metrics"
)

// This file is the two-tier result cache: the sharded in-memory LRU in
// front of an optional durable backing store (internal/store implements
// it). The memory tier dies with the process; the backing tier is what
// makes a restarted ovserve — or a fresh ovsweep invocation pointed at the
// same -cache-dir — serve previously computed results with zero new
// simulations.

// ResultStore is the durable tier behind a Results cache. internal/store
// provides the on-disk implementation; the interface lives here so simcache
// (and everything above it) never depends on the storage engine.
//
// Load returns the persisted result for a key, or false on a miss — and a
// miss is the only failure mode: a corrupt or unreadable entry must degrade
// to (nil, false), never an error or a wrong result. Save persists a result
// best-effort and may be asynchronous; implementations must tolerate
// concurrent Saves of the same key (results are content-addressed, so such
// saves carry identical measurements). Both must be safe for concurrent
// use.
type ResultStore interface {
	Load(key string) (*metrics.RunStats, bool)
	Save(key string, st *metrics.RunStats)
}

// Tier identifies where a Results.Do call was resolved: the in-memory LRU,
// the durable disk store, or an actual simulation. The String forms are the
// label values of the ovserve per-tier latency histograms.
type Tier uint8

const (
	TierMemory Tier = iota
	TierDisk
	TierSim
	NumTiers = 3
)

func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "simulate"
	}
}

// Results is the two-tier simulation result cache: memory miss → disk
// probe → simulate. The memory tier's singleflight covers the disk tier
// too, so for any key at most one goroutine probes the store or runs the
// fill — exactly one writer per key. Construct with NewResults.
type Results struct {
	mem  *Cache[*metrics.RunStats]
	disk ResultStore // nil = memory-only

	// observe, when non-nil, receives each Do call's resolution tier and
	// wall-clock duration. Install with SetObserver before serving traffic;
	// the field is not synchronised for later replacement.
	observe func(Tier, time.Duration)
}

// SetObserver installs fn to be called once per Do with the tier that
// resolved the request and the wall time the call took (including any time
// spent coalesced behind another caller's fill). Call before the cache
// starts serving concurrent traffic; fn must be safe for concurrent use.
func (r *Results) SetObserver(fn func(Tier, time.Duration)) { r.observe = fn }

// NewResults builds a two-tier result cache: a memory LRU bounded to
// roughly `entries` (<= 0 selects a small default) in front of disk, which
// may be nil for a memory-only cache (the pre-persistence behaviour).
func NewResults(entries int, disk ResultStore) *Results {
	return &Results{mem: NewSized(entries, runStatsBytes), disk: disk}
}

// runStatsBytes estimates the memory footprint of one cached result for
// Stats.Bytes: the struct itself plus its string payloads.
func runStatsBytes(st *metrics.RunStats) int {
	if st == nil {
		return 0
	}
	return int(unsafe.Sizeof(*st)) + len(st.Machine) + len(st.Program)
}

// Do returns the result for key. The lookup order is memory, then the
// backing store, then fill (the actual simulation); the second return
// reports whether the value came from either cache tier — callers count a
// simulation exactly when it is false. A fill's result is published to
// both tiers. Concurrent calls for one key coalesce: the memory tier's
// singleflight guarantees a single disk probe or simulation, and therefore
// a single store write, per key.
func (r *Results) Do(key string, fill func() *metrics.RunStats) (*metrics.RunStats, bool) {
	var start time.Time
	if r.observe != nil {
		start = time.Now()
	}
	diskHit := false
	st, memHit := r.mem.Do(key, func() *metrics.RunStats {
		if r.disk != nil {
			if st, ok := r.disk.Load(key); ok {
				diskHit = true
				return st
			}
		}
		st := fill()
		if r.disk != nil {
			r.disk.Save(key, st)
		}
		return st
	})
	// diskHit is only written by the filling goroutine (memHit false), and
	// only read here when memHit is false — same goroutine, no race.
	if r.observe != nil {
		tier := TierMemory
		switch {
		case !memHit && diskHit:
			tier = TierDisk
		case !memHit:
			tier = TierSim
		}
		r.observe(tier, time.Since(start))
	}
	return st, memHit || diskHit
}

// Get returns the value for key if the memory tier holds it ready, without
// probing the store or filling.
func (r *Results) Get(key string) (*metrics.RunStats, bool) { return r.mem.Get(key) }

// Preload pulls the given keys from the backing store into the memory tier
// and returns how many loaded. It is the warm-start path: after a restart
// the memory tier is empty while the store holds everything the previous
// process computed, so pre-loading the most-recently-used keys (see
// store.RecentKeys) lets the first interactive requests hit memory instead
// of each paying a disk probe. Keys already resident or absent from the
// store are skipped; Preload never simulates.
func (r *Results) Preload(keys []string) int {
	if r.disk == nil {
		return 0
	}
	loaded := 0
	for _, key := range keys {
		if _, ok := r.mem.Get(key); ok {
			continue
		}
		st, ok := r.disk.Load(key)
		if !ok {
			continue
		}
		r.mem.Do(key, func() *metrics.RunStats { return st })
		loaded++
	}
	return loaded
}

// MemStats snapshots the memory tier's counters. The disk tier keeps its
// own stats (see internal/store).
func (r *Results) MemStats() Stats { return r.mem.Stats() }
