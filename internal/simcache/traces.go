package simcache

import (
	"fmt"
	"unsafe"

	"oovec/internal/isa"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

// sharedTraces is the process-wide trace cache. Trace generation is
// deterministic and traces are immutable once built, so every consumer of
// the same (preset, insns) — experiment suites, sweep grids, ovserve
// request handlers — can share one copy. On a full experiment run trace
// generation is ~20 MB of the 33.6 MB suite footprint; sharing makes it a
// one-time cost.
//
// The capacity covers the ten paper benchmarks at a few instruction budgets
// plus ad-hoc presets before LRU eviction kicks in.
var sharedTraces = NewSized(64, traceBytes)

// traceBytes estimates a cached trace's memory footprint — dominated by
// the instruction slice — for the Stats.Bytes gauge on /metrics.
func traceBytes(t *trace.Trace) int {
	if t == nil {
		return 0
	}
	return int(unsafe.Sizeof(*t)) +
		cap(t.Insns)*int(unsafe.Sizeof(isa.Instruction{})) +
		len(t.Name) + len(t.Suite)
}

// PresetKey renders the canonical cache key of a preset: every field
// participates, so two presets generate through one entry exactly when they
// would generate identical traces.
func PresetKey(p tgen.Preset) string {
	return fmt.Sprintf("tgen:%+v", p)
}

// GenerateTrace returns the trace for a preset, generating it at most once
// process-wide (concurrent callers for the same preset coalesce onto one
// generation). The returned trace is shared and must not be mutated.
func GenerateTrace(p tgen.Preset) *trace.Trace {
	t, _ := GenerateTraceCached(p)
	return t
}

// GenerateTraceCached is GenerateTrace, also reporting whether the trace
// came from the cache.
func GenerateTraceCached(p tgen.Preset) (*trace.Trace, bool) {
	return sharedTraces.Do(PresetKey(p), func() *trace.Trace {
		return tgen.Generate(p)
	})
}

// TraceStats snapshots the shared trace cache counters.
func TraceStats() Stats { return sharedTraces.Stats() }
