package rename

// Snapshot/Restore support for mid-run checkpointing (see package sched).

// FreeEntry is the exported form of one free-list entry.
type FreeEntry struct {
	Phys    int
	ReadyAt int64
}

// TableState is the serialisable mid-run state of a rename Table. The free
// list is stored in logical (oldest-first) order, normalising the ring
// rotation away: the table's behaviour depends only on the order entries
// pop, not on where the ring happens to start.
type TableState struct {
	Mapping []int
	Refcnt  []int
	Free    []FreeEntry
}

// Snapshot captures the table state (deep copy).
func (t *Table) Snapshot() TableState {
	st := TableState{
		Mapping: append([]int(nil), t.mapping...),
		Refcnt:  append([]int(nil), t.refcnt...),
		Free:    make([]FreeEntry, t.count),
	}
	for i := 0; i < t.count; i++ {
		e := t.free[(t.head+i)%len(t.free)]
		st.Free[i] = FreeEntry{Phys: e.Phys, ReadyAt: e.ReadyAt}
	}
	return st
}

// Restore replaces the table state with st. The table's structural sizes
// (NumLogical, NumPhysical) are configuration, not state, and must match
// the snapshotted table's.
func (t *Table) Restore(st TableState) {
	copy(t.mapping, st.Mapping)
	copy(t.refcnt, st.Refcnt)
	t.head, t.count = 0, 0
	for _, e := range st.Free {
		t.push(freeEntry{Phys: e.Phys, ReadyAt: e.ReadyAt})
	}
}

// TagFileState is the serialisable mid-run state of a TagFile.
type TagFileState struct {
	Tags          []Tag
	Matches       int64
	Invalidations int64
}

// Snapshot captures the tag-file state (deep copy).
func (f *TagFile) Snapshot() TagFileState {
	return TagFileState{
		Tags:          append([]Tag(nil), f.tags...),
		Matches:       f.matches,
		Invalidations: f.invalidations,
	}
}

// Restore replaces the tag-file state with st.
func (f *TagFile) Restore(st TagFileState) {
	if len(f.tags) != len(st.Tags) {
		f.tags = make([]Tag, len(st.Tags))
	}
	copy(f.tags, st.Tags)
	f.matches, f.invalidations = st.Matches, st.Invalidations
}
