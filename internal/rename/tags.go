package rename

// Memory tags for dynamic load elimination (§6.1).
//
// A tag is associated with each physical register and records the memory
// region whose contents the register currently mirrors. For vector
// registers the tag is the 6-tuple (@1, @2, vl, vs, sz, v): the virtual
// address range, the vector length, stride and access granularity used when
// the tag was created, and a validity bit. Scalar registers use the same
// structure with VL=1 and VS=0 (the paper's 4-tuple).
//
// Tag life cycle:
//
//   - a load sets the tag of its destination physical register;
//   - a store sets the tag of the physical register being stored (this is
//     what makes spill store → reload pairs eliminable);
//   - every store invalidates all existing tags whose address ranges
//     overlap the store's range (conservatively), except the tag the store
//     itself just wrote;
//   - a later load whose tag matches an existing tag exactly is redundant:
//     its destination is renamed to the matching physical register.

// Tag describes the memory image aliased by one physical register.
type Tag struct {
	// Start and End delimit the byte range [Start, End] touched.
	Start, End uint64
	// VL and VS are the vector length and stride at tag creation.
	VL uint16
	VS int32
	// Sz is the access granularity in bytes.
	Sz uint8
	// Valid is the validity bit.
	Valid bool
}

// Matches reports an exact match as §6.1 requires: "an exact match requires
// all tag fields to be identical".
func (t Tag) Matches(o Tag) bool {
	return t.Valid && o.Valid &&
		t.Start == o.Start && t.End == o.End &&
		t.VL == o.VL && t.VS == o.VS && t.Sz == o.Sz
}

// Overlaps reports whether the tag's range intersects [start, end].
func (t Tag) Overlaps(start, end uint64) bool {
	return t.Valid && t.Start <= end && start <= t.End
}

// TagFile holds the tags of one register class's physical registers.
type TagFile struct {
	tags []Tag

	matches       int64
	invalidations int64
}

// NewTagFile returns a tag file for n physical registers, all invalid.
func NewTagFile(n int) *TagFile {
	return &TagFile{tags: make([]Tag, n)}
}

// Grow extends the file to at least n registers.
func (f *TagFile) Grow(n int) {
	for len(f.tags) < n {
		f.tags = append(f.tags, Tag{})
	}
}

// Reset invalidates every tag and clears the counters, reusing the storage.
func (f *TagFile) Reset() {
	for i := range f.tags {
		f.tags[i] = Tag{}
	}
	f.matches, f.invalidations = 0, 0
}

// Set installs a tag on phys.
func (f *TagFile) Set(phys int, t Tag) { f.tags[phys] = t }

// Get returns the tag of phys.
func (f *TagFile) Get(phys int) Tag { return f.tags[phys] }

// Invalidate clears the tag of phys (e.g. the register was overwritten by a
// functional-unit result, which no longer mirrors memory).
func (f *TagFile) Invalidate(phys int) { f.tags[phys].Valid = false }

// InvalidateOverlap clears every tag overlapping [start, end], except the
// register `except` (pass -1 for none). This is the conservative
// invalidation a store performs.
func (f *TagFile) InvalidateOverlap(start, end uint64, except int) {
	for p := range f.tags {
		if p == except {
			continue
		}
		if f.tags[p].Overlaps(start, end) {
			f.tags[p].Valid = false
			f.invalidations++
		}
	}
}

// InvalidateExact clears only tags whose range equals [start, end] exactly,
// except `except`. This is the UNSAFE ablation policy (a partially
// overlapping store leaves stale tags); the simulator uses it only to
// quantify what the §6.1 conservative policy costs.
func (f *TagFile) InvalidateExact(start, end uint64, except int) {
	for p := range f.tags {
		if p == except {
			continue
		}
		if f.tags[p].Valid && f.tags[p].Start == start && f.tags[p].End == end {
			f.tags[p].Valid = false
			f.invalidations++
		}
	}
}

// FindExact returns the physical register whose tag exactly matches t, or
// -1. When several match (possible after aliasing), the lowest-numbered one
// is returned, keeping the simulator deterministic.
func (f *TagFile) FindExact(t Tag) int {
	for p := range f.tags {
		if f.tags[p].Matches(t) {
			f.matches++
			return p
		}
	}
	return -1
}

// Matches returns the number of successful FindExact lookups.
func (f *TagFile) Matches() int64 { return f.matches }

// Invalidations returns the number of tags killed by overlap invalidation.
func (f *TagFile) Invalidations() int64 { return f.invalidations }
