// Package rename implements the register-renaming machinery of the OOOVA
// (§2.2): per-class mapping tables translating architectural registers to
// physical registers, free lists, and the reorder-buffer rename records that
// make precise traps possible (§5). It also implements the per-physical-
// register memory tags of the dynamic load elimination technique (§6).
//
// The tables are functional (no cycle knowledge) except that each free-list
// entry carries the cycle at which the register becomes available, so the
// timing simulator can charge decode stalls for an empty free list.
package rename

import (
	"fmt"

	"oovec/internal/isa"
)

// freeEntry is a physical register on the free list, available from ReadyAt.
type freeEntry struct {
	Phys    int
	ReadyAt int64
}

// Table is the rename state of one register class.
//
// The free list is a fixed-capacity ring buffer: a simulation pops and
// pushes one entry per renamed instruction, and a ring keeps that churn
// allocation-free (a plain slice would reallocate its backing array every
// NumPhysical operations).
type Table struct {
	Class       isa.RegClass //ovlint:config structural identity, fixed at construction
	NumLogical  int          //ovlint:config structural size, fixed at construction
	NumPhysical int          //ovlint:config structural size, fixed at construction

	mapping []int       // logical -> physical
	refcnt  []int       // physical -> number of mapping references
	free    []freeEntry // ring buffer of free registers
	head    int         // ring index of the oldest free entry
	count   int         // free entries currently in the ring
}

// NewTable builds a rename table with numPhysical registers. The first
// NumLogical physical registers hold the initial architectural state; the
// rest start on the free list (available at cycle 0).
// numPhysical must exceed the number of logical registers — with no spare
// register, no instruction writing the class could ever be renamed.
func NewTable(class isa.RegClass, numPhysical int) (*Table, error) {
	nl := class.NumLogical()
	if nl == 0 {
		return nil, fmt.Errorf("rename: class %v has no registers", class)
	}
	if numPhysical <= nl {
		return nil, fmt.Errorf("rename: class %v needs > %d physical registers, got %d",
			class, nl, numPhysical)
	}
	t := &Table{
		Class:       class,
		NumLogical:  nl,
		NumPhysical: numPhysical,
		mapping:     make([]int, nl),
		refcnt:      make([]int, numPhysical),
		free:        make([]freeEntry, numPhysical),
	}
	t.Reset()
	return t, nil
}

// Reset restores the initial rename state — identity mapping, every spare
// register free at cycle 0 — without allocating, so machines can be reused
// across runs.
func (t *Table) Reset() {
	for l := 0; l < t.NumLogical; l++ {
		t.mapping[l] = l
	}
	for p := range t.refcnt {
		t.refcnt[p] = 0
	}
	for l := 0; l < t.NumLogical; l++ {
		t.refcnt[l] = 1
	}
	t.head, t.count = 0, 0
	for p := t.NumLogical; p < t.NumPhysical; p++ {
		t.push(freeEntry{Phys: p})
	}
}

// push appends a free entry at the ring tail.
func (t *Table) push(e freeEntry) {
	t.free[(t.head+t.count)%len(t.free)] = e
	t.count++
}

// MustNewTable is NewTable that panics on error (for fixed valid configs).
func MustNewTable(class isa.RegClass, numPhysical int) *Table {
	t, err := NewTable(class, numPhysical)
	if err != nil {
		panic(err)
	}
	return t
}

// Lookup returns the physical register currently mapped to logical.
func (t *Table) Lookup(logical int) int { return t.mapping[logical] }

// FreeCount returns the number of registers on the free list.
func (t *Table) FreeCount() int { return t.count }

// Allocate renames logical to a fresh physical register, popping the free
// list head. It returns the new physical register, the old mapping (to be
// released when the instruction commits) and the cycle at which the new
// register is actually available (decode must stall until then). ok is
// false when the free list is empty — the caller must model a stall and may
// not retry until a Release occurs.
//
//ovlint:hotpath called once per renamed instruction
func (t *Table) Allocate(logical int) (newPhys, oldPhys int, readyAt int64, ok bool) {
	if t.count == 0 {
		return 0, 0, 0, false
	}
	e := t.free[t.head]
	t.head = (t.head + 1) % len(t.free)
	t.count--
	oldPhys = t.mapping[logical]
	t.mapping[logical] = e.Phys
	t.refcnt[e.Phys]++
	return e.Phys, oldPhys, e.ReadyAt, true
}

// Release returns one mapping reference on phys at the given cycle; when the
// last reference drops the register joins the free list, available from
// `at`. Release times must be non-decreasing across calls (commit order),
// which keeps the free list sorted by availability.
//
//ovlint:hotpath called once per committed instruction
func (t *Table) Release(phys int, at int64) {
	if t.refcnt[phys] <= 0 {
		panic(fmt.Sprintf("rename: double release of %v physical %d", t.Class, phys)) //ovlint:allow hotpath panic path, unreachable in a valid run
	}
	t.refcnt[phys]--
	if t.refcnt[phys] == 0 {
		t.push(freeEntry{Phys: phys, ReadyAt: at})
	}
}

// AliasTo maps logical directly onto an existing physical register — the
// §6.1 load-elimination rename. The target may currently be live or on the
// free list ("matching is not restricted to live registers"); a free-list
// target is removed from the list. It returns the old mapping for release
// at commit.
//
//ovlint:hotpath called once per eliminated load
func (t *Table) AliasTo(logical, phys int) (oldPhys int) {
	if t.refcnt[phys] == 0 {
		// Remove phys from the ring, preserving availability order.
		n := len(t.free)
		for i := 0; i < t.count; i++ {
			if t.free[(t.head+i)%n].Phys != phys {
				continue
			}
			for j := i; j < t.count-1; j++ {
				t.free[(t.head+j)%n] = t.free[(t.head+j+1)%n]
			}
			t.count--
			break
		}
	}
	oldPhys = t.mapping[logical]
	t.mapping[logical] = phys
	t.refcnt[phys]++
	return oldPhys
}

// Undo reverses one rename (mapping logical from newPhys back to oldPhys)
// during a precise-trap rollback. The instruction being undone never
// committed, so oldPhys was never released; newPhys loses the reference the
// rename gave it and rejoins the free list if that was the last one.
// Rollback walks reorder-buffer records newest-first.
func (t *Table) Undo(logical, oldPhys, newPhys int) {
	if t.mapping[logical] != newPhys {
		//ovlint:allow hotpath panic path, unreachable in a valid rollback
		panic(fmt.Sprintf("rename: undo mismatch on %v%d: mapped %d, undoing %d",
			t.Class, logical, t.mapping[logical], newPhys))
	}
	t.mapping[logical] = oldPhys
	t.Release(newPhys, 0)
}

// LiveRefs returns the reference count of phys (testing/invariant checks).
func (t *Table) LiveRefs(phys int) int { return t.refcnt[phys] }

// CheckInvariants verifies structural sanity: every mapping target has a
// positive refcount, free-list registers have zero refcount, no register is
// both free and mapped, and reference totals are consistent.
func (t *Table) CheckInvariants() error {
	onFree := make(map[int]bool, t.count)
	for i := 0; i < t.count; i++ {
		e := t.free[(t.head+i)%len(t.free)]
		if onFree[e.Phys] {
			return fmt.Errorf("rename: %v physical %d on free list twice", t.Class, e.Phys)
		}
		onFree[e.Phys] = true
		if t.refcnt[e.Phys] != 0 {
			return fmt.Errorf("rename: %v physical %d free but refcount %d",
				t.Class, e.Phys, t.refcnt[e.Phys])
		}
	}
	for l, p := range t.mapping {
		if t.refcnt[p] <= 0 {
			return fmt.Errorf("rename: %v%d maps to %d with refcount %d",
				t.Class, l, p, t.refcnt[p])
		}
		if onFree[p] {
			return fmt.Errorf("rename: %v%d maps to free register %d", t.Class, l, p)
		}
	}
	return nil
}

// Record is a reorder-buffer rename record: enough to undo one instruction's
// rename. Note the paper's observation that "the reorder buffer only holds a
// few bits to identify instructions and register names; it never holds
// register values".
type Record struct {
	Class     isa.RegClass
	Logical   int
	OldPhys   int
	NewPhys   int
	HasRename bool
}

// Rollback undoes the renames in records, newest first, restoring the
// precise architectural mapping at the faulting instruction. tables maps the
// register class to its table.
func Rollback(tables map[isa.RegClass]*Table, records []Record) {
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		if !r.HasRename {
			continue
		}
		tables[r.Class].Undo(r.Logical, r.OldPhys, r.NewPhys)
	}
}
