package rename

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oovec/internal/isa"
)

func TestNewTableInitialState(t *testing.T) {
	tb := MustNewTable(isa.RegV, 16)
	if tb.FreeCount() != 8 {
		t.Errorf("free count = %d, want 8", tb.FreeCount())
	}
	for l := 0; l < 8; l++ {
		if tb.Lookup(l) != l {
			t.Errorf("initial mapping v%d = %d", l, tb.Lookup(l))
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewTableRejectsTooFewPhysical(t *testing.T) {
	if _, err := NewTable(isa.RegV, 8); err == nil {
		t.Error("8 physical for 8 logical should be rejected")
	}
	if _, err := NewTable(isa.RegV, 9); err != nil {
		t.Errorf("9 physical should be the minimum: %v", err)
	}
	if _, err := NewTable(isa.RegNone, 4); err == nil {
		t.Error("classless table should be rejected")
	}
}

func TestAllocateReleaseCycle(t *testing.T) {
	tb := MustNewTable(isa.RegV, 10) // phys 8,9 free
	np, op, rdy, ok := tb.Allocate(3)
	if !ok || np != 8 || op != 3 || rdy != 0 {
		t.Fatalf("Allocate = (%d,%d,%d,%v)", np, op, rdy, ok)
	}
	if tb.Lookup(3) != 8 {
		t.Errorf("v3 now maps to %d, want 8", tb.Lookup(3))
	}
	np2, op2, _, ok := tb.Allocate(3)
	if !ok || np2 != 9 || op2 != 8 {
		t.Fatalf("second Allocate = (%d,%d,_,%v)", np2, op2, ok)
	}
	// Free list empty now.
	if _, _, _, ok := tb.Allocate(0); ok {
		t.Error("allocation from empty free list must fail")
	}
	// Commit the first instruction: old mapping (phys 3) released at cycle 100.
	tb.Release(op, 100)
	np3, _, rdy3, ok := tb.Allocate(0)
	if !ok || np3 != 3 || rdy3 != 100 {
		t.Fatalf("post-release Allocate = (%d,_,%d,%v), want phys 3 at 100", np3, rdy3, ok)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	tb := MustNewTable(isa.RegV, 10)
	_, op, _, _ := tb.Allocate(0)
	tb.Release(op, 10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double release")
		}
	}()
	tb.Release(op, 20)
}

func TestAliasToLiveRegister(t *testing.T) {
	tb := MustNewTable(isa.RegV, 12)
	// v1 currently maps to phys 1 (live). Alias v5 onto it (eliminated load).
	old := tb.AliasTo(5, 1)
	if old != 5 {
		t.Errorf("old mapping = %d, want 5", old)
	}
	if tb.Lookup(5) != 1 || tb.Lookup(1) != 1 {
		t.Error("aliasing broke mappings")
	}
	if tb.LiveRefs(1) != 2 {
		t.Errorf("refcount = %d, want 2", tb.LiveRefs(1))
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Releasing one reference must not free the register.
	tb.Release(1, 50)
	if tb.LiveRefs(1) != 1 || tb.FreeCount() != 4 {
		t.Error("register freed while still mapped")
	}
}

func TestAliasToFreeRegisterRemovesFromFreeList(t *testing.T) {
	tb := MustNewTable(isa.RegV, 10) // free: 8, 9
	// Simulate §6.1: "If a load matches a register in the free list, the
	// register is taken from the free list and added to the register map".
	old := tb.AliasTo(2, 9)
	if old != 2 {
		t.Errorf("old = %d", old)
	}
	if tb.FreeCount() != 1 {
		t.Errorf("free count = %d, want 1", tb.FreeCount())
	}
	if tb.Lookup(2) != 9 {
		t.Errorf("v2 maps to %d, want 9", tb.Lookup(2))
	}
	// Allocation must now hand out 8, not 9.
	np, _, _, ok := tb.Allocate(0)
	if !ok || np != 8 {
		t.Errorf("Allocate = %d, want 8", np)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUndoRestoresMapping(t *testing.T) {
	tb := MustNewTable(isa.RegV, 12)
	np, op, _, _ := tb.Allocate(4)
	tb.Undo(4, op, np)
	if tb.Lookup(4) != 4 {
		t.Errorf("after undo v4 maps to %d, want 4", tb.Lookup(4))
	}
	if tb.FreeCount() != 4 {
		t.Errorf("free count = %d, want 4 (undone register returned)", tb.FreeCount())
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUndoMismatchPanics(t *testing.T) {
	tb := MustNewTable(isa.RegV, 12)
	tb.Allocate(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched undo")
		}
	}()
	tb.Undo(4, 4, 99)
}

func TestRollbackMultipleRecords(t *testing.T) {
	tables := map[isa.RegClass]*Table{
		isa.RegV: MustNewTable(isa.RegV, 16),
		isa.RegS: MustNewTable(isa.RegS, 16),
	}
	var records []Record
	// Three renames: v1, s2, v1 again.
	for _, step := range []struct {
		class   isa.RegClass
		logical int
	}{{isa.RegV, 1}, {isa.RegS, 2}, {isa.RegV, 1}} {
		np, op, _, ok := tables[step.class].Allocate(step.logical)
		if !ok {
			t.Fatal("allocation failed")
		}
		records = append(records, Record{
			Class: step.class, Logical: step.logical,
			OldPhys: op, NewPhys: np, HasRename: true,
		})
	}
	// A no-rename record (e.g. a store) interleaved.
	records = append(records, Record{HasRename: false})
	Rollback(tables, records)
	if tables[isa.RegV].Lookup(1) != 1 {
		t.Errorf("v1 maps to %d after rollback, want 1", tables[isa.RegV].Lookup(1))
	}
	if tables[isa.RegS].Lookup(2) != 2 {
		t.Errorf("s2 maps to %d after rollback, want 2", tables[isa.RegS].Lookup(2))
	}
	for _, tb := range tables {
		if err := tb.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if tb.FreeCount() != 8 {
			t.Errorf("%v free count = %d, want 8", tb.Class, tb.FreeCount())
		}
	}
}

func TestPropertyAllocReleaseInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := MustNewTable(isa.RegV, 9+r.Intn(56))
		type pending struct{ old int }
		var inflight []pending
		var clock int64
		for i := 0; i < 500; i++ {
			clock++
			switch r.Intn(3) {
			case 0, 1: // rename
				np, op, _, ok := tb.Allocate(r.Intn(8))
				if ok {
					inflight = append(inflight, pending{old: op})
					_ = np
				}
			case 2: // commit oldest
				if len(inflight) > 0 {
					tb.Release(inflight[0].old, clock)
					inflight = inflight[1:]
				}
			}
			if tb.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFreeListTimesNondecreasing(t *testing.T) {
	// With releases in commit order, successive allocations must see
	// non-decreasing availability times.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := MustNewTable(isa.RegV, 9)
		var clock int64
		var pendingOld []int
		lastReady := int64(-1)
		for i := 0; i < 300; i++ {
			clock += int64(r.Intn(5))
			if np, op, rdy, ok := tb.Allocate(r.Intn(8)); ok {
				_ = np
				pendingOld = append(pendingOld, op)
				if rdy < lastReady {
					return false
				}
				lastReady = rdy
			} else if len(pendingOld) > 0 {
				tb.Release(pendingOld[0], clock)
				pendingOld = pendingOld[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTagExactMatch(t *testing.T) {
	a := Tag{Start: 0x1000, End: 0x11ff, VL: 64, VS: 8, Sz: 8, Valid: true}
	b := a
	if !a.Matches(b) {
		t.Error("identical tags must match")
	}
	c := a
	c.VS = 16
	if a.Matches(c) {
		t.Error("different stride must not match")
	}
	d := a
	d.Valid = false
	if a.Matches(d) || d.Matches(a) {
		t.Error("invalid tags never match")
	}
}

func TestTagOverlap(t *testing.T) {
	a := Tag{Start: 100, End: 199, Valid: true}
	if !a.Overlaps(150, 250) || !a.Overlaps(0, 100) || !a.Overlaps(199, 199) {
		t.Error("overlapping ranges not detected")
	}
	if a.Overlaps(200, 300) || a.Overlaps(0, 99) {
		t.Error("disjoint ranges flagged as overlap")
	}
	a.Valid = false
	if a.Overlaps(150, 250) {
		t.Error("invalid tag must not overlap")
	}
}

func TestTagFileStoreLoadEliminationScenario(t *testing.T) {
	// The core §6 scenario: spill store tags its register; the reload finds
	// an exact match.
	f := NewTagFile(16)
	storeTag := Tag{Start: 0x9000, End: 0x91ff, VL: 64, VS: 8, Sz: 8, Valid: true}
	f.Set(5, storeTag) // store of phys 5 to the spill slot
	if got := f.FindExact(storeTag); got != 5 {
		t.Errorf("FindExact = %d, want 5", got)
	}
	if f.Matches() != 1 {
		t.Errorf("match count = %d", f.Matches())
	}
}

func TestTagFileInvalidateOverlapConservative(t *testing.T) {
	f := NewTagFile(8)
	f.Set(0, Tag{Start: 0x1000, End: 0x10ff, VL: 32, VS: 8, Sz: 8, Valid: true})
	f.Set(1, Tag{Start: 0x2000, End: 0x20ff, VL: 32, VS: 8, Sz: 8, Valid: true})
	f.Set(2, Tag{Start: 0x1080, End: 0x117f, VL: 32, VS: 8, Sz: 8, Valid: true})
	// Store to [0x1050, 0x10a0] with its data in phys 3: kills 0 and 2, not 1.
	f.InvalidateOverlap(0x1050, 0x10a0, 3)
	if f.Get(0).Valid || f.Get(2).Valid {
		t.Error("overlapping tags must be invalidated")
	}
	if !f.Get(1).Valid {
		t.Error("disjoint tag must survive")
	}
	if f.Invalidations() != 2 {
		t.Errorf("invalidations = %d, want 2", f.Invalidations())
	}
}

func TestTagFileExceptProtectsStoreOwnTag(t *testing.T) {
	f := NewTagFile(8)
	tag := Tag{Start: 0x9000, End: 0x90ff, VL: 32, VS: 8, Sz: 8, Valid: true}
	f.Set(4, tag)
	f.InvalidateOverlap(0x9000, 0x90ff, 4) // store sets then protects its own tag
	if !f.Get(4).Valid {
		t.Error("store's own tag must survive its invalidation pass")
	}
}

func TestTagFileFindExactDeterministic(t *testing.T) {
	f := NewTagFile(8)
	tag := Tag{Start: 0x100, End: 0x1ff, VL: 32, VS: 8, Sz: 8, Valid: true}
	f.Set(6, tag)
	f.Set(3, tag)
	if got := f.FindExact(tag); got != 3 {
		t.Errorf("FindExact = %d, want lowest-numbered 3", got)
	}
}

func TestTagFileGrow(t *testing.T) {
	f := NewTagFile(2)
	f.Grow(6)
	f.Set(5, Tag{Start: 1, End: 2, Valid: true})
	if !f.Get(5).Valid {
		t.Error("grown tag file lost data")
	}
}

func TestPropertyInvalidationNeverLeavesOverlappingValidTags(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tf := NewTagFile(16)
		for i := 0; i < 200; i++ {
			switch r.Intn(3) {
			case 0: // load: set a tag
				start := uint64(r.Intn(1 << 12))
				n := uint64(1 + r.Intn(64))
				tf.Set(r.Intn(16), Tag{Start: start, End: start + n*8 - 1,
					VL: uint16(n), VS: 8, Sz: 8, Valid: true})
			case 1, 2: // store: set own tag then invalidate overlaps
				start := uint64(r.Intn(1 << 12))
				n := uint64(1 + r.Intn(64))
				own := r.Intn(16)
				tag := Tag{Start: start, End: start + n*8 - 1,
					VL: uint16(n), VS: 8, Sz: 8, Valid: true}
				tf.Set(own, tag)
				tf.InvalidateOverlap(tag.Start, tag.End, own)
				// Post-condition: no other valid tag overlaps the store.
				for p := 0; p < 16; p++ {
					if p != own && tf.Get(p).Overlaps(tag.Start, tag.End) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
