package load

// The perf-trajectory gate: CI keeps the previous PR's BENCH snapshot and
// diffs the new one against it, failing the build when a tracked metric
// regresses beyond tolerance. Tracked metrics are the stable ones —
// simulator ns/op by benchmark name and the load run's p99 latencies —
// not raw wall-clock numbers that vary with runner weather. Fields absent
// from either snapshot are skipped, so schema growth never breaks the
// gate retroactively.

import (
	"encoding/json"
	"fmt"
)

// comparable floors: deltas on values this small are timer noise on a
// shared CI runner, not signal.
const (
	nsPerOpFloor = 1000.0 // 1 µs
	p99Floor     = 2.0    // 2 ms
)

// trackedSnapshot is the schema slice the gate reads. It decodes any
// BENCH_<n>.json vintage: unknown fields are ignored, missing sections
// leave nils.
type trackedSnapshot struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
	Load *struct {
		Cold *struct {
			Latency LatencySummary `json:"latency_ms"`
		} `json:"cold"`
		Warm *struct {
			Latency LatencySummary `json:"latency_ms"`
		} `json:"warm"`
	} `json:"load"`
}

// Regression is one tracked metric that got worse beyond tolerance.
type Regression struct {
	Field    string  `json:"field"`
	Previous float64 `json:"previous"`
	Current  float64 `json:"current"`
	// Ratio is Current/Previous — 1.35 reads as "35% slower".
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.1f -> %.1f (%.0f%% regression)",
		r.Field, r.Previous, r.Current, (r.Ratio-1)*100)
}

// Compare diffs two BENCH snapshot files (previous, current) and returns
// the tracked metrics that regressed beyond tol (0.20 = fail on >20%
// slower), plus how many tracked fields were actually compared — zero
// compared fields means the snapshots share no tracked surface, which a
// caller may want to treat as suspicious rather than a pass.
func Compare(prev, cur []byte, tol float64) (regs []Regression, compared int, err error) {
	var p, c trackedSnapshot
	if err := json.Unmarshal(prev, &p); err != nil {
		return nil, 0, fmt.Errorf("previous snapshot: %w", err)
	}
	if err := json.Unmarshal(cur, &c); err != nil {
		return nil, 0, fmt.Errorf("current snapshot: %w", err)
	}

	check := func(field string, prevV, curV, floor float64) {
		if prevV <= 0 || curV <= 0 {
			return // absent or unmeasured on one side
		}
		compared++
		if prevV < floor && curV < floor {
			return // both under the noise floor
		}
		if curV > prevV*(1+tol) {
			regs = append(regs, Regression{
				Field: field, Previous: prevV, Current: curV, Ratio: curV / prevV,
			})
		}
	}

	// Simulator throughput, matched by benchmark name so reordering or
	// adding benchmarks never misaligns the comparison.
	prevNs := make(map[string]float64, len(p.Benchmarks))
	for _, b := range p.Benchmarks {
		prevNs[b.Name] = b.NsPerOp
	}
	for _, b := range c.Benchmarks {
		check("benchmarks."+b.Name+".ns_per_op", prevNs[b.Name], b.NsPerOp, nsPerOpFloor)
	}

	// Service-level p99s from the load section.
	if p.Load != nil && c.Load != nil {
		if p.Load.Cold != nil && c.Load.Cold != nil {
			check("load.cold.latency_ms.p99_ms", p.Load.Cold.Latency.P99Ms, c.Load.Cold.Latency.P99Ms, p99Floor)
		}
		if p.Load.Warm != nil && c.Load.Warm != nil {
			check("load.warm.latency_ms.p99_ms", p.Load.Warm.Latency.P99Ms, c.Load.Warm.Latency.P99Ms, p99Floor)
		}
	}
	return regs, compared, nil
}
