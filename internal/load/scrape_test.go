package load

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oovec/internal/hist"
)

// TestScrapeToleratesExemplars pins the compatibility contract between the
// server's OpenMetrics exemplar suffixes and this package's scrape parser:
// an exposition whose histogram bucket lines carry `# {trace_id=...}`
// annotations must still yield the exact counter values, because the
// parser (like any Prometheus text parser) reads the sample value and
// ignores what follows.
func TestScrapeToleratesExemplars(t *testing.T) {
	var h hist.Hist
	h.ObserveTrace(3*time.Millisecond, "4bf92f3577b34da6a3ce929d0e0e4736")

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		h.WriteProm(w, "ovserve_request_duration_seconds", `path="/v1/sim"`, true)
		fmt.Fprintln(w, "ovserve_sims_total 7")
		fmt.Fprintln(w, "ovserve_result_cache_hits_total 5")
		fmt.Fprintln(w, "ovserve_result_cache_misses_total 2")
	}))
	defer srv.Close()

	// Sanity: the exposition under test really contains an exemplar.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "# {trace_id=") {
		t.Fatalf("test exposition carries no exemplar — the test proves nothing:\n%s", body)
	}

	got, err := scrapeMetrics(context.Background(), DriveOpts{
		BaseURL: srv.URL,
		Client:  srv.Client(),
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("scrapeMetrics over an exemplar-bearing exposition: %v", err)
	}
	if got.sims != 7 || got.hits != 5 || got.misses != 2 {
		t.Errorf("scraped counters = %+v, want sims 7, hits 5, misses 2", got)
	}
}
