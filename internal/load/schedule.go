// Package load is the ovload harness: a workload synthesizer that turns a
// seeded specification into a deterministic request schedule, a closed- and
// open-loop HTTP driver that fires the schedule at a live ovserve, and the
// aggregation that turns the run into a machine-readable report
// (latency percentiles through the shared internal/hist buckets,
// throughput, shed/error accounting, cache hit ratio, sims/sec scraped
// from /metrics).
//
// The synthesizer follows the vhive trace-synthesizer shape — an RPS
// staircase (normal), a ramp-up-then-down sweep, and a baseline-with-spikes
// burst mode — and the driver follows the genai-perf shape: a schedule file
// written once can be replayed verbatim against any endpoint, so two runs
// of the same file differ only in what the server did, never in what the
// client sent.
//
// Everything is seeded and wall-clock-free at synthesis time: the same
// Spec always produces byte-identical schedule bytes, which is what lets
// CI diff a warm replay against a cold run and call any delta a server
// regression.
package load

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"oovec/internal/server"
)

// Mode selects the RPS shape of a synthesized schedule.
type Mode string

const (
	// ModeNormal is the vhive staircase: RPS climbs from Begin to Target in
	// Step increments, one slot per level.
	ModeNormal Mode = "normal"
	// ModeSweep ramps from Begin up to Target and back down — the full RPS
	// range is visited twice, which exercises both warm-up and cool-down.
	ModeSweep Mode = "sweep"
	// ModeBurst holds a Begin-RPS baseline and fires Target-RPS spikes on
	// every third slot — the overload scenario: spikes above -max-inflight
	// must shed with 429/503 + Retry-After, never hang or lose requests.
	ModeBurst Mode = "burst"
)

// Op is the request kind mix of a schedule.
const (
	OpSim   = "sim"   // POST /v1/sim
	OpSweep = "sweep" // POST /v1/sweep (streamed NDJSON)
	OpJob   = "job"   // POST /v1/jobs (async; the driver polls to terminal state)
)

// Spec parameterises schedule synthesis. The zero values of optional
// fields are resolved by WithDefaults; Synthesize validates the rest.
type Spec struct {
	Mode Mode  `json:"mode"`
	Seed int64 `json:"seed"`

	// The RPS staircase: Begin climbs to Target in Step increments, each
	// level held for one slot of SlotMs milliseconds.
	Begin  int `json:"begin_rps"`
	Target int `json:"target_rps"`
	Step   int `json:"step_rps"`
	SlotMs int `json:"slot_ms"`

	// The request population: benchmark presets and the config grid
	// requests draw from, and the per-request instruction budget.
	Bench []string `json:"bench"`
	Regs  []int    `json:"regs"`
	Lats  []int64  `json:"lats"`
	Insns int      `json:"insns"`

	// The op mix in percent: SweepPct of requests are streamed sweeps,
	// JobPct are async jobs, the rest single sims. RefPct of the sims run
	// the reference machine instead of the OOOVA.
	SweepPct int `json:"sweep_pct"`
	JobPct   int `json:"job_pct"`
	RefPct   int `json:"ref_pct"`
}

// WithDefaults returns the spec with unset optional fields resolved to the
// ovload flag defaults.
func (s Spec) WithDefaults() Spec {
	if s.Mode == "" {
		s.Mode = ModeNormal
	}
	if s.Begin == 0 {
		s.Begin = 2
	}
	if s.Target == 0 {
		s.Target = 10
	}
	if s.Step == 0 {
		s.Step = 2
	}
	if s.SlotMs == 0 {
		s.SlotMs = 500
	}
	if len(s.Bench) == 0 {
		s.Bench = []string{"swm256"}
	}
	if len(s.Regs) == 0 {
		s.Regs = []int{12, 16, 32}
	}
	if len(s.Lats) == 0 {
		s.Lats = []int64{1, 50}
	}
	if s.Insns == 0 {
		s.Insns = 2000
	}
	return s
}

// validate rejects a spec Synthesize cannot honour.
func (s Spec) validate() error {
	switch s.Mode {
	case ModeNormal, ModeSweep, ModeBurst:
	default:
		return fmt.Errorf("unknown mode %q (normal | sweep | burst)", s.Mode)
	}
	if s.Begin < 1 || s.Target < s.Begin || s.Step < 1 || s.SlotMs < 1 {
		return fmt.Errorf("need 1 <= begin(%d) <= target(%d), step(%d) >= 1, slot_ms(%d) >= 1",
			s.Begin, s.Target, s.Step, s.SlotMs)
	}
	if len(s.Bench) == 0 || len(s.Regs) == 0 || len(s.Lats) == 0 {
		return errors.New("bench, regs and lats must be non-empty")
	}
	if s.Insns < 1 {
		return errors.New("insns must be positive")
	}
	if s.SweepPct < 0 || s.JobPct < 0 || s.SweepPct+s.JobPct > 100 {
		return fmt.Errorf("sweep_pct(%d) + job_pct(%d) must fit in [0, 100]", s.SweepPct, s.JobPct)
	}
	if s.RefPct < 0 || s.RefPct > 100 {
		return fmt.Errorf("ref_pct(%d) must fit in [0, 100]", s.RefPct)
	}
	return nil
}

// levels returns the per-slot RPS sequence of the spec's mode.
func (s Spec) levels() []int {
	var stairs []int
	for r := s.Begin; r < s.Target; r += s.Step {
		stairs = append(stairs, r)
	}
	stairs = append(stairs, s.Target)
	switch s.Mode {
	case ModeSweep:
		// Up, then back down without repeating the peak.
		lv := append([]int(nil), stairs...)
		for i := len(stairs) - 2; i >= 0; i-- {
			lv = append(lv, stairs[i])
		}
		return lv
	case ModeBurst:
		// Baseline with a Target spike every third slot; at least one full
		// baseline-baseline-spike period.
		n := len(stairs)
		if n < 3 {
			n = 3
		}
		lv := make([]int, n)
		for i := range lv {
			if i%3 == 2 {
				lv[i] = s.Target
			} else {
				lv[i] = s.Begin
			}
		}
		return lv
	default:
		return stairs
	}
}

// Request is one schedule entry: when to fire (open loop), what to fire,
// and the verbatim request body.
type Request struct {
	// Seq is the request's position in the schedule (0-based).
	Seq int `json:"seq"`
	// AtUs is the open-loop fire time as microseconds from run start.
	// Closed-loop drivers ignore it and preserve only the order.
	AtUs int64 `json:"at_us"`
	// Op is the request kind: "sim", "sweep" or "job".
	Op string `json:"op"`
	// Body is the HTTP request body, byte-for-byte what the driver sends.
	Body json.RawMessage `json:"body"`
}

// Schedule is a synthesized or loaded request schedule.
type Schedule struct {
	Spec Spec
	Reqs []Request
}

// Duration returns the nominal open-loop duration: the last fire offset.
func (sc *Schedule) Duration() time.Duration {
	if len(sc.Reqs) == 0 {
		return 0
	}
	return time.Duration(sc.Reqs[len(sc.Reqs)-1].AtUs) * time.Microsecond
}

// Synthesize builds the deterministic schedule for a spec: same spec
// (including seed) in, byte-identical Encode out. The request mix, preset
// choice and config-grid choice are drawn from a seeded math/rand stream;
// fire times are computed, never sampled, so the RPS shape is exact.
func Synthesize(spec Spec) (*Schedule, error) {
	spec = spec.WithDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sc := &Schedule{Spec: spec}
	slot := time.Duration(spec.SlotMs) * time.Millisecond
	seq := 0
	for i, rps := range spec.levels() {
		slotStart := time.Duration(i) * slot
		// Requests this slot: RPS scaled by the slot's fraction of a second,
		// at least one so a sub-second slot still fires.
		n := rps * spec.SlotMs / 1000
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			at := slotStart + time.Duration(j)*slot/time.Duration(n)
			req, err := spec.synthRequest(rng, seq, at)
			if err != nil {
				return nil, err
			}
			sc.Reqs = append(sc.Reqs, req)
			seq++
		}
	}
	return sc, nil
}

// synthRequest draws one request from the spec's population. The draw
// order is fixed (op, bench, machine, config) so a given seed always
// yields the same stream regardless of which branches marshal what.
func (s Spec) synthRequest(rng *rand.Rand, seq int, at time.Duration) (Request, error) {
	op := OpSim
	switch p := rng.Intn(100); {
	case p < s.JobPct:
		op = OpJob
	case p < s.JobPct+s.SweepPct:
		op = OpSweep
	}
	bench := s.Bench[rng.Intn(len(s.Bench))]

	var body any
	switch op {
	case OpSweep:
		body = &server.SweepRequest{
			Bench: []string{bench},
			Regs:  s.Regs,
			Lats:  s.Lats,
			Insns: s.Insns,
		}
	default:
		sim := server.SimRequest{Bench: bench, Insns: s.Insns}
		if rng.Intn(100) < s.RefPct {
			sim.Machine = "ref"
			sim.Config.Latency = s.Lats[rng.Intn(len(s.Lats))]
		} else {
			sim.Config.VRegs = s.Regs[rng.Intn(len(s.Regs))]
			sim.Config.Latency = s.Lats[rng.Intn(len(s.Lats))]
		}
		if op == OpJob {
			body = &server.JobRequest{Sim: sim}
		} else {
			body = &sim
		}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return Request{}, err
	}
	return Request{Seq: seq, AtUs: at.Microseconds(), Op: op, Body: b}, nil
}

// scheduleHeader is the first line of the schedule file format: a format
// version and the spec that generated the requests (informational on
// replay; the request lines are authoritative).
type scheduleHeader struct {
	OvloadSchedule int  `json:"ovload_schedule"`
	Spec           Spec `json:"spec"`
}

// scheduleVersion is the schedule file format epoch.
const scheduleVersion = 1

// Encode renders the schedule as NDJSON: a header line with the format
// version and spec, then one line per request. The rendering is
// deterministic — struct field order is fixed and no timestamps or
// absolute times appear — so equal schedules encode to equal bytes.
func (sc *Schedule) Encode() ([]byte, error) {
	var buf bytes.Buffer
	head, err := json.Marshal(scheduleHeader{OvloadSchedule: scheduleVersion, Spec: sc.Spec})
	if err != nil {
		return nil, err
	}
	buf.Write(head)
	buf.WriteByte('\n')
	for i := range sc.Reqs {
		line, err := json.Marshal(&sc.Reqs[i])
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// Decode parses schedule bytes produced by Encode.
func Decode(b []byte) (*Schedule, error) {
	scan := bufio.NewScanner(bytes.NewReader(b))
	scan.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !scan.Scan() {
		return nil, errors.New("empty schedule file")
	}
	var head scheduleHeader
	if err := json.Unmarshal(scan.Bytes(), &head); err != nil {
		return nil, fmt.Errorf("schedule header: %w", err)
	}
	if head.OvloadSchedule != scheduleVersion {
		return nil, fmt.Errorf("schedule format %d, want %d", head.OvloadSchedule, scheduleVersion)
	}
	sc := &Schedule{Spec: head.Spec}
	for scan.Scan() {
		if len(bytes.TrimSpace(scan.Bytes())) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(scan.Bytes(), &req); err != nil {
			return nil, fmt.Errorf("schedule line %d: %w", len(sc.Reqs)+2, err)
		}
		switch req.Op {
		case OpSim, OpSweep, OpJob:
		default:
			return nil, fmt.Errorf("schedule line %d: unknown op %q", len(sc.Reqs)+2, req.Op)
		}
		sc.Reqs = append(sc.Reqs, req)
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	if len(sc.Reqs) == 0 {
		return nil, errors.New("schedule has no requests")
	}
	return sc, nil
}

// ReadFile loads a schedule file written by WriteFile (or any Encode
// output).
func ReadFile(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// WriteFile writes the schedule in the Encode format.
func (sc *Schedule) WriteFile(path string) error {
	b, err := sc.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
