package load

import (
	"strings"
	"testing"
)

const prevSnapshot = `{
  "insns": 8000,
  "benchmarks": [
    {"name": "BenchmarkSuiteSerial", "ns_per_op": 100000},
    {"name": "BenchmarkSuiteParallel", "ns_per_op": 60000},
    {"name": "BenchmarkRetired", "ns_per_op": 500}
  ],
  "load": {
    "cold": {"latency_ms": {"p50_ms": 4, "p95_ms": 8, "p99_ms": 10, "mean_ms": 5, "max_ms": 12}},
    "warm": {"latency_ms": {"p50_ms": 1, "p95_ms": 2, "p99_ms": 3, "mean_ms": 1, "max_ms": 4}}
  }
}`

// mutate rewrites one numeric literal of the previous snapshot.
func mutate(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(prevSnapshot, old) {
		t.Fatalf("fixture does not contain %q", old)
	}
	return strings.Replace(prevSnapshot, old, new, 1)
}

func TestCompareCleanWithinTolerance(t *testing.T) {
	// 15% slower on one benchmark: inside the 20% gate.
	cur := mutate(t, `"ns_per_op": 100000`, `"ns_per_op": 115000`)
	regs, compared, err := Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("flagged within-tolerance drift: %v", regs)
	}
	// Two benchmarks over the floor + one under it + two p99s.
	if compared != 5 {
		t.Fatalf("compared %d tracked metrics, want 5", compared)
	}
}

func TestCompareFlagsBenchmarkRegression(t *testing.T) {
	cur := mutate(t, `"ns_per_op": 100000`, `"ns_per_op": 140000`)
	regs, _, err := Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Field != "benchmarks.BenchmarkSuiteSerial.ns_per_op" || r.Ratio < 1.39 || r.Ratio > 1.41 {
		t.Fatalf("unexpected regression record: %+v", r)
	}
	if !strings.Contains(r.String(), "40% regression") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestCompareFlagsLoadP99Regression(t *testing.T) {
	cur := mutate(t, `"p99_ms": 10`, `"p99_ms": 25`)
	regs, _, err := Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Field != "load.cold.latency_ms.p99_ms" {
		t.Fatalf("got %v, want one cold-p99 regression", regs)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	cur := mutate(t, `"ns_per_op": 100000`, `"ns_per_op": 50000`)
	regs, _, err := Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("flagged an improvement: %v", regs)
	}
}

// TestCompareNoiseFloor: a huge relative delta on a value below the floor
// on both sides is timer noise, not a regression.
func TestCompareNoiseFloor(t *testing.T) {
	cur := mutate(t, `"ns_per_op": 500`, `"ns_per_op": 900`)
	regs, _, err := Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("flagged sub-floor noise: %v", regs)
	}

	// But a value that crosses the floor is compared for real.
	cur = mutate(t, `"ns_per_op": 500`, `"ns_per_op": 5000`)
	regs, _, err = Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Field != "benchmarks.BenchmarkRetired.ns_per_op" {
		t.Fatalf("floor crossing not flagged: %v", regs)
	}
}

// TestCompareSchemaDrift: benchmarks or sections present on only one side
// are skipped, never errors — the gate must survive schema growth.
func TestCompareSchemaDrift(t *testing.T) {
	cur := `{
	  "benchmarks": [{"name": "BenchmarkBrandNew", "ns_per_op": 999999}],
	  "parallel": {"cores": 4}
	}`
	regs, compared, err := Compare([]byte(prevSnapshot), []byte(cur), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 || compared != 0 {
		t.Fatalf("schema drift compared %d, flagged %v", compared, regs)
	}
}

func TestCompareRejectsGarbage(t *testing.T) {
	if _, _, err := Compare([]byte("not json"), []byte(prevSnapshot), 0.20); err == nil {
		t.Error("accepted a garbage previous snapshot")
	}
	if _, _, err := Compare([]byte(prevSnapshot), []byte("not json"), 0.20); err == nil {
		t.Error("accepted a garbage current snapshot")
	}
}
