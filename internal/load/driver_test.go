package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oovec/internal/server"
)

// startServer boots a real ovserve handler stack behind httptest.
func startServer(t *testing.T, opts server.Opts) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.JobsClose()
	})
	return s, ts
}

// driveSpec synthesizes and drives one schedule, failing the test on a
// harness-level error.
func driveSpec(t *testing.T, ts *httptest.Server, spec Spec, opts DriveOpts) *Report {
	t.Helper()
	sc, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	return drive(t, ts, sc, opts)
}

func drive(t *testing.T, ts *httptest.Server, sc *Schedule, opts DriveOpts) *Report {
	t.Helper()
	opts.BaseURL = ts.URL
	opts.Client = ts.Client()
	opts.Timeout = 30 * time.Second
	opts.JobWait = 30 * time.Second
	rep, err := Drive(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkAccounting asserts the terminal-record invariant: every scheduled
// request ends in exactly one of OK, Shed or Errors.
func checkAccounting(t *testing.T, rep *Report) {
	t.Helper()
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("terminal accounting broken: %d ok + %d shed + %d errors != %d requests",
			rep.OK, rep.Shed, rep.Errors, rep.Requests)
	}
	sum := 0
	for _, n := range rep.ByStatus {
		sum += n
	}
	if sum != rep.Requests {
		t.Fatalf("by_status sums to %d, want %d", sum, rep.Requests)
	}
}

// TestDriveColdThenWarm is the replay contract end to end: a cold run
// against a fresh server simulates, a warm replay of the same schedule is
// served entirely from cache — zero new sims, hit ratio 1, identical
// deterministic aggregates, byte-identical sweep streams.
func TestDriveColdThenWarm(t *testing.T) {
	_, ts := startServer(t, server.Opts{Workers: 2, JobWorkers: 2})

	spec := testSpec()
	spec.Insns = 400
	sc, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := DriveOpts{Loop: LoopClosed, Conns: 4}

	cold := drive(t, ts, sc, opts)
	checkAccounting(t, cold)
	if cold.Errors != 0 || cold.Shed != 0 {
		t.Fatalf("cold run: %d errors, %d shed (by_status %v)", cold.Errors, cold.Shed, cold.ByStatus)
	}
	if cold.Server == nil || cold.Server.Sims == 0 {
		t.Fatalf("cold run scraped no simulations: %+v", cold.Server)
	}
	if cold.Sweep.Requests > 0 && cold.Sweep.Rows == 0 {
		t.Fatal("sweep requests completed but no rows were streamed")
	}
	if cold.Jobs.Submitted != cold.Jobs.Done {
		t.Fatalf("cold run: %d jobs submitted, %d done (%+v)", cold.Jobs.Submitted, cold.Jobs.Done, cold.Jobs)
	}

	warm := drive(t, ts, sc, opts)
	checkAccounting(t, warm)
	if warm.Errors != 0 || warm.Shed != 0 {
		t.Fatalf("warm run: %d errors, %d shed", warm.Errors, warm.Shed)
	}
	if warm.Server == nil || warm.Server.Sims != 0 {
		t.Fatalf("warm replay caused %+v new sims, want 0", warm.Server)
	}
	if warm.Sim.ColdMisses != 0 {
		t.Fatalf("warm replay saw %d cold misses, want 0", warm.Sim.ColdMisses)
	}
	if warm.Sim.Requests > 0 && warm.Sim.HitRatio != 1 {
		t.Fatalf("warm hit ratio %v, want 1", warm.Sim.HitRatio)
	}
	if warm.Sweep.DigestMismatches != 0 {
		t.Fatalf("%d sweep streams differed from the cold run within the warm run", warm.Sweep.DigestMismatches)
	}

	// The deterministic aggregates — request mix and row counts — must be
	// identical between the two runs of the same schedule.
	if warm.Requests != cold.Requests || warm.OK != cold.OK ||
		warm.Sim.Requests != cold.Sim.Requests ||
		warm.Sweep.Requests != cold.Sweep.Requests ||
		warm.Sweep.Rows != cold.Sweep.Rows ||
		warm.Jobs.Submitted != cold.Jobs.Submitted {
		t.Fatalf("aggregate drift between identical replays:\ncold %+v %+v %+v\nwarm %+v %+v %+v",
			cold.Sim, cold.Sweep, cold.Jobs, warm.Sim, warm.Sweep, warm.Jobs)
	}
}

// TestDriveOpenLoop exercises the schedule-driven arrival process: the run
// must take at least the nominal schedule duration and keep the terminal
// accounting intact.
func TestDriveOpenLoop(t *testing.T) {
	_, ts := startServer(t, server.Opts{Workers: 2})

	spec := Spec{Mode: ModeNormal, Seed: 3, Begin: 5, Target: 10, Step: 5,
		SlotMs: 200, Bench: []string{"swm256"}, Regs: []int{16}, Lats: []int64{1},
		Insns: 200}
	sc, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep := drive(t, ts, sc, DriveOpts{Loop: LoopOpen})
	checkAccounting(t, rep)
	if rep.Errors != 0 {
		t.Fatalf("open-loop run had %d errors (by_status %v)", rep.Errors, rep.ByStatus)
	}
	if wall := time.Since(start); wall < sc.Duration() {
		t.Fatalf("open loop finished in %v, before the last scheduled offset %v", wall, sc.Duration())
	}
}

// TestDriveOverloadSheds drives a sim-only burst far above -max-inflight:
// the excess must shed as 429 with Retry-After, no request may go
// unaccounted, and the server-side sims counter must match exactly the
// client-observed cold misses — shed requests never reach the simulator.
// The schedule is built by hand so every body is unique (no cache hits, no
// dedup coalescing) and heavy enough that the single in-flight slot stays
// occupied while the other closed-loop workers collide with it.
func TestDriveOverloadSheds(t *testing.T) {
	_, ts := startServer(t, server.Opts{Workers: 1, MaxInflight: 1})

	sc := &Schedule{Spec: Spec{Mode: ModeBurst, Seed: 9}.WithDefaults()}
	for i := 0; i < 12; i++ {
		body, err := json.Marshal(&server.SimRequest{
			Bench: "swm256", Insns: 25000 + 137*i,
		})
		if err != nil {
			t.Fatal(err)
		}
		sc.Reqs = append(sc.Reqs, Request{Seq: i, Op: OpSim, Body: body})
	}
	rep := drive(t, ts, sc, DriveOpts{Loop: LoopClosed, Conns: 8})
	checkAccounting(t, rep)
	if rep.Shed == 0 {
		t.Fatalf("burst at concurrency 8 over max-inflight 1 shed nothing: %+v", rep.ByStatus)
	}
	if rep.ByStatus["429"] == 0 {
		t.Fatalf("expected 429s in %v", rep.ByStatus)
	}
	if rep.ShedMissingRetryAfter != 0 {
		t.Fatalf("%d shed responses arrived without Retry-After", rep.ShedMissingRetryAfter)
	}
	if rep.Errors != 0 {
		t.Fatalf("overload produced %d non-shed errors (by_status %v)", rep.Errors, rep.ByStatus)
	}
	if rep.Server == nil {
		t.Fatal("report has no server section")
	}
	if rep.Server.Sims != int64(rep.Sim.ColdMisses) {
		t.Fatalf("server ran %d sims but the client observed %d cold misses",
			rep.Server.Sims, rep.Sim.ColdMisses)
	}
}

// TestDriveJobQueueSheds overloads the bounded async queue: submissions
// beyond -job-queue must 503 with Retry-After, and every accepted job must
// still reach a terminal state.
func TestDriveJobQueueSheds(t *testing.T) {
	_, ts := startServer(t, server.Opts{Workers: 1, JobWorkers: 1, JobQueue: 1})

	// Unique, heavy jobs: the single worker stays busy long enough for the
	// bounded queue to fill under 8 concurrent submitters.
	sc := &Schedule{Spec: Spec{Mode: ModeBurst, Seed: 11}.WithDefaults()}
	for i := 0; i < 12; i++ {
		body, err := json.Marshal(&server.JobRequest{
			Sim: server.SimRequest{Bench: "swm256", Insns: 25000 + 211*i},
		})
		if err != nil {
			t.Fatal(err)
		}
		sc.Reqs = append(sc.Reqs, Request{Seq: i, Op: OpJob, Body: body})
	}
	rep := drive(t, ts, sc, DriveOpts{Loop: LoopClosed, Conns: 8})
	checkAccounting(t, rep)
	if rep.ByStatus["503"] == 0 {
		t.Fatalf("job burst over queue depth 1 shed nothing: %v", rep.ByStatus)
	}
	if rep.ShedMissingRetryAfter != 0 {
		t.Fatalf("%d shed responses arrived without Retry-After", rep.ShedMissingRetryAfter)
	}
	if rep.Jobs.Submitted != rep.OK {
		t.Fatalf("%d jobs submitted but %d submissions got 202", rep.Jobs.Submitted, rep.OK)
	}
	if got := rep.Jobs.Done + rep.Jobs.Failed + rep.Jobs.Canceled + rep.Jobs.TimedOut; got != rep.Jobs.Submitted {
		t.Fatalf("%d of %d accepted jobs reached a terminal state: %+v", got, rep.Jobs.Submitted, rep.Jobs)
	}
}

// TestDriveAuth checks that the token reaches both the API requests and
// the /metrics scrapes.
func TestDriveAuth(t *testing.T) {
	_, ts := startServer(t, server.Opts{Workers: 1, AuthToken: "sesame"})

	spec := Spec{Mode: ModeNormal, Seed: 5, Begin: 1, Target: 1, Step: 1,
		SlotMs: 100, Bench: []string{"swm256"}, Regs: []int{16}, Lats: []int64{1}, Insns: 200}

	// Without the token every request 401s — an error, not a shed.
	rep := driveSpec(t, ts, spec, DriveOpts{Loop: LoopClosed, Conns: 1, SkipScrape: true})
	checkAccounting(t, rep)
	if rep.Errors != rep.Requests || rep.ByStatus["401"] != rep.Requests {
		t.Fatalf("tokenless run against an authed server: %+v", rep.ByStatus)
	}

	rep = driveSpec(t, ts, spec, DriveOpts{Loop: LoopClosed, Conns: 1, Token: "sesame"})
	checkAccounting(t, rep)
	if rep.OK != rep.Requests {
		t.Fatalf("authed run failed: %+v", rep.ByStatus)
	}
	if rep.Server == nil {
		t.Fatal("authed scrape did not populate the server section")
	}
}

// TestDriveRejects covers harness-level input errors.
func TestDriveRejects(t *testing.T) {
	sc, err := Synthesize(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(context.Background(), sc, DriveOpts{}); err == nil {
		t.Error("Drive accepted an empty BaseURL")
	}
	if _, err := Drive(context.Background(), sc,
		DriveOpts{BaseURL: "http://127.0.0.1:1", Loop: "zigzag", SkipScrape: true}); err == nil {
		t.Error("Drive accepted an unknown loop discipline")
	}
	if _, err := Drive(context.Background(), &Schedule{},
		DriveOpts{BaseURL: "http://127.0.0.1:1", SkipScrape: true}); err == nil {
		t.Error("Drive accepted an empty schedule")
	}
}

// TestBaseURLOf pins the URL normalisation.
func TestBaseURLOf(t *testing.T) {
	if got := BaseURLOf("http://x:1/"); got != "http://x:1" {
		t.Errorf("BaseURLOf trailing slash: %q", got)
	}
	if got := BaseURLOf("http://x:1"); got != "http://x:1" {
		t.Errorf("BaseURLOf idempotence: %q", got)
	}
}

// TestDriveSlowestTraces is the client half of the tracing bridge: against
// a server that samples every request, the report's slowest section must be
// filled, ordered worst-first, capped at slowestK, and each entry's trace
// id (echoed by the server from the traceparent the driver injects) must be
// fetchable from /v1/traces/{id} as a timeline whose root covers the
// server-side portion of the measured client latency.
func TestDriveSlowestTraces(t *testing.T) {
	_, ts := startServer(t, server.Opts{Workers: 2, JobWorkers: 2, TraceSample: 1})

	spec := testSpec()
	spec.Insns = 400
	rep := driveSpec(t, ts, spec, DriveOpts{Loop: LoopClosed, Conns: 4})
	checkAccounting(t, rep)

	if len(rep.Slowest) == 0 {
		t.Fatal("report has no slowest section after a traced run")
	}
	if len(rep.Slowest) > slowestK {
		t.Fatalf("slowest holds %d entries, cap is %d", len(rep.Slowest), slowestK)
	}
	for i, s := range rep.Slowest {
		if i > 0 && s.LatencyMs > rep.Slowest[i-1].LatencyMs {
			t.Fatalf("slowest not ordered worst-first at %d: %+v", i, rep.Slowest)
		}
		if s.Op == "" || s.LatencyMs <= 0 {
			t.Errorf("slowest[%d] = %+v, want op and positive latency", i, s)
		}
		if len(s.TraceID) != 32 {
			t.Errorf("slowest[%d] trace id %q, want the 32-hex id the server echoed", i, s.TraceID)
		}
	}

	// The worst request's timeline is fetchable and plausible: its root is
	// a registered route and its duration fits inside the client latency.
	worst := rep.Slowest[0]
	resp, err := ts.Client().Get(ts.URL + "/v1/traces/" + worst.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/traces/%s status %d", worst.TraceID, resp.StatusCode)
	}
	var tr struct {
		Name       string  `json:"name"`
		DurationMs float64 `json:"duration_ms"`
		Spans      []any   `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tr.Name, "/v1/") {
		t.Errorf("slowest trace root %q, want a /v1/ route", tr.Name)
	}
	if tr.DurationMs <= 0 || tr.DurationMs > worst.LatencyMs {
		t.Errorf("slowest trace spans %.3fms, client measured %.3fms — the timeline must fit inside the request",
			tr.DurationMs, worst.LatencyMs)
	}
	// Sim and sweep requests resolve through the cache, so their timelines
	// must descend below the root. (A job submit only enqueues — its work
	// is recorded as a separate "job" trace — so a bare root is correct.)
	if tr.Name == "/v1/sim" || tr.Name == "/v1/sweep" {
		if len(tr.Spans) < 2 {
			t.Errorf("slowest trace has %d spans, want the root plus at least one child", len(tr.Spans))
		}
	}
}
