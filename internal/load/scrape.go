package load

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// serverCounters is the slice of the /metrics exposition the report needs:
// the simulation counter and the result-cache hit/miss counters.
type serverCounters struct {
	sims   int64
	hits   int64
	misses int64
}

// scrapeMetrics reads the target's /metrics and extracts the counters the
// report differences. A server that cannot be scraped (down, wrong token)
// is an error: the caller asked for server-side numbers.
func scrapeMetrics(ctx context.Context, opts DriveOpts) (serverCounters, error) {
	rctx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, opts.BaseURL+"/metrics", nil)
	if err != nil {
		return serverCounters{}, err
	}
	if opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+opts.Token)
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return serverCounters{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serverCounters{}, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var c serverCounters
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for scan.Scan() {
		name, rest, ok := strings.Cut(scan.Text(), " ")
		if !ok {
			continue
		}
		var dst *int64
		switch name {
		case "ovserve_sims_total":
			dst = &c.sims
		case "ovserve_result_cache_hits_total":
			dst = &c.hits
		case "ovserve_result_cache_misses_total":
			dst = &c.misses
		default:
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return serverCounters{}, fmt.Errorf("parsing %s: %w", name, err)
		}
		*dst = v
	}
	return c, scan.Err()
}

// counterDelta differences two scrapes over the run's wall clock.
func counterDelta(before, after serverCounters, wall time.Duration) *ServerDelta {
	d := &ServerDelta{
		Sims:        after.sims - before.sims,
		CacheHits:   after.hits - before.hits,
		CacheMisses: after.misses - before.misses,
	}
	if n := d.CacheHits + d.CacheMisses; n > 0 {
		d.HitRatio = float64(int64(float64(d.CacheHits)/float64(n)*1e6+0.5)) / 1e6
	}
	if wall > 0 {
		d.SimsPerSec = float64(d.Sims) / wall.Seconds()
	}
	return d
}
