package load

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oovec/internal/hist"
	"oovec/internal/span"
)

// traceIDHeader is the server's X-Trace-Id response header (the
// server.TraceIDHeader constant, spelled out here to keep the client
// package free of a server dependency).
const traceIDHeader = "X-Trace-Id"

// slowestK bounds the report's slowest-request section.
const slowestK = 10

// Loop selects the driver's scheduling discipline.
const (
	// LoopOpen fires each request at its schedule offset regardless of
	// whether earlier requests have completed — the arrival process is
	// fixed, so server slowdowns surface as latency and shed counts, not as
	// a quietly reduced request rate.
	LoopOpen = "open"
	// LoopClosed runs Conns workers that each fire the next request the
	// moment the previous one completes — the classic saturation probe:
	// throughput is the service rate at concurrency Conns.
	LoopClosed = "closed"
)

// DriveOpts configures a run.
type DriveOpts struct {
	// BaseURL is the ovserve root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// Token, when non-empty, is sent as the bearer token on every request
	// (including the /metrics scrapes).
	Token string
	// Loop is LoopOpen (default) or LoopClosed.
	Loop string
	// Conns is the closed-loop worker count (default 8). Open-loop runs
	// ignore it: arrivals are schedule-driven.
	Conns int
	// Timeout bounds each HTTP request (default 60s).
	Timeout time.Duration
	// JobWait bounds how long the driver polls a submitted job toward a
	// terminal state before counting it timed out (default 60s).
	JobWait time.Duration
	// Client overrides the HTTP client (tests inject an httptest client).
	Client *http.Client
	// SkipScrape disables the before/after /metrics scrape (the Server
	// section of the report is then absent).
	SkipScrape bool
}

func (o DriveOpts) withDefaults() DriveOpts {
	if o.Loop == "" {
		o.Loop = LoopOpen
	}
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.JobWait <= 0 {
		o.JobWait = 60 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// driver is the per-run state shared by the loop workers.
type driver struct {
	opts  DriveOpts
	sched *Schedule

	lat    hist.Hist
	maxLat atomic.Int64 // nanoseconds; the histogram clamps, this does not

	mu       sync.Mutex
	byStatus map[int]int
	okN      int
	shedN    int
	errN     int
	shedBare int // shed responses missing Retry-After
	sim      SimStats
	sweep    SweepStats
	jobs     JobStats
	// sweepDigests maps a sweep request body to the SHA-256 of its first
	// observed response stream; repeats must match byte-for-byte — the
	// deterministic-row-order guarantee observed from the client side.
	sweepDigests map[string]string
	// slowest holds the top-slowestK requests by latency, slowest first,
	// each with the trace id the server recorded for it — the report's
	// direct bridge from "p99 is bad" to a /v1/traces/{id} timeline.
	slowest []SlowRequest

	jobWG sync.WaitGroup // outstanding background job polls
}

// Drive fires the schedule at the target and aggregates the outcome.
// Every scheduled request ends in exactly one terminal record — OK, shed
// (429/503) or error — so Requests == OK + Shed + Errors always holds;
// ctx cancellation stops launching new requests but still waits for the
// in-flight tail so the accounting stays complete.
func Drive(ctx context.Context, sched *Schedule, opts DriveOpts) (*Report, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, errors.New("BaseURL is required")
	}
	if opts.Loop != LoopOpen && opts.Loop != LoopClosed {
		return nil, fmt.Errorf("unknown loop %q (open | closed)", opts.Loop)
	}
	if len(sched.Reqs) == 0 {
		return nil, errors.New("empty schedule")
	}
	d := &driver{
		opts:         opts,
		sched:        sched,
		byStatus:     make(map[int]int),
		sweepDigests: make(map[string]string),
	}

	var before serverCounters
	scraped := false
	if !opts.SkipScrape {
		var err error
		if before, err = scrapeMetrics(ctx, opts); err != nil {
			return nil, fmt.Errorf("scraping /metrics before the run: %w", err)
		}
		scraped = true
	}

	start := time.Now()
	var wg sync.WaitGroup
	if opts.Loop == LoopClosed {
		next := &atomic.Int64{}
		for w := 0; w < opts.Conns; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(sched.Reqs) {
						return
					}
					d.fire(ctx, &sched.Reqs[i])
				}
			}()
		}
	} else {
		for i := range sched.Reqs {
			req := &sched.Reqs[i]
			// Hold the arrival process: sleep to the request's offset, then
			// fire without waiting for earlier requests.
			wait := time.Duration(req.AtUs)*time.Microsecond - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
				}
			}
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.fire(ctx, req)
			}()
		}
	}
	wg.Wait()
	d.jobWG.Wait() // background job polls finish before the clock stops
	wall := time.Since(start)

	// Requests ctx stopped us from launching still get terminal records.
	d.mu.Lock()
	launched := d.okN + d.shedN + d.errN
	for i := launched; i < len(sched.Reqs); i++ {
		d.errN++
		d.byStatus[0]++
	}
	d.mu.Unlock()

	rep := d.report(wall)
	if scraped {
		after, err := scrapeMetrics(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("scraping /metrics after the run: %w", err)
		}
		rep.Server = counterDelta(before, after, wall)
	}
	return rep, nil
}

// fire executes one scheduled request to a terminal record.
func (d *driver) fire(ctx context.Context, req *Request) {
	path := "/v1/sim"
	switch req.Op {
	case OpSweep:
		path = "/v1/sweep"
	case OpJob:
		path = "/v1/jobs"
	}
	rctx, cancel := context.WithTimeout(ctx, d.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost,
		d.opts.BaseURL+path, bytes.NewReader(req.Body))
	if err != nil {
		d.terminal(0, 0, false)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	if d.opts.Token != "" {
		hreq.Header.Set("Authorization", "Bearer "+d.opts.Token)
	}
	// Inject a sampled W3C traceparent on every request: the sampled flag
	// forces the server to retain the timeline past its head sampling, so
	// every row of the slowest section below is inspectable after the run.
	hreq.Header.Set(span.TraceparentHeader, span.Traceparent(span.NewTraceID(), 1, true))
	start := time.Now()
	resp, err := d.opts.Client.Do(hreq)
	if err != nil {
		lat := time.Since(start)
		d.terminal(0, lat, false)
		d.noteSlow(req.Op, 0, lat, "")
		return
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	lat := time.Since(start) // sweeps stream: latency covers the full body
	tid := resp.Header.Get(traceIDHeader)
	if rerr != nil {
		d.terminal(0, lat, false)
		d.noteSlow(req.Op, 0, lat, tid)
		return
	}
	retryAfter := resp.Header.Get("Retry-After") != ""
	d.terminal(resp.StatusCode, lat, retryAfter)
	d.noteSlow(req.Op, resp.StatusCode, lat, tid)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return
	}

	switch req.Op {
	case OpSim:
		d.recordSim(body)
	case OpSweep:
		d.recordSweep(req.Body, body)
	case OpJob:
		d.recordJobAccepted(ctx, body)
	}
}

// terminal books one finished request. code 0 means a transport-level
// failure (no HTTP status).
func (d *driver) terminal(code int, lat time.Duration, retryAfter bool) {
	if lat > 0 {
		d.lat.Observe(lat)
		for {
			old := d.maxLat.Load()
			if int64(lat) <= old || d.maxLat.CompareAndSwap(old, int64(lat)) {
				break
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byStatus[code]++
	switch {
	case code >= 200 && code < 300:
		d.okN++
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		d.shedN++
		if !retryAfter {
			d.shedBare++
		}
	default:
		d.errN++
	}
}

// noteSlow offers one finished request to the slowest top-K, kept sorted
// slowest first.
func (d *driver) noteSlow(op string, code int, lat time.Duration, traceID string) {
	if lat <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	at := sort.Search(len(d.slowest), func(i int) bool {
		return d.slowest[i].LatencyMs < ms(lat)
	})
	if at >= slowestK {
		return
	}
	d.slowest = append(d.slowest, SlowRequest{})
	copy(d.slowest[at+1:], d.slowest[at:])
	d.slowest[at] = SlowRequest{Op: op, Status: code, LatencyMs: ms(lat), TraceID: traceID}
	if len(d.slowest) > slowestK {
		d.slowest = d.slowest[:slowestK]
	}
}

// recordSim parses a 200 /v1/sim body for the cache-hit flag.
func (d *driver) recordSim(body []byte) {
	var resp struct {
		Cached bool `json:"cached"`
	}
	hit := json.Unmarshal(body, &resp) == nil && resp.Cached
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sim.Requests++
	if hit {
		d.sim.CacheHits++
	} else {
		d.sim.ColdMisses++
	}
}

// recordSweep counts the streamed rows and checks the byte-identity of
// repeated identical sweeps: the digest of the whole NDJSON stream is
// pinned by the first observation of each request body.
func (d *driver) recordSweep(reqBody, respBody []byte) {
	rows := 0
	for _, line := range bytes.Split(respBody, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) > 0 {
			rows++
		}
	}
	sum := sha256.Sum256(respBody)
	digest := hex.EncodeToString(sum[:])
	key := string(reqBody)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sweep.Requests++
	d.sweep.Rows += rows
	if prev, ok := d.sweepDigests[key]; ok {
		if prev != digest {
			d.sweep.DigestMismatches++
		}
	} else {
		d.sweepDigests[key] = digest
	}
}

// recordJobAccepted books a 202 and polls the job to a terminal state in
// the background, so a closed-loop worker slot is not held hostage by a
// long batch run — exactly the asymmetry the async API exists for.
func (d *driver) recordJobAccepted(ctx context.Context, body []byte) {
	var resp struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &resp) != nil || resp.ID == "" {
		d.mu.Lock()
		d.jobs.Failed++
		d.mu.Unlock()
		return
	}
	d.mu.Lock()
	d.jobs.Submitted++
	d.mu.Unlock()
	d.jobWG.Add(1)
	go func() {
		defer d.jobWG.Done()
		d.pollJob(ctx, resp.ID)
	}()
}

// pollJob drives one accepted job to its terminal record.
func (d *driver) pollJob(ctx context.Context, id string) {
	deadline := time.Now().Add(d.opts.JobWait)
	book := func(field *int) {
		d.mu.Lock()
		*field++
		d.mu.Unlock()
	}
	for {
		if ctx.Err() != nil || time.Now().After(deadline) {
			book(&d.jobs.TimedOut)
			return
		}
		rctx, cancel := context.WithTimeout(ctx, d.opts.Timeout)
		hreq, err := http.NewRequestWithContext(rctx, http.MethodGet,
			d.opts.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			cancel()
			book(&d.jobs.Failed)
			return
		}
		if d.opts.Token != "" {
			hreq.Header.Set("Authorization", "Bearer "+d.opts.Token)
		}
		resp, err := d.opts.Client.Do(hreq)
		if err != nil {
			cancel()
			book(&d.jobs.Failed)
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			book(&d.jobs.Failed)
			return
		}
		var st struct {
			State string `json:"state"`
		}
		if json.Unmarshal(body, &st) != nil {
			book(&d.jobs.Failed)
			return
		}
		switch st.State {
		case "done":
			book(&d.jobs.Done)
			return
		case "failed":
			book(&d.jobs.Failed)
			return
		case "canceled":
			book(&d.jobs.Canceled)
			return
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// report assembles the aggregate view under the collector lock.
func (d *driver) report(wall time.Duration) *Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &Report{
		Mode:     string(d.sched.Spec.Mode),
		Seed:     d.sched.Spec.Seed,
		Loop:     d.opts.Loop,
		Requests: len(d.sched.Reqs),
		OK:       d.okN,
		Shed:     d.shedN,
		Errors:   d.errN,

		ShedMissingRetryAfter: d.shedBare,
		ByStatus:              make(map[string]int, len(d.byStatus)),
		WallMs:                float64(wall) / float64(time.Millisecond),
		Latency: LatencySummary{
			P50Ms:  ms(d.lat.Quantile(0.50)),
			P95Ms:  ms(d.lat.Quantile(0.95)),
			P99Ms:  ms(d.lat.Quantile(0.99)),
			MeanMs: ms(d.lat.Mean()),
			MaxMs:  ms(time.Duration(d.maxLat.Load())),
		},
		Sim:     d.sim,
		Sweep:   d.sweep,
		Jobs:    d.jobs,
		Slowest: d.slowest,
	}
	// Map keys become sorted JSON object keys; the transport-failure bucket
	// gets a symbolic name instead of "0". Codes are collected before the
	// formatting loop so no call runs inside a map range (iteration order
	// would not matter here, but the module-wide determinism lint draws a
	// simpler line).
	codes := make([]int, 0, len(d.byStatus))
	for code := range d.byStatus {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		key := "transport_error"
		if code != 0 {
			key = strconv.Itoa(code)
		}
		rep.ByStatus[key] = d.byStatus[code]
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK+rep.Shed+rep.Errors) / wall.Seconds()
	}
	if n := rep.Sim.CacheHits + rep.Sim.ColdMisses; n > 0 {
		rep.Sim.HitRatio = ratio(rep.Sim.CacheHits, n)
	}
	return rep
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ratio rounds to 6 decimal places so report JSON stays byte-comparable
// across identical runs despite float formatting.
func ratio(num, den int) float64 {
	return float64(int64(float64(num)/float64(den)*1e6+0.5)) / 1e6
}

// BaseURLOf normalises a user-supplied URL flag: trailing slashes are
// dropped so path concatenation stays canonical.
func BaseURLOf(u string) string { return strings.TrimRight(u, "/") }
