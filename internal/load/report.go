package load

// The report schema: everything a run measured, JSON-stable so CI can
// diff two runs field by field. Counts and ratios are deterministic for a
// deterministic server (same schedule, same warm state → same numbers);
// latency and throughput fields obviously are not, and the trajectory
// gate (compare.go) treats them with a tolerance instead of equality.

// LatencySummary is the client-observed request latency, estimated from
// the shared internal/hist buckets (identical to the server's /metrics
// histograms) except MaxMs, which is tracked exactly.
type LatencySummary struct {
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SimStats aggregates the /v1/sim slice of the run, from the response
// bodies' own cached flags.
type SimStats struct {
	Requests   int `json:"requests"`
	CacheHits  int `json:"cache_hits"`
	ColdMisses int `json:"cold_misses"`
	// HitRatio is CacheHits over completed sims, rounded to 6 decimals.
	HitRatio float64 `json:"hit_ratio"`
}

// SweepStats aggregates the streamed /v1/sweep slice.
type SweepStats struct {
	Requests int `json:"requests"`
	Rows     int `json:"rows"`
	// DigestMismatches counts repeated identical sweep requests whose
	// NDJSON streams were not byte-identical. Anything but zero is a
	// determinism regression in the server.
	DigestMismatches int `json:"digest_mismatches"`
}

// JobStats aggregates the async /v1/jobs slice. Submitted counts 202s;
// each submission ends in exactly one of Done/Failed/Canceled/TimedOut.
type JobStats struct {
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	TimedOut  int `json:"timed_out"`
}

// SlowRequest is one row of the report's slowest-request section: the
// latency outlier itself plus the trace id the server recorded for it, so
// "why is p99 bad" goes straight to GET /v1/traces/{id} (the driver injects
// a sampled traceparent on every request, which forces server-side
// retention). Status 0 is a transport-level failure.
type SlowRequest struct {
	Op        string  `json:"op"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// ServerDelta is the server's own view of the run: /metrics counters
// scraped before and after, differenced.
type ServerDelta struct {
	// Sims is how many actual simulations the run caused
	// (ovserve_sims_total delta) — zero for a fully warm replay.
	Sims int64 `json:"sims"`
	// CacheHits/CacheMisses are the result-cache counter deltas.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// HitRatio is CacheHits over (CacheHits + CacheMisses), rounded to 6
	// decimals; 0 when the run touched the cache not at all.
	HitRatio float64 `json:"hit_ratio"`
	// SimsPerSec is Sims over the run's wall clock.
	SimsPerSec float64 `json:"sims_per_sec"`
}

// Report is one drive's aggregate outcome — the ovload output and the
// `load` section of the BENCH snapshot.
type Report struct {
	Mode string `json:"mode"`
	Seed int64  `json:"seed"`
	Loop string `json:"loop"`

	// Terminal accounting: Requests == OK + Shed + Errors, always — no
	// scheduled request goes unaccounted.
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	// Shed counts explicit backpressure: 429 (in-flight limit) and 503
	// (drain or full job queue).
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// ByStatus buckets terminal records by HTTP status code
	// ("transport_error" for requests that never got one).
	ByStatus map[string]int `json:"by_status"`
	// ShedMissingRetryAfter counts shed responses that arrived without a
	// Retry-After header — a violation of the backpressure contract.
	ShedMissingRetryAfter int `json:"shed_missing_retry_after"`

	WallMs        float64        `json:"wall_ms"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       LatencySummary `json:"latency_ms"`

	Sim   SimStats   `json:"sim"`
	Sweep SweepStats `json:"sweep"`
	Jobs  JobStats   `json:"jobs"`

	// Slowest lists the top requests by observed latency, slowest first,
	// with their server-side trace ids.
	Slowest []SlowRequest `json:"slowest,omitempty"`

	// Server is the /metrics-scrape view, absent when scraping was skipped.
	Server *ServerDelta `json:"server,omitempty"`
}
