package load

import (
	"bytes"
	"reflect"
	"testing"
)

// testSpec is a small mixed-traffic spec used across the schedule tests.
func testSpec() Spec {
	return Spec{
		Mode: ModeBurst, Seed: 42,
		Begin: 2, Target: 12, Step: 10, SlotMs: 1000,
		Bench: []string{"swm256", "hydro2d"},
		Regs:  []int{12, 16}, Lats: []int64{1, 50},
		Insns: 800, SweepPct: 20, JobPct: 20, RefPct: 25,
	}
}

// TestSynthesizeDeterministic is the replayability contract: the same spec
// (same seed) must encode to byte-identical schedule files, and a
// different seed must not.
func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("same spec produced different schedule bytes")
	}

	spec := testSpec()
	spec.Seed = 43
	c, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical schedule bytes")
	}
}

// TestWriteReadFileRoundTrip pins the on-disk format: WriteFile → ReadFile
// reproduces the schedule exactly, and the file re-encodes to the same
// bytes.
func TestWriteReadFileRoundTrip(t *testing.T) {
	sc, err := Synthesize(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sched.ovls"
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Spec.WithDefaults(), sc.Spec.WithDefaults()) {
		t.Fatalf("spec round-trip mismatch:\n got %+v\nwant %+v", got.Spec, sc.Spec)
	}
	if !reflect.DeepEqual(got.Reqs, sc.Reqs) {
		t.Fatal("request round-trip mismatch")
	}
	a, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-encode of a decoded schedule changed bytes")
	}
}

// TestLevels locks the per-mode RPS shapes.
func TestLevels(t *testing.T) {
	base := Spec{Begin: 2, Target: 8, Step: 2, SlotMs: 1000}

	norm := base
	norm.Mode = ModeNormal
	if got, want := norm.levels(), []int{2, 4, 6, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("normal levels = %v, want %v", got, want)
	}

	swp := base
	swp.Mode = ModeSweep
	if got, want := swp.levels(), []int{2, 4, 6, 8, 6, 4, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("sweep levels = %v, want %v", got, want)
	}

	bst := base
	bst.Mode = ModeBurst
	if got, want := bst.levels(), []int{2, 2, 8, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("burst levels = %v, want %v", got, want)
	}

	// Burst pads to a full baseline-baseline-spike period.
	short := Spec{Mode: ModeBurst, Begin: 2, Target: 10, Step: 100, SlotMs: 1000}
	if got, want := short.levels(), []int{2, 2, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("short burst levels = %v, want %v", got, want)
	}
}

// TestOpMix pins the op-percentage knobs at their extremes.
func TestOpMix(t *testing.T) {
	spec := testSpec()
	spec.SweepPct, spec.JobPct = 0, 0
	sc, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Reqs {
		if r.Op != OpSim {
			t.Fatalf("with zero sweep/job pct, req %d has op %q", r.Seq, r.Op)
		}
	}

	spec = testSpec()
	spec.SweepPct, spec.JobPct = 0, 100
	sc, err = Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Reqs {
		if r.Op != OpJob {
			t.Fatalf("with job_pct 100, req %d has op %q", r.Seq, r.Op)
		}
	}
}

// TestScheduleOffsets checks the computed arrival process: offsets are
// non-decreasing, start at zero, and each slot carries rps*slot requests.
func TestScheduleOffsets(t *testing.T) {
	spec := Spec{Mode: ModeNormal, Seed: 1, Begin: 2, Target: 4, Step: 2,
		SlotMs: 1000, Bench: []string{"swm256"}, Regs: []int{16}, Lats: []int64{1}, Insns: 100}
	sc, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Reqs) != 2+4 {
		t.Fatalf("got %d requests, want 6 (2 rps + 4 rps over 1s slots)", len(sc.Reqs))
	}
	if sc.Reqs[0].AtUs != 0 {
		t.Errorf("first request at %dus, want 0", sc.Reqs[0].AtUs)
	}
	for i := 1; i < len(sc.Reqs); i++ {
		if sc.Reqs[i].AtUs < sc.Reqs[i-1].AtUs {
			t.Fatalf("offsets not monotone at seq %d", i)
		}
		if sc.Reqs[i].Seq != i {
			t.Fatalf("seq %d at position %d", sc.Reqs[i].Seq, i)
		}
	}
}

// TestSynthesizeRejects exercises spec validation.
func TestSynthesizeRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unknown mode", func(s *Spec) { s.Mode = "spiky" }},
		{"target below begin", func(s *Spec) { s.Begin = 10; s.Target = 2 }},
		{"negative insns", func(s *Spec) { s.Insns = -1 }},
		{"op mix over 100", func(s *Spec) { s.SweepPct = 60; s.JobPct = 60 }},
		{"ref pct over 100", func(s *Spec) { s.RefPct = 101 }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mutate(&spec)
		if _, err := Synthesize(spec); err == nil {
			t.Errorf("%s: Synthesize accepted an invalid spec", tc.name)
		}
	}
}

// TestDecodeRejects exercises the schedule-file parser's failure modes.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "not json\n"},
		{"wrong version", `{"ovload_schedule":99,"spec":{}}` + "\n"},
		{"no requests", `{"ovload_schedule":1,"spec":{}}` + "\n"},
		{"unknown op", `{"ovload_schedule":1,"spec":{}}` + "\n" +
			`{"seq":0,"at_us":0,"op":"teleport","body":{}}` + "\n"},
	}
	for _, tc := range cases {
		if _, err := Decode([]byte(tc.in)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", tc.name)
		}
	}
}
