// Package jobs is the transport-independent asynchronous job layer behind
// ovserve's /v1/jobs API: a bounded priority queue feeding a small worker
// pool, with cycle-granular cancellation and checkpoint-aware preemption.
//
// The problem it solves: a million-instruction simulation occupies a worker
// for seconds to minutes. Run synchronously inside an HTTP handler, such a
// request either times out or starves the interactive /v1/sim traffic the
// server exists to answer quickly. The job layer moves long runs out of the
// request path — submit returns immediately with an id, progress is polled,
// cancellation is explicit — and enforces two robustness policies:
//
//   - Load shedding: the queue is bounded. When it is full, Submit fails
//     with ErrQueueFull and the transport layer turns that into a 503 with
//     Retry-After, instead of queueing unbounded work it cannot finish.
//   - Preemption: while interactive traffic is in flight (BeginInteractive/
//     EndInteractive bracket it), workers start no new batch jobs, and the
//     transition into the interactive state preempts running jobs with
//     cause ErrPreempted. A preempted run checkpoints its machine state
//     (see ooosim.RunCheckpointed) and is parked back in the queue; when
//     the interactive burst passes, it resumes from the checkpoint rather
//     than from instruction zero.
//
// The package knows nothing about HTTP or simulators: a job is a RunFunc
// plus bookkeeping. The run function owns interpreting cancellation causes
// — it distinguishes a user cancel (persist the checkpoint for a later
// restart) from preemption (park and resume soon) via context.Cause.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"oovec/internal/span"
)

// Sentinel causes and errors. ErrPreempted and ErrShutdown are delivered as
// cancellation causes (context.Cause) to running jobs; RunFuncs return the
// cause (or the plain context error) after checkpointing.
var (
	// ErrQueueFull is returned by Submit when the queue is at capacity —
	// the load-shedding signal.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrPreempted is the cancellation cause when a running job is being
	// parked to make room for interactive traffic. The manager re-enqueues
	// a job whose run returns with this cause.
	ErrPreempted = errors.New("jobs: preempted by interactive traffic")
	// ErrShutdown is the cancellation cause during manager Close; the job
	// is marked canceled after its run function checkpoints and returns.
	ErrShutdown = errors.New("jobs: manager shutting down")
	// ErrNotFound is returned by Get/Cancel for an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel when the job already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// RunFunc performs a job's work. It must return promptly once ctx is
// canceled, checkpointing first if the work supports it; the error it
// returns selects the terminal state: nil → done, the cancellation
// cause/context error → canceled or re-queued (preemption), anything else
// → failed. It may be invoked multiple times for one job (once per
// preemption), so it must be restartable — which is exactly what the
// checkpoint/resume contract provides.
type RunFunc func(ctx context.Context, j *Job) error

// Job is one unit of asynchronous work plus its bookkeeping. The run
// function updates progress via SetProgress/SetResumedFrom; everything else
// is managed by the Manager.
type Job struct {
	id       string
	priority int
	seq      int64
	run      RunFunc

	done        atomic.Int64
	total       atomic.Int64
	resumedFrom atomic.Int64
	preemptions atomic.Int64

	// Guarded by the manager's mutex.
	state    State
	errMsg   string
	cancel   context.CancelCauseFunc // non-nil while running
	canceled bool                    // user cancel requested (sticky across parking)
	created  time.Time
	started  time.Time // first time it left the queue
	finished time.Time
	// span is the job's root trace span, open from submission to the
	// terminal state — one trace per job, spanning every run leg and park.
	// enqueued timestamps the latest (re-)enqueue so each dequeue can record
	// a back-dated queue.wait child.
	span     *span.Span
	traceID  string
	enqueued time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// SetProgress records how much of the job's work is done, in
// work-dependent units (instructions, sweep points). Safe to call from the
// run function at any granularity.
func (j *Job) SetProgress(done int64) { j.done.Store(done) }

// SetTotal records the job's total work once known.
func (j *Job) SetTotal(total int64) { j.total.Store(total) }

// SetResumedFrom records the progress position this run resumed from (zero
// = started fresh). The kill-and-resume tests assert on this: a resumed
// run's value must be strictly positive and strictly below the total.
func (j *Job) SetResumedFrom(pos int64) { j.resumedFrom.Store(pos) }

// ResumedFrom returns the most recent resume position.
func (j *Job) ResumedFrom() int64 { return j.resumedFrom.Load() }

// Snapshot is a point-in-time, transport-friendly view of a job.
type Snapshot struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Priority int    `json:"priority"`
	// Done/Total are run-func progress in its own units; Total may be zero
	// until the run function first reports it.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// ResumedFrom is where the latest run segment picked up (0 = fresh).
	ResumedFrom int64 `json:"resumed_from"`
	// Preemptions counts checkpoint-and-park cycles this job survived.
	Preemptions int64 `json:"preemptions"`
	// TraceID names the job's span timeline on /v1/traces/{id} when the job
	// was sampled ("" otherwise). The trace publishes when the job reaches a
	// terminal state.
	TraceID    string    `json:"trace_id,omitempty"`
	Error      string    `json:"error,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

// Metrics is a point-in-time snapshot of the manager's counters, exported
// on /metrics as ovserve_jobs_*.
type Metrics struct {
	Submitted int64 `json:"submitted"`
	Shed      int64 `json:"shed"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Preempted int64 `json:"preempted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
}

// Manager owns the queue, the worker pool and the job records. Construct
// with New; all methods are safe for concurrent use.
type Manager struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []*Job
	jobs        map[string]*Job
	interactive int
	closed      bool
	seq         int64
	maxQueue    int
	running     int

	submitted atomic.Int64
	shed      atomic.Int64
	doneN     atomic.Int64
	failed    atomic.Int64
	canceledN atomic.Int64
	preempted atomic.Int64

	// tracer records one span timeline per sampled job. Nil (the default)
	// keeps the whole layer untraced and allocation-free.
	tracer *span.Tracer

	wg sync.WaitGroup
}

// SetTracer installs the tracer that records one trace per sampled job.
// Call before the first Submit; a nil tracer (the default) disables
// tracing.
func (m *Manager) SetTracer(t *span.Tracer) { m.tracer = t }

// New starts a manager with the given worker pool size and queue bound
// (values < 1 are raised to 1). Close must be called to stop the workers.
func New(workers, maxQueue int) *Manager {
	m := &Manager{jobs: make(map[string]*Job), maxQueue: max(maxQueue, 1)}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < max(workers, 1); i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// newID returns a random 16-hex-character job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues a job and returns its id immediately. Higher priority
// runs first; equal priorities run in submission order. When the queue is
// at capacity the job is shed with ErrQueueFull — the caller translates
// that into backpressure (HTTP 503 + Retry-After). After Close, Submit
// fails with ErrShutdown.
func (m *Manager) Submit(run RunFunc, priority int) (string, error) {
	return m.SubmitTraced(run, priority, false)
}

// SubmitTraced is Submit with an explicit trace-retention hint: force true
// bypasses the tracer's head sampling, the same contract as a sampled W3C
// traceparent on an HTTP request. The transport layer sets it when the
// submitting request is itself traced, so a traced submission always yields
// an inspectable job timeline.
func (m *Manager) SubmitTraced(run RunFunc, priority int, force bool) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrShutdown
	}
	if len(m.queue) >= m.maxQueue {
		m.shed.Add(1)
		return "", ErrQueueFull
	}
	m.seq++
	j := &Job{
		id:       newID(),
		priority: priority,
		seq:      m.seq,
		run:      run,
		state:    StateQueued,
		created:  time.Now(),
		enqueued: time.Now(),
	}
	if sp := m.tracer.Root("job", span.TraceID{}, 0, force); sp != nil {
		sp.SetAttr("job_id", j.id)
		sp.SetInt("priority", int64(priority))
		j.span = sp
		j.traceID = sp.TraceID()
	}
	m.jobs[j.id] = j
	m.enqueueLocked(j)
	m.submitted.Add(1)
	m.cond.Broadcast()
	return j.id, nil
}

// enqueueLocked inserts a job keeping the queue sorted: priority
// descending, then sequence ascending (FIFO within a priority). Parked
// jobs keep their original sequence, so a preempted job resumes ahead of
// batch work submitted after it.
func (m *Manager) enqueueLocked(j *Job) {
	at, _ := slices.BinarySearchFunc(m.queue, j, func(a, b *Job) int {
		if a.priority != b.priority {
			return b.priority - a.priority
		}
		return int(a.seq - b.seq)
	})
	m.queue = slices.Insert(m.queue, at, j)
}

// Get returns a snapshot of the job with the given id.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return m.snapshotLocked(j), nil
}

func (m *Manager) snapshotLocked(j *Job) Snapshot {
	return Snapshot{
		ID:          j.id,
		State:       j.state,
		Priority:    j.priority,
		Done:        j.done.Load(),
		Total:       j.total.Load(),
		ResumedFrom: j.resumedFrom.Load(),
		Preemptions: j.preemptions.Load(),
		TraceID:     j.traceID,
		Error:       j.errMsg,
		CreatedAt:   j.created,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}

// Cancel requests cancellation of a job. A queued job is removed and
// marked canceled immediately; a running job's context is canceled (the
// run function checkpoints and returns, after which the job lands in
// StateCanceled). Canceling a finished job returns ErrFinished.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		if i := slices.Index(m.queue, j); i >= 0 {
			m.queue = slices.Delete(m.queue, i, i+1)
		}
		m.finishLocked(j, StateCanceled, context.Canceled)
		return nil
	case StateRunning:
		j.canceled = true
		j.cancel(context.Canceled)
		return nil
	default:
		return ErrFinished
	}
}

// BeginInteractive marks the start of an interactive request. While any
// interactive request is in flight, workers start no new batch jobs; the
// 0→1 transition additionally preempts every running job so interactive
// latency does not queue behind batch simulation. Pair every call with
// EndInteractive.
func (m *Manager) BeginInteractive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.interactive++
	if m.interactive == 1 {
		// Cancellation order over the running set is unobservable: each
		// preempted job re-enqueues at its recorded queue position, and
		// delivery is asynchronous regardless of iteration order.
		//ovlint:allow determinism cancellation fans out to an unordered set of goroutines; queue order is restored from each job's recorded position
		for _, j := range m.jobs {
			if j.state == StateRunning && !j.canceled {
				j.cancel(ErrPreempted)
			}
		}
	}
}

// EndInteractive marks the end of an interactive request and, when the
// last one completes, wakes the workers to resume batch jobs.
func (m *Manager) EndInteractive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.interactive > 0 {
		m.interactive--
	}
	if m.interactive == 0 {
		m.cond.Broadcast()
	}
}

// Metrics snapshots the manager counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	queued, running := int64(len(m.queue)), int64(m.running)
	m.mu.Unlock()
	return Metrics{
		Submitted: m.submitted.Load(),
		Shed:      m.shed.Load(),
		Done:      m.doneN.Load(),
		Failed:    m.failed.Load(),
		Canceled:  m.canceledN.Load(),
		Preempted: m.preempted.Load(),
		Queued:    queued,
		Running:   running,
	}
}

// Close stops the manager: queued jobs are canceled, running jobs are
// canceled with cause ErrShutdown — their run functions persist
// checkpoints, which is what makes jobs resumable across a restart — and
// Close blocks until every worker has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for _, j := range m.queue {
		m.finishLocked(j, StateCanceled, ErrShutdown)
	}
	m.queue = nil
	//ovlint:allow determinism shutdown cancels every running job; the set is drained completely, so order is unobservable
	for _, j := range m.jobs {
		if j.state == StateRunning {
			j.canceled = true
			j.cancel(ErrShutdown)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// finishLocked moves a job to a terminal state and publishes its trace.
func (m *Manager) finishLocked(j *Job, st State, err error) {
	j.state = st
	j.finished = time.Now()
	if err != nil {
		j.errMsg = err.Error()
	}
	if j.span != nil {
		j.span.SetAttr("state", string(st))
		j.span.SetInt("preemptions", j.preemptions.Load())
		j.span.End()
		j.span = nil
	}
	switch st {
	case StateDone:
		m.doneN.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCanceled:
		m.canceledN.Add(1)
	}
}

// endLeg closes one job.run leg span with its outcome. Nil-safe, like every
// span operation.
func (m *Manager) endLeg(leg *span.Span, outcome string) {
	if leg == nil {
		return
	}
	leg.SetAttr("outcome", outcome)
	leg.End()
}

// worker is the pool loop: wait for runnable work (non-empty queue, no
// interactive traffic, not closed), pop the best job, run it, classify the
// outcome.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for !m.closed && (len(m.queue) == 0 || m.interactive > 0) {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		j.state = StateRunning
		if j.started.IsZero() {
			j.started = time.Now()
		}
		// Back-dated queue.wait child: how long this leg sat behind other
		// work (or behind interactive traffic, after a preemption).
		if j.span != nil {
			j.span.StartChildAt("queue.wait", j.enqueued).End()
		}
		ctx, cancel := context.WithCancelCause(context.Background())
		j.cancel = cancel
		// One job.run child per leg; the run function's own spans (simulate,
		// checkpoint.park/restore, cache.resolve) nest under it via ctx.
		leg := j.span.StartChild("job.run")
		if leg != nil {
			ctx = span.NewContext(ctx, leg)
		}
		m.running++
		m.mu.Unlock()

		err := j.run(ctx, j)
		cause := context.Cause(ctx)
		cancel(nil)

		m.mu.Lock()
		m.running--
		j.cancel = nil
		switch {
		case err == nil:
			m.endLeg(leg, "done")
			m.finishLocked(j, StateDone, nil)
		case errors.Is(cause, ErrPreempted) && !j.canceled && !m.closed:
			// Parked: back in the queue at its original position, to resume
			// from the checkpoint its run function just took.
			m.endLeg(leg, "preempted")
			j.state = StateQueued
			j.preemptions.Add(1)
			m.preempted.Add(1)
			j.enqueued = time.Now()
			m.enqueueLocked(j)
		case j.canceled || errors.Is(err, context.Canceled) || errors.Is(cause, ErrShutdown):
			m.endLeg(leg, "canceled")
			m.finishLocked(j, StateCanceled, cause)
		default:
			m.endLeg(leg, "failed")
			m.finishLocked(j, StateFailed, err)
		}
		m.cond.Broadcast()
	}
}
