package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, m *Manager, id string, want ...State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		for _, w := range want {
			if s.State == w {
				return s
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want one of %v", id, s.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := New(2, 8)
	defer m.Close()
	var ran atomic.Int64
	id, err := m.Submit(func(ctx context.Context, j *Job) error {
		j.SetTotal(100)
		j.SetProgress(100)
		ran.Add(1)
		return nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := waitState(t, m, id, StateDone)
	if ran.Load() != 1 || s.Done != 100 || s.Total != 100 {
		t.Fatalf("snapshot %+v, ran=%d", s, ran.Load())
	}
	if s.StartedAt.IsZero() || s.FinishedAt.IsZero() {
		t.Fatalf("timestamps missing: %+v", s)
	}
}

func TestPriorityOrderAndFIFOWithinPriority(t *testing.T) {
	m := New(1, 16)
	defer m.Close()
	// Block the single worker so submissions queue up.
	release := make(chan struct{})
	gate, _ := m.Submit(func(ctx context.Context, j *Job) error { <-release; return nil }, 0)
	waitState(t, m, gate, StateRunning)

	var order []string
	done := make(chan string, 4)
	mk := func(name string) RunFunc {
		return func(ctx context.Context, j *Job) error { done <- name; return nil }
	}
	m.Submit(mk("low-1"), 1)
	m.Submit(mk("high"), 5)
	m.Submit(mk("low-2"), 1)
	m.Submit(mk("zero"), 0)
	close(release)
	for i := 0; i < 4; i++ {
		order = append(order, <-done)
	}
	want := []string{"high", "low-1", "low-2", "zero"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

func TestQueueFullSheds(t *testing.T) {
	m := New(1, 2)
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	gate, _ := m.Submit(func(ctx context.Context, j *Job) error { <-release; return nil }, 0)
	waitState(t, m, gate, StateRunning)

	idle := func(ctx context.Context, j *Job) error { return nil }
	if _, err := m.Submit(idle, 0); err != nil {
		t.Fatalf("first queued submit failed: %v", err)
	}
	if _, err := m.Submit(idle, 0); err != nil {
		t.Fatalf("second queued submit failed: %v", err)
	}
	if _, err := m.Submit(idle, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	if mt := m.Metrics(); mt.Shed != 1 {
		t.Fatalf("shed = %d, want 1", mt.Shed)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	m := New(1, 8)
	defer m.Close()
	release := make(chan struct{})
	gate, _ := m.Submit(func(ctx context.Context, j *Job) error { <-release; return nil }, 0)
	waitState(t, m, gate, StateRunning)

	queued, _ := m.Submit(func(ctx context.Context, j *Job) error { return nil }, 0)
	if err := m.Cancel(queued); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if s, _ := m.Get(queued); s.State != StateCanceled {
		t.Fatalf("queued job state %s after cancel", s.State)
	}
	if err := m.Cancel(queued); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel err = %v, want ErrFinished", err)
	}
	if err := m.Cancel("no-such-id"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown err = %v, want ErrNotFound", err)
	}

	// Cancel the running job: its context must fire and it must land in
	// canceled even though the run function returns ctx.Err().
	running, _ := m.Submit(func(ctx context.Context, j *Job) error {
		<-ctx.Done()
		return ctx.Err()
	}, 9)
	close(release)
	waitState(t, m, running, StateRunning)
	if err := m.Cancel(running); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, m, running, StateCanceled)
}

func TestFailureState(t *testing.T) {
	m := New(1, 8)
	defer m.Close()
	boom := errors.New("trace unreadable")
	id, _ := m.Submit(func(ctx context.Context, j *Job) error { return boom }, 0)
	s := waitState(t, m, id, StateFailed)
	if s.Error != boom.Error() {
		t.Fatalf("error %q, want %q", s.Error, boom)
	}
}

// TestInteractivePreemptsAndParks is the preemption contract: a running job
// is canceled with cause ErrPreempted when interactive traffic begins, is
// re-queued (not canceled), and resumes after EndInteractive.
func TestInteractivePreemptsAndParks(t *testing.T) {
	m := New(1, 8)
	defer m.Close()

	var runs atomic.Int64
	started := make(chan struct{}, 4)
	id, _ := m.Submit(func(ctx context.Context, j *Job) error {
		runs.Add(1)
		started <- struct{}{}
		select {
		case <-ctx.Done():
			// A real run func checkpoints here, then reports the cause.
			return context.Cause(ctx)
		case <-time.After(10 * time.Second):
			return nil
		}
	}, 0)
	<-started

	m.BeginInteractive()
	s := waitState(t, m, id, StateQueued)
	if s.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", s.Preemptions)
	}
	// While interactive, the worker must not restart it.
	time.Sleep(20 * time.Millisecond)
	if s, _ := m.Get(id); s.State != StateQueued {
		t.Fatalf("job restarted during interactive window (state %s)", s.State)
	}
	m.EndInteractive()
	<-started // second run segment
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2 (original + resume)", runs.Load())
	}
	if mt := m.Metrics(); mt.Preempted != 1 {
		t.Fatalf("preempted metric = %d, want 1", mt.Preempted)
	}
	m.Cancel(id)
	waitState(t, m, id, StateCanceled)
}

// TestCancelDuringInteractiveWinsOverParking: a user cancel must stick even
// if it races the preemption window — the job must not be parked and
// silently resumed.
func TestCancelDuringInteractiveWinsOverParking(t *testing.T) {
	m := New(1, 8)
	defer m.Close()
	started := make(chan struct{}, 2)
	id, _ := m.Submit(func(ctx context.Context, j *Job) error {
		started <- struct{}{}
		<-ctx.Done()
		return context.Cause(ctx)
	}, 0)
	<-started
	m.BeginInteractive()
	if err := m.Cancel(id); err != nil && !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel: %v", err)
	}
	m.EndInteractive()
	s := waitState(t, m, id, StateCanceled)
	if s.State != StateCanceled {
		t.Fatalf("state %s, want canceled", s.State)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	m := New(1, 8)
	started := make(chan struct{}, 1)
	var sawShutdown atomic.Bool
	running, _ := m.Submit(func(ctx context.Context, j *Job) error {
		started <- struct{}{}
		<-ctx.Done()
		sawShutdown.Store(errors.Is(context.Cause(ctx), ErrShutdown))
		return context.Cause(ctx)
	}, 0)
	<-started
	queued, _ := m.Submit(func(ctx context.Context, j *Job) error { return nil }, 0)
	m.Close()

	if !sawShutdown.Load() {
		t.Fatal("running job did not observe ErrShutdown cause")
	}
	for _, id := range []string{running, queued} {
		if s, _ := m.Get(id); s.State != StateCanceled {
			t.Fatalf("job %s state %s after Close, want canceled", id, s.State)
		}
	}
	if _, err := m.Submit(func(ctx context.Context, j *Job) error { return nil }, 0); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after close err = %v, want ErrShutdown", err)
	}
}

func TestMetricsCounts(t *testing.T) {
	m := New(2, 8)
	defer m.Close()
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := m.Submit(func(ctx context.Context, j *Job) error { return nil }, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	mt := m.Metrics()
	if mt.Submitted != 3 || mt.Done != 3 || mt.Queued != 0 || mt.Running != 0 {
		t.Fatalf("metrics %+v", mt)
	}
}
