package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"oovec/internal/jobs"
)

// del drives a DELETE through the handler stack.
func del(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("DELETE", path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// jobStatus fetches and decodes GET /v1/jobs/{id}.
func jobStatus(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	rec := get(t, s, "/v1/jobs/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d: %s", id, rec.Code, rec.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// submitJob posts a job and returns the submit response.
func submitJob(t *testing.T, s *Server, req JobRequest) JobSubmitResponse {
	t.Helper()
	rec := post(t, s, "/v1/jobs", req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d: %s", rec.Code, rec.Body)
	}
	var resp JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitJob polls until the job reaches one of the wanted states.
func waitJob(t *testing.T, s *Server, id string, want ...jobs.State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := jobStatus(t, s, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (done %d/%d), want one of %v",
				id, st.State, st.Done, st.Total, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t)
	defer s.JobsClose()
	simReq := SimRequest{Bench: "trfd", Insns: testInsns, Config: SimConfig{VRegs: 12}}

	resp := submitJob(t, s, JobRequest{Sim: simReq})
	st := waitJob(t, s, resp.ID, jobs.StateDone)
	if st.Metrics == nil {
		t.Fatal("done job carries no metrics")
	}
	if st.Key != resp.Key {
		t.Fatalf("status key %q != submit key %q", st.Key, resp.Key)
	}

	// The job's result is the same cache entry /v1/sim serves — identical
	// metrics, served as a cache hit with zero new simulations.
	rec := post(t, s, "/v1/sim", simReq)
	var sim SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sim); err != nil {
		t.Fatal(err)
	}
	if !sim.Cached {
		t.Error("/v1/sim after the job re-simulated; the job result was not published")
	}
	if sim.Key != resp.Key {
		t.Errorf("sim key %q != job key %q", sim.Key, resp.Key)
	}
	wantJSON, _ := json.Marshal(sim.Metrics)
	gotJSON, _ := json.Marshal(st.Metrics)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("job metrics differ from /v1/sim metrics for the same key")
	}
	if n := s.SimsRun(); n != 1 {
		t.Errorf("sims run = %d, want 1 (job simulated once, sim was a hit)", n)
	}
}

func TestJobValidation(t *testing.T) {
	s := newTestServer(t)
	defer s.JobsClose()
	if rec := post(t, s, "/v1/jobs", JobRequest{Sim: SimRequest{Bench: "nope"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown bench: status %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/v1/jobs", JobRequest{
		Sim: SimRequest{Bench: "trfd"}, CheckpointInsns: -1,
	}); rec.Code != http.StatusBadRequest {
		t.Errorf("negative checkpoint_insns: status %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/v1/jobs/doesnotexist"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id GET: status %d, want 404", rec.Code)
	}
	if rec := del(t, s, "/v1/jobs/doesnotexist"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id DELETE: status %d, want 404", rec.Code)
	}
}

// TestJobKillAndResume is the acceptance criterion of the preemptible
// simulation layer: cancel a long-running job mid-run, tear the whole
// process state down (new Server, new Store on the same directory — a
// restart), submit the same job, and require (a) the resumed run picked up
// from the persisted checkpoint, strictly past zero and strictly short of
// the total, and (b) the final metrics are byte-identical to a never-
// interrupted run.
func TestJobKillAndResume(t *testing.T) {
	dir := t.TempDir()
	const insns = 200_000
	simReq := SimRequest{Bench: "bdna", Insns: insns, Config: SimConfig{VRegs: 12}}
	jobReq := JobRequest{Sim: simReq, CheckpointInsns: 20_000}

	// Process 1: start the job, cancel it mid-run.
	st1 := openStore(t, dir)
	// Tracing on in both lives: the resumed run below must stay
	// byte-identical to the untraced uninterrupted reference, proving the
	// checkpoint.park/restore spans observe without perturbing.
	s1 := New(Opts{Workers: 1, Store: st1, JobWorkers: 1, TraceSample: 1})
	resp := submitJob(t, s1, jobReq)

	// Wait until it is genuinely mid-run (progress moved past the first
	// abort-check) so the cancel exercises the mid-trace path.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := jobStatus(t, s1, resp.ID)
		if st.State == jobs.StateRunning && st.Done > 0 {
			break
		}
		if st.State == jobs.StateDone {
			t.Fatal("job finished before it could be canceled; raise insns")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reported progress")
		}
		time.Sleep(time.Millisecond)
	}
	canceledAt := time.Now()
	if rec := del(t, s1, "/v1/jobs/"+resp.ID); rec.Code != http.StatusAccepted {
		t.Fatalf("DELETE status %d: %s", rec.Code, rec.Body)
	}
	stopped := waitJob(t, s1, resp.ID, jobs.StateCanceled)
	// Cancellation latency is bounded by the abort-check interval — a few
	// thousand instructions, microseconds of simulation — never by the
	// remaining trace. The generous bound only catches run-to-completion
	// regressions.
	if lat := time.Since(canceledAt); lat > 30*time.Second {
		t.Errorf("cancellation took %v; mid-run aborts must not wait for the trace to finish", lat)
	}
	if stopped.Done <= 0 || stopped.Done >= insns {
		t.Fatalf("canceled at %d instructions, want strictly inside (0, %d)", stopped.Done, insns)
	}
	if _, ok := st1.LoadBlob(context.Background(), resp.Key); !ok {
		t.Fatal("no checkpoint blob persisted for the canceled job")
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Process 2: same directory, fresh everything. The same submission
	// must resume from the checkpoint, not restart.
	st2 := openStore(t, dir)
	s2 := New(Opts{Workers: 1, Store: st2, JobWorkers: 1, TraceSample: 1})
	resp2 := submitJob(t, s2, jobReq)
	if resp2.Key != resp.Key {
		t.Fatalf("same request produced key %q, first process had %q", resp2.Key, resp.Key)
	}
	done := waitJob(t, s2, resp2.ID, jobs.StateDone)
	if done.ResumedFrom <= 0 || done.ResumedFrom >= insns {
		t.Fatalf("resumed_from = %d, want strictly inside (0, %d)", done.ResumedFrom, insns)
	}
	if done.Metrics == nil {
		t.Fatal("resumed job carries no metrics")
	}
	// The resumed process simulated only the un-checkpointed tail. Total is
	// the generated trace's length (generation may overshoot the requested
	// budget), so the tail is measured against it, not the request.
	if tail := metricValue(t, s2, "ovserve_sim_insns_total"); tail != done.Total-done.ResumedFrom {
		t.Errorf("ovserve_sim_insns_total = %d, want the tail %d", tail, done.Total-done.ResumedFrom)
	}
	if n := metricValue(t, s2, "ovserve_checkpoints_resumed_total"); n == 0 {
		t.Error("ovserve_checkpoints_resumed_total = 0 after a resume")
	}
	if _, ok := st2.LoadBlob(context.Background(), resp.Key); ok {
		t.Error("checkpoint blob not retired after the job completed")
	}

	// Byte-identical to a run that was never interrupted.
	ref := newTestServer(t)
	defer ref.JobsClose()
	rec := post(t, ref, "/v1/sim", simReq)
	var want SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(done.Metrics)
	wantJSON, _ := json.Marshal(want.Metrics)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("resumed metrics differ from an uninterrupted run:\ngot  %s\nwant %s", gotJSON, wantJSON)
	}

	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

// TestJobPreemptedByInteractiveTraffic: an interactive /v1/sim arriving
// while a batch job runs preempts it (checkpoint-and-park); the job then
// resumes and completes with exactly the metrics of an uninterrupted run —
// on a memory-only server, proving the parked checkpoint needs no store.
func TestJobPreemptedByInteractiveTraffic(t *testing.T) {
	s := New(Opts{Workers: 1, JobWorkers: 1})
	defer s.JobsClose()
	const insns = 150_000
	jobReq := JobRequest{Sim: SimRequest{Bench: "hydro2d", Insns: insns}, CheckpointInsns: 10_000}
	resp := submitJob(t, s, jobReq)

	deadline := time.Now().Add(60 * time.Second)
	for {
		st := jobStatus(t, s, resp.ID)
		if st.State == jobs.StateRunning && st.Done > 0 {
			break
		}
		if st.State == jobs.StateDone {
			t.Fatal("job finished before the interactive request; raise insns")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Interactive traffic: preempts the running job for its duration.
	if rec := post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns}); rec.Code != http.StatusOK {
		t.Fatalf("interactive sim status %d: %s", rec.Code, rec.Body)
	}

	done := waitJob(t, s, resp.ID, jobs.StateDone)
	if done.Preemptions == 0 {
		t.Error("job reports zero preemptions after interactive traffic")
	}
	if done.ResumedFrom <= 0 {
		t.Error("preempted job did not resume from its parked checkpoint")
	}
	if n := metricValue(t, s, "ovserve_jobs_preempted_total"); n == 0 {
		t.Error("ovserve_jobs_preempted_total = 0")
	}

	// Preemption must not change the measurements.
	rec := post(t, s, "/v1/sim", SimRequest{Bench: "hydro2d", Insns: insns})
	var sim SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sim); err != nil {
		t.Fatal(err)
	}
	if !sim.Cached {
		t.Error("preempted job's result was not published to the cache")
	}
	gotJSON, _ := json.Marshal(done.Metrics)
	ref := newTestServer(t)
	defer ref.JobsClose()
	refRec := post(t, ref, "/v1/sim", SimRequest{Bench: "hydro2d", Insns: insns})
	var want SimResponse
	if err := json.Unmarshal(refRec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Metrics)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("preempted-and-resumed metrics differ from an uninterrupted run")
	}
}

// TestJobQueueFullSheds: the bounded queue refuses the overflow with 503 +
// Retry-After instead of queueing without bound.
func TestJobQueueFullSheds(t *testing.T) {
	s := New(Opts{Workers: 1, JobWorkers: 1, JobQueue: 1})
	defer s.JobsClose()
	big := JobRequest{Sim: SimRequest{Bench: "bdna", Insns: 2_000_000}}

	running := submitJob(t, s, big) // occupies the worker
	waitJob(t, s, running.ID, jobs.StateRunning)
	queued := submitJob(t, s, JobRequest{Sim: SimRequest{Bench: "trfd", Insns: 2_000_000}})

	rec := post(t, s, "/v1/jobs", JobRequest{Sim: SimRequest{Bench: "hydro2d", Insns: 2_000_000}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overfull submit: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response has no Retry-After header")
	}
	if n := metricValue(t, s, "ovserve_jobs_shed_total"); n != 1 {
		t.Errorf("ovserve_jobs_shed_total = %d, want 1", n)
	}
	del(t, s, "/v1/jobs/"+running.ID)
	del(t, s, "/v1/jobs/"+queued.ID)
}

// TestDrainRefusalsCarryRetryAfter: the drain 503 on the simulation routes
// now tells clients when to retry, matching the 429 limiter.
func TestDrainRefusalsCarryRetryAfter(t *testing.T) {
	s := newTestServer(t)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []func() *httptest.ResponseRecorder{
		func() *httptest.ResponseRecorder { return post(t, s, "/v1/sim", SimRequest{Bench: "trfd"}) },
		func() *httptest.ResponseRecorder {
			return post(t, s, "/v1/sweep", SweepRequest{Bench: []string{"trfd"}})
		},
	} {
		rec := probe()
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining server answered %d, want 503", rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Error("drain 503 has no Retry-After header")
		}
	}
}

// TestWarmStartPreloadsMemoryTier: a restarted server pre-loads its MRU
// disk entries, so the first repeat request is a memory hit — no disk
// probe, no simulation.
func TestWarmStartPreloadsMemoryTier(t *testing.T) {
	dir := t.TempDir()
	simReq := SimRequest{Bench: "trfd", Insns: testInsns, Config: SimConfig{VRegs: 12}}

	st1 := openStore(t, dir)
	s1 := New(Opts{Workers: 1, Store: st1})
	post(t, s1, "/v1/sim", simReq)
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := New(Opts{Workers: 1, Store: st2})
	if n := s2.WarmStart(64 << 20); n != 1 {
		t.Fatalf("WarmStart loaded %d entries, want 1", n)
	}
	if n := metricValue(t, s2, "ovserve_warm_preloaded"); n != 1 {
		t.Errorf("ovserve_warm_preloaded = %d, want 1", n)
	}
	diskHitsBefore := st2.Stats().Hits
	rec := post(t, s2, "/v1/sim", simReq)
	var resp SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("pre-loaded entry was not served as a cache hit")
	}
	if s2.SimsRun() != 0 {
		t.Error("pre-loaded request re-simulated")
	}
	if st2.Stats().Hits != diskHitsBefore {
		t.Error("request probed the disk tier despite the warm pre-load")
	}
}
