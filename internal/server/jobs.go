package server

// The asynchronous job API: long simulations move out of the request path
// into internal/jobs' bounded queue, run with cycle-granular cancellation,
// checkpoint through the durable store, and survive preemption, explicit
// cancellation and full process restarts.
//
//	POST   /v1/jobs       submit; returns the job id immediately
//	GET    /v1/jobs/{id}  status + progress (+ metrics once done)
//	DELETE /v1/jobs/{id}  cancel; the run checkpoints before it stops
//
// Checkpoints are persisted as store blobs under the job's result key —
// the same content address the result itself will be cached under — so
// resumption is content-addressed too: a re-submitted or restarted job for
// the same (machine, config, trace) picks up the old job's checkpoint even
// though the job id is new. On completion the result is published through
// the shared result cache (a later /v1/sim for the same key is a pure
// cache hit) and the checkpoint blob is deleted.

import (
	"context"
	"errors"
	"net/http"
	"sync"

	"oovec/internal/jobs"
	"oovec/internal/metrics"
	"oovec/internal/span"
)

// DefaultCheckpointInsns is the periodic checkpoint cadence (instructions)
// of a job that does not choose its own.
const DefaultCheckpointInsns = 100_000

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Sim is the simulation to run — the same surface as POST /v1/sim.
	Sim SimRequest `json:"sim"`
	// CheckpointInsns is the periodic checkpoint cadence in instructions
	// (0 = DefaultCheckpointInsns). Checkpoints bound the work lost to a
	// kill or restart to at most this many instructions.
	CheckpointInsns int `json:"checkpoint_insns,omitempty"`
	// Priority orders the queue: higher runs first, equal priorities run
	// in submission order.
	Priority int `json:"priority,omitempty"`
}

// JobSubmitResponse is the body of a successful POST /v1/jobs.
type JobSubmitResponse struct {
	// ID addresses the job on GET/DELETE /v1/jobs/{id}.
	ID string `json:"id"`
	// Key is the content address the result will be cached under — usable
	// against /v1/sim once the job is done.
	Key string `json:"key"`
	// TraceID names the job's own span timeline (distinct from the submit
	// request's trace) when the job was sampled. The timeline publishes to
	// /v1/traces/{id} once the job reaches a terminal state.
	TraceID string `json:"trace_id,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}: the job record plus, once
// the job is done, the result itself.
type JobStatus struct {
	jobs.Snapshot
	Key string `json:"key"`
	// Metrics carries the result when State is "done" and the result is
	// still cached.
	Metrics *metrics.RunStats `json:"metrics,omitempty"`
}

// jobInfo is the server-side record tying a job id to its simulation.
type jobInfo struct {
	key string
	// parked holds the latest checkpoint in memory, so preemption resumes
	// losslessly even on a server running without a durable store.
	mu     sync.Mutex
	parked []byte
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	plan, err := s.planSim(&req.Sim)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.CheckpointInsns < 0 {
		httpError(w, http.StatusBadRequest, "checkpoint_insns must be non-negative")
		return
	}
	ckEvery := req.CheckpointInsns
	if ckEvery == 0 {
		ckEvery = DefaultCheckpointInsns
	}
	info := &jobInfo{key: plan.key}
	// A traced submission forces the job's own trace past head sampling —
	// the caller that injected traceparent gets an inspectable job timeline,
	// not just the short POST /v1/jobs one.
	id, err := s.jobs.SubmitTraced(s.jobRun(plan, info, ckEvery), req.Priority,
		span.FromContext(r.Context()) != nil)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// The load-shedding path: bounded queue, explicit backpressure.
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "job queue full (%v)", err)
		return
	case err != nil:
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.jobsMu.Lock()
	s.jobInfos[id] = info
	s.jobsMu.Unlock()
	snap, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{ID: id, Key: plan.key, TraceID: snap.TraceID})
}

// jobRun builds the jobs.RunFunc for one simulation job. It may run many
// times (once per preemption) and must be restartable: each invocation
// resumes from the freshest checkpoint available — in-memory parked state
// first (preemption within this process), then the store blob (kill or
// restart) — and re-persists one on every interruption.
func (s *Server) jobRun(plan *simPlan, info *jobInfo, ckEvery int) jobs.RunFunc {
	return func(ctx context.Context, j *jobs.Job) error {
		// Already computed — by a /v1/sim, a sweep, or a previous job for
		// the same content address? Then there is nothing to run.
		if _, ok := s.results.Get(plan.key); ok {
			j.SetProgress(j.ResumedFrom())
			return nil
		}
		if s.store != nil {
			if st, ok := s.store.Load(ctx, plan.key); ok {
				s.results.DoCtx(ctx, plan.key, func(context.Context) *metrics.RunStats { return st })
				return nil
			}
		}

		info.mu.Lock()
		resume := info.parked
		info.mu.Unlock()
		if resume == nil && s.store != nil {
			sp, sctx := span.Start(ctx, "checkpoint.restore")
			resume, _ = s.store.LoadBlob(sctx, plan.key)
			sp.SetInt("bytes", int64(len(resume)))
			sp.End()
		}

		persist := func(b []byte) {
			info.mu.Lock()
			info.parked = b
			info.mu.Unlock()
			if s.store == nil {
				return
			}
			// ctx may already be canceled here (persist runs on the
			// preemption/cancel path); it carries only observability, which the
			// store contract says must never fail a write.
			sp, sctx := span.Start(ctx, "checkpoint.park")
			sp.SetInt("bytes", int64(len(b)))
			if s.store.SaveBlob(sctx, plan.key, b) == nil {
				s.ckSaved.Add(1)
			}
			sp.End()
		}

		start := 0
		st, ck, next, err := plan.runCk(ctx, resume, ckEvery, ckCallbacks{
			onStart: func(from, total int) {
				start = from
				if from > 0 {
					s.ckResumed.Add(1)
				}
				j.SetResumedFrom(int64(from))
				j.SetTotal(int64(total))
				j.SetProgress(int64(from))
			},
			onProgress:   func(done int) { j.SetProgress(int64(done)) },
			onCheckpoint: persist,
		})
		s.simInsns.Add(int64(next - start))
		if err != nil {
			if ck != nil {
				// Canceled, preempted or shutting down: the checkpoint is
				// the job's future. Persist it synchronously — by the time
				// DELETE returns or Drain completes, it is durable.
				persist(ck)
				j.SetProgress(int64(next))
			}
			return err
		}

		// Done: publish through the shared cache (counting the simulation
		// exactly once, like /v1/sim), then retire the checkpoint.
		s.results.DoCtx(ctx, plan.key, func(context.Context) *metrics.RunStats {
			s.simsTotal.Add(1)
			return st
		})
		info.mu.Lock()
		info.parked = nil
		info.mu.Unlock()
		if s.store != nil {
			s.store.DeleteBlob(plan.key)
		}
		j.SetProgress(int64(next))
		return nil
	}
}

// lookupJob resolves the {id} path segment to the job snapshot and the
// server-side info record, answering 404 itself when absent.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (jobs.Snapshot, *jobInfo, bool) {
	id := r.PathValue("id")
	snap, err := s.jobs.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return jobs.Snapshot{}, nil, false
	}
	s.jobsMu.Lock()
	info := s.jobInfos[snap.ID]
	s.jobsMu.Unlock()
	if info == nil {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return jobs.Snapshot{}, nil, false
	}
	return snap, info, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, info, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	status := JobStatus{Snapshot: snap, Key: info.key}
	if snap.State == jobs.StateDone {
		if st, ok := s.results.Get(info.key); ok {
			status.Metrics = st
		} else if s.store != nil {
			if st, ok := s.store.Load(r.Context(), info.key); ok {
				status.Metrics = st
			}
		}
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, info, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	switch err := s.jobs.Cancel(snap.ID); {
	case errors.Is(err, jobs.ErrFinished):
		httpError(w, http.StatusConflict, "job %s already %s", snap.ID, snap.State)
		return
	case err != nil:
		httpError(w, http.StatusNotFound, "no job %q", snap.ID)
		return
	}
	// The operator breadcrumb: a cancellation destroys queued work, so the
	// log records who asked (request id), which job, and the result key the
	// parked checkpoint stays addressable under.
	if s.log != nil {
		s.log.Info("job canceled",
			"request_id", RequestID(r.Context()),
			"job_id", snap.ID,
			"key", info.key)
	}
	// 202: cancellation is in flight. A running job stops within one
	// abort-check interval and persists its checkpoint first; poll GET
	// /v1/jobs/{id} for the terminal "canceled" state.
	snap, _ = s.jobs.Get(snap.ID)
	writeJSON(w, http.StatusAccepted, JobStatus{Snapshot: snap, Key: info.key})
}

// WarmStart pre-loads the most-recently-used durable results into the
// memory tier, newest first, bounded by maxBytes of on-disk entries. It
// returns how many results were loaded. Called once at daemon startup
// (-warm-bytes); a no-op without a store.
func (s *Server) WarmStart(maxBytes int64) int {
	if s.store == nil || maxBytes <= 0 {
		return 0
	}
	n := s.results.Preload(s.store.RecentKeys(maxBytes))
	s.warmLoaded.Store(int64(n))
	return n
}

// JobsClose shuts the job layer down: running jobs are canceled with the
// shutdown cause and persist their checkpoints (the store must still be
// open), queued jobs are canceled. Drain calls it; it is idempotent.
func (s *Server) JobsClose() {
	s.jobsOnce.Do(func() { s.jobs.Close() })
}
