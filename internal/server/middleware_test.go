package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postWith is post with extra headers (the auth tests' door in).
func postWith(t *testing.T, s *Server, path string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func getWith(t *testing.T, s *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestAuthToken locks down the bearer-token layer: without the configured
// token every route but /healthz refuses with 401, with it everything
// works, and the exemption keeps load-balancer liveness checks working.
func TestAuthToken(t *testing.T) {
	s := New(Opts{Workers: 1, AuthToken: "s3cret"})
	simReq := SimRequest{Bench: "trfd", Insns: testInsns}

	if rec := post(t, s, "/v1/sim", simReq); rec.Code != http.StatusUnauthorized {
		t.Errorf("no token: status %d, want 401", rec.Code)
	} else if www := rec.Header().Get("WWW-Authenticate"); !strings.Contains(www, "Bearer") {
		t.Errorf("401 without WWW-Authenticate: %q", www)
	}
	wrong := map[string]string{"Authorization": "Bearer wrong"}
	if rec := postWith(t, s, "/v1/sim", simReq, wrong); rec.Code != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", rec.Code)
	}
	// A token of the right length but wrong bytes must also fail (guards a
	// broken prefix-only comparison).
	offByOne := map[string]string{"Authorization": "Bearer s3creT"}
	if rec := postWith(t, s, "/v1/sim", simReq, offByOne); rec.Code != http.StatusUnauthorized {
		t.Errorf("near-miss token: status %d, want 401", rec.Code)
	}
	for _, path := range []string{"/v1/presets", "/metrics"} {
		if rec := get(t, s, path); rec.Code != http.StatusUnauthorized {
			t.Errorf("GET %s without token: status %d, want 401", path, rec.Code)
		}
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz must be auth-exempt, got %d", rec.Code)
	}

	good := map[string]string{"Authorization": "Bearer s3cret"}
	if rec := postWith(t, s, "/v1/sim", simReq, good); rec.Code != http.StatusOK {
		t.Errorf("valid token: status %d, want 200 (%s)", rec.Code, rec.Body)
	}
	body := getWith(t, s, "/metrics", good).Body.String()
	if !strings.Contains(body, "ovserve_requests_unauthorized_total 5") {
		t.Errorf("metrics do not count the 5 refused requests:\n%s", body)
	}
}

// TestMaxInflight holds one sweep in flight and checks that the request
// over the bound is refused immediately with 429 + Retry-After instead of
// queueing, and that capacity frees up once the sweep finishes.
func TestMaxInflight(t *testing.T) {
	s := New(Opts{Workers: 1, MaxInflight: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSweepSim = func() {
		once.Do(func() {
			close(started)
			<-release
		})
	}

	sweepDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		sweepDone <- post(t, s, "/v1/sweep", SweepRequest{
			Bench: []string{"swm256"}, Regs: []int{12}, Lats: []int64{1, 20}, Insns: testInsns,
		})
	}()
	<-started

	rec := post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns})
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("over-limit request: status %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	close(release)
	if rec := <-sweepDone; rec.Code != http.StatusOK {
		t.Fatalf("held sweep finished with %d", rec.Code)
	}
	if rec := post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns}); rec.Code != http.StatusOK {
		t.Errorf("request after capacity freed: status %d, want 200", rec.Code)
	}
	if n := metricValue(t, s, "ovserve_requests_throttled_total"); n != 1 {
		t.Errorf("throttled_total = %d, want 1", n)
	}
}

// TestTimeoutAbortsSweep: a sweep that outlives Opts.Timeout stops between
// grid points and reports the deadline in a terminal NDJSON error record
// plus the status trailer.
func TestTimeoutAbortsSweep(t *testing.T) {
	s := New(Opts{Workers: 1, Timeout: 30 * time.Millisecond})
	s.testHookSweepSim = func() { time.Sleep(60 * time.Millisecond) }

	rec := post(t, s, "/v1/sweep", SweepRequest{
		Bench: []string{"swm256"}, Regs: []int{12, 16}, Lats: []int64{1, 20}, Insns: testInsns,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (the stream commits before the deadline can fire)", rec.Code)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	var e errorBody
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &e); err != nil || e.Error == "" {
		t.Fatalf("last NDJSON line is not an error record: %q (%v)", lines[len(lines)-1], err)
	}
	if !strings.Contains(e.Error, "deadline") {
		t.Errorf("error record %q does not mention the deadline", e.Error)
	}
	if got := s.SimsRun(); got >= 4 {
		t.Errorf("%d of 4 grid points simulated despite the deadline", got)
	}
	if tr := rec.Result().Trailer.Get(SweepStatusTrailer); tr != "error" {
		t.Errorf("%s trailer = %q, want \"error\"", SweepStatusTrailer, tr)
	}
	if n := metricValue(t, s, "ovserve_sweep_errors_total"); n != 1 {
		t.Errorf("sweep_errors_total = %d, want 1", n)
	}
}

// TestLatencyOutcomeMetrics: every finished request lands in the per-route
// duration sum and per-(route, code) outcome counters.
func TestLatencyOutcomeMetrics(t *testing.T) {
	s := newTestServer(t)
	post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns}) // 200
	post(t, s, "/v1/sim", SimRequest{Bench: "nosuch"})                 // 400

	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		`ovserve_responses_total{path="/v1/sim",code="200"} 1`,
		`ovserve_responses_total{path="/v1/sim",code="400"} 1`,
		`ovserve_request_duration_seconds_sum{path="/v1/sim"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
