package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"

	"oovec/internal/cli"
	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/simcache"
	"oovec/internal/span"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

// SimRequest is the body of POST /v1/sim. Exactly one of Bench and Trace
// selects the input: Bench names a built-in preset, Trace carries an
// uploaded OVTR file (base64 in JSON).
type SimRequest struct {
	// Bench is a benchmark preset name (see /v1/presets).
	Bench string `json:"bench,omitempty"`
	// Trace is a serialised OVTR trace, base64-encoded.
	Trace []byte `json:"trace,omitempty"`
	// Insns overrides the preset's dynamic instruction budget (presets
	// only; 0 keeps the preset's own budget).
	Insns int `json:"insns,omitempty"`
	// Machine selects the simulator: "ooo" (default) or "ref".
	Machine string `json:"machine,omitempty"`
	// Config parameterises the machine; zero fields take the paper's
	// defaults.
	Config SimConfig `json:"config"`
}

// SimConfig is the machine configuration surface of the API — the
// ooosim.Config / refsim.Config fields a request may override. Zero fields
// keep the paper's defaults, exactly like the CLI flags.
type SimConfig struct {
	// VRegs is the physical vector register count (OOOVA; default 16).
	VRegs int `json:"vregs,omitempty"`
	// Queues is the instruction queue depth (OOOVA; default 16).
	Queues int `json:"queues,omitempty"`
	// ROB is the reorder buffer capacity (OOOVA; default 64).
	ROB int `json:"rob,omitempty"`
	// CommitWidth is the maximum commits per cycle (OOOVA; default 4).
	CommitWidth int `json:"commit_width,omitempty"`
	// Latency is the main-memory latency in cycles (default 50).
	Latency int64 `json:"latency,omitempty"`
	// ScalarLatency is the scalar-reference latency (default 6).
	ScalarLatency int64 `json:"scalar_latency,omitempty"`
	// Commit is the commit policy: "early" (default) or "late" (OOOVA).
	Commit string `json:"commit,omitempty"`
	// Elim is the load-elimination mode: "none" (default), "sle" or
	// "sle+vle" (OOOVA).
	Elim string `json:"elim,omitempty"`
}

// SimResponse is the body of a successful POST /v1/sim.
type SimResponse struct {
	// Key is the content address of this (machine, config, trace) triple in
	// the result cache.
	Key string `json:"key"`
	// Cached reports whether the metrics came from the cache (no new
	// simulation ran for this request).
	Cached bool `json:"cached"`
	// Metrics are the run's measurements — the same struct the CLIs print.
	Metrics *metrics.RunStats `json:"metrics"`
}

// toOOO resolves the config surface onto an ooosim.Config, validating the
// same bounds the CLIs enforce.
func (c SimConfig) toOOO() (ooosim.Config, error) {
	if c.VRegs < 0 || c.Queues < 0 || c.ROB < 0 || c.CommitWidth < 0 ||
		c.Latency < 0 || c.ScalarLatency < 0 {
		return ooosim.Config{}, errors.New("config values must be non-negative")
	}
	if c.VRegs > 0 && c.VRegs <= isa.NumLogicalV {
		return ooosim.Config{}, fmt.Errorf("vregs %d: the OOOVA needs more than %d physical vector registers", c.VRegs, isa.NumLogicalV)
	}
	cfg := ooosim.Config{
		PhysVRegs:        c.VRegs,
		QueueSlots:       c.Queues,
		ROBSize:          c.ROB,
		CommitWidth:      c.CommitWidth,
		MemLatency:       c.Latency,
		ScalarMemLatency: c.ScalarLatency,
	}
	var err error
	if cfg.Commit, err = cli.ParseCommit(c.Commit); err != nil {
		return ooosim.Config{}, err
	}
	if cfg.LoadElim, err = cli.ParseElim(c.Elim); err != nil {
		return ooosim.Config{}, err
	}
	return cfg, nil
}

// toRef resolves the config surface onto a refsim.Config. OOOVA-only fields
// must be absent.
func (c SimConfig) toRef() (refsim.Config, error) {
	if c.VRegs != 0 || c.Queues != 0 || c.ROB != 0 || c.CommitWidth != 0 ||
		c.Commit != "" || (c.Elim != "" && c.Elim != "none") {
		return refsim.Config{}, errors.New("vregs/queues/rob/commit_width/commit/elim do not apply to the reference machine")
	}
	if c.Latency < 0 || c.ScalarLatency < 0 {
		return refsim.Config{}, errors.New("config values must be non-negative")
	}
	cfg := refsim.DefaultConfig()
	if c.Latency > 0 {
		cfg.MemLatency = c.Latency
	}
	if c.ScalarLatency > 0 {
		cfg.ScalarMemLatency = c.ScalarLatency
	}
	return cfg, nil
}

// loadTrace resolves the request's input trace into a content key and a
// lazy getter. The getter defers preset generation into the result-cache
// fill, so a result-cache hit is a pure lookup even when the shared trace
// cache has since evicted the trace. Uploads decode eagerly — the bytes
// must be validated and digested either way.
func (s *Server) loadTrace(req *SimRequest) (func() *trace.Trace, string, error) {
	switch {
	case req.Bench != "" && len(req.Trace) > 0:
		return nil, "", errors.New("bench and trace are mutually exclusive")
	case req.Bench != "":
		p, ok := tgen.PresetByName(req.Bench)
		if !ok {
			return nil, "", fmt.Errorf("unknown benchmark %q (see /v1/presets)", req.Bench)
		}
		if req.Insns < 0 {
			return nil, "", errors.New("insns must be non-negative")
		}
		if req.Insns > 0 {
			p.Insns = req.Insns
		}
		// The preset is the content: generation is deterministic, so the
		// canonical preset string addresses the same trace bytes a digest
		// would, without generating first.
		return func() *trace.Trace { return simcache.GenerateTrace(p) }, simcache.PresetKey(p), nil
	case len(req.Trace) > 0:
		t, err := trace.ReadLimited(bytes.NewReader(req.Trace), s.traceLimits)
		if err != nil {
			return nil, "", fmt.Errorf("decoding uploaded trace: %w", err)
		}
		return func() *trace.Trace { return t }, "ovtr:" + trace.Digest(t), nil
	}
	return nil, "", errors.New("one of bench or trace is required")
}

// simPlan is a fully resolved simulation request: the content-address key
// plus runners for both execution modes. handleSim uses the plain run; the
// async job layer (jobs.go) uses the checkpointable one.
type simPlan struct {
	key   string
	run   func(context.Context) *metrics.RunStats
	runCk ckRunner
}

// ckRunner executes a checkpointable simulation. resume, when non-empty,
// is an encoded checkpoint to continue from (silently ignored when it does
// not decode or belongs to a different trace — the run then starts fresh
// rather than failing). On completion it returns (stats, nil, traceLen,
// nil); on cancellation (nil, encoded checkpoint, next instruction, ctx
// error).
type ckRunner func(ctx context.Context, resume []byte, ckEvery int, cb ckCallbacks) (*metrics.RunStats, []byte, int, error)

// ckCallbacks observe a checkpointable run: onStart reports the resume
// position and total before simulation begins, onProgress the instruction
// count at the abort-check cadence, onCheckpoint each periodic encoded
// checkpoint.
type ckCallbacks struct {
	onStart      func(start, total int)
	onProgress   func(done int)
	onCheckpoint func(b []byte)
}

// planSim resolves a SimRequest into a simPlan, validating exactly what
// handleSim always validated. The key construction (simcache keys.go — the
// same scheme sweep grid points use, so single runs, jobs and sweeps share
// entries) keys on the resolved (WithDefaults) form, so explicit defaults
// and omitted fields share one cache entry.
func (s *Server) planSim(req *SimRequest) (*simPlan, error) {
	getTrace, traceKey, err := s.loadTrace(req)
	if err != nil {
		return nil, err
	}
	switch req.Machine {
	case "", "ooo":
		cfg, err := req.Config.toOOO()
		if err != nil {
			return nil, err
		}
		return &simPlan{
			key: simcache.ResultKey(simcache.OOOConfigKey(cfg), traceKey),
			run: func(ctx context.Context) *metrics.RunStats {
				sp, _ := span.Start(ctx, "simulate")
				sp.SetAttr("machine", "OOOVA")
				defer sp.End()
				m := s.oooPool.Get(cfg)
				defer s.oooPool.Put(m)
				st := m.Run(getTrace()).Stats
				sp.SetInt("insns", st.Instructions)
				sp.SetInt("cycles", st.Cycles)
				return st
			},
			runCk: func(ctx context.Context, resume []byte, ckEvery int, cb ckCallbacks) (*metrics.RunStats, []byte, int, error) {
				t := getTrace()
				var res *ooosim.Checkpoint
				if len(resume) > 0 {
					if ck, err := ooosim.DecodeCheckpoint(resume); err == nil && ck.TraceLen == t.Len() {
						res = ck
					}
				}
				start := 0
				if res != nil {
					start = res.NextInsn
				}
				if cb.onStart != nil {
					cb.onStart(start, t.Len())
				}
				// One span per checkpointable leg: a resumed job shows one
				// simulate span per segment, each attributed with the resume
				// position and the instructions it actually executed.
				sp, ctx := span.Start(ctx, "simulate")
				sp.SetAttr("machine", "OOOVA")
				sp.SetInt("resume_from", int64(start))
				defer sp.End()
				m := s.oooPool.Get(cfg)
				defer s.oooPool.Put(m)
				r, stop, err := m.RunCheckpointed(t, ooosim.RunOpts{
					Ctx:             ctx,
					CheckpointEvery: ckEvery,
					OnCheckpoint: func(ck *ooosim.Checkpoint) {
						if b, err := ck.Encode(); err == nil {
							cb.onCheckpoint(b)
						}
					},
					OnProgress: cb.onProgress,
					Resume:     res,
				})
				if err != nil {
					var b []byte
					next := start
					if stop != nil {
						b, _ = stop.Encode()
						next = stop.NextInsn
					}
					sp.SetAttr("outcome", "parked")
					sp.SetInt("insns", int64(next-start))
					return nil, b, next, err
				}
				sp.SetInt("insns", r.Stats.Instructions)
				sp.SetInt("cycles", r.Stats.Cycles)
				return r.Stats, nil, t.Len(), nil
			},
		}, nil
	case "ref":
		cfg, err := req.Config.toRef()
		if err != nil {
			return nil, err
		}
		return &simPlan{
			key: simcache.ResultKey(simcache.RefConfigKey(cfg), traceKey),
			run: func(ctx context.Context) *metrics.RunStats {
				sp, _ := span.Start(ctx, "simulate")
				sp.SetAttr("machine", "REF")
				defer sp.End()
				m := s.refPool.Get(cfg)
				defer s.refPool.Put(m)
				st := m.Run(getTrace())
				sp.SetInt("insns", st.Instructions)
				sp.SetInt("cycles", st.Cycles)
				return st
			},
			runCk: func(ctx context.Context, resume []byte, ckEvery int, cb ckCallbacks) (*metrics.RunStats, []byte, int, error) {
				t := getTrace()
				var res *refsim.Checkpoint
				if len(resume) > 0 {
					if ck, err := refsim.DecodeCheckpoint(resume); err == nil && ck.TraceLen == t.Len() {
						res = ck
					}
				}
				start := 0
				if res != nil {
					start = res.NextInsn
				}
				if cb.onStart != nil {
					cb.onStart(start, t.Len())
				}
				sp, ctx := span.Start(ctx, "simulate")
				sp.SetAttr("machine", "REF")
				sp.SetInt("resume_from", int64(start))
				defer sp.End()
				m := s.refPool.Get(cfg)
				defer s.refPool.Put(m)
				st, stop, err := m.RunCheckpointed(t, refsim.RunOpts{
					Ctx:             ctx,
					CheckpointEvery: ckEvery,
					OnCheckpoint: func(ck *refsim.Checkpoint) {
						if b, err := ck.Encode(); err == nil {
							cb.onCheckpoint(b)
						}
					},
					OnProgress: cb.onProgress,
					Resume:     res,
				})
				if err != nil {
					var b []byte
					next := start
					if stop != nil {
						b, _ = stop.Encode()
						next = stop.NextInsn
					}
					sp.SetAttr("outcome", "parked")
					sp.SetInt("insns", int64(next-start))
					return nil, b, next, err
				}
				sp.SetInt("insns", st.Instructions)
				sp.SetInt("cycles", st.Cycles)
				return st, nil, t.Len(), nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown machine %q (ooo | ref)", req.Machine)
	}
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	plan, err := s.planSim(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, cached := s.results.DoCtx(r.Context(), plan.key, func(ctx context.Context) *metrics.RunStats {
		s.simsTotal.Add(1)
		return plan.run(ctx)
	})
	writeJSON(w, http.StatusOK, SimResponse{Key: plan.key, Cached: cached, Metrics: st})
}
