package server

// Structured request logging and request-id propagation. Every
// instrumented request gets an id — the caller's X-Request-Id when it is
// well-formed, a freshly generated one otherwise — echoed on the response
// and attached to the request context, so a slow or failing request in the
// server log is joinable with the client's own records. Logging is
// optional (Opts.Log nil = silent, the pre-existing behaviour); the
// request id machinery runs regardless so handlers can stamp their own
// breadcrumbs.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// RequestIDHeader is the header the request id is read from and echoed on.
const RequestIDHeader = "X-Request-Id"

// TraceIDHeader echoes the id of the trace recorded for a sampled request,
// so the caller knows which /v1/traces/{id} timeline is theirs without
// parsing anything else. Absent on unsampled requests.
const TraceIDHeader = "X-Trace-Id"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the id attached to an instrumented request's context,
// or "" outside one.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// requestID resolves the id for one request: propagate the caller's when
// it is sane, otherwise generate. Propagation is what joins ovserve's log
// lines to an upstream proxy's.
func requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(RequestIDHeader)); id != "" {
		return id
	}
	return newRequestID()
}

// sanitizeRequestID accepts a caller-supplied id only when it cannot break
// a log line or a header: bounded length, [A-Za-z0-9._-] only. Anything
// else returns "" and the caller generates a fresh id instead.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// newRequestID returns a fresh 16-hex-char id. crypto/rand's Read never
// fails on the supported platforms; if it ever did, the zero bytes still
// form a syntactically valid (if colliding) id.
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// logRequest emits the one structured line per finished request: INFO
// normally, WARN with slow=true once the duration crosses the
// Opts.SlowRequest threshold. No-op without a logger. tid is the trace id
// of a sampled request ("" otherwise) — joined to the same line as the
// request id, so the log, the trace buffer and the client's records all
// correlate on either id.
func (s *Server) logRequest(r *http.Request, route, rid, tid string, code int, d time.Duration) {
	if s.log == nil {
		return
	}
	args := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"route", route,
		"status", code,
		"duration_ms", float64(d) / float64(time.Millisecond),
		"request_id", rid,
		"remote", r.RemoteAddr,
	}
	if tid != "" {
		args = append(args, "trace_id", tid)
	}
	if s.slowReq > 0 && d >= s.slowReq {
		args = append(args, "slow", true,
			"threshold_ms", float64(s.slowReq)/float64(time.Millisecond))
		s.log.Warn("slow request", args...)
		return
	}
	s.log.Info("request", args...)
}
