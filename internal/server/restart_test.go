package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"oovec/internal/store"
)

// openStore opens a store on dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartWarmServesFromDiskStore is the headline acceptance criterion
// of the persistent store: kill the server, start a fresh one on the same
// -cache-dir, repeat an identical /v1/sim and /v1/sweep — and get
// byte-identical output with ZERO new simulations (ovserve_sims_total
// stays 0 on the restarted process).
func TestRestartWarmServesFromDiskStore(t *testing.T) {
	dir := t.TempDir()
	simReq := SimRequest{
		Bench: "trfd", Insns: testInsns,
		Config: SimConfig{VRegs: 12, Latency: 20},
	}
	sweepReq := SweepRequest{
		Bench: []string{"trfd"}, Machine: "both",
		Regs: []int{12, 16}, Lats: []int64{1, 20}, Insns: testInsns,
	}

	// First process: simulate everything cold, then shut down cleanly
	// (Close flushes the write-behind queue, as ovserve's drain path does).
	st1 := openStore(t, dir)
	s1 := New(Opts{Workers: 2, Store: st1})
	if rec := post(t, s1, "/v1/sim", simReq); rec.Code != http.StatusOK {
		t.Fatalf("cold sim status %d: %s", rec.Code, rec.Body)
	}
	// The repeat is the reference body for the restarted process: identical
	// request, served from cache, so "cached":true like a warm server's.
	warmSim := post(t, s1, "/v1/sim", simReq)
	coldSweep := post(t, s1, "/v1/sweep", sweepReq)
	if coldSweep.Code != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", coldSweep.Code, coldSweep.Body)
	}
	simsBefore := s1.SimsRun()
	if simsBefore == 0 {
		t.Fatal("fixture ran no simulations")
	}
	st1.Close()

	// Second process: fresh Server, fresh memory tier, same directory.
	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := New(Opts{Workers: 2, Store: st2})

	gotSim := post(t, s2, "/v1/sim", simReq)
	if gotSim.Code != http.StatusOK {
		t.Fatalf("restarted sim status %d: %s", gotSim.Code, gotSim.Body)
	}
	if !bytes.Equal(gotSim.Body.Bytes(), warmSim.Body.Bytes()) {
		t.Errorf("restarted /v1/sim body differs from the pre-restart run:\ngot  %s\nwant %s",
			gotSim.Body, warmSim.Body)
	}
	var resp SimResponse
	if err := json.Unmarshal(gotSim.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("restarted /v1/sim reported cached=false; the disk tier must count as a cache hit")
	}

	gotSweep := post(t, s2, "/v1/sweep", sweepReq)
	if gotSweep.Code != http.StatusOK {
		t.Fatalf("restarted sweep status %d: %s", gotSweep.Code, gotSweep.Body)
	}
	if !bytes.Equal(gotSweep.Body.Bytes(), coldSweep.Body.Bytes()) {
		t.Error("restarted /v1/sweep NDJSON differs from the pre-restart stream")
	}

	if got := s2.SimsRun(); got != 0 {
		t.Errorf("restarted server ran %d simulations for previously served requests, want 0", got)
	}
	if n := metricValue(t, s2, "ovserve_sims_total"); n != 0 {
		t.Errorf("ovserve_sims_total = %d on the restarted server, want 0", n)
	}
	if hits := metricValue(t, s2, "ovserve_store_hits_total"); hits == 0 {
		t.Error("store hit counter is 0; the warm results did not come from the disk tier")
	}
}

// TestRestartWithCorruptStoreResimulates: damage every persisted entry,
// restart — the server must quietly re-simulate (corrupt entries are
// misses), return the same measurements, and quarantine the damage. Wrong
// results and panics are the only unacceptable outcomes.
func TestRestartWithCorruptStoreResimulates(t *testing.T) {
	dir := t.TempDir()
	simReq := SimRequest{Bench: "swm256", Insns: testInsns, Config: SimConfig{VRegs: 12}}

	st1 := openStore(t, dir)
	s1 := New(Opts{Workers: 1, Store: st1})
	cold := post(t, s1, "/v1/sim", simReq)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold sim status %d: %s", cold.Code, cold.Body)
	}
	var want SimResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Flip a byte in the middle of every entry file.
	damaged := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".ovr") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
		return nil
	})
	if damaged == 0 {
		t.Fatal("fixture persisted no entries to damage")
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := New(Opts{Workers: 1, Store: st2})
	rec := post(t, s2, "/v1/sim", simReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("sim over corrupt store: status %d: %s", rec.Code, rec.Body)
	}
	var got SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Error("corrupt entry was served as a cache hit")
	}
	if !reflect.DeepEqual(got.Metrics, want.Metrics) {
		t.Error("re-simulation over a corrupt store produced different metrics")
	}
	if s2.SimsRun() != 1 {
		t.Errorf("sims run = %d, want 1 (corrupt entry degrades to a miss)", s2.SimsRun())
	}
	if c := st2.Stats().Corrupt; c == 0 {
		t.Error("corrupt entry was not detected/quarantined")
	}
}

// TestCacheStatsRoute: the GET /v1/cache admin view reports all tiers, and
// the store block reflects -cache-dir configuration.
func TestCacheStatsRoute(t *testing.T) {
	// Memory-only daemon: store must be null, tiers present.
	s := newTestServer(t)
	post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns})
	rec := get(t, s, "/v1/cache")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var cs CacheStats
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Store != nil {
		t.Error("memory-only server reported a disk store")
	}
	if cs.Result.Misses == 0 {
		t.Error("result tier shows no traffic after a /v1/sim")
	}
	if cs.Result.Bytes == 0 {
		t.Error("result tier reports zero bytes with a cached entry")
	}
	if cs.Trace.Entries == 0 {
		t.Error("trace tier shows no entries after generating a preset")
	}

	// Disk-backed daemon: the store block carries dir, bound and counters.
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	sd := New(Opts{Workers: 1, Store: st})
	post(t, sd, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns})
	st.Flush()
	rec = get(t, sd, "/v1/cache")
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Store == nil {
		t.Fatal("disk-backed server reported no store")
	}
	if cs.Store.Dir != dir {
		t.Errorf("store dir = %q, want %q", cs.Store.Dir, dir)
	}
	if cs.Store.Writes != 1 || cs.Store.Files != 1 || cs.Store.Bytes <= 0 {
		t.Errorf("store stats = %+v, want 1 write, 1 file, bytes > 0", cs.Store.Stats)
	}
}
