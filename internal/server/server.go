// Package server exposes the simulators as a long-lived HTTP/JSON service —
// the ovserve daemon. Where the CLIs pay trace generation and machine
// construction per process, the server amortises them across requests: the
// content-addressed result cache (package simcache) makes a repeated
// identical request a lookup that performs zero new simulations, concurrent
// identical requests coalesce onto one simulation (singleflight), machines
// are checked out of pools per request, and generated traces are shared
// process-wide.
//
// Endpoints:
//
//	POST /v1/sim     one simulation (preset or uploaded OVTR trace), cached
//	POST /v1/sweep   a parameter grid fanned across the engine worker pool,
//	                 streamed as NDJSON in deterministic order; every grid
//	                 point is served through the same result cache as
//	                 /v1/sim, so repeated or overlapping sweeps only
//	                 simulate points never seen before
//	GET  /v1/presets the benchmark presets
//	GET  /healthz    liveness (503 while draining; never requires auth)
//	GET  /metrics    Prometheus-style counters
//
// Every route runs behind the production middleware stack (middleware.go):
// graceful-drain gating, optional bearer-token auth (Opts.AuthToken;
// /healthz exempt), a bounded in-flight limiter for the simulation routes
// (Opts.MaxInflight; overload answers 429 + Retry-After), per-request
// deadlines (Opts.Timeout; sweeps observe them between grid points), and
// per-route latency/outcome counters on /metrics.
//
// The measurements returned are the exact structs the CLIs print: /v1/sim
// carries metrics.RunStats, /v1/sweep streams sweep.Point rows in the same
// order ovsweep writes CSV rows, so service output is byte-convertible to
// CLI output. See docs/API.md for the full route reference.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oovec/internal/engine"
	"oovec/internal/hist"
	"oovec/internal/jobs"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/simcache"
	"oovec/internal/span"
	"oovec/internal/store"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

// Opts configures a Server.
type Opts struct {
	// Workers is the engine worker count sweep grids fan across
	// (0 = one per core).
	Workers int
	// CacheEntries bounds the simulation result cache (0 = 4096).
	CacheEntries int
	// MaxUploadBytes bounds request bodies, and therefore uploaded traces
	// (0 = 32 MiB).
	MaxUploadBytes int64
	// TraceLimits bounds uploaded OVTR decoding (zero fields =
	// trace.DefaultLimits).
	TraceLimits trace.Limits
	// Timeout is the per-request deadline of the API routes (0 = none).
	// Sweeps observe it between grid points; a request that exceeds it
	// mid-stream is terminated with an NDJSON error record.
	Timeout time.Duration
	// AuthToken, when non-empty, requires `Authorization: Bearer <token>`
	// on every route except /healthz; requests without it get 401.
	AuthToken string
	// MaxInflight bounds concurrently executing simulation requests
	// (/v1/sim and /v1/sweep); excess requests are refused with 429 and a
	// Retry-After header instead of queueing without bound (0 = unlimited).
	MaxInflight int
	// Store, when non-nil, is the durable disk tier behind the result
	// cache (-cache-dir): results evicted from memory — or computed by an
	// earlier process sharing the directory — are served from disk instead
	// of re-simulated, which is what makes a restarted server warm. The
	// caller owns the store's lifecycle (Close after Drain).
	Store *store.Store
	// JobWorkers is the async job worker pool size (0 = 1): how many
	// /v1/jobs simulations run concurrently when no interactive traffic is
	// in flight.
	JobWorkers int
	// JobQueue bounds the job queue (0 = 16); submissions beyond it are
	// shed with 503 + Retry-After.
	JobQueue int
	// Log, when non-nil, receives one structured line per finished request
	// (see log.go) and the operational breadcrumbs (job cancellations,
	// sweep aborts). nil = no request logging.
	Log *slog.Logger
	// SlowRequest, when > 0, is the duration at or beyond which a request
	// is logged at WARN with slow=true instead of INFO (-slow-request).
	SlowRequest time.Duration
	// TraceSample enables request tracing: 1 in TraceSample requests get a
	// span timeline recorded into the in-process trace buffer (1 = every
	// request, 0 = tracing disabled). A caller-supplied W3C traceparent
	// header with the sampled flag set forces the trace to be kept
	// regardless of the sampling counter.
	TraceSample int
	// TraceBuffer bounds the in-process trace buffer (0 = 256 recent
	// traces); the slowest traces seen are retained beyond the ring.
	TraceBuffer int
}

// Server is the ovserve request handler set. Construct with New; serve
// Handler() with net/http.
type Server struct {
	workers        int
	maxUploadBytes int64
	traceLimits    trace.Limits
	timeout        time.Duration
	authToken      string
	maxInflight    int
	inflightSem    chan struct{} // nil when MaxInflight is 0 (unlimited)
	log            *slog.Logger  // nil = no request logging
	slowReq        time.Duration
	version        string // module version for ovserve_build_info

	results *simcache.Results
	store   *store.Store // nil = memory-only
	tracer  *span.Tracer // nil = tracing disabled
	oooPool ooosim.MachinePool
	refPool refsim.MachinePool

	// The async job layer (jobs.go). jobInfos ties job ids to their result
	// keys and parked checkpoints; jobsOnce makes shutdown idempotent.
	jobs     *jobs.Manager
	jobsMu   sync.Mutex
	jobInfos map[string]*jobInfo
	jobsOnce sync.Once

	mux   *http.ServeMux
	start time.Time

	// The drain gate. A WaitGroup cannot express it: Add(1) racing a
	// pending Wait is a documented WaitGroup misuse (panic), and new
	// requests keep arriving while Drain waits. draining is additionally
	// mirrored in an atomic for the cheap read paths (healthz).
	gateMu   sync.Mutex
	active   int
	idle     chan struct{} // non-nil once draining with requests in flight
	draining atomic.Bool

	// Counters exported by /metrics.
	nInflight   atomic.Int64
	simsTotal   atomic.Int64
	simInsns    atomic.Int64 // instructions actually simulated by jobs (resumes count only their tail)
	ckSaved     atomic.Int64 // checkpoints persisted to the store
	ckResumed   atomic.Int64 // job run segments that resumed from a checkpoint
	warmLoaded  atomic.Int64 // results pre-loaded into memory by WarmStart
	sweepRows   atomic.Int64
	sweepErrors atomic.Int64
	rejected    atomic.Int64 // requests refused with 503 while draining
	throttled   atomic.Int64 // requests refused with 429 over MaxInflight
	unauthed    atomic.Int64 // requests refused with 401
	requests    map[string]*atomic.Int64
	durations   map[string]*hist.Hist // per-route request-latency histograms
	// resolve holds one latency histogram per result-resolution tier
	// (memory hit / disk hit / simulate), fed by the result cache's
	// observer: where a /v1/sim or sweep point was answered from, and how
	// long that tier took.
	resolve [simcache.NumTiers]hist.Hist
	// responses counts finished requests per (route, status code). Status
	// codes are open-ended, so this one is a locked map, touched once per
	// request.
	respMu    sync.Mutex
	responses map[string]map[int]int64

	// testHookSweepRow, when non-nil, runs after each sweep row is flushed.
	// Tests use it to hold a sweep in flight deterministically.
	testHookSweepRow func(row int)
	// testHookSweepSim, when non-nil, runs at the start of every sweep grid
	// simulation (cache hits excluded), on the worker goroutine. Tests use
	// it to stall, fail or count grid points deterministically.
	testHookSweepSim func()
}

// routes are the request-counter buckets of /metrics.
var routes = []string{"/v1/sim", "/v1/sweep", "/v1/jobs", "/v1/jobs/{id}", "/v1/presets", "/v1/cache", "/v1/traces", "/v1/traces/{id}", "/healthz", "/metrics", "/debug/pprof/"}

// New builds a server.
func New(opts Opts) *Server {
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 32 << 20
	}
	// A typed-nil *store.Store must not become a non-nil interface.
	var disk simcache.ResultStore
	if opts.Store != nil {
		disk = opts.Store
	}
	if opts.JobQueue <= 0 {
		opts.JobQueue = 16
	}
	s := &Server{
		workers:        opts.Workers,
		maxUploadBytes: opts.MaxUploadBytes,
		traceLimits:    opts.TraceLimits,
		timeout:        opts.Timeout,
		authToken:      opts.AuthToken,
		maxInflight:    opts.MaxInflight,
		log:            opts.Log,
		slowReq:        opts.SlowRequest,
		version:        buildVersion(),
		tracer:         span.NewTracer(opts.TraceSample, opts.TraceBuffer),
		results:        simcache.NewResults(opts.CacheEntries, disk),
		store:          opts.Store,
		jobs:           jobs.New(opts.JobWorkers, opts.JobQueue),
		jobInfos:       make(map[string]*jobInfo),
		mux:            http.NewServeMux(),
		start:          time.Now(),
		requests:       make(map[string]*atomic.Int64, len(routes)),
		durations:      make(map[string]*hist.Hist, len(routes)),
		responses:      make(map[string]map[int]int64, len(routes)),
	}
	if opts.MaxInflight > 0 {
		s.inflightSem = make(chan struct{}, opts.MaxInflight)
	}
	for _, r := range routes {
		s.requests[r] = &atomic.Int64{}
		s.durations[r] = &hist.Hist{}
		s.responses[r] = make(map[int]int64, 4)
	}
	// Per-tier resolution latency: the result cache reports where each
	// lookup was answered (memory, disk, fresh simulation) and how long
	// that took; /metrics exposes one histogram per tier, with the trace id
	// of a traced request attached as the bucket's OpenMetrics exemplar.
	s.results.SetObserver(func(ctx context.Context, t simcache.Tier, d time.Duration) {
		s.resolve[t].ObserveTrace(d, span.FromContext(ctx).TraceID())
	})
	// The job layer records one trace per sampled job — submission to
	// terminal state, with a queue.wait and job.run leg per dequeue.
	s.jobs.SetTracer(s.tracer)
	// The middleware chain of each route (see middleware.go): simulation
	// routes get the full production stack, the cheap introspection routes
	// only what they need — /healthz must answer during drain and without
	// credentials, or it is useless to a load balancer.
	// The interactive flag marks the routes whose arrival preempts batch
	// jobs: an interactive caller never queues behind a million-instruction
	// background run.
	sim := routeOpts{gate: true, auth: true, limit: true, timeout: true, interactive: true}
	meta := routeOpts{gate: true, auth: true}
	s.mux.HandleFunc("POST /v1/sim", s.instrument("/v1/sim", sim, s.handleSim))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", sim, s.handleSweep))
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", meta, s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", meta, s.handleJobGet))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", meta, s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/presets", s.instrument("/v1/presets", meta, s.handlePresets))
	s.mux.HandleFunc("GET /v1/cache", s.instrument("/v1/cache", meta, s.handleCache))
	s.mux.HandleFunc("GET /v1/traces", s.instrument("/v1/traces", meta, s.handleTraces))
	s.mux.HandleFunc("GET /v1/traces/{id}", s.instrument("/v1/traces/{id}", meta, s.handleTraceGet))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", routeOpts{}, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", routeOpts{auth: true}, s.handleMetrics))
	s.mux.HandleFunc("GET /debug/pprof/", s.instrument("/debug/pprof/", routeOpts{auth: true}, s.handlePprof))
	return s
}

// buildVersion resolves the module version stamped into the binary, or
// "unknown" for an unstamped build (go test, plain go build of a dirty
// tree). The value labels ovserve_build_info.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// Handler returns the HTTP handler serving all routes.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the resolved sweep worker count.
func (s *Server) Workers() int { return engine.Workers(s.workers) }

// Drain puts the server into shutdown: new API requests are refused with
// 503 + Retry-After while requests already in flight run to completion,
// and the job layer is closed — running jobs are canceled and persist
// their checkpoints (resumable by the next process sharing the store
// directory). It returns once the last in-flight request has finished,
// or with ctx's error if the context expires first; the job layer is
// closed on every path, before the caller closes the store.
func (s *Server) Drain(ctx context.Context) error {
	defer s.JobsClose()
	s.gateMu.Lock()
	s.draining.Store(true)
	if s.active == 0 {
		s.gateMu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.gateMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits a request into the drain gate; exit releases it, waking
// Drain when the last in-flight request leaves.
func (s *Server) enter() bool {
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.active++
	return true
}

func (s *Server) exit() {
	s.gateMu.Lock()
	s.active--
	if s.active == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.gateMu.Unlock()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tgen.Presets())
}

// CacheStats is the body of GET /v1/cache: the admin view of every cache
// tier. Store is null when the daemon runs without -cache-dir.
type CacheStats struct {
	// Result is the in-memory result tier (entries, bytes, hit/miss/evict
	// counters); Trace is the process-wide generated-trace cache.
	Result simcache.Stats `json:"result"`
	Trace  simcache.Stats `json:"trace"`
	// Store is the durable disk tier, when configured.
	Store *StoreStats `json:"store"`
}

// StoreStats adds the disk tier's location and bound to its counters.
type StoreStats struct {
	store.Stats
	Dir      string `json:"dir"`
	MaxBytes int64  `json:"max_bytes"`
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	resp := CacheStats{
		Result: s.results.MemStats(),
		Trace:  simcache.TraceStats(),
	}
	if s.store != nil {
		resp.Store = &StoreStats{
			Stats:    s.store.Stats(),
			Dir:      s.store.Dir(),
			MaxBytes: s.store.MaxBytes(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// openMetricsType is the content type of the OpenMetrics text exposition.
// Exemplars are OpenMetrics-only syntax, so they are rendered exactly when
// a scraper asks for this format.
const openMetricsType = "application/openmetrics-text"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Content negotiation: the default exposition is Prometheus 0.0.4 text,
	// whose parser treats a trailing exemplar as a malformed timestamp and
	// fails the whole scrape — so the default stays exemplar-free. A scraper
	// that accepts application/openmetrics-text gets the OpenMetrics shape
	// instead: histogram TYPE metadata, exemplar suffixes on bucket lines,
	// and the # EOF terminator the format requires.
	om := strings.Contains(r.Header.Get("Accept"), openMetricsType)
	if om {
		w.Header().Set("Content-Type", openMetricsType+"; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	}
	uptime := time.Since(s.start).Seconds()
	sims := s.simsTotal.Load()
	fmt.Fprintf(w, "ovserve_build_info{version=%q,go=%q} 1\n", s.version, runtime.Version())
	fmt.Fprintf(w, "ovserve_uptime_seconds %.3f\n", uptime)
	fmt.Fprintf(w, "ovserve_inflight %d\n", s.nInflight.Load())
	for _, route := range routes {
		fmt.Fprintf(w, "ovserve_requests_total{path=%q} %d\n", route, s.requests[route].Load())
	}
	if om {
		fmt.Fprintf(w, "# TYPE ovserve_request_duration_seconds histogram\n")
	}
	for _, route := range routes {
		s.durations[route].WriteProm(w, "ovserve_request_duration_seconds", fmt.Sprintf("path=%q", route), om)
	}
	if om {
		fmt.Fprintf(w, "# TYPE ovserve_resolve_duration_seconds histogram\n")
	}
	for t := simcache.Tier(0); t < simcache.NumTiers; t++ {
		s.resolve[t].WriteProm(w, "ovserve_resolve_duration_seconds", fmt.Sprintf("tier=%q", t.String()), om)
	}
	s.writeResponseMetrics(w)
	fmt.Fprintf(w, "ovserve_requests_rejected_total %d\n", s.rejected.Load())
	fmt.Fprintf(w, "ovserve_requests_throttled_total %d\n", s.throttled.Load())
	fmt.Fprintf(w, "ovserve_requests_unauthorized_total %d\n", s.unauthed.Load())
	fmt.Fprintf(w, "ovserve_sims_total %d\n", sims)
	if uptime > 0 {
		fmt.Fprintf(w, "ovserve_sims_per_second %.3f\n", float64(sims)/uptime)
	}
	fmt.Fprintf(w, "ovserve_sim_insns_total %d\n", s.simInsns.Load())
	fmt.Fprintf(w, "ovserve_sweep_rows_total %d\n", s.sweepRows.Load())
	fmt.Fprintf(w, "ovserve_sweep_errors_total %d\n", s.sweepErrors.Load())
	jm := s.jobs.Metrics()
	fmt.Fprintf(w, "ovserve_jobs_submitted_total %d\n", jm.Submitted)
	fmt.Fprintf(w, "ovserve_jobs_shed_total %d\n", jm.Shed)
	fmt.Fprintf(w, "ovserve_jobs_done_total %d\n", jm.Done)
	fmt.Fprintf(w, "ovserve_jobs_failed_total %d\n", jm.Failed)
	fmt.Fprintf(w, "ovserve_jobs_canceled_total %d\n", jm.Canceled)
	fmt.Fprintf(w, "ovserve_jobs_preempted_total %d\n", jm.Preempted)
	fmt.Fprintf(w, "ovserve_jobs_queued %d\n", jm.Queued)
	fmt.Fprintf(w, "ovserve_jobs_running %d\n", jm.Running)
	fmt.Fprintf(w, "ovserve_checkpoints_saved_total %d\n", s.ckSaved.Load())
	fmt.Fprintf(w, "ovserve_checkpoints_resumed_total %d\n", s.ckResumed.Load())
	fmt.Fprintf(w, "ovserve_warm_preloaded %d\n", s.warmLoaded.Load())
	writeCacheMetrics(w, "result", s.results.MemStats())
	writeCacheMetrics(w, "trace", simcache.TraceStats())
	s.writeStoreMetrics(w)
	if om {
		// The OpenMetrics exposition is invalid without its terminator.
		fmt.Fprintf(w, "# EOF\n")
	}
}

func writeCacheMetrics(w http.ResponseWriter, name string, st simcache.Stats) {
	fmt.Fprintf(w, "ovserve_%s_cache_hits_total %d\n", name, st.Hits)
	fmt.Fprintf(w, "ovserve_%s_cache_misses_total %d\n", name, st.Misses)
	fmt.Fprintf(w, "ovserve_%s_cache_dedups_total %d\n", name, st.Dedups)
	fmt.Fprintf(w, "ovserve_%s_cache_evictions_total %d\n", name, st.Evictions)
	fmt.Fprintf(w, "ovserve_%s_cache_entries %d\n", name, st.Entries)
	fmt.Fprintf(w, "ovserve_%s_cache_bytes %d\n", name, st.Bytes)
}

// writeStoreMetrics renders the durable disk tier's gauges. The enabled
// flag is always present so dashboards can tell "no store" from "store
// with zero traffic"; the rest only when a store is configured.
func (s *Server) writeStoreMetrics(w http.ResponseWriter) {
	if s.store == nil {
		fmt.Fprintf(w, "ovserve_store_enabled 0\n")
		return
	}
	fmt.Fprintf(w, "ovserve_store_enabled 1\n")
	st := s.store.Stats()
	fmt.Fprintf(w, "ovserve_store_hits_total %d\n", st.Hits)
	fmt.Fprintf(w, "ovserve_store_misses_total %d\n", st.Misses)
	fmt.Fprintf(w, "ovserve_store_writes_total %d\n", st.Writes)
	fmt.Fprintf(w, "ovserve_store_write_errors_total %d\n", st.WriteErrors)
	fmt.Fprintf(w, "ovserve_store_corrupt_total %d\n", st.Corrupt)
	fmt.Fprintf(w, "ovserve_store_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(w, "ovserve_store_scrubbed_total %d\n", st.Scrubbed)
	fmt.Fprintf(w, "ovserve_store_quarantined_total %d\n", st.Corrupt)
	fmt.Fprintf(w, "ovserve_store_bytes %d\n", st.Bytes)
	fmt.Fprintf(w, "ovserve_store_files %d\n", st.Files)
}

// SimsRun returns the number of simulations executed (not served from
// cache) since startup — the counter behind ovserve_sims_total.
func (s *Server) SimsRun() int64 { return s.simsTotal.Load() }

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// decodeBody reads a size-limited JSON body, writing the error response
// itself on failure: 413 when the body exceeds MaxUploadBytes (the bound
// protecting the trace upload path), 400 for malformed JSON.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxUploadBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		}
		return false
	}
	return true
}
