package server

// Auth-gated net/http/pprof. Profiling an ovserve under production load is
// how a simulation-latency regression gets attributed (CPU profile of the
// step loop, heap profile of the caches), but the endpoints expose memory
// contents and process internals, so they are never open: with no auth
// token configured the route refuses outright with 403, and with one it
// sits behind the same bearer check as the API routes.

import (
	"net/http"
	"net/http/pprof"
	"strings"
)

// handlePprof dispatches to net/http/pprof's handlers. The sub-path
// selects the profile exactly as the default mux would: /debug/pprof/ is
// the index, cmdline/profile/symbol/trace are the special handlers, and
// any other name (heap, goroutine, allocs, block, mutex, threadcreate) is
// resolved by Index itself.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	if s.authToken == "" {
		httpError(w, http.StatusForbidden,
			"profiling is disabled: run ovserve with -auth-token to enable /debug/pprof")
		return
	}
	switch strings.TrimPrefix(r.URL.Path, "/debug/pprof/") {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}
