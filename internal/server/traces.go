package server

// The trace introspection routes: the in-process buffer of request span
// timelines recorded by internal/span, exposed as JSON for tooling and as
// Chrome trace-event ("Perfetto") JSON for humans. Both routes sit behind
// the standard gate+auth middleware — trace attributes carry result keys
// and request ids, so they are as sensitive as the request log.

import (
	"net/http"

	"oovec/internal/span"
)

// TracesResponse is the body of GET /v1/traces: buffered trace summaries,
// newest first, with the always-retained slowest traces merged in.
type TracesResponse struct {
	Traces []span.Summary `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		httpError(w, http.StatusNotFound, "tracing disabled (-trace-sample 0)")
		return
	}
	sums := s.tracer.List()
	if sums == nil {
		sums = []span.Summary{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: sums})
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		httpError(w, http.StatusNotFound, "tracing disabled (-trace-sample 0)")
		return
	}
	id := r.PathValue("id")
	rec, ok := s.tracer.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "trace %q not buffered (expired from the ring, or never sampled)", id)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, rec)
	case "perfetto":
		// Chrome trace-event JSON: save the body to a file and open it at
		// https://ui.perfetto.dev or chrome://tracing.
		w.Header().Set("Content-Type", "application/json")
		span.WritePerfetto(w, rec)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or perfetto)", format)
	}
}
