package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"oovec/internal/cli"
	"oovec/internal/isa"
	"oovec/internal/ooosim"
	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
)

// SweepRequest is the body of POST /v1/sweep: the grid surface of the
// ovsweep CLI. Results stream back as NDJSON, one sweep.Point per line, in
// exactly the row order ovsweep writes CSV — benchmarks in request order,
// REF latitudes before OOOVA (machine "both"), registers outer / latencies
// inner — regardless of how many workers the grid fans across.
type SweepRequest struct {
	// Bench lists benchmark preset names; every point of the grid runs on
	// every benchmark, in this order.
	Bench []string `json:"bench"`
	// Machine selects the grid: "ooo" (default), "ref" or "both".
	Machine string `json:"machine,omitempty"`
	// Regs are the physical vector register counts of the OOOVA grid
	// (default 9,12,16,32,64).
	Regs []int `json:"regs,omitempty"`
	// Lats are the memory latencies (default 1,50,100).
	Lats []int64 `json:"lats,omitempty"`
	// Commit and Elim fix the OOOVA commit policy and load-elimination mode
	// for the whole grid ("early"/"late", "none"/"sle"/"sle+vle").
	Commit string `json:"commit,omitempty"`
	Elim   string `json:"elim,omitempty"`
	// Insns overrides the per-benchmark instruction budget.
	Insns int `json:"insns,omitempty"`
}

// sweepDefaults mirrors the ovsweep flag defaults.
var (
	sweepDefaultRegs = []int{9, 12, 16, 32, 64}
	sweepDefaultLats = []int64{1, 50, 100}
)

// resolve validates the request and fills defaults.
func (req *SweepRequest) resolve() (base ooosim.Config, err error) {
	if len(req.Bench) == 0 {
		return base, errors.New("bench is required")
	}
	switch req.Machine {
	case "":
		req.Machine = "ooo"
	case "ref", "ooo", "both":
	default:
		return base, fmt.Errorf("unknown machine %q (ref | ooo | both)", req.Machine)
	}
	if len(req.Regs) == 0 {
		req.Regs = sweepDefaultRegs
	}
	if len(req.Lats) == 0 {
		req.Lats = sweepDefaultLats
	}
	if req.Machine != "ref" {
		for _, r := range req.Regs {
			if r <= isa.NumLogicalV {
				return base, fmt.Errorf("regs %d: the OOOVA needs more than %d physical vector registers", r, isa.NumLogicalV)
			}
		}
	}
	for _, l := range req.Lats {
		if l <= 0 {
			return base, fmt.Errorf("lats values must be positive, got %d", l)
		}
	}
	if req.Insns < 0 {
		return base, errors.New("insns must be non-negative")
	}
	base = ooosim.DefaultConfig()
	if base.Commit, err = cli.ParseCommit(req.Commit); err != nil {
		return base, err
	}
	if base.LoadElim, err = cli.ParseElim(req.Elim); err != nil {
		return base, err
	}
	return base, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	base, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve every preset before streaming: an unknown benchmark must be a
	// clean 400, not a mid-stream abort.
	presets := make([]tgen.Preset, len(req.Bench))
	for i, name := range req.Bench {
		p, ok := tgen.PresetByName(name)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown benchmark %q (see /v1/presets)", name)
			return
		}
		if req.Insns > 0 {
			p.Insns = req.Insns
		}
		presets[i] = p
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	row := 0
	emit := func(pts []sweep.Point) error {
		for i := range pts {
			if err := enc.Encode(&pts[i]); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			s.sweepRows.Add(1)
			if s.testHookSweepRow != nil {
				s.testHookSweepRow(row)
			}
			row++
		}
		return nil
	}
	// Per benchmark: generate (or share) the trace, fan the grid across the
	// engine pool, stream the rows. Grid points always simulate — the batch
	// endpoint trades the result cache for pooled-worker throughput — so
	// every point counts toward ovserve_sims_total.
	for _, p := range presets {
		tr := simcache.GenerateTrace(p)
		if req.Machine == "ref" || req.Machine == "both" {
			pts := sweep.RefGridWorkers(tr, req.Lats, s.workers)
			s.simsTotal.Add(int64(len(pts)))
			if err := emit(pts); err != nil {
				return // client went away; nothing useful left to do
			}
		}
		if req.Machine == "ooo" || req.Machine == "both" {
			pts := sweep.OOOGridWorkers(tr, base, req.Regs, req.Lats, s.workers)
			s.simsTotal.Add(int64(len(pts)))
			if err := emit(pts); err != nil {
				return
			}
		}
	}
}
