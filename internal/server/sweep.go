package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"oovec/internal/cli"
	"oovec/internal/engine"
	"oovec/internal/isa"
	"oovec/internal/ooosim"
	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
)

// SweepStatusTrailer is the HTTP trailer /v1/sweep sets once the stream
// ends. Streaming commits the 200 status before the grid runs, so the
// trailer is the only in-band place a terminal outcome fits: "ok" when
// every row was delivered, "error" when the stream was cut short by a
// failure or deadline (the last NDJSON line is then an {"error": ...}
// record), "canceled" when the client went away first.
const SweepStatusTrailer = "X-Ovserve-Sweep-Status"

// SweepRequestIDTrailer repeats the request id at the end of the stream, so
// a client that only kept the tail of a long NDJSON response (or a proxy
// log that strips headers) can still join the stream to the server log. The
// name is deliberately NOT RequestIDHeader: net/http removes any key
// declared in "Trailer" from the normal header section, so reusing
// X-Request-Id here would strip the id the middleware already set on the
// response headers.
const SweepRequestIDTrailer = "X-Ovserve-Sweep-Request-Id"

// sweepErrorRecord is the final NDJSON line of an aborted stream:
// distinguishable from sweep.Point rows by its "error" key, and carrying
// the request id so the record alone is enough to find the server-side
// "sweep aborted" log line.
type sweepErrorRecord struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: the grid surface of the
// ovsweep CLI. Results stream back as NDJSON, one sweep.Point per line, in
// exactly the row order ovsweep writes CSV — benchmarks in request order,
// REF latitudes before OOOVA (machine "both"), registers outer / latencies
// inner — regardless of how many workers the grid fans across.
type SweepRequest struct {
	// Bench lists benchmark preset names; every point of the grid runs on
	// every benchmark, in this order.
	Bench []string `json:"bench"`
	// Machine selects the grid: "ooo" (default), "ref" or "both".
	Machine string `json:"machine,omitempty"`
	// Regs are the physical vector register counts of the OOOVA grid
	// (default 9,12,16,32,64).
	Regs []int `json:"regs,omitempty"`
	// Lats are the memory latencies (default 1,50,100).
	Lats []int64 `json:"lats,omitempty"`
	// Commit and Elim fix the OOOVA commit policy and load-elimination mode
	// for the whole grid ("early"/"late", "none"/"sle"/"sle+vle").
	Commit string `json:"commit,omitempty"`
	Elim   string `json:"elim,omitempty"`
	// Insns overrides the per-benchmark instruction budget.
	Insns int `json:"insns,omitempty"`
}

// sweepDefaults mirrors the ovsweep flag defaults.
var (
	sweepDefaultRegs = []int{9, 12, 16, 32, 64}
	sweepDefaultLats = []int64{1, 50, 100}
)

// resolve validates the request and fills defaults.
func (req *SweepRequest) resolve() (base ooosim.Config, err error) {
	if len(req.Bench) == 0 {
		return base, errors.New("bench is required")
	}
	switch req.Machine {
	case "":
		req.Machine = "ooo"
	case "ref", "ooo", "both":
	default:
		return base, fmt.Errorf("unknown machine %q (ref | ooo | both)", req.Machine)
	}
	if len(req.Regs) == 0 {
		req.Regs = sweepDefaultRegs
	}
	if len(req.Lats) == 0 {
		req.Lats = sweepDefaultLats
	}
	if req.Machine != "ref" {
		for _, r := range req.Regs {
			if r <= isa.NumLogicalV {
				return base, fmt.Errorf("regs %d: the OOOVA needs more than %d physical vector registers", r, isa.NumLogicalV)
			}
		}
	}
	for _, l := range req.Lats {
		if l <= 0 {
			return base, fmt.Errorf("lats values must be positive, got %d", l)
		}
	}
	if req.Insns < 0 {
		return base, errors.New("insns must be non-negative")
	}
	base = ooosim.DefaultConfig()
	if base.Commit, err = cli.ParseCommit(req.Commit); err != nil {
		return base, err
	}
	if base.LoadElim, err = cli.ParseElim(req.Elim); err != nil {
		return base, err
	}
	return base, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	base, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve every preset before streaming: an unknown benchmark must be a
	// clean 400, not a mid-stream abort.
	presets := make([]tgen.Preset, len(req.Bench))
	for i, name := range req.Bench {
		p, ok := tgen.PresetByName(name)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown benchmark %q (see /v1/presets)", name)
			return
		}
		if req.Insns > 0 {
			p.Insns = req.Insns
		}
		presets[i] = p
	}

	w.Header().Set("Trailer", SweepStatusTrailer)
	w.Header().Add("Trailer", SweepRequestIDTrailer)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	row := 0
	clientGone := false
	emit := func(pts []sweep.Point) {
		for i := range pts {
			if err := enc.Encode(&pts[i]); err != nil {
				clientGone = true
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			s.sweepRows.Add(1)
			if s.testHookSweepRow != nil {
				s.testHookSweepRow(row)
			}
			row++
		}
	}

	// Per benchmark: generate (or share) the trace, fan the grid across the
	// engine pool, stream the rows. Every grid point goes through the same
	// content-addressed result cache as /v1/sim (sweep.Opts.Cache), so a
	// repeated sweep is a streamed sequence of cache hits running zero new
	// simulations, an overlapping sweep only simulates its delta, and only
	// actual simulations count toward ovserve_sims_total. The request
	// context cancels the grid between points: a dropped client or an
	// expired Opts.Timeout deadline stops burning workers.
	opts := sweep.Opts{
		Workers: s.workers,
		Cache:   s.results,
		Ctx:     r.Context(),
		OnSim: func() {
			s.simsTotal.Add(1)
			if s.testHookSweepSim != nil {
				s.testHookSweepSim()
			}
		},
	}
	err = s.streamSweep(&req, base, presets, opts, emit, &clientGone)

	// Streaming committed the 200 long ago, so the terminal outcome rides
	// in the trailer — plus, when someone is still listening, a final
	// NDJSON error record, distinguishable from sweep.Point rows by its
	// "error" key.
	rid := RequestID(r.Context())
	w.Header().Set(SweepRequestIDTrailer, rid)
	switch {
	// clientGone outranks err == nil: a write failure mid-stream returns a
	// nil grid error but the truncated stream is anything but "ok".
	case clientGone || errors.Is(err, context.Canceled):
		w.Header().Set(SweepStatusTrailer, "canceled")
	case err == nil:
		w.Header().Set(SweepStatusTrailer, "ok")
	default:
		s.sweepErrors.Add(1)
		// The terminal error rode out in a trailer and one NDJSON line the
		// client may never read; the log line is the operator's copy.
		if s.log != nil {
			s.log.Error("sweep aborted",
				"request_id", rid,
				"rows", row,
				"error", err.Error())
		}
		enc.Encode(sweepErrorRecord{
			Error:     fmt.Sprintf("sweep aborted after %d rows: %v", row, err),
			RequestID: rid,
		})
		if flusher != nil {
			flusher.Flush()
		}
		w.Header().Set(SweepStatusTrailer, "error")
	}
}

// streamSweep runs the request's grids and streams their rows, converting a
// panicking grid point (engine.WorkerPanic from the pool, or a native panic
// from a serial grid) into an error so the handler can report it in-stream
// instead of tearing the connection down mid-NDJSON.
func (s *Server) streamSweep(req *SweepRequest, base ooosim.Config, presets []tgen.Preset,
	opts sweep.Opts, emit func([]sweep.Point), clientGone *bool) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if wp, ok := rec.(engine.WorkerPanic); ok {
				err = fmt.Errorf("grid point %d failed: %v", wp.Index, wp.Value)
			} else {
				err = fmt.Errorf("grid point failed: %v", rec)
			}
		}
	}()
	for _, p := range presets {
		tr := simcache.GenerateTrace(p)
		opts.TraceKey = simcache.PresetKey(p)
		if req.Machine == "ref" || req.Machine == "both" {
			pts, err := sweep.RefGridOpts(tr, req.Lats, opts)
			if err != nil {
				return err
			}
			if emit(pts); *clientGone {
				return nil
			}
		}
		if req.Machine == "ooo" || req.Machine == "both" {
			pts, err := sweep.OOOGridOpts(tr, base, req.Regs, req.Lats, opts)
			if err != nil {
				return err
			}
			if emit(pts); *clientGone {
				return nil
			}
		}
	}
	return nil
}
