package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"oovec/internal/span"
)

// newTracedServer builds a server that samples every request into the
// trace buffer, which newTestServer deliberately does not (TraceSample 0
// keeps the rest of the suite on the allocation-free nil-tracer path).
func newTracedServer(t *testing.T) *Server {
	t.Helper()
	return New(Opts{Workers: 2, TraceSample: 1})
}

// postTraced is post with a caller-injected W3C traceparent header.
func postTraced(t *testing.T, s *Server, path, traceparent string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	req.Header.Set(span.TraceparentHeader, traceparent)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// fetchTrace pulls one buffered trace out of /v1/traces/{id}.
func fetchTrace(t *testing.T, s *Server, id string) span.TraceRec {
	t.Helper()
	rec := get(t, s, "/v1/traces/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s status %d: %s", id, rec.Code, rec.Body)
	}
	var tr span.TraceRec
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// spansNamed returns every span in the trace with the given name.
func spansNamed(tr span.TraceRec, name string) []span.SpanRec {
	var out []span.SpanRec
	for _, sp := range tr.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// attrValue returns the named attribute of a span, or "" when absent.
func attrValue(sp span.SpanRec, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTraceJoinsTraceparent is the end-to-end timeline contract: a /v1/sim
// request carrying a W3C traceparent is recorded under the caller's trace
// id (echoed in X-Trace-Id), the cold timeline descends route root ->
// cache.resolve -> simulate with correct parentage, and the warm repeat
// resolves from the memory tier with no simulate span at all.
func TestTraceJoinsTraceparent(t *testing.T) {
	s := newTracedServer(t)
	const coldID = "aaaabbbbccccddddaaaabbbbccccdddd"
	const warmID = "11112222333344441111222233334444"
	req := SimRequest{Bench: "swm256", Insns: testInsns, Config: SimConfig{VRegs: 32}}

	rec := postTraced(t, s, "/v1/sim", tp(coldID), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold sim status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(TraceIDHeader); got != coldID {
		t.Fatalf("X-Trace-Id = %q, want the injected trace id %q", got, coldID)
	}
	rec = postTraced(t, s, "/v1/sim", tp(warmID), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm sim status %d: %s", rec.Code, rec.Body)
	}

	// Both timelines are listed.
	lrec := get(t, s, "/v1/traces")
	if lrec.Code != http.StatusOK {
		t.Fatalf("GET /v1/traces status %d: %s", lrec.Code, lrec.Body)
	}
	var list TracesResponse
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, sum := range list.Traces {
		listed[sum.TraceID] = true
	}
	if !listed[coldID] || !listed[warmID] {
		t.Fatalf("trace listing %v misses injected ids %s / %s", list.Traces, coldID, warmID)
	}

	// Cold: root(route) -> cache.resolve(tier=simulate) -> simulate.
	cold := fetchTrace(t, s, coldID)
	if cold.Name != "/v1/sim" {
		t.Errorf("cold trace root name %q, want /v1/sim", cold.Name)
	}
	if len(cold.Spans) == 0 || cold.Spans[0].Name != "/v1/sim" {
		t.Fatalf("cold trace has no route root span: %+v", cold.Spans)
	}
	root := cold.Spans[0]
	// The root's parent is the caller's span id from the traceparent (1 in
	// tp()), preserving the cross-process edge for trace assembly.
	if root.Parent != 1 {
		t.Errorf("root span parent = %d, want the injected caller span id 1", root.Parent)
	}
	if attrValue(root, "request_id") == "" || attrValue(root, "method") != "POST" {
		t.Errorf("root span attrs = %+v, want request_id and method=POST", root.Attrs)
	}
	resolves := spansNamed(cold, "cache.resolve")
	if len(resolves) != 1 {
		t.Fatalf("cold trace has %d cache.resolve spans, want 1: %+v", len(resolves), cold.Spans)
	}
	if resolves[0].Parent != root.ID {
		t.Errorf("cache.resolve parent = %d, want the root span %d", resolves[0].Parent, root.ID)
	}
	if tier := attrValue(resolves[0], "tier"); tier != "simulate" {
		t.Errorf("cold cache.resolve tier = %q, want simulate", tier)
	}
	sims := spansNamed(cold, "simulate")
	if len(sims) != 1 {
		t.Fatalf("cold trace has %d simulate spans, want 1: %+v", len(sims), cold.Spans)
	}
	if sims[0].Parent != resolves[0].ID {
		t.Errorf("simulate parent = %d, want cache.resolve %d", sims[0].Parent, resolves[0].ID)
	}
	if sims[0].StartNs < resolves[0].StartNs ||
		sims[0].StartNs+sims[0].DurNs > resolves[0].StartNs+resolves[0].DurNs {
		t.Errorf("simulate [%d,+%d] not nested inside cache.resolve [%d,+%d]",
			sims[0].StartNs, sims[0].DurNs, resolves[0].StartNs, resolves[0].DurNs)
	}

	// Warm: the memory tier answers, the simulator is never entered.
	warm := fetchTrace(t, s, warmID)
	if sims := spansNamed(warm, "simulate"); len(sims) != 0 {
		t.Errorf("warm trace contains %d simulate spans, want 0", len(sims))
	}
	resolves = spansNamed(warm, "cache.resolve")
	if len(resolves) != 1 {
		t.Fatalf("warm trace has %d cache.resolve spans, want 1: %+v", len(resolves), warm.Spans)
	}
	if tier := attrValue(resolves[0], "tier"); tier != "memory" {
		t.Errorf("warm cache.resolve tier = %q, want memory", tier)
	}
}

// tp builds a sampled W3C traceparent header for a 32-hex trace id.
func tp(id string) string {
	return "00-" + id + "-0000000000000001-01"
}

// TestTracePerfettoExport locks the export surface: ?format=perfetto
// returns Chrome trace-event JSON with one complete event per span, and an
// unknown format is a 400, not a silent default.
func TestTracePerfettoExport(t *testing.T) {
	s := newTracedServer(t)
	post(t, s, "/v1/sim", SimRequest{Bench: "swm256", Insns: testInsns})

	lrec := get(t, s, "/v1/traces")
	var list TracesResponse
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("no trace buffered after a sampled request")
	}
	id := list.Traces[0].TraceID

	rec := get(t, s, "/v1/traces/"+id+"?format=perfetto")
	if rec.Code != http.StatusOK {
		t.Fatalf("perfetto status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("perfetto Content-Type %q, want application/json", ct)
	}
	var export struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &export); err != nil {
		t.Fatalf("perfetto body is not trace-event JSON: %v\n%s", err, rec.Body)
	}
	tr := fetchTrace(t, s, id)
	complete := 0
	for _, ev := range export.TraceEvents {
		if ev.Phase == "X" {
			complete++
		}
	}
	if complete != len(tr.Spans) {
		t.Errorf("perfetto export has %d complete events, trace has %d spans", complete, len(tr.Spans))
	}

	rec = get(t, s, "/v1/traces/"+id+"?format=pprof")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown format status %d, want 400", rec.Code)
	}
}

// TestTracesDisabled: with TraceSample 0 (the default, and newTestServer's
// configuration) the trace routes answer 404 and responses carry no
// X-Trace-Id — the feature is absent, not half-on.
func TestTracesDisabled(t *testing.T) {
	s := newTestServer(t)
	rec := postTraced(t, s, "/v1/sim",
		tp("aaaabbbbccccddddaaaabbbbccccdddd"),
		SimRequest{Bench: "swm256", Insns: testInsns})
	if rec.Code != http.StatusOK {
		t.Fatalf("sim status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(TraceIDHeader); got != "" {
		t.Errorf("X-Trace-Id = %q with tracing disabled, want unset", got)
	}
	if rec := get(t, s, "/v1/traces"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /v1/traces status %d with tracing disabled, want 404", rec.Code)
	}
	if rec := get(t, s, "/v1/traces/aaaabbbbccccddddaaaabbbbccccdddd"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /v1/traces/{id} status %d with tracing disabled, want 404", rec.Code)
	}
}

// TestTraceUnknownID: an id that was never buffered is a 404 with tracing
// enabled too.
func TestTraceUnknownID(t *testing.T) {
	s := newTracedServer(t)
	rec := get(t, s, "/v1/traces/ffffffffffffffffffffffffffffffff")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace id status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "not buffered") {
		t.Errorf("unknown trace id error %q does not say why", rec.Body)
	}
}

// TestRefusedRequestNotTraced: the root span starts only after the drain
// and auth refusals, so an unauthenticated client spamming sampled
// traceparents cannot churn the bounded trace ring or stamp its trace ids
// onto the refusal exemplars — a 401 carries no X-Trace-Id and buffers
// nothing.
func TestRefusedRequestNotTraced(t *testing.T) {
	s := New(Opts{Workers: 1, AuthToken: "s3cret", TraceSample: 1})
	const evilID = "eeeeffff0000111122223333eeeeffff"
	rec := postTraced(t, s, "/v1/sim", tp(evilID), SimRequest{Bench: "swm256", Insns: testInsns})
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated sim status %d, want 401", rec.Code)
	}
	if got := rec.Header().Get(TraceIDHeader); got != "" {
		t.Errorf("401 response carries X-Trace-Id %q, want none", got)
	}
	if _, ok := s.tracer.Get(evilID); ok {
		t.Error("refused request's traceparent landed in the trace buffer")
	}
	if got := len(s.tracer.List()); got != 0 {
		t.Errorf("%d traces buffered by refused requests, want 0", got)
	}

	// Control: the same request with credentials is traced under its id.
	req := httptest.NewRequest("POST", "/v1/sim",
		strings.NewReader(`{"bench":"swm256","insns":`+strconv.Itoa(testInsns)+`}`))
	req.Header.Set("Authorization", "Bearer s3cret")
	req.Header.Set(span.TraceparentHeader, tp(evilID))
	authed := httptest.NewRecorder()
	s.Handler().ServeHTTP(authed, req)
	if authed.Code != http.StatusOK {
		t.Fatalf("authenticated sim status %d: %s", authed.Code, authed.Body)
	}
	if got := authed.Header().Get(TraceIDHeader); got != evilID {
		t.Errorf("authenticated X-Trace-Id = %q, want %q", got, evilID)
	}
	if _, ok := s.tracer.Get(evilID); !ok {
		t.Error("authenticated traced request missing from the buffer")
	}
}

// TestReplayedTraceparentReMinted: a client replaying one traceparent
// across requests gets a fresh trace id on every request after the first,
// so X-Trace-Id always names exactly one buffered timeline; the replayed
// id is kept as the root span's client_trace_id attribute.
func TestReplayedTraceparentReMinted(t *testing.T) {
	s := newTracedServer(t)
	const id = "aaaabbbbccccddddaaaabbbbccccdddd"
	req := SimRequest{Bench: "swm256", Insns: testInsns, Config: SimConfig{VRegs: 32}}

	first := postTraced(t, s, "/v1/sim", tp(id), req)
	if first.Code != http.StatusOK {
		t.Fatalf("first sim status %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get(TraceIDHeader); got != id {
		t.Fatalf("first X-Trace-Id = %q, want the injected id %q", got, id)
	}

	second := postTraced(t, s, "/v1/sim", tp(id), req)
	if second.Code != http.StatusOK {
		t.Fatalf("second sim status %d: %s", second.Code, second.Body)
	}
	minted := second.Header().Get(TraceIDHeader)
	if minted == "" || minted == id {
		t.Fatalf("replayed traceparent not re-minted: X-Trace-Id = %q", minted)
	}
	reMinted := fetchTrace(t, s, minted)
	if len(reMinted.Spans) == 0 {
		t.Fatal("re-minted trace has no spans")
	}
	if got := attrValue(reMinted.Spans[0], "client_trace_id"); got != id {
		t.Errorf("re-minted root client_trace_id = %q, want the replayed id %q", got, id)
	}
	// The original id still resolves to the first request's timeline.
	if orig := fetchTrace(t, s, id); len(spansNamed(orig, "simulate")) != 1 {
		t.Errorf("original trace id no longer names the first (cold) timeline: %+v", orig.Spans)
	}
}

// TestTracedSimByteIdentical is the observation-only contract at the API
// surface: for both machines, a traced server and an untraced server must
// produce byte-identical /v1/sim bodies for the same request.
func TestTracedSimByteIdentical(t *testing.T) {
	for _, machine := range []string{"ooo", "ref"} {
		req := SimRequest{Bench: "swm256", Insns: testInsns, Machine: machine}
		traced := postTraced(t, newTracedServer(t), "/v1/sim",
			span.Traceparent(span.NewTraceID(), 1, true), req)
		plain := post(t, newTestServer(t), "/v1/sim", req)
		if traced.Code != http.StatusOK || plain.Code != http.StatusOK {
			t.Fatalf("machine %s: status traced %d / untraced %d", machine, traced.Code, plain.Code)
		}
		if !bytes.Equal(traced.Body.Bytes(), plain.Body.Bytes()) {
			t.Errorf("machine %s: traced body differs from untraced:\n%s\n%s",
				machine, traced.Body, plain.Body)
		}
	}
}
