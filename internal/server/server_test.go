package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/simcache"
	"oovec/internal/sweep"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

// testInsns keeps handler-test simulations fast.
const testInsns = 1000

func newTestServer(t *testing.T) *Server {
	t.Helper()
	return New(Opts{Workers: 2})
}

// post drives one request through the handler stack and returns the
// recorder.
func post(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// metricValue scrapes one counter out of the /metrics exposition.
func metricValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	body := get(t, s, "/metrics").Body.String()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSimGoldenJSON locks the /v1/sim response down to the byte: the body
// must be exactly the JSON encoding of (key, cached, metrics) where metrics
// is the same RunStats the library API returns — the server adds transport,
// never arithmetic.
func TestSimGoldenJSON(t *testing.T) {
	s := newTestServer(t)
	req := SimRequest{
		Bench:   "swm256",
		Insns:   testInsns,
		Machine: "ooo",
		Config:  SimConfig{VRegs: 32, Latency: 20, Commit: "late", Elim: "sle"},
	}

	rec := post(t, s, "/v1/sim", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}

	// The golden body, built from first principles: the canonical cache key
	// and a direct library-API simulation.
	p, _ := tgen.PresetByName("swm256")
	p.Insns = testInsns
	cfg, err := req.Config.toOOO()
	if err != nil {
		t.Fatal(err)
	}
	want := SimResponse{
		Key:     simcache.ResultKey(simcache.OOOConfigKey(cfg), simcache.PresetKey(p)),
		Cached:  false,
		Metrics: ooosim.Run(tgen.Generate(p), cfg).Stats,
	}
	golden, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(rec.Body.String(), "\n"); got != string(golden) {
		t.Errorf("response body:\n%s\nwant golden:\n%s", got, golden)
	}
}

// TestSimCacheHitRunsZeroSims is the acceptance criterion: a repeated
// identical request is a cache hit that performs zero new simulations,
// observed through the ovserve_sims_total counter in /metrics.
func TestSimCacheHitRunsZeroSims(t *testing.T) {
	s := newTestServer(t)
	req := SimRequest{Bench: "trfd", Insns: testInsns}

	rec := post(t, s, "/v1/sim", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var first SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached=true")
	}
	if n := metricValue(t, s, "ovserve_sims_total"); n != 1 {
		t.Fatalf("sims_total = %d after first request, want 1", n)
	}

	rec = post(t, s, "/v1/sim", req)
	var second SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeated request was not a cache hit")
	}
	if second.Key != first.Key {
		t.Errorf("key changed across identical requests: %s vs %s", first.Key, second.Key)
	}
	if !reflect.DeepEqual(first.Metrics, second.Metrics) {
		t.Error("cached metrics differ from the original run")
	}
	if n := metricValue(t, s, "ovserve_sims_total"); n != 1 {
		t.Errorf("sims_total = %d after repeat, want 1 (cache hit must run zero simulations)", n)
	}
	if hits := metricValue(t, s, "ovserve_result_cache_hits_total"); hits != 1 {
		t.Errorf("result cache hits = %d, want 1", hits)
	}
}

// TestSimConfigDefaultsShareEntry: omitted fields and explicit paper
// defaults are the same simulation, so they must share one cache entry.
func TestSimConfigDefaultsShareEntry(t *testing.T) {
	s := newTestServer(t)
	implicit := post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns})
	explicit := post(t, s, "/v1/sim", SimRequest{
		Bench: "trfd", Insns: testInsns,
		Config: SimConfig{VRegs: 16, Queues: 16, Latency: 50, Commit: "early", Elim: "none"},
	})
	var a, b SimResponse
	json.Unmarshal(implicit.Body.Bytes(), &a)
	json.Unmarshal(explicit.Body.Bytes(), &b)
	if a.Key != b.Key {
		t.Errorf("defaulted and explicit configs got different keys: %s vs %s", a.Key, b.Key)
	}
	if !b.Cached {
		t.Error("explicit-defaults request missed the cache")
	}
}

// TestSimRefMachine checks the reference-machine path against the library
// API.
func TestSimRefMachine(t *testing.T) {
	s := newTestServer(t)
	rec := post(t, s, "/v1/sim", SimRequest{
		Bench: "bdna", Insns: testInsns, Machine: "ref",
		Config: SimConfig{Latency: 20},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	p, _ := tgen.PresetByName("bdna")
	p.Insns = testInsns
	cfg := refsim.DefaultConfig()
	cfg.MemLatency = 20
	want := refsim.Run(tgen.Generate(p), cfg)
	if !reflect.DeepEqual(resp.Metrics, want) {
		t.Errorf("ref metrics differ from direct run:\ngot  %+v\nwant %+v", resp.Metrics, want)
	}
}

// TestSimUploadedTrace round-trips an OVTR upload: the served metrics must
// equal a direct simulation of the same trace, and re-uploading identical
// bytes must hit the content-addressed cache.
func TestSimUploadedTrace(t *testing.T) {
	s := newTestServer(t)
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = testInsns
	tr := tgen.Generate(p)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}

	req := SimRequest{Trace: buf.Bytes(), Config: SimConfig{VRegs: 12}}
	rec := post(t, s, "/v1/sim", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	cfg := ooosim.DefaultConfig()
	cfg.PhysVRegs = 12
	want := ooosim.Run(tr, cfg).Stats
	if !reflect.DeepEqual(resp.Metrics, want) {
		t.Errorf("uploaded-trace metrics differ from direct run")
	}

	rec = post(t, s, "/v1/sim", req)
	var again SimResponse
	json.Unmarshal(rec.Body.Bytes(), &again)
	if !again.Cached {
		t.Error("re-uploading identical trace bytes missed the content-addressed cache")
	}
}

// TestSweepNDJSON is the ovsweep parity test: the streamed rows must decode
// to exactly the points the sweep grids produce serially — same values,
// same order — which makes the NDJSON byte-convertible to the CLI's CSV.
func TestSweepNDJSON(t *testing.T) {
	s := newTestServer(t)
	req := SweepRequest{
		Bench:   []string{"swm256", "trfd"},
		Machine: "both",
		Regs:    []int{12, 16},
		Lats:    []int64{1, 20},
		Insns:   testInsns,
	}
	rec := post(t, s, "/v1/sweep", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	var got []sweep.Point
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var p sweep.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("decoding row %d: %v", len(got), err)
		}
		got = append(got, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// The reference: the exact grids ovsweep runs, serially.
	var want []sweep.Point
	base := ooosim.DefaultConfig()
	for _, name := range req.Bench {
		p, _ := tgen.PresetByName(name)
		p.Insns = testInsns
		tr := tgen.Generate(p)
		want = append(want, sweep.RefGrid(tr, req.Lats)...)
		want = append(want, sweep.OOOGrid(tr, base, req.Regs, req.Lats)...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweep rows differ from serial CLI grids:\ngot  %d rows %+v\nwant %d rows %+v",
			len(got), got, len(want), want)
	}

	// And therefore the CSV renderings are byte-identical.
	var gotCSV, wantCSV bytes.Buffer
	if err := sweep.WriteCSV(&gotCSV, got); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteCSV(&wantCSV, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Error("CSV rendering of streamed rows differs from the CLI's")
	}

	if rows := metricValue(t, s, "ovserve_sweep_rows_total"); rows != int64(len(want)) {
		t.Errorf("sweep_rows_total = %d, want %d", rows, len(want))
	}
}

// TestSimSingleflight drives concurrent identical requests at the handler
// and asserts exactly one simulation runs — the singleflight guarantee,
// meaningful under -race.
func TestSimSingleflight(t *testing.T) {
	s := newTestServer(t)
	req := SimRequest{Bench: "su2cor", Insns: testInsns}

	const goroutines = 16
	var wg sync.WaitGroup
	responses := make([]SimResponse, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := post(t, s, "/v1/sim", req)
			if rec.Code != http.StatusOK {
				t.Errorf("goroutine %d: status %d", g, rec.Code)
				return
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &responses[g]); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()

	if n := s.SimsRun(); n != 1 {
		t.Errorf("%d simulations ran for %d concurrent identical requests, want 1", n, goroutines)
	}
	fillers := 0
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(responses[g].Metrics, responses[0].Metrics) {
			t.Errorf("goroutine %d saw different metrics", g)
		}
		if !responses[g].Cached {
			fillers++
		}
	}
	if !responses[0].Cached {
		fillers++
	}
	if fillers != 1 {
		t.Errorf("%d responses reported cached=false, want exactly 1", fillers)
	}
}

func TestPresetsAndHealthz(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status %d", rec.Code)
	}
	rec = get(t, s, "/v1/presets")
	if rec.Code != http.StatusOK {
		t.Fatalf("presets status %d", rec.Code)
	}
	var ps []tgen.Preset
	if err := json.Unmarshal(rec.Body.Bytes(), &ps); err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(tgen.Presets()) {
		t.Errorf("presets returned %d entries, want %d", len(ps), len(tgen.Presets()))
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name string
		req  SimRequest
	}{
		{"no input", SimRequest{}},
		{"unknown bench", SimRequest{Bench: "nosuch"}},
		{"both inputs", SimRequest{Bench: "trfd", Trace: []byte("OVTR")}},
		{"bad machine", SimRequest{Bench: "trfd", Machine: "vliw"}},
		{"too few vregs", SimRequest{Bench: "trfd", Config: SimConfig{VRegs: 4}}},
		{"negative latency", SimRequest{Bench: "trfd", Config: SimConfig{Latency: -1}}},
		{"bad commit", SimRequest{Bench: "trfd", Config: SimConfig{Commit: "sideways"}}},
		{"ooo fields on ref", SimRequest{Bench: "trfd", Machine: "ref", Config: SimConfig{VRegs: 16}}},
		{"corrupt upload", SimRequest{Trace: []byte("not an OVTR trace")}},
	}
	for _, tc := range cases {
		if rec := post(t, s, "/v1/sim", tc.req); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, rec.Code, rec.Body)
		}
	}
	if rec := post(t, s, "/v1/sweep", SweepRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/v1/sweep", SweepRequest{Bench: []string{"trfd"}, Lats: []int64{0}}); rec.Code != http.StatusBadRequest {
		t.Errorf("zero latency sweep: status %d, want 400", rec.Code)
	}
	// Method mismatches.
	if rec := get(t, s, "/v1/sim"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sim: status %d, want 405", rec.Code)
	}
}

// TestUploadTooLarge bounds the upload path.
func TestUploadTooLarge(t *testing.T) {
	s := New(Opts{MaxUploadBytes: 1024})
	big := SimRequest{Trace: bytes.Repeat([]byte{0xab}, 4096)}
	rec := post(t, s, "/v1/sim", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", rec.Code)
	}
}

// TestUploadInsnLimit: a trace whose header claims more instructions than
// the configured bound is rejected cleanly.
func TestUploadInsnLimit(t *testing.T) {
	s := New(Opts{TraceLimits: trace.Limits{MaxInsns: 10}})
	p, _ := tgen.PresetByName("swm256")
	p.Insns = 500
	var buf bytes.Buffer
	if err := trace.Write(&buf, tgen.Generate(p)); err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/v1/sim", SimRequest{Trace: buf.Bytes()})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d, want 400", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "limit") {
		t.Errorf("error %q does not mention the limit", e.Error)
	}
}
