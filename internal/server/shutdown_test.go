package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestGracefulShutdown holds a sweep in flight, drains the server, and
// asserts the three shutdown guarantees: new requests get 503 immediately,
// the in-flight sweep runs to completion with every row delivered, and
// Drain returns only after it has.
func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t)
	firstRow := make(chan struct{})
	release := make(chan struct{})
	s.testHookSweepRow = func(row int) {
		if row == 0 {
			close(firstRow)
			<-release
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SweepRequest{
		Bench: []string{"swm256"},
		Regs:  []int{12, 16},
		Lats:  []int64{1, 20},
		Insns: testInsns,
	}
	const wantRows = 4
	body, _ := json.Marshal(req)

	type sweepResult struct {
		status int
		rows   int
		err    error
	}
	sweepDone := make(chan sweepResult, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			sweepDone <- sweepResult{err: err}
			return
		}
		defer resp.Body.Close()
		rows := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			rows++
		}
		sweepDone <- sweepResult{status: resp.StatusCode, rows: rows, err: sc.Err()}
	}()

	<-firstRow // the sweep is now provably in flight

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()

	// Drain flips the flag before waiting, so once /healthz reports
	// draining, new API requests must be refused.
	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	}, "healthz to report draining")

	resp, err := http.Post(ts.URL+"/v1/sim", "application/json",
		bytes.NewReader([]byte(`{"bench":"trfd","insns":1000}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request during drain got %d, want 503", resp.StatusCode)
	}

	// Drain must still be blocked on the in-flight sweep.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) while a sweep was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)

	res := <-sweepDone
	if res.err != nil {
		t.Fatalf("in-flight sweep failed: %v", res.err)
	}
	if res.status != http.StatusOK || res.rows != wantRows {
		t.Errorf("in-flight sweep finished with status %d and %d rows, want 200 and %d",
			res.status, res.rows, wantRows)
	}
	if err := <-drainDone; err != nil {
		t.Errorf("Drain returned %v, want nil", err)
	}
}
