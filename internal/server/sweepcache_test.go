package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestSweepWarmServedEntirelyFromCache is the acceptance criterion of the
// sweep-point cache: repeating an identical /v1/sweep request must stream
// byte-identical NDJSON while running zero new simulations — every grid
// point is a hit on the same content-addressed cache /v1/sim uses.
func TestSweepWarmServedEntirelyFromCache(t *testing.T) {
	s := newTestServer(t)
	req := SweepRequest{
		Bench:   []string{"swm256", "trfd"},
		Machine: "both",
		Regs:    []int{12, 16},
		Lats:    []int64{1, 20},
		Insns:   testInsns,
	}

	cold := post(t, s, "/v1/sweep", req)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", cold.Code, cold.Body)
	}
	coldSims := s.SimsRun()
	// 2 benches × (2 REF lats + 2×2 OOO points) = 12 distinct simulations.
	if coldSims != 12 {
		t.Fatalf("cold sweep ran %d sims, want 12", coldSims)
	}
	if tr := cold.Result().Trailer.Get(SweepStatusTrailer); tr != "ok" {
		t.Errorf("cold sweep %s trailer = %q, want \"ok\"", SweepStatusTrailer, tr)
	}

	warm := post(t, s, "/v1/sweep", req)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm sweep status %d: %s", warm.Code, warm.Body)
	}
	if got := s.SimsRun(); got != coldSims {
		t.Errorf("warm sweep ran %d new simulations, want 0 (ovserve_sims_total %d → %d)",
			got-coldSims, coldSims, got)
	}
	if !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Error("warm sweep NDJSON differs from the cold run's bytes")
	}
	if n := metricValue(t, s, "ovserve_sims_total"); n != coldSims {
		t.Errorf("ovserve_sims_total = %d after warm sweep, want %d", n, coldSims)
	}
}

// TestSweepOverlapSimulatesOnlyDelta: a superset grid over a warm server
// only simulates the points it has never served.
func TestSweepOverlapSimulatesOnlyDelta(t *testing.T) {
	s := newTestServer(t)
	small := SweepRequest{Bench: []string{"swm256"}, Regs: []int{12}, Lats: []int64{1, 20}, Insns: testInsns}
	post(t, s, "/v1/sweep", small)
	if got := s.SimsRun(); got != 2 {
		t.Fatalf("small sweep ran %d sims, want 2", got)
	}
	super := small
	super.Regs = []int{12, 16}
	post(t, s, "/v1/sweep", super)
	if got := s.SimsRun(); got != 4 {
		t.Errorf("superset sweep brought sims_total to %d, want 4 (only the 16-reg delta simulates)", got)
	}
}

// TestSweepSharesCacheWithSim: the same (configuration, trace) served as a
// single simulation and as a sweep grid point is one cache entry, in both
// directions.
func TestSweepSharesCacheWithSim(t *testing.T) {
	s := newTestServer(t)
	// /v1/sim first; the matching sweep point must not re-simulate.
	post(t, s, "/v1/sim", SimRequest{
		Bench: "trfd", Insns: testInsns,
		Config: SimConfig{VRegs: 12, Latency: 20},
	})
	if got := s.SimsRun(); got != 1 {
		t.Fatalf("sim ran %d sims, want 1", got)
	}
	post(t, s, "/v1/sweep", SweepRequest{
		Bench: []string{"trfd"}, Regs: []int{12}, Lats: []int64{1, 20}, Insns: testInsns,
	})
	if got := s.SimsRun(); got != 2 {
		t.Errorf("sweep brought sims_total to %d, want 2 (the lat=20 point must hit /v1/sim's entry)", got)
	}
	// And the reverse: the sweep's lat=1 point now backs /v1/sim.
	rec := post(t, s, "/v1/sim", SimRequest{
		Bench: "trfd", Insns: testInsns,
		Config: SimConfig{VRegs: 12, Latency: 1},
	})
	var resp SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("/v1/sim missed the cache entry its sweep point filled")
	}
	if got := s.SimsRun(); got != 2 {
		t.Errorf("sims_total = %d, want 2", got)
	}
}

// TestSweepClientDisconnectStopsSims is the cancellation guarantee: once
// the client goes away, no further grid point is scheduled, observable as
// ovserve_sims_total not advancing.
func TestSweepClientDisconnectStopsSims(t *testing.T) {
	s := New(Opts{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSweepSim = func() {
		once.Do(func() {
			close(started)
			<-release
		})
	}

	body, _ := json.Marshal(SweepRequest{
		Bench: []string{"swm256"}, Regs: []int{12, 16}, Lats: []int64{1, 20}, Insns: testInsns,
	})
	req := httptest.NewRequest("POST", "/v1/sweep", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()

	<-started // the first of 4 grid points is provably simulating
	cancel()  // the client disconnects
	close(release)
	<-done

	if got := s.SimsRun(); got != 1 {
		t.Errorf("%d grid points simulated after the client disconnected during the first, want 1", got)
	}
	if tr := rec.Result().Trailer.Get(SweepStatusTrailer); tr != "canceled" {
		t.Errorf("%s trailer = %q, want \"canceled\"", SweepStatusTrailer, tr)
	}
}

// TestSweepMidStreamFailure: a grid point failing mid-stream must not
// silently truncate the NDJSON — the stream ends with a terminal error
// record and the status trailer reports the failure.
func TestSweepMidStreamFailure(t *testing.T) {
	s := New(Opts{Workers: 1})
	sims := 0
	s.testHookSweepSim = func() {
		sims++
		if sims == 5 { // the first grid point of the second benchmark
			panic("injected grid-point failure")
		}
	}

	rec := post(t, s, "/v1/sweep", SweepRequest{
		Bench: []string{"swm256", "trfd"}, Regs: []int{12, 16}, Lats: []int64{1, 20}, Insns: testInsns,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (failure happens after streaming starts)", rec.Code)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d NDJSON lines, want 4 rows + 1 error record:\n%s", len(lines), rec.Body)
	}
	for _, l := range lines[:4] {
		if strings.Contains(l, `"error"`) {
			t.Errorf("data row contains an error record: %s", l)
		}
	}
	var e errorBody
	if err := json.Unmarshal([]byte(lines[4]), &e); err != nil || e.Error == "" {
		t.Fatalf("terminal line is not an error record: %q (%v)", lines[4], err)
	}
	if !strings.Contains(e.Error, "injected grid-point failure") {
		t.Errorf("error record %q does not carry the failure cause", e.Error)
	}
	if tr := rec.Result().Trailer.Get(SweepStatusTrailer); tr != "error" {
		t.Errorf("%s trailer = %q, want \"error\"", SweepStatusTrailer, tr)
	}
	if n := metricValue(t, s, "ovserve_sweep_errors_total"); n != 1 {
		t.Errorf("sweep_errors_total = %d, want 1", n)
	}
}
