package server

// Fixed-bucket latency histograms in the Prometheus text-exposition shape:
// cumulative `_bucket{le=...}` lines, a `_sum` in seconds and a `_count`.
// One instance per route (request latency) and one per result-resolution
// tier (memory hit / disk hit / simulate). Everything is atomics — observe
// is a two-add hot path safe under concurrent request handlers, and write
// renders a snapshot whose cumulative counts are monotone by construction.

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// latBounds are the finite bucket upper bounds in seconds. They span the
// service's real dynamic range: a memory cache hit lands in the first
// buckets, a disk probe in the middle, a cold million-instruction
// simulation in the top ones.
var latBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 10,
}

// latHist is one fixed-bucket latency histogram. The zero value is ready to
// use. counts[i] holds the samples in (latBounds[i-1], latBounds[i]]; the
// final slot is the +Inf overflow bucket.
type latHist struct {
	counts [len(latBounds) + 1]atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// observe records one sample.
func (h *latHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latBounds) && s > latBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// count returns the total number of samples observed.
func (h *latHist) count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// write renders the histogram as Prometheus text lines under the given
// metric name; label is a preformatted `key="value"` pair appearing in
// every line. The cumulative bucket counts are computed left to right from
// the per-bucket atomics, so they are non-decreasing even while observes
// race the render, and the `_count` equals the +Inf bucket exactly.
func (h *latHist) write(w io.Writer, name, label string) {
	var cum int64
	for i, b := range latBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, label, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(latBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, cum)
	fmt.Fprintf(w, "%s_sum{%s} %.6f\n", name, label, time.Duration(h.sum.Load()).Seconds())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, cum)
}
