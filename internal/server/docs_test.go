package server

import (
	"os"
	"regexp"
	"slices"
	"strings"
	"testing"
)

// TestAPIDocMatchesRoutes keeps docs/API.md and the registered mux routes
// from drifting apart, in both directions: every route the server serves
// must be documented as a route heading, and every documented route
// heading must still exist. The headings are the `### METHOD /path` lines.
func TestAPIDocMatchesRoutes(t *testing.T) {
	b, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the API: %v", err)
	}
	doc := string(b)

	headingRE := regexp.MustCompile(`(?m)^### (GET|POST|DELETE) (/\S+)$`)
	documented := map[string]map[string]bool{} // path -> method set
	for _, m := range headingRE.FindAllStringSubmatch(doc, -1) {
		if documented[m[2]] == nil {
			documented[m[2]] = map[string]bool{}
		}
		documented[m[2]][m[1]] = true
	}

	// `routes` is the server's own route list — the same slice the mux
	// registrations and the /metrics request-counter buckets are built
	// from, so it cannot drift from what is actually served. A path may
	// serve several methods (/v1/jobs/{id} answers GET and DELETE).
	methods := map[string][]string{
		"/v1/sim": {"POST"}, "/v1/sweep": {"POST"},
		"/v1/jobs": {"POST"}, "/v1/jobs/{id}": {"GET", "DELETE"},
		"/v1/presets": {"GET"}, "/v1/cache": {"GET"},
		"/v1/traces": {"GET"}, "/v1/traces/{id}": {"GET"},
		"/healthz": {"GET"}, "/metrics": {"GET"},
		"/debug/pprof/": {"GET"},
	}
	if len(methods) != len(routes) {
		t.Fatalf("test method table has %d routes, server has %d — update both this test and docs/API.md", len(methods), len(routes))
	}
	for _, route := range routes {
		for _, method := range methods[route] {
			if !documented[route][method] {
				t.Errorf("docs/API.md has no `### %s %s` heading for registered route %s", method, route, route)
			}
		}
	}
	for path, methodSet := range documented {
		want, ok := methods[path]
		if !ok {
			t.Errorf("docs/API.md documents %s, which is not a registered route", path)
			continue
		}
		for method := range methodSet {
			if !slices.Contains(want, method) {
				t.Errorf("docs/API.md documents %s %s, which the server does not register", method, path)
			}
		}
	}

	// The operational semantics the docs promise must at least be present
	// as the status codes and headers they hinge on.
	for _, want := range []string{
		"401", "429", "503", "Retry-After", SweepStatusTrailer, "ovserve_sims_total",
		"-cache-dir", "-cache-disk-bytes", "ovserve_store_hits_total",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/API.md does not mention %q", want)
		}
	}
}
