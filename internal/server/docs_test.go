package server

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAPIDocMatchesRoutes keeps docs/API.md and the registered mux routes
// from drifting apart, in both directions: every route the server serves
// must be documented as a route heading, and every documented route
// heading must still exist. The headings are the `### METHOD /path` lines.
func TestAPIDocMatchesRoutes(t *testing.T) {
	b, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the API: %v", err)
	}
	doc := string(b)

	headingRE := regexp.MustCompile(`(?m)^### (GET|POST) (/\S+)$`)
	documented := map[string]string{} // path -> method
	for _, m := range headingRE.FindAllStringSubmatch(doc, -1) {
		documented[m[2]] = m[1]
	}

	// `routes` is the server's own route list — the same slice the mux
	// registrations and the /metrics request-counter buckets are built
	// from, so it cannot drift from what is actually served.
	methods := map[string]string{
		"/v1/sim": "POST", "/v1/sweep": "POST",
		"/v1/presets": "GET", "/v1/cache": "GET",
		"/healthz": "GET", "/metrics": "GET",
	}
	if len(methods) != len(routes) {
		t.Fatalf("test method table has %d routes, server has %d — update both this test and docs/API.md", len(methods), len(routes))
	}
	for _, route := range routes {
		method, ok := documented[route]
		if !ok {
			t.Errorf("docs/API.md has no `### %s %s` heading for registered route %s", methods[route], route, route)
			continue
		}
		if method != methods[route] {
			t.Errorf("docs/API.md documents %s as %s, server registers %s", route, method, methods[route])
		}
	}
	for path := range documented {
		if _, ok := methods[path]; !ok {
			t.Errorf("docs/API.md documents %s, which is not a registered route", path)
		}
	}

	// The operational semantics the docs promise must at least be present
	// as the status codes and headers they hinge on.
	for _, want := range []string{
		"401", "429", "503", "Retry-After", SweepStatusTrailer, "ovserve_sims_total",
		"-cache-dir", "-cache-disk-bytes", "ovserve_store_hits_total",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/API.md does not mention %q", want)
		}
	}
}
