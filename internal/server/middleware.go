package server

import (
	"context"
	"crypto/subtle"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"oovec/internal/span"
)

// This file is the production middleware stack wrapping every ovserve
// route: drain gating, bearer-token auth, the bounded in-flight limiter,
// per-request deadlines and per-route latency/outcome accounting. Handlers
// stay pure request logic; everything an operator tunes lives here.

// routeOpts selects which middleware layers a route runs behind.
type routeOpts struct {
	// gate refuses the request with 503 while the server is draining and
	// counts it against the drain gate (Drain waits for it).
	gate bool
	// auth requires a bearer token when Opts.AuthToken is configured.
	auth bool
	// limit counts the request against Opts.MaxInflight; over the bound it
	// is refused with 429 + Retry-After instead of queueing.
	limit bool
	// timeout applies Opts.Timeout as the request context's deadline.
	timeout bool
	// interactive brackets the request with the job layer's
	// BeginInteractive/EndInteractive: while it is in flight, background
	// jobs are preempted (checkpoint-and-park) and stay parked.
	interactive bool
}

// instrument wraps a handler in the middleware chain. Order matters:
// cheap refusals (drain, auth) come before slot acquisition and before the
// root span is started, so a draining or unauthenticated request can never
// occupy simulation capacity or a slot in the bounded trace buffer, and
// every outcome — including the refusals — is observed in the latency and
// response-code counters.
func (s *Server) instrument(route string, o routeOpts, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		// Resolve the request id first so every outcome — including the
		// middleware refusals below — carries it on the response and in the
		// request log line.
		rid := requestID(r)
		sw.Header().Set(RequestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))
		// The root span is started below, only after the drain and auth
		// refusals: a caller-supplied sampled traceparent forces trace
		// retention, so starting it earlier would let unauthenticated
		// clients churn the bounded trace ring (evicting legitimate traces)
		// and stamp attacker-chosen trace ids onto the refusal exemplars.
		// Refused requests are observed and logged with an empty trace id.
		var sp *span.Span
		defer func() {
			d := time.Since(start)
			sp.SetInt("status", int64(sw.Status()))
			sp.End()
			s.observe(route, sw.Status(), d, sp.TraceID())
			s.logRequest(r, route, rid, sp.TraceID(), sw.Status(), d)
		}()
		s.requests[route].Add(1)

		if o.gate {
			if !s.enter() {
				s.rejected.Add(1)
				// Draining means a replacement process is moments away:
				// tell the client when to come back, exactly like the 429
				// limiter does.
				sw.Header().Set("Retry-After", "5")
				httpError(sw, http.StatusServiceUnavailable, "server is draining")
				return
			}
			defer s.exit()
		}
		if o.auth && !s.authorize(r) {
			s.unauthed.Add(1)
			sw.Header().Set("WWW-Authenticate", `Bearer realm="ovserve"`)
			httpError(sw, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		// Root span: join the caller's W3C traceparent when present — its
		// sampled flag forces retention past head sampling, so a client that
		// injects traceparent can always fetch its own timeline. Nil tracer
		// or an unsampled request leaves sp nil and every span call below a
		// no-op.
		tid, parentSpan, sampled, _ := span.ParseTraceparent(r.Header.Get(span.TraceparentHeader))
		sp = s.tracer.Root(route, tid, parentSpan, sampled)
		if sp != nil {
			sp.SetAttr("method", r.Method)
			sp.SetAttr("request_id", rid)
			sw.Header().Set(TraceIDHeader, sp.TraceID())
			r = r.WithContext(span.NewContext(r.Context(), sp))
		}
		if o.limit && s.inflightSem != nil {
			select {
			case s.inflightSem <- struct{}{}:
				defer func() { <-s.inflightSem }()
			default:
				s.throttled.Add(1)
				sw.Header().Set("Retry-After", "1")
				httpError(sw, http.StatusTooManyRequests,
					"%d simulation requests already in flight (limit %d)", s.maxInflight, s.maxInflight)
				return
			}
		}
		if o.gate {
			s.nInflight.Add(1)
			defer s.nInflight.Add(-1)
		}
		if o.timeout && s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if o.interactive {
			s.jobs.BeginInteractive()
			defer s.jobs.EndInteractive()
		}
		h(sw, r)
	}
}

// authorize checks the bearer token. With no token configured every request
// passes; with one, the comparison is constant-time so the token cannot be
// recovered byte-by-byte through response timing.
func (s *Server) authorize(r *http.Request) bool {
	if s.authToken == "" {
		return true
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) < len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(s.authToken)) == 1
}

// observe records one finished request in the per-route latency histogram
// and response-code counters. A non-empty traceID is attached to the
// latency bucket as its OpenMetrics exemplar.
func (s *Server) observe(route string, code int, d time.Duration, traceID string) {
	s.durations[route].ObserveTrace(d, traceID)
	s.respMu.Lock()
	s.responses[route][code]++
	s.respMu.Unlock()
}

// writeResponseMetrics renders the per-(route, code) outcome counters in a
// deterministic order.
func (s *Server) writeResponseMetrics(w http.ResponseWriter) {
	s.respMu.Lock()
	defer s.respMu.Unlock()
	for _, route := range routes {
		codes := make([]int, 0, len(s.responses[route]))
		for code := range s.responses[route] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "ovserve_responses_total{path=%q,code=\"%d\"} %d\n",
				route, code, s.responses[route][code])
		}
	}
}

// statusWriter captures the status code a handler sent so the outcome
// counters can attribute it, passing Flush through for the NDJSON stream.
type statusWriter struct {
	http.ResponseWriter
	code int // 0 until the handler commits a status
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Status returns the committed status code (200 for a handler that wrote
// nothing, which net/http reports as an implicit 200).
func (w *statusWriter) Status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Flush forwards to the underlying writer so sweep rows still stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
