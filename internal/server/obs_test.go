package server

// Tests for the observability surface: latency histograms (shape and
// monotonicity), per-tier resolution histograms, request ids, structured
// request logs, breadcrumb logging, build info and the auth-gated pprof.

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"oovec/internal/hist"
)

// histBuckets parses the cumulative bucket counts of one histogram/label
// pair out of a /metrics exposition, in declaration order, +Inf last.
func histBuckets(t *testing.T, body, name, label string) []int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `_bucket\{` +
		regexp.QuoteMeta(label) + `,le="([^"]+)"\} (\d+)$`)
	var counts []int64
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	return counts
}

// The histogram implementation itself (bucket monotonicity, quantile
// estimation, concurrent observes) is tested in internal/hist, which this
// package shares with the ovload client-side latency aggregation.

// TestRequestAndTierHistograms drives two identical /v1/sim requests and
// asserts the exact histogram counts CI's serve-smoke step also checks:
// both land in the request-latency histogram, the first resolves by
// simulation, the second from memory.
func TestRequestAndTierHistograms(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 2; i++ {
		if rec := post(t, s, "/v1/sim", SimRequest{Bench: "trfd", Insns: testInsns}); rec.Code != 200 {
			t.Fatalf("sim %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		`ovserve_request_duration_seconds_bucket{path="/v1/sim",le="+Inf"} 2`,
		`ovserve_request_duration_seconds_count{path="/v1/sim"} 2`,
		`ovserve_request_duration_seconds_sum{path="/v1/sim"} `,
		`ovserve_resolve_duration_seconds_count{tier="simulate"} 1`,
		`ovserve_resolve_duration_seconds_count{tier="memory"} 1`,
		`ovserve_resolve_duration_seconds_count{tier="disk"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	counts := histBuckets(t, body, "ovserve_request_duration_seconds", `path="/v1/sim"`)
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("request histogram not monotone: %v", counts)
		}
	}
}

// TestMetricsExemplarNegotiation pins the exposition-format contract:
// exemplars are OpenMetrics-only syntax, so the default /metrics scrape
// stays Prometheus 0.0.4 text with no exemplar suffixes (a stock
// Prometheus parser would fail the whole scrape on one), while a scraper
// that negotiates application/openmetrics-text gets the exemplars,
// histogram TYPE metadata and the # EOF terminator the format requires.
func TestMetricsExemplarNegotiation(t *testing.T) {
	s := newTracedServer(t)
	// A sampled request installs an exemplar on the /v1/sim latency bucket.
	if rec := post(t, s, "/v1/sim", SimRequest{Bench: "swm256", Insns: testInsns}); rec.Code != 200 {
		t.Fatalf("sim status %d: %s", rec.Code, rec.Body)
	}

	plain := get(t, s, "/metrics")
	if ct := plain.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("default Content-Type = %q, want Prometheus 0.0.4 text", ct)
	}
	if body := plain.Body.String(); strings.Contains(body, "# {trace_id=") {
		t.Errorf("default 0.0.4 exposition carries an exemplar:\n%s", body)
	} else if strings.Contains(body, "# EOF") {
		t.Errorf("default 0.0.4 exposition carries the OpenMetrics terminator")
	}

	om := getWith(t, s, "/metrics", map[string]string{"Accept": "application/openmetrics-text"})
	if ct := om.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("negotiated Content-Type = %q, want application/openmetrics-text", ct)
	}
	body := om.Body.String()
	if !strings.Contains(body, "# {trace_id=") {
		t.Errorf("negotiated OpenMetrics exposition carries no exemplar:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE ovserve_request_duration_seconds histogram\n") {
		t.Error("OpenMetrics exposition lacks histogram TYPE metadata")
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics exposition does not end with # EOF:\n…%s", body[max(0, len(body)-80):])
	}
	// The default exposition stays fully parseable under the strict
	// no-suffix bucket regexp — every bucket line ends at its sample value.
	if got := histBuckets(t, plain.Body.String(), "ovserve_request_duration_seconds", `path="/v1/sim"`); len(got) != hist.NumBuckets {
		t.Errorf("default exposition parsed %d clean bucket lines, want %d", len(got), hist.NumBuckets)
	}
}

func TestRequestIDGeneratedAndPropagated(t *testing.T) {
	s := newTestServer(t)

	// No inbound id: one is generated (16 hex chars) and echoed.
	rec := get(t, s, "/healthz")
	rid := rec.Header().Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(rid) {
		t.Errorf("generated id %q is not 16 hex chars", rid)
	}

	// A well-formed inbound id is propagated verbatim.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "upstream-42.a_b")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-42.a_b" {
		t.Errorf("propagated id = %q, want upstream-42.a_b", got)
	}

	// A hostile inbound id (header-splitting, log-forging characters) is
	// replaced, never echoed.
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "bad\tid")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); strings.Contains(got, "\t") || got == "" {
		t.Errorf("hostile id echoed or dropped: %q", got)
	}
}

// logLines decodes a JSON-handler slog buffer into one map per line.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Opts{Workers: 2, Log: slog.New(slog.NewJSONHandler(&buf, nil))})

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "joinme-1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %s", len(lines), buf.String())
	}
	l := lines[0]
	if l["msg"] != "request" || l["level"] != "INFO" {
		t.Errorf("line = %v, want INFO request", l)
	}
	if l["request_id"] != "joinme-1" || l["path"] != "/healthz" ||
		l["method"] != "GET" || l["status"] != float64(200) {
		t.Errorf("log fields wrong: %v", l)
	}
	if _, ok := l["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms missing: %v", l)
	}
}

func TestSlowRequestLoggedAtWarn(t *testing.T) {
	var buf bytes.Buffer
	s := New(Opts{Workers: 2,
		Log:         slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Nanosecond}) // everything is slow

	get(t, s, "/healthz")
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	l := lines[0]
	if l["level"] != "WARN" || l["msg"] != "slow request" || l["slow"] != true {
		t.Errorf("slow request not flagged: %v", l)
	}
}

// TestJobCancelBreadcrumb: cancelling a job leaves a structured log line
// carrying the request id, the job id and the result key — the operator's
// only in-band record of destroyed work.
func TestJobCancelBreadcrumb(t *testing.T) {
	var buf bytes.Buffer
	s := New(Opts{Workers: 2, Log: slog.New(slog.NewJSONHandler(&buf, nil))})
	defer s.JobsClose()

	// Park the job layer so the submitted job deterministically never
	// starts — cancellation then always succeeds.
	s.jobs.BeginInteractive()
	defer s.jobs.EndInteractive()

	rec := post(t, s, "/v1/jobs", JobRequest{Sim: SimRequest{Bench: "trfd", Insns: testInsns}})
	if rec.Code != 202 {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("DELETE", "/v1/jobs/"+sub.ID, nil)
	req.Header.Set(RequestIDHeader, "cancel-req-1")
	del := httptest.NewRecorder()
	s.Handler().ServeHTTP(del, req)
	if del.Code != 202 {
		t.Fatalf("cancel: %d %s", del.Code, del.Body.String())
	}

	var crumb map[string]any
	for _, l := range logLines(t, &buf) {
		if l["msg"] == "job canceled" {
			crumb = l
		}
	}
	if crumb == nil {
		t.Fatalf("no 'job canceled' breadcrumb in log:\n%s", buf.String())
	}
	if crumb["job_id"] != sub.ID || crumb["key"] != sub.Key || crumb["request_id"] != "cancel-req-1" {
		t.Errorf("breadcrumb fields wrong: %v", crumb)
	}
}

// TestSweepAbortBreadcrumb: a sweep that dies mid-stream logs the abort
// with the request id and row count.
func TestSweepAbortBreadcrumb(t *testing.T) {
	var buf bytes.Buffer
	s := New(Opts{Workers: 2, Log: slog.New(slog.NewJSONHandler(&buf, nil))})
	s.testHookSweepSim = func() { panic("injected grid failure") }

	body, _ := json.Marshal(SweepRequest{Bench: []string{"trfd"}, Insns: testInsns})
	req := httptest.NewRequest("POST", "/v1/sweep", bytes.NewReader(body))
	req.Header.Set(RequestIDHeader, "sweep-req-1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	var crumb map[string]any
	for _, l := range logLines(t, &buf) {
		if l["msg"] == "sweep aborted" {
			crumb = l
		}
	}
	if crumb == nil {
		t.Fatalf("no 'sweep aborted' breadcrumb in log:\n%s", buf.String())
	}
	if crumb["request_id"] != "sweep-req-1" || crumb["level"] != "ERROR" {
		t.Errorf("breadcrumb fields wrong: %v", crumb)
	}
	if _, ok := crumb["error"].(string); !ok {
		t.Errorf("breadcrumb lacks error: %v", crumb)
	}
}

func TestBuildInfoMetric(t *testing.T) {
	s := newTestServer(t)
	body := get(t, s, "/metrics").Body.String()
	re := regexp.MustCompile(`(?m)^ovserve_build_info\{version="[^"]+",go="go[^"]+"\} 1$`)
	if !re.MatchString(body) {
		t.Errorf("metrics lack a well-formed ovserve_build_info gauge:\n%s", body)
	}
	if !strings.Contains(body, "ovserve_uptime_seconds ") {
		t.Error("metrics lack ovserve_uptime_seconds")
	}
}

// TestPprofAuth: without a configured token the profiling surface refuses
// outright; with one, it requires the bearer token like every API route.
func TestPprofAuth(t *testing.T) {
	open := newTestServer(t)
	if rec := get(t, open, "/debug/pprof/"); rec.Code != 403 {
		t.Errorf("tokenless server served pprof: %d", rec.Code)
	}

	locked := New(Opts{Workers: 2, AuthToken: "s3cret"})
	if rec := get(t, locked, "/debug/pprof/"); rec.Code != 401 {
		t.Errorf("unauthenticated pprof = %d, want 401", rec.Code)
	}
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	rec := httptest.NewRecorder()
	locked.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("authenticated pprof index = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}

	req = httptest.NewRequest("GET", "/debug/pprof/goroutine?debug=1", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	rec = httptest.NewRecorder()
	locked.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("named profile = %d", rec.Code)
	}
}
