package isa

// Latency model (Table 1 of the paper).
//
// The table in the available text of the paper is partially garbled by OCR;
// the legible entries are kept verbatim and the rest are reconstructed with
// values conventional for the Convex C3400 generation (documented in
// DESIGN.md):
//
//	read RF + crossbar:  1 cycle in REF, 0 in OOOVA  (legible: "(*) 0 in OOOVA, 1 in REF")
//	write crossbar:      1 cycle in REF, 2 in OOOVA  (legible: "write x-bar 1 | 2")
//	add/logic/shift:     3 scalar, 4 vector startup  (legible fragment "logic/shift 3 4")
//	mul:                 9 cycles                    (reconstructed from "34/9" pairs)
//	div/sqrt:            34 cycles                   (reconstructed from "34/9" pairs)
//
// Vector units are fully pipelined: a vector instruction with length VL
// occupies its functional unit for VL cycles and delivers one element per
// cycle after the startup latency.

// Machine distinguishes the two modelled implementations where their
// latencies differ.
type Machine uint8

const (
	// MachineRef is the in-order reference architecture (Convex C3400).
	MachineRef Machine = iota
	// MachineOOO is the out-of-order renaming architecture (OOOVA).
	MachineOOO
)

// Crossbar/register-file access latencies (cycles), per Table 1.
const (
	ReadXbarRef  = 1
	ReadXbarOOO  = 0
	WriteXbarRef = 1
	WriteXbarOOO = 2
)

// VectorStartup is the per-instruction vector startup overhead (Table 1's
// "vector startup" row, reconstructed): dead cycles a vector instruction
// occupies its unit before streaming elements, covering instruction setup
// and pipeline fill. It applies identically to both machines; the
// out-of-order machine hides it by overlapping instructions on different
// units, while in-order issue exposes it — which is why the paper's
// short-vector programs (trfd, dyfesm, flo52) suffer most on the reference
// machine.
const VectorStartup = 8

// ReadXbar returns the register-file read + crossbar traversal latency.
func ReadXbar(m Machine) int {
	if m == MachineOOO {
		return ReadXbarOOO
	}
	return ReadXbarRef
}

// WriteXbar returns the crossbar + register-file write latency.
func WriteXbar(m Machine) int {
	if m == MachineOOO {
		return WriteXbarOOO
	}
	return WriteXbarRef
}

// ExecLatency returns the functional latency of op in cycles: for scalar
// operations, the full execution latency; for vector operations, the startup
// latency until the first element emerges (the unit then produces one element
// per cycle). Memory operation latency is *not* included here: it is a
// property of the memory system (mem.Config), because the paper varies it.
func ExecLatency(op Op) int {
	switch op {
	case OpNop:
		return 1
	case OpAAdd, OpAMove, OpSetVL, OpSetVS:
		return 1
	case OpAMul:
		return 3
	case OpSAdd, OpSLogic, OpSShift, OpSMove:
		return 3
	case OpSMul:
		return 9
	case OpSDiv, OpSSqrt:
		return 34
	case OpBranch, OpJump, OpCall, OpReturn:
		return 1
	case OpVAdd, OpVSAdd, OpVLogic, OpVShift, OpVCmp, OpVMerge:
		return 4
	case OpVMul, OpVSMul:
		return 9
	case OpVDiv, OpVSqrt:
		return 34
	case OpVReduce:
		// Tree reduction: startup of an add plus log2(MaxVL) combining steps.
		return 4 + 7
	case OpALoad, OpSLoad, OpVLoad, OpVGather,
		OpAStore, OpSStore, OpVStore, OpVScatter:
		return 0 // supplied by the memory model
	}
	return 1
}

// OccupancyCycles returns the number of cycles the instruction occupies its
// execution unit's issue pipeline: 1 for scalar operations, VL for vector
// operations (one element per cycle, fully pipelined units).
func OccupancyCycles(in *Instruction) int {
	if in.Op.IsVector() {
		return in.EffVL()
	}
	return 1
}
