package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegClassNumLogical(t *testing.T) {
	cases := []struct {
		c RegClass
		n int
	}{
		{RegA, 8}, {RegS, 8}, {RegV, 8}, {RegM, 1}, {RegNone, 0},
	}
	for _, c := range cases {
		if got := c.c.NumLogical(); got != c.n {
			t.Errorf("%v.NumLogical() = %d, want %d", c.c, got, c.n)
		}
	}
}

func TestRegConstructorsAndValidity(t *testing.T) {
	if !A(0).Valid() || !A(7).Valid() {
		t.Error("A(0)/A(7) should be valid")
	}
	if A(8).Valid() {
		t.Error("A(8) should be out of range")
	}
	if !S(3).Valid() || !V(7).Valid() || !VM().Valid() {
		t.Error("S(3), V(7), VM() should be valid")
	}
	if V(8).Valid() {
		t.Error("V(8) should be out of range")
	}
	if NoReg.Valid() {
		t.Error("NoReg should be invalid")
	}
}

func TestRegString(t *testing.T) {
	cases := map[string]Reg{
		"a0": A(0), "s5": S(5), "v7": V(7), "vm": VM(), "-": NoReg,
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestExecUnitCoversAllOps(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		u := op.ExecUnit()
		if op == OpNop {
			if u != UnitNone {
				t.Errorf("nop unit = %v", u)
			}
			continue
		}
		if u == UnitNone {
			t.Errorf("op %v has no execution unit", op)
		}
	}
}

func TestOpClassPredicatesAreConsistent(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v claims to be both load and store", op)
		}
		if (op.IsLoad() || op.IsStore()) != op.IsMem() {
			t.Errorf("%v mem/load/store predicates disagree", op)
		}
		if op.IsMem() && op.ExecUnit() != UnitMem {
			t.Errorf("%v is mem but unit=%v", op, op.ExecUnit())
		}
		if op.IsBranch() && op.ExecUnit() != UnitCtl {
			t.Errorf("%v is branch but unit=%v", op, op.ExecUnit())
		}
		if op.NeedsFU2() && !op.IsVector() {
			t.Errorf("%v needs FU2 but is not vector", op)
		}
	}
}

func TestFU1Restriction(t *testing.T) {
	// Per the paper: FU1 executes all vector instructions except
	// multiplication, division and square root.
	fu2Only := map[Op]bool{OpVMul: true, OpVDiv: true, OpVSqrt: true, OpVSMul: true}
	for op := Op(0); int(op) < NumOps; op++ {
		if !op.IsVector() || op.ExecUnit() != UnitV {
			continue
		}
		if got := op.NeedsFU2(); got != fu2Only[op] {
			t.Errorf("%v.NeedsFU2() = %v, want %v", op, got, fu2Only[op])
		}
	}
}

func TestExecLatencyPositiveForNonMem(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		lat := ExecLatency(op)
		if op.IsMem() {
			if lat != 0 {
				t.Errorf("%v: memory latency must come from the memory model, got %d", op, lat)
			}
			continue
		}
		if lat <= 0 {
			t.Errorf("%v: non-positive latency %d", op, lat)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	// div/sqrt > mul > add, in both scalar and vector flavours.
	if !(ExecLatency(OpSDiv) > ExecLatency(OpSMul) && ExecLatency(OpSMul) > ExecLatency(OpSAdd)) {
		t.Error("scalar latency ordering violated")
	}
	if !(ExecLatency(OpVDiv) > ExecLatency(OpVMul) && ExecLatency(OpVMul) > ExecLatency(OpVAdd)) {
		t.Error("vector latency ordering violated")
	}
}

func TestXbarLatenciesMatchTable1(t *testing.T) {
	if ReadXbar(MachineRef) != 1 || ReadXbar(MachineOOO) != 0 {
		t.Errorf("read crossbar: ref=%d ooo=%d, want 1/0", ReadXbar(MachineRef), ReadXbar(MachineOOO))
	}
	if WriteXbar(MachineRef) != 1 || WriteXbar(MachineOOO) != 2 {
		t.Errorf("write crossbar: ref=%d ooo=%d, want 1/2", WriteXbar(MachineRef), WriteXbar(MachineOOO))
	}
}

func TestOccupancyCycles(t *testing.T) {
	vadd := &Instruction{Op: OpVAdd, Dst: V(0), Src1: V(1), Src2: V(2), VL: 64}
	if got := OccupancyCycles(vadd); got != 64 {
		t.Errorf("vector occupancy = %d, want 64", got)
	}
	sadd := &Instruction{Op: OpSAdd, Dst: S(0), Src1: S(1), Src2: S(2)}
	if got := OccupancyCycles(sadd); got != 1 {
		t.Errorf("scalar occupancy = %d, want 1", got)
	}
}

func TestEffVL(t *testing.T) {
	in := &Instruction{Op: OpVAdd, VL: 17}
	if in.EffVL() != 17 {
		t.Errorf("EffVL = %d, want 17", in.EffVL())
	}
	in = &Instruction{Op: OpSAdd, VL: 99} // VL ignored on scalar ops
	if in.EffVL() != 1 {
		t.Errorf("scalar EffVL = %d, want 1", in.EffVL())
	}
	in = &Instruction{Op: OpVAdd, VL: 0} // degenerate; clamp to 1
	if in.EffVL() != 1 {
		t.Errorf("zero-VL EffVL = %d, want 1", in.EffVL())
	}
}

func TestMemRangeUnitStride(t *testing.T) {
	in := &Instruction{Op: OpVLoad, Dst: V(0), Addr: 0x1000, VL: 4, VS: 8}
	s, e := in.MemRange()
	if s != 0x1000 || e != 0x1000+3*8+7 {
		t.Errorf("unit-stride range = [%#x,%#x]", s, e)
	}
}

func TestMemRangeStrided(t *testing.T) {
	in := &Instruction{Op: OpVLoad, Dst: V(0), Addr: 0x1000, VL: 4, VS: 32}
	s, e := in.MemRange()
	if s != 0x1000 || e != 0x1000+3*32+7 {
		t.Errorf("strided range = [%#x,%#x]", s, e)
	}
}

func TestMemRangeNegativeStride(t *testing.T) {
	in := &Instruction{Op: OpVLoad, Dst: V(0), Addr: 0x1000, VL: 4, VS: -16}
	s, e := in.MemRange()
	if s != 0x1000-3*16 || e != 0x1000+7 {
		t.Errorf("negative-stride range = [%#x,%#x]", s, e)
	}
	if s > e {
		t.Error("range not normalised")
	}
}

func TestMemRangeScalar(t *testing.T) {
	in := &Instruction{Op: OpSLoad, Dst: S(0), Addr: 0x2000}
	s, e := in.MemRange()
	if s != 0x2000 || e != 0x2007 {
		t.Errorf("scalar range = [%#x,%#x]", s, e)
	}
}

func TestMemRangeGatherConservative(t *testing.T) {
	in := &Instruction{Op: OpVGather, Dst: V(0), Src1: V(1), Addr: 0x100000, VL: 8, VS: 8}
	s, e := in.MemRange()
	if s >= in.Addr || e <= in.Addr {
		t.Errorf("gather range [%#x,%#x] should bracket the base address", s, e)
	}
}

func TestMemRangeNonMemIsZero(t *testing.T) {
	in := &Instruction{Op: OpVAdd, VL: 8}
	if s, e := in.MemRange(); s != 0 || e != 0 {
		t.Errorf("non-mem range = [%#x,%#x], want [0,0]", s, e)
	}
}

func TestWritesReg(t *testing.T) {
	cases := []struct {
		in   Instruction
		want bool
	}{
		{Instruction{Op: OpVAdd, Dst: V(1), VL: 8}, true},
		{Instruction{Op: OpVLoad, Dst: V(1), VL: 8, VS: 8}, true},
		{Instruction{Op: OpVStore, Src1: V(1), VL: 8, VS: 8}, false},
		{Instruction{Op: OpBranch, Addr: 4}, false},
		{Instruction{Op: OpSAdd, Dst: S(2)}, true},
	}
	for i, c := range cases {
		if got := c.in.WritesReg(); got != c.want {
			t.Errorf("case %d (%v): WritesReg = %v, want %v", i, c.in.Op, got, c.want)
		}
	}
}

func TestReads(t *testing.T) {
	var buf [4]Reg
	in := &Instruction{Op: OpVAdd, Dst: V(0), Src1: V(1), Src2: V(2), VL: 8}
	rs := in.Reads(buf[:])
	if len(rs) != 2 || rs[0] != V(1) || rs[1] != V(2) {
		t.Errorf("Reads = %v", rs)
	}
	merge := &Instruction{Op: OpVMerge, Dst: V(0), Src1: V(1), Src2: V(2), VL: 8}
	rs = merge.Reads(buf[:])
	if len(rs) != 3 || rs[2] != VM() {
		t.Errorf("merge Reads = %v, want mask appended", rs)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	good := []Instruction{
		{Op: OpVAdd, Dst: V(0), Src1: V(1), Src2: V(2), VL: 64},
		{Op: OpVLoad, Dst: V(0), Addr: 0x1000, VL: 128, VS: 8},
		{Op: OpSAdd, Dst: S(0), Src1: S(1), Src2: S(2)},
		{Op: OpBranch, Addr: 0x40, Taken: true},
		{Op: OpSLoad, Dst: S(1), Addr: 0x80, Spill: true},
	}
	for i := range good {
		if err := good[i].Validate(); err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Instruction{
		{Op: Op(200)},
		{Op: OpVAdd, Dst: V(0), VL: 0},
		{Op: OpVAdd, Dst: V(0), VL: MaxVL + 1},
		{Op: OpVAdd, Dst: Reg{RegV, 9}, VL: 8},
		{Op: OpVLoad, Dst: V(0), VL: 8, VS: 0},
		{Op: OpVAdd, Dst: V(0), VL: 8, Spill: true},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestOpStringsAreUniqueAndNamed(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); int(op) < NumOps; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestInstructionStringForms(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpVAdd, Dst: V(3), Src1: V(1), Src2: V(2), VL: 64},
			"v.add v3, v1, v2 (vl=64)"},
		{Instruction{Op: OpVLoad, Dst: V(2), Addr: 0x1000, VL: 64, VS: 8},
			"v.ld v2, 0x1000(vl=64,vs=8)"},
		{Instruction{Op: OpBranch, Addr: 0x40, Taken: true},
			"br 0x40 taken"},
		{Instruction{Op: OpSLoad, Dst: S(1), Addr: 0x80, Spill: true},
			"s.ld s1, 0x80 ;spill"},
	}
	for i, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("case %d: String() = %q, want %q", i, got, c.want)
		}
	}
}

// randomInstruction builds a structurally valid random instruction; it is the
// generator shared by the property-based tests here and in package trace.
func randomInstruction(r *rand.Rand) Instruction {
	ops := []Op{OpAAdd, OpSAdd, OpSMul, OpVAdd, OpVMul, OpVLoad, OpVStore,
		OpSLoad, OpSStore, OpBranch, OpSetVL, OpVCmp, OpVGather}
	op := ops[r.Intn(len(ops))]
	in := Instruction{Op: op, PC: uint64(r.Intn(1<<20)) * 4}
	pick := func(c RegClass) Reg { return Reg{c, uint8(r.Intn(c.NumLogical()))} }
	switch op.ExecUnit() {
	case UnitA:
		in.Dst, in.Src1 = pick(RegA), pick(RegA)
	case UnitS:
		in.Dst, in.Src1, in.Src2 = pick(RegS), pick(RegS), pick(RegS)
	case UnitV:
		in.Dst, in.Src1, in.Src2 = pick(RegV), pick(RegV), pick(RegV)
		in.VL = uint16(1 + r.Intn(MaxVL))
		if op == OpVCmp {
			in.Dst = VM()
		}
	case UnitCtl:
		in.Addr = uint64(r.Intn(1<<20)) * 4
		in.Taken = r.Intn(2) == 0
	case UnitMem:
		in.Addr = uint64(r.Intn(1 << 24))
		if op.IsVector() {
			in.VL = uint16(1 + r.Intn(MaxVL))
			strides := []int32{8, 8, 8, 16, 64, -8}
			in.VS = strides[r.Intn(len(strides))]
			if op.IsLoad() {
				in.Dst = pick(RegV)
			} else {
				in.Src1 = pick(RegV)
			}
			if op == OpVGather {
				in.Src2 = pick(RegV)
			}
		} else {
			if op.IsLoad() {
				in.Dst = pick(RegS)
			} else {
				in.Src1 = pick(RegS)
			}
			in.Spill = r.Intn(4) == 0
		}
	}
	return in
}

func TestPropertyRandomInstructionsValidate(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		for i := 0; i < 32; i++ {
			in := randomInstruction(rr)
			if err := in.Validate(); err != nil {
				t.Logf("invalid: %v (%v)", in, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMemRangeContainsAllElements(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 32; i++ {
			in := randomInstruction(r)
			if !in.Op.IsMem() || in.Op == OpVGather || in.Op == OpVScatter {
				continue
			}
			start, end := in.MemRange()
			n := in.EffVL()
			stride := int64(in.VS)
			if !in.Op.IsVector() {
				stride = ElemBytes
			}
			for e := 0; e < n; e++ {
				lo := int64(in.Addr) + int64(e)*stride
				hi := lo + ElemBytes - 1
				if lo < 0 {
					continue
				}
				if uint64(lo) < start || uint64(hi) > end {
					t.Logf("%v: element %d [%#x,%#x] outside [%#x,%#x]", in, e, lo, hi, start, end)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
