package isa

import (
	"fmt"
	"strings"
)

var opNames = [NumOps]string{
	OpNop:      "nop",
	OpAAdd:     "a.add",
	OpAMul:     "a.mul",
	OpAMove:    "a.mov",
	OpALoad:    "a.ld",
	OpAStore:   "a.st",
	OpSAdd:     "s.add",
	OpSMul:     "s.mul",
	OpSDiv:     "s.div",
	OpSSqrt:    "s.sqrt",
	OpSLogic:   "s.log",
	OpSShift:   "s.shf",
	OpSMove:    "s.mov",
	OpSLoad:    "s.ld",
	OpSStore:   "s.st",
	OpBranch:   "br",
	OpJump:     "jmp",
	OpCall:     "call",
	OpReturn:   "ret",
	OpSetVL:    "setvl",
	OpSetVS:    "setvs",
	OpVAdd:     "v.add",
	OpVMul:     "v.mul",
	OpVDiv:     "v.div",
	OpVSqrt:    "v.sqrt",
	OpVLogic:   "v.log",
	OpVShift:   "v.shf",
	OpVCmp:     "v.cmp",
	OpVMerge:   "v.mrg",
	OpVSMul:    "vs.mul",
	OpVSAdd:    "vs.add",
	OpVReduce:  "v.red",
	OpVLoad:    "v.ld",
	OpVStore:   "v.st",
	OpVGather:  "v.gth",
	OpVScatter: "v.sct",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if int(o) < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// String renders the instruction in a readable assembly-like form, e.g.
//
//	v.ld v2, 0x1000(vl=64,vs=8)
//	v.add v3, v1, v2 (vl=64)
//	br 0x40 taken
func (in *Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	sep := " "
	put := func(r Reg) {
		if r.Class == RegNone {
			return
		}
		b.WriteString(sep)
		b.WriteString(r.String())
		sep = ", "
	}
	put(in.Dst)
	put(in.Src1)
	put(in.Src2)
	switch {
	case in.Op.IsMem() && in.Op.IsVector():
		fmt.Fprintf(&b, "%s0x%x(vl=%d,vs=%d)", sep, in.Addr, in.VL, in.VS)
	case in.Op.IsMem():
		fmt.Fprintf(&b, "%s0x%x", sep, in.Addr)
	case in.Op.IsBranch():
		dir := "not-taken"
		if in.Taken {
			dir = "taken"
		}
		fmt.Fprintf(&b, "%s0x%x %s", sep, in.Addr, dir)
	case in.Op.IsVector():
		fmt.Fprintf(&b, " (vl=%d)", in.VL)
	}
	if in.Spill {
		b.WriteString(" ;spill")
	}
	return b.String()
}
