// Package isa defines the vector instruction set architecture used by both
// the reference (in-order Convex C3400-class) simulator and the out-of-order
// OOOVA simulator from "Out-of-Order Vector Architectures" (Espasa, Valero,
// Smith; MICRO-30 1997).
//
// The ISA is a register-register vector architecture in the Cray/Convex
// tradition:
//
//   - A registers: scalar address/integer registers (8 logical).
//   - S registers: scalar data registers (8 logical).
//   - V registers: vector registers of up to MaxVL 64-bit elements (8 logical).
//   - The VM register: a single logical vector mask register.
//
// Vector instructions operate under the current vector length (VL) and, for
// strided memory accesses, the current vector stride (VS). In this trace
// representation every dynamic instruction carries its effective VL and VS,
// exactly as the Dixie-derived traces of the paper did.
package isa

import "fmt"

// MaxVL is the architectural maximum vector length: 128 elements of 64 bits,
// matching the Convex C3400 vector registers described in the paper.
const MaxVL = 128

// ElemBytes is the size of one vector element in bytes.
const ElemBytes = 8

// Architectural (logical) register-file sizes.
const (
	NumLogicalA = 8
	NumLogicalS = 8
	NumLogicalV = 8
	NumLogicalM = 1 // single architected vector-mask register
)

// RegClass identifies one of the four architectural register files.
type RegClass uint8

const (
	// RegNone marks an absent operand.
	RegNone RegClass = iota
	// RegA is the scalar address/integer register file.
	RegA
	// RegS is the scalar data register file.
	RegS
	// RegV is the vector register file.
	RegV
	// RegM is the vector-mask register file.
	RegM
)

// NumRegClasses is the number of RegClass values (RegNone included); it
// sizes class-indexed lookup arrays on the simulator hot path.
const NumRegClasses = int(RegM) + 1

// String returns the conventional one-letter name of the class.
func (c RegClass) String() string {
	switch c {
	case RegNone:
		return "-"
	case RegA:
		return "a"
	case RegS:
		return "s"
	case RegV:
		return "v"
	case RegM:
		return "vm"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// NumLogical returns the number of architectural registers in the class.
func (c RegClass) NumLogical() int {
	switch c {
	case RegA:
		return NumLogicalA
	case RegS:
		return NumLogicalS
	case RegV:
		return NumLogicalV
	case RegM:
		return NumLogicalM
	}
	return 0
}

// Reg names one architectural register: a class and an index within it.
// The zero value is "no register".
type Reg struct {
	Class RegClass
	Idx   uint8
}

// NoReg is the absent-operand register value.
var NoReg = Reg{}

// Valid reports whether r names an actual register (class set, index in range).
func (r Reg) Valid() bool {
	return r.Class != RegNone && int(r.Idx) < r.Class.NumLogical()
}

// String renders the register in assembly style, e.g. "v3" or "a0".
func (r Reg) String() string {
	if r.Class == RegNone {
		return "-"
	}
	if r.Class == RegM {
		return "vm"
	}
	return fmt.Sprintf("%s%d", r.Class, r.Idx)
}

// A returns the n-th A register.
func A(n int) Reg { return Reg{RegA, uint8(n)} }

// S returns the n-th S register.
func S(n int) Reg { return Reg{RegS, uint8(n)} }

// V returns the n-th V register.
func V(n int) Reg { return Reg{RegV, uint8(n)} }

// VM returns the vector mask register.
func VM() Reg { return Reg{RegM, 0} }

// Op enumerates the dynamic operations recognised by the simulators.
type Op uint8

const (
	// OpNop does nothing; it occupies a decode slot only.
	OpNop Op = iota

	// ---- Scalar A-unit operations (address arithmetic) ----

	// OpAAdd is scalar integer add/subtract on A registers.
	OpAAdd
	// OpAMul is scalar integer multiply on A registers.
	OpAMul
	// OpAMove copies between A registers (also A<->S moves).
	OpAMove
	// OpALoad loads one word from memory into an A register.
	OpALoad
	// OpAStore stores one A register word to memory.
	OpAStore

	// ---- Scalar S-unit operations (floating point / logical) ----

	// OpSAdd is scalar FP add/subtract.
	OpSAdd
	// OpSMul is scalar FP multiply.
	OpSMul
	// OpSDiv is scalar FP divide.
	OpSDiv
	// OpSSqrt is scalar FP square root.
	OpSSqrt
	// OpSLogic is scalar logical (and/or/xor) operation.
	OpSLogic
	// OpSShift is scalar shift.
	OpSShift
	// OpSMove copies between S registers.
	OpSMove
	// OpSLoad loads one word from memory into an S register.
	OpSLoad
	// OpSStore stores one S register word to memory.
	OpSStore

	// ---- Control flow ----

	// OpBranch is a conditional branch (direction carried by the trace).
	OpBranch
	// OpJump is an unconditional jump.
	OpJump
	// OpCall is a subroutine call (pushes the return stack).
	OpCall
	// OpReturn is a subroutine return (pops the return stack).
	OpReturn

	// ---- Vector state setup ----

	// OpSetVL writes the vector-length register from an A register.
	OpSetVL
	// OpSetVS writes the vector-stride register from an A register.
	OpSetVS

	// ---- Vector computation ----

	// OpVAdd is vector FP add/subtract (FU1 or FU2).
	OpVAdd
	// OpVMul is vector FP multiply (FU2 only).
	OpVMul
	// OpVDiv is vector FP divide (FU2 only).
	OpVDiv
	// OpVSqrt is vector FP square root (FU2 only).
	OpVSqrt
	// OpVLogic is vector logical operation (FU1 or FU2).
	OpVLogic
	// OpVShift is vector shift (FU1 or FU2).
	OpVShift
	// OpVCmp is vector compare; writes the mask register (FU1 or FU2).
	OpVCmp
	// OpVMerge is vector merge under mask (FU1 or FU2).
	OpVMerge
	// OpVSMul is vector-scalar multiply: V op S -> V (FU2 only).
	OpVSMul
	// OpVSAdd is vector-scalar add: V op S -> V (FU1 or FU2).
	OpVSAdd
	// OpVReduce is a reduction (sum/max) producing an S register (FU1 or FU2).
	OpVReduce

	// ---- Vector memory ----

	// OpVLoad is a unit- or constant-strided vector load.
	OpVLoad
	// OpVStore is a unit- or constant-strided vector store.
	OpVStore
	// OpVGather is an indexed vector load.
	OpVGather
	// OpVScatter is an indexed vector store.
	OpVScatter

	numOps // sentinel; keep last
)

// NumOps is the number of defined operations.
const NumOps = int(numOps)

// Unit identifies which machine resource executes an operation.
type Unit uint8

const (
	// UnitNone is used by OpNop.
	UnitNone Unit = iota
	// UnitA is the scalar address unit.
	UnitA
	// UnitS is the scalar data unit.
	UnitS
	// UnitCtl is the branch/control unit (resolved in the scalar pipeline).
	UnitCtl
	// UnitV is a vector functional unit (FU1 or FU2).
	UnitV
	// UnitMem is the memory access unit (scalar and vector references).
	UnitMem
)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case UnitNone:
		return "none"
	case UnitA:
		return "A"
	case UnitS:
		return "S"
	case UnitCtl:
		return "CTL"
	case UnitV:
		return "V"
	case UnitMem:
		return "MEM"
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// ExecUnit returns the machine unit that executes op.
func (o Op) ExecUnit() Unit {
	switch o {
	case OpNop:
		return UnitNone
	case OpAAdd, OpAMul, OpAMove, OpSetVL, OpSetVS:
		return UnitA
	case OpSAdd, OpSMul, OpSDiv, OpSSqrt, OpSLogic, OpSShift, OpSMove:
		return UnitS
	case OpBranch, OpJump, OpCall, OpReturn:
		return UnitCtl
	case OpVAdd, OpVMul, OpVDiv, OpVSqrt, OpVLogic, OpVShift, OpVCmp,
		OpVMerge, OpVSMul, OpVSAdd, OpVReduce:
		return UnitV
	case OpALoad, OpAStore, OpSLoad, OpSStore,
		OpVLoad, OpVStore, OpVGather, OpVScatter:
		return UnitMem
	}
	return UnitNone
}

// IsVector reports whether op is a vector operation (computation or memory),
// i.e. whether it reads or writes V registers and executes under VL.
func (o Op) IsVector() bool {
	switch o {
	case OpVAdd, OpVMul, OpVDiv, OpVSqrt, OpVLogic, OpVShift, OpVCmp,
		OpVMerge, OpVSMul, OpVSAdd, OpVReduce,
		OpVLoad, OpVStore, OpVGather, OpVScatter:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func (o Op) IsMem() bool {
	switch o {
	case OpALoad, OpAStore, OpSLoad, OpSStore,
		OpVLoad, OpVStore, OpVGather, OpVScatter:
		return true
	}
	return false
}

// IsLoad reports whether op reads memory.
func (o Op) IsLoad() bool {
	switch o {
	case OpALoad, OpSLoad, OpVLoad, OpVGather:
		return true
	}
	return false
}

// IsStore reports whether op writes memory.
func (o Op) IsStore() bool {
	switch o {
	case OpAStore, OpSStore, OpVStore, OpVScatter:
		return true
	}
	return false
}

// IsBranch reports whether op is a control-transfer instruction.
func (o Op) IsBranch() bool {
	switch o {
	case OpBranch, OpJump, OpCall, OpReturn:
		return true
	}
	return false
}

// NeedsFU2 reports whether a vector computation can only execute on FU2.
// Per the paper, FU1 executes all vector instructions except multiplication,
// division and square root.
func (o Op) NeedsFU2() bool {
	switch o {
	case OpVMul, OpVDiv, OpVSqrt, OpVSMul:
		return true
	}
	return false
}

// Instruction is one dynamic instruction from a trace. Fields that do not
// apply to the opcode are left at their zero values.
type Instruction struct {
	// PC is the (synthetic) program counter; used for branch prediction.
	PC uint64
	// Op is the operation.
	Op Op
	// Dst is the destination register (NoReg if none).
	Dst Reg
	// Src1, Src2 are source registers (NoReg if absent).
	Src1, Src2 Reg
	// VL is the effective vector length for vector operations (1..MaxVL).
	VL uint16
	// VS is the stride in bytes between consecutive elements of a vector
	// memory access. Unit stride is ElemBytes.
	VS int32
	// Addr is the base effective address for memory operations, or the
	// branch target for control transfers.
	Addr uint64
	// Taken is the branch outcome recorded in the trace.
	Taken bool
	// Spill marks memory operations that the compiler generated to spill or
	// refill a register (used by the Table 3 accounting and §6 experiments).
	Spill bool
}

// EffVL returns the vector length the instruction executes under: VL for
// vector instructions (minimum 1), 1 for scalar ones.
func (in *Instruction) EffVL() int {
	if in.Op.IsVector() {
		if in.VL == 0 {
			return 1
		}
		return int(in.VL)
	}
	return 1
}

// MemBytes returns the number of bytes moved by a memory instruction
// (0 for non-memory ops).
func (in *Instruction) MemBytes() int {
	if !in.Op.IsMem() {
		return 0
	}
	return in.EffVL() * ElemBytes
}

// MemRange returns the inclusive byte range [start, end] potentially touched
// by a memory instruction, as computed by the Range stage of the paper's
// memory pipeline: start = base, end = base + (VL-1)*VS + (ElemBytes-1).
// Negative strides produce start < base; the returned range is normalised so
// start <= end. Gather/scatter instructions return a conservatively large
// range (the paper's hardware also disambiguates them conservatively).
func (in *Instruction) MemRange() (start, end uint64) {
	if !in.Op.IsMem() {
		return 0, 0
	}
	if in.Op == OpVGather || in.Op == OpVScatter {
		// Conservative: indexed accesses may touch a wide region around the
		// base. Use base +/- MaxVL*MaxVL bytes as the hardware's pessimistic
		// assumption.
		const slop = uint64(MaxVL * MaxVL)
		s := in.Addr
		if s > slop {
			s -= slop
		} else {
			s = 0
		}
		return s, in.Addr + slop
	}
	n := int64(in.EffVL())
	stride := int64(in.VS)
	if !in.Op.IsVector() || stride == 0 {
		stride = ElemBytes
	}
	last := int64(in.Addr) + (n-1)*stride
	first := int64(in.Addr)
	if last < first {
		first, last = last, first
	}
	if first < 0 {
		first = 0
	}
	return uint64(first), uint64(last) + ElemBytes - 1
}

// Reads returns the registers read by the instruction (excluding NoReg).
// The result slice aliases a fixed-size backing array; callers must not
// retain it across calls.
func (in *Instruction) Reads(buf []Reg) []Reg {
	buf = buf[:0]
	if in.Src1.Class != RegNone {
		buf = append(buf, in.Src1)
	}
	if in.Src2.Class != RegNone {
		buf = append(buf, in.Src2)
	}
	// Stores read the register being stored (held in Dst by convention? no:
	// stores carry their data register in Src1). Merge reads the mask.
	if in.Op == OpVMerge {
		buf = append(buf, VM())
	}
	return buf
}

// WritesReg reports whether the instruction defines Dst.
func (in *Instruction) WritesReg() bool {
	if in.Dst.Class == RegNone {
		return false
	}
	return !in.Op.IsStore() && !in.Op.IsBranch()
}

// Validate checks structural well-formedness of the instruction and returns
// a descriptive error for malformed ones. The trace reader and builder call
// this so that simulator internals can assume valid instructions.
func (in *Instruction) Validate() error {
	if int(in.Op) >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Op.IsVector() {
		if in.VL == 0 || in.VL > MaxVL {
			return fmt.Errorf("isa: %s has VL=%d outside [1,%d]", in.Op, in.VL, MaxVL)
		}
	}
	for _, r := range []Reg{in.Dst, in.Src1, in.Src2} {
		if r.Class != RegNone && !r.Valid() {
			return fmt.Errorf("isa: %s has out-of-range register %s%d", in.Op, r.Class, r.Idx)
		}
	}
	if in.Op.IsMem() && in.Op.IsVector() && in.VS == 0 {
		return fmt.Errorf("isa: vector memory op %s has zero stride", in.Op)
	}
	if in.Spill && !in.Op.IsMem() {
		return fmt.Errorf("isa: non-memory op %s marked as spill", in.Op)
	}
	return nil
}
