package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath turns the bytes-per-op CI budgets into per-call-site diagnostics:
// a function annotated //ovlint:hotpath — the per-instruction simulator
// step, the per-cycle component methods — and every module function it
// statically calls must not allocate.
//
// Flagged constructs: make, new, function literals (closure allocation),
// taking the address of a composite literal, slice and map literals, append
// onto a freshly allocated slice, string concatenation, boxing a non-pointer
// value into an interface argument, go statements, and defer.
//
// Functions annotated //ovlint:coldpath are pruned from the traversal:
// per-run setup and result assembly (reserveFor, finish, Reset) runs once
// per trace and is amortised over millions of instructions. Calls through
// interfaces and function values are not resolved; annotate the concrete
// implementations (the vregfile port files) directly.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "functions marked //ovlint:hotpath, and all module code they statically " +
		"call, must be allocation-free",
	Run: runHotpath,
}

func runHotpath(pass *Pass) {
	// Roots are the hotpath-annotated declarations of this package; the
	// traversal then crosses package boundaries freely.
	type workItem struct {
		fn   *types.Func
		root string
	}
	var work []workItem
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := pass.funcDirective(pass.Pkg, fd, "hotpath"); !ok {
				continue
			}
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				work = append(work, workItem{fn: obj, root: obj.FullName()})
			}
		}
	}
	if len(work) == 0 {
		return
	}

	visited := make(map[*types.Func]bool)
	for len(work) > 0 {
		item := work[0]
		work = work[1:]
		if visited[item.fn] {
			continue
		}
		visited[item.fn] = true
		pkg, decl, ok := pass.Decl(item.fn)
		if !ok || decl.Body == nil {
			continue
		}
		if _, cold := pass.funcDirective(pkg, decl, "coldpath"); cold {
			continue
		}
		checkAllocFree(pass, pkg, decl, item.root)
		for _, next := range staticCallees(pkg, decl) {
			if !visited[next] {
				work = append(work, workItem{fn: next, root: item.root})
			}
		}
	}
}

// staticCallees returns the module functions a declaration statically
// calls. Calls through interfaces and function values resolve to nothing.
func staticCallees(pkg *Package, decl *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := callee(pkg.Info, call).(*types.Func); ok {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// checkAllocFree reports every allocating construct in the declaration.
func checkAllocFree(pass *Pass, pkg *Package, decl *ast.FuncDecl, root string) {
	info := pkg.Info
	name := decl.Name.Name
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in %s, reachable from //ovlint:hotpath root %s: hot-path code must be allocation-free (mark per-run setup //ovlint:coldpath, or waive with //ovlint:allow hotpath)", what, name, root)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := callee(info, n)
			if b, ok := obj.(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					report(n.Pos(), "make allocates")
				case "new":
					report(n.Pos(), "new allocates")
				case "append":
					if len(n.Args) > 0 && allocatesFreshSlice(info, n.Args[0]) {
						report(n.Pos(), "append onto a fresh slice allocates")
					}
				}
				return true
			}
			if isConversion(info, n) {
				if isInterfaceType(info.TypeOf(n.Fun)) && len(n.Args) == 1 &&
					boxes(info, n.Args[0], info.TypeOf(n.Fun)) {
					report(n.Pos(), "conversion to interface boxes its operand")
				}
				return true
			}
			if sig, ok := info.TypeOf(n.Fun).(*types.Signature); ok {
				checkBoxedArgs(info, n, sig, report)
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates its closure")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal allocates")
					return false // the literal itself is part of this report
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine")
		case *ast.DeferStmt:
			report(n.Pos(), "defer adds per-call overhead")
		}
		return true
	})
}

// allocatesFreshSlice reports whether expr is a freshly allocated slice —
// append([]T(nil), ...), append([]T{}, ...) — whose append must allocate.
func allocatesFreshSlice(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if isConversion(info, e) && len(e.Args) == 1 {
			if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// checkBoxedArgs reports call arguments that box a concrete non-pointer
// value into an interface parameter (fmt-style variadic any included).
func checkBoxedArgs(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	// An f(slice...) call forwards an existing slice: nothing boxes here.
	if call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			break
		}
		if boxes(info, arg, pt) {
			report(arg.Pos(), "argument boxes a value into interface "+pt.String()+", which allocates")
		}
	}
}

// boxes reports whether passing arg as a parameter of type param stores a
// concrete non-pointer value in an interface, which heap-allocates the
// value. Pointers (and nil) fit in the interface word directly.
func boxes(info *types.Info, arg ast.Expr, param types.Type) bool {
	if !isInterfaceType(param) {
		return false
	}
	at := info.TypeOf(arg)
	if at == nil || isInterfaceType(at) {
		return false
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}
