// Package analysis is the project's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, diagnostics) built directly on go/parser and
// go/types, because the build environment vendors nothing.
//
// The analyzers in this package turn the repo's headline guarantees —
// byte-identical output for any worker count, warm-restart byte-identity,
// checkpoint/resume byte-identity, and the zero-alloc hot path — from
// dynamically-tested properties into compile-time diagnostics. cmd/ovlint
// is the command-line driver; the full suite runs clean over ./... as a
// tier-1 CI gate.
//
// # Annotation vocabulary
//
//	//ovlint:hotpath <why>      function (and all module code it statically
//	                            calls) must be allocation-free
//	//ovlint:coldpath <why>     prune this function from hot-path traversal
//	                            (per-run setup/teardown, amortised over the
//	                            whole trace)
//	//ovlint:config <why>       struct field is configuration or scratch,
//	                            not machine state: exempt from snapshot
//	                            completeness
//	//ovlint:allow <name> <why> suppress diagnostics of analyzer <name> on
//	                            this line or the next
//
// Every directive requires a reason: a waiver that does not say why it is
// safe is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //ovlint:allow
	// waivers.
	Name string
	// Doc is the one-paragraph description cmd/ovlint -list prints.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass)
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one (analyzer, package) unit of work. The whole Program is
// exposed because several analyzers (hotpath reachability, gobsafe type
// walks) follow references across package boundaries.
type Pass struct {
	*Program
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless an //ovlint:allow waiver for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Program.allowed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Run applies the analyzers to every package in the program and returns the
// surviving diagnostics in file/line order, deduplicated (a hot-path
// function reachable from roots in two packages is reported once).
func (prog *Program) Run(analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{
				Program:  prog,
				Analyzer: a,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					key := d.String()
					if !seen[key] {
						seen[key] = true
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directive is one parsed //ovlint: comment.
type directive struct {
	kind   string // "hotpath", "coldpath", "config", "allow"
	arg    string // analyzer name for "allow"
	reason string
	pos    token.Pos
}

// parseDirective parses an //ovlint: comment line, returning ok=false for
// ordinary comments.
func parseDirective(text string, pos token.Pos) (directive, bool) {
	const prefix = "//ovlint:"
	if !strings.HasPrefix(text, prefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, prefix)
	kind := rest
	var tail string
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		kind, tail = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	d := directive{kind: kind, pos: pos}
	switch kind {
	case "allow":
		fields := strings.Fields(tail)
		if len(fields) > 0 {
			d.arg = fields[0]
			d.reason = strings.TrimSpace(strings.TrimPrefix(tail, fields[0]))
		}
	case "hotpath", "coldpath", "config":
		d.reason = tail
	default:
		return directive{}, false
	}
	return d, true
}

// collectDirectives indexes every //ovlint: directive of a file by line.
func collectDirectives(fset *token.FileSet, f *ast.File) map[int][]directive {
	byLine := make(map[int][]directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c.Text, c.Pos()); ok {
				line := fset.Position(c.Pos()).Line
				byLine[line] = append(byLine[line], d)
			}
		}
	}
	return byLine
}

// allowed reports whether an //ovlint:allow waiver for the analyzer covers
// the position: the waiver sits on the same line (trailing comment) or on
// the line directly above (comment-above-statement). A waiver with no
// reason does not count.
func (prog *Program) allowed(analyzer string, pos token.Position) bool {
	byLine := prog.directives[pos.Filename]
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.kind == "allow" && d.arg == analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// funcDirective returns the directive of the given kind attached to a
// function declaration's doc comment, if any.
func (prog *Program) funcDirective(pkg *Package, decl *ast.FuncDecl, kind string) (directive, bool) {
	if decl.Doc == nil {
		return directive{}, false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c.Text, c.Pos()); ok && d.kind == kind {
			return d, true
		}
	}
	return directive{}, false
}

// fieldDirective returns the directive of the given kind attached to a
// struct field (doc comment above or trailing line comment), if any.
func fieldDirective(field *ast.Field, kind string) (directive, bool) {
	for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, ok := parseDirective(c.Text, c.Pos()); ok && d.kind == kind {
				return d, true
			}
		}
	}
	return directive{}, false
}
