package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// simPackages are the simulator packages where determinism is load-bearing:
// any wall-clock read, randomness, or goroutine spawn inside them can break
// byte-identical replay. Matched by import-path suffix so the analysistest
// trees (module "td") exercise the same policy.
var simPackages = []string{
	"ooosim", "refsim", "rename", "iq", "rob", "bpred",
	"vregfile", "sched", "funcsim", "mem", "metrics", "probe",
	// span rides along inside the simulation path (simulate and grid-point
	// spans), so the same discipline applies: its wall-clock reads are
	// observability metadata and every one carries an explicit waiver.
	"span",
}

// isSimPackage reports whether the import path names one of the simulator
// packages.
func isSimPackage(path string) bool {
	for _, name := range simPackages {
		if strings.HasSuffix(path, "internal/"+name) {
			return true
		}
	}
	return false
}

// lastSegment returns the final element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// callee resolves the object a call expression invokes: a *types.Func for
// static function and method calls, a *types.Builtin for builtins, a
// *types.Var for calls through function values, or nil for type
// conversions and calls of function literals.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// funcFrom reports whether obj is the named function of the named package
// (matched on the package's full path).
func funcFrom(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isInterfaceType reports whether t is an interface type (including any).
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// structHasContextField reports whether t (after stripping pointers) is a
// struct with a context.Context field, like ooosim.RunOpts or sweep.Opts.
func structHasContextField(t types.Type) bool {
	for {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// receiverNamed returns the named type of a method declaration's receiver,
// stripping any pointer, or nil for plain functions.
func receiverNamed(pkg *Package, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := pkg.Info.TypeOf(decl.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
