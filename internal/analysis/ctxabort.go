package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxabort guards the preemption contract: a million-instruction simulation
// must be cancellable mid-flight, so run loops and grid fan-outs have to
// thread a context.Context and actually poll it.
//
// Three checks:
//
//  1. Module-wide: a context.Context parameter that the function body never
//     references is a dropped cancellation path.
//
//  2. In the run-loop packages (ooosim, refsim, sweep, engine): a loop that
//     performs simulation work — calls a step/Run function or invokes a
//     function value — inside a function that has a context in scope
//     (directly or through an opts struct) must reference that context in
//     the loop, or cancellation silently waits for the loop to finish.
//
//  3. A package declaring a Machine type with a Run method must offer at
//     least one context-threading entry point (the RunCheckpointed shape),
//     so new machine models cannot land without the preemption contract.
var Ctxabort = &Analyzer{
	Name: "ctxabort",
	Doc: "simulator run loops and sweep/grid fan-outs must thread a " +
		"context.Context and contain an abort check",
	Run: runCtxabort,
}

// runLoopPackages are the packages whose loops do the expensive work.
var runLoopPackages = []string{"ooosim", "refsim", "sweep", "engine"}

func isRunLoopPackage(path string) bool {
	for _, name := range runLoopPackages {
		if strings.HasSuffix(path, "internal/"+name) {
			return true
		}
	}
	return false
}

func runCtxabort(pass *Pass) {
	info := pass.Pkg.Info
	inScope := isRunLoopPackage(pass.Pkg.Path)

	hasMachineRun := false
	hasCtxEntry := false

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnusedCtx(pass, fd)
			if ctxBearing(info, fd.Type) {
				hasCtxEntry = true
			}
			if named := receiverNamed(pass.Pkg, fd); named != nil &&
				named.Obj().Name() == "Machine" && fd.Name.Name == "Run" {
				hasMachineRun = true
			}
			if inScope && ctxBearing(info, fd.Type) {
				checkLoops(pass, fd)
			}
		}
	}

	if hasMachineRun && !hasCtxEntry {
		// Report on the package's Machine type.
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Machine" {
					return true
				}
				pass.Reportf(ts.Pos(), "machine model %s.Machine has Run but no cancellable entry point: add a RunCheckpointed-style API threading context.Context so the job layer can preempt it", lastSegment(pass.Pkg.Path))
				return false
			})
		}
	}
}

// checkUnusedCtx reports context.Context parameters the body never reads.
func checkUnusedCtx(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(), "context parameter %s is never used: thread it to the work this function starts, or it can never be aborted", name.Name)
			}
		}
	}
}

// ctxBearing reports whether the function signature gives the body access
// to a context: a direct context.Context parameter, or a parameter whose
// struct type carries a context.Context field (RunOpts.Ctx, sweep.Opts.Ctx).
func ctxBearing(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) || structHasContextField(t) {
			return true
		}
	}
	return false
}

// checkLoops reports work loops that never consult the context available to
// their function.
func checkLoops(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var inspectLoop func(body *ast.BlockStmt, loopPos ast.Node)
	seen := make(map[ast.Node]bool)
	inspectLoop = func(body *ast.BlockStmt, loop ast.Node) {
		if seen[loop] {
			return
		}
		seen[loop] = true
		if !loopDoesWork(info, body) {
			return
		}
		if referencesContext(info, body) {
			return
		}
		pass.Reportf(loop.Pos(), "this loop runs simulation work but never checks the context available to %s: poll ctx.Err() (or pass the context down) so the loop can be aborted", fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inspectLoop(n.Body, n)
		case *ast.RangeStmt:
			inspectLoop(n.Body, n)
		}
		return true
	})
}

// loopDoesWork reports whether the loop body performs simulation-scale work:
// a call to a step/Run/RunCheckpointed function defined in a simulator
// package, or a call through a function value (the engine's task fn).
func loopDoesWork(info *types.Info, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		// A `go worker()` spawn loop finishes immediately; the goroutine
		// it starts is responsible for its own abort checks.
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch obj := callee(info, call).(type) {
		case *types.Func:
			name := obj.Name()
			if (name == "step" || name == "Run" || name == "RunCheckpointed") &&
				obj.Pkg() != nil && isRunLoopPackage(obj.Pkg().Path()) {
				work = true
			}
		case *types.Var:
			// A call through a function-typed variable or parameter: the
			// engine cannot know how long fn runs, so it must stay
			// abortable between iterations.
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				work = true
			}
		}
		return true
	})
	return work
}

// referencesContext reports whether any expression in the loop body has
// type context.Context (polling ctx.Err(), select on ctx.Done(), passing
// opts.Ctx onward all qualify).
func referencesContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := info.TypeOf(expr); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}
