package analysis

import (
	"go/ast"
	"go/types"
)

// Gobsafe audits every struct that crosses an encoding/gob boundary — the
// checkpoint Encode/Decode pairs, the store's result payloads, anything
// passed to gob.Register. gob silently drops unexported fields, so a
// checkpoint State struct with one lowercase field round-trips without
// error and resumes wrong; interface-typed fields panic at encode time
// unless every concrete type is registered, which no compiler checks.
//
// The walk recurses through module-defined named types, slices, arrays,
// maps, and pointers. Types providing their own encoding (GobEncode,
// MarshalBinary) are trusted. Foreign (stdlib) types are skipped.
var Gobsafe = &Analyzer{
	Name: "gobsafe",
	Doc: "structs reaching gob.Encode/Decode/Register must have no unexported " +
		"(silently dropped) fields and no interface-typed fields",
	Run: runGobsafe,
}

func runGobsafe(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, ok := gobPayloadArg(info, call)
			if !ok {
				return true
			}
			t := info.TypeOf(arg)
			if t == nil {
				return true
			}
			w := &gobWalker{pass: pass, visited: make(map[types.Type]bool)}
			w.check(t)
			return true
		})
	}
}

// gobPayloadArg returns the expression whose type flows into gob, if the
// call is one of the gob entry points.
func gobPayloadArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
		return nil, false
	}
	switch fn.Name() {
	case "Register":
		if len(call.Args) == 1 {
			return call.Args[0], true
		}
	case "RegisterName":
		if len(call.Args) == 2 {
			return call.Args[1], true
		}
	case "Encode", "Decode", "EncodeValue", "DecodeValue":
		// Methods of *gob.Encoder / *gob.Decoder.
		if fn.Signature().Recv() != nil && len(call.Args) == 1 {
			return call.Args[0], true
		}
	}
	return nil, false
}

type gobWalker struct {
	pass    *Pass
	visited map[types.Type]bool
}

// check validates t and everything reachable from it.
func (w *gobWalker) check(t types.Type) {
	if w.visited[t] {
		return
	}
	w.visited[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		w.check(u.Elem())
	case *types.Slice:
		w.check(u.Elem())
	case *types.Array:
		w.check(u.Elem())
	case *types.Map:
		w.check(u.Key())
		w.check(u.Elem())
	case *types.Struct:
		named, _ := t.(*types.Named)
		if named != nil {
			if !w.moduleType(named) || selfEncoding(named) {
				return
			}
		}
		name := t.String()
		if named != nil {
			name = named.Obj().Name()
		}
		for i := 0; i < u.NumFields(); i++ {
			field := u.Field(i)
			if !field.Exported() {
				w.pass.Reportf(field.Pos(),
					"unexported field %s.%s reaches encoding/gob: gob silently drops it, so a decoded value is quietly incomplete; export it or waive with //ovlint:allow gobsafe",
					name, field.Name())
				continue
			}
			if isInterfaceType(field.Type()) {
				w.pass.Reportf(field.Pos(),
					"interface-typed field %s.%s reaches encoding/gob: every concrete type stored in it must be gob.Register-ed or encoding fails at runtime; register them and waive with //ovlint:allow gobsafe",
					name, field.Name())
				continue
			}
			w.check(field.Type())
		}
	}
}

// moduleType reports whether the named type is declared in this module (the
// walk cannot see, and should not second-guess, stdlib internals).
func (w *gobWalker) moduleType(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	mod := w.pass.ModulePath
	return path == mod || len(path) > len(mod) && path[:len(mod)+1] == mod+"/"
}

// selfEncoding reports whether the type provides its own gob or binary
// encoding, making its field layout irrelevant.
func selfEncoding(named *types.Named) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary":
				return true
			}
		}
	}
	return false
}
