// Package hot exercises the hotpath analyzer: allocation sites inside the
// static call graph of a //ovlint:hotpath root are diagnostics, coldpath
// prunes, waivers suppress, and unreachable code is ignored.
package hot

type point struct{ x, y int }

type sim struct {
	buf []int64
	fn  func()
}

//ovlint:hotpath per-instruction step, must be allocation-free
func (s *sim) step(v int64) {
	s.buf = append(s.buf, v) // append within reserved capacity: no diagnostic
	s.record(v)
	s.box(v)
	s.setup()
	s.waived()
}

// record is reachable from the step root: its allocations are flagged.
func (s *sim) record(v int64) {
	tmp := make([]int64, 4) // want `make allocates`
	tmp[0] = v
	p := &point{x: int(v)} // want `address of composite literal allocates`
	_ = p
	s.fn = func() {} // want `function literal allocates its closure`
}

func sink(v any) { _ = v }

// box passes a concrete non-pointer value to an interface parameter.
func (s *sim) box(v int64) {
	sink(v) // want `boxes a value into interface`
}

// setup is pruned from the traversal: per-run work is amortised.
//
//ovlint:coldpath once per run
func (s *sim) setup() {
	s.buf = make([]int64, 0, 1024)
}

// waived demonstrates a per-line waiver inside hot code.
func (s *sim) waived() {
	scratch := make([]int64, 8) //ovlint:allow hotpath pooled scratch, measured zero amortised allocations
	_ = scratch
}

// unrelated is never reached from a hotpath root: no diagnostics.
func unrelated() []int {
	return []int{1, 2, 3}
}
