// Package ooosim is the well-formed machine model: Run exists, and
// RunCheckpointed threads a context and polls it inside the step loop, so
// no ctxabort diagnostics fire. One `// want` expectation lives in the
// sibling refsim package; this package is all negatives.
package ooosim

import "context"

type Machine struct{}

func (m *Machine) Run(n int) int64 {
	total, _ := m.RunCheckpointed(context.Background(), n)
	return total
}

// RunCheckpointed is the cancellable entry point check 3 requires.
func (m *Machine) RunCheckpointed(ctx context.Context, n int) (int64, error) {
	var total int64
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += m.step(i)
	}
	return total, nil
}

func (m *Machine) step(i int) int64 { return int64(i) }
