// Package sweep exercises the ctxabort loop checks in a run-loop package:
// unused context parameters, work loops that never poll, and the negative
// shapes (polled loops, goroutine spawn loops).
package sweep

import "context"

// Opts carries the context the way the real sweep.Opts does.
type Opts struct {
	Ctx context.Context
}

// Run stands in for a simulation entry point; calls to it mark a loop as
// doing work.
func Run(n int) int { return n }

// fire drops its cancellation path on the floor.
func fire(ctx context.Context) { // want `context parameter ctx is never used`
	Run(1)
}

// GridSerial uses its context, but not inside the work loop: cancellation
// silently waits for the whole grid.
func GridSerial(ctx context.Context, n int) error {
	for i := 0; i < n; i++ { // want `never checks the context`
		Run(i)
	}
	return ctx.Err()
}

// GridPolled threads the opts-carried context into the loop: no diagnostic.
func GridPolled(o Opts, n int) error {
	for i := 0; i < n; i++ {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return o.Ctx.Err()
		}
		Run(i)
	}
	return nil
}

// Spawn's loop only starts goroutines — it finishes immediately, so it needs
// no abort check of its own.
func Spawn(ctx context.Context, fns []func()) {
	for _, f := range fns {
		go f()
	}
	<-ctx.Done()
}
