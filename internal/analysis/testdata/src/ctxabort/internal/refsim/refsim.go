// Package refsim exercises ctxabort check 3: a machine model whose only
// entry point cannot be cancelled.
package refsim

type Machine struct{} // want `machine model refsim.Machine has Run but no cancellable entry point`

func (m *Machine) Run(n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		total += int64(i)
	}
	return total
}
