// Package machine exercises the snapshotcomplete analyzer: every field of a
// type with a Snapshot/Restore pair must be read by Snapshot or carry an
// //ovlint:config annotation.
package machine

// State is the checkpoint payload.
type State struct {
	Cycle int64
	PC    int64
}

type Machine struct {
	cycle int64
	pc    int64
	heat  int64 // want `field Machine.heat is not captured`
	width int   //ovlint:config structural size, fixed at construction
}

func (m *Machine) Snapshot() State {
	return State{Cycle: m.cycle, PC: m.pc}
}

func (m *Machine) Restore(st State) {
	m.cycle, m.pc = st.Cycle, st.PC
}

// core's unexported pair is matched case-insensitively, like the real
// machines' snapshot/restore.
type core struct {
	ticks int64
	skew  int64 // want `field core.skew is not captured`
}

func (c *core) snapshot() int64 { return c.ticks }
func (c *core) restore(v int64) { c.ticks = v }

// Sampler has Snapshot but no Restore: not a checkpointable machine, so its
// uncaptured field is fine.
type Sampler struct {
	window int64
	peak   int64
}

func (s *Sampler) Snapshot() int64 { return s.window }
