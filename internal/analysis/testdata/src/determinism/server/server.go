// Package server exercises the module-wide map-order rule outside the
// simulator packages, where wall-clock reads stay legal.
package server

import (
	"fmt"
	"sort"
	"time"
)

// stamp reads the wall clock outside a simulator package: no diagnostic.
func stamp() time.Time { return time.Now() }

func render(stats map[string]int64) string {
	out := ""
	for name, v := range stats { // want `map iteration order is random`
		out += fmt.Sprintf("%s=%d\n", name, v)
	}
	return out
}

// renderSorted is the collect-then-sort rewrite: no diagnostic.
func renderSorted(stats map[string]int64) string {
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += fmt.Sprintf("%s=%d\n", name, stats[name])
	}
	return out
}
