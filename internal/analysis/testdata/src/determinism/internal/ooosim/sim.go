// Package ooosim exercises the determinism analyzer's simulator-package
// rules. The checkAll function reproduces the defect the analyzer caught in
// the real repo's RunWithFault: ranging over a map of rename tables while
// constructing the returned error, so the reported class depended on map
// iteration order.
package ooosim

import (
	"fmt"
	_ "math/rand" // want `simulator package imports math/rand`
	"sort"
	"time"
)

type table struct{ bad bool }

// checkAll models the pre-fix fault.go pattern: first corrupt table wins,
// and "first" is whatever order the runtime hands out.
func checkAll(tables map[int]*table) error {
	for class, tb := range tables { // want `map iteration order is random`
		if tb.bad {
			return fmt.Errorf("class %d corrupt", class)
		}
	}
	return nil
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `calls time.Now`
}

func spawn(f func()) {
	go f() // want `spawns a goroutine`
}

// sortedKeys accumulates and sorts: order-insensitive, no diagnostic.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// drain is waived: the map holds cancellation callbacks whose invocation
// order is unobservable.
func drain(m map[int]func()) {
	//ovlint:allow determinism cancellations are order-independent
	for _, f := range m {
		f()
	}
}
