// Package ckpt exercises the gobsafe analyzer: structs crossing a gob
// boundary must not have unexported (silently dropped) fields or
// interface-typed fields, recursively; self-encoding types are trusted.
package ckpt

import (
	"bytes"
	"encoding/gob"
)

// Good round-trips faithfully: no diagnostics.
type Good struct {
	Cycle int64
	Name  string
}

type Bad struct {
	Cycle  int64
	hidden int64 // want `unexported field Bad.hidden reaches encoding/gob`
	Body   any   // want `interface-typed field Bad.Body reaches encoding/gob`
}

// Nested reaches Bad through a slice; the diagnostics stay on Bad's fields.
type Nested struct {
	Inner []Bad
}

// Opaque encodes itself, so its unexported field is fine.
type Opaque struct {
	raw []byte
}

func (o Opaque) MarshalBinary() ([]byte, error)  { return o.raw, nil }
func (o *Opaque) UnmarshalBinary(b []byte) error { o.raw = append(o.raw[:0], b...); return nil }

func roundTrip() error {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(Good{}); err != nil {
		return err
	}
	if err := enc.Encode(Nested{}); err != nil {
		return err
	}
	gob.Register(Opaque{})
	dec := gob.NewDecoder(&buf)
	var g Good
	return dec.Decode(&g)
}
