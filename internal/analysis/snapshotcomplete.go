package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Snapshotcomplete guards the checkpoint/resume byte-identity contract
// against its worst failure mode: a machine struct gains a field, the
// Snapshot/Restore pair is not updated, and checkpoints silently resume
// with stale state — wrong results with no error anywhere.
//
// For every type with a Snapshot/Restore method pair (exported or not),
// every field of the struct must either be read through the receiver inside
// the Snapshot method, or carry an //ovlint:config annotation stating that
// it is configuration or per-call scratch rather than evolving machine
// state.
var Snapshotcomplete = &Analyzer{
	Name: "snapshotcomplete",
	Doc: "every field of a type with a Snapshot/Restore pair must be captured " +
		"by Snapshot or marked //ovlint:config",
	Run: runSnapshotcomplete,
}

func runSnapshotcomplete(pass *Pass) {
	info := pass.Pkg.Info

	// Group method declarations by receiver type.
	type pair struct {
		snapshot *ast.FuncDecl
		restore  bool
	}
	pairs := make(map[*types.Named]*pair)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			named := receiverNamed(pass.Pkg, fd)
			if named == nil {
				continue
			}
			p := pairs[named]
			if p == nil {
				p = &pair{}
				pairs[named] = p
			}
			switch strings.ToLower(fd.Name.Name) {
			case "snapshot":
				p.snapshot = fd
			case "restore":
				p.restore = true
			}
		}
	}

	// Iterate the receiver types in declaration order: diagnostics are
	// sorted by position before reporting, but the analyzers hold
	// themselves to the determinism rule they enforce.
	var order []*types.Named
	for named := range pairs {
		order = append(order, named)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Obj().Pos() < order[j].Obj().Pos() })

	for _, named := range order {
		p := pairs[named]
		if p.snapshot == nil || !p.restore || p.snapshot.Body == nil {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		captured := capturedFields(info, p.snapshot)
		structAST := structASTFor(pass.Pkg, named.Obj().Name())
		if structAST == nil {
			continue
		}
		for _, field := range structAST.Fields.List {
			if _, waived := fieldDirective(field, "config"); waived {
				continue
			}
			for _, name := range field.Names {
				obj, ok := info.Defs[name].(*types.Var)
				if !ok || captured[obj] {
					continue
				}
				pass.Reportf(name.Pos(),
					"field %s.%s is not captured by (%s).%s: a checkpoint restored without it resumes with stale state; capture it in the State struct, or mark it //ovlint:config if it is configuration or scratch",
					named.Obj().Name(), name.Name, named.Obj().Name(), p.snapshot.Name.Name)
			}
		}
	}
}

// capturedFields collects every struct field object read through a selector
// inside the snapshot method's body (m.field, including range expressions
// and type switches over m.field).
func capturedFields(info *types.Info, snapshot *ast.FuncDecl) map[*types.Var]bool {
	captured := make(map[*types.Var]bool)
	ast.Inspect(snapshot.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				captured[v] = true
			}
		}
		return true
	})
	return captured
}

// structASTFor finds the struct type literal declared under the given type
// name in the package, so field annotations and positions are available.
func structASTFor(pkg *Package, name string) *ast.StructType {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}
