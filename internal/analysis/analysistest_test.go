package analysis

// The test harness mirrors golang.org/x/tools/go/analysis/analysistest,
// which the build environment does not vendor: each analyzer has a module
// tree under testdata/src/<name>/ (module path "td", so the suffix-matched
// package policies fire), and every expected diagnostic is declared in the
// tree itself with a `// want "regexp"` comment on the line it is reported
// on. The test fails on any unexpected diagnostic and on any unmatched want.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runTestdata loads testdata/src/<dir> as module "td", runs the analyzers,
// and checks the diagnostics against the tree's want comments.
func runTestdata(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	prog, err := LoadModule(root, "td")
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: unquoting want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: compiling want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no `// want` expectations found under %s", root)
	}

	for _, d := range prog.Run(analyzers) {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
