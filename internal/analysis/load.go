package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked module package.
type Package struct {
	// Path is the import path ("oovec/internal/ooosim").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// A Program is a fully loaded and type-checked module: every non-test
// package, a shared FileSet, and the cross-package indexes the analyzers
// share.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	// Pkgs is sorted by import path.
	Pkgs []*Package

	// FuncDecl maps a function or method object to its declaration, across
	// the whole module (the static call graph the hotpath analyzer walks).
	funcDecls map[*types.Func]funcDecl

	// directives indexes //ovlint: comments by file and line.
	directives map[string]map[int][]directive
}

type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Decl returns the module declaration of fn, if fn is declared in the
// program.
func (prog *Program) Decl(fn *types.Func) (*Package, *ast.FuncDecl, bool) {
	fd, ok := prog.funcDecls[fn]
	return fd.pkg, fd.decl, ok
}

// Load parses and type-checks every non-test package under root, which must
// contain go.mod. Directories named testdata or vendor, and files or
// directories with a "." or "_" prefix, are skipped, matching the go tool.
func Load(root string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadModule(root, modPath)
}

// LoadModule is Load with the module path supplied by the caller (the
// analysistest harness loads testdata trees that carry no go.mod).
func LoadModule(root, modPath string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		directives: make(map[string]map[int][]directive),
	}

	type rawPkg struct {
		pkg     *Package
		imports []string // module-internal imports only
	}
	raw := make(map[string]*rawPkg)

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := raw[importPath]
		if rp == nil {
			rp = &rawPkg{pkg: &Package{Path: importPath, Dir: dir}}
			raw[importPath] = rp
		}
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		rp.pkg.Files = append(rp.pkg.Files, f)
		prog.directives[path] = collectDirectives(prog.Fset, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				rp.imports = append(rp.imports, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order packages so every module import is type-checked
	// before its importers.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		rp := raw[path]
		if rp != nil {
			for _, dep := range rp.imports {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		if rp != nil {
			order = append(order, path)
		}
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{
		modPath:  modPath,
		loaded:   make(map[string]*types.Package),
		fallback: importer.ForCompiler(prog.Fset, "gc", nil),
	}
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, prog.Fset, rp.pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		rp.pkg.Types, rp.pkg.Info = tpkg, info
		imp.loaded[path] = tpkg
		prog.Pkgs = append(prog.Pkgs, rp.pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })

	prog.funcDecls = make(map[*types.Func]funcDecl)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					prog.funcDecls[obj] = funcDecl{pkg: pkg, decl: fn}
				}
			}
		}
	}
	return prog, nil
}

// moduleImporter resolves module-internal imports from the packages already
// type-checked (the topological order guarantees they exist) and everything
// else — the standard library — through the toolchain's export data.
type moduleImporter struct {
	modPath  string
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.loaded[path]; ok {
		return p, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		return nil, fmt.Errorf("module package %s imported before it was type-checked", path)
	}
	return m.fallback.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// FindModuleRoot ascends from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
