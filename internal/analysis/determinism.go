package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's byte-identity contract.
//
// Module-wide, it flags `range` over a map whose loop body performs any
// non-builtin call: Go randomises map iteration order, so a call inside the
// loop (a write, an encode, an error construction, a cancellation) observes
// the elements in a different order on every run. Pure accumulation —
// append into a slice that is sorted afterwards, counter updates, map-to-map
// copies — is order-insensitive and passes.
//
// Inside the simulator packages it additionally forbids the three things a
// cycle-accurate, replayable simulator can never do: read the wall clock
// (time.Now and friends), draw randomness (math/rand imports), or spawn
// goroutines.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags order-dependent map iteration everywhere, and wall-clock reads, " +
		"math/rand, and goroutine spawns inside simulator packages",
	Run: runDeterminism,
}

// nondeterministicTimeFuncs are the package time functions that observe the
// wall clock or schedule real-time events. Pure arithmetic on time.Duration
// values remains fine.
var nondeterministicTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "Sleep": true,
}

// orderSafeBuiltins are the builtins whose use inside a map-range body
// cannot observe iteration order in output: they either accumulate
// (append, copy) or interrogate/mutate containers element-wise.
var orderSafeBuiltins = map[string]bool{
	"append": true, "len": true, "cap": true, "copy": true,
	"delete": true, "clear": true, "min": true, "max": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	sim := isSimPackage(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		if sim {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "simulator package imports %s: simulators must be deterministic; derive pseudo-randomness from the trace or configuration seed instead", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if call, name := firstOrderSensitiveCall(info, n.Body); call != nil {
					pass.Reportf(n.For, "map iteration order is random, and this loop calls %s on each element: iterate sorted keys, or waive with //ovlint:allow determinism if the calls are provably order-independent", name)
				}
			case *ast.GoStmt:
				if sim {
					pass.Reportf(n.Pos(), "simulator package spawns a goroutine: simulation must be single-threaded and deterministic; parallelism belongs in internal/engine")
				}
			case *ast.CallExpr:
				if !sim {
					return true
				}
				obj := callee(info, n)
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && nondeterministicTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "simulator package calls time.%s: simulated time must come from the machine model, never the wall clock", fn.Name())
				}
			}
			return true
		})
	}
}

// firstOrderSensitiveCall returns the first non-builtin, non-conversion
// call inside body, along with a printable name for it.
func firstOrderSensitiveCall(info *types.Info, body ast.Node) (found *ast.CallExpr, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isConversion(info, call) {
			return true
		}
		obj := callee(info, call)
		if b, ok := obj.(*types.Builtin); ok {
			if orderSafeBuiltins[b.Name()] {
				return true
			}
			found, name = call, b.Name()
			return false
		}
		found = call
		if obj != nil {
			name = obj.Name()
		} else {
			name = "a function value"
		}
		return false
	})
	return found, name
}
