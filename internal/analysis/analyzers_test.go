package analysis

import "testing"

func TestDeterminism(t *testing.T)      { runTestdata(t, "determinism", Determinism) }
func TestHotpath(t *testing.T)          { runTestdata(t, "hotpath", Hotpath) }
func TestSnapshotcomplete(t *testing.T) { runTestdata(t, "snapshotcomplete", Snapshotcomplete) }
func TestGobsafe(t *testing.T)          { runTestdata(t, "gobsafe", Gobsafe) }
func TestCtxabort(t *testing.T)         { runTestdata(t, "ctxabort", Ctxabort) }

// TestSuiteCleanOnModule is the smoke test CI relies on: the full analyzer
// suite must run clean over the real module — the same gate cmd/ovlint
// enforces, minus the process boundary.
func TestSuiteCleanOnModule(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if diags := prog.Run(All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestByName pins the analyzer registry cmd/ovlint's -only flag resolves
// against.
func TestByName(t *testing.T) {
	for _, name := range []string{"ctxabort", "determinism", "gobsafe", "hotpath", "snapshotcomplete"} {
		if a := ByName(name); a == nil || a.Name != name {
			t.Errorf("ByName(%q) = %v", name, a)
		}
	}
	if a := ByName("nosuch"); a != nil {
		t.Errorf("ByName(nosuch) unexpectedly resolved to %s", a.Name)
	}
}
