// Package hist is the project's fixed-bucket latency histogram — one
// implementation shared by the ovserve /metrics exposition (server-side
// request and resolution-tier latency) and the ovload harness (client-side
// observed latency), so the numbers an operator reads off a dashboard and
// the numbers a load test reports are bucketed identically.
//
// The zero value is ready to use. Observe is a two-add hot path built on
// atomics, safe under concurrent request handlers and load-driver workers;
// WriteProm renders the Prometheus text-exposition shape (cumulative
// `_bucket{le=...}` lines, a `_sum` in seconds, a `_count`) from a snapshot
// whose cumulative counts are monotone by construction; Quantile estimates
// percentiles from the bucket counts by linear interpolation.
package hist

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// Bounds are the finite bucket upper bounds in seconds. They span the
// service's real dynamic range: a memory cache hit lands in the first
// buckets, a disk probe in the middle, a cold million-instruction
// simulation in the top ones.
var Bounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 10,
}

// NumBuckets is the bucket count including the +Inf overflow bucket.
const NumBuckets = len(Bounds) + 1

// Hist is one fixed-bucket latency histogram. The zero value is ready to
// use. counts[i] holds the samples in (Bounds[i-1], Bounds[i]]; the final
// slot is the +Inf overflow bucket.
type Hist struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	// exemplars[i] points to the most recent traced sample that landed in
	// bucket i — last-writer-wins, which keeps exemplars fresh without
	// coordination beyond the pointer swap.
	exemplars [NumBuckets]atomic.Pointer[Exemplar]
}

// Exemplar ties a bucket to one concrete traced request that landed in it:
// the trace id to look up in /v1/traces/{id}, and the observed value in
// seconds. Rendered in OpenMetrics `# {trace_id="..."} <value>` syntax.
type Exemplar struct {
	TraceID string
	Value   float64 // seconds
}

// Observe records one sample.
func (h *Hist) Observe(d time.Duration) {
	h.counts[h.bucket(d)].Add(1)
	h.sum.Add(int64(d))
}

// ObserveTrace records one sample and, when traceID is non-empty, installs
// it as the landing bucket's exemplar. An empty traceID (an untraced
// request) is exactly Observe.
func (h *Hist) ObserveTrace(d time.Duration, traceID string) {
	i := h.bucket(d)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: d.Seconds()})
	}
}

func (h *Hist) bucket(d time.Duration) int {
	s := d.Seconds()
	i := 0
	for i < len(Bounds) && s > Bounds[i] {
		i++
	}
	return i
}

// Count returns the total number of samples observed.
func (h *Hist) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total of all observed samples.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean observed sample, or 0 with no samples.
func (h *Hist) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed samples
// from the bucket counts, assuming samples are uniformly distributed
// within each bucket (the standard Prometheus histogram_quantile
// estimate). The first bucket interpolates from zero; a quantile landing
// in the +Inf bucket is clamped to the largest finite bound, which keeps
// the estimate conservative rather than unbounded. Returns 0 with no
// samples.
func (h *Hist) Quantile(q float64) time.Duration {
	var counts [NumBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(Bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			return secondsToDuration(Bounds[len(Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = Bounds[i-1]
		}
		hi := Bounds[i]
		if c == 0 {
			// rank == cum exactly: the quantile sits on this bucket's lower
			// boundary.
			return secondsToDuration(lo)
		}
		frac := (rank - float64(cum)) / float64(c)
		return secondsToDuration(lo + (hi-lo)*frac)
	}
	return secondsToDuration(Bounds[len(Bounds)-1])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// WriteProm renders the histogram as Prometheus text lines under the given
// metric name; label is a preformatted `key="value"` pair appearing in
// every line. The cumulative bucket counts are computed left to right from
// the per-bucket atomics, so they are non-decreasing even while observes
// race the render, and the `_count` equals the +Inf bucket exactly.
//
// With exemplars set, a bucket holding an exemplar gets the OpenMetrics
// exemplar suffix appended to its line — `# {trace_id="…"} <seconds>` —
// pointing a dashboard's "why is this bucket filling" question at one
// concrete /v1/traces/{id} timeline. Exemplar syntax exists only in the
// OpenMetrics exposition format: the Prometheus 0.0.4 text parser reads
// the trailing `# {...}` as a malformed timestamp and fails the whole
// scrape. Callers must therefore pass exemplars=true only when the scraper
// negotiated application/openmetrics-text, and keep plain-text renders
// exemplar-free.
func (h *Hist) WriteProm(w io.Writer, name, label string, exemplars bool) {
	var cum int64
	for i, b := range Bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d%s\n", name, label,
			strconv.FormatFloat(b, 'g', -1, 64), cum, h.exemplarSuffix(i, exemplars))
	}
	cum += h.counts[len(Bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d%s\n", name, label, cum, h.exemplarSuffix(len(Bounds), exemplars))
	fmt.Fprintf(w, "%s_sum{%s} %.6f\n", name, label, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, cum)
}

// exemplarSuffix renders bucket i's exemplar in OpenMetrics syntax, or ""
// when exemplars are disabled or no traced sample has landed there.
func (h *Hist) exemplarSuffix(i int, enabled bool) string {
	if !enabled {
		return ""
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %.6f", e.TraceID, e.Value)
}
