package hist

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// histBuckets parses the cumulative bucket counts of one histogram/label
// pair out of a Prometheus exposition, in declaration order, +Inf last.
func histBuckets(t *testing.T, body, name, label string) []int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `_bucket\{` +
		regexp.QuoteMeta(label) + `,le="([^"]+)"\} (\d+)$`)
	var counts []int64
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	return counts
}

func TestBucketsMonotone(t *testing.T) {
	var h Hist
	// One sample per bucket boundary (inclusive upper bound), plus overflow.
	for _, b := range Bounds {
		h.Observe(time.Duration(b * float64(time.Second)))
	}
	h.Observe(time.Hour) // +Inf bucket

	var sb strings.Builder
	h.WriteProm(&sb, "x", `l="v"`, false)
	counts := histBuckets(t, sb.String(), "x", `l="v"`)
	if len(counts) != NumBuckets {
		t.Fatalf("got %d bucket lines, want %d", len(counts), NumBuckets)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Errorf("bucket %d count %d below bucket %d count %d — not cumulative",
				i, counts[i], i-1, counts[i-1])
		}
	}
	// A sample equal to a bound is ≤ the bound: bucket i holds i+1 samples.
	for i := range Bounds {
		if counts[i] != int64(i+1) {
			t.Errorf("bucket le=%g = %d, want %d", Bounds[i], counts[i], i+1)
		}
	}
	if inf := counts[len(counts)-1]; inf != h.Count() {
		t.Errorf("+Inf bucket %d != Count() %d", inf, h.Count())
	}
	if !strings.Contains(sb.String(), fmt.Sprintf(`x_count{l="v"} %d`, h.Count())) {
		t.Errorf("_count line wrong:\n%s", sb.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i*w) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("Quantile on empty = %v, want 0", q)
	}
}

// TestQuantileUniformWithinBucket checks the interpolation: all samples in
// one bucket, quantiles must land between that bucket's bounds, linearly.
func TestQuantileUniformWithinBucket(t *testing.T) {
	var h Hist
	// 100 samples in the (0.025, 0.05] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(30 * time.Millisecond)
	}
	lo, hi := 25*time.Millisecond, 50*time.Millisecond
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %v, want within (%v, %v]", q, got, lo, hi)
		}
	}
	// The median of a bucket-uniform distribution is the bucket midpoint.
	want := lo + (hi-lo)/2
	if got := h.Quantile(0.5); !approx(got, want, float64(time.Millisecond)) {
		t.Errorf("Quantile(0.5) = %v, want ≈ %v", got, want)
	}
}

// TestQuantileAcrossBuckets spreads a known distribution over several
// buckets and checks rank selection picks the right bucket.
func TestQuantileAcrossBuckets(t *testing.T) {
	var h Hist
	// 90 fast samples (≤ 0.5 ms bucket), 9 medium (0.05–0.1 s), 1 slow (2.5–10 s).
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(80 * time.Millisecond)
	}
	h.Observe(5 * time.Second)

	if got := h.Quantile(0.5); got > 500*time.Microsecond {
		t.Errorf("p50 = %v, want within the first bucket (≤ 0.5ms)", got)
	}
	if got := h.Quantile(0.95); got <= 50*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("p95 = %v, want in (50ms, 100ms]", got)
	}
	if got := h.Quantile(0.999); got <= 2500*time.Millisecond || got > 10*time.Second {
		t.Errorf("p99.9 = %v, want in (2.5s, 10s]", got)
	}
}

// TestQuantileOverflowClamped: samples beyond the last finite bound must
// produce a finite, conservative estimate (the largest finite bound), not
// +Inf or garbage.
func TestQuantileOverflowClamped(t *testing.T) {
	var h Hist
	for i := 0; i < 10; i++ {
		h.Observe(time.Hour)
	}
	want := time.Duration(Bounds[len(Bounds)-1] * float64(time.Second))
	if got := h.Quantile(0.99); got != want {
		t.Errorf("overflow p99 = %v, want clamp to %v", got, want)
	}
}

func TestMeanAndSum(t *testing.T) {
	var h Hist
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if got := h.Sum(); got != 40*time.Millisecond {
		t.Errorf("Sum = %v, want 40ms", got)
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", got)
	}
}

// TestQuantileMonotoneInQ: for a fixed histogram, Quantile must be
// non-decreasing in q — the estimator never inverts percentiles.
func TestQuantileMonotoneInQ(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %v < Quantile(%g) = %v", q, got, q-0.01, prev)
		}
		prev = got
	}
}

func approx(a, b time.Duration, tol float64) bool {
	return math.Abs(float64(a-b)) <= tol
}

func TestExemplarRendered(t *testing.T) {
	var h Hist
	// 3ms lands in the le="0.005" bucket (index 3); only that bucket line
	// gains the exemplar suffix.
	h.ObserveTrace(3*time.Millisecond, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(3 * time.Millisecond) // untraced sample, same bucket

	var sb strings.Builder
	h.WriteProm(&sb, "x", `l="v"`, true)
	body := sb.String()
	want := `x_bucket{l="v",le="0.005"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.003000`
	if !strings.Contains(body, want+"\n") {
		t.Errorf("rendered exposition lacks the exemplar line %q:\n%s", want, body)
	}
	if n := strings.Count(body, "# {trace_id="); n != 1 {
		t.Errorf("%d exemplar suffixes rendered, want exactly 1:\n%s", n, body)
	}
	// The suffix rides after the sample value, so prefix-anchored consumers
	// (and the monotonicity helper above) still parse every line without one.
	if got := histBuckets(t, body, "x", `l="v"`); len(got) != NumBuckets-1 {
		t.Errorf("suffix-free bucket lines parsed = %d, want %d", len(got), NumBuckets-1)
	}
}

// TestExemplarSuppressedWithoutOptIn pins the scrape-compatibility
// contract: exemplar syntax is OpenMetrics-only, so a render without the
// opt-in — the default Prometheus 0.0.4 /metrics exposition — must stay
// exemplar-free even when traced samples have installed exemplars.
func TestExemplarSuppressedWithoutOptIn(t *testing.T) {
	var h Hist
	h.ObserveTrace(3*time.Millisecond, "4bf92f3577b34da6a3ce929d0e0e4736")
	var sb strings.Builder
	h.WriteProm(&sb, "x", `l="v"`, false)
	if strings.Contains(sb.String(), "#") {
		t.Errorf("exemplar leaked into a plain-text render:\n%s", sb.String())
	}
	// Every bucket line parses under the strict no-suffix regexp.
	if got := histBuckets(t, sb.String(), "x", `l="v"`); len(got) != NumBuckets {
		t.Errorf("parsed %d bucket lines, want %d:\n%s", len(got), NumBuckets, sb.String())
	}
}

func TestObserveTraceEmptyIDIsPlainObserve(t *testing.T) {
	var h Hist
	h.ObserveTrace(3*time.Millisecond, "")
	var sb strings.Builder
	h.WriteProm(&sb, "x", `l="v"`, true)
	if strings.Contains(sb.String(), "# {") {
		t.Errorf("untraced sample installed an exemplar:\n%s", sb.String())
	}
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
}

// TestConcurrentObserveTrace races traced observes against renders; the
// race detector owns the memory-safety claim, the assertions pin that the
// surviving exemplar is one that was actually written.
func TestConcurrentObserveTrace(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveTrace(3*time.Millisecond, fmt.Sprintf("trace-%d", w))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			var sb strings.Builder
			h.WriteProm(&sb, "x", `l="v"`, true)
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	var sb strings.Builder
	h.WriteProm(&sb, "x", `l="v"`, true)
	m := regexp.MustCompile(`# \{trace_id="(trace-\d+)"\} 0\.003000`).FindStringSubmatch(sb.String())
	if m == nil {
		t.Fatalf("no exemplar survived the render:\n%s", sb.String())
	}
}
