package trace

import (
	"fmt"

	"oovec/internal/isa"
)

// Builder constructs traces programmatically. It tracks the current vector
// length and stride the way the architecture does (SetVL/SetVS instructions
// update architected state that subsequent vector instructions execute under)
// and assigns synthetic PCs.
//
// The builder is the public way to write custom kernels against the
// simulators; examples/quickstart uses it to express a DAXPY loop.
type Builder struct {
	t      Trace
	vl     int
	vs     int32
	pc     uint64
	pcStep uint64
	err    error
}

// NewBuilder returns a builder for a trace with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		t:      Trace{Name: name},
		vl:     isa.MaxVL,
		vs:     isa.ElemBytes,
		pcStep: 4,
	}
}

// Err returns the first error encountered while building, if any.
func (b *Builder) Err() error { return b.err }

// Build validates and returns the trace. It panics if any emitted
// instruction was malformed — builder misuse is a programming error.
func (b *Builder) Build() *Trace {
	if b.err != nil {
		panic("trace.Builder: " + b.err.Error())
	}
	if err := b.t.Validate(); err != nil {
		panic("trace.Builder: " + err.Error())
	}
	t := b.t
	return &t
}

// VL returns the current vector length.
func (b *Builder) VL() int { return b.vl }

func (b *Builder) emit(in isa.Instruction) *Builder {
	if b.err != nil {
		return b
	}
	in.PC = b.pc
	b.pc += b.pcStep
	if err := in.Validate(); err != nil && b.err == nil {
		b.err = fmt.Errorf("insn %d: %w", len(b.t.Insns), err)
	}
	b.t.Insns = append(b.t.Insns, in)
	return b
}

// SetPC sets the synthetic PC of the next instruction; useful for making
// loop back-edges reuse the same branch PC so the BTB can learn them.
func (b *Builder) SetPC(pc uint64) *Builder {
	b.pc = pc
	return b
}

// PC returns the PC the next emitted instruction will carry.
func (b *Builder) PC() uint64 { return b.pc }

// SetVL emits a setvl instruction and updates the builder's vector length.
func (b *Builder) SetVL(n int, src isa.Reg) *Builder {
	if n < 1 {
		n = 1
	}
	if n > isa.MaxVL {
		n = isa.MaxVL
	}
	b.vl = n
	return b.emit(isa.Instruction{Op: isa.OpSetVL, Src1: src})
}

// SetVS emits a setvs instruction and updates the builder's vector stride.
func (b *Builder) SetVS(bytes int32, src isa.Reg) *Builder {
	if bytes == 0 {
		bytes = isa.ElemBytes
	}
	b.vs = bytes
	return b.emit(isa.Instruction{Op: isa.OpSetVS, Src1: src})
}

// Scalar emits a scalar ALU operation.
func (b *Builder) Scalar(op isa.Op, dst, src1, src2 isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// ScalarLoad emits a scalar load from addr.
func (b *Builder) ScalarLoad(op isa.Op, dst isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: op, Dst: dst, Addr: addr})
}

// ScalarStore emits a scalar store of src to addr.
func (b *Builder) ScalarStore(op isa.Op, src isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: op, Src1: src, Addr: addr})
}

// Vector emits a vector computation under the current VL.
func (b *Builder) Vector(op isa.Op, dst, src1, src2 isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2, VL: uint16(b.vl)})
}

// VLoad emits a vector load into dst from addr under the current VL/VS.
func (b *Builder) VLoad(dst isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpVLoad, Dst: dst, Addr: addr,
		VL: uint16(b.vl), VS: b.vs})
}

// VStore emits a vector store of src to addr under the current VL/VS.
func (b *Builder) VStore(src isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpVStore, Src1: src, Addr: addr,
		VL: uint16(b.vl), VS: b.vs})
}

// SpillStore emits a vector store marked as spill code.
func (b *Builder) SpillStore(src isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpVStore, Src1: src, Addr: addr,
		VL: uint16(b.vl), VS: b.vs, Spill: true})
}

// SpillLoad emits a vector load marked as spill code (a refill).
func (b *Builder) SpillLoad(dst isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpVLoad, Dst: dst, Addr: addr,
		VL: uint16(b.vl), VS: b.vs, Spill: true})
}

// ScalarSpillStore emits a scalar store marked as spill code.
func (b *Builder) ScalarSpillStore(src isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpSStore, Src1: src, Addr: addr, Spill: true})
}

// ScalarSpillLoad emits a scalar load marked as spill code.
func (b *Builder) ScalarSpillLoad(dst isa.Reg, addr uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpSLoad, Dst: dst, Addr: addr, Spill: true})
}

// Gather emits an indexed vector load (index register in src2).
func (b *Builder) Gather(dst, index isa.Reg, base uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpVGather, Dst: dst, Src2: index,
		Addr: base, VL: uint16(b.vl), VS: isa.ElemBytes})
}

// Scatter emits an indexed vector store (index register in src2).
func (b *Builder) Scatter(src, index isa.Reg, base uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpVScatter, Src1: src, Src2: index,
		Addr: base, VL: uint16(b.vl), VS: isa.ElemBytes})
}

// Branch emits a conditional branch with the given trace outcome.
func (b *Builder) Branch(target uint64, taken bool) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpBranch, Addr: target, Taken: taken})
}

// Call emits a subroutine call.
func (b *Builder) Call(target uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpCall, Addr: target, Taken: true})
}

// Return emits a subroutine return.
func (b *Builder) Return(target uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpReturn, Addr: target, Taken: true})
}

// Raw appends an arbitrary (pre-validated) instruction.
func (b *Builder) Raw(in isa.Instruction) *Builder { return b.emit(in) }
