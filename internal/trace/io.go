package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"oovec/internal/isa"
)

// Binary trace format, analogous in spirit to Dixie's compact traces:
//
//	magic   "OVTR"           4 bytes
//	version uvarint          (currently 1)
//	name    uvarint len + bytes
//	suite   uvarint len + bytes
//	count   uvarint
//	count × instruction records
//
// Each instruction record is a flag byte followed by only the fields the
// flags say are present, all varint-encoded. This keeps scalar-heavy traces
// around 4–6 bytes per instruction.

const magic = "OVTR"
const formatVersion = 1

// Flag bits for the per-instruction record.
const (
	flagDst uint8 = 1 << iota
	flagSrc1
	flagSrc2
	flagVec   // VL and VS present
	flagAddr  // Addr present
	flagTaken // branch taken
	flagSpill
)

// Write serialises the trace to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putUvarint(formatVersion); err != nil {
		return err
	}
	if err := putString(t.Name); err != nil {
		return err
	}
	if err := putString(t.Suite); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Insns))); err != nil {
		return err
	}
	prevPC := uint64(0)
	for i := range t.Insns {
		in := &t.Insns[i]
		var flags uint8
		if in.Dst.Class != isa.RegNone {
			flags |= flagDst
		}
		if in.Src1.Class != isa.RegNone {
			flags |= flagSrc1
		}
		if in.Src2.Class != isa.RegNone {
			flags |= flagSrc2
		}
		if in.Op.IsVector() {
			flags |= flagVec
		}
		if in.Addr != 0 || in.Op.IsMem() || in.Op.IsBranch() {
			flags |= flagAddr
		}
		if in.Taken {
			flags |= flagTaken
		}
		if in.Spill {
			flags |= flagSpill
		}
		if err := bw.WriteByte(byte(in.Op)); err != nil {
			return err
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		// PC is delta-encoded against the previous instruction.
		if err := putVarint(int64(in.PC) - int64(prevPC)); err != nil {
			return err
		}
		prevPC = in.PC
		if flags&flagDst != 0 {
			if err := bw.WriteByte(packReg(in.Dst)); err != nil {
				return err
			}
		}
		if flags&flagSrc1 != 0 {
			if err := bw.WriteByte(packReg(in.Src1)); err != nil {
				return err
			}
		}
		if flags&flagSrc2 != 0 {
			if err := bw.WriteByte(packReg(in.Src2)); err != nil {
				return err
			}
		}
		if flags&flagVec != 0 {
			if err := putUvarint(uint64(in.VL)); err != nil {
				return err
			}
			if err := putVarint(int64(in.VS)); err != nil {
				return err
			}
		}
		if flags&flagAddr != 0 {
			if err := putUvarint(in.Addr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Limits bound what Read will decode. The OVTR header is length-prefixed,
// so a corrupt or hostile input can claim arbitrarily large counts; the
// limits turn those into errors before any allocation matches the claim.
type Limits struct {
	// MaxInsns is the maximum instruction count accepted (<= 0 selects the
	// DefaultLimits value).
	MaxInsns int
	// MaxNameLen is the maximum byte length of the name and suite strings
	// (<= 0 selects the DefaultLimits value).
	MaxNameLen int
}

// DefaultLimits are the bounds Read applies: generous enough for every
// trace this repository generates (full-size benchmarks are ~100k dynamic
// instructions), far below an allocation that could hurt the process.
func DefaultLimits() Limits {
	return Limits{MaxInsns: 1 << 26, MaxNameLen: 1 << 16}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxInsns <= 0 {
		l.MaxInsns = d.MaxInsns
	}
	if l.MaxNameLen <= 0 {
		l.MaxNameLen = d.MaxNameLen
	}
	return l
}

// Read deserialises a trace written by Write, under DefaultLimits.
func Read(r io.Reader) (*Trace, error) {
	return ReadLimited(r, DefaultLimits())
}

// maxPrealloc caps the instruction capacity allocated up front from the
// header's claimed count. A count within limits but larger than the actual
// payload (a truncated or lying header) costs at most this many slots
// before the decode loop hits the real EOF; honest traces beyond it just
// grow by append.
const maxPrealloc = 1 << 16

// ReadLimited deserialises a trace written by Write, enforcing the given
// bounds on untrusted input (the ovserve upload path).
func ReadLimited(r io.Reader, lim Limits) (*Trace, error) {
	lim = lim.withDefaults()
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic (not an OVTR trace)")
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > uint64(lim.MaxNameLen) {
			return "", fmt.Errorf("trace: string length %d exceeds limit %d", n, lim.MaxNameLen)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	t := &Trace{}
	if t.Name, err = getString(); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if t.Suite, err = getString(); err != nil {
		return nil, fmt.Errorf("trace: reading suite: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > uint64(lim.MaxInsns) {
		return nil, fmt.Errorf("trace: instruction count %d exceeds limit %d", count, lim.MaxInsns)
	}
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	t.Insns = make([]isa.Instruction, 0, prealloc)
	prevPC := uint64(0)
	for i := uint64(0); i < count; i++ {
		op, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: insn %d: %w", i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: insn %d: %w", i, err)
		}
		var in isa.Instruction
		in.Op = isa.Op(op)
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: insn %d pc: %w", i, err)
		}
		in.PC = uint64(int64(prevPC) + dpc)
		prevPC = in.PC
		// A flagged operand must encode a real register: Write only sets
		// the flag for Class != RegNone, so a none-class operand byte is a
		// non-canonical encoding that would not survive a round trip (and
		// would collide distinct byte streams onto one digest).
		getReg := func() (isa.Reg, error) {
			b, err := br.ReadByte()
			if err != nil {
				return isa.Reg{}, err
			}
			reg := unpackReg(b)
			if reg.Class == isa.RegNone {
				return isa.Reg{}, fmt.Errorf("flagged operand encodes no register class")
			}
			return reg, nil
		}
		if flags&flagDst != 0 {
			if in.Dst, err = getReg(); err != nil {
				return nil, fmt.Errorf("trace: insn %d dst: %w", i, err)
			}
		}
		if flags&flagSrc1 != 0 {
			if in.Src1, err = getReg(); err != nil {
				return nil, fmt.Errorf("trace: insn %d src1: %w", i, err)
			}
		}
		if flags&flagSrc2 != 0 {
			if in.Src2, err = getReg(); err != nil {
				return nil, fmt.Errorf("trace: insn %d src2: %w", i, err)
			}
		}
		if flags&flagVec != 0 && !in.Op.IsVector() {
			// Write derives the flag from the opcode; a scalar op carrying
			// vector fields would silently drop them on re-encode.
			return nil, fmt.Errorf("trace: insn %d: scalar op %s carries vector fields", i, in.Op)
		}
		if flags&flagVec != 0 {
			vl, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			// Bounds-check before narrowing: silent truncation would let
			// byte-distinct inputs (vl and vl+65536) collapse onto one
			// decoded trace — and one digest.
			if vl > uint64(isa.MaxVL) {
				return nil, fmt.Errorf("trace: insn %d: VL %d exceeds the architectural maximum %d", i, vl, isa.MaxVL)
			}
			in.VL = uint16(vl)
			vs, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			if vs < math.MinInt32 || vs > math.MaxInt32 {
				return nil, fmt.Errorf("trace: insn %d: stride %d overflows int32", i, vs)
			}
			in.VS = int32(vs)
		}
		if flags&flagAddr != 0 {
			if in.Addr, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
		in.Taken = flags&flagTaken != 0
		in.Spill = flags&flagSpill != 0
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("trace: insn %d: %w", i, err)
		}
		t.Insns = append(t.Insns, in)
	}
	return t, nil
}

// packReg encodes a register in one byte: class in the top 3 bits, index in
// the low 5.
func packReg(r isa.Reg) byte {
	return byte(r.Class)<<5 | (r.Idx & 0x1f)
}

func unpackReg(b byte) isa.Reg {
	return isa.Reg{Class: isa.RegClass(b >> 5), Idx: b & 0x1f}
}
