package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"oovec/internal/isa"
)

// Binary trace format, analogous in spirit to Dixie's compact traces:
//
//	magic   "OVTR"           4 bytes
//	version uvarint          (currently 1)
//	name    uvarint len + bytes
//	suite   uvarint len + bytes
//	count   uvarint
//	count × instruction records
//
// Each instruction record is a flag byte followed by only the fields the
// flags say are present, all varint-encoded. This keeps scalar-heavy traces
// around 4–6 bytes per instruction.

const magic = "OVTR"
const formatVersion = 1

// Flag bits for the per-instruction record.
const (
	flagDst uint8 = 1 << iota
	flagSrc1
	flagSrc2
	flagVec   // VL and VS present
	flagAddr  // Addr present
	flagTaken // branch taken
	flagSpill
)

// Write serialises the trace to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putUvarint(formatVersion); err != nil {
		return err
	}
	if err := putString(t.Name); err != nil {
		return err
	}
	if err := putString(t.Suite); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Insns))); err != nil {
		return err
	}
	prevPC := uint64(0)
	for i := range t.Insns {
		in := &t.Insns[i]
		var flags uint8
		if in.Dst.Class != isa.RegNone {
			flags |= flagDst
		}
		if in.Src1.Class != isa.RegNone {
			flags |= flagSrc1
		}
		if in.Src2.Class != isa.RegNone {
			flags |= flagSrc2
		}
		if in.Op.IsVector() {
			flags |= flagVec
		}
		if in.Addr != 0 || in.Op.IsMem() || in.Op.IsBranch() {
			flags |= flagAddr
		}
		if in.Taken {
			flags |= flagTaken
		}
		if in.Spill {
			flags |= flagSpill
		}
		if err := bw.WriteByte(byte(in.Op)); err != nil {
			return err
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		// PC is delta-encoded against the previous instruction.
		if err := putVarint(int64(in.PC) - int64(prevPC)); err != nil {
			return err
		}
		prevPC = in.PC
		if flags&flagDst != 0 {
			if err := bw.WriteByte(packReg(in.Dst)); err != nil {
				return err
			}
		}
		if flags&flagSrc1 != 0 {
			if err := bw.WriteByte(packReg(in.Src1)); err != nil {
				return err
			}
		}
		if flags&flagSrc2 != 0 {
			if err := bw.WriteByte(packReg(in.Src2)); err != nil {
				return err
			}
		}
		if flags&flagVec != 0 {
			if err := putUvarint(uint64(in.VL)); err != nil {
				return err
			}
			if err := putVarint(int64(in.VS)); err != nil {
				return err
			}
		}
		if flags&flagAddr != 0 {
			if err := putUvarint(in.Addr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic (not an OVTR trace)")
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	t := &Trace{}
	if t.Name, err = getString(); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if t.Suite, err = getString(); err != nil {
		return nil, fmt.Errorf("trace: reading suite: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("trace: unreasonable instruction count %d", count)
	}
	t.Insns = make([]isa.Instruction, 0, count)
	prevPC := uint64(0)
	for i := uint64(0); i < count; i++ {
		op, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: insn %d: %w", i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: insn %d: %w", i, err)
		}
		var in isa.Instruction
		in.Op = isa.Op(op)
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: insn %d pc: %w", i, err)
		}
		in.PC = uint64(int64(prevPC) + dpc)
		prevPC = in.PC
		if flags&flagDst != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			in.Dst = unpackReg(b)
		}
		if flags&flagSrc1 != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			in.Src1 = unpackReg(b)
		}
		if flags&flagSrc2 != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			in.Src2 = unpackReg(b)
		}
		if flags&flagVec != 0 {
			vl, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			in.VL = uint16(vl)
			vs, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			in.VS = int32(vs)
		}
		if flags&flagAddr != 0 {
			if in.Addr, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
		in.Taken = flags&flagTaken != 0
		in.Spill = flags&flagSpill != 0
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("trace: insn %d: %w", i, err)
		}
		t.Insns = append(t.Insns, in)
	}
	return t, nil
}

// packReg encodes a register in one byte: class in the top 3 bits, index in
// the low 5.
func packReg(r isa.Reg) byte {
	return byte(r.Class)<<5 | (r.Idx & 0x1f)
}

func unpackReg(b byte) isa.Reg {
	return isa.Reg{Class: isa.RegClass(b >> 5), Idx: b & 0x1f}
}
