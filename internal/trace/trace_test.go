package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"oovec/internal/isa"
)

func daxpyTrace(iters, vl int) *Trace {
	b := NewBuilder("daxpy")
	b.SetVL(vl, isa.A(0))
	base := uint64(0x10000)
	for i := 0; i < iters; i++ {
		off := uint64(i * vl * isa.ElemBytes)
		b.SetPC(0x100)
		b.VLoad(isa.V(0), base+off)
		b.VLoad(isa.V(1), base+0x100000+off)
		b.Vector(isa.OpVSMul, isa.V(2), isa.V(0), isa.S(0))
		b.Vector(isa.OpVAdd, isa.V(3), isa.V(2), isa.V(1))
		b.VStore(isa.V(3), base+0x100000+off)
		b.Scalar(isa.OpAAdd, isa.A(1), isa.A(1), isa.A(2))
		b.Branch(0x100, i != iters-1)
	}
	return b.Build()
}

func TestBuilderProducesValidTrace(t *testing.T) {
	tr := daxpyTrace(10, 64)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1+10*7 {
		t.Errorf("Len = %d, want %d", tr.Len(), 1+10*7)
	}
}

func TestBuilderTracksVL(t *testing.T) {
	b := NewBuilder("t")
	b.SetVL(33, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(0), isa.V(1), isa.V(2))
	tr := b.Build()
	if got := tr.At(1).VL; got != 33 {
		t.Errorf("VL = %d, want 33", got)
	}
	if b.VL() != 33 {
		t.Errorf("builder VL = %d", b.VL())
	}
}

func TestBuilderClampsVL(t *testing.T) {
	b := NewBuilder("t")
	b.SetVL(1000, isa.A(0))
	if b.VL() != isa.MaxVL {
		t.Errorf("VL = %d, want clamp to %d", b.VL(), isa.MaxVL)
	}
	b.SetVL(0, isa.A(0))
	if b.VL() != 1 {
		t.Errorf("VL = %d, want clamp to 1", b.VL())
	}
}

func TestBuilderPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic from invalid instruction")
		}
	}()
	b := NewBuilder("t")
	b.Raw(isa.Instruction{Op: isa.Op(250)})
	b.Build()
}

func TestStatsDaxpy(t *testing.T) {
	tr := daxpyTrace(10, 64)
	s := tr.ComputeStats()
	// Per iteration: 2 vloads + 1 vstore + 2 vector ops = 5 vector insns;
	// 1 scalar add + 1 branch = 2 scalar; plus the initial setvl.
	if s.VectorInsns != 50 {
		t.Errorf("VectorInsns = %d, want 50", s.VectorInsns)
	}
	if s.ScalarInsns != 21 {
		t.Errorf("ScalarInsns = %d, want 21", s.ScalarInsns)
	}
	if s.VectorOps != 50*64 {
		t.Errorf("VectorOps = %d, want %d", s.VectorOps, 50*64)
	}
	if s.VectorLoads != 20 || s.VectorStores != 10 {
		t.Errorf("loads/stores = %d/%d, want 20/10", s.VectorLoads, s.VectorStores)
	}
	if s.LoadOps != 20*64 || s.StoreOps != 10*64 {
		t.Errorf("load/store ops = %d/%d", s.LoadOps, s.StoreOps)
	}
	if s.Branches != 10 {
		t.Errorf("Branches = %d, want 10", s.Branches)
	}
	if got := s.AvgVL(); got != 64 {
		t.Errorf("AvgVL = %v, want 64", got)
	}
	wantPct := 100 * float64(50*64) / float64(21+50*64)
	if got := s.PctVectorization(); got != wantPct {
		t.Errorf("PctVectorization = %v, want %v", got, wantPct)
	}
}

func TestStatsSpillAccounting(t *testing.T) {
	b := NewBuilder("spilly")
	b.SetVL(32, isa.A(0))
	b.VLoad(isa.V(0), 0x1000)
	b.SpillStore(isa.V(0), 0x9000)
	b.SpillLoad(isa.V(1), 0x9000)
	b.VStore(isa.V(1), 0x2000)
	b.ScalarSpillStore(isa.S(0), 0x9400)
	b.ScalarSpillLoad(isa.S(1), 0x9400)
	tr := b.Build()
	s := tr.ComputeStats()
	if s.SpillLoadOps != 32+1 {
		t.Errorf("SpillLoadOps = %d, want 33", s.SpillLoadOps)
	}
	if s.SpillStoreOps != 32+1 {
		t.Errorf("SpillStoreOps = %d, want 33", s.SpillStoreOps)
	}
	// Total traffic: loads 32+32+1, stores 32+32+1 = 130; spill 66.
	wantPct := 100 * 66.0 / 130.0
	if got := s.SpillTrafficPct(); got != wantPct {
		t.Errorf("SpillTrafficPct = %v, want %v", got, wantPct)
	}
}

func TestStatsEmpty(t *testing.T) {
	var tr Trace
	s := tr.ComputeStats()
	if s.PctVectorization() != 0 || s.AvgVL() != 0 || s.SpillTrafficPct() != 0 {
		t.Error("empty-trace derived stats should be 0")
	}
}

func TestRoundTripDaxpy(t *testing.T) {
	tr := daxpyTrace(25, 100)
	tr.Suite = "Synthetic"
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Suite != tr.Suite {
		t.Errorf("metadata: got %q/%q", got.Name, got.Suite)
	}
	if !reflect.DeepEqual(got.Insns, tr.Insns) {
		t.Fatalf("instructions differ after round trip (%d vs %d)", len(got.Insns), len(tr.Insns))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("expected error on bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error on empty input")
	}
	// Truncated: valid header, then cut off mid-stream.
	tr := daxpyTrace(5, 16)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("expected error on truncated trace")
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("OVTR")
	buf.WriteByte(99) // version uvarint
	if _, err := Read(&buf); err == nil {
		t.Error("expected version error")
	}
}

// randomTrace builds a random, valid trace for property tests.
func randomTrace(r *rand.Rand, n int) *Trace {
	b := NewBuilder("prop")
	b.SetVL(1+r.Intn(isa.MaxVL), isa.A(0))
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0:
			b.SetVL(1+r.Intn(isa.MaxVL), isa.A(r.Intn(8)))
		case 1:
			b.Scalar(isa.OpSAdd, isa.S(r.Intn(8)), isa.S(r.Intn(8)), isa.S(r.Intn(8)))
		case 2:
			b.VLoad(isa.V(r.Intn(8)), uint64(r.Intn(1<<24)))
		case 3:
			b.VStore(isa.V(r.Intn(8)), uint64(r.Intn(1<<24)))
		case 4:
			b.Vector(isa.OpVMul, isa.V(r.Intn(8)), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
		case 5:
			b.Branch(uint64(r.Intn(1<<16)), r.Intn(2) == 0)
		case 6:
			b.SpillLoad(isa.V(r.Intn(8)), uint64(r.Intn(1<<24)))
		case 7:
			b.Gather(isa.V(r.Intn(8)), isa.V(r.Intn(8)), uint64(r.Intn(1<<24)))
		}
	}
	return b.Build()
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, 50+r.Intn(200))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return reflect.DeepEqual(got.Insns, tr.Insns)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStatsMatchManualCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, 100)
		s := tr.ComputeStats()
		var vecOps, vecInsns int64
		for i := range tr.Insns {
			if tr.Insns[i].Op.IsVector() {
				vecInsns++
				vecOps += int64(tr.Insns[i].EffVL())
			}
		}
		return s.VectorInsns == vecInsns && s.VectorOps == vecOps &&
			s.ScalarInsns+s.VectorInsns == int64(tr.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEncodingIsCompact(t *testing.T) {
	tr := daxpyTrace(1000, 128)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perInsn := float64(buf.Len()) / float64(tr.Len())
	if perInsn > 12 {
		t.Errorf("encoding too fat: %.1f bytes/insn", perInsn)
	}
}
