package trace

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns a content hash of the trace: the SHA-256 of its canonical
// binary serialisation (the Write format), hex-encoded and truncated to 128
// bits. Two traces share a digest exactly when they serialise identically,
// which makes the digest a safe content-address for the simulation result
// cache — equal digests mean equal simulator input.
func Digest(t *Trace) string {
	h := sha256.New()
	// Write into a hash never fails; the error path exists for real writers.
	if err := Write(h, t); err != nil {
		panic("trace: digesting: " + err.Error())
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
