package trace

import (
	"bytes"
	"testing"

	"oovec/internal/isa"
)

// fuzzLimits keeps the fuzzer's allocations small so a lying header cannot
// slow the run down; the bounds logic under test is identical at any limit.
var fuzzLimits = Limits{MaxInsns: 1 << 12, MaxNameLen: 1 << 8}

// seedTrace builds a small well-formed trace covering every record shape:
// scalar, vector, memory (address), branch (taken) and spill instructions.
func seedTrace() *Trace {
	b := NewBuilder("fuzzseed")
	b.SetVL(64, isa.A(1))
	b.VLoad(isa.V(0), 0x1000)
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(0))
	b.Scalar(isa.OpSAdd, isa.S(1), isa.S(0), isa.S(0))
	b.SpillStore(isa.V(1), 0x8000)
	b.Branch(0x40, true)
	return b.Build()
}

// FuzzTraceRead asserts the OVTR decoder never panics or over-allocates on
// arbitrary input, and that any trace it does accept round-trips through
// Write/Read unchanged.
func FuzzTraceRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, seedTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])               // truncated mid-record
	f.Add([]byte("OVTR"))                     // header only
	f.Add([]byte("XXXX"))                     // bad magic
	f.Add([]byte{})                           // empty
	f.Add([]byte("OVTR\x01\xff\xff\xff\x7f")) // huge claimed name length
	// Valid header claiming 2^62 instructions with no payload: the decoder
	// must reject the count, not allocate for it.
	f.Add([]byte("OVTR\x01\x00\x00\x80\x80\x80\x80\x80\x80\x80\x80\x40"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return // rejected input is the expected outcome for junk
		}
		if len(tr.Insns) > fuzzLimits.MaxInsns {
			t.Fatalf("decoded %d instructions past the %d limit", len(tr.Insns), fuzzLimits.MaxInsns)
		}
		// Accepted traces must round-trip: decode(encode(tr)) == tr.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := ReadLimited(bytes.NewReader(out.Bytes()), fuzzLimits)
		if err != nil {
			t.Fatalf("re-decoding accepted trace: %v", err)
		}
		if tr.Name != tr2.Name || tr.Suite != tr2.Suite || len(tr.Insns) != len(tr2.Insns) {
			t.Fatalf("round-trip changed header/len: %q/%q/%d vs %q/%q/%d",
				tr.Name, tr.Suite, len(tr.Insns), tr2.Name, tr2.Suite, len(tr2.Insns))
		}
		for i := range tr.Insns {
			if tr.Insns[i] != tr2.Insns[i] {
				t.Fatalf("round-trip changed insn %d: %+v vs %+v", i, tr.Insns[i], tr2.Insns[i])
			}
		}
	})
}
