// Package trace holds dynamic instruction traces — the input format of both
// simulators — together with a builder API, a compact binary serialisation,
// and the per-program statistics the paper reports in Table 2.
//
// The paper's methodology is trace-driven: benchmark executables instrumented
// with the Dixie tool produced dynamic traces that were then fed to the
// reference and OOOVA simulators. This package is the Go equivalent of that
// trace format; package tgen plays the role of the instrumented benchmarks.
package trace

import (
	"fmt"

	"oovec/internal/isa"
)

// Trace is a fully materialised dynamic instruction trace for one program.
type Trace struct {
	// Name identifies the program (e.g. "swm256").
	Name string
	// Suite identifies the benchmark suite (e.g. "Spec", "Perfect").
	Suite string
	// Insns is the dynamic instruction sequence in program order.
	Insns []isa.Instruction
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insns) }

// At returns a pointer to the i-th instruction.
func (t *Trace) At(i int) *isa.Instruction { return &t.Insns[i] }

// Validate checks every instruction and returns the first error found,
// annotated with its position.
func (t *Trace) Validate() error {
	for i := range t.Insns {
		if err := t.Insns[i].Validate(); err != nil {
			return fmt.Errorf("trace %q insn %d: %w", t.Name, i, err)
		}
	}
	return nil
}

// Stats are the per-program statistics of Table 2 (operation counts) plus the
// spill statistics of Table 3.
type Stats struct {
	// ScalarInsns is the number of scalar (non-vector) instructions,
	// including branches.
	ScalarInsns int64
	// VectorInsns is the number of vector instructions.
	VectorInsns int64
	// VectorOps is the number of element operations performed by vector
	// instructions (the sum of their vector lengths).
	VectorOps int64
	// VectorLoads / VectorStores count vector memory instructions.
	VectorLoads, VectorStores int64
	// SpillLoadOps / SpillStoreOps count element operations moved by memory
	// instructions marked as spill code (Table 3 "spill" columns).
	SpillLoadOps, SpillStoreOps int64
	// LoadOps / StoreOps count element operations moved by all memory
	// instructions (Table 3 "load"/"store" columns).
	LoadOps, StoreOps int64
	// Branches counts control-transfer instructions.
	Branches int64
}

// PctVectorization is column 6 of Table 2: vector element operations over
// total operations (scalar instructions + vector element operations).
func (s Stats) PctVectorization() float64 {
	den := float64(s.ScalarInsns) + float64(s.VectorOps)
	if den == 0 {
		return 0
	}
	return 100 * float64(s.VectorOps) / den
}

// AvgVL is column 7 of Table 2: average vector length of vector instructions.
func (s Stats) AvgVL() float64 {
	if s.VectorInsns == 0 {
		return 0
	}
	return float64(s.VectorOps) / float64(s.VectorInsns)
}

// SpillTrafficPct returns the fraction (in percent) of memory element traffic
// that is spill traffic, the headline statistic of Table 3 ("over 69% of the
// memory traffic in bdna is due to spills").
func (s Stats) SpillTrafficPct() float64 {
	den := float64(s.LoadOps + s.StoreOps)
	if den == 0 {
		return 0
	}
	return 100 * float64(s.SpillLoadOps+s.SpillStoreOps) / den
}

// ComputeStats scans the trace and returns its statistics.
func (t *Trace) ComputeStats() Stats {
	var s Stats
	for i := range t.Insns {
		in := &t.Insns[i]
		if in.Op.IsVector() {
			s.VectorInsns++
			s.VectorOps += int64(in.EffVL())
		} else {
			s.ScalarInsns++
		}
		if in.Op.IsBranch() {
			s.Branches++
		}
		if in.Op.IsMem() {
			n := int64(in.EffVL())
			if in.Op.IsLoad() {
				s.LoadOps += n
				if in.Spill {
					s.SpillLoadOps += n
				}
			} else {
				s.StoreOps += n
				if in.Spill {
					s.SpillStoreOps += n
				}
			}
			if in.Op.IsVector() {
				if in.Op.IsLoad() {
					s.VectorLoads++
				} else {
					s.VectorStores++
				}
			}
		}
	}
	return s
}
