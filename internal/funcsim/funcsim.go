// Package funcsim executes traces at value level. The timing simulators
// (refsim, ooosim) never touch data values; funcsim complements them by
// checking the *correctness* arguments of the paper:
//
//   - The §6 load-elimination invariant: whenever a physical register
//     carries a valid memory tag, the register's value equals the memory
//     contents of the tagged range — so renaming a load onto that register
//     (or copying from it) observes exactly the bytes memory holds.
//     Validate runs the tag protocol (the same rename.TagFile used by
//     ooosim) against a value-level machine and verifies the invariant at
//     every load that would be eliminated.
//
//   - The necessity of conservative invalidation: with the unsafe
//     exact-only policy, partially overlapping stores leave stale tags and
//     Validate reports value mismatches.
//
// The value semantics are deterministic and total (wrap-around uint64
// arithmetic; division guards against zero); any deterministic semantics
// suffices for the invariant check.
package funcsim

import (
	"fmt"

	"oovec/internal/isa"
	"oovec/internal/mem"
	"oovec/internal/rename"
	"oovec/internal/trace"
)

// State is the architectural value state of the machine.
type State struct {
	A [isa.NumLogicalA]uint64
	S [isa.NumLogicalS]uint64
	V [isa.NumLogicalV][]uint64
	// Mask holds one bit per element.
	Mask []bool
	// Mem is the functional memory image.
	Mem *mem.Memory
}

// NewState returns a deterministic non-trivial initial state (registers
// seeded with distinct values so aliasing bugs surface).
func NewState() *State {
	st := &State{Mem: mem.NewMemory(), Mask: make([]bool, isa.MaxVL)}
	for i := range st.A {
		st.A[i] = uint64(0xA0 + i)
	}
	for i := range st.S {
		st.S[i] = uint64(0x500 + i*7)
	}
	for i := range st.V {
		st.V[i] = make([]uint64, isa.MaxVL)
		for e := range st.V[i] {
			st.V[i][e] = uint64(i)<<32 | uint64(e)
		}
	}
	return st
}

// vecOf returns the first n elements of vector register r.
func (st *State) vecOf(r isa.Reg, n int) []uint64 {
	return st.V[r.Idx][:n]
}

// scalarOf reads a scalar register.
func (st *State) scalarOf(r isa.Reg) uint64 {
	switch r.Class {
	case isa.RegA:
		return st.A[r.Idx]
	case isa.RegS:
		return st.S[r.Idx]
	}
	return 0
}

// setScalar writes a scalar register.
func (st *State) setScalar(r isa.Reg, v uint64) {
	switch r.Class {
	case isa.RegA:
		st.A[r.Idx] = v
	case isa.RegS:
		st.S[r.Idx] = v
	}
}

// binop applies the deterministic value function of op.
func binop(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.OpVAdd, isa.OpSAdd, isa.OpAAdd, isa.OpVSAdd:
		return a + b
	case isa.OpVMul, isa.OpSMul, isa.OpAMul, isa.OpVSMul:
		return a * b
	case isa.OpVDiv, isa.OpSDiv:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case isa.OpVSqrt, isa.OpSSqrt:
		return a >> 1 // any deterministic unary stand-in
	case isa.OpVLogic, isa.OpSLogic:
		return a ^ b
	case isa.OpVShift, isa.OpSShift:
		return a<<1 | b>>63
	case isa.OpSMove, isa.OpAMove:
		return a
	}
	return a + b
}

// Execute runs the whole trace against st, updating registers and memory.
func Execute(t *trace.Trace, st *State) {
	for i := range t.Insns {
		Step(&t.Insns[i], st)
	}
}

// Step executes one instruction at value level.
func Step(in *isa.Instruction, st *State) {
	n := in.EffVL()
	switch in.Op {
	case isa.OpNop, isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpReturn,
		isa.OpSetVL, isa.OpSetVS:
		return

	case isa.OpALoad, isa.OpSLoad:
		st.setScalar(in.Dst, st.Mem.ReadWord(in.Addr))
	case isa.OpAStore, isa.OpSStore:
		st.Mem.WriteWord(in.Addr, st.scalarOf(in.Src1))

	case isa.OpVLoad:
		vals := st.Mem.ReadVector(in.Addr, n, int64(in.VS))
		copy(st.V[in.Dst.Idx], vals)
	case isa.OpVStore:
		st.Mem.WriteVector(in.Addr, st.vecOf(in.Src1, n), int64(in.VS))
	case isa.OpVGather:
		idx := st.vecOf(in.Src2, n)
		for e := 0; e < n; e++ {
			st.V[in.Dst.Idx][e] = st.Mem.ReadWord(in.Addr + (idx[e]%isa.MaxVL)*isa.ElemBytes)
		}
	case isa.OpVScatter:
		idx := st.vecOf(in.Src2, n)
		src := st.vecOf(in.Src1, n)
		for e := 0; e < n; e++ {
			st.Mem.WriteWord(in.Addr+(idx[e]%isa.MaxVL)*isa.ElemBytes, src[e])
		}

	case isa.OpVCmp:
		a, b := st.vecOf(in.Src1, n), st.vecOf(in.Src2, n)
		for e := 0; e < n; e++ {
			st.Mask[e] = a[e] > b[e]
		}
	case isa.OpVMerge:
		a, b := st.vecOf(in.Src1, n), st.vecOf(in.Src2, n)
		for e := 0; e < n; e++ {
			if st.Mask[e] {
				st.V[in.Dst.Idx][e] = a[e]
			} else {
				st.V[in.Dst.Idx][e] = b[e]
			}
		}
	case isa.OpVReduce:
		var sum uint64
		for _, v := range st.vecOf(in.Src1, n) {
			sum += v
		}
		st.setScalar(in.Dst, sum)

	case isa.OpVSAdd, isa.OpVSMul:
		a := st.vecOf(in.Src1, n)
		s := st.scalarOf(in.Src2)
		for e := 0; e < n; e++ {
			st.V[in.Dst.Idx][e] = binop(in.Op, a[e], s)
		}

	case isa.OpVAdd, isa.OpVMul, isa.OpVDiv, isa.OpVSqrt, isa.OpVLogic, isa.OpVShift:
		a, b := st.vecOf(in.Src1, n), st.vecOf(in.Src2, n)
		for e := 0; e < n; e++ {
			st.V[in.Dst.Idx][e] = binop(in.Op, a[e], b[e])
		}

	default: // scalar ALU
		st.setScalar(in.Dst, binop(in.Op, st.scalarOf(in.Src1), st.scalarOf(in.Src2)))
	}
}

// Violation records one failure of the load-elimination invariant: a load
// whose tag matched a register whose value does NOT equal memory.
type Violation struct {
	// Index is the trace position of the load.
	Index int
	// Register is the logical vector register whose physical tag matched.
	Register int
	// Element is the first mismatching element.
	Element int
	// Got and Want are the register's and memory's values at that element.
	Got, Want uint64
}

// String formats the violation.
func (v Violation) String() string {
	return fmt.Sprintf("insn %d: tag match on v%d but element %d holds %#x, memory holds %#x",
		v.Index, v.Register, v.Element, v.Got, v.Want)
}

// Report is the outcome of Validate.
type Report struct {
	// Eliminations is the number of loads whose tags matched (and that the
	// OOOVA would eliminate).
	Eliminations int
	// Checked is the number of element comparisons performed.
	Checked int
	// Violations lists invariant failures (empty under the conservative
	// §6.1 invalidation policy).
	Violations []Violation
}

// Validate runs the §6 tag protocol at value level over the trace: tags
// are set by loads and stores and invalidated by stores exactly as the
// OOOVA does, and every tag match is checked against memory contents.
// exactInvalidation selects the unsafe ablation policy; with the paper's
// conservative policy the returned report must contain no violations.
//
// The tag file is indexed by *logical* register here: funcsim has no
// renamer, and the invariant — tagged register mirrors memory — is
// identical under any injective register mapping.
func Validate(t *trace.Trace, exactInvalidation bool) *Report {
	st := NewState()
	tags := rename.NewTagFile(isa.NumLogicalV)
	rep := &Report{}

	for i := range t.Insns {
		in := &t.Insns[i]
		n := in.EffVL()
		taggable := in.Op == isa.OpVLoad || in.Op == isa.OpVStore

		if in.Op == isa.OpVLoad {
			rs, re := in.MemRange()
			tag := rename.Tag{Start: rs, End: re, VL: uint16(n), VS: in.VS,
				Sz: isa.ElemBytes, Valid: true}
			if match := tags.FindExact(tag); match >= 0 {
				// The OOOVA would eliminate this load: the destination
				// would be renamed onto `match`. Verify the invariant.
				rep.Eliminations++
				want := st.Mem.ReadVector(in.Addr, n, int64(in.VS))
				got := st.V[match][:n]
				for e := 0; e < n; e++ {
					rep.Checked++
					if got[e] != want[e] {
						rep.Violations = append(rep.Violations, Violation{
							Index: i, Register: match, Element: e,
							Got: got[e], Want: want[e],
						})
						break
					}
				}
			}
		}

		// Execute the instruction's value semantics.
		Step(in, st)

		// Tag maintenance, mirroring ooosim.execMem.
		switch {
		case in.Op == isa.OpVLoad:
			rs, re := in.MemRange()
			tags.Set(int(in.Dst.Idx), rename.Tag{Start: rs, End: re,
				VL: uint16(n), VS: in.VS, Sz: isa.ElemBytes, Valid: true})
		case in.Op.IsStore() && in.Op.IsVector():
			rs, re := in.MemRange()
			own := -1
			if taggable {
				own = int(in.Src1.Idx)
				tags.Set(own, rename.Tag{Start: rs, End: re,
					VL: uint16(n), VS: in.VS, Sz: isa.ElemBytes, Valid: true})
			}
			if exactInvalidation {
				tags.InvalidateExact(rs, re, own)
			} else {
				tags.InvalidateOverlap(rs, re, own)
			}
		case in.Op.IsStore():
			rs, re := in.MemRange()
			if exactInvalidation {
				tags.InvalidateExact(rs, re, -1)
			} else {
				tags.InvalidateOverlap(rs, re, -1)
			}
		case in.WritesReg() && in.Dst.Class == isa.RegV:
			// A functional-unit result no longer mirrors memory.
			tags.Invalidate(int(in.Dst.Idx))
		}
	}
	return rep
}
