package funcsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oovec/internal/isa"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

func TestVectorLoadStoreRoundTrip(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(8, isa.A(0))
	b.VStore(isa.V(3), 0x1000)
	b.VLoad(isa.V(5), 0x1000)
	tr := b.Build()
	st := NewState()
	Execute(tr, st)
	for e := 0; e < 8; e++ {
		if st.V[5][e] != st.V[3][e] {
			t.Fatalf("element %d: %#x != %#x", e, st.V[5][e], st.V[3][e])
		}
	}
}

func TestStridedStoreLoad(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(4, isa.A(0))
	b.SetVS(32, isa.A(1))
	b.VStore(isa.V(2), 0x2000)
	b.VLoad(isa.V(6), 0x2000)
	tr := b.Build()
	st := NewState()
	Execute(tr, st)
	for e := 0; e < 4; e++ {
		if st.V[6][e] != st.V[2][e] {
			t.Fatalf("strided element %d mismatch", e)
		}
	}
}

func TestVectorArithmetic(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(4, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(1))
	b.Vector(isa.OpVMul, isa.V(3), isa.V(0), isa.V(1))
	tr := b.Build()
	st := NewState()
	v0, v1 := append([]uint64(nil), st.V[0]...), append([]uint64(nil), st.V[1]...)
	Execute(tr, st)
	for e := 0; e < 4; e++ {
		if st.V[2][e] != v0[e]+v1[e] {
			t.Errorf("add element %d", e)
		}
		if st.V[3][e] != v0[e]*v1[e] {
			t.Errorf("mul element %d", e)
		}
	}
}

func TestMaskedMerge(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(4, isa.A(0))
	b.Vector(isa.OpVCmp, isa.VM(), isa.V(1), isa.V(0)) // v1 > v0 elementwise
	b.Vector(isa.OpVMerge, isa.V(4), isa.V(1), isa.V(0))
	tr := b.Build()
	st := NewState()
	Execute(tr, st)
	for e := 0; e < 4; e++ {
		want := st.V[0][e]
		if st.V[1][e] > st.V[0][e] {
			want = st.V[1][e]
		}
		if st.V[4][e] != want {
			t.Errorf("merge element %d = %#x, want %#x", e, st.V[4][e], want)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(4, isa.A(0))
	b.Scatter(isa.V(2), isa.V(1), 0x8000)
	b.Gather(isa.V(6), isa.V(1), 0x8000)
	tr := b.Build()
	st := NewState()
	Execute(tr, st)
	for e := 0; e < 4; e++ {
		if st.V[6][e] != st.V[2][e] {
			t.Errorf("gather element %d mismatch", e)
		}
	}
}

func TestScalarOpsAndReduce(t *testing.T) {
	b := trace.NewBuilder("t")
	b.Scalar(isa.OpSAdd, isa.S(3), isa.S(1), isa.S(2))
	b.SetVL(4, isa.A(0))
	b.Raw(isa.Instruction{Op: isa.OpVReduce, Dst: isa.S(4), Src1: isa.V(2), VL: 4})
	tr := b.Build()
	st := NewState()
	s1, s2 := st.S[1], st.S[2]
	var sum uint64
	for e := 0; e < 4; e++ {
		sum += st.V[2][e]
	}
	Execute(tr, st)
	if st.S[3] != s1+s2 {
		t.Error("scalar add wrong")
	}
	if st.S[4] != sum {
		t.Errorf("reduce = %#x, want %#x", st.S[4], sum)
	}
}

func TestValidateSpillPairInvariantHolds(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(16, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(1), isa.V(0), isa.V(2))
	b.SpillStore(isa.V(1), 0x900000)
	b.Vector(isa.OpVMul, isa.V(1), isa.V(0), isa.V(3)) // clobber the register
	b.SpillLoad(isa.V(4), 0x900000)                    // tag still matches v1's spill
	tr := b.Build()
	rep := Validate(tr, false)
	// The clobber invalidated v1's tag (FU write), so the reload matches
	// nothing... unless the store's tag was on v1 — which the FU write
	// kills too. Either way: zero violations.
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

func TestValidateRepeatedLoadEliminatedCorrectly(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(16, isa.A(0))
	b.VStore(isa.V(2), 0x4000)
	b.VLoad(isa.V(1), 0x4000)
	b.VLoad(isa.V(5), 0x4000) // matches v1's (or v2's) tag
	tr := b.Build()
	rep := Validate(tr, false)
	if rep.Eliminations == 0 {
		t.Fatal("expected at least one elimination")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

func TestValidateConservativePolicyOnAllPresets(t *testing.T) {
	// The §6 correctness claim, checked end to end: across all ten
	// benchmark traces, no eliminated load ever observes a value different
	// from memory.
	for _, p := range tgen.Presets() {
		p.Insns = 6000
		tr := tgen.Generate(p)
		rep := Validate(tr, false)
		if len(rep.Violations) != 0 {
			t.Errorf("%s: %d violations, first: %v", p.Name, len(rep.Violations), rep.Violations[0])
		}
		if p.SpillTrafficPct > 15 && rep.Eliminations == 0 {
			t.Errorf("%s: spilly program with no eliminations", p.Name)
		}
	}
}

func TestValidateExactInvalidationIsUnsafe(t *testing.T) {
	// A partially overlapping store must kill the tag; the exact-only
	// ablation keeps it and serves stale data.
	b := trace.NewBuilder("t")
	b.SetVL(16, isa.A(0))
	b.VStore(isa.V(2), 0x4000) // tag v2 = [0x4000, 16 elems]
	b.SetVL(4, isa.A(1))
	b.VStore(isa.V(3), 0x4010) // partial overwrite (different range)
	b.SetVL(16, isa.A(2))
	b.VLoad(isa.V(5), 0x4000) // exact-match against v2's stale tag
	tr := b.Build()

	unsafeRep := Validate(tr, true)
	if len(unsafeRep.Violations) == 0 {
		t.Error("exact-only invalidation should produce a stale-value violation")
	}
	safeRep := Validate(tr, false)
	if len(safeRep.Violations) != 0 {
		t.Errorf("conservative policy violated: %v", safeRep.Violations)
	}
}

func TestPropertyEliminationInvariantOnRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := trace.NewBuilder("prop")
		vl := 4 + r.Intn(28)
		b.SetVL(vl, isa.A(0))
		// Random mix over a small address pool to force tag churn.
		for i := 0; i < 300; i++ {
			addr := uint64(0x1000 + r.Intn(8)*0x40)
			switch r.Intn(5) {
			case 0:
				b.VLoad(isa.V(r.Intn(8)), addr)
			case 1:
				b.VStore(isa.V(r.Intn(8)), addr)
			case 2:
				b.Vector(isa.OpVAdd, isa.V(r.Intn(8)), isa.V(r.Intn(8)), isa.V(r.Intn(8)))
			case 3:
				b.SpillStore(isa.V(r.Intn(8)), addr+0x10000)
			case 4:
				b.SpillLoad(isa.V(r.Intn(8)), addr+0x10000)
			}
			if r.Intn(16) == 0 {
				nvl := 4 + r.Intn(28)
				b.SetVL(nvl, isa.A(1))
			}
		}
		rep := Validate(b.Build(), false)
		return len(rep.Violations) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	p, _ := tgen.PresetByName("flo52")
	p.Insns = 3000
	tr := tgen.Generate(p)
	a, b := NewState(), NewState()
	Execute(tr, a)
	Execute(tr, b)
	for i := range a.V {
		for e := range a.V[i] {
			if a.V[i][e] != b.V[i][e] {
				t.Fatalf("nondeterministic value at v%d[%d]", i, e)
			}
		}
	}
	if a.Mem.Footprint() != b.Mem.Footprint() {
		t.Error("memory footprints differ")
	}
}
