// Package metrics computes the measurements the paper reports: the
// eight-state (FU2, FU1, MEM) execution-cycle breakdown of Figures 3 and 7,
// the memory-port idle percentages of Figures 4 and 6, the IDEAL speedup
// bound of Figures 5 and 8, and assorted speedup/traffic helpers.
package metrics

import (
	"fmt"
	"sort"

	"oovec/internal/isa"
	"oovec/internal/sched"
	"oovec/internal/trace"
)

// State is the paper's 3-tuple machine state: which of the three vector-unit
// resources (FU2, FU1, MEM) are busy in a cycle. Encoded as a bitmask.
type State uint8

// Bit assignments within State.
const (
	StateMEM State = 1 << iota
	StateFU1
	StateFU2
)

// NumStates is the number of distinct (FU2, FU1, MEM) states.
const NumStates = 8

// String renders the state in the paper's tuple notation, e.g.
// "<FU2,FU1,MEM>" or "< , , >".
func (s State) String() string {
	f2, f1, m := " ", " ", " "
	if s&StateFU2 != 0 {
		f2 = "FU2"
	}
	if s&StateFU1 != 0 {
		f1 = "FU1"
	}
	if s&StateMEM != 0 {
		m = "MEM"
	}
	return fmt.Sprintf("<%s,%s,%s>", f2, f1, m)
}

// Breakdown is the number of cycles spent in each of the eight states.
type Breakdown [NumStates]int64

// Total returns the sum over all states (the measured execution time).
func (b Breakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Idle returns the cycles in state < , , > (all vector units idle).
func (b Breakdown) Idle() int64 { return b[0] }

// FullyBusy returns the cycles in state <FU2,FU1,MEM>.
func (b Breakdown) FullyBusy() int64 { return b[StateFU2|StateFU1|StateMEM] }

// MemIdleCycles returns the cycles in the four states where the MEM unit is
// idle — the quantity of Figure 4 ("these four states correspond to cycles
// where the memory port could potentially be used").
func (b Breakdown) MemIdleCycles() int64 {
	var t int64
	for s := State(0); s < NumStates; s++ {
		if s&StateMEM == 0 {
			t += b[s]
		}
	}
	return t
}

// edge is one interval endpoint in the StateBreakdown sweep.
type edge struct {
	t   int64
	bit State
	on  bool
}

// Scratch holds the reusable edge buffer of StateBreakdown. A simulator
// machine that keeps one across runs turns the breakdown's dominant
// allocation (two edges per busy interval — hundreds of kilobytes on a
// full-size trace) into a one-time cost. The zero value is ready to use; a
// Scratch is not safe for concurrent use.
type Scratch struct {
	edges []edge
}

// StateBreakdown sweeps the busy intervals of the three vector units and
// returns the exact per-state cycle counts over [0, total).
func StateBreakdown(fu2, fu1, mem []sched.Interval, total int64) Breakdown {
	var sc Scratch
	return sc.StateBreakdown(fu2, fu1, mem, total)
}

// StateBreakdown is the allocation-amortised form of the package-level
// function: the edge buffer is kept (and grown) on the Scratch.
func (sc *Scratch) StateBreakdown(fu2, fu1, mem []sched.Interval, total int64) Breakdown {
	edges := sc.edges[:0]
	add := func(ivs []sched.Interval, bit State) {
		for _, iv := range ivs {
			s, e := iv.Start, iv.End
			if s < 0 {
				s = 0
			}
			if e > total {
				e = total
			}
			if s >= e {
				continue
			}
			edges = append(edges, edge{s, bit, true}, edge{e, bit, false})
		}
	}
	add(fu2, StateFU2)
	add(fu1, StateFU1)
	add(mem, StateMEM)
	sc.edges = edges // keep the grown buffer for the next run
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })

	var b Breakdown
	cur := State(0)
	prev := int64(0)
	for i := 0; i < len(edges); {
		t := edges[i].t
		if t > prev {
			b[cur] += t - prev
			prev = t
		}
		for i < len(edges) && edges[i].t == t {
			if edges[i].on {
				cur |= edges[i].bit
			} else {
				cur &^= edges[i].bit
			}
			i++
		}
	}
	if total > prev {
		b[cur] += total - prev
	}
	return b
}

// StallBreakdown attributes pipeline stall cycles to the specific hardware
// resource that caused them — the per-cause refinement of the coarse
// DecodeStall* counters. The paper's 8-state breakdown says the machine was
// stalled; this says why. All counters are exact cycle counts accumulated
// deterministically during the run, so they are part of the result (and of
// checkpoints), never an optional probe artifact.
type StallBreakdown struct {
	// ROBFull counts decode stalls waiting for a reorder-buffer slot.
	ROBFull int64
	// IQFullA/S/V/M count decode stalls waiting for a slot in the named
	// issue queue.
	IQFullA int64
	IQFullS int64
	IQFullV int64
	IQFullM int64
	// NoPhysA/S/V/M count decode stalls waiting for a free physical
	// register of the destination's class.
	NoPhysA int64
	NoPhysS int64
	NoPhysV int64
	NoPhysM int64
	// PortConflict counts cycles lost to vector register-file port
	// conflicts (equals VRegPortConflictCycles; derived at end of run).
	PortConflict int64
	// MemBusBusy counts cycles memory accesses waited for the shared
	// address bus after being otherwise ready to issue requests.
	MemBusBusy int64
}

// IQFull returns the total issue-queue-full stall cycles across queues.
func (b *StallBreakdown) IQFull() int64 {
	return b.IQFullA + b.IQFullS + b.IQFullV + b.IQFullM
}

// NoPhysReg returns the total free-list-empty stall cycles across classes.
func (b *StallBreakdown) NoPhysReg() int64 {
	return b.NoPhysA + b.NoPhysS + b.NoPhysV + b.NoPhysM
}

// Total returns the sum of all attributed stall cycles.
func (b *StallBreakdown) Total() int64 {
	return b.ROBFull + b.IQFull() + b.NoPhysReg() + b.PortConflict + b.MemBusBusy
}

// OccBuckets is the number of occupancy histogram buckets: bucket i covers
// occupancies of i eighths of the structure's capacity, with the last bucket
// meaning completely full.
const OccBuckets = 9

// OccHist is a fixed-bucket occupancy histogram for a bounded structure (an
// issue queue, the reorder buffer). Occupancy is sampled once per
// instruction at its decode cycle and recorded as a fraction of capacity, so
// histograms from differently sized configurations are comparable.
type OccHist struct {
	// Cap is the structure capacity the samples were taken against.
	Cap int64
	// Counts[i] is the number of samples whose occupancy fell in bucket i
	// (floor(occ * (OccBuckets-1) / Cap), clamped).
	Counts [OccBuckets]int64
}

// Observe records one occupancy sample against the given capacity.
// Allocation-free: called from the simulator hot path.
func (h *OccHist) Observe(occ, capacity int) {
	if capacity <= 0 {
		return
	}
	h.Cap = int64(capacity)
	b := occ * (OccBuckets - 1) / capacity
	if b < 0 {
		b = 0
	}
	if b > OccBuckets-1 {
		b = OccBuckets - 1
	}
	h.Counts[b]++
}

// Samples returns the total number of recorded samples.
func (h *OccHist) Samples() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Occupancy bundles the per-structure occupancy histograms of one OOOVA
// run. The reference machine has no bounded windows, so its runs leave the
// zero value.
type Occupancy struct {
	ROB OccHist
	IQA OccHist
	IQS OccHist
	IQV OccHist
	IQM OccHist
}

// RunStats is the measurement record produced by one simulator run. Both the
// reference and OOOVA simulators fill one.
type RunStats struct {
	// Machine names the configuration ("REF", "OOOVA", ...).
	Machine string
	// Program names the trace.
	Program string
	// Cycles is the total execution time.
	Cycles int64
	// States is the (FU2,FU1,MEM) occupancy breakdown.
	States Breakdown
	// MemPortBusy is the number of cycles the address bus issued a request.
	MemPortBusy int64
	// MemRequests is the number of requests (element transfers) on the
	// address bus — the traffic measure of Figure 13.
	MemRequests int64
	// Instructions is the dynamic instruction count simulated.
	Instructions int64
	// VRegPortConflictCycles counts stall cycles charged to vector
	// register-file port conflicts.
	VRegPortConflictCycles int64
	// Mispredicts counts front-end control mispredictions (OOOVA only).
	Mispredicts int64
	// EliminatedLoads counts dynamically eliminated load instructions
	// (§6, OOOVA with SLE/VLE only).
	EliminatedLoads int64
	// EliminatedRequests counts the address-bus requests those loads would
	// have issued.
	EliminatedRequests int64
	// ElidedStores counts dead spill stores removed by the
	// ElideDeadSpillStores extension, and ElidedRequests their requests.
	ElidedStores   int64
	ElidedRequests int64
	// DecodeStallRegs counts decode stalls waiting for a free physical
	// register (OOOVA only).
	DecodeStallRegs int64
	// DecodeStallQueue counts decode stalls waiting for an issue-queue slot.
	DecodeStallQueue int64
	// DecodeStallROB counts decode stalls waiting for a reorder-buffer slot.
	DecodeStallROB int64
	// Stalls refines the DecodeStall* sums into per-resource causes and adds
	// port-conflict and memory-bus wait attribution.
	Stalls StallBreakdown
	// Occupancy holds the per-structure occupancy histograms (OOOVA only).
	Occupancy Occupancy
}

// MemPortIdlePct returns the Figure 4/6 metric: the percentage of execution
// cycles in which the address port issued no request.
func (r *RunStats) MemPortIdlePct() float64 {
	if r.Cycles == 0 {
		return 0
	}
	idle := r.Cycles - r.MemPortBusy
	return 100 * float64(idle) / float64(r.Cycles)
}

// Speedup returns base.Cycles / r.Cycles: the speedup of r over base.
func Speedup(base, r *RunStats) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// TrafficReduction returns the Figure 13 metric: base requests divided by
// r's requests (>1 means r sends less traffic).
func TrafficReduction(base, r *RunStats) float64 {
	if r.MemRequests == 0 {
		return 0
	}
	return float64(base.MemRequests) / float64(r.MemRequests)
}

// IdealCycles computes the paper's IDEAL lower bound for a trace: "the total
// number of cycles consumed by the most heavily used vector unit (FU1, FU2,
// or MEM)", eliminating all data and memory dependences.
//
// FU2-only work (mul/div/sqrt) must run on FU2; the remaining vector
// computation may be split freely between FU1 and FU2, so the best
// achievable per-FU load is the balanced partition. The MEM bound is the
// address-bus occupancy: one cycle per element for vector references and one
// cycle per scalar reference.
func IdealCycles(t *trace.Trace) int64 {
	var fu2Only, flexible, memCycles int64
	for i := range t.Insns {
		in := &t.Insns[i]
		switch {
		case in.Op.ExecUnit() == isa.UnitV:
			if in.Op.NeedsFU2() {
				fu2Only += int64(in.EffVL())
			} else {
				flexible += int64(in.EffVL())
			}
		case in.Op.IsMem():
			memCycles += int64(in.EffVL())
		}
	}
	// Best max(FU1, FU2) given FU2 must hold fu2Only.
	bal := (fu2Only + flexible + 1) / 2
	fuBound := fu2Only
	if bal > fuBound {
		fuBound = bal
	}
	if memCycles > fuBound {
		return memCycles
	}
	return fuBound
}

// IdealSpeedup returns the IDEAL speedup line of Figures 5, 8 and 9 for a
// program: reference cycles over the IDEAL bound.
func IdealSpeedup(refCycles int64, t *trace.Trace) float64 {
	ideal := IdealCycles(t)
	if ideal == 0 {
		return 0
	}
	return float64(refCycles) / float64(ideal)
}
