package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oovec/internal/isa"
	"oovec/internal/sched"
	"oovec/internal/trace"
)

func TestStateString(t *testing.T) {
	if got := (StateFU2 | StateFU1 | StateMEM).String(); got != "<FU2,FU1,MEM>" {
		t.Errorf("full state = %q", got)
	}
	if got := State(0).String(); got != "< , , >" {
		t.Errorf("idle state = %q", got)
	}
	if got := StateMEM.String(); got != "< , ,MEM>" {
		t.Errorf("mem state = %q", got)
	}
	if got := StateFU1.String(); got != "< ,FU1, >" {
		t.Errorf("fu1 state = %q", got)
	}
}

func TestStateBreakdownDisjointUnits(t *testing.T) {
	// FU2 busy [0,10), FU1 busy [10,20), MEM busy [20,30); total 40.
	b := StateBreakdown(
		[]sched.Interval{{Start: 0, End: 10}},
		[]sched.Interval{{Start: 10, End: 20}},
		[]sched.Interval{{Start: 20, End: 30}},
		40)
	if b[StateFU2] != 10 || b[StateFU1] != 10 || b[StateMEM] != 10 {
		t.Errorf("breakdown = %v", b)
	}
	if b.Idle() != 10 {
		t.Errorf("idle = %d, want 10", b.Idle())
	}
	if b.Total() != 40 {
		t.Errorf("total = %d, want 40", b.Total())
	}
}

func TestStateBreakdownOverlap(t *testing.T) {
	// All three busy [5,15); FU1 alone [15,25); total 30.
	b := StateBreakdown(
		[]sched.Interval{{Start: 5, End: 15}},
		[]sched.Interval{{Start: 5, End: 25}},
		[]sched.Interval{{Start: 5, End: 15}},
		30)
	if b.FullyBusy() != 10 {
		t.Errorf("fully busy = %d, want 10", b.FullyBusy())
	}
	if b[StateFU1] != 10 {
		t.Errorf("fu1 alone = %d, want 10", b[StateFU1])
	}
	if b.Idle() != 10 {
		t.Errorf("idle = %d, want 10", b.Idle())
	}
}

func TestStateBreakdownClampsToTotal(t *testing.T) {
	b := StateBreakdown(
		[]sched.Interval{{Start: 0, End: 100}}, nil, nil, 10)
	if b[StateFU2] != 10 || b.Total() != 10 {
		t.Errorf("clamped breakdown = %v", b)
	}
}

func TestMemIdleCycles(t *testing.T) {
	b := Breakdown{}
	b[0] = 5                 // idle
	b[StateFU1] = 7          // FU1 only
	b[StateMEM] = 11         // MEM only
	b[StateFU2|StateFU1] = 3 // both FUs, no MEM
	b[StateFU2|StateFU1|StateMEM] = 2
	if got := b.MemIdleCycles(); got != 5+7+3 {
		t.Errorf("mem idle = %d, want 15", got)
	}
}

func TestPropertyBreakdownTotalsMatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() []sched.Interval {
			g := sched.NewGap()
			for i := 0; i < 30; i++ {
				g.Allocate(int64(r.Intn(500)), int64(1+r.Intn(20)))
			}
			return g.Intervals()
		}
		fu2, fu1, mem := mk(), mk(), mk()
		total := int64(1200)
		b := StateBreakdown(fu2, fu1, mem, total)
		if b.Total() != total {
			return false
		}
		// Per-unit busy cycles recovered from the breakdown must equal the
		// clamped interval sums.
		sum := func(ivs []sched.Interval) int64 {
			var s int64
			for _, iv := range ivs {
				e := iv.End
				if e > total {
					e = total
				}
				if iv.Start < e {
					s += e - iv.Start
				}
			}
			return s
		}
		var gotFU2, gotFU1, gotMEM int64
		for s := State(0); s < NumStates; s++ {
			if s&StateFU2 != 0 {
				gotFU2 += b[s]
			}
			if s&StateFU1 != 0 {
				gotFU1 += b[s]
			}
			if s&StateMEM != 0 {
				gotMEM += b[s]
			}
		}
		return gotFU2 == sum(fu2) && gotFU1 == sum(fu1) && gotMEM == sum(mem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunStatsMemPortIdlePct(t *testing.T) {
	r := &RunStats{Cycles: 200, MemPortBusy: 50}
	if got := r.MemPortIdlePct(); got != 75 {
		t.Errorf("idle pct = %v, want 75", got)
	}
	empty := &RunStats{}
	if empty.MemPortIdlePct() != 0 {
		t.Error("empty stats idle pct should be 0")
	}
}

func TestSpeedupAndTraffic(t *testing.T) {
	base := &RunStats{Cycles: 1000, MemRequests: 500}
	fast := &RunStats{Cycles: 500, MemRequests: 400}
	if got := Speedup(base, fast); got != 2 {
		t.Errorf("speedup = %v, want 2", got)
	}
	if got := TrafficReduction(base, fast); got != 1.25 {
		t.Errorf("traffic reduction = %v, want 1.25", got)
	}
	if Speedup(base, &RunStats{}) != 0 || TrafficReduction(base, &RunStats{}) != 0 {
		t.Error("zero denominators should yield 0")
	}
}

func buildTestTrace() *trace.Trace {
	b := trace.NewBuilder("ideal-test")
	b.SetVL(64, isa.A(0))
	// 4 flexible vector ops (64 each), 2 FU2-only (64 each), 3 vector
	// memory ops (64 each), 2 scalar loads.
	for i := 0; i < 4; i++ {
		b.Vector(isa.OpVAdd, isa.V(0), isa.V(1), isa.V(2))
	}
	for i := 0; i < 2; i++ {
		b.Vector(isa.OpVMul, isa.V(3), isa.V(1), isa.V(2))
	}
	for i := 0; i < 3; i++ {
		b.VLoad(isa.V(4), uint64(0x1000+i*0x400))
	}
	b.ScalarLoad(isa.OpSLoad, isa.S(0), 0x9000)
	b.ScalarLoad(isa.OpSLoad, isa.S(1), 0x9008)
	return b.Build()
}

func TestIdealCyclesBalancedFUs(t *testing.T) {
	tr := buildTestTrace()
	// FU2-only: 2*64 = 128. Flexible: 4*64 = 256. Balanced max(FU1,FU2) =
	// ceil(384/2) = 192 >= 128. MEM = 3*64 + 2 = 194.
	// IDEAL = max(192, 194) = 194.
	if got := IdealCycles(tr); got != 194 {
		t.Errorf("IdealCycles = %d, want 194", got)
	}
}

func TestIdealCyclesFU2Dominated(t *testing.T) {
	b := trace.NewBuilder("fu2-heavy")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 10; i++ {
		b.Vector(isa.OpVDiv, isa.V(0), isa.V(1), isa.V(2))
	}
	b.Vector(isa.OpVAdd, isa.V(3), isa.V(1), isa.V(2))
	tr := b.Build()
	// FU2-only = 640 > balanced(704/2=352) and MEM=0.
	if got := IdealCycles(tr); got != 640 {
		t.Errorf("IdealCycles = %d, want 640", got)
	}
}

func TestIdealSpeedup(t *testing.T) {
	tr := buildTestTrace()
	if got := IdealSpeedup(1940, tr); got != 10 {
		t.Errorf("IdealSpeedup = %v, want 10", got)
	}
	var empty trace.Trace
	if IdealSpeedup(100, &empty) != 0 {
		t.Error("empty trace ideal speedup should be 0")
	}
}

func TestPropertyIdealIsLowerBoundOnUnitWork(t *testing.T) {
	// IDEAL must never be below any single unit's total work divided
	// between the units that can execute it.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := trace.NewBuilder("prop")
		b.SetVL(1+r.Intn(isa.MaxVL), isa.A(0))
		var memWork int64
		for i := 0; i < 100; i++ {
			switch r.Intn(3) {
			case 0:
				b.Vector(isa.OpVAdd, isa.V(0), isa.V(1), isa.V(2))
			case 1:
				b.Vector(isa.OpVMul, isa.V(0), isa.V(1), isa.V(2))
			case 2:
				b.VLoad(isa.V(3), uint64(r.Intn(1<<20)))
				memWork += int64(b.VL())
			}
		}
		tr := b.Build()
		return IdealCycles(tr) >= memWork
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
