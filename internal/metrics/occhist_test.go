package metrics

import "testing"

func TestOccHistBucketMapping(t *testing.T) {
	var h OccHist
	const capacity = 64
	// Empty, half-full and full occupancy land in the first, middle and
	// last buckets respectively.
	h.Observe(0, capacity)
	h.Observe(capacity/2, capacity)
	h.Observe(capacity, capacity)
	if h.Cap != capacity {
		t.Errorf("Cap = %d, want %d", h.Cap, capacity)
	}
	if h.Counts[0] != 1 {
		t.Errorf("empty sample not in bucket 0: %v", h.Counts)
	}
	if h.Counts[(OccBuckets-1)/2] != 1 {
		t.Errorf("half-full sample not in the middle bucket: %v", h.Counts)
	}
	if h.Counts[OccBuckets-1] != 1 {
		t.Errorf("full sample not in the last bucket: %v", h.Counts)
	}
	if h.Samples() != 3 {
		t.Errorf("Samples = %d, want 3", h.Samples())
	}
}

func TestOccHistClampsAndGuards(t *testing.T) {
	var h OccHist
	h.Observe(5, 0)  // zero capacity: ignored, no panic
	h.Observe(-1, 0) // nonsense: ignored
	if h.Samples() != 0 {
		t.Errorf("guarded observes counted: %v", h.Counts)
	}
	h.Observe(100, 8) // over-capacity clamps into the last bucket
	h.Observe(-3, 8)  // negative clamps into the first
	if h.Counts[OccBuckets-1] != 1 || h.Counts[0] != 1 {
		t.Errorf("clamping broken: %v", h.Counts)
	}
}

// TestOccHistEveryOccupancyLands sweeps every occupancy of a small
// structure and asserts the samples distribute over all buckets without
// loss — the total always equals the number of observes, and the bucket
// index is monotone in the occupancy.
func TestOccHistEveryOccupancyLands(t *testing.T) {
	const capacity = 16
	var h OccHist
	prev := 0
	for occ := 0; occ <= capacity; occ++ {
		before := h
		h.Observe(occ, capacity)
		// Find the bucket this observe incremented.
		hit := -1
		for i := range h.Counts {
			if h.Counts[i] != before.Counts[i] {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Fatalf("occ %d: no bucket incremented", occ)
		}
		if hit < prev {
			t.Errorf("occ %d: bucket %d below previous %d — mapping not monotone", occ, hit, prev)
		}
		prev = hit
	}
	if h.Samples() != capacity+1 {
		t.Errorf("Samples = %d, want %d", h.Samples(), capacity+1)
	}
}

func TestStallBreakdownAggregates(t *testing.T) {
	s := StallBreakdown{
		ROBFull: 10,
		IQFullA: 1, IQFullS: 2, IQFullV: 3, IQFullM: 4,
		NoPhysA: 5, NoPhysS: 6, NoPhysV: 7, NoPhysM: 8,
		PortConflict: 20, MemBusBusy: 30,
	}
	if got := s.IQFull(); got != 10 {
		t.Errorf("IQFull = %d, want 10", got)
	}
	if got := s.NoPhysReg(); got != 26 {
		t.Errorf("NoPhysReg = %d, want 26", got)
	}
	if got := s.Total(); got != 10+10+26+20+30 {
		t.Errorf("Total = %d, want %d", got, 10+10+26+20+30)
	}
}
