// Package engine provides the worker-pool primitive that fans the
// repository's embarrassingly parallel simulation workloads — experiment
// drivers (Tables 2–3, Figures 3–13), parameter-grid sweeps — across CPU
// cores.
//
// The design keeps determinism trivial: Map runs fn(i) for every index of a
// task list, and callers make fn(i) write its result into slot i of a
// preallocated slice. Assembly of the final output then happens serially in
// index order, so rendered tables, figures and CSV files are byte-identical
// to a serial run regardless of worker count or scheduling.
//
// Tasks share immutable inputs (generated traces are never mutated by the
// simulators) and must not write shared state without synchronisation;
// caches shared between tasks (the experiment Suite's trace and
// reference-run caches) serialise internally.
//
// MapWith extends Map with per-worker state: each worker goroutine builds
// one state value (typically pooled, resettable simulator machines) and
// passes it to every task it claims, so expensive per-run construction is
// amortised across the whole grid without any synchronisation on the state.
// MapWithCtx adds cooperative cancellation between tasks, which is what lets
// a server abandon a grid whose client has disconnected instead of burning
// workers on results nobody will read.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a -j style parallelism request: values <= 0 select
// runtime.GOMAXPROCS(0) (one worker per available core); anything else is
// returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WorkerPanic is the value Map and MapWith re-raise on the caller's
// goroutine when a task panicked on a worker goroutine. Re-raising a
// recovered value loses the goroutine it was recovered on, so the original
// worker stack is captured at recover time and carried along — without it,
// failures inside fanned-out simulations point at Map's wg.Wait instead of
// the simulator line that blew up.
//
// Serial execution (one worker) calls fn on the caller's goroutine and lets
// panics propagate natively, so a WorkerPanic is only seen for workers > 1.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Index is the task index whose fn panicked, or -1 when a MapWith
	// newState call panicked before any task ran.
	Index int
	// Stack is the worker goroutine's stack (debug.Stack) at recover time,
	// including the frames that led to the panic.
	Stack []byte
}

// String renders the original value followed by the captured worker stack;
// the runtime prints it when the re-raised panic goes unrecovered.
func (p WorkerPanic) String() string {
	return fmt.Sprintf("%v\n\n[engine] original worker stack:\n%s", p.Value, p.Stack)
}

// Unwrap returns the original panic value.
func (p WorkerPanic) Unwrap() any { return p.Value }

// Map runs fn(i) for every i in [0, n), using at most `workers` concurrent
// goroutines (workers <= 0 selects one per core). Indices are claimed from
// a shared counter, so long and short tasks balance automatically. Map
// returns when every call has finished.
//
// A panic inside fn stops the dispatch of further indices and is re-raised
// on the caller's goroutine once in-flight tasks have drained, wrapped in a
// WorkerPanic that preserves the original worker stack.
func Map(workers, n int, fn func(i int)) {
	MapWith(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { fn(i) })
}

// MapWith is Map with per-worker state: every worker goroutine calls
// newState exactly once, before claiming its first index, and passes the
// resulting value to each fn call it executes. No two goroutines ever share
// a state value, so S needs no internal synchronisation — the intended use
// is a pooled, resettable simulator machine living for the whole grid.
//
// With one worker (serial execution) newState and fn run on the caller's
// goroutine and panics propagate natively; with more, a panicking fn is
// re-raised on the caller as a WorkerPanic.
func MapWith[S any](workers, n int, newState func() S, fn func(s S, i int)) {
	MapWithCtx(context.Background(), workers, n, newState, fn)
}

// MapWithCtx is MapWith with cooperative cancellation: once ctx is done, no
// further index is dispatched and MapWithCtx returns ctx's error after
// in-flight fn calls finish. Tasks already running are never interrupted —
// cancellation is checked between tasks, the natural grain when each task is
// one whole simulation — so some slots of the caller's result slice may be
// filled and others not; a non-nil return means the results are incomplete
// and must be discarded.
//
// A nil ctx is accepted and means "never cancelled". Panics propagate as in
// MapWith, taking precedence over a concurrent cancellation.
func MapWithCtx[S any](ctx context.Context, workers, n int, newState func() S, fn func(s S, i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		s := newState()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(s, i)
		}
		return nil
	}

	var (
		next      atomic.Int64
		completed atomic.Int64
		wg        sync.WaitGroup
		panicked  atomic.Bool
		panicVal  any // written once under the panicked CAS; read after Wait
	)
	worker := func() {
		defer wg.Done()
		// A panicking newState must not kill the process (an unrecovered
		// panic on a worker goroutine would); report it like a task panic.
		var s S
		ok := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal = WorkerPanic{Value: r, Index: -1, Stack: debug.Stack()}
					}
				}
			}()
			s = newState()
			return true
		}()
		if !ok {
			return
		}
		for {
			i := next.Add(1) - 1
			if i >= int64(n) || panicked.Load() || ctx.Err() != nil {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						if panicked.CompareAndSwap(false, true) {
							panicVal = WorkerPanic{Value: r, Index: int(i), Stack: debug.Stack()}
						}
					}
				}()
				fn(s, int(i))
				completed.Add(1)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	// Only report cancellation when it actually cut the grid short: a ctx
	// that fires after the last task finished changed nothing.
	if completed.Load() < int64(n) {
		return ctx.Err()
	}
	return nil
}
