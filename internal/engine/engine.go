// Package engine provides the worker-pool primitive that fans the
// repository's embarrassingly parallel simulation workloads — experiment
// drivers (Tables 2–3, Figures 3–13), parameter-grid sweeps — across CPU
// cores.
//
// The design keeps determinism trivial: Map runs fn(i) for every index of a
// task list, and callers make fn(i) write its result into slot i of a
// preallocated slice. Assembly of the final output then happens serially in
// index order, so rendered tables, figures and CSV files are byte-identical
// to a serial run regardless of worker count or scheduling.
//
// Tasks share immutable inputs (generated traces are never mutated by the
// simulators) and must not write shared state without synchronisation;
// caches shared between tasks (the experiment Suite's trace and
// reference-run caches) serialise internally.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a -j style parallelism request: values <= 0 select
// runtime.GOMAXPROCS(0) (one worker per available core); anything else is
// returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n), using at most `workers` concurrent
// goroutines (workers <= 0 selects one per core). Indices are claimed from
// a shared counter, so long and short tasks balance automatically. Map
// returns when every call has finished.
//
// A panic inside fn stops the dispatch of further indices and is re-raised
// on the caller's goroutine once in-flight tasks have drained, matching the
// serial behaviour closely enough for error reporting.
func Map(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any // written once under the panicked CAS; read after Wait
	)
	worker := func() {
		defer wg.Done()
		for {
			i := next.Add(1) - 1
			if i >= int64(n) || panicked.Load() {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						if panicked.CompareAndSwap(false, true) {
							panicVal = r
						}
					}
				}()
				fn(int(i))
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}
