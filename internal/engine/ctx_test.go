package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapWithCtxSerialCancelBetweenTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := MapWithCtx(ctx, 1, 10, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) {
			ran++
			if ran == 3 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The cancelling task finishes (cancellation is between tasks), but no
	// further index is dispatched.
	if ran != 3 {
		t.Errorf("ran %d tasks after cancel at task 3, want exactly 3", ran)
	}
}

func TestMapWithCtxParallelCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var ran atomic.Int64
	var once sync.Once
	err := MapWithCtx(ctx, 4, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) {
			ran.Add(1)
			once.Do(cancel)
		})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// In-flight tasks (at most one per worker) drain; the rest of the grid
	// is never dispatched.
	if got := ran.Load(); got >= n {
		t.Errorf("all %d tasks ran despite cancellation", got)
	}
}

func TestMapWithCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := MapWithCtx(ctx, 4, 100, func() struct{} { called = true; return struct{}{} },
		func(_ struct{}, i int) { called = true })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("newState/fn ran on a pre-cancelled context")
	}
}

func TestMapWithCtxCompletedGridReportsNil(t *testing.T) {
	// A ctx that fires only after the last task finished changed nothing and
	// must not surface as an error.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := MapWithCtx(ctx, 3, 50, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { ran.Add(1) })
	cancel()
	if err != nil {
		t.Errorf("err = %v, want nil for a grid that completed before cancel", err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", ran.Load())
	}
}

func TestMapWithCtxNilContext(t *testing.T) {
	var ran atomic.Int64
	if err := MapWithCtx(nil, 2, 10, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { ran.Add(1) }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d tasks, want 10", ran.Load())
	}
}
