package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]int32, n)
		Map(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	called := false
	Map(4, 0, func(int) { called = true })
	if called {
		t.Error("Map(_, 0, fn) called fn")
	}
}

func TestMapSerialOrder(t *testing.T) {
	var order []int
	Map(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Map out of order: %v", order)
		}
	}
}

func TestMapDeterministicSlots(t *testing.T) {
	// Results written by index must be identical for any worker count.
	const n = 64
	want := make([]int, n)
	Map(1, n, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 4, 0} {
		got := make([]int, n)
		Map(workers, n, func(i int) { got[i] = i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			Map(workers, 100, func(i int) {
				if i == 17 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: Map returned without panicking", workers)
		}()
	}
}
