package engine

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]int32, n)
		Map(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	called := false
	Map(4, 0, func(int) { called = true })
	if called {
		t.Error("Map(_, 0, fn) called fn")
	}
}

func TestMapSerialOrder(t *testing.T) {
	var order []int
	Map(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Map out of order: %v", order)
		}
	}
}

func TestMapDeterministicSlots(t *testing.T) {
	// Results written by index must be identical for any worker count.
	const n = 64
	want := make([]int, n)
	Map(1, n, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 4, 0} {
		got := make([]int, n)
		Map(workers, n, func(i int) { got[i] = i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	// Serial execution runs fn on the caller's goroutine: the panic value
	// propagates unwrapped, with its original stack intact.
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("workers=1: recovered %v, want \"boom\"", r)
			}
		}()
		Map(1, 100, func(i int) {
			if i == 17 {
				panic("boom")
			}
		})
		t.Error("workers=1: Map returned without panicking")
	}()

	// Parallel execution loses the worker goroutine, so the re-raised value
	// must carry the original value, index and worker stack.
	func() {
		defer func() {
			r := recover()
			wp, ok := r.(WorkerPanic)
			if !ok {
				t.Fatalf("workers=4: recovered %T (%v), want WorkerPanic", r, r)
			}
			if wp.Value != "boom" {
				t.Errorf("WorkerPanic.Value = %v, want \"boom\"", wp.Value)
			}
			if wp.Index != 17 {
				t.Errorf("WorkerPanic.Index = %d, want 17", wp.Index)
			}
			if !strings.Contains(string(wp.Stack), "TestMapPanicPropagates") {
				t.Errorf("WorkerPanic.Stack does not contain the panicking frame:\n%s", wp.Stack)
			}
			if wp.Unwrap() != "boom" {
				t.Errorf("WorkerPanic.Unwrap() = %v, want \"boom\"", wp.Unwrap())
			}
			if s := wp.String(); !strings.Contains(s, "boom") || !strings.Contains(s, "worker stack") {
				t.Errorf("WorkerPanic.String() missing value or stack: %q", s)
			}
		}()
		Map(4, 100, func(i int) {
			if i == 17 {
				panic("boom")
			}
		})
		t.Error("workers=4: Map returned without panicking")
	}()
}

func TestMapWithStatePerWorker(t *testing.T) {
	// Each worker must receive its own state value, created exactly once,
	// and no state may be observed by two goroutines (checked under -race
	// by the unsynchronised counter increments).
	type state struct{ count int }
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 500
		var created atomic.Int32
		var mu sync.Mutex
		states := map[*state]bool{}
		MapWith(workers, n, func() *state {
			created.Add(1)
			s := &state{}
			mu.Lock()
			states[s] = true
			mu.Unlock()
			return s
		}, func(s *state, i int) {
			s.count++ // worker-private: needs no synchronisation
		})
		if int(created.Load()) > Workers(workers) {
			t.Errorf("workers=%d: %d states created, want <= %d",
				workers, created.Load(), Workers(workers))
		}
		total := 0
		for s := range states {
			total += s.count
		}
		if total != n {
			t.Errorf("workers=%d: state counts sum to %d, want %d", workers, total, n)
		}
	}
}

func TestMapWithRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		const n = 777
		counts := make([]int32, n)
		MapWith(workers, n, func() int { return 0 }, func(_ int, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapWithNewStatePanic(t *testing.T) {
	defer func() {
		r := recover()
		wp, ok := r.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want WorkerPanic", r, r)
		}
		if wp.Value != "no state" {
			t.Errorf("WorkerPanic.Value = %v, want \"no state\"", wp.Value)
		}
		if wp.Index != -1 {
			t.Errorf("WorkerPanic.Index = %d, want -1 for a newState panic", wp.Index)
		}
	}()
	MapWith(4, 100, func() int { panic("no state") }, func(int, int) {})
	t.Error("MapWith returned without panicking")
}
