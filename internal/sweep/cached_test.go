package sweep

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"oovec/internal/metrics"
	"oovec/internal/ooosim"
	"oovec/internal/simcache"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

func cachedTestTrace(t *testing.T) (tr *trace.Trace, key string) {
	t.Helper()
	p, ok := tgen.PresetByName("swm256")
	if !ok {
		t.Fatal("missing preset")
	}
	p.Insns = 1500
	return tgen.Generate(p), simcache.PresetKey(p)
}

// TestGridCachedMatchesFresh: a cold cached grid must produce exactly the
// points of the uncached grids — caching changes cost, never values.
func TestGridCachedMatchesFresh(t *testing.T) {
	tr, key := cachedTestTrace(t)
	cache := simcache.New[*metrics.RunStats](256)
	o := Opts{Workers: 2, Cache: cache, TraceKey: key}

	base := ooosim.DefaultConfig()
	regs := []int{12, 16}
	lats := []int64{1, 20}

	gotRef, err := RefGridOpts(tr, lats, o)
	if err != nil {
		t.Fatal(err)
	}
	if want := RefGrid(tr, lats); !reflect.DeepEqual(gotRef, want) {
		t.Errorf("cached REF grid differs from fresh:\ngot  %+v\nwant %+v", gotRef, want)
	}
	gotOOO, err := OOOGridOpts(tr, base, regs, lats, o)
	if err != nil {
		t.Fatal(err)
	}
	if want := OOOGrid(tr, base, regs, lats); !reflect.DeepEqual(gotOOO, want) {
		t.Errorf("cached OOO grid differs from fresh:\ngot  %+v\nwant %+v", gotOOO, want)
	}
}

// TestGridWarmRunsZeroSims: repeating an identical grid against the same
// cache must execute zero new simulations and return identical points.
func TestGridWarmRunsZeroSims(t *testing.T) {
	tr, key := cachedTestTrace(t)
	cache := simcache.New[*metrics.RunStats](256)
	var sims atomic.Int64
	o := Opts{Workers: 2, Cache: cache, TraceKey: key, OnSim: func() { sims.Add(1) }}

	base := ooosim.DefaultConfig()
	regs := []int{12, 16}
	lats := []int64{1, 20}

	cold, err := OOOGridOpts(tr, base, regs, lats, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != int64(len(cold)) {
		t.Fatalf("cold grid ran %d sims, want %d", got, len(cold))
	}
	warm, err := OOOGridOpts(tr, base, regs, lats, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != int64(len(cold)) {
		t.Errorf("warm grid ran %d new sims, want 0", got-int64(len(cold)))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("warm grid points differ from cold grid points")
	}
}

// TestGridOverlapSimulatesDelta: a superset grid over a warm cache only
// simulates the configurations it has never seen.
func TestGridOverlapSimulatesDelta(t *testing.T) {
	tr, key := cachedTestTrace(t)
	cache := simcache.New[*metrics.RunStats](256)
	var sims atomic.Int64
	o := Opts{Workers: 1, Cache: cache, TraceKey: key, OnSim: func() { sims.Add(1) }}

	base := ooosim.DefaultConfig()
	lats := []int64{1, 20}
	if _, err := OOOGridOpts(tr, base, []int{12}, lats, o); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 2 {
		t.Fatalf("first grid ran %d sims, want 2", got)
	}
	// Superset: {12,16} × {1,20}; only the two 16-register points are new.
	if _, err := OOOGridOpts(tr, base, []int{12, 16}, lats, o); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 4 {
		t.Errorf("superset grid ran %d total sims, want 4 (only the delta simulates)", got)
	}
}

// TestGridSharesSimKeys: a grid point and a standalone run of the same
// (configuration, trace) must land on one cache entry — the scheme that
// lets /v1/sim warm /v1/sweep and vice versa.
func TestGridSharesSimKeys(t *testing.T) {
	tr, key := cachedTestTrace(t)
	cache := simcache.New[*metrics.RunStats](256)
	var sims atomic.Int64
	o := Opts{Workers: 1, Cache: cache, TraceKey: key, OnSim: func() { sims.Add(1) }}

	base := ooosim.DefaultConfig()
	cfg := base
	cfg.PhysVRegs = 12
	cfg.MemLatency = 20
	// Pre-fill the cache the way a /v1/sim request would.
	cache.Do(simcache.ResultKey(simcache.OOOConfigKey(cfg), key), func() *metrics.RunStats {
		sims.Add(1)
		return ooosim.Run(tr, cfg).Stats
	})

	pts, err := OOOGridOpts(tr, base, []int{12}, []int64{1, 20}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if got := sims.Load(); got != 2 {
		t.Errorf("%d sims total, want 2 (the lat=20 point must reuse the single-run entry)", got)
	}
}

// TestGridCancellation: a cancelled context stops the grid between points
// and surfaces as an error.
func TestGridCancellation(t *testing.T) {
	tr, key := cachedTestTrace(t)
	cache := simcache.New[*metrics.RunStats](256)
	ctx, cancel := context.WithCancel(context.Background())
	var sims atomic.Int64
	o := Opts{
		Workers: 1, Cache: cache, TraceKey: key, Ctx: ctx,
		OnSim: func() {
			if sims.Add(1) == 1 {
				cancel()
			}
		},
	}
	base := ooosim.DefaultConfig()
	pts, err := OOOGridOpts(tr, base, []int{12, 16}, []int64{1, 20}, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pts != nil {
		t.Error("cancelled grid returned points; they must be discarded")
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("%d sims ran after cancellation during the first, want 1", got)
	}
}

// TestGridCacheWithoutTraceKeyPanics: the collision-prone misuse must fail
// loudly, not corrupt results.
func TestGridCacheWithoutTraceKeyPanics(t *testing.T) {
	tr, _ := cachedTestTrace(t)
	defer func() {
		if recover() == nil {
			t.Error("Opts.Cache without TraceKey did not panic")
		}
	}()
	RefGridOpts(tr, []int64{1}, Opts{Cache: simcache.New[*metrics.RunStats](8)})
}
