package sweep

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"oovec/internal/isa"
	"oovec/internal/ooosim"
	"oovec/internal/trace"
)

func kernel() *trace.Trace {
	b := trace.NewBuilder("k")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 20; i++ {
		b.VLoad(isa.V(i%8), uint64(0x10000+i*0x1000))
		b.Vector(isa.OpVAdd, isa.V((i+1)%8), isa.V(i%8), isa.V((i+2)%8))
		b.VStore(isa.V((i+1)%8), uint64(0x200000+i*0x1000))
	}
	return b.Build()
}

func TestRefGridDimensionsAndMonotonicity(t *testing.T) {
	pts := RefGrid(kernel(), []int64{1, 50, 100})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Machine != "REF" || p.Program != "k" {
			t.Errorf("point %d metadata: %+v", i, p)
		}
		if i > 0 && p.Cycles < pts[i-1].Cycles {
			t.Errorf("REF cycles decreased with latency")
		}
	}
}

func TestOOOGridCrossProduct(t *testing.T) {
	pts := OOOGrid(kernel(), ooosim.DefaultConfig(), []int{9, 16}, []int64{1, 50})
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	seen := map[[2]int64]bool{}
	for _, p := range pts {
		seen[[2]int64{int64(p.VRegs), p.Latency}] = true
		if p.QueueSlots != 16 || p.Commit != "early" || p.Elim != "none" {
			t.Errorf("resolved config wrong: %+v", p)
		}
	}
	if len(seen) != 4 {
		t.Error("grid points not distinct")
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	pts := OOOGrid(kernel(), ooosim.DefaultConfig(), []int{16}, []int64{50})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want header + 1", len(rows))
	}
	if rows[0][0] != "program" || len(rows[0]) != 12 {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "k" || rows[1][1] != "OOOVA" {
		t.Errorf("record = %v", rows[1])
	}
}

func TestCSVDeterministic(t *testing.T) {
	tr := kernel()
	var a, b strings.Builder
	if err := WriteCSV(&a, OOOGrid(tr, ooosim.DefaultConfig(), []int{16}, []int64{50})); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, OOOGrid(tr, ooosim.DefaultConfig(), []int{16}, []int64{50})); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("CSV output nondeterministic")
	}
}
