// Package sweep runs parameter grids over the two simulators and exports
// the measurements as CSV — the raw-data complement to the paper-shaped
// tables of package experiments, intended for downstream plotting.
//
// Grid points are independent simulations; the *Workers variants fan them
// across a worker pool (package engine) while keeping the CSV row order —
// and therefore the output bytes — identical to a serial run. Each pool
// worker drives all its grid points through one pooled, resettable machine
// (ooosim.Machine / refsim.Machine), so an N-point grid constructs machine
// state once per worker and shape instead of once per point.
package sweep

import (
	"encoding/csv"
	"fmt"
	"io"

	"oovec/internal/engine"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/trace"
)

// Point is one measurement of one configuration on one program.
type Point struct {
	Program     string
	Machine     string // "REF" or "OOOVA"
	Latency     int64
	VRegs       int // 0 for REF
	QueueSlots  int // 0 for REF
	Commit      string
	Elim        string
	Cycles      int64
	MemRequests int64
	PortIdlePct float64
	Mispredicts int64
	Eliminated  int64
}

// RefGrid runs the reference machine across memory latencies, serially.
func RefGrid(t *trace.Trace, latencies []int64) []Point {
	return RefGridWorkers(t, latencies, 1)
}

// RefGridWorkers is RefGrid fanned across `workers` goroutines (<= 0 picks
// one per core), each reusing one reference machine for all its points.
// The returned points are in the same order as RefGrid's.
func RefGridWorkers(t *trace.Trace, latencies []int64, workers int) []Point {
	pts := make([]Point, len(latencies))
	newState := func() *refsim.Machine { return refsim.NewMachine(refsim.DefaultConfig()) }
	engine.MapWith(workers, len(latencies), newState, func(m *refsim.Machine, i int) {
		cfg := refsim.DefaultConfig()
		cfg.MemLatency = latencies[i]
		m.Reset(cfg)
		st := m.Run(t)
		pts[i] = Point{
			Program: t.Name, Machine: "REF", Latency: latencies[i],
			Cycles: st.Cycles, MemRequests: st.MemRequests,
			PortIdlePct: st.MemPortIdlePct(),
		}
	})
	return pts
}

// OOOGrid runs the OOOVA over the cross product of register counts and
// latencies, with all other parameters taken from base, serially.
func OOOGrid(t *trace.Trace, base ooosim.Config, vregs []int, latencies []int64) []Point {
	return OOOGridWorkers(t, base, vregs, latencies, 1)
}

// OOOGridWorkers is OOOGrid fanned across `workers` goroutines (<= 0 picks
// one per core), each reusing one pooled OOOVA machine (register-count
// changes revive the matching shape from the machine's shape cache). The
// returned points are in the same order as OOOGrid's.
func OOOGridWorkers(t *trace.Trace, base ooosim.Config, vregs []int, latencies []int64, workers int) []Point {
	nl := len(latencies)
	pts := make([]Point, len(vregs)*nl)
	newState := func() *ooosim.Machine { return ooosim.NewMachine(base) }
	engine.MapWith(workers, len(pts), newState, func(m *ooosim.Machine, k int) {
		regs, lat := vregs[k/nl], latencies[k%nl]
		cfg := base
		cfg.PhysVRegs = regs
		cfg.MemLatency = lat
		m.Reset(cfg)
		st := m.Run(t).Stats
		// Report the exact parameters the simulator resolved, so CSV rows
		// cannot drift from what actually ran.
		resolved := cfg.WithDefaults()
		pts[k] = Point{
			Program: t.Name, Machine: "OOOVA", Latency: lat,
			VRegs: regs, QueueSlots: resolved.QueueSlots,
			Commit: resolved.Commit.String(), Elim: resolved.LoadElim.String(),
			Cycles: st.Cycles, MemRequests: st.MemRequests,
			PortIdlePct: st.MemPortIdlePct(),
			Mispredicts: st.Mispredicts, Eliminated: st.EliminatedLoads,
		}
	})
	return pts
}

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"program", "machine", "latency", "vregs", "queue_slots", "commit",
	"elim", "cycles", "mem_requests", "port_idle_pct", "mispredicts",
	"eliminated_loads",
}

// WriteCSV writes the points with a header row.
func WriteCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			p.Program, p.Machine,
			fmt.Sprint(p.Latency), fmt.Sprint(p.VRegs), fmt.Sprint(p.QueueSlots),
			p.Commit, p.Elim,
			fmt.Sprint(p.Cycles), fmt.Sprint(p.MemRequests),
			fmt.Sprintf("%.2f", p.PortIdlePct),
			fmt.Sprint(p.Mispredicts), fmt.Sprint(p.Eliminated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
