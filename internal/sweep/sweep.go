// Package sweep runs parameter grids over the two simulators and exports
// the measurements as CSV — the raw-data complement to the paper-shaped
// tables of package experiments, intended for downstream plotting.
//
// Grid points are independent simulations; the *Workers variants fan them
// across a worker pool (package engine) while keeping the CSV row order —
// and therefore the output bytes — identical to a serial run. Each pool
// worker drives all its grid points through one pooled, resettable machine
// (ooosim.Machine / refsim.Machine), so an N-point grid constructs machine
// state once per worker and shape instead of once per point.
//
// The *Opts variants add the two production concerns of a long-lived
// design-space-exploration service: per-point result caching (every grid
// point is content-addressed by the same simcache.ResultKey scheme the
// /v1/sim endpoint uses, so a repeated or overlapping grid re-simulates
// only the points never seen before) and cooperative cancellation between
// points (a dropped client stops burning workers mid-grid). Grid points are
// assembled from cached measurements deterministically, so a warm grid is
// byte-identical to a cold one.
package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"oovec/internal/engine"
	"oovec/internal/metrics"
	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/simcache"
	"oovec/internal/span"
	"oovec/internal/trace"
)

// Point is one measurement of one configuration on one program.
type Point struct {
	Program     string
	Machine     string // "REF" or "OOOVA"
	Latency     int64
	VRegs       int // 0 for REF
	QueueSlots  int // 0 for REF
	Commit      string
	Elim        string
	Cycles      int64
	MemRequests int64
	PortIdlePct float64
	Mispredicts int64
	Eliminated  int64
}

// ResultCache is the cache surface a grid needs: the singleflight Do.
// Both *simcache.Cache[*metrics.RunStats] (memory-only) and
// *simcache.Results (the two-tier cache over a durable backing store —
// what ovserve and ovsweep -cache-dir run) satisfy it; with the two-tier
// form, grid points persisted by an earlier process are disk hits that run
// no simulation.
type ResultCache interface {
	Do(key string, fill func() *metrics.RunStats) (*metrics.RunStats, bool)
}

// Opts configures a cached, cancellable grid run. The zero value runs the
// grid uncached and uncancellable, fanned one worker per core (Workers 0).
type Opts struct {
	// Workers fans grid points across the engine pool (<= 0 picks one per
	// core, 1 runs serially).
	Workers int
	// Cache, when non-nil, serves repeated (configuration, trace) points
	// from the content-addressed result cache instead of re-simulating.
	// Entries are keyed by simcache.ResultKey over the resolved
	// configuration and TraceKey — the exact scheme the ovserve /v1/sim
	// endpoint uses, so single runs and sweep grid points share entries.
	Cache ResultCache
	// TraceKey is the content key of the trace the grid runs on
	// (simcache.PresetKey for generated benchmarks, "ovtr:"+trace.Digest
	// for arbitrary traces). Required when Cache is set: without it,
	// different traces would collide on configuration-only keys.
	TraceKey string
	// Ctx, when non-nil, cancels the grid between points; the grid then
	// returns ctx's error and the partial points must be discarded.
	Ctx context.Context
	// OnSim, when non-nil, is called once per simulation actually executed
	// — cache hits do not fire it. Calls happen on worker goroutines, so
	// OnSim must be safe for concurrent use when Workers != 1.
	OnSim func()
}

// validate catches the cache-without-key programmer error before any point
// could poison the cache with trace-independent keys.
func (o Opts) validate() {
	if o.Cache != nil && o.TraceKey == "" {
		panic("sweep: Opts.Cache requires Opts.TraceKey (distinct traces would collide)")
	}
}

// startPoint opens a per-grid-point span when Opts.Ctx carries a parent
// span (an instrumented /v1/sweep request). Returns nil — and every later
// span call a no-op — for the CLI and untraced paths. Points run on worker
// goroutines; distinct spans of one trace are safe to record concurrently.
func (o Opts) startPoint(machine, key string) *span.Span {
	if o.Ctx == nil {
		return nil
	}
	sp, _ := span.Start(o.Ctx, "sweep.point")
	sp.SetAttr("machine", machine)
	if key != "" {
		sp.SetAttr("key", key)
	}
	return sp
}

// endPoint closes a grid-point span, recording whether the measurement was
// a cache hit or an actual simulation.
func endPoint(sp *span.Span, cached bool) {
	sp.SetAttr("cached", strconv.FormatBool(cached))
	sp.End()
}

// runRef produces one REF measurement, through the cache when configured.
func (o Opts) runRef(m *refsim.Machine, t *trace.Trace, cfg refsim.Config) *metrics.RunStats {
	run := func() *metrics.RunStats {
		if o.OnSim != nil {
			o.OnSim()
		}
		m.Reset(cfg)
		return m.Run(t)
	}
	if o.Cache == nil {
		sp := o.startPoint("REF", "")
		st := run()
		endPoint(sp, false)
		return st
	}
	key := simcache.ResultKey(simcache.RefConfigKey(cfg), o.TraceKey)
	sp := o.startPoint("REF", key)
	st, cached := o.Cache.Do(key, run)
	endPoint(sp, cached)
	return st
}

// runOOO produces one OOOVA measurement, through the cache when configured.
func (o Opts) runOOO(m *ooosim.Machine, t *trace.Trace, cfg ooosim.Config) *metrics.RunStats {
	run := func() *metrics.RunStats {
		if o.OnSim != nil {
			o.OnSim()
		}
		m.Reset(cfg)
		return m.Run(t).Stats
	}
	if o.Cache == nil {
		sp := o.startPoint("OOOVA", "")
		st := run()
		endPoint(sp, false)
		return st
	}
	key := simcache.ResultKey(simcache.OOOConfigKey(cfg), o.TraceKey)
	sp := o.startPoint("OOOVA", key)
	st, cached := o.Cache.Do(key, run)
	endPoint(sp, cached)
	return st
}

// RefGrid runs the reference machine across memory latencies, serially.
func RefGrid(t *trace.Trace, latencies []int64) []Point {
	return RefGridWorkers(t, latencies, 1)
}

// RefGridWorkers is RefGrid fanned across `workers` goroutines (<= 0 picks
// one per core), each reusing one reference machine for all its points.
// The returned points are in the same order as RefGrid's.
func RefGridWorkers(t *trace.Trace, latencies []int64, workers int) []Point {
	pts, _ := RefGridOpts(t, latencies, Opts{Workers: workers})
	return pts
}

// RefGridOpts is RefGrid under Opts: fanned across the worker pool, served
// from the result cache where configured, cancellable between points. The
// points come back in RefGrid's order; on cancellation it returns the
// context's error and the points must be discarded.
func RefGridOpts(t *trace.Trace, latencies []int64, o Opts) ([]Point, error) {
	o.validate()
	pts := make([]Point, len(latencies))
	newState := func() *refsim.Machine { return refsim.NewMachine(refsim.DefaultConfig()) }
	err := engine.MapWithCtx(o.Ctx, o.Workers, len(latencies), newState, func(m *refsim.Machine, i int) {
		cfg := refsim.DefaultConfig()
		cfg.MemLatency = latencies[i]
		st := o.runRef(m, t, cfg)
		pts[i] = Point{
			Program: t.Name, Machine: "REF", Latency: latencies[i],
			Cycles: st.Cycles, MemRequests: st.MemRequests,
			PortIdlePct: st.MemPortIdlePct(),
		}
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// OOOGrid runs the OOOVA over the cross product of register counts and
// latencies, with all other parameters taken from base, serially.
func OOOGrid(t *trace.Trace, base ooosim.Config, vregs []int, latencies []int64) []Point {
	return OOOGridWorkers(t, base, vregs, latencies, 1)
}

// OOOGridWorkers is OOOGrid fanned across `workers` goroutines (<= 0 picks
// one per core), each reusing one pooled OOOVA machine (register-count
// changes revive the matching shape from the machine's shape cache). The
// returned points are in the same order as OOOGrid's.
func OOOGridWorkers(t *trace.Trace, base ooosim.Config, vregs []int, latencies []int64, workers int) []Point {
	pts, _ := OOOGridOpts(t, base, vregs, latencies, Opts{Workers: workers})
	return pts
}

// OOOGridOpts is OOOGrid under Opts: fanned across the worker pool, served
// from the result cache where configured, cancellable between points. The
// points come back in OOOGrid's order; on cancellation it returns the
// context's error and the points must be discarded.
func OOOGridOpts(t *trace.Trace, base ooosim.Config, vregs []int, latencies []int64, o Opts) ([]Point, error) {
	o.validate()
	nl := len(latencies)
	pts := make([]Point, len(vregs)*nl)
	newState := func() *ooosim.Machine { return ooosim.NewMachine(base) }
	err := engine.MapWithCtx(o.Ctx, o.Workers, len(pts), newState, func(m *ooosim.Machine, k int) {
		regs, lat := vregs[k/nl], latencies[k%nl]
		cfg := base
		cfg.PhysVRegs = regs
		cfg.MemLatency = lat
		st := o.runOOO(m, t, cfg)
		// Report the exact parameters the simulator resolved, so CSV rows
		// cannot drift from what actually ran.
		resolved := cfg.WithDefaults()
		pts[k] = Point{
			Program: t.Name, Machine: "OOOVA", Latency: lat,
			VRegs: regs, QueueSlots: resolved.QueueSlots,
			Commit: resolved.Commit.String(), Elim: resolved.LoadElim.String(),
			Cycles: st.Cycles, MemRequests: st.MemRequests,
			PortIdlePct: st.MemPortIdlePct(),
			Mispredicts: st.Mispredicts, Eliminated: st.EliminatedLoads,
		}
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"program", "machine", "latency", "vregs", "queue_slots", "commit",
	"elim", "cycles", "mem_requests", "port_idle_pct", "mispredicts",
	"eliminated_loads",
}

// WriteCSV writes the points with a header row.
func WriteCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			p.Program, p.Machine,
			fmt.Sprint(p.Latency), fmt.Sprint(p.VRegs), fmt.Sprint(p.QueueSlots),
			p.Commit, p.Elim,
			fmt.Sprint(p.Cycles), fmt.Sprint(p.MemRequests),
			fmt.Sprintf("%.2f", p.PortIdlePct),
			fmt.Sprint(p.Mispredicts), fmt.Sprint(p.Eliminated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
