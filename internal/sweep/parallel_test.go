package sweep

import (
	"bytes"
	"testing"

	"oovec/internal/ooosim"
	"oovec/internal/tgen"
)

// TestGridWorkersDeterministic asserts the parallel grids produce
// byte-identical CSV output to the serial ones for any worker count.
func TestGridWorkersDeterministic(t *testing.T) {
	p, _ := tgen.PresetByName("swm256")
	p.Insns = 1000
	tr := tgen.Generate(p)

	lats := []int64{1, 20, 50, 100}
	regs := []int{9, 16, 32}
	base := ooosim.DefaultConfig()

	render := func(pts []Point) string {
		var b bytes.Buffer
		if err := WriteCSV(&b, pts); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return b.String()
	}

	wantRef := render(RefGrid(tr, lats))
	wantOOO := render(OOOGrid(tr, base, regs, lats))
	for _, workers := range []int{2, 4, 0} {
		if got := render(RefGridWorkers(tr, lats, workers)); got != wantRef {
			t.Errorf("RefGridWorkers(%d) CSV differs from serial", workers)
		}
		if got := render(OOOGridWorkers(tr, base, regs, lats, workers)); got != wantOOO {
			t.Errorf("OOOGridWorkers(%d) CSV differs from serial", workers)
		}
	}
}

// TestOOOGridReportsResolvedConfig asserts CSV rows carry the parameters
// the simulator actually resolved (a zero QueueSlots must surface as the
// paper default, not 0).
func TestOOOGridReportsResolvedConfig(t *testing.T) {
	p, _ := tgen.PresetByName("trfd")
	p.Insns = 500
	tr := tgen.Generate(p)

	base := ooosim.Config{} // all zero: every field takes the paper default
	pts := OOOGrid(tr, base, []int{16}, []int64{50})
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	want := ooosim.DefaultConfig().QueueSlots
	if pts[0].QueueSlots != want {
		t.Errorf("QueueSlots = %d, want resolved default %d", pts[0].QueueSlots, want)
	}
	if pts[0].Commit != "early" {
		t.Errorf("Commit = %q, want %q", pts[0].Commit, "early")
	}
}
