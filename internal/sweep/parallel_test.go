package sweep

import (
	"bytes"
	"testing"

	"oovec/internal/ooosim"
	"oovec/internal/refsim"
	"oovec/internal/tgen"
)

// TestGridWorkersDeterministic asserts the parallel grids produce
// byte-identical CSV output to the serial ones for any worker count.
func TestGridWorkersDeterministic(t *testing.T) {
	p, _ := tgen.PresetByName("swm256")
	p.Insns = 1000
	tr := tgen.Generate(p)

	lats := []int64{1, 20, 50, 100}
	regs := []int{9, 16, 32}
	base := ooosim.DefaultConfig()

	render := func(pts []Point) string {
		var b bytes.Buffer
		if err := WriteCSV(&b, pts); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return b.String()
	}

	wantRef := render(RefGrid(tr, lats))
	wantOOO := render(OOOGrid(tr, base, regs, lats))
	for _, workers := range []int{2, 4, 0} {
		if got := render(RefGridWorkers(tr, lats, workers)); got != wantRef {
			t.Errorf("RefGridWorkers(%d) CSV differs from serial", workers)
		}
		if got := render(OOOGridWorkers(tr, base, regs, lats, workers)); got != wantOOO {
			t.Errorf("OOOGridWorkers(%d) CSV differs from serial", workers)
		}
	}
}

// TestGridPooledMatchesFresh rebuilds both grids with fresh one-shot
// simulator runs and asserts the pooled-machine grids produce byte-identical
// CSV — the correctness contract of threading reusable machines through the
// sweep layer.
func TestGridPooledMatchesFresh(t *testing.T) {
	p, _ := tgen.PresetByName("bdna")
	p.Insns = 1000
	tr := tgen.Generate(p)

	lats := []int64{1, 50, 100}
	regs := []int{9, 16, 64}
	base := ooosim.DefaultConfig()

	render := func(pts []Point) string {
		var b bytes.Buffer
		if err := WriteCSV(&b, pts); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return b.String()
	}

	// Fresh reference grid, constructed without any machine reuse.
	freshRef := make([]Point, len(lats))
	for i, lat := range lats {
		cfg := refsim.DefaultConfig()
		cfg.MemLatency = lat
		st := refsim.Run(tr, cfg)
		freshRef[i] = Point{
			Program: tr.Name, Machine: "REF", Latency: lat,
			Cycles: st.Cycles, MemRequests: st.MemRequests,
			PortIdlePct: st.MemPortIdlePct(),
		}
	}
	freshOOO := make([]Point, 0, len(regs)*len(lats))
	for _, r := range regs {
		for _, lat := range lats {
			cfg := base
			cfg.PhysVRegs = r
			cfg.MemLatency = lat
			st := ooosim.Run(tr, cfg).Stats
			resolved := cfg.WithDefaults()
			freshOOO = append(freshOOO, Point{
				Program: tr.Name, Machine: "OOOVA", Latency: lat,
				VRegs: r, QueueSlots: resolved.QueueSlots,
				Commit: resolved.Commit.String(), Elim: resolved.LoadElim.String(),
				Cycles: st.Cycles, MemRequests: st.MemRequests,
				PortIdlePct: st.MemPortIdlePct(),
				Mispredicts: st.Mispredicts, Eliminated: st.EliminatedLoads,
			})
		}
	}

	for _, workers := range []int{1, 2, 0} {
		if got := render(RefGridWorkers(tr, lats, workers)); got != render(freshRef) {
			t.Errorf("RefGridWorkers(%d): pooled CSV differs from fresh runs", workers)
		}
		if got := render(OOOGridWorkers(tr, base, regs, lats, workers)); got != render(freshOOO) {
			t.Errorf("OOOGridWorkers(%d): pooled CSV differs from fresh runs", workers)
		}
	}
}

// TestOOOGridReportsResolvedConfig asserts CSV rows carry the parameters
// the simulator actually resolved (a zero QueueSlots must surface as the
// paper default, not 0).
func TestOOOGridReportsResolvedConfig(t *testing.T) {
	p, _ := tgen.PresetByName("trfd")
	p.Insns = 500
	tr := tgen.Generate(p)

	base := ooosim.Config{} // all zero: every field takes the paper default
	pts := OOOGrid(tr, base, []int{16}, []int64{50})
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	want := ooosim.DefaultConfig().QueueSlots
	if pts[0].QueueSlots != want {
		t.Errorf("QueueSlots = %d, want resolved default %d", pts[0].QueueSlots, want)
	}
	if pts[0].Commit != "early" {
		t.Errorf("Commit = %q, want %q", pts[0].Commit, "early")
	}
}
