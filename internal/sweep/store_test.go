package sweep

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"oovec/internal/ooosim"
	"oovec/internal/simcache"
	"oovec/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInterruptedSweepWarmsNextRun is the ovsweep SIGINT contract: a grid
// cancelled partway through still persists its completed points (the CLI
// closes the store before exiting), so re-running the same sweep in a
// fresh process simulates only what the interrupt cut off.
func TestInterruptedSweepWarmsNextRun(t *testing.T) {
	dir := t.TempDir()
	tr, key := cachedTestTrace(t)
	base := ooosim.DefaultConfig()
	regs := []int{12, 16}
	lats := []int64{1, 20}

	// First process: serial grid, SIGINT (context cancel) lands during the
	// second of four points — points 0 and 1 complete, 2 and 3 never run.
	st1 := openStore(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sims1 atomic.Int64
	o1 := Opts{
		Workers:  1,
		Cache:    simcache.NewResults(256, st1),
		TraceKey: key,
		Ctx:      ctx,
		OnSim: func() {
			if sims1.Add(1) == 2 {
				cancel()
			}
		},
	}
	pts, err := OOOGridOpts(tr, base, regs, lats, o1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pts != nil {
		t.Fatal("interrupted grid returned points")
	}
	completed := sims1.Load()
	if completed != 2 {
		t.Fatalf("fixture completed %d points before the interrupt, want 2", completed)
	}
	// The exit path: flush completed rows' store writes before exiting.
	st1.Close()

	// Second process: same sweep, fresh memory tier, same -cache-dir. Only
	// the interrupted remainder simulates.
	st2 := openStore(t, dir)
	defer st2.Close()
	var sims2 atomic.Int64
	o2 := Opts{
		Workers:  1,
		Cache:    simcache.NewResults(256, st2),
		TraceKey: key,
		OnSim:    func() { sims2.Add(1) },
	}
	warm, err := OOOGridOpts(tr, base, regs, lats, o2)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(regs) * len(lats))
	if got := sims2.Load(); got != total-completed {
		t.Errorf("re-run simulated %d points, want %d (the %d completed before SIGINT must be disk hits)",
			got, total-completed, completed)
	}
	if hits := st2.Stats().Hits; hits != completed {
		t.Errorf("disk store served %d hits, want %d", hits, completed)
	}
	// And the warm grid is exactly what an uncached serial run produces.
	if want := OOOGrid(tr, base, regs, lats); !reflect.DeepEqual(warm, want) {
		t.Error("disk-warmed grid differs from a fresh serial grid")
	}
}

// TestGridDiskWarmAcrossProcesses: a completed grid re-run through a fresh
// process (fresh memory tier, same store directory) runs zero simulations
// and produces identical points.
func TestGridDiskWarmAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	tr, key := cachedTestTrace(t)
	lats := []int64{1, 20}

	st1 := openStore(t, dir)
	var sims1 atomic.Int64
	cold, err := RefGridOpts(tr, lats, Opts{
		Workers: 2, Cache: simcache.NewResults(256, st1), TraceKey: key,
		OnSim: func() { sims1.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sims1.Load() != int64(len(lats)) {
		t.Fatalf("cold grid ran %d sims, want %d", sims1.Load(), len(lats))
	}
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	var sims2 atomic.Int64
	warm, err := RefGridOpts(tr, lats, Opts{
		Workers: 2, Cache: simcache.NewResults(256, st2), TraceKey: key,
		OnSim: func() { sims2.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sims2.Load(); got != 0 {
		t.Errorf("disk-warm grid ran %d sims, want 0", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("disk-warm grid points differ from the cold run")
	}
}
