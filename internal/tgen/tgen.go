// Package tgen generates synthetic benchmark traces that statistically
// mirror the ten Perfect Club / Specfp92 programs of the paper's evaluation
// (Table 2 and Table 3).
//
// The paper's traces came from real executables instrumented with the Dixie
// tool on a Convex C3480; we do not have those binaries or the machine, so
// each benchmark is replaced by a parameterised loop-nest generator tuned to
// the program's published statistics: scalar/vector instruction mix,
// percentage of vectorization, average vector length, spill-traffic
// fraction, and the structural features the paper calls out by name —
// trfd/dyfesm's inter-iteration store→load dependence (§5), bdna's enormous
// basic blocks and 69% spill traffic (§6, Table 3), nasa7's indexed
// accesses. Every architectural experiment in the paper measures responses
// to these statistics, so preserving them preserves the experiments'
// behaviour. Dynamic instruction counts are scaled down ~2000× (ratios
// preserved) to keep simulation laptop-fast.
//
// Generation is deterministic: the RNG is seeded from the preset name.
package tgen

import (
	"hash/fnv"
	"math/rand"

	"oovec/internal/isa"
	"oovec/internal/trace"
)

// Preset describes one synthetic benchmark. The paper-derived fields are
// documented against their Table 2 / Table 3 sources in presets.go.
type Preset struct {
	// Name and Suite as in Table 2.
	Name  string
	Suite string
	// PaperScalarM / PaperVectorM are Table 2's dynamic instruction counts
	// in millions (scalar and vector).
	PaperScalarM float64
	PaperVectorM float64
	// AvgVL is the target average vector length (Table 2 column 7).
	AvgVL int
	// SpillTrafficPct is the target percentage of memory element traffic
	// due to spill code (Table 3).
	SpillTrafficPct float64
	// ScalarSpillBias skews spill traffic toward scalar registers
	// (trfd/dyfesm; drives the SLE results of Figure 11).
	ScalarSpillBias float64
	// InterIterDep inserts a store→load dependence between consecutive
	// iterations of the main loop (trfd/dyfesm; §5's late-commit collapse).
	InterIterDep bool
	// HugeBasicBlocks generates bdna-style basic blocks with hundreds of
	// vector instructions and high register pressure.
	HugeBasicBlocks bool
	// GatherFrac is the fraction of vector loads that are indexed.
	GatherFrac float64
	// StridedFrac is the fraction of vector references with non-unit stride.
	StridedFrac float64
	// Insns is the target dynamic instruction count of the trace.
	Insns int
}

// ScalarVectorRatio returns the paper's scalar:vector instruction ratio.
func (p Preset) ScalarVectorRatio() float64 {
	if p.PaperVectorM == 0 {
		return 1
	}
	return p.PaperScalarM / p.PaperVectorM
}

// Generate builds the synthetic trace for the preset.
func Generate(p Preset) *trace.Trace {
	if p.Insns <= 0 {
		p.Insns = DefaultInsns
	}
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	g := &generator{
		p:     p,
		r:     rand.New(rand.NewSource(int64(h.Sum64()))),
		b:     trace.NewBuilder(p.Name),
		ratio: p.ScalarVectorRatio(),
	}
	g.run()
	tr := g.b.Build()
	tr.Suite = p.Suite
	return tr
}

// DefaultInsns is the default dynamic trace length.
const DefaultInsns = 40000

// Memory layout of the synthetic address space.
const (
	arrayBase  = uint64(0x0100_0000) // streamed array data
	arrayLimit = uint64(0x4000_0000)
	spillBase  = uint64(0x0090_0000) // compiler spill slots
	spillSlots = 64
	scalarBase = uint64(0x0080_0000) // scalar globals / spill area
	indexBase  = uint64(0x5000_0000) // gather/scatter index regions
)

type generator struct {
	p     Preset
	r     *rand.Rand
	b     *trace.Builder
	ratio float64

	// Running counters used by the feedback controllers that steer the
	// trace toward its statistical targets.
	scalarCount int64
	vectorCount int64
	memOps      int64 // element traffic
	spillOps    int64 // element traffic from spill code

	arrayCursor  uint64
	loopID       int
	nests        int
	curStride    int32
	scalarCursor int
}

// run emits loop nests until the instruction budget is exhausted.
func (g *generator) run() {
	for g.emitted() < g.p.Insns {
		switch {
		case g.p.HugeBasicBlocks:
			g.emitHugeBlockLoop()
		case g.p.InterIterDep && g.nests%2 == 0:
			// trfd/dyfesm interleave their recurrence loop with ordinary
			// vectorised nests.
			g.emitDepLoop()
		default:
			g.emitVectorLoop()
		}
		g.nests++
		// Scalar-dominated inter-loop section (setup, reductions, calls).
		g.emitScalarSection()
	}
}

func (g *generator) emitted() int {
	return int(g.scalarCount + g.vectorCount)
}

// balanceScalar emits scalar instructions until the running scalar:vector
// ratio reaches the target. Returns after at most max instructions per call
// to keep code interleaved rather than clumped.
func (g *generator) balanceScalar(max int) {
	for i := 0; i < max; i++ {
		if float64(g.scalarCount) >= g.ratio*float64(g.vectorCount) {
			return
		}
		g.emitScalarFiller()
	}
}

// emitScalarFiller emits one plausible scalar instruction, occasionally a
// scalar memory access or a scalar spill pair. Registers rotate so that a
// value is reused roughly eight instructions after it is defined — the
// instruction-level parallelism compiled scalar code actually exhibits —
// rather than forming one long serial chain.
func (g *generator) emitScalarFiller() {
	c := g.scalarCursor
	g.scalarCursor++
	dstA := isa.A(c % 8)
	s1A := isa.A((c + 3) % 8)
	s2A := isa.A((c + 5) % 8)
	dstS := isa.S(c % 8)
	s1S := isa.S((c + 3) % 8)
	s2S := isa.S((c + 5) % 8)

	roll := g.r.Float64()
	needSpill := g.spillFracBelowTarget()
	switch {
	case needSpill && g.r.Float64() < g.p.ScalarSpillBias:
		// Scalar spill store + reload pair (drives SLE, Figure 11).
		slot := scalarBase + uint64(g.r.Intn(128))*8
		g.b.ScalarSpillStore(s1S, slot)
		g.b.ScalarSpillLoad(dstS, slot)
		g.scalarCount += 2
		g.memOps += 2
		g.spillOps += 2
	case roll < 0.50:
		g.b.Scalar(isa.OpAAdd, dstA, s1A, s2A)
		g.scalarCount++
	case roll < 0.68:
		g.b.Scalar(isa.OpSAdd, dstS, s1S, s2S)
		g.scalarCount++
	case roll < 0.76:
		g.b.Scalar(isa.OpSMul, dstS, s1S, s2S)
		g.scalarCount++
	case roll < 0.82:
		g.b.ScalarLoad(isa.OpSLoad, dstS, scalarBase+uint64(g.r.Intn(512))*8)
		g.scalarCount++
		g.memOps++
	case roll < 0.88:
		g.b.ScalarStore(isa.OpSStore, s1S, scalarBase+uint64(4096+g.r.Intn(512))*8)
		g.scalarCount++
		g.memOps++
	case roll < 0.94:
		g.b.ScalarLoad(isa.OpALoad, dstA, scalarBase+uint64(1024+g.r.Intn(256))*8)
		g.scalarCount++
		g.memOps++
	default:
		g.b.Scalar(isa.OpAMove, dstA, s1A, isa.NoReg)
		g.scalarCount++
	}
}

// spillFracBelowTarget reports whether the running spill fraction of memory
// traffic is below the preset target.
func (g *generator) spillFracBelowTarget() bool {
	if g.p.SpillTrafficPct <= 0 || g.memOps == 0 {
		return false
	}
	return 100*float64(g.spillOps)/float64(g.memOps) < g.p.SpillTrafficPct
}

// pickVL samples a loop's vector length around the preset average.
func (g *generator) pickVL() int {
	avg := g.p.AvgVL
	if avg >= 120 {
		// Long-vector codes run at full machine length with a short tail.
		if g.r.Float64() < 0.9 {
			return isa.MaxVL
		}
		return 32 + g.r.Intn(96)
	}
	spread := avg / 2
	vl := avg - spread + g.r.Intn(2*spread+1)
	if vl < 4 {
		vl = 4
	}
	if vl > isa.MaxVL {
		vl = isa.MaxVL
	}
	return vl
}

// pickStride samples a memory stride.
func (g *generator) pickStride() int32 {
	if g.r.Float64() >= g.p.StridedFrac {
		return isa.ElemBytes
	}
	strides := []int32{16, 32, 64, 128, 1024, -8}
	return strides[g.r.Intn(len(strides))]
}

// nextArray reserves a fresh array region for a streaming access pattern.
func (g *generator) nextArray() uint64 {
	g.arrayCursor += 0x40000
	return arrayBase + g.arrayCursor%(arrayLimit-arrayBase)
}

// emitVectorLoop emits one vectorised loop nest.
func (g *generator) emitVectorLoop() {
	g.loopID++
	vl := g.pickVL()
	iters := 4 + g.r.Intn(12)
	nLoads := 1 + g.r.Intn(3)
	nOps := 2 + g.r.Intn(4)
	nStores := 1 + g.r.Intn(2)
	if g.ratio < 0.2 {
		// Highly vectorised programs (swm256): bigger loop bodies so the
		// mandatory loop-control scalars stay a small fraction.
		iters = 14 + g.r.Intn(10)
		nLoads = 2 + g.r.Intn(3)
		nOps = 6 + g.r.Intn(6)
		nStores = 1 + g.r.Intn(3)
	}
	stride := g.pickStride()
	loopPC := uint64(0x1000 + g.loopID*0x400)

	srcA, srcB, dst := g.nextArray(), g.nextArray(), g.nextArray()

	g.b.SetVL(vl, isa.A(0))
	g.scalarCount++
	if stride != g.curStride {
		g.b.SetVS(stride, isa.A(1))
		g.scalarCount++
		g.curStride = stride
	}

	row := uint64(0)
	var prevSpillSlot, prevScalarSlot uint64
	for it := 0; it < iters; it++ {
		g.b.SetPC(loopPC)
		vreg := 0
		take := func() isa.Reg { r := isa.V(vreg % 8); vreg++; return r }

		loaded := make([]isa.Reg, 0, 4)
		for l := 0; l < nLoads; l++ {
			d := take()
			base := srcA
			if l%2 == 1 {
				base = srcB
			}
			if g.r.Float64() < g.p.GatherFrac {
				g.b.Gather(d, isa.V((vreg+3)%8), indexBase+row)
			} else {
				g.b.VLoad(d, base+row)
			}
			loaded = append(loaded, d)
			g.vectorCount++
			g.memOps += int64(vl)
		}

		prev := loaded[0]
		var lastResult isa.Reg
		for c := 0; c < nOps; c++ {
			d := take()
			src2 := loaded[c%len(loaded)]
			op := g.pickVectorOp(c)
			if op == isa.OpVSMul || op == isa.OpVSAdd {
				g.b.Vector(op, d, prev, isa.S(g.r.Intn(8)))
			} else {
				g.b.Vector(op, d, prev, src2)
			}
			prev, lastResult = d, d
			g.vectorCount++
		}

		// Spill traffic (drives Table 3 / Figures 11-13): store a live value
		// to a compiler slot now, and reload the value spilled by the
		// *previous* iteration — compiled spill code reloads far from the
		// store, so the reload's memory disambiguation sees a long-settled
		// store.
		if g.spillFracBelowTarget() && g.r.Float64() < 0.8 {
			slot := spillBase + uint64((g.loopID*7+it)%spillSlots)*0x2000 + 0x1000
			g.b.SpillStore(lastResult, slot)
			g.vectorCount++
			g.memOps += int64(vl)
			g.spillOps += int64(vl)
			if prevSpillSlot != 0 {
				reload := take()
				g.b.SpillLoad(reload, prevSpillSlot)
				g.vectorCount++
				g.memOps += int64(vl)
				g.spillOps += int64(vl)
				d := take()
				g.b.Vector(isa.OpVAdd, d, reload, lastResult)
				g.vectorCount++
				lastResult = d
			}
			prevSpillSlot = slot
		}

		for s := 0; s < nStores; s++ {
			g.b.VStore(lastResult, dst+row+uint64(s)*0x8000)
			g.vectorCount++
			g.memOps += int64(vl)
		}

		// Loop-control scalar work and the back edge. Vectorised loop
		// bodies carry only their own control scalars (address updates and
		// scalar spills); the bulk of a program's scalar work lives in the
		// scalar phases between loop nests. Nearly fully vectorised
		// programs fold the address update into the loop branch.
		if g.ratio >= 0.15 {
			g.b.Scalar(isa.OpAAdd, isa.A(it%8), isa.A((it+3)%8), isa.A((it+5)%8))
			g.scalarCount++
		}
		if g.p.ScalarSpillBias > 0 && g.spillFracBelowTarget() {
			// trfd/dyfesm keep scalar spill traffic around their loop
			// iterations (the §6.3 "unrolling" limiter that SLE removes).
			slot := scalarBase + uint64((g.loopID*5+it)%96)*8
			g.b.ScalarSpillStore(isa.S(it%8), slot)
			g.scalarCount++
			g.memOps++
			g.spillOps++
			if prevScalarSlot != 0 {
				g.b.ScalarSpillLoad(isa.S((it+2)%8), prevScalarSlot)
				g.scalarCount++
				g.memOps++
				g.spillOps++
			}
			prevScalarSlot = slot
		}
		g.b.SetPC(loopPC + 0x3f0)
		g.b.Branch(loopPC, it != iters-1)
		g.scalarCount++

		row += uint64(vl) * uint64(abs32(stride))
	}
}

// emitDepLoop emits the trfd/dyfesm-style loop nest: a short loop-carried
// recurrence through memory — "a memory dependence between the last vector
// store of iteration i and the first vector load of iteration i+1 (both are
// to the same address)" (§5) — surrounded by independent streaming work.
// The out-of-order machine hides the independent work in the shadow of the
// recurrence; the in-order machine serialises everything, which is why
// these programs show the paper's highest OOOVA speedups — and why they
// collapse under late commit, when the recurrence store must wait for the
// head of the reorder buffer.
func (g *generator) emitDepLoop() {
	g.loopID++
	vl := g.pickVL()
	iters := 6 + g.r.Intn(8)
	loopPC := uint64(0x1000 + g.loopID*0x400)
	srcA, srcB, dst := g.nextArray(), g.nextArray(), g.nextArray()
	depSlot := spillBase + uint64(g.loopID%spillSlots)*0x2000

	g.b.SetVL(vl, isa.A(0))
	g.scalarCount++
	if g.curStride != isa.ElemBytes {
		g.b.SetVS(isa.ElemBytes, isa.A(1))
		g.scalarCount++
		g.curStride = isa.ElemBytes
	}

	row := uint64(0)
	var prevScalarSlot uint64
	for it := 0; it < iters; it++ {
		g.b.SetPC(loopPC)

		// The recurrence, exactly as §5 describes it: a producer, two
		// intervening register-only instructions, then the store back to
		// the slot the next iteration's first load reads. Under early
		// commit the store chains from the producer; under late commit it
		// waits at the head of the reorder buffer behind the intervening
		// instructions' completions — which is the whole cost of precise
		// traps on these programs. The loop carries no other memory
		// traffic, so the recurrence, not the address bus, sets its pace.
		g.b.VLoad(isa.V(0), depSlot)
		g.vectorCount++
		g.memOps += int64(vl)
		g.b.Vector(isa.OpVSAdd, isa.V(1), isa.V(0), isa.S(0)) // producer
		g.vectorCount++
		g.b.Vector(isa.OpVMul, isa.V(3), isa.V(1), isa.V(7)) // intervening
		g.vectorCount++
		g.b.Vector(isa.OpVAdd, isa.V(4), isa.V(3), isa.V(7)) // intervening
		g.vectorCount++
		g.b.VStore(isa.V(1), depSlot)
		g.vectorCount++
		g.memOps += int64(vl)
		_ = srcA
		_ = srcB
		_ = dst

		g.b.Scalar(isa.OpAAdd, isa.A(it%8), isa.A((it+3)%8), isa.A((it+5)%8))
		g.scalarCount++
		if g.p.ScalarSpillBias > 0 && g.spillFracBelowTarget() {
			slot := scalarBase + uint64((g.loopID*5+it)%96)*8
			g.b.ScalarSpillStore(isa.S(it%8), slot)
			g.scalarCount++
			g.memOps++
			g.spillOps++
			if prevScalarSlot != 0 {
				g.b.ScalarSpillLoad(isa.S((it+2)%8), prevScalarSlot)
				g.scalarCount++
				g.memOps++
				g.spillOps++
			}
			prevScalarSlot = slot
		}
		g.b.SetPC(loopPC + 0x3f0)
		g.b.Branch(loopPC, it != iters-1)
		g.scalarCount++

		row += uint64(vl) * isa.ElemBytes
	}
}

// pickVectorOp chooses a computation opcode with a realistic mix: adds
// dominate, multiplies common, divides rare.
func (g *generator) pickVectorOp(pos int) isa.Op {
	roll := g.r.Float64()
	switch {
	case roll < 0.45:
		return isa.OpVAdd
	case roll < 0.70:
		return isa.OpVMul
	case roll < 0.78:
		return isa.OpVSMul
	case roll < 0.86:
		return isa.OpVSAdd
	case roll < 0.92:
		return isa.OpVLogic
	case roll < 0.97:
		return isa.OpVShift
	default:
		return isa.OpVDiv
	}
}

// emitHugeBlockLoop emits a bdna-style loop: a single enormous basic block
// with hundreds of vector instructions and pervasive spilling.
func (g *generator) emitHugeBlockLoop() {
	g.loopID++
	vl := g.pickVL()
	g.b.SetVL(vl, isa.A(0))
	g.scalarCount++
	blockLen := 150 + g.r.Intn(120) // vector instructions per block
	iters := 2 + g.r.Intn(3)
	loopPC := uint64(0x40000 + g.loopID*0x4000)
	src := g.nextArray()

	var prevSpillSlot uint64
	for it := 0; it < iters; it++ {
		g.b.SetPC(loopPC)
		vreg := 0
		live := isa.V(0)
		for n := 0; n < blockLen; n++ {
			d := isa.V(vreg % 8)
			vreg++
			switch {
			case n%9 == 0:
				g.b.VLoad(d, src+uint64(n)*0x2000+uint64(it)*0x100000)
				g.vectorCount++
				g.memOps += int64(vl)
			case n%3 == 1 && g.spillFracBelowTarget():
				// Register pressure forces a spill of a live value; a value
				// spilled earlier in the block is reloaded for its next use.
				slot := spillBase + uint64(n%spillSlots)*0x2000
				g.b.SpillStore(live, slot)
				g.vectorCount++
				g.memOps += int64(vl)
				g.spillOps += int64(vl)
				if prevSpillSlot == 0 {
					prevSpillSlot = slot
				}
				g.b.SpillLoad(d, prevSpillSlot)
				g.vectorCount++
				g.memOps += int64(vl)
				g.spillOps += int64(vl)
				prevSpillSlot = slot
			case n%9 == 8:
				g.b.VStore(live, src+0x800000+uint64(n)*0x2000+uint64(it)*0x100000)
				g.vectorCount++
				g.memOps += int64(vl)
			default:
				op := g.pickVectorOp(n)
				if op == isa.OpVSMul || op == isa.OpVSAdd {
					g.b.Vector(op, d, live, isa.S(g.r.Intn(8)))
				} else {
					g.b.Vector(op, d, live, isa.V((vreg+2)%8))
				}
				g.vectorCount++
				live = d
			}
			if n%8 == 7 {
				// Scalar code interleaves inside the block (it does not end
				// the basic block).
				g.balanceScalar(120)
			}
		}
		g.b.SetPC(loopPC + 0x3ff0)
		g.b.Branch(loopPC, it != iters-1)
		g.scalarCount++
	}
}

// emitScalarSection emits the scalar-only region between loop nests.
func (g *generator) emitScalarSection() {
	// Unconditional scalar glue only for scalar-leaning programs; highly
	// vectorised codes go straight to the next loop nest.
	if g.ratio >= 0.2 {
		n := 4 + g.r.Intn(12)
		for i := 0; i < n; i++ {
			g.emitScalarFiller()
		}
	}
	// Occasional call/return pair around a "subroutine".
	if g.ratio >= 0.2 && g.r.Intn(3) == 0 {
		pc := g.b.PC()
		target := pc + 0x10000
		g.b.Call(target)
		g.scalarCount++
		g.b.SetPC(target)
		for i := 0; i < 3; i++ {
			g.emitScalarFiller()
		}
		g.b.Return(pc + 4)
		g.scalarCount++
		g.b.SetPC(pc + 4)
	}
	// Catch all the way up to the target ratio before the next loop nest
	// (scalar-dominated programs spend most of their time here).
	g.balanceScalar(100000)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
