package tgen

// The ten benchmark presets, tuned to Table 2 ("Basic operation counts for
// the Perfect Club and Specfp92 programs") and Table 3 ("Vector memory
// spill operations") of the paper.
//
// Provenance of the numbers:
//
//   - Suite, scalar-M and vector-M instruction counts are legible in the
//     available text of Table 2 and are reproduced exactly.
//   - Average vector lengths: Table 2's VL column is garbled except for
//     swm256 (127). The paper's prose pins the rest qualitatively: dyfesm,
//     trfd and flo52 "have relatively small vector lengths" (§4.1), tomcatv
//     is a long-vector code, and the remaining values are reconstructed
//     from the authors' companion characterisation study ("Quantitative
//     analysis of vector code", Espasa et al. 1995) to the nearest
//     plausible value. Sanity check: every program must remain >= 70%
//     vectorised (the paper's selection criterion), which all these values
//     satisfy.
//   - Spill-traffic percentages: Table 3 is garbled except for headline
//     facts — "over 69% of the memory traffic in bdna is due to spills",
//     swm256 has 2839M load ops vs 315M spill-load ops (~11%), and "in
//     some of the benchmarks relatively few of the loads and stores are due
//     to spills". Non-legible entries are set to moderate values (8-25%),
//     with trfd/dyfesm given a strong *scalar* spill bias to reproduce
//     their outlier behaviour in Figures 11-13 (§6.3 explains it by scalar
//     data bypassing enabling loop unrolling).
//   - InterIterDep for trfd/dyfesm implements §5's explanation of their
//     late-commit collapse: "The main loop in trfd has a memory dependence
//     between the last vector store of iteration i and the first vector
//     load of iteration i+1 (both are to the same address)".
//   - HugeBasicBlocks for bdna implements §4.2: "an extremely large main
//     loop, which generates a sequence of basic blocks with more than 800
//     vector instructions".

// Presets returns the ten benchmark presets in the paper's Table 2 order.
func Presets() []Preset {
	return []Preset{
		{
			Name: "swm256", Suite: "Spec",
			PaperScalarM: 6.2, PaperVectorM: 74.5,
			AvgVL:           127, // legible in Table 2
			SpillTrafficPct: 11,
			StridedFrac:     0.05,
		},
		{
			Name: "hydro2d", Suite: "Spec",
			PaperScalarM: 41.5, PaperVectorM: 39.2,
			AvgVL:           112,
			SpillTrafficPct: 9,
			StridedFrac:     0.10,
		},
		{
			Name: "arc2d", Suite: "Perfect",
			PaperScalarM: 63.3, PaperVectorM: 42.9,
			AvgVL:           88,
			SpillTrafficPct: 15,
			StridedFrac:     0.25,
		},
		{
			Name: "flo52", Suite: "Perfect",
			PaperScalarM: 37.7, PaperVectorM: 22.8,
			AvgVL:           56, // "relatively small vector lengths" (§4.1)
			SpillTrafficPct: 11,
			StridedFrac:     0.15,
		},
		{
			Name: "nasa7", Suite: "Spec",
			PaperScalarM: 152.4, PaperVectorM: 67.3,
			AvgVL:           92,
			SpillTrafficPct: 18,
			GatherFrac:      0.12, // the kernels include indexed accesses
			StridedFrac:     0.20,
		},
		{
			Name: "su2cor", Suite: "Spec",
			PaperScalarM: 152.6, PaperVectorM: 26.8,
			AvgVL:           97,
			SpillTrafficPct: 12,
			StridedFrac:     0.10,
		},
		{
			Name: "tomcatv", Suite: "Spec",
			PaperScalarM: 125.8, PaperVectorM: 7.2,
			AvgVL:           125,
			SpillTrafficPct: 8,
			StridedFrac:     0.05,
		},
		{
			Name: "bdna", Suite: "Perfect",
			PaperScalarM: 239.0, PaperVectorM: 19.6,
			AvgVL:           107,
			SpillTrafficPct: 69, // "over 69% of the memory traffic" (§6)
			HugeBasicBlocks: true,
			StridedFrac:     0.10,
		},
		{
			Name: "trfd", Suite: "Perfect",
			PaperScalarM: 352.2, PaperVectorM: 49.5,
			AvgVL:           38, // "relatively small vector lengths"
			SpillTrafficPct: 25,
			ScalarSpillBias: 0.55,
			InterIterDep:    true,
			StridedFrac:     0.10,
		},
		{
			Name: "dyfesm", Suite: "Perfect",
			PaperScalarM: 236.1, PaperVectorM: 33.0,
			AvgVL:           27, // "relatively small vector lengths"
			SpillTrafficPct: 20,
			ScalarSpillBias: 0.55,
			InterIterDep:    true,
			StridedFrac:     0.10,
		},
	}
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// Names returns the preset names in Table 2 order.
func Names() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
