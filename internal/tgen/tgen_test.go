package tgen

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"oovec/internal/trace"
)

func TestAllPresetsGenerateValidTraces(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr := Generate(p)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Name != p.Name || tr.Suite != p.Suite {
				t.Errorf("metadata %q/%q", tr.Name, tr.Suite)
			}
			target := p.Insns
			if target == 0 {
				target = DefaultInsns
			}
			if tr.Len() < target/2 || tr.Len() > target*2 {
				t.Errorf("length %d far from target %d", tr.Len(), target)
			}
		})
	}
}

func TestPresetStatisticsMatchTargets(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr := Generate(p)
			s := tr.ComputeStats()

			// Scalar:vector instruction ratio within 15% (relative) of
			// Table 2, with a small absolute floor for the nearly fully
			// vectorised programs where loop-control scalars set a floor.
			gotRatio := float64(s.ScalarInsns) / float64(s.VectorInsns)
			wantRatio := p.ScalarVectorRatio()
			tol := 0.15 * wantRatio
			if tol < 0.04 {
				tol = 0.04
			}
			if math.Abs(gotRatio-wantRatio) > tol {
				t.Errorf("scalar:vector ratio = %.2f, want %.2f (Table 2)", gotRatio, wantRatio)
			}

			// Average vector length within 20% of target.
			if rel := math.Abs(s.AvgVL()-float64(p.AvgVL)) / float64(p.AvgVL); rel > 0.20 {
				t.Errorf("avg VL = %.1f, want ~%d", s.AvgVL(), p.AvgVL)
			}

			// Spill traffic within 10 percentage points of Table 3.
			if d := math.Abs(s.SpillTrafficPct() - p.SpillTrafficPct); d > 10 {
				t.Errorf("spill traffic = %.1f%%, want ~%.0f%%", s.SpillTrafficPct(), p.SpillTrafficPct)
			}
		})
	}
}

func TestAllPresetsSeventyPercentVectorized(t *testing.T) {
	// The paper selected programs with at least 70% vectorization.
	for _, p := range Presets() {
		tr := Generate(p)
		s := tr.ComputeStats()
		if got := s.PctVectorization(); got < 70 {
			t.Errorf("%s: vectorization %.1f%% < 70%%", p.Name, got)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	p, _ := PresetByName("hydro2d")
	a := Generate(p)
	b := Generate(p)
	if !reflect.DeepEqual(a.Insns, b.Insns) {
		t.Error("two generations of the same preset differ")
	}
}

func TestDifferentPresetsDiffer(t *testing.T) {
	a, _ := PresetByName("swm256")
	b, _ := PresetByName("trfd")
	ta, tb := Generate(a), Generate(b)
	if reflect.DeepEqual(ta.Insns, tb.Insns) {
		t.Error("different presets generated identical traces")
	}
}

func TestBdnaSpillHeavyAndHugeBlocks(t *testing.T) {
	p, ok := PresetByName("bdna")
	if !ok || !p.HugeBasicBlocks {
		t.Fatal("bdna preset must use huge basic blocks")
	}
	tr := Generate(p)
	s := tr.ComputeStats()
	if s.SpillTrafficPct() < 55 {
		t.Errorf("bdna spill traffic = %.1f%%, want >= 55%% (paper: 69%%)", s.SpillTrafficPct())
	}
	// Basic blocks (branch-free runs) must be large.
	maxRun, run := 0, 0
	for i := range tr.Insns {
		if tr.Insns[i].Op.IsBranch() {
			if run > maxRun {
				maxRun = run
			}
			run = 0
		} else {
			run++
		}
	}
	if maxRun < 150 {
		t.Errorf("largest basic block = %d instructions, want bdna-style blocks >= 150", maxRun)
	}
}

func TestTrfdInterIterationDependence(t *testing.T) {
	p, ok := PresetByName("trfd")
	if !ok || !p.InterIterDep {
		t.Fatal("trfd preset must carry the inter-iteration dependence")
	}
	tr := Generate(p)
	// Find a store whose address is reloaded by a later (non-spill) load
	// before any other store to it — the §5 pattern.
	type access struct {
		idx   int
		store bool
	}
	lastStore := map[uint64]int{}
	found := false
	for i := range tr.Insns {
		in := &tr.Insns[i]
		if !in.Op.IsVector() || !in.Op.IsMem() || in.Spill {
			continue
		}
		if in.Op.IsStore() {
			lastStore[in.Addr] = i
		} else if j, ok := lastStore[in.Addr]; ok && j < i {
			found = true
			break
		}
	}
	if !found {
		t.Error("no store→load same-address dependence found in trfd trace")
	}
}

func TestTrfdAndDyfesmShortVectors(t *testing.T) {
	for _, name := range []string{"trfd", "dyfesm", "flo52"} {
		p, _ := PresetByName(name)
		tr := Generate(p)
		s := tr.ComputeStats()
		if s.AvgVL() > 70 {
			t.Errorf("%s avg VL = %.1f, want short vectors", name, s.AvgVL())
		}
	}
	long, _ := PresetByName("swm256")
	s := Generate(long).ComputeStats()
	if s.AvgVL() < 100 {
		t.Errorf("swm256 avg VL = %.1f, want ~127", s.AvgVL())
	}
}

func TestNasa7HasGathers(t *testing.T) {
	p, _ := PresetByName("nasa7")
	tr := Generate(p)
	gathers := 0
	for i := range tr.Insns {
		if tr.Insns[i].Op.String() == "v.gth" {
			gathers++
		}
	}
	if gathers == 0 {
		t.Error("nasa7 must contain indexed accesses")
	}
}

func TestPresetByName(t *testing.T) {
	if _, ok := PresetByName("nonesuch"); ok {
		t.Error("unknown preset found")
	}
	if len(Names()) != 10 {
		t.Errorf("presets = %d, want the paper's 10", len(Names()))
	}
	if Names()[0] != "swm256" || Names()[9] != "dyfesm" {
		t.Error("preset order must follow Table 2")
	}
}

func TestCustomInsnsBudget(t *testing.T) {
	p, _ := PresetByName("swm256")
	p.Insns = 5000
	tr := Generate(p)
	if tr.Len() < 2500 || tr.Len() > 10000 {
		t.Errorf("length %d far from 5000", tr.Len())
	}
}

func TestTracesRoundTripThroughIO(t *testing.T) {
	p, _ := PresetByName("flo52")
	p.Insns = 3000
	tr := Generate(p)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Insns, tr.Insns) {
		t.Error("preset trace did not survive serialisation")
	}
}
