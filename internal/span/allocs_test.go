//go:build !race

// The allocation guard lives behind !race because the race runtime adds
// bookkeeping allocations; the ovlint hotpath analyzer enforces the same
// property statically on every build.

package span

import (
	"context"
	"testing"
	"time"
)

// TestUntracedPathAllocationFree pins the nil-tracer contract: an
// untraced request flowing through every instrumentation entry point
// allocates nothing.
func TestUntracedPathAllocationFree(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	start := time.Now()
	avg := testing.AllocsPerRun(100, func() {
		s := tr.Root("request", TraceID{}, 0, false)
		c := NewContext(ctx, s)
		child, c2 := Start(c, "cache.resolve")
		child.SetAttr("k", "v")
		child.SetInt("n", 7)
		child.End()
		w, _ := StartAt(c2, "wait", start)
		w.End()
		gc := s.StartChild("leg")
		gc.End()
		_ = s.TraceID()
		s.End()
	})
	if avg != 0 {
		t.Fatalf("untraced path allocates %.1f allocs/op, want 0", avg)
	}
}

// TestUnsampledRootAllocationFree pins that an enabled tracer dropping a
// request via head sampling also costs no allocations.
func TestUnsampledRootAllocationFree(t *testing.T) {
	tr := NewTracer(1_000_000, 4)
	tr.Root("warm", TraceID{}, 0, false) // consume the first kept slot
	avg := testing.AllocsPerRun(100, func() {
		s := tr.Root("request", TraceID{}, 0, false)
		s.End()
	})
	if avg != 0 {
		t.Fatalf("unsampled root allocates %.1f allocs/op, want 0", avg)
	}
}
