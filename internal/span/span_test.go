package span

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	h := Traceparent(id, 0xdeadbeef, true)
	got, parent, sampled, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", h)
	}
	if got != id || parent != 0xdeadbeef || !sampled {
		t.Fatalf("round trip: got (%v,%x,%v), want (%v,%x,true)", got, parent, sampled, id, 0xdeadbeef)
	}
	h = Traceparent(id, 7, false)
	if _, _, sampled, ok = ParseTraceparent(h); !ok || sampled {
		t.Fatalf("unsampled round trip: ok=%v sampled=%v", ok, sampled)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-aaaa-bbbb-01",
		"zz-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01", // zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16) + "-01", // non-hex
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-0",  // short flags
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01-extra",
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed value", h)
		}
	}
}

func TestNestingAndPublish(t *testing.T) {
	tr := NewTracer(1, 8)
	root := tr.Root("request", TraceID{}, 99, false)
	if root == nil {
		t.Fatal("sample=1 root was not sampled")
	}
	root.SetAttr("route", "/v1/sim")
	ctx := NewContext(context.Background(), root)

	child, ctx2 := Start(ctx, "cache.resolve")
	if child == nil {
		t.Fatal("Start on traced context returned nil")
	}
	grand, _ := Start(ctx2, "store.read")
	grand.SetInt("bytes", 42)
	grand.End()
	child.End()

	// Retro span back-dated before now.
	w, _ := StartAt(ctx, "wait", time.Now().Add(-time.Millisecond))
	w.End()
	root.End()

	rec, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not in buffer", root.TraceID())
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(rec.Spans), rec.Spans)
	}
	byName := map[string]SpanRec{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	rootRec := byName["request"]
	if rootRec.Parent != 99 {
		t.Errorf("root parent = %d, want traceparent span id 99", rootRec.Parent)
	}
	if got := byName["cache.resolve"].Parent; got != rootRec.ID {
		t.Errorf("cache.resolve parent = %d, want root id %d", got, rootRec.ID)
	}
	if got := byName["store.read"].Parent; got != byName["cache.resolve"].ID {
		t.Errorf("store.read parent = %d, want cache.resolve id", got)
	}
	if byName["store.read"].Attrs[0] != (Attr{Key: "bytes", Value: "42"}) {
		t.Errorf("store.read attrs = %+v", byName["store.read"].Attrs)
	}
	if byName["wait"].StartNs >= 0 {
		// StartAt was back-dated a millisecond before the trace started.
		if byName["wait"].StartNs > rootRec.StartNs+rootRec.DurNs {
			t.Errorf("wait span start %d outside trace", byName["wait"].StartNs)
		}
	}
	// Spans sorted by start offset.
	for i := 1; i < len(rec.Spans); i++ {
		if rec.Spans[i].StartNs < rec.Spans[i-1].StartNs {
			t.Fatalf("spans not sorted by StartNs: %+v", rec.Spans)
		}
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer(4, 8)
	kept := 0
	for i := 0; i < 16; i++ {
		if s := tr.Root("r", TraceID{}, 0, false); s != nil {
			kept++
			s.End()
		}
	}
	if kept != 4 {
		t.Fatalf("sample=4 kept %d of 16, want 4", kept)
	}
	// force bypasses sampling entirely.
	if s := tr.Root("forced", TraceID{}, 0, true); s == nil {
		t.Fatal("forced root was dropped")
	}
}

func TestDisabledTracerIsInert(t *testing.T) {
	var tr *Tracer
	if got := NewTracer(0, 8); got != nil {
		t.Fatal("NewTracer(0) should be nil")
	}
	s := tr.Root("r", TraceID{}, 0, true)
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Everything below must be a no-op, not a panic.
	s.SetAttr("k", "v")
	s.SetInt("k", 1)
	c := s.StartChild("child")
	c.End()
	s.End()
	if s.TraceID() != "" {
		t.Fatal("nil span TraceID not empty")
	}
	ctx := NewContext(context.Background(), s)
	if got := FromContext(ctx); got != nil {
		t.Fatal("nil span stored in context")
	}
	c2, ctx2 := Start(ctx, "x")
	if c2 != nil || ctx2 != ctx {
		t.Fatal("Start on untraced context allocated")
	}
	if tr.List() != nil {
		t.Fatal("nil tracer listed traces")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("nil tracer returned a trace")
	}
}

func TestBufferRingAndSlowestRetention(t *testing.T) {
	tr := NewTracer(1, 4)
	// A deliberately slow trace, then enough fast ones to cycle the ring.
	slow := tr.Root("slow", TraceID{}, 0, false)
	time.Sleep(20 * time.Millisecond)
	slow.End()
	slowID := slow.TraceID()
	var lastID string
	for i := 0; i < 12; i++ {
		s := tr.Root("fast", TraceID{}, 0, false)
		s.End()
		lastID = s.TraceID()
	}
	if _, ok := tr.Get(slowID); !ok {
		t.Fatal("slowest trace evicted from buffer despite tail retention")
	}
	if _, ok := tr.Get(lastID); !ok {
		t.Fatal("most recent trace missing from ring")
	}
	sums := tr.List()
	if len(sums) == 0 || sums[0].TraceID != lastID {
		t.Fatalf("List not newest-first: first=%+v", sums[:1])
	}
	found := false
	for _, s := range sums {
		if s.TraceID == slowID {
			found = true
		}
	}
	if !found {
		t.Fatal("slowest trace not listed")
	}
}

// TestReplayedTraceIDReMinted: a caller-supplied trace id that already
// names a buffered trace is re-minted, keeping the replayed id as the
// root's client_trace_id attribute — the returned trace id always
// identifies exactly one buffered timeline.
func TestReplayedTraceIDReMinted(t *testing.T) {
	tr := NewTracer(1, 8)
	id := NewTraceID()
	first := tr.Root("first", id, 1, true)
	if first.TraceID() != id.String() {
		t.Fatalf("fresh id rewritten: got %s, want %s", first.TraceID(), id)
	}
	first.End()

	second := tr.Root("second", id, 1, true)
	minted := second.TraceID()
	if minted == id.String() {
		t.Fatal("replayed trace id not re-minted")
	}
	second.End()

	rec, ok := tr.Get(minted)
	if !ok {
		t.Fatalf("re-minted trace %s not buffered", minted)
	}
	var client string
	for _, a := range rec.Spans[0].Attrs {
		if a.Key == "client_trace_id" {
			client = a.Value
		}
	}
	if client != id.String() {
		t.Errorf("client_trace_id = %q, want the replayed id %s", client, id)
	}
	// The original id still resolves to the first trace.
	if orig, ok := tr.Get(id.String()); !ok || orig.Name != "first" {
		t.Errorf("original id resolves to %+v, want the first trace", orig)
	}
}

// TestGetPrefersNewestDuplicate: two in-flight roots replaying one
// traceparent race past Root's buffer check and publish under the same id;
// the lookup must then be deterministic — the newest wins.
func TestGetPrefersNewestDuplicate(t *testing.T) {
	tr := NewTracer(1, 8)
	id := NewTraceID()
	older := tr.Root("older", id, 1, true)
	newer := tr.Root("newer", id, 1, true) // before older publishes: same id
	older.End()
	newer.End()
	rec, ok := tr.Get(id.String())
	if !ok {
		t.Fatal("duplicated id not found")
	}
	if rec.Name != "newer" {
		t.Errorf("Get returned %q, want the newest duplicate", rec.Name)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(1, 4)
	root := tr.Root("r", TraceID{}, 0, false)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.StartChild("c")
				c.SetInt("j", int64(j))
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	rec, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(rec.Spans) != 8*50+1 {
		t.Fatalf("got %d spans, want %d", len(rec.Spans), 8*50+1)
	}
	ids := map[uint64]bool{}
	for _, s := range rec.Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTracer(1, 4)
	root := tr.Root("r", TraceID{}, 0, false)
	for i := 0; i < maxSpans+10; i++ {
		root.StartChild("c").End()
	}
	root.End()
	rec, _ := tr.Get(root.TraceID())
	// maxSpans children fit, 10 are dropped, and the root appends past the
	// cap so the trace is never missing its own request span.
	if len(rec.Spans) != maxSpans+1 {
		t.Fatalf("got %d spans, want %d", len(rec.Spans), maxSpans+1)
	}
	if rec.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", rec.Dropped)
	}
	// The root itself must survive the cap.
	found := false
	for _, s := range rec.Spans {
		if s.Name == "r" {
			found = true
		}
	}
	if !found {
		t.Fatal("root span dropped by cap")
	}
}

func TestStragglerAfterPublish(t *testing.T) {
	tr := NewTracer(1, 4)
	root := tr.Root("r", TraceID{}, 0, false)
	c := root.StartChild("straggler")
	root.End()
	c.End() // after publish: must not panic or mutate the shipped record
	rec, _ := tr.Get(root.TraceID())
	if len(rec.Spans) != 1 {
		t.Fatalf("straggler leaked into published trace: %+v", rec.Spans)
	}
}
