// Package span is the stdlib-only request-tracing layer behind ovserve:
// parent/child spans with monotonic-clock durations and key-value
// attributes, carried through context.Context from the HTTP edge down to
// the simulated cycle, buffered in process (package-internal ring, see
// buffer.go) and exported as JSON or Chrome trace-event ("Perfetto")
// timelines (export.go).
//
// Two contracts make it safe to thread everywhere:
//
//   - Observation-only. Spans never feed back into what they measure:
//     simulation output is byte-identical traced vs. untraced (the server
//     tests assert this, including across checkpoint kill-and-resume).
//   - Allocation-free when off. Every context entry point (FromContext,
//     Start, StartAt, End, SetAttr, SetInt) is //ovlint:hotpath annotated:
//     when no span rides the context — an unsampled request, or the whole
//     path when tracing is disabled — the call is a nil check and returns
//     without allocating. The non-nil branches delegate to //ovlint:coldpath
//     internals, so the ovlint hotpath analyzer enforces the fast path
//     mechanically.
//
// Sampling is head-based: a Tracer keeps 1 in N roots (NewTracer's sample).
// A caller-supplied W3C traceparent with the sampled flag set forces the
// trace to be kept regardless, so a client that injects traceparent — the
// ovload harness does, on every request — can always fetch the server-side
// timeline of the exact request it timed.
package span

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the W3C trace-context 16-byte trace identifier.
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID returns a fresh random trace id. crypto/rand never fails on
// the supported platforms; if it ever did, the zero bytes would merely
// collide, never break.
func NewTraceID() TraceID {
	var id TraceID
	rand.Read(id[:])
	return id
}

// TraceparentHeader is the W3C trace-context propagation header.
const TraceparentHeader = "traceparent"

// Traceparent renders a W3C traceparent value: version 00, the trace id,
// the caller's span id, and the sampled flag. A client injecting this with
// sampled=true forces the server to keep the trace.
func Traceparent(id TraceID, spanID uint64, sampled bool) string {
	var sp [8]byte
	binary.BigEndian.PutUint64(sp[:], spanID)
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + id.String() + "-" + hex.EncodeToString(sp[:]) + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It returns the
// trace id, the caller's span id (the parent of the server's root span),
// whether the sampled flag is set, and whether the value was well-formed.
// Malformed, all-zero or future-versioned values return ok=false and the
// caller proceeds as if no header was sent.
func ParseTraceparent(h string) (id TraceID, parent uint64, sampled, ok bool) {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(h) != 55 || h[0] != '0' || h[1] != '0' ||
		h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, 0, false, false
	}
	if _, err := hex.Decode(id[:], []byte(h[3:35])); err != nil {
		return TraceID{}, 0, false, false
	}
	var sp [8]byte
	if _, err := hex.Decode(sp[:], []byte(h[36:52])); err != nil {
		return TraceID{}, 0, false, false
	}
	parent = binary.BigEndian.Uint64(sp[:])
	if id.IsZero() || parent == 0 {
		return TraceID{}, 0, false, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return TraceID{}, 0, false, false
	}
	return id, parent, flags[0]&1 == 1, true
}

// Tracer owns sampling and the bounded trace buffer. A nil *Tracer is the
// disabled tracer: Root returns nil and every span operation on the nil
// result is a no-op, so callers never branch on whether tracing is on.
type Tracer struct {
	sample int64
	seq    atomic.Int64
	buf    *buffer
}

// NewTracer builds a tracer keeping 1 in sample unsforced roots (sample 1
// = every request) in a buffer of `keep` recent traces (<= 0 selects 256).
// sample <= 0 disables tracing entirely: NewTracer returns nil, which is a
// valid, inert tracer.
func NewTracer(sample, keep int) *Tracer {
	if sample <= 0 {
		return nil
	}
	if keep <= 0 {
		keep = 256
	}
	return &Tracer{sample: int64(sample), buf: newBuffer(keep)}
}

// maxSpans bounds one trace's span count; beyond it child spans are
// counted in TraceRec.Dropped rather than recorded, so a pathological
// request cannot grow a trace without bound.
const maxSpans = 2048

// trace is the mutable record behind one sampled request: the spans land
// here as they End, and the whole record is published to the tracer's
// buffer when the root span ends.
type trace struct {
	tracer *Tracer
	id     TraceID
	start  time.Time // the monotonic anchor every span offset is relative to
	name   string

	mu        sync.Mutex
	nextID    uint64
	spans     []SpanRec
	dropped   int
	published bool
}

// Root starts a new trace, or returns nil when the request is not sampled
// (and force is false). id zero generates a fresh trace id; parent non-zero
// records the caller's traceparent span id as the root's parent, linking
// the server timeline under the client's span. Safe on a nil Tracer.
//
// A caller-supplied id that already names a buffered trace — a client
// replaying one traceparent across requests — is re-minted to a fresh id,
// keeping the replayed one as the root's `client_trace_id` attribute, so
// the trace id handed back (the X-Trace-Id header) always identifies
// exactly one buffered timeline.
func (t *Tracer) Root(name string, id TraceID, parent uint64, force bool) *Span {
	if t == nil {
		return nil
	}
	if !force && (t.seq.Add(1)-1)%t.sample != 0 {
		return nil
	}
	var clientID string
	if id.IsZero() {
		id = NewTraceID()
	} else if t.buf.has(id.String()) {
		clientID = id.String()
		id = NewTraceID()
	}
	//ovlint:allow determinism trace timestamps are observability metadata, never simulation input
	now := time.Now()
	tr := &trace{tracer: t, id: id, start: now, name: name, nextID: 1}
	sp := &Span{tr: tr, id: 1, parent: parent, name: name, start: now, root: true}
	if clientID != "" {
		sp.addAttr("client_trace_id", clientID)
	}
	return sp
}

// List snapshots the buffered trace summaries, newest first. Safe on nil.
func (t *Tracer) List() []Summary {
	if t == nil {
		return nil
	}
	return t.buf.list()
}

// Get returns a buffered trace by hex trace id. Safe on nil.
func (t *Tracer) Get(id string) (*TraceRec, bool) {
	if t == nil {
		return nil, false
	}
	return t.buf.get(id)
}

// Span is one timed operation inside a trace. A nil *Span is the universal
// "not traced" value: every method is nil-safe, so instrumented code calls
// unconditionally. A single span's methods are not safe for concurrent use
// (distinct spans of one trace are); hand each goroutine its own span.
type Span struct {
	tr     *trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	root   bool
	attrs  []Attr
	ended  bool
}

// TraceID returns the trace's hex id, or "" on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id.String()
}

// ctxKey is the context key type for the active span.
type ctxKey struct{}

// activeKey is pre-boxed into an interface once, so the hotpath-checked
// context lookups pass an existing interface value instead of boxing a
// struct per call.
var activeKey any = ctxKey{}

// NewContext returns ctx carrying s as the active span. A nil span returns
// ctx unchanged, keeping untraced contexts allocation-free.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, activeKey, s)
}

// FromContext returns the active span, or nil when the request is untraced.
//
//ovlint:hotpath the untraced fast path is a context lookup and a nil return
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(activeKey).(*Span)
	return s
}

// Start begins a child of the context's active span and returns it with a
// context carrying it, for nesting. On an untraced context it returns
// (nil, ctx) without allocating.
//
//ovlint:hotpath untraced requests must pass through without allocating
func Start(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	return parent.startChild(ctx, name)
}

// StartAt is Start with an explicit start time, for spans reconstructed
// after the fact — a singleflight wait or queue wait whose beginning was
// recorded before it was known the wait would be worth a span.
//
//ovlint:hotpath untraced requests must pass through without allocating
func StartAt(ctx context.Context, name string, start time.Time) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	return parent.startChildAt(ctx, name, start)
}

// End finishes the span, recording its duration into the trace; ending the
// root span publishes the whole trace to the tracer's buffer. No-op on nil
// or already-ended spans.
//
//ovlint:hotpath a nil span's End is a single branch
func (s *Span) End() {
	if s == nil {
		return
	}
	s.finish()
}

// SetAttr attaches a key/value attribute. No-op on nil.
//
//ovlint:hotpath a nil span's SetAttr is a single branch
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.addAttr(key, value)
}

// SetInt attaches an integer attribute. No-op on nil.
//
//ovlint:hotpath a nil span's SetInt is a single branch
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.addAttr(key, strconv.FormatInt(v, 10))
}

// StartChild begins a child span without a context — for layers like the
// job manager that hold a span across queue boundaries rather than a
// request context. Nil-safe: a nil receiver returns a nil child.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	//ovlint:allow determinism trace timestamps are observability metadata, never simulation input
	return s.child(name, time.Now())
}

// StartChildAt is StartChild with an explicit start time.
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, start)
}

// startChild allocates the child span and the derived context.
//
//ovlint:coldpath spans only materialise on traced requests
func (s *Span) startChild(ctx context.Context, name string) (*Span, context.Context) {
	//ovlint:allow determinism trace timestamps are observability metadata, never simulation input
	c := s.child(name, time.Now())
	return c, context.WithValue(ctx, activeKey, c)
}

// startChildAt allocates a back-dated child span and the derived context.
//
//ovlint:coldpath spans only materialise on traced requests
func (s *Span) startChildAt(ctx context.Context, name string, start time.Time) (*Span, context.Context) {
	c := s.child(name, start)
	return c, context.WithValue(ctx, activeKey, c)
}

// child allocates a span under s with the next id of the trace.
//
//ovlint:coldpath spans only materialise on traced requests
func (s *Span) child(name string, start time.Time) *Span {
	t := s.tr
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: s.id, name: name, start: start}
}

// addAttr appends one attribute.
//
//ovlint:coldpath spans only materialise on traced requests
func (s *Span) addAttr(key, value string) {
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// finish records the span into its trace and, for the root, publishes the
// trace.
//
//ovlint:coldpath spans only materialise on traced requests
func (s *Span) finish() {
	if s.ended {
		return
	}
	s.ended = true
	//ovlint:allow determinism trace timestamps are observability metadata, never simulation input
	end := time.Now()
	t := s.tr
	rec := SpanRec{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start.Sub(t.start).Nanoseconds(),
		DurNs:   end.Sub(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	}
	t.mu.Lock()
	if t.published {
		// A straggler ending after the root: the trace has already shipped.
		t.mu.Unlock()
		return
	}
	if len(t.spans) < maxSpans || s.root {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	if !s.root {
		t.mu.Unlock()
		return
	}
	t.published = true
	spans := t.spans
	dropped := t.dropped
	t.mu.Unlock()
	// Stable timeline order for readers and the Perfetto exporter.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].ID < spans[j].ID
	})
	t.tracer.buf.add(&TraceRec{
		TraceID:    t.id.String(),
		Name:       t.name,
		Start:      t.start,
		DurationMs: float64(rec.DurNs) / 1e6,
		Dropped:    dropped,
		Spans:      spans,
	})
}
