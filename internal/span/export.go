package span

import (
	"encoding/json"
	"io"
)

// traceEvent is one Chrome trace-event ("X" complete-event) record. The
// format is what chrome://tracing and https://ui.perfetto.dev open
// directly: timestamps and durations in microseconds, pid/tid lanes.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WritePerfetto renders a trace as Chrome trace-event JSON. Spans are
// assigned to "thread" lanes so that overlapping-but-unrelated spans (a
// concurrent sweep point next to its sibling, a singleflight waiter next
// to the filler) land on separate rows while a parent and its children
// stack on one: a span joins the lane whose innermost open span is its
// parent, reuses an idle lane otherwise, and opens a new lane when
// neither exists — matching the viewer's nesting rules, which require
// every event on a tid to nest inside the one below it.
func WritePerfetto(w io.Writer, rec *TraceRec) error {
	type open struct {
		id    uint64
		endNs int64
	}
	var lanes [][]open // per-lane stack of open spans
	events := make([]traceEvent, 0, len(rec.Spans))
	for _, sp := range rec.Spans {
		endNs := sp.StartNs + sp.DurNs
		lane, idle := -1, -1
		for li := range lanes {
			// Close out spans that ended before this one starts.
			st := lanes[li]
			for len(st) > 0 && st[len(st)-1].endNs <= sp.StartNs {
				st = st[:len(st)-1]
			}
			lanes[li] = st
			if len(st) == 0 {
				if idle == -1 {
					idle = li
				}
				continue
			}
			if st[len(st)-1].id == sp.Parent {
				lane = li
				break
			}
		}
		if lane == -1 {
			lane = idle
		}
		if lane == -1 {
			lanes = append(lanes, nil)
			lane = len(lanes) - 1
		}
		lanes[lane] = append(lanes[lane], open{sp.ID, endNs})
		var args map[string]string
		if len(sp.Attrs) > 0 {
			args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
		}
		events = append(events, traceEvent{
			Name: sp.Name,
			Cat:  "ovserve",
			Ph:   "X",
			Ts:   float64(sp.StartNs) / 1e3,
			Dur:  float64(sp.DurNs) / 1e3,
			Pid:  1,
			Tid:  lane + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{DisplayTimeUnit: "ms", TraceEvents: events})
}
