package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWritePerfettoLanes(t *testing.T) {
	rec := &TraceRec{
		TraceID: strings.Repeat("ab", 16),
		Name:    "request",
		Start:   time.Unix(0, 0),
		Spans: []SpanRec{
			{ID: 1, Name: "request", StartNs: 0, DurNs: 10_000_000},
			{ID: 2, Parent: 1, Name: "cache.resolve", StartNs: 1_000_000, DurNs: 8_000_000,
				Attrs: []Attr{{Key: "tier", Value: "simulate"}}},
			// Overlapping sibling (a concurrent sweep point): needs its own lane.
			{ID: 3, Parent: 1, Name: "sweep.point", StartNs: 2_000_000, DurNs: 5_000_000},
			{ID: 4, Parent: 2, Name: "simulate", StartNs: 3_000_000, DurNs: 4_000_000},
		},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var got traceFile
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("perfetto output not JSON: %v\n%s", err, buf.String())
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	if len(got.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(got.TraceEvents))
	}
	tid := map[string]int{}
	for _, e := range got.TraceEvents {
		if e.Ph != "X" || e.Pid != 1 {
			t.Errorf("event %q: ph=%q pid=%d", e.Name, e.Ph, e.Pid)
		}
		tid[e.Name] = e.Tid
	}
	// Nested chain shares a lane; the overlapping sibling does not.
	if tid["cache.resolve"] != tid["request"] {
		t.Errorf("cache.resolve lane %d != request lane %d", tid["cache.resolve"], tid["request"])
	}
	if tid["simulate"] != tid["request"] {
		t.Errorf("simulate lane %d != request lane %d", tid["simulate"], tid["request"])
	}
	if tid["sweep.point"] == tid["request"] {
		t.Error("overlapping sibling sweep.point shares the parent's lane")
	}
	// Microsecond conversion: 1ms start offset = 1000µs.
	for _, e := range got.TraceEvents {
		if e.Name == "cache.resolve" {
			if e.Ts != 1000 || e.Dur != 8000 {
				t.Errorf("cache.resolve ts=%v dur=%v, want 1000/8000", e.Ts, e.Dur)
			}
			if e.Args["tier"] != "simulate" {
				t.Errorf("args = %v", e.Args)
			}
		}
	}
}

func TestWritePerfettoSequentialSiblingsReuseLane(t *testing.T) {
	rec := &TraceRec{
		Spans: []SpanRec{
			{ID: 1, Name: "root", StartNs: 0, DurNs: 100},
			{ID: 2, Parent: 1, Name: "a", StartNs: 10, DurNs: 20},
			{ID: 3, Parent: 1, Name: "b", StartNs: 40, DurNs: 20}, // after a ends
		},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var got traceFile
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, e := range got.TraceEvents {
		tids[e.Name] = e.Tid
	}
	if tids["a"] != tids["root"] || tids["b"] != tids["root"] {
		t.Errorf("sequential children should share the root lane: %v", tids)
	}
}
