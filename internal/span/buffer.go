package span

import (
	"sort"
	"sync"
	"time"
)

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRec is one finished span as recorded into a trace: offsets are
// nanoseconds from the trace's start on the monotonic clock, so nesting
// and gaps are exact regardless of wall-clock adjustments.
type SpanRec struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// TraceRec is one finished trace: the root's wall-clock start, its total
// duration, and every recorded span ordered by start offset.
type TraceRec struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Dropped    int       `json:"dropped,omitempty"`
	Spans      []SpanRec `json:"spans"`
}

// Summary is the listing view of a buffered trace.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
}

// slowestKeep is how many all-time-slowest traces the buffer retains
// beyond the recency ring, so the tail outlier ovload flags is still
// fetchable after the ring has cycled past it.
const slowestKeep = 8

// buffer holds finished traces: a recency ring of capacity cap, plus the
// slowestKeep slowest traces seen, retained regardless of age.
type buffer struct {
	mu      sync.Mutex
	cap     int
	recent  []*TraceRec // ring, oldest first once full
	next    int         // ring write cursor
	full    bool
	slowest []*TraceRec // ascending by DurationMs, <= slowestKeep
}

func newBuffer(cap int) *buffer {
	return &buffer{cap: cap, recent: make([]*TraceRec, 0, cap)}
}

func (b *buffer) add(rec *TraceRec) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.recent) < b.cap {
		b.recent = append(b.recent, rec)
	} else {
		b.recent[b.next] = rec
		b.next = (b.next + 1) % b.cap
		b.full = true
	}
	// Tail retention: keep the slowest traces forever, so a p99 outlier
	// reported by a long load run survives the ring.
	i := sort.Search(len(b.slowest), func(i int) bool {
		return b.slowest[i].DurationMs >= rec.DurationMs
	})
	if len(b.slowest) < slowestKeep {
		b.slowest = append(b.slowest, nil)
		copy(b.slowest[i+1:], b.slowest[i:])
		b.slowest[i] = rec
	} else if i > 0 {
		// rec is slower than the current minimum: evict it.
		copy(b.slowest[:i-1], b.slowest[1:i])
		b.slowest[i-1] = rec
	}
}

// snapshot returns recent traces newest-first plus slowest-retained ones,
// deduplicated by trace id (recency wins). Callers hold b.mu.
func (b *buffer) snapshotLocked() []*TraceRec {
	out := make([]*TraceRec, 0, len(b.recent)+len(b.slowest))
	seen := make(map[string]bool, len(b.recent)+len(b.slowest))
	emit := func(r *TraceRec) {
		if !seen[r.TraceID] {
			seen[r.TraceID] = true
			out = append(out, r)
		}
	}
	// Ring newest-first: cursor-1 backwards.
	n := len(b.recent)
	for i := 0; i < n; i++ {
		emit(b.recent[((b.next-1-i)%n+n)%n])
	}
	for i := len(b.slowest) - 1; i >= 0; i-- {
		emit(b.slowest[i])
	}
	return out
}

func (b *buffer) list() []Summary {
	b.mu.Lock()
	recs := b.snapshotLocked()
	b.mu.Unlock()
	out := make([]Summary, len(recs))
	for i, r := range recs {
		out[i] = Summary{
			TraceID:    r.TraceID,
			Name:       r.Name,
			Start:      r.Start,
			DurationMs: r.DurationMs,
			Spans:      len(r.Spans),
		}
	}
	return out
}

func (b *buffer) get(id string) (*TraceRec, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Newest-first over the ring: duplicate ids can still land (two
	// in-flight requests replaying one traceparent race Root's buffer
	// check), and the lookup must then be deterministic — the newest trace
	// wins, matching the listing order of snapshotLocked.
	n := len(b.recent)
	for i := 0; i < n; i++ {
		if r := b.recent[((b.next-1-i)%n+n)%n]; r != nil && r.TraceID == id {
			return r, true
		}
	}
	for i := len(b.slowest) - 1; i >= 0; i-- {
		if r := b.slowest[i]; r.TraceID == id {
			return r, true
		}
	}
	return nil, false
}

// has reports whether a trace with the given id is buffered.
func (b *buffer) has(id string) bool {
	_, ok := b.get(id)
	return ok
}
